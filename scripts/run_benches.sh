#!/usr/bin/env bash
# Runs every built bench target and collects the machine-readable
# BENCH_*.json results (bench/bench_json.hpp) into one directory.
#
# Usage: scripts/run_benches.sh [build-dir] [out-dir] [--smoke]
#   build-dir  where the bench_* executables live (default: build)
#   out-dir    where the JSON results land (default: bench-results)
#   --smoke    pass --smoke to benches that support it (bench_local_search,
#              bench_partitioned, bench_fuzz: report + gate checks only, no
#              google-benchmark loops) and cap the rest with a tiny
#              --benchmark_filter so the sweep finishes in seconds.
set -euo pipefail

smoke=""
positional=()
for arg in "$@"; do
  case "$arg" in
    --smoke) smoke="yes" ;;
    *) positional+=("$arg") ;;
  esac
done
build_dir="${positional[0]:-build}"
out_dir="${positional[1]:-bench-results}"

if ! ls "$build_dir"/bench_* >/dev/null 2>&1; then
  echo "no bench targets in '$build_dir' (configure with FPPN_BUILD_BENCHES=ON" \
       "and install google-benchmark)" >&2
  exit 1
fi

mkdir -p "$out_dir"
export FPPN_BENCH_JSON_DIR="$out_dir"

status=0
for bench in "$build_dir"/bench_*; do
  [ -x "$bench" ] || continue
  name="$(basename "$bench")"
  echo "=== $name ==="
  if [ -n "$smoke" ] && case "$name" in
      bench_local_search|bench_partitioned|bench_fuzz) true ;;
      *) false ;;
    esac; then
    "$bench" --smoke || status=$?
  elif [ -n "$smoke" ]; then
    # Run the binary's report sections; match no google-benchmark cases.
    "$bench" --benchmark_filter='^$' || status=$?
  else
    "$bench" || status=$?
  fi
  echo
done

echo "results:"
ls -l "$out_dir"/BENCH_*.json 2>/dev/null || echo "  (no JSON emitted)"
exit "$status"
