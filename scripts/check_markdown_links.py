#!/usr/bin/env python3
"""Fail on broken relative links in the repo's Markdown files.

Scans every tracked *.md file (skipping build directories), extracts
inline links/images `[text](target)`, and verifies that each relative
target resolves to an existing file or directory relative to the file
containing the link. External links (http/https/mailto) and pure
in-page anchors (#...) are skipped; a `path#anchor` target is checked
for the path part only.

Exit status: 0 when all relative links resolve, 1 otherwise (each broken
link is listed as file:line: target).
"""

import re
import sys
from pathlib import Path

SKIP_DIRS = {"build", "build-asan", ".git", ".cache"}
# Inline [text](target) / ![alt](target); stops at the first ')' or space
# (titles like (foo "bar") carry the path first).
LINK_RE = re.compile(r"!?\[[^\]]*\]\(([^)\s]+)(?:\s+\"[^\"]*\")?\)")


def markdown_files(root: Path):
    for path in sorted(root.rglob("*.md")):
        if not any(part in SKIP_DIRS for part in path.parts):
            yield path


def check_file(md: Path, root: Path):
    broken = []
    in_fence = False
    for lineno, line in enumerate(md.read_text(encoding="utf-8").splitlines(), 1):
        if line.lstrip().startswith("```"):
            in_fence = not in_fence
            continue
        if in_fence:
            continue  # code blocks illustrate syntax, not real links
        for match in LINK_RE.finditer(line):
            target = match.group(1)
            if target.startswith(("http://", "https://", "mailto:", "#")):
                continue
            path_part = target.split("#", 1)[0]
            if not path_part:
                continue
            resolved = (md.parent / path_part).resolve()
            if not resolved.exists():
                broken.append((lineno, target))
            elif root not in resolved.parents and resolved != root:
                broken.append((lineno, target + " (escapes the repository)"))
    return broken


def main() -> int:
    root = Path(__file__).resolve().parent.parent
    failures = 0
    checked = 0
    for md in markdown_files(root):
        checked += 1
        for lineno, target in check_file(md, root):
            print(f"{md.relative_to(root)}:{lineno}: broken link -> {target}")
            failures += 1
    print(f"checked {checked} markdown file(s): "
          f"{'all relative links OK' if failures == 0 else f'{failures} broken link(s)'}")
    return 0 if failures == 0 else 1


if __name__ == "__main__":
    sys.exit(main())
