// E4 (Fig. 7, §V-B): the FMS avionics subsystem — hyperperiod reduction
// 40 s -> 10 s, the 812-job task graph (paper: 812 jobs, 1977 edges),
// load ~0.23, and deadline behavior on 1..4 processors.
#include <benchmark/benchmark.h>

#include <cstdio>

#include "apps/fms.hpp"
#include "runtime/runtime.hpp"
#include "sched/parallel_search.hpp"
#include "sched/registry.hpp"
#include "taskgraph/analysis.hpp"
#include "taskgraph/derivation.hpp"

namespace {

using namespace fppn;

void print_report() {
  const auto original = apps::build_fms(/*reduced_period=*/false);
  const auto app = apps::build_fms(/*reduced_period=*/true);

  std::printf("=== Fig. 7: Flight Management System subsystem ===\n");
  std::printf("hyperperiod: original %s ms, reduced %s ms (paper: 40 s -> 10 s via "
              "MagnDeclin 1600 -> 400 ms, body once per 4 invocations)\n",
              original.net.hyperperiod().to_string().c_str(),
              app.net.hyperperiod().to_string().c_str());

  const auto derived = derive_task_graph(app.net, app.default_wcets());
  std::printf("task graph: %zu jobs (paper: 812), %zu edges after reduction "
              "(paper: 1977), %zu removed by reduction\n",
              derived.graph.job_count(), derived.graph.edge_count(),
              derived.edges_removed);
  const LoadResult load = task_graph_load(derived.graph);
  std::printf("load: %.4f (paper: ~0.23) -> lower bound %lld processor(s)\n\n",
              load.load_value(), static_cast<long long>(load.min_processors()));

  std::printf("%-6s %-10s %-10s %-12s %s\n", "procs", "feasible?", "makespan",
              "misses/1fr", "summary");
  const auto scripts = app.random_commands(Time::ms(9000), /*seed=*/17);
  const InputScripts inputs = app.make_inputs(55, /*seed=*/17);
  for (const std::int64_t m : {1, 2, 3, 4}) {
    const sched::StrategyResult attempt = sched::quick_parallel_search(derived.graph, m, 200, 0).best;
    runtime::RunOptions opts;
    opts.frames = 1;
    const RunResult run = runtime::make_runtime("vm")->run(
        app.net, derived, attempt.schedule, opts, inputs, scripts);
    std::printf("%-6lld %-10s %-10s %-12zu %s\n", static_cast<long long>(m),
                attempt.feasible ? "yes" : "no",
                attempt.makespan.to_string().c_str(), run.misses.size(),
                run.trace.summary().c_str());
  }
  std::printf("\npaper: load 0.23; single-processor mapping encountered no "
              "deadline misses.\n\n");
}

void BM_FmsDerivation(benchmark::State& state) {
  const auto app = apps::build_fms();
  const WcetMap wcets = app.default_wcets();
  for (auto _ : state) {
    auto derived = derive_task_graph(app.net, wcets);
    benchmark::DoNotOptimize(derived.graph.edge_count());
  }
}
BENCHMARK(BM_FmsDerivation)->Unit(benchmark::kMillisecond);

void BM_FmsListSchedule(benchmark::State& state) {
  const auto app = apps::build_fms();
  const auto derived = derive_task_graph(app.net, app.default_wcets());
  const auto strategy = sched::StrategyRegistry::global().create("alap-edf");
  for (auto _ : state) {
    sched::StrategyOptions opts;
    opts.processors = state.range(0);
    benchmark::DoNotOptimize(strategy->schedule(derived.graph, opts).makespan);
  }
}
BENCHMARK(BM_FmsListSchedule)->Arg(1)->Arg(2)->Arg(4)->Unit(benchmark::kMillisecond);

void BM_FmsVmOneFrame(benchmark::State& state) {
  const auto app = apps::build_fms();
  const auto derived = derive_task_graph(app.net, app.default_wcets());
  const auto attempt = sched::quick_parallel_search(derived.graph, state.range(0), 200, 0).best;
  const auto scripts = app.random_commands(Time::ms(9000), 17);
  const InputScripts inputs = app.make_inputs(55, 17);
  const auto vm = runtime::make_runtime("vm");
  runtime::RunOptions opts;
  opts.frames = 1;
  for (auto _ : state) {
    auto run = vm->run(app.net, derived, attempt.schedule, opts, inputs, scripts);
    benchmark::DoNotOptimize(run.jobs_executed);
  }
}
BENCHMARK(BM_FmsVmOneFrame)->Arg(1)->Arg(2)->Unit(benchmark::kMillisecond);

void BM_FmsLoadMetric(benchmark::State& state) {
  const auto app = apps::build_fms();
  const auto derived = derive_task_graph(app.net, app.default_wcets());
  for (auto _ : state) {
    benchmark::DoNotOptimize(task_graph_load(derived.graph).load_value());
  }
}
BENCHMARK(BM_FmsLoadMetric)->Unit(benchmark::kMillisecond);

}  // namespace

int main(int argc, char** argv) {
  print_report();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
