// Shared synthetic-graph generator for the bench targets: a random
// layered DAG — `layers` x `width` jobs, period/deadline `frame`, random
// WCETs and random forward edges. One definition so every bench measures
// the same workload family and a tweak here moves them all together.
#pragma once

#include <random>
#include <string>
#include <vector>

#include "taskgraph/task_graph.hpp"

namespace fppn {
namespace benchgraphs {

inline TaskGraph random_task_graph(int layers, int width, std::int64_t frame,
                                   std::uint64_t seed) {
  std::mt19937_64 rng(seed);
  std::uniform_int_distribution<std::int64_t> wcet(5, 30);
  std::uniform_int_distribution<int> fan(1, 3);
  TaskGraph tg(Duration::ms(frame));
  std::vector<std::vector<JobId>> grid(static_cast<std::size_t>(layers));
  for (int l = 0; l < layers; ++l) {
    for (int w = 0; w < width; ++w) {
      Job j;
      j.process = ProcessId{static_cast<std::size_t>(l * width + w)};
      j.arrival = Time::ms(0);
      j.deadline = Time::ms(frame);
      j.wcet = Duration::ms(wcet(rng));
      j.name = "J" + std::to_string(l) + "_" + std::to_string(w);
      grid[static_cast<std::size_t>(l)].push_back(tg.add_job(j));
    }
  }
  std::uniform_int_distribution<int> pick(0, width - 1);
  for (int l = 0; l + 1 < layers; ++l) {
    for (int w = 0; w < width; ++w) {
      const int out = fan(rng);
      for (int e = 0; e < out; ++e) {
        tg.add_edge(grid[static_cast<std::size_t>(l)][static_cast<std::size_t>(w)],
                    grid[static_cast<std::size_t>(l + 1)]
                        [static_cast<std::size_t>(pick(rng))]);
      }
    }
  }
  return tg;
}

/// A periodic pipelined process network in the paper's model: `processes`
/// periodic processes each releasing one job per frame, `frames` frames.
/// Job f of process p arrives at f*period and must finish by the next
/// release (deadline (f+1)*period). Edges: a sparse random forward DAG
/// over the processes within every frame (the pipeline's data flow) plus
/// each process's FIFO edge from its frame-f job to its frame-(f+1) job.
inline TaskGraph periodic_pipeline_graph(int processes, int frames,
                                         std::int64_t period, std::uint64_t seed) {
  std::mt19937_64 rng(seed);
  std::uniform_int_distribution<std::int64_t> wcet(5, 30);
  std::uniform_int_distribution<int> fan(0, 2);
  TaskGraph tg(Duration::ms(period * frames));
  std::vector<std::vector<JobId>> jobs(static_cast<std::size_t>(frames));
  for (int f = 0; f < frames; ++f) {
    for (int p = 0; p < processes; ++p) {
      Job j;
      j.process = ProcessId{static_cast<std::size_t>(p)};
      j.arrival = Time::ms(period * f);
      j.deadline = Time::ms(period * (f + 1));
      j.wcet = Duration::ms(wcet(rng));
      j.name = "P" + std::to_string(p) + "_f" + std::to_string(f);
      jobs[static_cast<std::size_t>(f)].push_back(tg.add_job(j));
    }
  }
  for (int f = 0; f < frames; ++f) {
    for (int p = 0; p < processes; ++p) {
      const int out = fan(rng);
      for (int e = 0; e < out && p + 1 < processes; ++e) {
        std::uniform_int_distribution<int> succ(p + 1, processes - 1);
        tg.add_edge(jobs[static_cast<std::size_t>(f)][static_cast<std::size_t>(p)],
                    jobs[static_cast<std::size_t>(f)]
                        [static_cast<std::size_t>(succ(rng))]);
      }
      if (f + 1 < frames) {
        tg.add_edge(jobs[static_cast<std::size_t>(f)][static_cast<std::size_t>(p)],
                    jobs[static_cast<std::size_t>(f + 1)]
                        [static_cast<std::size_t>(p)]);
      }
    }
  }
  return tg;
}

}  // namespace benchgraphs
}  // namespace fppn
