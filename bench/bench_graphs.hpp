// Shared synthetic-graph generator for the bench targets: a random
// layered DAG — `layers` x `width` jobs, period/deadline `frame`, random
// WCETs and random forward edges. One definition so every bench measures
// the same workload family and a tweak here moves them all together.
#pragma once

#include <random>
#include <string>
#include <vector>

#include "taskgraph/task_graph.hpp"

namespace fppn {
namespace benchgraphs {

inline TaskGraph random_task_graph(int layers, int width, std::int64_t frame,
                                   std::uint64_t seed) {
  std::mt19937_64 rng(seed);
  std::uniform_int_distribution<std::int64_t> wcet(5, 30);
  std::uniform_int_distribution<int> fan(1, 3);
  TaskGraph tg(Duration::ms(frame));
  std::vector<std::vector<JobId>> grid(static_cast<std::size_t>(layers));
  for (int l = 0; l < layers; ++l) {
    for (int w = 0; w < width; ++w) {
      Job j;
      j.process = ProcessId{static_cast<std::size_t>(l * width + w)};
      j.arrival = Time::ms(0);
      j.deadline = Time::ms(frame);
      j.wcet = Duration::ms(wcet(rng));
      j.name = "J" + std::to_string(l) + "_" + std::to_string(w);
      grid[static_cast<std::size_t>(l)].push_back(tg.add_job(j));
    }
  }
  std::uniform_int_distribution<int> pick(0, width - 1);
  for (int l = 0; l + 1 < layers; ++l) {
    for (int w = 0; w < width; ++w) {
      const int out = fan(rng);
      for (int e = 0; e < out; ++e) {
        tg.add_edge(grid[static_cast<std::size_t>(l)][static_cast<std::size_t>(w)],
                    grid[static_cast<std::size_t>(l + 1)]
                        [static_cast<std::size_t>(pick(rng))]);
      }
    }
  }
  return tg;
}

}  // namespace benchgraphs
}  // namespace fppn
