// E6 (§III-B ablation): every strategy in the scheduling registry —
// the four SP heuristics plus the local-search optimizer — compared on
// the paper's graphs and on random layered task graphs (feasibility rate
// and makespan), with the parallel multi-strategy search as the engine's
// default path.
#include <benchmark/benchmark.h>

#include <cstdio>
#include <random>

#include "apps/fft.hpp"
#include "apps/fig1.hpp"
#include "apps/fms.hpp"
#include "bench_graphs.hpp"
#include "bench_json.hpp"
#include "engine/engine.hpp"
#include "sched/parallel_search.hpp"
#include "sched/registry.hpp"
#include "taskgraph/analysis.hpp"
#include "taskgraph/derivation.hpp"

namespace {

using namespace fppn;

using benchgraphs::random_task_graph;

sched::StrategyOptions quick_options(std::int64_t processors, std::uint64_t seed) {
  sched::StrategyOptions opts;
  opts.processors = processors;
  opts.seed = seed;
  opts.max_iterations = 400;
  opts.restarts = 1;
  return opts;
}

void print_report() {
  auto& registry = sched::StrategyRegistry::global();
  std::printf("=== SP-strategy ablation (registry: %zu strategies, M processors) ===\n\n",
              registry.names().size());

  // Paper graphs.
  struct NamedGraph {
    std::string name;
    TaskGraph tg;
    std::int64_t processors;
  };
  std::vector<NamedGraph> graphs;
  {
    const auto fig1 = apps::build_fig1();
    graphs.push_back(
        {"fig1 (M=2)", derive_task_graph(fig1.net, fig1.fig3_wcets()).graph, 2});
    const auto fft = apps::build_fft(8);
    graphs.push_back(
        {"fft8 (M=2)",
         derive_task_graph(fft.net, fft.uniform_wcets(Duration::ratio_ms(40, 3)))
             .graph,
         2});
    const auto fms = apps::build_fms();
    graphs.push_back(
        {"fms (M=1)", derive_task_graph(fms.net, fms.default_wcets()).graph, 1});
  }
  std::printf("%-12s", "graph");
  for (const std::string& name : registry.names()) {
    std::printf(" %-22s", name.c_str());
  }
  std::printf("\n");
  for (auto& g : graphs) {
    std::printf("%-12s", g.name.c_str());
    for (const std::string& name : registry.names()) {
      const auto result =
          registry.create(name)->schedule(g.tg, quick_options(g.processors, 1));
      std::printf(" %-22s", (std::string(result.feasible ? "feasible " : "INFEASIBLE ") +
                             result.makespan.to_string() + "ms")
                                .c_str());
    }
    std::printf("\n");
  }

  // Random graphs: feasibility rate over 100 seeds on tight frames, with
  // the parallel multi-strategy search as the last contender.
  benchjson::Report json("heuristics");
  std::printf("\nrandom layered graphs (6x6 jobs, frame 180 ms, M=4), 100 seeds:\n");
  std::printf("%-22s %-16s %-14s\n", "strategy", "feasible-rate", "avg-makespan");
  for (const std::string& name : registry.names()) {
    int feasible = 0;
    double makespan_sum = 0.0;
    for (std::uint64_t seed = 0; seed < 100; ++seed) {
      const TaskGraph tg = random_task_graph(6, 6, 180, seed);
      const auto result = registry.create(name)->schedule(tg, quick_options(4, seed + 1));
      feasible += result.feasible ? 1 : 0;
      makespan_sum += result.makespan.to_double_ms();
    }
    std::printf("%-22s %-16s %-14.1f\n", name.c_str(),
                (std::to_string(feasible) + "/100").c_str(), makespan_sum / 100.0);
    json.metric(name + "_feasible_rate", feasible / 100.0);
    json.metric(name + "_avg_makespan_ms", makespan_sum / 100.0);
  }
  {
    int feasible = 0;
    double makespan_sum = 0.0;
    for (std::uint64_t seed = 0; seed < 100; ++seed) {
      const TaskGraph tg = random_task_graph(6, 6, 180, seed);
      engine::SearchConfig config;
      config.processors = 4;
      config.seeds_per_strategy = 2;
      config.seed = seed + 1;
      config.max_iterations = 400;
      config.restarts = 1;
      config.warm_start = false;
      const auto report = engine::solve_graph(tg, config);
      feasible += report.feasible() ? 1 : 0;
      makespan_sum += report.search.best.makespan.to_double_ms();
    }
    std::printf("%-22s %-16s %-14.1f\n", "parallel-search",
                (std::to_string(feasible) + "/100").c_str(), makespan_sum / 100.0);
    json.metric("parallel-search_feasible_rate", feasible / 100.0);
    json.metric("parallel-search_avg_makespan_ms", makespan_sum / 100.0);
  }
  json.write();
  std::printf("\n");
}

void BM_StrategyOnFms(benchmark::State& state) {
  const auto app = apps::build_fms();
  const auto derived = derive_task_graph(app.net, app.default_wcets());
  const auto names = sched::StrategyRegistry::global().names();
  const auto index = static_cast<std::size_t>(state.range(0));
  if (index >= names.size()) {
    state.SkipWithError("strategy index out of range — update the Arg list");
    return;
  }
  const std::string name = names[index];
  const auto strategy = sched::StrategyRegistry::global().create(name);
  const sched::StrategyOptions opts = quick_options(1, 1);
  for (auto _ : state) {
    benchmark::DoNotOptimize(strategy->schedule(derived.graph, opts).makespan);
  }
  state.SetLabel(name);
}
BENCHMARK(BM_StrategyOnFms)->DenseRange(0, 4)
    ->Unit(benchmark::kMillisecond);

void BM_RandomGraphSchedule(benchmark::State& state) {
  const TaskGraph tg = random_task_graph(static_cast<int>(state.range(0)),
                                         static_cast<int>(state.range(1)), 500, 7);
  const auto strategy = sched::StrategyRegistry::global().create("b-level");
  const sched::StrategyOptions opts = quick_options(4, 1);
  for (auto _ : state) {
    benchmark::DoNotOptimize(strategy->schedule(tg, opts).makespan);
  }
}
BENCHMARK(BM_RandomGraphSchedule)->Args({6, 6})->Args({10, 10})->Args({20, 10});

void BM_ParallelSearchWorkers(benchmark::State& state) {
  const TaskGraph tg = random_task_graph(10, 10, 500, 7);
  engine::SearchConfig config;
  config.processors = 4;
  config.workers = static_cast<int>(state.range(0));
  config.seeds_per_strategy = 4;
  config.max_iterations = 400;
  config.restarts = 2;  // the pre-engine ParallelSearchOptions default
  config.warm_start = false;
  for (auto _ : state) {
    benchmark::DoNotOptimize(engine::solve_graph(tg, config).search.best.makespan);
  }
  state.SetLabel(std::to_string(state.range(0)) + " worker(s)");
}
BENCHMARK(BM_ParallelSearchWorkers)->Arg(1)->Arg(2)->Arg(4)->Arg(8)
    ->Unit(benchmark::kMillisecond);

}  // namespace

int main(int argc, char** argv) {
  print_report();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
