// E6 (§III-B ablation): schedule-priority heuristics compared — ALAP-EDF,
// b-level, modified deadline-monotonic and plain arrival order — on the
// paper's graphs and on random layered task graphs: feasibility rate and
// makespan.
#include <benchmark/benchmark.h>

#include <cstdio>
#include <random>

#include "apps/fft.hpp"
#include "apps/fig1.hpp"
#include "apps/fms.hpp"
#include "sched/list_scheduler.hpp"
#include "sched/local_search.hpp"
#include "taskgraph/analysis.hpp"
#include "taskgraph/derivation.hpp"

namespace {

using namespace fppn;

/// Random layered DAG: `layers` x `width` jobs, period/deadline `frame`,
/// random WCETs and random forward edges.
TaskGraph random_task_graph(int layers, int width, std::int64_t frame,
                            std::uint64_t seed) {
  std::mt19937_64 rng(seed);
  std::uniform_int_distribution<std::int64_t> wcet(5, 30);
  std::uniform_int_distribution<int> fan(1, 3);
  TaskGraph tg(Duration::ms(frame));
  std::vector<std::vector<JobId>> grid(static_cast<std::size_t>(layers));
  for (int l = 0; l < layers; ++l) {
    for (int w = 0; w < width; ++w) {
      Job j;
      j.process = ProcessId{static_cast<std::size_t>(l * width + w)};
      j.arrival = Time::ms(0);
      j.deadline = Time::ms(frame);
      j.wcet = Duration::ms(wcet(rng));
      j.name = "J" + std::to_string(l) + "_" + std::to_string(w);
      grid[static_cast<std::size_t>(l)].push_back(tg.add_job(j));
    }
  }
  std::uniform_int_distribution<int> pick(0, width - 1);
  for (int l = 0; l + 1 < layers; ++l) {
    for (int w = 0; w < width; ++w) {
      const int out = fan(rng);
      for (int e = 0; e < out; ++e) {
        tg.add_edge(grid[static_cast<std::size_t>(l)][static_cast<std::size_t>(w)],
                    grid[static_cast<std::size_t>(l + 1)]
                        [static_cast<std::size_t>(pick(rng))]);
      }
    }
  }
  return tg;
}

void print_report() {
  std::printf("=== SP-heuristic ablation (list scheduling, M processors) ===\n\n");

  // Paper graphs.
  struct NamedGraph {
    std::string name;
    TaskGraph tg;
    std::int64_t processors;
  };
  std::vector<NamedGraph> graphs;
  {
    const auto fig1 = apps::build_fig1();
    graphs.push_back(
        {"fig1 (M=2)", derive_task_graph(fig1.net, fig1.fig3_wcets()).graph, 2});
    const auto fft = apps::build_fft(8);
    graphs.push_back(
        {"fft8 (M=2)",
         derive_task_graph(fft.net, fft.uniform_wcets(Duration::ratio_ms(40, 3)))
             .graph,
         2});
    const auto fms = apps::build_fms();
    graphs.push_back(
        {"fms (M=1)", derive_task_graph(fms.net, fms.default_wcets()).graph, 1});
  }
  std::printf("%-12s", "graph");
  for (const PriorityHeuristic h : all_heuristics()) {
    std::printf(" %-22s", to_string(h).c_str());
  }
  std::printf("\n");
  for (auto& g : graphs) {
    std::printf("%-12s", g.name.c_str());
    for (const PriorityHeuristic h : all_heuristics()) {
      const auto s = list_schedule(g.tg, h, g.processors);
      const bool ok = s.check_feasibility(g.tg).feasible();
      std::printf(" %-22s", (std::string(ok ? "feasible " : "INFEASIBLE ") +
                             s.makespan(g.tg).to_string() + "ms")
                                .c_str());
    }
    std::printf("\n");
  }

  // Random graphs: feasibility rate over 100 seeds on tight frames, with
  // local-search SP optimization as the fifth contender.
  std::printf("\nrandom layered graphs (6x6 jobs, frame 180 ms, M=4), 100 seeds:\n");
  std::printf("%-22s %-16s %-14s\n", "heuristic", "feasible-rate", "avg-makespan");
  for (const PriorityHeuristic h : all_heuristics()) {
    int feasible = 0;
    double makespan_sum = 0.0;
    for (std::uint64_t seed = 0; seed < 100; ++seed) {
      const TaskGraph tg = random_task_graph(6, 6, 180, seed);
      const auto s = list_schedule(tg, h, 4);
      feasible += s.check_feasibility(tg).feasible() ? 1 : 0;
      makespan_sum += s.makespan(tg).to_double_ms();
    }
    std::printf("%-22s %-16s %-14.1f\n", to_string(h).c_str(),
                (std::to_string(feasible) + "/100").c_str(), makespan_sum / 100.0);
  }
  {
    int feasible = 0;
    double makespan_sum = 0.0;
    for (std::uint64_t seed = 0; seed < 100; ++seed) {
      const TaskGraph tg = random_task_graph(6, 6, 180, seed);
      LocalSearchOptions opts;
      opts.processors = 4;
      opts.max_iterations = 400;
      opts.restarts = 1;
      opts.seed = seed + 1;
      const LocalSearchResult r = optimize_priority(tg, opts);
      feasible += r.feasible ? 1 : 0;
      makespan_sum += r.makespan.to_double_ms();
    }
    std::printf("%-22s %-16s %-14.1f\n", "local-search",
                (std::to_string(feasible) + "/100").c_str(), makespan_sum / 100.0);
  }
  std::printf("\n");
}

void BM_HeuristicOnFms(benchmark::State& state) {
  const auto app = apps::build_fms();
  const auto derived = derive_task_graph(app.net, app.default_wcets());
  const auto h = all_heuristics()[static_cast<std::size_t>(state.range(0))];
  for (auto _ : state) {
    benchmark::DoNotOptimize(schedule_priority(derived.graph, h).size());
  }
  state.SetLabel(to_string(h));
}
BENCHMARK(BM_HeuristicOnFms)->Arg(0)->Arg(1)->Arg(2)->Arg(3)
    ->Unit(benchmark::kMillisecond);

void BM_RandomGraphSchedule(benchmark::State& state) {
  const TaskGraph tg = random_task_graph(static_cast<int>(state.range(0)),
                                         static_cast<int>(state.range(1)), 500, 7);
  for (auto _ : state) {
    auto s = list_schedule(tg, PriorityHeuristic::kBLevel, 4);
    benchmark::DoNotOptimize(s.makespan(tg));
  }
}
BENCHMARK(BM_RandomGraphSchedule)->Args({6, 6})->Args({10, 10})->Args({20, 10});

}  // namespace

int main(int argc, char** argv) {
  print_report();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
