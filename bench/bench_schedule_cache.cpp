// Schedule-cache micro-benchmarks: cold vs. warm parallel search (the
// whole point of the cache — a warm repeat costs one fingerprint plus map
// lookups instead of the full strategy × seed fan-out), fingerprint
// throughput on the paper's graphs, and the disk round-trip of one entry.
#include <benchmark/benchmark.h>

#include <cstdio>
#include <random>

#include "apps/fig1.hpp"
#include "apps/fms.hpp"
#include "sched/parallel_search.hpp"
#include "sched/schedule_cache.hpp"
#include "taskgraph/derivation.hpp"
#include "taskgraph/fingerprint.hpp"

namespace {

using namespace fppn;

/// Random layered DAG, same construction as the heuristics bench.
TaskGraph random_task_graph(int layers, int width, std::int64_t frame,
                            std::uint64_t seed) {
  std::mt19937_64 rng(seed);
  std::uniform_int_distribution<std::int64_t> wcet(5, 30);
  std::uniform_int_distribution<int> fan(1, 3);
  TaskGraph tg(Duration::ms(frame));
  std::vector<std::vector<JobId>> grid(static_cast<std::size_t>(layers));
  for (int l = 0; l < layers; ++l) {
    for (int w = 0; w < width; ++w) {
      Job j;
      j.process = ProcessId{static_cast<std::size_t>(l * width + w)};
      j.arrival = Time::ms(0);
      j.deadline = Time::ms(frame);
      j.wcet = Duration::ms(wcet(rng));
      j.name = "J" + std::to_string(l) + "_" + std::to_string(w);
      grid[static_cast<std::size_t>(l)].push_back(tg.add_job(j));
    }
  }
  std::uniform_int_distribution<int> pick(0, width - 1);
  for (int l = 0; l + 1 < layers; ++l) {
    for (int w = 0; w < width; ++w) {
      const int out = fan(rng);
      for (int e = 0; e < out; ++e) {
        tg.add_edge(grid[static_cast<std::size_t>(l)][static_cast<std::size_t>(w)],
                    grid[static_cast<std::size_t>(l + 1)]
                        [static_cast<std::size_t>(pick(rng))]);
      }
    }
  }
  return tg;
}

sched::ParallelSearchOptions search_options() {
  sched::ParallelSearchOptions opts;
  opts.processors = 4;
  opts.seeds_per_strategy = 3;
  opts.max_iterations = 400;
  opts.restarts = 1;
  return opts;
}

void BM_ParallelSearchCold(benchmark::State& state) {
  const TaskGraph tg = random_task_graph(static_cast<int>(state.range(0)),
                                         static_cast<int>(state.range(0)), 500, 7);
  const sched::ParallelSearchOptions opts = search_options();
  for (auto _ : state) {
    benchmark::DoNotOptimize(sched::parallel_search(tg, opts).best.makespan);
  }
  state.SetLabel(std::to_string(tg.job_count()) + " jobs, no cache");
}
BENCHMARK(BM_ParallelSearchCold)->Arg(6)->Arg(10)->Unit(benchmark::kMillisecond);

void BM_ParallelSearchWarm(benchmark::State& state) {
  const TaskGraph tg = random_task_graph(static_cast<int>(state.range(0)),
                                         static_cast<int>(state.range(0)), 500, 7);
  sched::ScheduleCache cache;
  sched::ParallelSearchOptions opts = search_options();
  opts.cache = &cache;
  (void)sched::parallel_search(tg, opts);  // warm it once
  for (auto _ : state) {
    benchmark::DoNotOptimize(sched::parallel_search(tg, opts).best.makespan);
  }
  state.SetLabel(std::to_string(tg.job_count()) + " jobs, warm memory cache");
}
BENCHMARK(BM_ParallelSearchWarm)->Arg(6)->Arg(10)->Unit(benchmark::kMillisecond);

void BM_FingerprintFig1(benchmark::State& state) {
  const auto app = apps::build_fig1();
  const auto derived = derive_task_graph(app.net, app.fig3_wcets());
  for (auto _ : state) {
    benchmark::DoNotOptimize(fingerprint(derived.graph));
  }
  state.SetLabel(std::to_string(derived.graph.job_count()) + " jobs");
}
BENCHMARK(BM_FingerprintFig1);

void BM_FingerprintFms(benchmark::State& state) {
  const auto app = apps::build_fms();
  const auto derived = derive_task_graph(app.net, app.default_wcets());
  for (auto _ : state) {
    benchmark::DoNotOptimize(fingerprint(derived.graph));
  }
  state.SetLabel(std::to_string(derived.graph.job_count()) + " jobs");
}
BENCHMARK(BM_FingerprintFms);

}  // namespace

int main(int argc, char** argv) {
  std::printf(
      "schedule-cache benchmarks: warm searches should be orders of magnitude\n"
      "cheaper than cold ones while returning the bit-identical winner.\n\n");
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
