// Schedule-cache micro-benchmarks: cold vs. warm parallel search (the
// whole point of the cache — a warm repeat costs one fingerprint plus map
// lookups instead of the full strategy × seed fan-out), fingerprint
// throughput on the paper's graphs, and the disk round-trip of one entry.
#include <benchmark/benchmark.h>

#include <cstdio>
#include <random>

#include "bench_graphs.hpp"
#include "apps/fig1.hpp"
#include "apps/fms.hpp"
#include "engine/engine.hpp"
#include "taskgraph/derivation.hpp"
#include "taskgraph/fingerprint.hpp"

namespace {

using namespace fppn;

using benchgraphs::random_task_graph;

engine::SearchConfig search_config() {
  engine::SearchConfig config;
  config.processors = 4;
  config.seeds_per_strategy = 3;
  config.max_iterations = 400;
  config.restarts = 1;
  config.warm_start = false;  // the overlay is bench_warm_start's subject
  return config;
}

void BM_ParallelSearchCold(benchmark::State& state) {
  const TaskGraph tg = random_task_graph(static_cast<int>(state.range(0)),
                                         static_cast<int>(state.range(0)), 500, 7);
  const engine::SearchConfig config = search_config();
  for (auto _ : state) {
    benchmark::DoNotOptimize(engine::solve_graph(tg, config).search.best.makespan);
  }
  state.SetLabel(std::to_string(tg.job_count()) + " jobs, no cache");
}
BENCHMARK(BM_ParallelSearchCold)->Arg(6)->Arg(10)->Unit(benchmark::kMillisecond);

void BM_ParallelSearchWarm(benchmark::State& state) {
  const TaskGraph tg = random_task_graph(static_cast<int>(state.range(0)),
                                         static_cast<int>(state.range(0)), 500, 7);
  // A long-lived Engine with its shared in-memory cache attached — the
  // steady state of fppn_serve answering repeat requests.
  engine::Engine eng;
  engine::SolveRequest request;
  request.graph = &tg;
  request.config = search_config();
  request.config.memory_cache = true;
  (void)eng.solve(request);  // warm it once
  for (auto _ : state) {
    benchmark::DoNotOptimize(eng.solve(request).search.best.makespan);
  }
  state.SetLabel(std::to_string(tg.job_count()) + " jobs, warm memory cache");
}
BENCHMARK(BM_ParallelSearchWarm)->Arg(6)->Arg(10)->Unit(benchmark::kMillisecond);

void BM_FingerprintFig1(benchmark::State& state) {
  const auto app = apps::build_fig1();
  const auto derived = derive_task_graph(app.net, app.fig3_wcets());
  for (auto _ : state) {
    benchmark::DoNotOptimize(fingerprint(derived.graph));
  }
  state.SetLabel(std::to_string(derived.graph.job_count()) + " jobs");
}
BENCHMARK(BM_FingerprintFig1);

void BM_FingerprintFms(benchmark::State& state) {
  const auto app = apps::build_fms();
  const auto derived = derive_task_graph(app.net, app.default_wcets());
  for (auto _ : state) {
    benchmark::DoNotOptimize(fingerprint(derived.graph));
  }
  state.SetLabel(std::to_string(derived.graph.job_count()) + " jobs");
}
BENCHMARK(BM_FingerprintFms);

}  // namespace

int main(int argc, char** argv) {
  std::printf(
      "schedule-cache benchmarks: warm searches should be orders of magnitude\n"
      "cheaper than cold ones while returning the bit-identical winner.\n\n");
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
