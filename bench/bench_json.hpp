// Tiny machine-readable bench output shared by every bench target: a flat
// JSON object of numeric metrics and string labels written to
// BENCH_<name>.json, so CI and scripts/run_benches.sh can collect results
// without scraping stdout. No dependencies beyond the standard library.
#pragma once

#include <cstdio>
#include <cstdlib>
#include <string>
#include <utility>
#include <vector>

namespace fppn {
namespace benchjson {

/// Collects (key, value) pairs and writes BENCH_<name>.json into
/// $FPPN_BENCH_JSON_DIR (the current directory when unset). Keys are
/// emitted in insertion order; values are numbers or strings. Intended
/// use: one Report per bench binary, written once at the end of main.
class Report {
 public:
  explicit Report(std::string name) : name_(std::move(name)) {}

  void metric(const std::string& key, double value) {
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%.17g", value);
    fields_.emplace_back(key, std::string(buf));
  }

  void metric(const std::string& key, long long value) {
    fields_.emplace_back(key, std::to_string(value));
  }

  void label(const std::string& key, const std::string& value) {
    fields_.emplace_back(key, "\"" + escaped(value) + "\"");
  }

  /// Writes the file; returns its path, or an empty string on I/O
  /// failure (benches must not die because a result file could not be
  /// written — the stdout report already happened).
  std::string write() const {
    std::string dir = ".";
    if (const char* env = std::getenv("FPPN_BENCH_JSON_DIR")) {
      if (env[0] != '\0') {
        dir = env;
      }
    }
    const std::string path = dir + "/BENCH_" + name_ + ".json";
    std::FILE* f = std::fopen(path.c_str(), "w");
    if (f == nullptr) {
      std::fprintf(stderr, "bench_json: cannot write %s\n", path.c_str());
      return {};
    }
    std::fprintf(f, "{\n  \"bench\": \"%s\"", escaped(name_).c_str());
    for (const auto& [key, value] : fields_) {
      std::fprintf(f, ",\n  \"%s\": %s", escaped(key).c_str(), value.c_str());
    }
    std::fprintf(f, "\n}\n");
    std::fclose(f);
    return path;
  }

 private:
  static std::string escaped(const std::string& s) {
    std::string out;
    out.reserve(s.size());
    for (const char c : s) {
      if (c == '"' || c == '\\') {
        out.push_back('\\');
        out.push_back(c);
      } else if (c == '\n') {
        out += "\\n";
      } else {
        out.push_back(c);
      }
    }
    return out;
  }

  std::string name_;
  std::vector<std::pair<std::string, std::string>> fields_;
};

}  // namespace benchjson
}  // namespace fppn
