// E2 (Fig. 4): a feasible 2-processor static schedule for the Fig. 3 task
// graph, printed as a Gantt chart, plus list-scheduler micro-benchmarks.
#include <benchmark/benchmark.h>

#include <cstdio>

#include "apps/fig1.hpp"
#include "sched/search.hpp"
#include "taskgraph/derivation.hpp"

namespace {

void print_report() {
  using namespace fppn;
  const auto app = apps::build_fig1();
  const auto derived = derive_task_graph(app.net, app.fig3_wcets());

  std::printf("=== Fig. 4: static schedule for the Fig. 3 task graph ===\n");
  for (const std::int64_t m : {1, 2, 3}) {
    const ScheduleAttempt attempt = best_schedule(derived.graph, m);
    std::printf("\nM = %lld: %s (heuristic %s, makespan %s ms)\n",
                static_cast<long long>(m),
                attempt.feasible ? "FEASIBLE" : "infeasible",
                to_string(attempt.heuristic).c_str(),
                attempt.makespan.to_string().c_str());
    if (m == 2) {
      std::printf("%s", attempt.schedule.to_gantt(derived.graph, 100).c_str());
      const auto busy = attempt.schedule.busy_time(derived.graph);
      for (std::size_t i = 0; i < busy.size(); ++i) {
        std::printf("M%zu busy %s / 200 ms\n", i + 1, busy[i].to_string().c_str());
      }
    }
  }
  std::printf("\npaper: one processor misses deadlines (load 5/3 > 1); two fit "
              "the 200 ms frame.\n\n");
}

void BM_ListScheduleFig3(benchmark::State& state) {
  using namespace fppn;
  const auto app = apps::build_fig1();
  const auto derived = derive_task_graph(app.net, app.fig3_wcets());
  for (auto _ : state) {
    auto s = list_schedule(derived.graph, PriorityHeuristic::kAlapEdf,
                           state.range(0));
    benchmark::DoNotOptimize(s.makespan(derived.graph));
  }
}
BENCHMARK(BM_ListScheduleFig3)->Arg(1)->Arg(2)->Arg(4);

void BM_FeasibilityCheck(benchmark::State& state) {
  using namespace fppn;
  const auto app = apps::build_fig1();
  const auto derived = derive_task_graph(app.net, app.fig3_wcets());
  const auto s = list_schedule(derived.graph, PriorityHeuristic::kAlapEdf, 2);
  for (auto _ : state) {
    benchmark::DoNotOptimize(s.check_feasibility(derived.graph).feasible());
  }
}
BENCHMARK(BM_FeasibilityCheck);

void BM_MinProcessors(benchmark::State& state) {
  using namespace fppn;
  const auto app = apps::build_fig1();
  const auto derived = derive_task_graph(app.net, app.fig3_wcets());
  for (auto _ : state) {
    benchmark::DoNotOptimize(min_processors(derived.graph).processors);
  }
}
BENCHMARK(BM_MinProcessors);

}  // namespace

int main(int argc, char** argv) {
  print_report();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
