// E2 (Fig. 4): a feasible 2-processor static schedule for the Fig. 3 task
// graph, printed as a Gantt chart, plus scheduling-engine micro-benchmarks.
#include <benchmark/benchmark.h>

#include <cstdio>

#include "apps/fig1.hpp"
#include "sched/parallel_search.hpp"
#include "sched/registry.hpp"
#include "taskgraph/derivation.hpp"

namespace {

using namespace fppn;

void print_report() {
  const auto app = apps::build_fig1();
  const auto derived = derive_task_graph(app.net, app.fig3_wcets());

  std::printf("=== Fig. 4: static schedule for the Fig. 3 task graph ===\n");
  for (const std::int64_t m : {1, 2, 3}) {
    const auto result = sched::quick_parallel_search(derived.graph, m);
    std::printf("\nM = %lld: %s (strategy %s, makespan %s ms)\n",
                static_cast<long long>(m),
                result.best.feasible ? "FEASIBLE" : "infeasible",
                result.best.strategy.c_str(),
                result.best.makespan.to_string().c_str());
    if (m == 2) {
      std::printf("%s", result.best.schedule.to_gantt(derived.graph, 100).c_str());
      const auto busy = result.best.schedule.busy_time(derived.graph);
      for (std::size_t i = 0; i < busy.size(); ++i) {
        std::printf("M%zu busy %s / 200 ms\n", i + 1, busy[i].to_string().c_str());
      }
    }
  }
  std::printf("\npaper: one processor misses deadlines (load 5/3 > 1); two fit "
              "the 200 ms frame.\n\n");
}

void BM_ListScheduleFig3(benchmark::State& state) {
  const auto app = apps::build_fig1();
  const auto derived = derive_task_graph(app.net, app.fig3_wcets());
  const auto strategy = sched::StrategyRegistry::global().create("alap-edf");
  sched::StrategyOptions opts;
  opts.processors = state.range(0);
  for (auto _ : state) {
    benchmark::DoNotOptimize(strategy->schedule(derived.graph, opts).makespan);
  }
}
BENCHMARK(BM_ListScheduleFig3)->Arg(1)->Arg(2)->Arg(4);

void BM_FeasibilityCheck(benchmark::State& state) {
  const auto app = apps::build_fig1();
  const auto derived = derive_task_graph(app.net, app.fig3_wcets());
  sched::StrategyOptions opts;
  opts.processors = 2;
  const auto s =
      sched::StrategyRegistry::global().create("alap-edf")->schedule(derived.graph, opts);
  for (auto _ : state) {
    benchmark::DoNotOptimize(s.schedule.check_feasibility(derived.graph).feasible());
  }
}
BENCHMARK(BM_FeasibilityCheck);

void BM_ParallelSearchFig3(benchmark::State& state) {
  const auto app = apps::build_fig1();
  const auto derived = derive_task_graph(app.net, app.fig3_wcets());
  for (auto _ : state) {
    benchmark::DoNotOptimize(sched::quick_parallel_search(derived.graph, 2).best.makespan);
  }
}
BENCHMARK(BM_ParallelSearchFig3)->Unit(benchmark::kMillisecond);

}  // namespace

int main(int argc, char** argv) {
  print_report();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
