// Partitioned-scheduling throughput: the evaluator's partition-constrained
// kernel vs. the reference partitioned_list_schedule rescan, on a 256-job
// periodic pipeline (16 processes x 16 frames — the paper's deployment
// model, one process pinned per "thread"). Two measurements:
//
//   1. orders/sec scoring SP orders under a fixed WFD assignment — the
//      kernel's per-processor ready heaps (O((n+E) log n)) against the
//      reference O(n^2) ready rescan, with score AND placement equality
//      checked side by side (exit 1 on any divergence);
//   2. PartitionedScheduler reuse vs. per-call partition_and_schedule —
//      what "partitioned-wfd" saves by computing the WFD assignment and
//      compiling the constrained evaluator once per graph instead of once
//      per seed.
//
// Emits BENCH_partitioned.json (bench_json.hpp). `--smoke` runs the
// report + equality checks only, skipping the google-benchmark loops.
#include <benchmark/benchmark.h>

#include <chrono>
#include <cstdio>
#include <cstring>
#include <vector>

#include "bench_graphs.hpp"
#include "bench_json.hpp"
#include "sched/partitioned.hpp"
#include "sched/priorities.hpp"

namespace {

using namespace fppn;

using benchgraphs::periodic_pipeline_graph;

constexpr int kProcesses = 16;
constexpr int kFrames = 16;
constexpr std::int64_t kPeriod = 100;
constexpr std::int64_t kProcessors = 4;

sched::EvalScore score_of(const TaskGraph& tg, const StaticSchedule& s) {
  sched::EvalScore score;
  score.makespan = s.makespan(tg);
  score.deadline_violations = s.count_violations(tg).deadline;
  return score;
}

bool placements_equal(const StaticSchedule& a, const StaticSchedule& b) {
  if (a.job_count() != b.job_count()) {
    return false;
  }
  for (std::size_t i = 0; i < a.job_count(); ++i) {
    const JobId id(i);
    if (a.is_placed(id) != b.is_placed(id)) {
      return false;
    }
    if (a.is_placed(id) &&
        (a.placement(id).processor != b.placement(id).processor ||
         a.placement(id).start != b.placement(id).start)) {
      return false;
    }
  }
  return true;
}

/// One SP order per heuristic — the same candidate pool "partitioned-wfd"
/// walks across parallel_search seeds.
std::vector<std::vector<JobId>> heuristic_orders(const TaskGraph& tg) {
  std::vector<std::vector<JobId>> orders;
  for (const PriorityHeuristic h : all_heuristics()) {
    orders.push_back(schedule_priority(tg, h));
  }
  return orders;
}

/// Kernel vs. reference orders/sec under one fixed WFD assignment.
/// Returns false when any order's score or placement diverges or the
/// kernel misses the 3x acceptance floor.
bool print_kernel_report(benchjson::Report& report) {
  const TaskGraph tg = periodic_pipeline_graph(kProcesses, kFrames, kPeriod, 7);
  const std::size_t n = tg.job_count();
  const std::vector<std::vector<JobId>> orders = heuristic_orders(tg);
  std::printf("=== partition kernel vs reference rescan, %zu jobs, M=%lld ===\n\n",
              n, static_cast<long long>(kProcessors));

  PartitionedScheduler kernel(tg, kProcesses, kProcessors, /*use_kernel=*/true);
  PartitionedScheduler reference(tg, kProcesses, kProcessors, /*use_kernel=*/false);

  // Equality first: every order's schedule, placement by placement.
  bool agree = true;
  for (const std::vector<JobId>& order : orders) {
    const StaticSchedule fast = kernel.schedule_order(order);
    const StaticSchedule slow = reference.schedule_order(order);
    const sched::EvalScore fast_score = score_of(tg, fast);
    const sched::EvalScore slow_score = score_of(tg, slow);
    agree = agree && placements_equal(fast, slow) &&
            fast_score.makespan == slow_score.makespan &&
            fast_score.deadline_violations == slow_score.deadline_violations &&
            kernel.evaluate_order(order).makespan == fast_score.makespan;
  }

  using Clock = std::chrono::steady_clock;
  constexpr std::size_t kEvals = 2000;
  const auto rate_of = [&](auto&& eval) {
    (void)eval(orders[0]);  // scratch warm-up
    const auto begin = Clock::now();
    std::size_t checksum = 0;
    for (std::size_t k = 0; k < kEvals; ++k) {
      checksum += eval(orders[k % orders.size()]);
    }
    benchmark::DoNotOptimize(checksum);
    const double sec = std::chrono::duration<double>(Clock::now() - begin).count();
    return sec > 0.0 ? static_cast<double>(kEvals) / sec : 0.0;
  };
  // Score-only on the kernel (what the strategy's search loop does) vs.
  // the reference path, which has no score-only mode and must materialize.
  const double kernel_rate = rate_of([&](const std::vector<JobId>& order) {
    return kernel.evaluate_order(order).deadline_violations;
  });
  const double reference_rate = rate_of([&](const std::vector<JobId>& order) {
    return score_of(tg, reference.schedule_order(order)).deadline_violations;
  });
  const double speedup = reference_rate > 0.0 ? kernel_rate / reference_rate : 0.0;

  std::printf("score+placement agreement over %zu orders: %s\n", orders.size(),
              agree ? "IDENTICAL" : "DIVERGED");
  std::printf("kernel:    %12.0f orders/sec\n", kernel_rate);
  std::printf("reference: %12.0f orders/sec\n", reference_rate);
  std::printf("speedup:   %12.1fx (acceptance floor: 3x)\n\n", speedup);

  report.metric("jobs", static_cast<long long>(n));
  report.metric("processors", static_cast<long long>(kProcessors));
  report.metric("kernel_orders_per_sec", kernel_rate);
  report.metric("reference_orders_per_sec", reference_rate);
  report.metric("kernel_speedup", speedup);
  report.metric("kernel_scores_agree", static_cast<long long>(agree ? 1 : 0));
  report.metric("kernel_floor_met",
                static_cast<long long>(speedup >= 3.0 ? 1 : 0));
  if (speedup < 3.0) {
    std::fprintf(stderr, "FAIL: partition kernel speedup %.2fx below the 3x floor\n",
                 speedup);
  }
  return agree && speedup >= 3.0;
}

/// PartitionedScheduler reuse vs. fresh-per-round construction: the
/// per-seed setup cost (WFD assignment + constrained-evaluator compile)
/// the reusable scratch amortizes away — what "partitioned-wfd" saves by
/// keeping one scheduler per graph across parallel_search seeds. Returns
/// false on any score divergence between the two paths (no speedup floor
/// — the ratio is a setup:work balance, not a kernel property).
bool print_reuse_report(benchjson::Report& report) {
  const TaskGraph tg = periodic_pipeline_graph(kProcesses, kFrames, kPeriod, 7);
  std::printf("=== scheduler reuse vs per-call setup, %zu jobs ===\n\n",
              tg.job_count());

  const std::vector<std::vector<JobId>> orders = heuristic_orders(tg);
  constexpr std::size_t kRounds = 200;
  using Clock = std::chrono::steady_clock;

  bool agree = true;
  // Per-call: a fresh scheduler every round — WFD assignment + evaluator
  // compile paid per seed, which is what partition_and_schedule does.
  const auto fresh_begin = Clock::now();
  std::size_t fresh_checksum = 0;
  for (std::size_t k = 0; k < kRounds; ++k) {
    PartitionedScheduler fresh(tg, kProcesses, kProcessors);
    fresh_checksum +=
        fresh.evaluate_order(orders[k % orders.size()]).deadline_violations;
  }
  const double fresh_seconds =
      std::chrono::duration<double>(Clock::now() - fresh_begin).count();

  // Reuse: one scheduler, score-only per round (the strategy's loop).
  const auto reuse_begin = Clock::now();
  PartitionedScheduler scheduler(tg, kProcesses, kProcessors);
  std::size_t reuse_checksum = 0;
  for (std::size_t k = 0; k < kRounds; ++k) {
    reuse_checksum +=
        scheduler.evaluate_order(orders[k % orders.size()]).deadline_violations;
  }
  const double reuse_seconds =
      std::chrono::duration<double>(Clock::now() - reuse_begin).count();
  agree = fresh_checksum == reuse_checksum;

  const double fresh_rate =
      fresh_seconds > 0.0 ? static_cast<double>(kRounds) / fresh_seconds : 0.0;
  const double reuse_rate =
      reuse_seconds > 0.0 ? static_cast<double>(kRounds) / reuse_seconds : 0.0;
  const double speedup = fresh_rate > 0.0 ? reuse_rate / fresh_rate : 0.0;

  std::printf("score agreement over %zu rounds: %s\n", kRounds,
              agree ? "IDENTICAL" : "DIVERGED");
  std::printf("reuse:    %12.0f scores/sec\n", reuse_rate);
  std::printf("per-call: %12.0f scores/sec\n", fresh_rate);
  std::printf("speedup:  %12.1fx\n\n", speedup);

  report.metric("reuse_scores_per_sec", reuse_rate);
  report.metric("fresh_scores_per_sec", fresh_rate);
  report.metric("reuse_speedup", speedup);
  report.metric("reuse_scores_agree", static_cast<long long>(agree ? 1 : 0));
  return agree;
}

void BM_PartitionKernel(benchmark::State& state) {
  const TaskGraph tg = periodic_pipeline_graph(
      static_cast<int>(state.range(0)), kFrames, kPeriod, 7);
  PartitionedScheduler scheduler(tg, static_cast<std::size_t>(state.range(0)),
                                 kProcessors);
  const std::vector<JobId> order =
      schedule_priority(tg, PriorityHeuristic::kAlapEdf);
  for (auto _ : state) {
    benchmark::DoNotOptimize(scheduler.evaluate_order(order).deadline_violations);
  }
  state.SetLabel(std::to_string(tg.job_count()) + " jobs");
}
BENCHMARK(BM_PartitionKernel)->Arg(8)->Arg(16);

void BM_PartitionReference(benchmark::State& state) {
  const TaskGraph tg = periodic_pipeline_graph(
      static_cast<int>(state.range(0)), kFrames, kPeriod, 7);
  PartitionedScheduler scheduler(tg, static_cast<std::size_t>(state.range(0)),
                                 kProcessors, /*use_kernel=*/false);
  const std::vector<JobId> order =
      schedule_priority(tg, PriorityHeuristic::kAlapEdf);
  for (auto _ : state) {
    const StaticSchedule s = scheduler.schedule_order(order);
    benchmark::DoNotOptimize(s.count_violations(tg).deadline);
  }
  state.SetLabel(std::to_string(tg.job_count()) + " jobs");
}
BENCHMARK(BM_PartitionReference)->Arg(8)->Arg(16);

}  // namespace

int main(int argc, char** argv) {
  std::printf(
      "partitioned scheduling: the evaluator's partition-constrained\n"
      "kernel vs the reference rescan, and what the reusable scheduler\n"
      "scratch saves over per-call setup.\n\n");
  benchjson::Report report("partitioned");
  const bool kernel_ok = print_kernel_report(report);
  const bool reuse_ok = print_reuse_report(report);
  const std::string json_path = report.write();
  if (!json_path.empty()) {
    std::printf("wrote %s\n", json_path.c_str());
  }
  if (!kernel_ok || !reuse_ok) {
    return 1;  // divergence or floor miss, already reported
  }
  const bool smoke = argc > 1 && std::strcmp(argv[1], "--smoke") == 0;
  if (smoke) {
    return 0;
  }
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
