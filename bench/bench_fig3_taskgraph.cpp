// E1 (Fig. 1 + Fig. 3): regenerates the paper's example task graph —
// the 10 jobs with their (A, D, C) tuples and the reduced edge set —
// and benchmarks the derivation itself.
#include <benchmark/benchmark.h>

#include <cstdio>

#include "apps/fig1.hpp"
#include "taskgraph/analysis.hpp"
#include "taskgraph/derivation.hpp"

namespace {

void print_report() {
  using namespace fppn;
  const auto app = apps::build_fig1();
  const auto derived = derive_task_graph(app.net, app.fig3_wcets());

  std::printf("=== Fig. 3: task graph for the Fig. 1 process network ===\n");
  std::printf("hyperperiod H = %s ms (paper: 200)\n",
              derived.hyperperiod.to_string().c_str());
  std::printf("jobs = %zu (paper: 10), edges after reduction = %zu, removed = %zu\n\n",
              derived.graph.job_count(), derived.graph.edge_count(),
              derived.edges_removed);
  std::printf("%s\n", derived.graph.to_table().c_str());

  const ServerInfo& coef = derived.servers.at(app.coef_b);
  std::printf("CoefB server: period %s (user FilterB), corrected deadline %s "
              "(= 700 - 200), truncated to H\n",
              coef.server_period.to_string().c_str(),
              coef.corrected_deadline.to_string().c_str());
  const auto in_a = derived.graph.find("InputA[1]");
  const auto norm = derived.graph.find("NormA[1]");
  std::printf("redundant InputA[1]->NormA[1] edge removed: %s (paper: removed)\n",
              derived.graph.has_edge(*in_a, *norm) ? "NO" : "yes");

  const LoadResult load = task_graph_load(derived.graph);
  std::printf("Load(TG) = %s (~%.3f) over [%s, %s) => >= %lld processor(s)\n\n",
              load.load.to_string().c_str(), load.load_value(),
              load.window_start.to_string().c_str(),
              load.window_end.to_string().c_str(),
              static_cast<long long>(load.min_processors()));
  std::printf("DOT:\n%s\n", derived.graph.to_dot().c_str());
}

void BM_DeriveFig3(benchmark::State& state) {
  using namespace fppn;
  const auto app = apps::build_fig1();
  const WcetMap wcets = app.fig3_wcets();
  for (auto _ : state) {
    auto derived = derive_task_graph(app.net, wcets);
    benchmark::DoNotOptimize(derived.graph.job_count());
  }
}
BENCHMARK(BM_DeriveFig3);

void BM_TransitiveReduction(benchmark::State& state) {
  using namespace fppn;
  const auto app = apps::build_fig1();
  const WcetMap wcets = app.fig3_wcets();
  DerivationOptions opts;
  opts.transitive_reduce = false;
  for (auto _ : state) {
    auto derived = derive_task_graph(app.net, wcets, opts);
    benchmark::DoNotOptimize(derived.graph.transitive_reduce());
  }
}
BENCHMARK(BM_TransitiveReduction);

void BM_LoadMetric(benchmark::State& state) {
  using namespace fppn;
  const auto app = apps::build_fig1();
  const auto derived = derive_task_graph(app.net, app.fig3_wcets());
  for (auto _ : state) {
    benchmark::DoNotOptimize(task_graph_load(derived.graph).load_value());
  }
}
BENCHMARK(BM_LoadMetric);

}  // namespace

int main(int argc, char** argv) {
  print_report();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
