// Fuzz-loop throughput and self-check: scenario generation rate, the
// full differential-check rate (reference + toggled search, TA oracle,
// policy trace), and two hard gates — a mismatch-free sweep and the
// injected-bug shrink/repro/replay pipeline — emitted as gate bits in
// BENCH_fuzz.json so CI fails when either contract breaks.
#include <benchmark/benchmark.h>

#include <unistd.h>

#include <chrono>
#include <cstdio>
#include <cstring>
#include <filesystem>

#include "bench_json.hpp"
#include "gen/fuzz.hpp"
#include "gen/scenario.hpp"

namespace {

using namespace fppn;

using Clock = std::chrono::steady_clock;

double seconds_since(const Clock::time_point& t0) {
  return std::chrono::duration<double>(Clock::now() - t0).count();
}

/// Generation-only rate: make_scenario + derivation, no search.
void print_generation_report(benchjson::Report& report) {
  const std::uint64_t kSeeds = 256;
  const Clock::time_point t0 = Clock::now();
  std::size_t jobs = 0;
  for (std::uint64_t seed = 1; seed <= kSeeds; ++seed) {
    const gen::Scenario s = gen::make_scenario(seed);
    jobs += derive_task_graph(s.net, s.wcets).graph.job_count();
  }
  const double elapsed = seconds_since(t0);
  const double graphs_per_sec = static_cast<double>(kSeeds) / elapsed;
  std::printf("generation: %llu scenarios (%zu jobs) in %.2fs = %.0f graphs/sec\n",
              static_cast<unsigned long long>(kSeeds), jobs, elapsed, graphs_per_sec);
  report.metric("generate_graphs_per_sec", graphs_per_sec);
  report.metric("generate_jobs_total", static_cast<long long>(jobs));
}

/// Full differential sweep: every check enabled, all families. The gate:
/// zero mismatches.
bool print_sweep_report(benchjson::Report& report) {
  gen::FuzzRunConfig run;
  run.base_seed = 1;
  run.seeds = 96;
  const Clock::time_point t0 = Clock::now();
  const gen::FuzzStats stats = gen::run_fuzz(run);
  const double elapsed = seconds_since(t0);
  const double checked_per_sec = static_cast<double>(stats.scenarios) / elapsed;
  const bool clean = stats.mismatches.empty();
  std::printf(
      "differential sweep: %zu scenarios (%zu jobs, %zu TA-checked, "
      "%zu trace-checked) in %.2fs = %.1f graphs/sec — %s\n",
      stats.scenarios, stats.jobs, stats.ta_checked, stats.trace_checked, elapsed,
      checked_per_sec, clean ? "clean" : "MISMATCH");
  if (!clean) {
    std::fprintf(stderr, "first mismatch [%s]: %s\n",
                 stats.mismatches.front().check.c_str(),
                 stats.mismatches.front().detail.c_str());
  }
  report.metric("fuzz_graphs_per_sec", checked_per_sec);
  report.metric("fuzz_scenarios", static_cast<long long>(stats.scenarios));
  report.metric("fuzz_jobs_total", static_cast<long long>(stats.jobs));
  report.metric("fuzz_ta_checked", static_cast<long long>(stats.ta_checked));
  report.metric("fuzz_trace_checked", static_cast<long long>(stats.trace_checked));
  report.metric("fuzz_mismatch_free_agree", static_cast<long long>(clean ? 1 : 0));
  return clean;
}

/// The injected-bug pipeline: mismatch -> shrink -> repro -> replay
/// re-trigger, and a clean replay once the "bug" is fixed.
bool print_repro_report(benchjson::Report& report) {
  namespace fs = std::filesystem;
  const std::string dir =
      (fs::temp_directory_path() / ("fppn_bench_fuzz_" + std::to_string(::getpid())))
          .string();
  fs::remove_all(dir);
  bool ok = true;
  gen::FuzzConfig cfg;
  cfg.inject_bug = true;
  const gen::Scenario scenario = gen::make_scenario(gen::Family::kDiamond, 3);
  const gen::FuzzVerdict verdict = gen::check_scenario(scenario, cfg);
  ok = ok && verdict.mismatch.has_value();
  if (ok) {
    const gen::Scenario tiny = gen::shrink_scenario(scenario, *verdict.mismatch, cfg);
    ok = ok && tiny.spec.processes.size() <= 2;
    const std::string path = gen::write_repro(tiny, *verdict.mismatch, dir);
    const gen::ReplayOutcome hot = gen::replay_repro(path, cfg);
    ok = ok && hot.verdict.mismatch.has_value() &&
         hot.verdict.mismatch->check == "injected-bug";
    cfg.inject_bug = false;
    const gen::ReplayOutcome cold = gen::replay_repro(path, cfg);
    ok = ok && !cold.verdict.mismatch.has_value();
  }
  fs::remove_all(dir);
  std::printf("repro pipeline (inject -> shrink -> write -> replay): %s\n",
              ok ? "ok" : "FAIL");
  report.metric("fuzz_repro_replay_agree", static_cast<long long>(ok ? 1 : 0));
  return ok;
}

void BM_GenerateScenario(benchmark::State& state) {
  const auto family = static_cast<gen::Family>(state.range(0));
  std::uint64_t seed = 0;
  for (auto _ : state) {
    const gen::Scenario s = gen::make_scenario(family, ++seed);
    benchmark::DoNotOptimize(derive_task_graph(s.net, s.wcets).graph.job_count());
  }
}
BENCHMARK(BM_GenerateScenario)
    ->DenseRange(0, static_cast<int>(gen::all_families().size()) - 1)
    ->Unit(benchmark::kMicrosecond);

void BM_CheckScenario(benchmark::State& state) {
  const gen::FuzzConfig cfg;
  std::uint64_t seed = 0;
  for (auto _ : state) {
    const gen::FuzzVerdict v =
        gen::check_scenario(gen::make_scenario(++seed), cfg);
    benchmark::DoNotOptimize(v.jobs);
  }
}
BENCHMARK(BM_CheckScenario)->Unit(benchmark::kMillisecond);

}  // namespace

int main(int argc, char** argv) {
  std::printf(
      "differential fuzz loop: generated scenarios cross-checked against\n"
      "the reference scheduler and the TA oracle. The gates below are the\n"
      "same checks `fppn_tool fuzz` runs at scale.\n\n");
  benchjson::Report report("fuzz");
  print_generation_report(report);
  const bool sweep_ok = print_sweep_report(report);
  const bool repro_ok = print_repro_report(report);
  const std::string json_path = report.write();
  if (!json_path.empty()) {
    std::printf("\nwrote %s\n", json_path.c_str());
  }
  if (!sweep_ok || !repro_ok) {
    std::fprintf(stderr, "FAIL: fuzz gates did not hold\n");
    return 1;
  }
  const bool smoke = argc > 1 && std::strcmp(argv[1], "--smoke") == 0;
  if (smoke) {
    return 0;
  }
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
