// E7 (Prop. 2.1 / Prop. 4.1): determinism as an experiment — identical
// output histories across schedules, processor counts, execution-time
// jitter and tie-break orders; plus the cost of the semantics engines.
#include <benchmark/benchmark.h>

#include <cstdio>

#include "apps/fig1.hpp"
#include "apps/fms.hpp"
#include "engine/engine.hpp"
#include "runtime/runtime.hpp"
#include "taskgraph/derivation.hpp"

namespace {

using namespace fppn;

void print_report() {
  std::printf("=== Determinism: outputs as a function of inputs + time stamps ===\n\n");
  const auto app = apps::build_fig1();
  const auto derived = derive_task_graph(app.net, app.fig3_wcets());
  const InputScripts inputs =
      app.make_inputs({3, 1, 4, 1, 5, 9, 2, 6}, {1.5, 2.5, 3.5, 4.5});
  std::map<ProcessId, SporadicScript> scripts;
  scripts.emplace(app.coef_b, SporadicScript({Time::ms(50), Time::ms(390)}, 2,
                                             Duration::ms(700)));
  const std::int64_t frames = 3;
  const ZeroDelayResult ref =
      zero_delay_reference(app.net, derived.hyperperiod, frames, inputs, scripts);
  std::printf("reference (zero-delay) fingerprint: %016zx\n",
              ref.histories.fingerprint());

  std::printf("%-28s %-18s %-8s\n", "execution", "fingerprint", "equal?");
  for (const std::int64_t m : {2, 3, 4}) {
    for (const int jitter : {0, 1, 2}) {
      engine::SearchConfig config;
      config.processors = m;
      config.seeds_per_strategy = 1;
      config.max_iterations = 2000;  // the pre-engine defaults
      config.restarts = 2;
      config.warm_start = false;
      const auto attempt = engine::solve_graph(derived.graph, config).search.best;
      runtime::RunOptions opts;
      opts.frames = frames;
      if (jitter > 0) {
        opts.actual_time = [jitter](JobId id, std::int64_t frame) {
          return Duration::ms(3 + ((id.value() * 13 +
                                    static_cast<std::size_t>(frame * jitter)) %
                                   23));
        };
      }
      const RunResult run = runtime::make_runtime("vm")->run(
          app.net, derived, attempt.schedule, opts, inputs, scripts);
      const bool equal = run.histories.functionally_equal(ref.histories);
      char label[64];
      std::snprintf(label, sizeof label, "VM M=%lld jitter=%d",
                    static_cast<long long>(m), jitter);
      std::printf("%-28s %016zx   %s\n", label, run.histories.fingerprint(),
                  equal ? "yes" : "NO!");
    }
  }
  std::printf("\nAll rows must read 'yes': Prop. 2.1 + Prop. 4.1.\n\n");
}

void BM_ZeroDelayFig1(benchmark::State& state) {
  const auto app = apps::build_fig1();
  const InputScripts inputs = app.make_inputs({1, 2, 3, 4, 5, 6, 7, 8}, {1, 2, 3});
  const InvocationPlan plan = InvocationPlan::build(app.net, Time::ms(1400));
  for (auto _ : state) {
    auto res = run_zero_delay(app.net, plan, inputs);
    benchmark::DoNotOptimize(res.jobs_executed);
  }
}
BENCHMARK(BM_ZeroDelayFig1);

void BM_ZeroDelayFmsHyperperiod(benchmark::State& state) {
  const auto app = apps::build_fms();
  const InputScripts inputs = app.make_inputs(55);
  const InvocationPlan plan = InvocationPlan::build(app.net, Time::ms(10000));
  for (auto _ : state) {
    auto res = run_zero_delay(app.net, plan, inputs);
    benchmark::DoNotOptimize(res.jobs_executed);
  }
}
BENCHMARK(BM_ZeroDelayFmsHyperperiod)->Unit(benchmark::kMillisecond);

void BM_HistoryFingerprint(benchmark::State& state) {
  const auto app = apps::build_fms();
  const InputScripts inputs = app.make_inputs(55);
  const auto res = run_zero_delay(
      app.net, InvocationPlan::build(app.net, Time::ms(10000)), inputs);
  for (auto _ : state) {
    benchmark::DoNotOptimize(res.histories.fingerprint());
  }
}
BENCHMARK(BM_HistoryFingerprint);

}  // namespace

int main(int argc, char** argv) {
  print_report();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
