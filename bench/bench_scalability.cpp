// E5 (§V-B in-text): scalability of compile-time scheduling vs hyperperiod
// length — the paper hit "too high code generation overhead due to a long
// hyperperiod (40 s)" and reduced it to 10 s. This bench sweeps the
// MagnDeclin period (the hyperperiod lever) and synthetic multi-rate
// networks, reporting job/edge counts and derivation + scheduling time.
#include <benchmark/benchmark.h>

#include <cstdio>

#include "apps/fms.hpp"
#include "sched/registry.hpp"
#include "taskgraph/derivation.hpp"

namespace {

using namespace fppn;

/// Synthetic multi-rate network: `chains` independent 3-process pipelines,
/// pipeline i at period base*(i%3+1), plus one slow process at period
/// base*multiplier forcing a long hyperperiod.
Network synthetic_network(int chains, std::int64_t base, std::int64_t multiplier) {
  NetworkBuilder b;
  for (int i = 0; i < chains; ++i) {
    const Duration period = Duration::ms(base * (i % 3 + 1));
    const std::string suffix = std::to_string(i);
    const ProcessId src =
        b.periodic("src" + suffix, period, period, no_op_behavior());
    const ProcessId mid =
        b.periodic("mid" + suffix, period, period, no_op_behavior());
    const ProcessId dst =
        b.periodic("dst" + suffix, period, period, no_op_behavior());
    b.fifo("a" + suffix, src, mid);
    b.fifo("b" + suffix, mid, dst);
    b.priority(src, mid);
    b.priority(mid, dst);
  }
  const Duration slow = Duration::ms(base * multiplier);
  b.periodic("slow", slow, slow, no_op_behavior());
  return std::move(b).build();
}

void print_report() {
  std::printf("=== Scalability: hyperperiod vs task-graph size and tool time ===\n");
  std::printf("(the paper's motivation for the 40 s -> 10 s reduction: an online\n");
  std::printf(" policy subroutine handling a few thousand jobs explicitly)\n\n");
  std::printf("%-22s %-12s %-8s %-8s\n", "FMS MagnDeclin period", "hyperperiod",
              "jobs", "edges");
  for (const bool reduced : {true, false}) {
    const auto app = apps::build_fms(reduced);
    const auto derived = derive_task_graph(app.net, app.default_wcets());
    std::printf("%-22s %-12s %-8zu %-8zu\n", reduced ? "400 ms (reduced)" : "1600 ms",
                derived.hyperperiod.to_string().c_str(), derived.graph.job_count(),
                derived.graph.edge_count());
  }
  std::printf("\n(paper: reduced variant = 812 jobs / 1977 edges)\n\n");
}

void BM_FmsDerivationByHyperperiod(benchmark::State& state) {
  const bool reduced = state.range(0) == 1;
  const auto app = apps::build_fms(reduced);
  const WcetMap wcets = app.default_wcets();
  for (auto _ : state) {
    auto derived = derive_task_graph(app.net, wcets);
    benchmark::DoNotOptimize(derived.graph.job_count());
  }
  state.SetLabel(reduced ? "H=10s" : "H=40s");
}
BENCHMARK(BM_FmsDerivationByHyperperiod)->Arg(1)->Arg(0)
    ->Unit(benchmark::kMillisecond);

void BM_SyntheticDerivation(benchmark::State& state) {
  const Network net =
      synthetic_network(static_cast<int>(state.range(0)), 100, state.range(1));
  for (auto _ : state) {
    auto derived = derive_task_graph(net, Duration::ms(2));
    benchmark::DoNotOptimize(derived.graph.job_count());
  }
  const auto derived = derive_task_graph(net, Duration::ms(2));
  state.SetLabel(std::to_string(derived.graph.job_count()) + " jobs");
}
BENCHMARK(BM_SyntheticDerivation)
    ->Args({4, 6})
    ->Args({8, 6})
    ->Args({8, 12})
    ->Args({16, 12})
    ->Args({16, 24})
    ->Unit(benchmark::kMillisecond);

void BM_SyntheticListSchedule(benchmark::State& state) {
  const Network net =
      synthetic_network(static_cast<int>(state.range(0)), 100, state.range(1));
  const auto derived = derive_task_graph(net, Duration::ms(2));
  for (auto _ : state) {
    sched::StrategyOptions sopts;
    sopts.processors = 4;
    auto s = sched::StrategyRegistry::global().create("alap-edf")
                 ->schedule(derived.graph, sopts);
    benchmark::DoNotOptimize(s.makespan);
  }
  state.SetLabel(std::to_string(derived.graph.job_count()) + " jobs");
}
BENCHMARK(BM_SyntheticListSchedule)
    ->Args({4, 6})
    ->Args({8, 6})
    ->Args({8, 12})
    ->Args({16, 12})
    ->Unit(benchmark::kMillisecond);

}  // namespace

int main(int argc, char** argv) {
  print_report();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
