// Sharded-search benchmarks: the same candidate matrix evaluated by 1, 2
// and 4 real worker *processes* (fork per shard — the same isolation the
// fppn_tool orchestrator provides via search-worker), plus the in-process
// parallel search as the baseline. On a multi-core box the shard counts
// should scale the wall clock down until the per-process fixed costs
// (fork, graph re-derivation is skipped here, manifest I/O, merge)
// dominate; every variant returns the bit-identical winner.
#include <benchmark/benchmark.h>

#include <sys/wait.h>
#include <unistd.h>

#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <random>
#include <string>

#include "bench_graphs.hpp"
#include "engine/engine.hpp"
#include "sched/parallel_search.hpp"
#include "sched/sharded_search.hpp"

namespace {

using namespace fppn;
namespace fs = std::filesystem;

using benchgraphs::random_task_graph;

engine::SearchConfig search_config() {
  engine::SearchConfig config;
  config.processors = 4;
  config.seeds_per_strategy = 4;
  config.max_iterations = 800;
  config.restarts = 2;
  config.workers = 1;  // one thread per process: processes are the axis here
  config.warm_start = false;
  return config;
}

/// Launcher that forks one real OS process per shard; each child
/// evaluates its shard and exits, the parent waits for all of them.
sched::ShardLauncher fork_shard_launcher(const TaskGraph& tg,
                                         const sched::ParallelSearchOptions& opts,
                                         const std::string& shard_dir) {
  return [&tg, opts, shard_dir](const sched::ShardPlan& plan) {
    std::vector<pid_t> pids;
    for (int s = 0; s < plan.shards; ++s) {
      const pid_t pid = ::fork();
      if (pid < 0) {
        throw std::runtime_error("bench_sharded_search: fork failed");
      }
      if (pid == 0) {
        try {
          (void)sched::evaluate_shard(tg, opts, plan, s, shard_dir);
        } catch (...) {
          std::_Exit(1);
        }
        std::_Exit(0);
      }
      pids.push_back(pid);
    }
    for (const pid_t pid : pids) {
      int status = 0;
      ::waitpid(pid, &status, 0);
      if (!WIFEXITED(status) || WEXITSTATUS(status) != 0) {
        throw std::runtime_error("bench_sharded_search: shard worker failed");
      }
    }
  };
}

/// Fresh scratch directory per iteration (shard results are per-run
/// state; a populated directory would turn the run into a pure merge).
std::string fresh_shard_dir(int shards) {
  static int counter = 0;
  const std::string dir =
      (fs::temp_directory_path() /
       ("fppn_bench_shards_" + std::to_string(::getpid()) + "_" +
        std::to_string(shards) + "_" + std::to_string(counter++)))
          .string();
  fs::remove_all(dir);
  return dir;
}

void BM_ShardedSearchProcesses(benchmark::State& state) {
  const int shards = static_cast<int>(state.range(0));
  const TaskGraph tg = random_task_graph(8, 8, 900, 21);
  const sched::ParallelSearchOptions opts = search_config().search_options();
  std::string winner;
  for (auto _ : state) {
    const std::string dir = fresh_shard_dir(shards);
    engine::SolveRequest request;
    request.graph = &tg;
    request.config = search_config();
    request.config.shards = shards;
    request.config.shard_dir = dir;
    request.make_shard_launcher = [&tg, &opts](const std::string& shard_dir) {
      return fork_shard_launcher(tg, opts, shard_dir);
    };
    const engine::SolveReport report = engine::solve_once(request);
    benchmark::DoNotOptimize(report.search.best.makespan);
    winner = report.search.best.strategy + "/" + std::to_string(report.search.seed);
    std::error_code ec;
    fs::remove_all(dir, ec);
  }
  state.SetLabel(std::to_string(tg.job_count()) + " jobs, " + std::to_string(shards) +
                 " process(es), winner " + winner);
}
BENCHMARK(BM_ShardedSearchProcesses)
    ->Arg(1)
    ->Arg(2)
    ->Arg(4)
    ->Unit(benchmark::kMillisecond)
    ->MeasureProcessCPUTime()
    ->UseRealTime();

void BM_InProcessBaseline(benchmark::State& state) {
  const TaskGraph tg = random_task_graph(8, 8, 900, 21);
  const engine::SearchConfig config = search_config();
  std::string winner;
  for (auto _ : state) {
    const engine::SolveReport report = engine::solve_graph(tg, config);
    benchmark::DoNotOptimize(report.search.best.makespan);
    winner = report.search.best.strategy + "/" + std::to_string(report.search.seed);
  }
  state.SetLabel(std::to_string(tg.job_count()) + " jobs, 1 thread, winner " + winner);
}
BENCHMARK(BM_InProcessBaseline)->Unit(benchmark::kMillisecond);

}  // namespace

int main(int argc, char** argv) {
  std::printf(
      "sharded-search benchmarks: N worker processes evaluate disjoint shards\n"
      "of the candidate matrix and the merge picks the bit-identical winner of\n"
      "the in-process search; compare 1 vs 2 vs 4 processes for the scaling.\n\n");
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
