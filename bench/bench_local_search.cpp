// The evaluation kernel's headline numbers: candidate-evaluations/sec of
// sched::Evaluator vs. the reference list_schedule + feasibility pipeline
// on a 256-job synthetic graph (the ISSUE-5 acceptance metric), plus a
// fast-vs-reference winner-equality smoke on the paper's fig7 FMS example
// that CI runs on every push (exit 1 on any divergence).
//
// Emits BENCH_local_search.json (bench_json.hpp). `--smoke` runs the
// report + equality check only, skipping the google-benchmark loops.
#include <benchmark/benchmark.h>

#include <chrono>
#include <cstdio>
#include <cstring>
#include <random>

#include "apps/fms.hpp"
#include "bench_graphs.hpp"
#include "bench_json.hpp"
#include "engine/engine.hpp"
#include "sched/evaluator.hpp"
#include "sched/local_search.hpp"
#include "sched/parallel_search.hpp"
#include "taskgraph/derivation.hpp"

namespace {

using namespace fppn;

using benchgraphs::periodic_pipeline_graph;
using benchgraphs::random_task_graph;

sched::EvalScore reference_score(const TaskGraph& tg, const std::vector<JobId>& order,
                                 std::int64_t processors) {
  const StaticSchedule s = list_schedule(tg, order, processors);
  sched::EvalScore score;
  score.makespan = s.makespan(tg);
  score.deadline_violations = s.count_violations(tg).deadline;
  return score;
}

/// Evaluations/sec of one evaluation function over a rotating set of
/// orders (a small pool so the measurement is not one memoized order).
template <class Eval>
double measure_evals_per_sec(const std::vector<std::vector<JobId>>& orders,
                             std::size_t evaluations, Eval&& eval) {
  using Clock = std::chrono::steady_clock;
  // One warm-up pass (first kernel call sizes its scratch).
  (void)eval(orders[0]);
  const auto begin = Clock::now();
  std::size_t checksum = 0;
  for (std::size_t k = 0; k < evaluations; ++k) {
    checksum += eval(orders[k % orders.size()]).deadline_violations;
  }
  const double seconds = std::chrono::duration<double>(Clock::now() - begin).count();
  benchmark::DoNotOptimize(checksum);
  return seconds > 0.0 ? static_cast<double>(evaluations) / seconds : 0.0;
}

bool placements_equal(const StaticSchedule& a, const StaticSchedule& b) {
  if (a.job_count() != b.job_count()) {
    return false;
  }
  for (std::size_t i = 0; i < a.job_count(); ++i) {
    const JobId id(i);
    if (a.is_placed(id) != b.is_placed(id)) {
      return false;
    }
    if (a.is_placed(id) &&
        (a.placement(id).processor != b.placement(id).processor ||
         a.placement(id).start != b.placement(id).start)) {
      return false;
    }
  }
  return true;
}

/// Winner-equality smoke on fig7 (the FMS avionics application): the full
/// parallel search with the kernel on vs. off must pick the bit-identical
/// winner. Returns true on equality.
bool fms_winner_equality(benchjson::Report& report) {
  const auto app = apps::build_fms();
  const auto derived = derive_task_graph(app.net, app.default_wcets());
  engine::SearchConfig config;
  config.processors = 1;
  config.workers = 2;
  config.seeds_per_strategy = 2;
  config.max_iterations = 400;
  config.restarts = 1;
  config.warm_start = false;
  config.use_fast_evaluator = true;
  const sched::ParallelSearchResult fast =
      engine::solve_graph(derived.graph, config).search;
  config.use_fast_evaluator = false;
  const sched::ParallelSearchResult reference =
      engine::solve_graph(derived.graph, config).search;
  const bool equal = fast.best.strategy == reference.best.strategy &&
                     fast.seed == reference.seed &&
                     fast.best.makespan == reference.best.makespan &&
                     fast.best.deadline_violations ==
                         reference.best.deadline_violations &&
                     fast.best.feasible == reference.best.feasible &&
                     placements_equal(fast.best.schedule, reference.best.schedule);
  std::printf("fig7 FMS winner equality (fast vs reference): %s\n",
              equal ? "IDENTICAL" : "DIVERGED");
  std::printf("  fast:      %s seed %llu makespan %s\n", fast.best.strategy.c_str(),
              static_cast<unsigned long long>(fast.seed),
              fast.best.makespan.to_string().c_str());
  std::printf("  reference: %s seed %llu makespan %s\n",
              reference.best.strategy.c_str(),
              static_cast<unsigned long long>(reference.seed),
              reference.best.makespan.to_string().c_str());
  report.label("fms_winner", fast.best.strategy);
  report.metric("fms_winner_equal", static_cast<long long>(equal ? 1 : 0));
  return equal;
}

/// The headline report: kernel vs. reference evaluations/sec on a 256-job
/// graph. Returns false when the two pipelines disagree on any score.
bool print_report(benchjson::Report& report) {
  const TaskGraph tg = random_task_graph(16, 16, 900, 7);  // 256 jobs
  const std::int64_t processors = 4;
  std::printf("=== evaluation kernel vs reference, %zu jobs, %zu edges, M=%lld ===\n\n",
              tg.job_count(), tg.edge_count(), static_cast<long long>(processors));

  // A pool of candidate orders: all four heuristics plus random moves of
  // the first, mimicking the local search's neighborhood.
  std::vector<std::vector<JobId>> orders;
  for (const PriorityHeuristic h : all_heuristics()) {
    orders.push_back(schedule_priority(tg, h));
  }
  std::mt19937_64 rng(17);
  std::uniform_int_distribution<std::size_t> pick(0, tg.job_count() - 1);
  for (int k = 0; k < 12; ++k) {
    std::vector<JobId> moved = orders[0];
    std::swap(moved[pick(rng)], moved[pick(rng)]);
    orders.push_back(std::move(moved));
  }

  sched::Evaluator kernel(tg, processors);
  bool scores_agree = true;
  for (const auto& order : orders) {
    const sched::EvalScore fast = kernel.evaluate(order);
    const sched::EvalScore ref = reference_score(tg, order, processors);
    scores_agree = scores_agree &&
                   fast.deadline_violations == ref.deadline_violations &&
                   fast.makespan == ref.makespan;
  }
  std::printf("score agreement over %zu orders: %s\n", orders.size(),
              scores_agree ? "IDENTICAL" : "DIVERGED");

  const double kernel_rate = measure_evals_per_sec(
      orders, 2000, [&](const std::vector<JobId>& o) { return kernel.evaluate(o); });
  const double reference_rate = measure_evals_per_sec(
      orders, 60,
      [&](const std::vector<JobId>& o) { return reference_score(tg, o, processors); });
  const double speedup = reference_rate > 0.0 ? kernel_rate / reference_rate : 0.0;
  std::printf("kernel:    %12.0f evaluations/sec\n", kernel_rate);
  std::printf("reference: %12.0f evaluations/sec\n", reference_rate);
  std::printf("speedup:   %12.1fx (acceptance floor: 5x)\n\n", speedup);

  report.metric("jobs", static_cast<long long>(tg.job_count()));
  report.metric("edges", static_cast<long long>(tg.edge_count()));
  report.metric("processors", static_cast<long long>(processors));
  report.metric("kernel_evals_per_sec", kernel_rate);
  report.metric("reference_evals_per_sec", reference_rate);
  report.metric("speedup", speedup);
  report.metric("scores_agree", static_cast<long long>(scores_agree ? 1 : 0));
  return scores_agree;
}

/// The incremental layer's headline: moves/sec scoring a realistic
/// hill-climb move trace through evaluate_move (checkpoint resume +
/// suffix splice) vs. a from-scratch kernel evaluation per move, on a
/// 256-job periodic pipeline — the paper's workload model, where frame
/// boundaries drain the machine and bound how far a move's divergence can
/// propagate. The trace is recorded once — moves, acceptances and
/// rebaseline points, with the search's own 3:1 insertion:swap mix — then
/// replayed identically against both scorers, so the two measurements do
/// the exact same scheduling work. Returns false when any replayed score
/// diverges or the speedup misses the 3x acceptance floor.
bool print_incremental_report(benchjson::Report& report) {
  const TaskGraph tg = periodic_pipeline_graph(16, 16, 100, 7);  // 256 jobs
  const std::int64_t processors = 4;
  const std::size_t n = tg.job_count();
  constexpr std::size_t kMoves = 3000;
  std::printf("=== incremental vs full move scoring, %zu jobs, M=%lld ===\n\n",
              n, static_cast<long long>(processors));

  // Record the trajectory the local search would walk: random
  // insertion/swap perturbations of an incumbent (the search's 3:1 mix),
  // accepted exactly when strictly better.
  struct Move {
    std::vector<JobId> order;  ///< the perturbed order
    std::size_t lo = 0, hi = 0;
    sched::MoveKind kind = sched::MoveKind::kSwap;
    bool accepted = false;
  };
  std::vector<Move> trace;
  trace.reserve(kMoves);
  std::vector<JobId> start = schedule_priority(tg, PriorityHeuristic::kAlapEdf);
  {
    sched::Evaluator recorder(tg, processors);
    std::vector<JobId> current = start;
    sched::EvalScore cur = recorder.evaluate_baseline(current);
    std::mt19937_64 rng(23);
    std::uniform_int_distribution<std::size_t> pick(0, n - 1);
    for (std::size_t k = 0; k < kMoves; ++k) {
      Move mv;
      const std::size_t i = pick(rng);
      std::size_t j = pick(rng);
      if (i == j) {
        j = (j + 1) % n;
      }
      mv.lo = std::min(i, j);
      mv.hi = std::max(i, j);
      const bool swap_move = (rng() & 3U) == 0U;
      mv.kind = swap_move ? sched::MoveKind::kSwap : sched::MoveKind::kRotate;
      mv.order = current;
      if (swap_move) {
        std::swap(mv.order[i], mv.order[j]);
      } else {
        std::rotate(mv.order.begin() + static_cast<std::ptrdiff_t>(mv.lo),
                    mv.order.begin() + static_cast<std::ptrdiff_t>(mv.hi),
                    mv.order.begin() + static_cast<std::ptrdiff_t>(mv.hi) + 1);
      }
      const sched::EvalScore score =
          recorder.evaluate_move(mv.order, mv.lo, mv.hi, mv.kind);
      if (score.better_than(cur)) {
        mv.accepted = true;
        current = mv.order;
        cur = recorder.evaluate_baseline(current);
      }
      trace.push_back(std::move(mv));
    }
  }

  using Clock = std::chrono::steady_clock;
  bool scores_agree = true;

  // Both scorers replay the identical trace; each is timed three times
  // and the best pass counts, so a scheduler hiccup in one pass cannot
  // flip the floor gate. The score vectors come from the first pass
  // (every pass recomputes the identical values).
  constexpr int kReps = 3;

  // Full: a from-scratch kernel evaluation per move (what the search does
  // without the incremental layer).
  sched::Evaluator full(tg, processors);
  std::vector<sched::EvalScore> full_scores;
  full_scores.reserve(trace.size());
  (void)full.evaluate(start);  // scratch warm-up
  double full_seconds = 0.0;
  for (int rep = 0; rep < kReps; ++rep) {
    const auto begin = Clock::now();
    for (const Move& mv : trace) {
      const sched::EvalScore s = full.evaluate(mv.order);
      if (rep == 0) {
        full_scores.push_back(s);
      }
      benchmark::DoNotOptimize(s.deadline_violations);
    }
    const double sec = std::chrono::duration<double>(Clock::now() - begin).count();
    full_seconds = rep == 0 ? sec : std::min(full_seconds, sec);
  }

  // Incremental: evaluate_move per move, rebaselining on each acceptance
  // exactly like the recorded trajectory.
  sched::Evaluator inc(tg, processors);
  std::vector<sched::EvalScore> inc_scores;
  inc_scores.reserve(trace.size());
  double inc_seconds = 0.0;
  sched::EvalStats one_pass_stats;
  for (int rep = 0; rep < kReps; ++rep) {
    (void)inc.evaluate_baseline(start);
    const auto begin = Clock::now();
    for (const Move& mv : trace) {
      const sched::EvalScore s =
          inc.evaluate_move(mv.order, mv.lo, mv.hi, mv.kind);
      if (rep == 0) {
        inc_scores.push_back(s);
      }
      benchmark::DoNotOptimize(s.deadline_violations);
      if (mv.accepted) {
        (void)inc.evaluate_baseline(mv.order);
      }
    }
    const double sec = std::chrono::duration<double>(Clock::now() - begin).count();
    inc_seconds = rep == 0 ? sec : std::min(inc_seconds, sec);
    if (rep == 0) {
      one_pass_stats = inc.stats();  // counters for exactly one trace replay
    }
  }

  for (std::size_t k = 0; k < trace.size(); ++k) {
    scores_agree = scores_agree &&
                   inc_scores[k].deadline_violations ==
                       full_scores[k].deadline_violations &&
                   inc_scores[k].makespan == full_scores[k].makespan;
  }

  const double full_rate =
      full_seconds > 0.0 ? static_cast<double>(trace.size()) / full_seconds : 0.0;
  const double inc_rate =
      inc_seconds > 0.0 ? static_cast<double>(trace.size()) / inc_seconds : 0.0;
  const double speedup = full_rate > 0.0 ? inc_rate / full_rate : 0.0;
  const sched::EvalStats& st = one_pass_stats;
  std::printf("move-score agreement over %zu moves: %s\n", trace.size(),
              scores_agree ? "IDENTICAL" : "DIVERGED");
  std::printf("incremental: %12.0f moves/sec (%llu resumed, %llu spliced)\n",
              inc_rate, static_cast<unsigned long long>(st.resumed_evals),
              static_cast<unsigned long long>(st.spliced_evals));
  std::printf("full:        %12.0f moves/sec\n", full_rate);
  std::printf("speedup:     %12.1fx (acceptance floor: 3x)\n\n", speedup);

  report.metric("incremental_moves_per_sec", inc_rate);
  report.metric("full_moves_per_sec", full_rate);
  report.metric("incremental_speedup", speedup);
  report.metric("incremental_resumed", static_cast<long long>(st.resumed_evals));
  report.metric("incremental_spliced", static_cast<long long>(st.spliced_evals));
  report.metric("incremental_scores_agree",
                static_cast<long long>(scores_agree ? 1 : 0));
  report.metric("incremental_floor_met",
                static_cast<long long>(speedup >= 3.0 ? 1 : 0));
  if (speedup < 3.0) {
    std::fprintf(stderr, "FAIL: incremental speedup %.2fx below the 3x floor\n",
                 speedup);
  }
  return scores_agree && speedup >= 3.0;
}

void BM_KernelEvaluate(benchmark::State& state) {
  const TaskGraph tg = random_task_graph(static_cast<int>(state.range(0)),
                                         static_cast<int>(state.range(0)), 900, 7);
  sched::Evaluator kernel(tg, 4);
  const std::vector<JobId> order = schedule_priority(tg, PriorityHeuristic::kAlapEdf);
  for (auto _ : state) {
    benchmark::DoNotOptimize(kernel.evaluate(order).deadline_violations);
  }
  state.SetLabel(std::to_string(tg.job_count()) + " jobs");
}
BENCHMARK(BM_KernelEvaluate)->Arg(8)->Arg(16);

void BM_ReferenceEvaluate(benchmark::State& state) {
  const TaskGraph tg = random_task_graph(static_cast<int>(state.range(0)),
                                         static_cast<int>(state.range(0)), 900, 7);
  const std::vector<JobId> order = schedule_priority(tg, PriorityHeuristic::kAlapEdf);
  for (auto _ : state) {
    benchmark::DoNotOptimize(reference_score(tg, order, 4).deadline_violations);
  }
  state.SetLabel(std::to_string(tg.job_count()) + " jobs");
}
BENCHMARK(BM_ReferenceEvaluate)->Arg(8)->Arg(16);

void BM_OptimizePriority(benchmark::State& state) {
  const TaskGraph tg = random_task_graph(10, 10, 500, 7);
  LocalSearchOptions opts;
  opts.processors = 4;
  opts.max_iterations = 500;
  opts.restarts = 1;
  opts.use_fast_evaluator = state.range(0) != 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(optimize_priority(tg, opts).makespan);
  }
  state.SetLabel(opts.use_fast_evaluator ? "kernel" : "reference");
}
BENCHMARK(BM_OptimizePriority)->Arg(1)->Arg(0)->Unit(benchmark::kMillisecond);

}  // namespace

int main(int argc, char** argv) {
  std::printf(
      "local-search evaluation kernel: the same (violations, makespan)\n"
      "scores and placements as the reference pipeline, measured side by\n"
      "side. The search stack is only as fast as this inner loop.\n\n");
  benchjson::Report report("local_search");
  const bool scores_ok = print_report(report);
  const bool incremental_ok = print_incremental_report(report);
  const bool winner_ok = fms_winner_equality(report);
  const std::string json_path = report.write();
  if (!json_path.empty()) {
    std::printf("\nwrote %s\n", json_path.c_str());
  }
  if (!scores_ok || !winner_ok) {
    std::fprintf(stderr, "FAIL: kernel diverged from the reference pipeline\n");
    return 1;
  }
  if (!incremental_ok) {
    return 1;  // divergence or speedup floor miss, already reported
  }
  const bool smoke = argc > 1 && std::strcmp(argv[1], "--smoke") == 0;
  if (smoke) {
    return 0;
  }
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
