// E3 (Fig. 5 + Fig. 6, §V-A): the FFT streaming application on the
// virtual MPPA platform — loads with and without the runtime-overhead
// job, deadline misses of the 1- vs 2-processor mapping under the
// measured 41/20 ms frame overhead, and the execution Gantt chart.
#include <benchmark/benchmark.h>

#include <cstdio>

#include "apps/fft.hpp"
#include "runtime/runtime.hpp"
#include "sched/parallel_search.hpp"
#include "sim/gantt.hpp"
#include "taskgraph/analysis.hpp"
#include "taskgraph/derivation.hpp"

namespace {

using namespace fppn;

constexpr int kFrames = 4;

DerivedTaskGraph derive_fft(const apps::FftApp& app) {
  return derive_task_graph(app.net, app.uniform_wcets(Duration::ratio_ms(40, 3)));
}

InputScripts fft_inputs(const apps::FftApp& app) {
  std::vector<std::vector<double>> frames;
  for (int f = 0; f < kFrames + 1; ++f) {
    std::vector<double> block;
    for (int i = 0; i < app.points; ++i) {
      block.push_back(static_cast<double>((f * 31 + i * 7) % 13) - 6.0);
    }
    frames.push_back(std::move(block));
  }
  return app.make_inputs(frames);
}

void print_report() {
  const auto app = apps::build_fft(8);
  auto derived = derive_fft(app);

  std::printf("=== Fig. 5/6: FFT on the virtual MPPA platform ===\n");
  std::printf("network: %zu processes (generator + %dx%zu butterflies + consumer), "
              "T = d = 200 ms, C = 40/3 ms (~13.3; paper: 'roughly 14')\n",
              app.net.process_count(), app.stages,
              app.butterflies.empty() ? 0 : app.butterflies[0].size());

  const LoadResult base = task_graph_load(derived.graph);
  std::printf("load without overhead job: %.4f (paper: 0.93)\n", base.load_value());

  // The paper models the 41 ms arrival overhead as an extra job with a
  // precedence edge to the generator.
  auto loaded = derive_fft(app);
  Job oh;
  oh.process = ProcessId{app.net.process_count()};
  oh.arrival = Time::ms(0);
  oh.deadline = Time::ms(200);
  oh.wcet = Duration::ms(41);
  oh.name = "RT[1]";
  const JobId oid = loaded.graph.add_job(oh);
  loaded.graph.add_edge(oid, *loaded.graph.find("generator[1]"));
  const LoadResult with = task_graph_load(loaded.graph);
  std::printf("load with 41 ms overhead job: %.4f (paper: ~1.2) -> needs >= %lld "
              "processors\n\n",
              with.load_value(), static_cast<long long>(with.min_processors()));

  std::printf("%-6s %-10s %-12s %-14s %s\n", "procs", "feasible?", "misses/4fr",
              "overhead", "summary");
  for (const std::int64_t m : {1, 2, 3}) {
    const sched::StrategyResult attempt = sched::quick_parallel_search(derived.graph, m).best;
    runtime::RunOptions opts;
    opts.frames = kFrames;
    opts.overhead = OverheadModel::mppa_measured();
    const RunResult run = runtime::make_runtime("vm")->run(
        app.net, derived, attempt.schedule, opts, fft_inputs(app), {});
    std::printf("%-6lld %-10s %-12zu 41/20 ms      %s\n",
                static_cast<long long>(m), attempt.feasible ? "yes" : "no",
                run.misses.size(), run.trace.summary().c_str());
    if (m == 2) {
      std::printf("\nGantt (two processors, first two frames; RT row = runtime "
                  "overhead, Fig. 6):\n");
      GanttOptions gopts;
      gopts.to = Time::ms(400);
      std::printf("%s\n", render_gantt(run.trace, m, gopts).c_str());
    }
  }
  std::printf("paper: single-processor mapping missed deadlines due to runtime "
              "overhead; two processors showed none.\n\n");
}

void BM_VmRunFft(benchmark::State& state) {
  const auto app = apps::build_fft(8);
  const auto derived = derive_fft(app);
  const auto attempt = sched::quick_parallel_search(derived.graph, state.range(0)).best;
  const InputScripts inputs = fft_inputs(app);
  const auto vm = runtime::make_runtime("vm");
  runtime::RunOptions opts;
  opts.frames = kFrames;
  opts.overhead = OverheadModel::mppa_measured();
  for (auto _ : state) {
    auto run = vm->run(app.net, derived, attempt.schedule, opts, inputs, {});
    benchmark::DoNotOptimize(run.misses.size());
  }
}
BENCHMARK(BM_VmRunFft)->Arg(1)->Arg(2);

void BM_FftDerivationBySize(benchmark::State& state) {
  const int points = static_cast<int>(state.range(0));
  const auto app = apps::build_fft(points);
  const WcetMap wcets = app.uniform_wcets(Duration::ms(1));
  for (auto _ : state) {
    auto derived = derive_task_graph(app.net, wcets);
    benchmark::DoNotOptimize(derived.graph.edge_count());
  }
  state.SetComplexityN(points);
}
BENCHMARK(BM_FftDerivationBySize)->Arg(4)->Arg(8)->Arg(16)->Arg(32)->Arg(64)
    ->Complexity();

}  // namespace

int main(int argc, char** argv) {
  print_report();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
