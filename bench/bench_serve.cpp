// Serving-stack throughput and contract gates: the in-process net::Server
// (reactor + bounded queue + 4 solver threads) with engine::SolveService
// behind it, driven by 32 concurrent socket clients over generated
// scenario mixes — cold requests/sec, warm (all-cached) requests/sec,
// p50/p99 end-to-end latency, and five hard gates emitted into
// BENCH_serve.json: every warm repeat answered with `evaluated 0`, a
// saturated queue answering the overload line immediately, the service
// counters agreeing with the driven load, a slow-loris client cut within
// 2x the request deadline while healthy clients are served
// (serve_deadline_enforced_agree), and a seeded fault-injection sweep
// finishing crash-free with uncorrupted responses
// (serve_chaos_crash_free_agree).
#include <benchmark/benchmark.h>

#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <atomic>
#include <cerrno>
#include <chrono>
#include <condition_variable>
#include <csignal>
#include <cstdint>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "bench_json.hpp"
#include "engine/engine.hpp"
#include "engine/service.hpp"
#include "gen/scenario.hpp"
#include "net/listener.hpp"
#include "net/server.hpp"
#include "testing/fault_injector.hpp"

namespace {

using namespace fppn;
namespace fs = std::filesystem;
using Clock = std::chrono::steady_clock;

constexpr int kClients = 32;
constexpr int kSolverThreads = 4;

double seconds_since(const Clock::time_point& t0) {
  return std::chrono::duration<double>(Clock::now() - t0).count();
}

std::string read_to_eof(int fd) {
  std::string data;
  char buf[4096];
  for (;;) {
    const ssize_t n = ::read(fd, buf, sizeof(buf));
    if (n > 0) {
      data.append(buf, static_cast<std::size_t>(n));
      continue;
    }
    if (n < 0 && errno == EINTR) {
      continue;
    }
    break;
  }
  return data;
}

void write_all(int fd, const std::string& data) {
  std::size_t off = 0;
  while (off < data.size()) {
    const ssize_t n = ::write(fd, data.data() + off, data.size() - off);
    if (n < 0) {
      if (errno == EINTR) {
        continue;
      }
      return;
    }
    off += static_cast<std::size_t>(n);
  }
}

std::string roundtrip(const net::Endpoint& endpoint, const std::string& request) {
  const int fd = net::connect_endpoint(endpoint);
  if (fd < 0) {
    return "<connect failed>";
  }
  write_all(fd, request);
  ::shutdown(fd, SHUT_WR);
  const std::string response = read_to_eof(fd);
  ::close(fd);
  return response;
}

/// The daemon wired up in-process: one Engine, one SolveService, one
/// net::Server on a private Unix socket, running on its own thread.
class ServeFixture {
 public:
  explicit ServeFixture(const std::string& tag, int solver_threads = kSolverThreads,
                        std::size_t queue_capacity = 64, int request_timeout_ms = 0) {
    socket_dir_ = (fs::temp_directory_path() /
                   ("fppn_bench_serve_" + tag + "_" + std::to_string(::getpid())))
                      .string();
    fs::remove_all(socket_dir_);
    fs::create_directories(socket_dir_);
    socket_path_ = socket_dir_ + "/serve.sock";

    engine::ServiceOptions service_options;
    service_options.processors = 2;
    service_options.seed = 1;
    service_ = std::make_unique<engine::SolveService>(engine_, service_options);

    net::ServerOptions options;
    options.solver_threads = solver_threads;
    options.queue_capacity = queue_capacity;
    options.request_timeout_ms = request_timeout_ms;
    net::ServerProtocol protocol;
    protocol.overloaded = [this] { return service_->overloaded_line(); };
    protocol.oversized = [this](std::size_t bytes) {
      return service_->oversized_line(bytes);
    };
    protocol.read_error = [this](int error) {
      return service_->read_error_line(error);
    };
    protocol.deadline_exceeded = [this] {
      return service_->deadline_exceeded_line();
    };
    protocol.timed_out = [this](net::Reactor::TimeoutKind kind) {
      service_->note_timeout(kind == net::Reactor::TimeoutKind::kIdle
                                 ? engine::ServeTimeout::kIdle
                                 : kind == net::Reactor::TimeoutKind::kRequest
                                       ? engine::ServeTimeout::kRequest
                                       : engine::ServeTimeout::kWrite);
    };
    server_ = std::make_unique<net::Server>(
        options, protocol,
        [this](std::string request, const net::RequestInfo& info) {
          engine::RequestLoad load;
          load.queue_wait_ms = info.queue_wait_ms;
          load.queue_depth = info.queue_depth;
          load.queue_capacity = info.queue_capacity;
          return service_->handle(std::move(request), load);
        });
    server_->add_listener(
        net::Listener::listen(net::Endpoint::unix_socket(socket_path_)));
    thread_ = std::thread([this] { server_->run(); });
  }

  ~ServeFixture() {
    server_->stop();
    thread_.join();
    std::error_code ec;
    fs::remove_all(socket_dir_, ec);
  }

  [[nodiscard]] net::Endpoint endpoint() const {
    return net::Endpoint::unix_socket(socket_path_);
  }
  [[nodiscard]] engine::SolveService& service() { return *service_; }
  [[nodiscard]] net::Server& server() { return *server_; }

 private:
  std::string socket_dir_;
  std::string socket_path_;
  engine::Engine engine_;
  std::unique_ptr<engine::SolveService> service_;
  std::unique_ptr<net::Server> server_;
  std::thread thread_;
};

/// One round: kClients concurrent connections, client i sending
/// requests[i]. Returns elapsed seconds; responses land in `responses`.
double drive_round(const net::Endpoint& endpoint,
                   const std::vector<std::string>& requests,
                   std::vector<std::string>& responses) {
  responses.assign(requests.size(), "");
  const Clock::time_point t0 = Clock::now();
  std::vector<std::thread> clients;
  clients.reserve(requests.size());
  for (std::size_t i = 0; i < requests.size(); ++i) {
    clients.emplace_back([&, i] { responses[i] = roundtrip(endpoint, requests[i]); });
  }
  for (std::thread& t : clients) {
    t.join();
  }
  return seconds_since(t0);
}

/// Cold + warm concurrent rounds over a generated scenario mix, the
/// repeat-is-cached gate, and the counter-agreement gate.
bool print_throughput_report(benchjson::Report& report) {
  // 32 distinct generated scenarios (round-robin families): distinct
  // fingerprints, so the cold round fills the cache and the warm round
  // must be answered from it entirely.
  std::vector<std::string> requests;
  requests.reserve(kClients);
  for (std::uint64_t seed = 1; seed <= kClients; ++seed) {
    requests.push_back(gen::scenario_text(gen::make_scenario(seed)));
  }

  ServeFixture fixture("throughput");
  std::vector<std::string> responses;

  const double cold_s = drive_round(fixture.endpoint(), requests, responses);
  bool all_ok = true;
  for (const std::string& r : responses) {
    all_ok = all_ok && r.rfind("fppn-serve ok", 0) == 0;
  }
  const double cold_rps = static_cast<double>(kClients) / cold_s;
  std::printf("cold: %d concurrent clients, %d solver threads: %.2fs = %.1f req/sec%s\n",
              kClients, kSolverThreads, cold_s, cold_rps,
              all_ok ? "" : "  [RESPONSE ERRORS]");

  const double warm_s = drive_round(fixture.endpoint(), requests, responses);
  bool all_cached = true;
  for (const std::string& r : responses) {
    all_cached = all_cached && r.rfind("fppn-serve ok", 0) == 0 &&
                 r.find(" evaluated 0 ") != std::string::npos;
  }
  const double warm_rps = static_cast<double>(kClients) / warm_s;
  std::printf("warm: same %d requests again: %.2fs = %.1f req/sec — %s\n", kClients,
              warm_s, warm_rps,
              all_cached ? "every repeat evaluated 0" : "CACHE MISSED A REPEAT");

  const engine::ServiceStats stats = fixture.service().stats();
  std::printf("latency: p50 %.2fms p99 %.2fms over %llu requests\n", stats.p50_ms,
              stats.p99_ms, static_cast<unsigned long long>(stats.requests));
  const bool counters_ok = all_ok &&
                           stats.requests == static_cast<std::uint64_t>(2 * kClients) &&
                           stats.ok == static_cast<std::uint64_t>(2 * kClients) &&
                           stats.errors == 0 && stats.overloaded == 0;
  if (!counters_ok) {
    std::fprintf(stderr,
                 "counter mismatch: requests %llu ok %llu errors %llu overloaded "
                 "%llu (expected %d/%d/0/0)\n",
                 static_cast<unsigned long long>(stats.requests),
                 static_cast<unsigned long long>(stats.ok),
                 static_cast<unsigned long long>(stats.errors),
                 static_cast<unsigned long long>(stats.overloaded), 2 * kClients,
                 2 * kClients);
  }

  report.metric("serve_clients", static_cast<long long>(kClients));
  report.metric("serve_solver_threads", static_cast<long long>(kSolverThreads));
  report.metric("serve_cold_requests_per_sec", cold_rps);
  report.metric("serve_warm_requests_per_sec", warm_rps);
  report.metric("serve_p50_ms", stats.p50_ms);
  report.metric("serve_p99_ms", stats.p99_ms);
  report.metric("serve_repeat_zero_eval_agree",
                static_cast<long long>((all_ok && all_cached) ? 1 : 0));
  report.metric("serve_stats_counters_agree", static_cast<long long>(counters_ok ? 1 : 0));
  return all_ok && all_cached && counters_ok;
}

/// Deterministic backpressure gate: one solver held shut by a latch
/// (magic "HOLD" requests the handler blocks on), one queue slot filled —
/// every further request must get the overload line immediately, and the
/// two admitted requests must still finish once the latch opens.
bool print_overload_report(benchjson::Report& report) {
  const std::string socket_dir =
      (fs::temp_directory_path() /
       ("fppn_bench_serve_overload_" + std::to_string(::getpid())))
          .string();
  fs::remove_all(socket_dir);
  fs::create_directories(socket_dir);
  const std::string socket_path = socket_dir + "/serve.sock";

  engine::Engine engine;
  engine::SolveService service(engine, engine::ServiceOptions{});

  std::mutex mu;
  std::condition_variable cv;
  bool release = false;
  std::atomic<int> active{0};

  net::ServerOptions options;
  options.solver_threads = 1;
  options.queue_capacity = 1;
  net::ServerProtocol protocol;
  protocol.overloaded = [&service] { return service.overloaded_line(); };
  net::Server server(options, protocol,
                     [&](std::string request, const net::RequestInfo& info) {
                       if (request == "HOLD") {
                         ++active;
                         std::unique_lock<std::mutex> lock(mu);
                         cv.wait(lock, [&] { return release; });
                         return std::string("held\n");
                       }
                       return service.handle(std::move(request), info.queue_wait_ms);
                     });
  server.add_listener(net::Listener::listen(net::Endpoint::unix_socket(socket_path)));
  std::thread server_thread([&] { server.run(); });
  const net::Endpoint endpoint = net::Endpoint::unix_socket(socket_path);

  // First HOLD occupies the solver, second fills the one queue slot: the
  // admission window is now provably zero until the latch opens.
  std::string response_a, response_b;
  std::thread client_a([&] { response_a = roundtrip(endpoint, "HOLD"); });
  for (int i = 0; i < 5000 && active.load() == 0; ++i) {
    ::usleep(1000);
  }
  std::thread client_b([&] { response_b = roundtrip(endpoint, "HOLD"); });
  for (int i = 0; i < 5000 && server.queue_size() == 0; ++i) {
    ::usleep(1000);
  }

  int rejected = 0;
  constexpr int kBurst = 8;
  const bool saturated = active.load() == 1 && server.queue_size() == 1;
  for (int i = 0; i < kBurst; ++i) {
    if (roundtrip(endpoint, "burst") == "fppn-serve error: overloaded\n") {
      ++rejected;
    }
  }
  {
    const std::lock_guard<std::mutex> lock(mu);
    release = true;
  }
  cv.notify_all();
  client_a.join();
  client_b.join();
  server.stop();
  server_thread.join();
  std::error_code ec;
  fs::remove_all(socket_dir, ec);

  const bool admitted_ok = response_a == "held\n" && response_b == "held\n";
  const engine::ServiceStats stats = service.stats();
  const bool ok = saturated && admitted_ok && rejected == kBurst &&
                  stats.overloaded == static_cast<std::uint64_t>(kBurst);
  std::printf(
      "overload: queue 1 + 1 solver saturated, burst of %d: %d rejected "
      "immediately, admitted pair %s\n",
      kBurst, rejected, admitted_ok ? "completed" : "FAILED");
  if (stats.overloaded != static_cast<std::uint64_t>(rejected)) {
    std::fprintf(stderr, "overload counter %llu != %d rejected responses\n",
                 static_cast<unsigned long long>(stats.overloaded), rejected);
  }
  report.metric("serve_overload_rejected_agree", static_cast<long long>(ok ? 1 : 0));
  return ok;
}

/// Deadline gate: a slow-loris client dripping one byte every 25 ms
/// (so its request never completes) against a server with a 250 ms
/// request deadline, while 16 healthy clients round-trip warm solves.
/// The loris must be disconnected within 2x the deadline, every healthy
/// client must be answered, and the service counters must record the
/// timeout — the daemon's liveness-under-abuse contract.
bool print_deadline_report(benchjson::Report& report) {
  constexpr int kDeadlineMs = 250;
  constexpr int kHealthy = 16;
  ServeFixture fixture("deadline", kSolverThreads, 64, kDeadlineMs);
  const std::string request = gen::scenario_text(gen::make_scenario(7));
  (void)roundtrip(fixture.endpoint(), request);  // warm: healthy trips hit cache

  bool loris_closed = false;
  double loris_ms = 0.0;
  std::thread loris([&] {
    const int fd = net::connect_endpoint(fixture.endpoint());
    if (fd < 0) {
      return;
    }
    const Clock::time_point t0 = Clock::now();
    while (seconds_since(t0) * 1000.0 < 4.0 * kDeadlineMs) {
      if (::write(fd, "x", 1) < 0 && errno != EINTR && errno != EAGAIN) {
        loris_closed = true;  // EPIPE/ECONNRESET: the server hung up
        break;
      }
      pollfd pfd{fd, POLLIN, 0};
      if (::poll(&pfd, 1, 25) > 0) {
        char buf[16];
        if (::read(fd, buf, sizeof(buf)) == 0) {
          loris_closed = true;  // EOF: ditto
          break;
        }
      }
    }
    loris_ms = seconds_since(t0) * 1000.0;
    ::close(fd);
  });

  std::atomic<int> healthy_ok{0};
  std::vector<std::thread> clients;
  clients.reserve(kHealthy);
  for (int i = 0; i < kHealthy; ++i) {
    clients.emplace_back([&] {
      if (roundtrip(fixture.endpoint(), request).rfind("fppn-serve ok", 0) == 0) {
        ++healthy_ok;
      }
    });
  }
  for (std::thread& t : clients) {
    t.join();
  }
  loris.join();

  const engine::ServiceStats stats = fixture.service().stats();
  const bool ok = loris_closed && loris_ms <= 2.0 * kDeadlineMs &&
                  healthy_ok.load() == kHealthy && stats.request_timeouts >= 1;
  std::printf(
      "deadline: slow-loris cut after %.0fms (deadline %dms, bound %dms), "
      "%d/%d healthy clients answered, %llu request timeout(s) counted\n",
      loris_ms, kDeadlineMs, 2 * kDeadlineMs, healthy_ok.load(), kHealthy,
      static_cast<unsigned long long>(stats.request_timeouts));
  report.metric("serve_loris_cut_ms", loris_ms);
  report.metric("serve_request_timeouts",
                static_cast<long long>(stats.request_timeouts));
  report.metric("serve_shed", static_cast<long long>(stats.shed));
  report.metric("serve_degraded", static_cast<long long>(stats.degraded));
  report.metric("serve_deadline_enforced_agree", static_cast<long long>(ok ? 1 : 0));
  return ok;
}

/// Chaos gate: a short seeded fault-injection sweep over the full
/// in-process stack — injected EINTR/EAGAIN storms, synthetic
/// ECONNRESETs, and short reads/writes on the serving path. Crash-free
/// means every round's server drains with the injector still armed;
/// clean means no client ever read bytes that are not a prefix of a real
/// "fppn-serve " response. The deep 200-seed ASan sweep lives in
/// serve_chaos_test; this gate keeps the bench honest about the same
/// invariant.
bool print_chaos_report(benchjson::Report& report) {
  constexpr int kSeeds = 8;
  const std::string request = gen::scenario_text(gen::make_scenario(11));
  const std::string header = "fppn-serve ";
  int dirty = 0;
  unsigned long long injected = 0;
  for (int seed = 1; seed <= kSeeds; ++seed) {
    {
      ServeFixture fixture("chaos" + std::to_string(seed), /*solver_threads=*/2,
                           /*queue_capacity=*/8, /*request_timeout_ms=*/500);
      testing::FaultInjector::instance().arm(
          testing::FaultConfig::uniform(static_cast<std::uint64_t>(seed), 96));
      const std::string replies[] = {
          roundtrip(fixture.endpoint(), request),
          roundtrip(fixture.endpoint(), "stats"),
          roundtrip(fixture.endpoint(), "garbage request\n"),
      };
      for (const std::string& r : replies) {
        const std::size_t n = std::min(r.size(), header.size());
        if (r != "<connect failed>" && r.compare(0, n, header, 0, n) != 0) {
          ++dirty;
        }
      }
      // An abandoned client: half a request, closed without reading —
      // the response lands on a dead peer while faults are firing.
      const int fd = net::connect_endpoint(fixture.endpoint());
      if (fd >= 0) {
        write_all(fd, request.substr(0, request.size() / 2));
        ::close(fd);
      }
      injected += testing::FaultInjector::instance().injected_total();
    }  // the fixture drains with the injector still armed
    testing::FaultInjector::instance().disarm();
  }
  const bool ok = dirty == 0;
  std::printf(
      "chaos: %d seeds, 4 clients each under fault injection (96/1024): "
      "%llu fault(s) injected, %d corrupt read(s), every round drained\n",
      kSeeds, injected, dirty);
  report.metric("serve_chaos_seeds", static_cast<long long>(kSeeds));
  report.metric("serve_chaos_injected_faults", static_cast<long long>(injected));
  report.metric("serve_chaos_crash_free_agree", static_cast<long long>(ok ? 1 : 0));
  return ok;
}

void BM_WarmServeRoundtrip(benchmark::State& state) {
  static ServeFixture* fixture = [] {
    auto* f = new ServeFixture("micro");
    return f;
  }();
  static const std::string request = gen::scenario_text(gen::make_scenario(3));
  (void)roundtrip(fixture->endpoint(), request);  // warm the cache
  for (auto _ : state) {
    benchmark::DoNotOptimize(roundtrip(fixture->endpoint(), request));
  }
}
BENCHMARK(BM_WarmServeRoundtrip)->Unit(benchmark::kMicrosecond);

void BM_StatsVerb(benchmark::State& state) {
  static ServeFixture fixture("stats");
  for (auto _ : state) {
    benchmark::DoNotOptimize(roundtrip(fixture.endpoint(), "stats"));
  }
}
BENCHMARK(BM_StatsVerb)->Unit(benchmark::kMicrosecond);

}  // namespace

int main(int argc, char** argv) {
  std::signal(SIGPIPE, SIG_IGN);
  std::printf(
      "serving stack: reactor + bounded work queue + solver pool over one\n"
      "engine. %d concurrent clients, %d solver threads, generated\n"
      "scenario mixes; the gates below are the daemon's serving contract.\n\n",
      kClients, kSolverThreads);
  benchjson::Report report("serve");
  const bool throughput_ok = print_throughput_report(report);
  const bool overload_ok = print_overload_report(report);
  const bool deadline_ok = print_deadline_report(report);
  const bool chaos_ok = print_chaos_report(report);
  const std::string json_path = report.write();
  if (!json_path.empty()) {
    std::printf("\nwrote %s\n", json_path.c_str());
  }
  if (!throughput_ok || !overload_ok || !deadline_ok || !chaos_ok) {
    std::fprintf(stderr, "FAIL: serve gates did not hold\n");
    return 1;
  }
  const bool smoke = argc > 1 && std::strcmp(argv[1], "--smoke") == 0;
  if (smoke) {
    return 0;
  }
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
