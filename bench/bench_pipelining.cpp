// E8 (extension; the paper's future work "buffering and pipelining"):
// single-slot vs buffered channels on an N-stage pipeline whose per-stage
// work exceeds what serialized execution can sustain. Series reported:
// minimum processors and steady-state makespan per hyperperiod as the
// buffer capacity grows.
#include <benchmark/benchmark.h>

#include <cstdio>

#include "fppn/network.hpp"
#include "sched/search.hpp"
#include "taskgraph/analysis.hpp"
#include "taskgraph/derivation.hpp"

namespace {

using namespace fppn;

struct PipelineNet {
  Network net;
  std::vector<ProcessId> stages;
};

/// N stages at period 100 ms, deadline 300 ms, chained by channels of the
/// given capacity (1 = the paper's single-slot semantics).
PipelineNet make_pipeline(int stages, int capacity) {
  PipelineNet p;
  NetworkBuilder b;
  for (int i = 0; i < stages; ++i) {
    p.stages.push_back(b.periodic("st" + std::to_string(i), Duration::ms(100),
                                  Duration::ms(300), no_op_behavior()));
  }
  for (int i = 0; i + 1 < stages; ++i) {
    const std::string name = "q" + std::to_string(i);
    if (capacity <= 1) {
      b.fifo(name, p.stages[static_cast<std::size_t>(i)],
             p.stages[static_cast<std::size_t>(i + 1)]);
      b.priority(p.stages[static_cast<std::size_t>(i)],
                 p.stages[static_cast<std::size_t>(i + 1)]);
    } else {
      b.buffered_fifo(name, p.stages[static_cast<std::size_t>(i)],
                      p.stages[static_cast<std::size_t>(i + 1)], capacity);
    }
  }
  p.net = std::move(b).build();
  return p;
}

void print_report() {
  std::printf("=== Pipelining ablation: single-slot vs buffered channels ===\n");
  std::printf("(3-stage pipeline, T = 100 ms, d = 300 ms, C = 70 ms per stage;\n");
  std::printf(" middle-stage alternation 140 ms per 100 ms period -> impossible without\n");
  std::printf(" buffering, regardless of processors — the §III-A edge rule)\n\n");
  std::printf("%-10s %-12s %-14s %-12s\n", "capacity", "min procs", "feasible?",
              "makespan");
  for (const int capacity : {1, 2, 3, 4}) {
    const PipelineNet p = make_pipeline(3, capacity);
    DerivationOptions opts;
    opts.unfolding = 10;
    opts.truncate_deadlines = false;  // steady-state view
    const auto derived = derive_task_graph(p.net, Duration::ms(70), opts);
    const auto result = min_processors(derived.graph, 8);
    std::printf("%-10d %-12lld %-14s %-12s\n", capacity,
                static_cast<long long>(result.processors),
                result.processors > 0 ? "yes" : "NO (any M)",
                result.attempt.has_value()
                    ? result.attempt->schedule.makespan(derived.graph)
                          .to_string()
                          .c_str()
                    : "-");
  }
  std::printf("\ncapacity 1 reproduces the serialization limit; capacity >= 2\n"
              "unlocks the pipeline: over the 10-period horizon the windowed load is\n~1.8 (pipeline fill/drain), so two processors suffice; a steady-state\npipeline at 3 x 0.7 utilization would need three.\n\n");
}

void BM_BufferedDerivation(benchmark::State& state) {
  const PipelineNet p =
      make_pipeline(static_cast<int>(state.range(0)), static_cast<int>(state.range(1)));
  DerivationOptions opts;
  opts.unfolding = 4;
  for (auto _ : state) {
    auto derived = derive_task_graph(p.net, Duration::ms(20), opts);
    benchmark::DoNotOptimize(derived.graph.edge_count());
  }
}
BENCHMARK(BM_BufferedDerivation)->Args({3, 1})->Args({3, 2})->Args({6, 2})
    ->Args({6, 4});

void BM_BufferedMinProcessors(benchmark::State& state) {
  const PipelineNet p = make_pipeline(3, static_cast<int>(state.range(0)));
  DerivationOptions opts;
  opts.unfolding = 10;
  opts.truncate_deadlines = false;
  const auto derived = derive_task_graph(p.net, Duration::ms(70), opts);
  for (auto _ : state) {
    benchmark::DoNotOptimize(min_processors(derived.graph, 8).processors);
  }
}
BENCHMARK(BM_BufferedMinProcessors)->Arg(1)->Arg(2)->Arg(4)
    ->Unit(benchmark::kMillisecond);

}  // namespace

int main(int argc, char** argv) {
  print_report();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
