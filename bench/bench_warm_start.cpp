// Warm-start micro-benchmarks: what reusing cached feasible schedules as
// local-search start points buys (and costs). The overlay's promise is
// qualitative — a warm search matches or beats the cold winner — so the
// interesting numbers are (a) the overlay's overhead on a fully warm
// search, (b) optimize_priority seeded with a good start vs. from
// scratch, and (c) the cache-eviction bookkeeping added to each store.
#include <benchmark/benchmark.h>

#include <chrono>
#include <cstdio>
#include <random>

#include "apps/fig1.hpp"
#include "bench_graphs.hpp"
#include "bench_json.hpp"
#include "engine/engine.hpp"
#include "sched/local_search.hpp"
#include "sched/warm_start.hpp"
#include "taskgraph/derivation.hpp"

namespace {

using namespace fppn;

using benchgraphs::random_task_graph;

engine::SearchConfig search_config(bool overlay) {
  engine::SearchConfig config;
  config.processors = 4;
  config.seeds_per_strategy = 3;
  config.max_iterations = 400;
  config.restarts = 1;
  config.memory_cache = true;  // the Engine's shared in-memory cache
  config.warm_start = overlay;
  return config;
}

void BM_WarmSearchWithoutOverlay(benchmark::State& state) {
  const TaskGraph tg = random_task_graph(static_cast<int>(state.range(0)),
                                         static_cast<int>(state.range(0)), 500, 7);
  engine::Engine eng;
  engine::SolveRequest request;
  request.graph = &tg;
  request.config = search_config(false);
  (void)eng.solve(request);  // warm it once
  for (auto _ : state) {
    benchmark::DoNotOptimize(eng.solve(request).search.best.makespan);
  }
  state.SetLabel(std::to_string(tg.job_count()) + " jobs, warm, overlay off");
}
BENCHMARK(BM_WarmSearchWithoutOverlay)->Arg(6)->Arg(10)->Unit(benchmark::kMillisecond);

void BM_WarmSearchWithOverlay(benchmark::State& state) {
  const TaskGraph tg = random_task_graph(static_cast<int>(state.range(0)),
                                         static_cast<int>(state.range(0)), 500, 7);
  engine::Engine eng;
  engine::SolveRequest request;
  request.graph = &tg;
  request.config = search_config(true);
  (void)eng.solve(request);  // warm it once
  for (auto _ : state) {
    benchmark::DoNotOptimize(eng.solve(request).search.best.makespan);
  }
  state.SetLabel(std::to_string(tg.job_count()) + " jobs, warm, overlay on");
}
BENCHMARK(BM_WarmSearchWithOverlay)->Arg(6)->Arg(10)->Unit(benchmark::kMillisecond);

void BM_LocalSearchColdStart(benchmark::State& state) {
  const TaskGraph tg = random_task_graph(8, 8, 500, 11);
  LocalSearchOptions opts;
  opts.processors = 4;
  opts.max_iterations = 1000;
  opts.restarts = 1;
  for (auto _ : state) {
    benchmark::DoNotOptimize(optimize_priority(tg, opts).makespan);
  }
  state.SetLabel(std::to_string(tg.job_count()) + " jobs, heuristic start");
}
BENCHMARK(BM_LocalSearchColdStart)->Unit(benchmark::kMillisecond);

void BM_LocalSearchWarmStart(benchmark::State& state) {
  // Seed the search with its own best-known answer — the steady state of
  // a long-lived cache directory.
  const TaskGraph tg = random_task_graph(8, 8, 500, 11);
  LocalSearchOptions opts;
  opts.processors = 4;
  opts.max_iterations = 1000;
  opts.restarts = 1;
  const LocalSearchResult cold = optimize_priority(tg, opts);
  opts.start_priorities = {cold.priority};
  for (auto _ : state) {
    benchmark::DoNotOptimize(optimize_priority(tg, opts).makespan);
  }
  state.SetLabel(std::to_string(tg.job_count()) + " jobs, cached start");
}
BENCHMARK(BM_LocalSearchWarmStart)->Unit(benchmark::kMillisecond);

void BM_PriorityOrderFromSchedule(benchmark::State& state) {
  const auto app = apps::build_fig1();
  const auto derived = derive_task_graph(app.net, app.fig3_wcets());
  const sched::ParallelSearchResult result =
      sched::quick_parallel_search(derived.graph, 2);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        sched::priority_order_from_schedule(derived.graph, result.best.schedule));
  }
  state.SetLabel(std::to_string(derived.graph.job_count()) + " jobs");
}
BENCHMARK(BM_PriorityOrderFromSchedule);

}  // namespace

int main(int argc, char** argv) {
  std::printf(
      "warm-start benchmarks: the overlay must stay cheap next to the\n"
      "candidate fan-out, and a seeded local search converges from the\n"
      "best known schedule instead of rediscovering it.\n\n");
  {
    // Machine-readable headline: cold vs. warm-seeded local search time.
    using Clock = std::chrono::steady_clock;
    const TaskGraph tg = random_task_graph(8, 8, 500, 11);
    LocalSearchOptions opts;
    opts.processors = 4;
    opts.max_iterations = 1000;
    opts.restarts = 1;
    const auto cold_begin = Clock::now();
    const LocalSearchResult cold = optimize_priority(tg, opts);
    const double cold_ms =
        std::chrono::duration<double, std::milli>(Clock::now() - cold_begin).count();
    opts.start_priorities = {cold.priority};
    const auto warm_begin = Clock::now();
    const LocalSearchResult warm = optimize_priority(tg, opts);
    const double warm_ms =
        std::chrono::duration<double, std::milli>(Clock::now() - warm_begin).count();
    benchjson::Report json("warm_start");
    json.metric("jobs", static_cast<long long>(tg.job_count()));
    json.metric("cold_search_ms", cold_ms);
    json.metric("warm_search_ms", warm_ms);
    json.metric("warm_makespan_ms", warm.makespan.to_double_ms());
    json.write();
  }
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
