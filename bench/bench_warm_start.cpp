// Warm-start micro-benchmarks: what reusing cached feasible schedules as
// local-search start points buys (and costs). The overlay's promise is
// qualitative — a warm search matches or beats the cold winner — so the
// interesting numbers are (a) the overlay's overhead on a fully warm
// search, (b) optimize_priority seeded with a good start vs. from
// scratch, and (c) the cache-eviction bookkeeping added to each store.
#include <benchmark/benchmark.h>

#include <cstdio>
#include <random>

#include "apps/fig1.hpp"
#include "sched/local_search.hpp"
#include "sched/parallel_search.hpp"
#include "sched/schedule_cache.hpp"
#include "sched/warm_start.hpp"
#include "taskgraph/derivation.hpp"

namespace {

using namespace fppn;

/// Random layered DAG, same construction as the heuristics bench.
TaskGraph random_task_graph(int layers, int width, std::int64_t frame,
                            std::uint64_t seed) {
  std::mt19937_64 rng(seed);
  std::uniform_int_distribution<std::int64_t> wcet(5, 30);
  std::uniform_int_distribution<int> fan(1, 3);
  TaskGraph tg(Duration::ms(frame));
  std::vector<std::vector<JobId>> grid(static_cast<std::size_t>(layers));
  for (int l = 0; l < layers; ++l) {
    for (int w = 0; w < width; ++w) {
      Job j;
      j.process = ProcessId{static_cast<std::size_t>(l * width + w)};
      j.arrival = Time::ms(0);
      j.deadline = Time::ms(frame);
      j.wcet = Duration::ms(wcet(rng));
      j.name = "J" + std::to_string(l) + "_" + std::to_string(w);
      grid[static_cast<std::size_t>(l)].push_back(tg.add_job(j));
    }
  }
  std::uniform_int_distribution<int> pick(0, width - 1);
  for (int l = 0; l + 1 < layers; ++l) {
    for (int w = 0; w < width; ++w) {
      const int out = fan(rng);
      for (int e = 0; e < out; ++e) {
        tg.add_edge(grid[static_cast<std::size_t>(l)][static_cast<std::size_t>(w)],
                    grid[static_cast<std::size_t>(l + 1)]
                        [static_cast<std::size_t>(pick(rng))]);
      }
    }
  }
  return tg;
}

sched::ParallelSearchOptions search_options() {
  sched::ParallelSearchOptions opts;
  opts.processors = 4;
  opts.seeds_per_strategy = 3;
  opts.max_iterations = 400;
  opts.restarts = 1;
  return opts;
}

void BM_WarmSearchWithoutOverlay(benchmark::State& state) {
  const TaskGraph tg = random_task_graph(static_cast<int>(state.range(0)),
                                         static_cast<int>(state.range(0)), 500, 7);
  sched::ScheduleCache cache;
  sched::ParallelSearchOptions opts = search_options();
  opts.cache = &cache;
  (void)sched::parallel_search(tg, opts);  // warm it once
  for (auto _ : state) {
    benchmark::DoNotOptimize(sched::parallel_search(tg, opts).best.makespan);
  }
  state.SetLabel(std::to_string(tg.job_count()) + " jobs, warm, overlay off");
}
BENCHMARK(BM_WarmSearchWithoutOverlay)->Arg(6)->Arg(10)->Unit(benchmark::kMillisecond);

void BM_WarmSearchWithOverlay(benchmark::State& state) {
  const TaskGraph tg = random_task_graph(static_cast<int>(state.range(0)),
                                         static_cast<int>(state.range(0)), 500, 7);
  sched::ScheduleCache cache;
  sched::ParallelSearchOptions opts = search_options();
  opts.cache = &cache;
  opts.warm_start = true;
  (void)sched::parallel_search(tg, opts);  // warm it once
  for (auto _ : state) {
    benchmark::DoNotOptimize(sched::parallel_search(tg, opts).best.makespan);
  }
  state.SetLabel(std::to_string(tg.job_count()) + " jobs, warm, overlay on");
}
BENCHMARK(BM_WarmSearchWithOverlay)->Arg(6)->Arg(10)->Unit(benchmark::kMillisecond);

void BM_LocalSearchColdStart(benchmark::State& state) {
  const TaskGraph tg = random_task_graph(8, 8, 500, 11);
  LocalSearchOptions opts;
  opts.processors = 4;
  opts.max_iterations = 1000;
  opts.restarts = 1;
  for (auto _ : state) {
    benchmark::DoNotOptimize(optimize_priority(tg, opts).makespan);
  }
  state.SetLabel(std::to_string(tg.job_count()) + " jobs, heuristic start");
}
BENCHMARK(BM_LocalSearchColdStart)->Unit(benchmark::kMillisecond);

void BM_LocalSearchWarmStart(benchmark::State& state) {
  // Seed the search with its own best-known answer — the steady state of
  // a long-lived cache directory.
  const TaskGraph tg = random_task_graph(8, 8, 500, 11);
  LocalSearchOptions opts;
  opts.processors = 4;
  opts.max_iterations = 1000;
  opts.restarts = 1;
  const LocalSearchResult cold = optimize_priority(tg, opts);
  opts.start_priorities = {cold.priority};
  for (auto _ : state) {
    benchmark::DoNotOptimize(optimize_priority(tg, opts).makespan);
  }
  state.SetLabel(std::to_string(tg.job_count()) + " jobs, cached start");
}
BENCHMARK(BM_LocalSearchWarmStart)->Unit(benchmark::kMillisecond);

void BM_PriorityOrderFromSchedule(benchmark::State& state) {
  const auto app = apps::build_fig1();
  const auto derived = derive_task_graph(app.net, app.fig3_wcets());
  const sched::ParallelSearchResult result =
      sched::quick_parallel_search(derived.graph, 2);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        sched::priority_order_from_schedule(derived.graph, result.best.schedule));
  }
  state.SetLabel(std::to_string(derived.graph.job_count()) + " jobs");
}
BENCHMARK(BM_PriorityOrderFromSchedule);

}  // namespace

int main(int argc, char** argv) {
  std::printf(
      "warm-start benchmarks: the overlay must stay cheap next to the\n"
      "candidate fan-out, and a seeded local search converges from the\n"
      "best known schedule instead of rediscovering it.\n\n");
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
