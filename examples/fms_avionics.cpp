// The reactive-control case study (§V-B): the FMS subsystem of Fig. 7
// over one 10-second hyperperiod with sporadic pilot commands — task
// graph statistics, a single-processor deployment (the paper's Linux/i7
// run) and the best-computed-position trace.
#include <cstdio>

#include "apps/fms.hpp"
#include "runtime/runtime.hpp"
#include "sched/parallel_search.hpp"
#include "taskgraph/analysis.hpp"
#include "taskgraph/derivation.hpp"

using namespace fppn;

int main() {
  const auto app = apps::build_fms();
  std::printf("FMS subsystem (Fig. 7): %zu processes (%zu sporadic), hyperperiod "
              "%s ms\n",
              app.net.process_count(), app.sporadics().size(),
              app.net.hyperperiod().to_string().c_str());

  const auto derived = derive_task_graph(app.net, app.default_wcets());
  const LoadResult load = task_graph_load(derived.graph);
  std::printf("task graph: %zu jobs, %zu edges, load %.3f (paper: 812 jobs, 1977 "
              "edges, ~0.23)\n\n",
              derived.graph.job_count(), derived.graph.edge_count(),
              load.load_value());

  const sched::StrategyResult attempt = sched::quick_parallel_search(derived.graph, 1, 200, 0).best;
  std::printf("single-processor schedule: %s, makespan %s ms\n",
              attempt.feasible ? "feasible" : "INFEASIBLE",
              attempt.makespan.to_string().c_str());

  // One hyperperiod with pilot commands: a GPS reconfiguration at 2.3 s
  // and a performance-model update at 4.1 s.
  std::map<ProcessId, SporadicScript> commands;
  commands.emplace(app.gps_config, SporadicScript({Time::ms(2300)}, 2,
                                                  Duration::ms(200)));
  commands.emplace(app.performance_config,
                   SporadicScript({Time::ms(4100)}, 5, Duration::ms(1000)));
  const InputScripts inputs = app.make_inputs(55, /*seed=*/2026);

  const auto vm = runtime::make_runtime("vm");
  runtime::RunOptions opts;
  opts.frames = 1;
  const RunResult run =
      vm->run(app.net, derived, attempt.schedule, opts, inputs, commands);
  std::printf("run: %s\n", run.trace.summary().c_str());
  std::printf("deadline misses: %zu (paper: none on one processor)\n\n",
              run.misses.size());

  std::printf("best computed position (BCP), one sample per second:\n");
  const auto& bcp = run.histories.output_samples.at(app.bcp_out);
  for (std::size_t i = 0; i < bcp.size(); i += 5) {
    std::printf("  t=%5s ms  BCP = %s\n", bcp[i].time.to_string().c_str(),
                value_to_string(bcp[i].value).c_str());
  }
  const auto& fuel = run.histories.output_samples.at(app.fuel_out);
  std::printf("fuel prediction after %zu updates: %s\n", fuel.size(),
              value_to_string(fuel.back().value).c_str());

  // Determinism: re-run on two processors and compare histories.
  const sched::StrategyResult two = sched::quick_parallel_search(derived.graph, 2, 200, 0).best;
  const RunResult run2 =
      vm->run(app.net, derived, two.schedule, opts, inputs, commands);
  std::printf("\n2-processor run functionally equal to 1-processor run: %s\n",
              run.histories.functionally_equal(run2.histories) ? "yes" : "NO");
  return 0;
}
