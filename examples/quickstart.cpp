// Quickstart: build a small FPPN, derive its task graph, schedule it on
// two processors and run the static-order policy — the full pipeline in
// one page.
//
//   sensor (100 ms) --fifo--> control (100 ms) --fifo--> actuator (100 ms)
//   tuner (sporadic, <= 1 per 300 ms) --blackboard--> control
#include <cstdio>

#include "fppn/network.hpp"
#include "fppn/semantics.hpp"
#include "runtime/runtime.hpp"
#include "sched/parallel_search.hpp"
#include "sim/gantt.hpp"
#include "taskgraph/derivation.hpp"

using namespace fppn;

int main() {
  // 1. Describe the process network (Def. 2.1).
  NetworkBuilder b;
  const auto ms = [](std::int64_t v) { return Duration::ms(v); };

  const ProcessId sensor =
      b.periodic("sensor", ms(100), ms(100), behavior([](JobContext& ctx) {
                   // Read the k-th external sample, publish it downstream.
                   ctx.write("raw", ctx.read("world"));
                 }));
  const ProcessId control =
      b.periodic("control", ms(100), ms(100), behavior([](JobContext& ctx) {
                   const Value raw = ctx.read("raw");
                   const double gain = [&] {
                     const Value g = ctx.read("gain");
                     return has_data(g) ? std::get<double>(g) : 1.0;
                   }();
                   const double x =
                       has_data(raw) ? std::get<double>(raw) : 0.0;
                   ctx.write("cmd", gain * x);
                 }));
  const ProcessId actuator =
      b.periodic("actuator", ms(100), ms(100), behavior([](JobContext& ctx) {
                   ctx.write("plant", ctx.read("cmd"));
                 }));
  const ProcessId tuner =
      b.sporadic("tuner", 1, ms(300), ms(600), behavior([](JobContext& ctx) {
                   ctx.write("gain", ctx.read("knob"));
                 }));

  // Channels; every channel-sharing pair needs a functional priority.
  b.fifo("raw", sensor, control);
  b.fifo("cmd", control, actuator);
  b.blackboard("gain", tuner, control);
  const ChannelId world = b.external_input("world", sensor);
  const ChannelId knob = b.external_input("knob", tuner);
  const ChannelId plant = b.external_output("plant", actuator);
  b.priority(sensor, control);
  b.priority(control, actuator);
  b.priority(control, tuner);  // the user process outranks its sporadic

  const Network net = std::move(b).build();
  std::printf("network: %zu processes, hyperperiod %s ms\n", net.process_count(),
              net.hyperperiod().to_string().c_str());

  // 2. Derive the task graph (sporadic -> periodic server, §III-A).
  WcetMap wcets;
  wcets.emplace(sensor, ms(20));
  wcets.emplace(control, ms(30));
  wcets.emplace(actuator, ms(15));
  wcets.emplace(tuner, ms(5));
  const DerivedTaskGraph derived = derive_task_graph(net, wcets);
  std::printf("task graph: %zu jobs, %zu edges\n%s\n", derived.graph.job_count(),
              derived.graph.edge_count(), derived.graph.to_table().c_str());

  // 3. Compile-time scheduling (§III-B): parallel search over every
  //    strategy in the registry.
  sched::ParallelSearchOptions search;
  search.processors = 2;
  const sched::StrategyResult attempt = sched::parallel_search(derived.graph, search).best;
  std::printf("2-processor schedule (%s): %s, makespan %s ms\n",
              attempt.strategy.c_str(),
              attempt.feasible ? "feasible" : "INFEASIBLE",
              attempt.makespan.to_string().c_str());
  std::printf("%s\n", attempt.schedule.to_gantt(derived.graph, 90).c_str());

  // 4. Run the online static-order policy (§IV) for three frames with a
  //    sporadic tuning command arriving at t = 150 ms.
  InputScripts inputs;
  inputs.emplace(world, std::vector<Value>{Value{1.0}, Value{2.0}, Value{3.0}});
  inputs.emplace(knob, std::vector<Value>{Value{10.0}});
  std::map<ProcessId, SporadicScript> sporadics;
  sporadics.emplace(tuner, SporadicScript({Time::ms(150)}, 1, ms(300)));

  runtime::RunOptions opts;
  opts.frames = 3;
  const RunResult run = runtime::make_runtime("vm")->run(net, derived, attempt.schedule,
                                                         opts, inputs, sporadics);
  std::printf("run: %s\n", run.trace.summary().c_str());
  std::printf("%s\n", render_gantt(run.trace, 2).c_str());

  for (const OutputSample& s : run.histories.output_samples.at(plant)) {
    std::printf("plant[%lld] @ %s ms = %s\n", static_cast<long long>(s.k),
                s.time.to_string().c_str(), value_to_string(s.value).c_str());
  }

  // 5. Determinism check against the zero-delay reference (Prop. 2.1).
  const ZeroDelayResult ref =
      zero_delay_reference(net, derived.hyperperiod, 3, inputs, sporadics);
  std::printf("functionally equal to zero-delay reference: %s\n",
              run.histories.functionally_equal(ref.histories) ? "yes" : "NO");
  return 0;
}
