// Determinism as a feature: record a run's inputs (sensor samples +
// sporadic command time stamps), then REPLAY it on a different processor
// count, with different actual execution times and a different schedule
// heuristic — and obtain bit-identical output histories (Prop. 2.1 +
// Prop. 4.1). This is what enables testing and triple-modular redundancy
// for multiprocessor deployments (the paper's motivation, §I).
#include <cstdio>

#include "apps/fig1.hpp"
#include "runtime/runtime.hpp"
#include "sched/registry.hpp"
#include "taskgraph/derivation.hpp"

using namespace fppn;

namespace {

struct RecordedRun {
  InputScripts inputs;
  std::map<ProcessId, SporadicScript> sporadics;
  std::int64_t frames = 4;
};

RecordedRun record_mission(const apps::Fig1App& app) {
  RecordedRun rec;
  rec.inputs = app.make_inputs({12.5, -3.0, 7.25, 0.5, 9.0, -1.5, 4.0, 2.0},
                               {1.5, 0.75, 2.0, 1.25});
  // The "pilot" reconfigured the filter with a two-command burst at
  // ~130 ms (admissible: at most 2 per 700 ms).
  rec.sporadics.emplace(
      app.coef_b,
      SporadicScript({Time::ms(130), Time::ms(135)}, 2, Duration::ms(700)));
  return rec;
}

std::size_t run_once(const apps::Fig1App& app, const DerivedTaskGraph& derived,
                     const RecordedRun& rec, std::int64_t processors,
                     const std::string& strategy, int jitter_seed,
                     ExecutionHistories* out) {
  sched::StrategyOptions sopts;
  sopts.processors = processors;
  const sched::StrategyResult result =
      sched::StrategyRegistry::global().create(strategy)->schedule(derived.graph, sopts);
  if (!result.feasible) {
    std::printf("  (strategy %s infeasible on %lld procs)\n", strategy.c_str(),
                static_cast<long long>(processors));
  }
  runtime::RunOptions opts;
  opts.frames = rec.frames;
  opts.actual_time = [jitter_seed](JobId id, std::int64_t frame) {
    const std::size_t mix = id.value() * 31 + static_cast<std::size_t>(frame) * 7 +
                            static_cast<std::size_t>(jitter_seed) * 101;
    return Duration::ms(4 + static_cast<std::int64_t>(mix % 20));
  };
  const RunResult run = runtime::make_runtime("vm")->run(
      app.net, derived, result.schedule, opts, rec.inputs, rec.sporadics);
  *out = run.histories;
  return run.histories.fingerprint();
}

}  // namespace

int main() {
  const auto app = apps::build_fig1();
  const auto derived = derive_task_graph(app.net, app.fig3_wcets());
  const RecordedRun rec = record_mission(app);

  std::printf("recorded mission: %lld frames, %zu sporadic command(s)\n\n",
              static_cast<long long>(rec.frames),
              rec.sporadics.at(app.coef_b).times().size());

  struct Config {
    std::int64_t processors;
    std::string strategy;  // any name registered with the scheduling engine
    int jitter;
  };
  const std::vector<Config> configs = {
      {2, "alap-edf", 0},
      {2, "b-level", 1},
      {3, "alap-edf", 2},
      {3, "deadline-monotonic", 3},
      {4, "arrival-order", 4},
  };

  ExecutionHistories reference;
  std::size_t ref_fp = 0;
  bool all_equal = true;
  for (std::size_t i = 0; i < configs.size(); ++i) {
    ExecutionHistories h;
    const std::size_t fp = run_once(app, derived, rec, configs[i].processors,
                                    configs[i].strategy, configs[i].jitter, &h);
    std::printf("replay %zu: M=%lld, %-19s jitter=%d -> fingerprint %016zx\n", i,
                static_cast<long long>(configs[i].processors),
                configs[i].strategy.c_str(), configs[i].jitter, fp);
    if (i == 0) {
      reference = h;
      ref_fp = fp;
    } else if (!h.functionally_equal(reference)) {
      all_equal = false;
      std::printf("  DIVERGENCE:\n%s", h.diff(reference, app.net).c_str());
    }
  }
  std::printf("\nall replays functionally identical: %s (reference %016zx)\n",
              all_equal ? "yes" : "NO", ref_fp);

  std::printf("\nfinal Out2 history of the reference replay:\n");
  for (const OutputSample& s : reference.output_samples.at(app.out2)) {
    std::printf("  Out2[%lld] = %s\n", static_cast<long long>(s.k),
                value_to_string(s.value).c_str());
  }
  return all_equal ? 0 : 1;
}
