// The paper's streaming case study (§V-A) end to end: the 8-point FFT
// network of Fig. 5 scheduled on two processors and executed by BOTH
// runtimes — the deterministic virtual platform (with the measured MPPA
// overhead model) and the real std::thread deployment — then checked
// against the reference DFT.
#include <cmath>
#include <complex>
#include <cstdio>

#include "apps/fft.hpp"
#include "runtime/runtime.hpp"
#include "sched/parallel_search.hpp"
#include "sim/gantt.hpp"
#include "taskgraph/derivation.hpp"

using namespace fppn;
using apps::kPi;

int main() {
  const auto app = apps::build_fft(8);
  std::printf("FFT network (Fig. 5): %zu processes, T = d = 200 ms\n",
              app.net.process_count());

  const auto derived =
      derive_task_graph(app.net, app.uniform_wcets(Duration::ratio_ms(40, 3)));
  sched::ParallelSearchOptions search;
  search.processors = 2;
  const sched::StrategyResult attempt = sched::parallel_search(derived.graph, search).best;
  std::printf("2-processor schedule: %s, makespan %s ms\n\n",
              attempt.feasible ? "feasible" : "INFEASIBLE",
              attempt.makespan.to_string().c_str());

  // Three frames of real signal blocks.
  std::vector<std::vector<double>> frames;
  for (int f = 0; f < 3; ++f) {
    std::vector<double> block;
    for (int i = 0; i < app.points; ++i) {
      block.push_back(std::sin(2.0 * kPi * (f + 1) * i / app.points));
    }
    frames.push_back(std::move(block));
  }
  const InputScripts inputs = app.make_inputs(frames);

  // Virtual platform with the measured 41/20 ms frame overhead (Fig. 6).
  runtime::RunOptions vm_opts;
  vm_opts.frames = 3;
  vm_opts.overhead = OverheadModel::mppa_measured();
  const RunResult vm = runtime::make_runtime("vm")->run(app.net, derived,
                                                        attempt.schedule, vm_opts,
                                                        inputs, {});
  std::printf("virtual platform: %s\n", vm.trace.summary().c_str());
  GanttOptions gopts;
  gopts.to = Time::ms(400);
  std::printf("%s\n", render_gantt(vm.trace, 2, gopts).c_str());

  // Real threads, 20x faster than real time.
  runtime::RunOptions th_opts;
  th_opts.frames = 3;
  th_opts.micros_per_model_ms = 50.0;
  th_opts.actual_time = [](JobId, std::int64_t) { return Duration::ms(2); };
  const RunResult th = runtime::make_runtime("threads")->run(
      app.net, derived, attempt.schedule, th_opts, inputs, {});
  std::printf("thread runtime: %s\n", th.trace.summary().c_str());
  std::printf("VM and thread histories functionally equal: %s\n\n",
              vm.histories.functionally_equal(th.histories) ? "yes" : "NO");

  // Validate the spectra of every frame against the reference DFT.
  const auto& samples = vm.histories.output_samples.at(app.output);
  double worst = 0.0;
  for (std::size_t f = 0; f < samples.size(); ++f) {
    const auto& flat = std::get<std::vector<double>>(samples[f].value);
    const auto expected = apps::reference_dft(frames[f]);
    for (std::size_t k = 0; k < expected.size(); ++k) {
      const std::complex<double> got(flat[2 * k], flat[2 * k + 1]);
      worst = std::max(worst, std::abs(got - expected[k]));
    }
    std::printf("frame %zu: spectrum", f);
    for (std::size_t k = 0; k < expected.size(); ++k) {
      std::printf(" %.2f", std::abs(std::complex<double>(flat[2 * k], flat[2 * k + 1])));
    }
    std::printf("\n");
  }
  std::printf("max |FFT - DFT| over all frames/bins: %.2e\n", worst);
  return worst < 1e-9 ? 0 : 1;
}
