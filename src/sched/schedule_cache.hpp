// Content-addressed schedule cache: never solve the same (graph, strategy,
// seed, budget) query twice.
//
// Keys are CacheKey = (task-graph fingerprint, strategy name, seed,
// processor count, iteration budget, restart budget) — exactly the inputs
// a SchedulerStrategy's result may depend on. Values are the produced
// StaticSchedule plus the strategy's detail line. Scores (makespan,
// violations, feasibility) are NOT stored: lookup() re-derives them from
// the schedule with finalize_result, so a cached candidate ranks
// bit-identically to a freshly evaluated one in parallel_search's winner
// selection (the cold-vs-warm determinism contract, regression-tested in
// parallel_search_test.cpp).
//
// Two tiers: an in-memory map (always on) and an optional on-disk
// directory with one versioned text file per entry (io/schedule_format.hpp;
// format documented in docs/FILE_FORMATS.md). Disk entries that are
// corrupt, of a different format version, or fail validation against the
// query (job count, processor count, key fields) are treated as misses and
// overwritten on the next store — a fingerprint collision can therefore
// never smuggle a wrong-sized schedule into a search.
//
// Thread safety: lookup/store/stats are safe to call concurrently on one
// ScheduleCache (internal mutex). Disk writes go through a temp file +
// rename, so concurrent *processes* sharing a cache directory never
// observe torn entries.
#pragma once

#include <cstdint>
#include <mutex>
#include <optional>
#include <string>
#include <tuple>

#include <map>

#include "sched/strategy.hpp"
#include "taskgraph/fingerprint.hpp"

namespace fppn {
namespace sched {

/// Everything a strategy result may depend on besides the graph contents.
struct CacheKey {
  std::uint64_t fingerprint = 0;  ///< fingerprint(tg)
  std::string strategy;           ///< registry name
  std::uint64_t seed = 0;
  std::int64_t processors = 0;
  int max_iterations = 0;
  int restarts = 0;

  friend bool operator<(const CacheKey& a, const CacheKey& b) {
    return std::tie(a.fingerprint, a.strategy, a.seed, a.processors, a.max_iterations,
                    a.restarts) < std::tie(b.fingerprint, b.strategy, b.seed,
                                           b.processors, b.max_iterations, b.restarts);
  }
  friend bool operator==(const CacheKey& a, const CacheKey& b) {
    return !(a < b) && !(b < a);
  }

  /// Filesystem-safe entry file name, e.g.
  /// "3a1f...9c-local-search-m2-seed3-it2000-r2.sched". Strategy names are
  /// lowercase/dash by the registry contract, so no escaping is needed.
  [[nodiscard]] std::string filename() const;
};

/// Builds the key for one (strategy, seed) candidate from the options the
/// parallel search forwards to strategies. Deterministic; never throws.
[[nodiscard]] CacheKey make_cache_key(const TaskGraph& tg, const std::string& strategy,
                                      const StrategyOptions& opts);

/// Same, with the graph fingerprint precomputed — the parallel search
/// fingerprints once per call and keys every candidate from it.
[[nodiscard]] CacheKey make_cache_key(std::uint64_t graph_fingerprint,
                                      const std::string& strategy,
                                      const StrategyOptions& opts);

/// Monotonic counters; a snapshot is returned by ScheduleCache::stats().
struct CacheStats {
  std::size_t hits = 0;          ///< lookups answered (memory or disk)
  std::size_t misses = 0;        ///< lookups not answered
  std::size_t stores = 0;        ///< entries written
  std::size_t disk_rejects = 0;  ///< disk entries dropped (corrupt/mismatched)
};

class ScheduleCache {
 public:
  /// In-memory cache only.
  ScheduleCache() = default;

  /// In-memory + on-disk cache rooted at `directory`. Creates the leaf
  /// directory when missing; throws std::runtime_error with the failing
  /// path when the parent does not exist, the path is not a directory, or
  /// it cannot be created — a bad cache path is an error, never a silent
  /// permanent miss.
  explicit ScheduleCache(const std::string& directory);

  /// Returns the cached result for `key`, re-scored against `tg`
  /// (finalize_result), or nullopt on a miss. Memory is probed first,
  /// then disk; a disk hit is promoted into memory. Entries whose job
  /// count, processor count or key provenance fields do not match the
  /// query are rejected (counted in CacheStats::disk_rejects) and treated
  /// as misses. Throws only on allocation failure.
  [[nodiscard]] std::optional<StrategyResult> lookup(const CacheKey& key,
                                                     const TaskGraph& tg);

  /// Stores `result` under `key`, overwriting any previous entry, in
  /// memory and (when disk-backed) on disk. Disk write failures throw
  /// std::runtime_error with the failing path; the memory tier is updated
  /// first, so the in-process cache stays usable even if the throw is
  /// caught.
  void store(const CacheKey& key, const StrategyResult& result);

  /// Counter snapshot (taken under the lock, so internally consistent).
  [[nodiscard]] CacheStats stats() const;

  /// Entries currently held in memory.
  [[nodiscard]] std::size_t size() const;

  /// Disk directory, empty for memory-only caches.
  [[nodiscard]] const std::string& directory() const noexcept { return directory_; }

 private:
  struct Entry {
    StaticSchedule schedule;
    std::string detail;
  };

  /// Disk probe; returns nullopt (and bumps disk_rejects when warranted)
  /// for missing/corrupt/mismatched entries. Caller holds the lock.
  [[nodiscard]] std::optional<Entry> load_from_disk(const CacheKey& key);

  std::string directory_;
  mutable std::mutex mu_;
  std::map<CacheKey, Entry> memory_;
  CacheStats stats_;
};

}  // namespace sched
}  // namespace fppn
