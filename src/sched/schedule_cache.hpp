// Content-addressed schedule cache: never solve the same (graph, strategy,
// seed, budget) query twice.
//
// Keys are CacheKey = (task-graph fingerprint, strategy name, seed,
// processor count, iteration budget, restart budget) — exactly the inputs
// a SchedulerStrategy's result may depend on. Values are the produced
// StaticSchedule plus the strategy's detail line. Scores (makespan,
// violations, feasibility) are NOT stored: lookup() re-derives them from
// the schedule with finalize_result, so a cached candidate ranks
// bit-identically to a freshly evaluated one in parallel_search's winner
// selection (the cold-vs-warm determinism contract, regression-tested in
// parallel_search_test.cpp).
//
// Two tiers: an in-memory map (always on) and an optional on-disk
// directory with one versioned text file per entry (io/schedule_format.hpp;
// format documented in docs/FILE_FORMATS.md). Disk entries that are
// corrupt, of a different format version, or fail validation against the
// query (job count, processor count, key fields) are treated as misses and
// overwritten on the next store — a fingerprint collision can therefore
// never smuggle a wrong-sized schedule into a search.
//
// Lifecycle: a *bounded* (max_entries > 0 and/or max_bytes > 0)
// disk-backed cache maintains a recency index (io/cache_index.hpp,
// "<dir>/cache-index") — every store and every disk-promoted hit bumps
// the entry's logical sequence number, then evicts the oldest entries
// (lowest sequence) until the directory holds at most max_entries entry
// files summing to at most max_bytes, reconciling the index against
// the actual directory contents first so entries written by racing
// processes are seen (and bounded) too. Unbounded caches skip index
// maintenance on the hot path; gc() rebuilds recency from file
// modification times when needed. gc() runs the same reconcile+evict
// pass on demand — the engine behind `fppn_tool cache-gc`. The index is
// advisory: when missing or corrupt it is rebuilt from the entry files,
// never a hard error, and never a reason to drop a valid entry; an index
// that cannot be *written* (read-only shared directory) is silently left
// stale by lookup/store — only gc() reports that loudly. The in-memory
// tier is a per-process memo and is not evicted; eviction bounds the
// *directory*.
//
// Thread safety: lookup/store/stats/gc/feasible_schedules are safe to
// call concurrently on one ScheduleCache (internal mutex). Disk writes —
// entries and the index — go through a temp file + rename, so concurrent
// *processes* sharing a cache directory never observe torn files; racing
// index updates can lose a recency bump, which the next reconcile pass
// repairs (the bound itself always holds after any store or gc).
#pragma once

#include <cstdint>
#include <mutex>
#include <optional>
#include <string>
#include <tuple>
#include <vector>

#include <map>

#include "io/cache_index.hpp"
#include "sched/strategy.hpp"
#include "taskgraph/fingerprint.hpp"

namespace fppn {
namespace sched {

/// Everything a strategy result may depend on besides the graph contents.
struct CacheKey {
  std::uint64_t fingerprint = 0;  ///< fingerprint(tg)
  std::string strategy;           ///< registry name
  std::uint64_t seed = 0;
  std::int64_t processors = 0;
  int max_iterations = 0;
  int restarts = 0;

  friend bool operator<(const CacheKey& a, const CacheKey& b) {
    return std::tie(a.fingerprint, a.strategy, a.seed, a.processors, a.max_iterations,
                    a.restarts) < std::tie(b.fingerprint, b.strategy, b.seed,
                                           b.processors, b.max_iterations, b.restarts);
  }
  friend bool operator==(const CacheKey& a, const CacheKey& b) {
    return !(a < b) && !(b < a);
  }

  /// Filesystem-safe entry file name, e.g.
  /// "3a1f...9c-local-search-m2-seed3-it2000-r2.sched". Strategy names are
  /// lowercase/dash by the registry contract, so no escaping is needed.
  [[nodiscard]] std::string filename() const;
};

/// Builds the key for one (strategy, seed) candidate from the options the
/// parallel search forwards to strategies. Deterministic; never throws.
[[nodiscard]] CacheKey make_cache_key(const TaskGraph& tg, const std::string& strategy,
                                      const StrategyOptions& opts);

/// Same, with the graph fingerprint precomputed — the parallel search
/// fingerprints once per call and keys every candidate from it.
[[nodiscard]] CacheKey make_cache_key(std::uint64_t graph_fingerprint,
                                      const std::string& strategy,
                                      const StrategyOptions& opts);

/// Monotonic counters; a snapshot is returned by ScheduleCache::stats().
struct CacheStats {
  std::size_t hits = 0;          ///< lookups answered (memory or disk)
  std::size_t misses = 0;        ///< lookups not answered
  std::size_t stores = 0;        ///< entries written
  std::size_t disk_rejects = 0;  ///< disk entries dropped (corrupt/mismatched)
  std::size_t evictions = 0;     ///< entry files removed by the size bound / gc
};

/// Outcome of one gc() pass over a disk-backed cache directory. Unlink
/// and index-publish failures are *warnings*, not errors: the pass keeps
/// going, the victim stays indexed, and the next pass retries — so an
/// injected (or real, e.g. NFS blip) filesystem failure can delay the
/// bound but never abort maintenance.
struct CacheGcStats {
  std::size_t kept = 0;       ///< entry files remaining after the pass
  std::size_t evicted = 0;    ///< entry files removed by this pass
  bool index_rebuilt = false; ///< the recency index was missing/corrupt
  std::size_t evict_failures = 0;  ///< victims whose unlink failed (kept, retried next pass)
  bool index_write_failed = false; ///< the rewritten index could not be published
};

class ScheduleCache {
 public:
  /// In-memory cache only.
  ScheduleCache() = default;

  /// In-memory + on-disk cache rooted at `directory`. Creates the leaf
  /// directory when missing; throws std::runtime_error with the failing
  /// path when the parent does not exist, the path is not a directory, or
  /// it cannot be created — a bad cache path is an error, never a silent
  /// permanent miss. With max_entries > 0 the directory is size-bounded:
  /// every store evicts down to max_entries entry files, oldest
  /// (least-recently stored/read) first. With max_bytes > 0 the *total
  /// size* of the entry files is bounded the same way: oldest entries are
  /// evicted until the remaining files sum to at most max_bytes (a bound
  /// smaller than the newest entry therefore empties the directory — the
  /// bound is a hard cap, not advisory). Both bounds may be combined;
  /// each 0 means unbounded on that axis. With neither bound set, no
  /// index is maintained on the hot path (a later gc() rebuilds recency
  /// from file modification times).
  explicit ScheduleCache(const std::string& directory, std::size_t max_entries = 0,
                         std::uint64_t max_bytes = 0);

  /// Returns the cached result for `key`, re-scored against `tg`
  /// (finalize_result), or nullopt on a miss. Memory is probed first,
  /// then disk; a disk hit is promoted into memory and (when bounded)
  /// bumps the entry's recency in the index — rejected entries are
  /// neither promoted nor touched. Entries whose job count, processor
  /// count or key provenance fields do not match the query are rejected
  /// (counted in CacheStats::disk_rejects) and treated as misses. Throws
  /// only on allocation failure — an unwritable index is left stale, not
  /// an error.
  [[nodiscard]] std::optional<StrategyResult> lookup(const CacheKey& key,
                                                     const TaskGraph& tg);

  /// Stores `result` under `key`, overwriting any previous entry, in
  /// memory and (when disk-backed) on disk; a bounded cache then updates
  /// the recency index and evicts down to max_entries. Entry write
  /// failures throw std::runtime_error with the failing path (the memory
  /// tier is updated first, so the in-process cache stays usable even if
  /// the throw is caught); an unwritable index is left stale, not an
  /// error.
  void store(const CacheKey& key, const StrategyResult& result);

  /// Reconciles the recency index with the actual directory contents
  /// (adopting entry files written by other processes, dropping records
  /// of deleted files, rebuilding a missing/corrupt index from file
  /// modification times) and, when the cache is bounded, evicts down to
  /// max_entries — the engine behind `fppn_tool cache-gc`. No-op for
  /// memory-only caches (returns all-zero stats). Never throws for
  /// filesystem failures: a victim that cannot be unlinked stays indexed
  /// and counts in evict_failures (retried next pass), and an index that
  /// cannot be published sets index_write_failed — the callers report
  /// both as warnings and keep serving.
  CacheGcStats gc();

  /// Every cached schedule for `graph_fingerprint` that is feasible for
  /// `tg` (exact counts-only feasibility, same scoring as lookup) and can index
  /// its jobs, in deterministic (entry file name / key) order — the
  /// warm-start feed of sched::parallel_search. Disk-backed caches read
  /// the directory (so schedules stored by other processes and earlier
  /// runs are found); memory-only caches scan the memory tier. Corrupt
  /// or mismatched disk entries are skipped (counted in disk_rejects),
  /// never an error.
  [[nodiscard]] std::vector<StaticSchedule> feasible_schedules(
      std::uint64_t graph_fingerprint, const TaskGraph& tg);

  /// Counter snapshot (taken under the lock, so internally consistent).
  [[nodiscard]] CacheStats stats() const;

  /// Entries currently held in memory.
  [[nodiscard]] std::size_t size() const;

  /// Disk directory, empty for memory-only caches.
  [[nodiscard]] const std::string& directory() const noexcept { return directory_; }

  /// Entry-count bound on the disk directory; 0 = unbounded.
  [[nodiscard]] std::size_t max_entries() const noexcept { return max_entries_; }

  /// Byte-size bound on the disk directory's entry files; 0 = unbounded.
  [[nodiscard]] std::uint64_t max_bytes() const noexcept { return max_bytes_; }

 private:
  struct Entry {
    StaticSchedule schedule;
    std::string detail;
  };

  /// Disk probe; returns nullopt (and bumps disk_rejects when warranted)
  /// for missing/corrupt/mismatched entries. Caller holds the lock.
  [[nodiscard]] std::optional<Entry> load_from_disk(const CacheKey& key);

  /// Reads the index file; rebuilds it from the entry files (ordered by
  /// modification time) when missing or corrupt. Caller holds the lock.
  [[nodiscard]] io::CacheIndex load_index_locked(bool* rebuilt) const;

  /// Adopts entry files absent from the index (name order, as newest) and
  /// drops records whose file is gone. Caller holds the lock.
  void reconcile_index_locked(io::CacheIndex& index) const;

  /// Removes oldest entries (and their files) until the index holds at
  /// most max_entries_ records (when bounded) whose files sum to at most
  /// max_bytes_ (when bounded). A victim whose file cannot be removed is
  /// skipped and kept in the index (counted in `failed`) — the bound is
  /// then enforced by the next pass. Caller holds the lock.
  struct EvictOutcome {
    std::size_t evicted = 0;
    std::size_t failed = 0;
  };
  EvictOutcome evict_locked(io::CacheIndex& index);

  /// Publishes the index atomically. Caller holds the lock.
  void save_index_locked(const io::CacheIndex& index) const;

  /// Bumps `file` in the on-disk index (load, touch, evict when bounded,
  /// save). Caller holds the lock.
  void touch_index_locked(const std::string& file);

  std::string directory_;
  std::size_t max_entries_ = 0;
  std::uint64_t max_bytes_ = 0;
  mutable std::mutex mu_;
  std::map<CacheKey, Entry> memory_;
  CacheStats stats_;
};

}  // namespace sched
}  // namespace fppn
