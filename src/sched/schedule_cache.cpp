#include "sched/schedule_cache.hpp"

#include <algorithm>
#include <cerrno>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <set>
#include <sstream>
#include <stdexcept>

#include "io/atomic_file.hpp"
#include "io/schedule_format.hpp"
#include "testing/fault_injector.hpp"

namespace fppn {
namespace sched {

namespace fs = std::filesystem;

namespace {

constexpr const char* kEntrySuffix = ".sched";

bool is_entry_file(const fs::path& path) {
  const std::string name = path.filename().string();
  return name.size() > std::strlen(kEntrySuffix) &&
         name.compare(name.size() - std::strlen(kEntrySuffix), std::string::npos,
                      kEntrySuffix) == 0;
}

/// Entry file names in `directory`, name-sorted for deterministic
/// iteration. Enumeration failures yield an empty list (the directory was
/// validated at construction; a racing removal is not an error).
std::vector<std::string> list_entry_files(const std::string& directory) {
  std::vector<std::string> files;
  std::error_code ec;
  for (fs::directory_iterator it(directory, ec), end; !ec && it != end;
       it.increment(ec)) {
    if (is_entry_file(it->path())) {
      files.push_back(it->path().filename().string());
    }
  }
  std::sort(files.begin(), files.end());
  return files;
}

}  // namespace

std::string CacheKey::filename() const {
  std::ostringstream out;
  out << fingerprint_hex(fingerprint) << '-' << strategy << "-m" << processors
      << "-seed" << seed << "-it" << max_iterations << "-r" << restarts << kEntrySuffix;
  return out.str();
}

CacheKey make_cache_key(std::uint64_t graph_fingerprint, const std::string& strategy,
                        const StrategyOptions& opts) {
  CacheKey key;
  key.fingerprint = graph_fingerprint;
  key.strategy = strategy;
  key.seed = opts.seed;
  key.processors = opts.processors;
  key.max_iterations = opts.max_iterations;
  key.restarts = opts.restarts;
  return key;
}

CacheKey make_cache_key(const TaskGraph& tg, const std::string& strategy,
                        const StrategyOptions& opts) {
  return make_cache_key(fingerprint(tg), strategy, opts);
}

ScheduleCache::ScheduleCache(const std::string& directory, std::size_t max_entries,
                             std::uint64_t max_bytes)
    : directory_(directory), max_entries_(max_entries), max_bytes_(max_bytes) {
  io::ensure_directory(directory_, "schedule cache");
}

std::optional<StrategyResult> ScheduleCache::lookup(const CacheKey& key,
                                                    const TaskGraph& tg) {
  std::optional<Entry> entry;
  {
    const std::lock_guard<std::mutex> lock(mu_);
    const auto it = memory_.find(key);
    if (it != memory_.end()) {
      entry = it->second;
      if (entry->schedule.job_count() != tg.job_count()) {
        // Fingerprint collision safety net: never hand back a schedule
        // that cannot even index this graph's jobs.
        ++stats_.disk_rejects;
        memory_.erase(key);
        entry.reset();
      }
    } else if (!directory_.empty()) {
      entry = load_from_disk(key);
      if (entry.has_value() && entry->schedule.job_count() != tg.job_count()) {
        // Same collision safety net — rejected *before* the entry is
        // promoted or its recency bumped, so a garbage entry file never
        // ranks newest and outlives valid entries under eviction.
        ++stats_.disk_rejects;
        entry.reset();
      } else if (entry.has_value()) {
        memory_.emplace(key, *entry);  // promote so the next probe is O(log n)
        touch_index_locked(key.filename());
      }
    }
    if (entry.has_value()) {
      ++stats_.hits;
    } else {
      ++stats_.misses;
    }
  }
  if (!entry.has_value()) {
    return std::nullopt;
  }
  StrategyResult result;
  result.schedule = std::move(entry->schedule);
  result.strategy = key.strategy;
  result.detail = std::move(entry->detail);
  finalize_result(tg, result);
  return result;
}

void ScheduleCache::store(const CacheKey& key, const StrategyResult& result) {
  {
    const std::lock_guard<std::mutex> lock(mu_);
    memory_[key] = Entry{result.schedule, result.detail};
    ++stats_.stores;
  }
  if (directory_.empty()) {
    return;
  }
  io::ScheduleEntry entry;
  entry.fingerprint = key.fingerprint;
  entry.strategy = key.strategy;
  entry.seed = key.seed;
  entry.processors = key.processors;
  entry.max_iterations = key.max_iterations;
  entry.restarts = key.restarts;
  entry.detail = result.detail;
  entry.schedule = result.schedule;

  // Shared temp-file + atomic-rename writer: concurrent stores of the
  // same key — same process or not — never leave a torn entry behind.
  const fs::path final_path = fs::path(directory_) / key.filename();
  try {
    io::write_file_atomic(final_path.string(), io::write_schedule_entry(entry));
  } catch (const std::runtime_error& e) {
    throw std::runtime_error(std::string("schedule cache: ") + e.what());
  }
  const std::lock_guard<std::mutex> lock(mu_);
  touch_index_locked(key.filename());
}

io::CacheIndex ScheduleCache::load_index_locked(bool* rebuilt) const {
  if (rebuilt != nullptr) {
    *rebuilt = false;
  }
  const fs::path index_path = fs::path(directory_) / io::kCacheIndexFilename;
  {
    std::ifstream in(index_path);
    if (in) {
      try {
        return io::read_cache_index(in);
      } catch (const io::ParseError&) {
        // Damaged index: fall through to the rebuild — never a hard error.
      }
    }
  }
  if (rebuilt != nullptr) {
    *rebuilt = true;
  }
  // Rebuild from the entry files, oldest modification first, so the
  // reconstructed recency order approximates the lost one. Name order
  // breaks mtime ties deterministically.
  struct Stamped {
    fs::file_time_type mtime;
    std::string file;
  };
  std::vector<Stamped> files;
  for (const std::string& file : list_entry_files(directory_)) {
    std::error_code ec;
    const fs::file_time_type mtime =
        fs::last_write_time(fs::path(directory_) / file, ec);
    files.push_back(Stamped{ec ? fs::file_time_type::min() : mtime, file});
  }
  std::stable_sort(files.begin(), files.end(), [](const Stamped& a, const Stamped& b) {
    if (a.mtime != b.mtime) {
      return a.mtime < b.mtime;
    }
    return a.file < b.file;
  });
  io::CacheIndex index;
  for (const Stamped& f : files) {
    index.touch(f.file);
  }
  return index;
}

void ScheduleCache::reconcile_index_locked(io::CacheIndex& index) const {
  const std::vector<std::string> on_disk = list_entry_files(directory_);
  // Drop records whose entry file is gone (evicted or removed by another
  // process).
  index.entries.erase(
      std::remove_if(index.entries.begin(), index.entries.end(),
                     [&](const io::CacheIndexEntry& e) {
                       return !std::binary_search(on_disk.begin(), on_disk.end(),
                                                  e.file);
                     }),
      index.entries.end());
  // Adopt files the index has never seen (stored by a racing process whose
  // index write lost): we cannot know their true recency, so rank them
  // newest — evicting a just-written entry would be worse than keeping a
  // slightly stale one.
  std::set<std::string> known;
  for (const io::CacheIndexEntry& e : index.entries) {
    known.insert(e.file);
  }
  for (const std::string& file : on_disk) {
    if (known.find(file) == known.end()) {
      index.touch(file);
    }
  }
}

ScheduleCache::EvictOutcome ScheduleCache::evict_locked(io::CacheIndex& index) {
  // Total entry-file bytes, consulted only under a byte bound. A file that
  // vanished between indexing and stat counts as zero — eviction then
  // simply drops its record.
  std::uint64_t total_bytes = 0;
  if (max_bytes_ > 0) {
    for (const io::CacheIndexEntry& e : index.entries) {
      std::error_code ec;
      const std::uintmax_t size = fs::file_size(fs::path(directory_) / e.file, ec);
      total_bytes += ec ? 0 : static_cast<std::uint64_t>(size);
    }
  }
  // `bound_slack` widens the effective bound by the entries whose unlink
  // failed: they still occupy the directory, but evicting ever-more valid
  // entries to compensate would trade a transient filesystem blip for
  // real cache loss. The next pass retries the stuck victims.
  std::size_t entry_slack = 0;
  std::uint64_t byte_slack = 0;
  const auto within_bounds = [&]() {
    if (max_entries_ > 0 && index.entries.size() > max_entries_ + entry_slack) {
      return false;
    }
    if (max_bytes_ > 0 && total_bytes > max_bytes_ + byte_slack) {
      return false;
    }
    return true;
  };
  EvictOutcome out;
  if (within_bounds()) {
    return out;
  }
  for (const io::CacheIndexEntry& victim : index.oldest_first()) {
    if (within_bounds()) {
      break;
    }
    const fs::path path = fs::path(directory_) / victim.file;
    std::uint64_t victim_bytes = 0;
    if (max_bytes_ > 0) {
      std::error_code size_ec;
      const std::uintmax_t size = fs::file_size(path, size_ec);
      victim_bytes = size_ec ? 0 : static_cast<std::uint64_t>(size);
    }
    if (testing::fault::unlink(path.c_str()) != 0 && errno != ENOENT) {
      std::error_code probe_ec;
      if (fs::exists(path, probe_ec)) {
        // Unlink failed and the file is still there: keep its index
        // record (dropping it would orphan the file outside the bound
        // forever) and count the failure — the next pass retries.
        ++out.failed;
        entry_slack += 1;
        byte_slack += victim_bytes;
        continue;
      }
    }
    total_bytes -= victim_bytes;
    index.erase(victim.file);
    ++out.evicted;
  }
  stats_.evictions += out.evicted;
  return out;
}

void ScheduleCache::save_index_locked(const io::CacheIndex& index) const {
  const fs::path index_path = fs::path(directory_) / io::kCacheIndexFilename;
  try {
    io::write_file_atomic(index_path.string(), io::write_cache_index(index));
  } catch (const std::runtime_error& e) {
    throw std::runtime_error(std::string("schedule cache: ") + e.what());
  }
}

void ScheduleCache::touch_index_locked(const std::string& file) {
  if (max_entries_ == 0 && max_bytes_ == 0) {
    // Unbounded caches skip index maintenance on the hot path entirely:
    // gc() rebuilds recency from file modification times when a bound is
    // ever wanted, and skipping saves a read-modify-write of the index
    // per store/hit (all under the lock).
    return;
  }
  io::CacheIndex index = load_index_locked(nullptr);
  index.touch(file);
  // Reconcile before bounding so the eviction pass sees entries written
  // by racing processes — the bound holds over the actual directory
  // contents, not just this process's view of them.
  reconcile_index_locked(index);
  (void)evict_locked(index);
  try {
    save_index_locked(index);
  } catch (const std::runtime_error&) {
    // The index is advisory and this is the hot path (every store and
    // every promoted hit): an unwritable index — e.g. a read-only shared
    // cache directory being consumed warm — must not fail lookups or
    // stores. The bound still held (evictions above are plain removes),
    // and gc() reports persistent index problems loudly.
  }
}

CacheGcStats ScheduleCache::gc() {
  CacheGcStats out;
  if (directory_.empty()) {
    return out;
  }
  const std::lock_guard<std::mutex> lock(mu_);
  io::CacheIndex index = load_index_locked(&out.index_rebuilt);
  reconcile_index_locked(index);
  if (max_entries_ > 0 || max_bytes_ > 0) {
    const EvictOutcome eviction = evict_locked(index);
    out.evicted = eviction.evicted;
    out.evict_failures = eviction.failed;
  }
  out.kept = index.entries.size();
  try {
    save_index_locked(index);
  } catch (const std::runtime_error&) {
    // Degraded, not fatal: the index is advisory (a stale or missing one
    // is rebuilt from the entry files), so a publish failure must not
    // abort maintenance — report it and let the next pass retry.
    out.index_write_failed = true;
  }
  return out;
}

std::vector<StaticSchedule> ScheduleCache::feasible_schedules(
    std::uint64_t graph_fingerprint, const TaskGraph& tg) {
  std::vector<StaticSchedule> out;
  if (!directory_.empty()) {
    // The file name starts with the 16-hex-digit fingerprint, so the
    // directory scan needs to parse only this graph's entries.
    const std::string prefix = fingerprint_hex(graph_fingerprint) + "-";
    for (const std::string& file : list_entry_files(directory_)) {
      if (file.compare(0, prefix.size(), prefix) != 0) {
        continue;
      }
      std::ifstream in(fs::path(directory_) / file);
      if (!in) {
        continue;  // evicted between listing and open — not an error
      }
      io::ScheduleEntry entry;
      try {
        entry = io::read_schedule_entry(in);
      } catch (const io::ParseError&) {
        const std::lock_guard<std::mutex> lock(mu_);
        ++stats_.disk_rejects;
        continue;
      }
      if (entry.fingerprint != graph_fingerprint ||
          entry.schedule.job_count() != tg.job_count()) {
        const std::lock_guard<std::mutex> lock(mu_);
        ++stats_.disk_rejects;
        continue;
      }
      if (entry.schedule.count_violations(tg).feasible()) {
        out.push_back(std::move(entry.schedule));
      }
    }
    return out;
  }
  // Memory-only tier: keys sort by fingerprint first, so the matching
  // range is contiguous and already in deterministic key order.
  std::vector<StaticSchedule> candidates;
  {
    const std::lock_guard<std::mutex> lock(mu_);
    for (auto it = memory_.lower_bound(CacheKey{graph_fingerprint, "", 0, 0, 0, 0});
         it != memory_.end() && it->first.fingerprint == graph_fingerprint; ++it) {
      if (it->second.schedule.job_count() == tg.job_count()) {
        candidates.push_back(it->second.schedule);
      }
    }
  }
  for (StaticSchedule& s : candidates) {  // feasibility check outside the lock
    if (s.count_violations(tg).feasible()) {
      out.push_back(std::move(s));
    }
  }
  return out;
}

std::optional<ScheduleCache::Entry> ScheduleCache::load_from_disk(const CacheKey& key) {
  const fs::path path = fs::path(directory_) / key.filename();
  std::ifstream in(path);
  if (!in) {
    return std::nullopt;  // plain miss: the entry was never written
  }
  io::ScheduleEntry entry;
  try {
    entry = io::read_schedule_entry(in);
  } catch (const io::ParseError&) {
    ++stats_.disk_rejects;  // corrupt or different format version
    return std::nullopt;
  }
  // The file name encodes the key, but verify the header provenance too:
  // a renamed or hand-edited entry must not satisfy the wrong query.
  if (entry.fingerprint != key.fingerprint || entry.strategy != key.strategy ||
      entry.seed != key.seed || entry.processors != key.processors ||
      entry.max_iterations != key.max_iterations || entry.restarts != key.restarts) {
    ++stats_.disk_rejects;
    return std::nullopt;
  }
  return Entry{std::move(entry.schedule), std::move(entry.detail)};
}

CacheStats ScheduleCache::stats() const {
  const std::lock_guard<std::mutex> lock(mu_);
  return stats_;
}

std::size_t ScheduleCache::size() const {
  const std::lock_guard<std::mutex> lock(mu_);
  return memory_.size();
}

}  // namespace sched
}  // namespace fppn
