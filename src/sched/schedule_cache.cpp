#include "sched/schedule_cache.hpp"

#include <filesystem>
#include <fstream>
#include <sstream>
#include <stdexcept>

#include "io/atomic_file.hpp"
#include "io/schedule_format.hpp"

namespace fppn {
namespace sched {

namespace fs = std::filesystem;

std::string CacheKey::filename() const {
  std::ostringstream out;
  out << fingerprint_hex(fingerprint) << '-' << strategy << "-m" << processors
      << "-seed" << seed << "-it" << max_iterations << "-r" << restarts << ".sched";
  return out.str();
}

CacheKey make_cache_key(std::uint64_t graph_fingerprint, const std::string& strategy,
                        const StrategyOptions& opts) {
  CacheKey key;
  key.fingerprint = graph_fingerprint;
  key.strategy = strategy;
  key.seed = opts.seed;
  key.processors = opts.processors;
  key.max_iterations = opts.max_iterations;
  key.restarts = opts.restarts;
  return key;
}

CacheKey make_cache_key(const TaskGraph& tg, const std::string& strategy,
                        const StrategyOptions& opts) {
  return make_cache_key(fingerprint(tg), strategy, opts);
}

ScheduleCache::ScheduleCache(const std::string& directory) : directory_(directory) {
  io::ensure_directory(directory_, "schedule cache");
}

std::optional<StrategyResult> ScheduleCache::lookup(const CacheKey& key,
                                                    const TaskGraph& tg) {
  std::optional<Entry> entry;
  {
    const std::lock_guard<std::mutex> lock(mu_);
    const auto it = memory_.find(key);
    if (it != memory_.end()) {
      entry = it->second;
    } else if (!directory_.empty()) {
      entry = load_from_disk(key);
      if (entry.has_value()) {
        memory_.emplace(key, *entry);  // promote so the next probe is O(log n)
      }
    }
    if (entry.has_value() && entry->schedule.job_count() != tg.job_count()) {
      // Fingerprint collision safety net: never hand back a schedule that
      // cannot even index this graph's jobs.
      ++stats_.disk_rejects;
      memory_.erase(key);
      entry.reset();
    }
    if (entry.has_value()) {
      ++stats_.hits;
    } else {
      ++stats_.misses;
    }
  }
  if (!entry.has_value()) {
    return std::nullopt;
  }
  StrategyResult result;
  result.schedule = std::move(entry->schedule);
  result.strategy = key.strategy;
  result.detail = std::move(entry->detail);
  finalize_result(tg, result);
  return result;
}

void ScheduleCache::store(const CacheKey& key, const StrategyResult& result) {
  {
    const std::lock_guard<std::mutex> lock(mu_);
    memory_[key] = Entry{result.schedule, result.detail};
    ++stats_.stores;
  }
  if (directory_.empty()) {
    return;
  }
  io::ScheduleEntry entry;
  entry.fingerprint = key.fingerprint;
  entry.strategy = key.strategy;
  entry.seed = key.seed;
  entry.processors = key.processors;
  entry.max_iterations = key.max_iterations;
  entry.restarts = key.restarts;
  entry.detail = result.detail;
  entry.schedule = result.schedule;

  // Shared temp-file + atomic-rename writer: concurrent stores of the
  // same key — same process or not — never leave a torn entry behind.
  const fs::path final_path = fs::path(directory_) / key.filename();
  try {
    io::write_file_atomic(final_path.string(), io::write_schedule_entry(entry));
  } catch (const std::runtime_error& e) {
    throw std::runtime_error(std::string("schedule cache: ") + e.what());
  }
}

std::optional<ScheduleCache::Entry> ScheduleCache::load_from_disk(const CacheKey& key) {
  const fs::path path = fs::path(directory_) / key.filename();
  std::ifstream in(path);
  if (!in) {
    return std::nullopt;  // plain miss: the entry was never written
  }
  io::ScheduleEntry entry;
  try {
    entry = io::read_schedule_entry(in);
  } catch (const io::ParseError&) {
    ++stats_.disk_rejects;  // corrupt or different format version
    return std::nullopt;
  }
  // The file name encodes the key, but verify the header provenance too:
  // a renamed or hand-edited entry must not satisfy the wrong query.
  if (entry.fingerprint != key.fingerprint || entry.strategy != key.strategy ||
      entry.seed != key.seed || entry.processors != key.processors ||
      entry.max_iterations != key.max_iterations || entry.restarts != key.restarts) {
    ++stats_.disk_rejects;
    return std::nullopt;
  }
  return Entry{std::move(entry.schedule), std::move(entry.detail)};
}

CacheStats ScheduleCache::stats() const {
  const std::lock_guard<std::mutex> lock(mu_);
  return stats_;
}

std::size_t ScheduleCache::size() const {
  const std::lock_guard<std::mutex> lock(mu_);
  return memory_.size();
}

}  // namespace sched
}  // namespace fppn
