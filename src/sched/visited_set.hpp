// sched::VisitedSet — a concurrent, fixed-capacity visited set of SP
// orders, shared across parallel_search worker threads.
//
// Different restarts, seeds and strategies frequently revisit the same
// priority order; a score is a pure function of (graph, order, processor
// count), so recomputing it is pure waste. The set memoizes order-hash →
// EvalScore in an open-addressing table of atomic slots (the concurrent
// hash-table style of DiVinE's hashmap.h: linear probing, slots are
// claimed with a CAS and published with a release store, never resized
// and never freed, so readers need no locks and no hazard tracking).
//
// Slot protocol: state 0 = empty, 1 = claimed (writer is filling the
// payload), 2 = published. A reader trusts a slot only at state 2
// (acquire), which happens-after the writer's key+payload stores
// (release). A claimed-but-unpublished slot reads as a miss; concurrent
// writers may produce duplicate entries for one hash — both are benign:
// a miss only costs a re-evaluation, never correctness.
//
// Determinism argument: the table is keyed by a 64-bit hash of the exact
// order (position-mixed, seeded from the graph fingerprint), NOT by the
// order itself, so two distinct orders could in principle collide
// (~2^-64 per pair). The local search therefore uses memoized scores
// only to *reject* candidate moves; any hit whose score would be
// accepted is re-verified by an exact evaluation of the exact order
// before it can touch the incumbent trajectory (see local_search.cpp).
// Cross-worker interleaving can change which evaluations get skipped —
// hit/skip *counters* are run-dependent — but every score a worker acts
// on is the bit-identical score an evaluation would have produced, so
// winners, placements and iterations_used are unchanged.
//
// Thread safety: hash_order/lookup/insert are safe to call concurrently
// from any number of threads; counters are relaxed atomics.
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <vector>

#include "sched/evaluator.hpp"
#include "taskgraph/task_graph.hpp"

namespace fppn {
namespace sched {

class VisitedSet {
 public:
  /// `seed` keys the hash function (use the graph fingerprint so equal
  /// orders on different graphs never share entries across runs);
  /// `expected_orders` sizes the table (~2 slots per expected order,
  /// rounded up to a power of two, bounded above — insertions into a
  /// saturated region are dropped, never resized).
  VisitedSet(std::uint64_t seed, std::size_t expected_orders);

  VisitedSet(const VisitedSet&) = delete;
  VisitedSet& operator=(const VisitedSet&) = delete;

  /// Position-sensitive 64-bit hash of an SP order.
  [[nodiscard]] std::uint64_t hash_order(const std::vector<JobId>& order) const noexcept;

  /// True when a published entry for `hash` exists; fills `out` with the
  /// memoized score. A concurrent in-flight insert may read as a miss.
  [[nodiscard]] bool lookup(std::uint64_t hash, EvalScore& out) const;

  /// Publishes `score` under `hash`; duplicates and saturated probes are
  /// silently tolerated (the set is an optimization, not a registry).
  void insert(std::uint64_t hash, const EvalScore& score);

  [[nodiscard]] std::size_t capacity() const noexcept { return mask_ + 1; }
  [[nodiscard]] std::uint64_t hits() const noexcept {
    return hits_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] std::uint64_t misses() const noexcept {
    return misses_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] std::uint64_t inserts() const noexcept {
    return inserts_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] std::uint64_t dropped() const noexcept {
    return dropped_.load(std::memory_order_relaxed);
  }

 private:
  struct Slot {
    std::atomic<std::uint32_t> state{0};  ///< 0 empty, 1 claimed, 2 published
    std::atomic<std::uint64_t> key{0};
    std::uint64_t violations = 0;
    std::int64_t makespan_num = 0;
    std::int64_t makespan_den = 1;
  };

  std::unique_ptr<Slot[]> slots_;
  std::uint64_t mask_ = 0;
  std::uint64_t seed_ = 0;
  mutable std::atomic<std::uint64_t> hits_{0};
  mutable std::atomic<std::uint64_t> misses_{0};
  std::atomic<std::uint64_t> inserts_{0};
  std::atomic<std::uint64_t> dropped_{0};
};

}  // namespace sched
}  // namespace fppn
