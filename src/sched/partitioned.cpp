#include "sched/partitioned.hpp"

#include <algorithm>
#include <numeric>
#include <stdexcept>

namespace fppn {

StaticSchedule partitioned_list_schedule(const TaskGraph& tg,
                                         const std::vector<ProcessorId>& assignment,
                                         const std::vector<JobId>& priority,
                                         std::int64_t processors) {
  const std::size_t n = tg.job_count();
  if (priority.size() != n) {
    throw std::invalid_argument("partitioned schedule: SP order must cover every job");
  }
  StaticSchedule schedule(n, processors);
  if (n == 0) {
    return schedule;
  }
  const auto proc_of = [&](JobId id) {
    const std::size_t p = tg.job(id).process.value();
    if (p >= assignment.size() || !assignment[p].is_valid() ||
        static_cast<std::int64_t>(assignment[p].value()) >= processors) {
      throw std::invalid_argument("partitioned schedule: job '" + tg.job(id).name +
                                  "' has no valid processor assignment");
    }
    return assignment[p];
  };

  std::vector<std::size_t> rank(n, 0);
  for (std::size_t r = 0; r < priority.size(); ++r) {
    rank[priority[r].value()] = r;
  }
  std::vector<std::size_t> unfinished_preds(n, 0);
  for (std::size_t i = 0; i < n; ++i) {
    unfinished_preds[i] = tg.predecessors(JobId(i)).size();
  }
  std::vector<bool> started(n, false);
  std::vector<Time> finish(n);
  std::vector<Time> proc_free(static_cast<std::size_t>(processors));

  std::size_t remaining = n;
  Time t = tg.job(JobId(0)).arrival;
  for (std::size_t i = 1; i < n; ++i) {
    t = std::min(t, tg.job(JobId(i)).arrival);
  }

  while (remaining > 0) {
    // Highest-SP job that is ready AND whose own processor is free.
    std::optional<std::size_t> best;
    for (std::size_t i = 0; i < n; ++i) {
      if (started[i] || unfinished_preds[i] > 0 || tg.job(JobId(i)).arrival > t) {
        continue;
      }
      bool preds_done = true;
      for (const JobId p : tg.predecessors(JobId(i))) {
        if (finish[p.value()] > t) {
          preds_done = false;
          break;
        }
      }
      if (!preds_done || proc_free[proc_of(JobId(i)).value()] > t) {
        continue;
      }
      if (!best.has_value() || rank[i] < rank[*best]) {
        best = i;
      }
    }
    if (best.has_value()) {
      const std::size_t i = *best;
      const ProcessorId m = proc_of(JobId(i));
      started[i] = true;
      finish[i] = t + tg.job(JobId(i)).wcet;
      schedule.place(JobId(i), m, t);
      proc_free[m.value()] = finish[i];
      for (const JobId s : tg.successors(JobId(i))) {
        --unfinished_preds[s.value()];
      }
      --remaining;
      continue;
    }
    std::optional<Time> next;
    const auto consider = [&](const Time& cand) {
      if (cand > t && (!next.has_value() || cand < *next)) {
        next = cand;
      }
    };
    for (std::size_t i = 0; i < n; ++i) {
      if (!started[i]) {
        consider(tg.job(JobId(i)).arrival);
      } else {
        consider(finish[i]);
      }
    }
    for (const Time& f : proc_free) {
      consider(f);
    }
    if (!next.has_value()) {
      throw std::logic_error("partitioned schedule: stalled with no future event");
    }
    t = *next;
  }
  return schedule;
}

std::vector<ProcessorId> wfd_assignment(const TaskGraph& tg,
                                        std::size_t process_count,
                                        std::int64_t processors) {
  std::vector<ProcessorId> assignment(process_count, ProcessorId());
  if (processors < 1) {
    throw std::invalid_argument("partitioning needs at least one processor");
  }

  // Per-process demand: sum of job WCETs (relative to one frame).
  std::vector<Duration> demand(process_count);
  for (const Job& j : tg.jobs()) {
    if (j.process.value() >= process_count) {
      throw std::invalid_argument("partitioning: job process id out of range");
    }
    demand[j.process.value()] += j.wcet;
  }
  // Worst-fit decreasing on demand (balances the bins).
  std::vector<std::size_t> order(process_count);
  std::iota(order.begin(), order.end(), 0);
  std::sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
    if (demand[a] != demand[b]) {
      return demand[a] > demand[b];
    }
    return a < b;
  });
  std::vector<Duration> bin(static_cast<std::size_t>(processors));
  for (const std::size_t p : order) {
    if (demand[p].is_zero()) {
      continue;  // process with no jobs in this frame
    }
    std::size_t lightest = 0;
    for (std::size_t m = 1; m < bin.size(); ++m) {
      if (bin[m] < bin[lightest]) {
        lightest = m;
      }
    }
    assignment[p] = ProcessorId(lightest);
    bin[lightest] += demand[p];
  }
  return assignment;
}

PartitionedResult partition_and_schedule(const TaskGraph& tg,
                                         std::size_t process_count,
                                         std::int64_t processors,
                                         PriorityHeuristic heuristic,
                                         bool use_kernel) {
  PartitionedResult result;
  result.assignment = wfd_assignment(tg, process_count, processors);
  if (use_kernel) {
    sched::Evaluator kernel(tg, processors, result.assignment);
    result.schedule = kernel.materialize(schedule_priority(tg, heuristic));
  } else {
    result.schedule = partitioned_list_schedule(
        tg, result.assignment, schedule_priority(tg, heuristic), processors);
  }
  result.feasible = result.schedule.count_violations(tg).feasible();
  return result;
}

PartitionedScheduler::PartitionedScheduler(const TaskGraph& tg,
                                           std::size_t process_count,
                                           std::int64_t processors, bool use_kernel)
    : processors_(processors),
      assignment_(wfd_assignment(tg, process_count, processors)) {
  if (use_kernel) {
    kernel_.emplace(tg, processors, assignment_);
  } else {
    tg_ = &tg;
  }
}

StaticSchedule PartitionedScheduler::schedule_order(const std::vector<JobId>& priority) {
  if (kernel_.has_value()) {
    return kernel_->materialize(priority);
  }
  return partitioned_list_schedule(*tg_, assignment_, priority, processors_);
}

sched::EvalScore PartitionedScheduler::evaluate_order(const std::vector<JobId>& priority) {
  if (!kernel_.has_value()) {
    throw std::logic_error("partitioned scheduler: score-only needs kernel mode");
  }
  return kernel_->evaluate(priority);
}

}  // namespace fppn
