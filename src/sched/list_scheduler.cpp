#include "sched/list_scheduler.hpp"

#include <algorithm>
#include <limits>
#include <stdexcept>

namespace fppn {

StaticSchedule list_schedule(const TaskGraph& tg, const std::vector<JobId>& priority,
                             std::int64_t processors) {
  const std::size_t n = tg.job_count();
  if (priority.size() != n) {
    throw std::invalid_argument("list_schedule: SP order must cover every job");
  }
  if (!tg.is_acyclic()) {
    throw std::invalid_argument("list_schedule: task graph is cyclic");
  }
  StaticSchedule schedule(n, processors);
  if (n == 0) {
    return schedule;
  }

  // rank[i] = position in the SP order (0 = highest priority).
  std::vector<std::size_t> rank(n, 0);
  {
    std::vector<bool> seen(n, false);
    for (std::size_t r = 0; r < priority.size(); ++r) {
      const std::size_t i = priority[r].value();
      if (i >= n || seen[i]) {
        throw std::invalid_argument("list_schedule: SP order is not a permutation");
      }
      seen[i] = true;
      rank[i] = r;
    }
  }

  std::vector<std::size_t> unfinished_preds(n, 0);
  for (std::size_t i = 0; i < n; ++i) {
    unfinished_preds[i] = tg.predecessors(JobId(i)).size();
  }
  std::vector<bool> started(n, false);
  std::vector<Time> finish(n);          // valid once started
  std::vector<Time> proc_free(static_cast<std::size_t>(processors));

  std::size_t remaining = n;
  Time t;  // current decision instant; starts at 0
  // Seed t with the earliest arrival so leading idle time is skipped.
  {
    Time first = tg.job(JobId(0)).arrival;
    for (std::size_t i = 1; i < n; ++i) {
      first = std::min(first, tg.job(JobId(i)).arrival);
    }
    t = first;
  }

  while (remaining > 0) {
    // Free processor with the smallest index among those free at t.
    std::optional<std::size_t> free_proc;
    for (std::size_t m = 0; m < proc_free.size(); ++m) {
      if (proc_free[m] <= t) {
        free_proc = m;
        break;
      }
    }
    // Highest-SP ready job at t.
    std::optional<std::size_t> best;
    if (free_proc.has_value()) {
      for (std::size_t i = 0; i < n; ++i) {
        if (started[i] || unfinished_preds[i] > 0 || tg.job(JobId(i)).arrival > t) {
          continue;
        }
        // Predecessors must also have *completed* by t.
        bool preds_done = true;
        for (const JobId p : tg.predecessors(JobId(i))) {
          if (finish[p.value()] > t) {
            preds_done = false;
            break;
          }
        }
        if (!preds_done) {
          continue;
        }
        if (!best.has_value() || rank[i] < rank[*best]) {
          best = i;
        }
      }
    }

    if (free_proc.has_value() && best.has_value()) {
      const std::size_t i = *best;
      started[i] = true;
      finish[i] = t + tg.job(JobId(i)).wcet;
      schedule.place(JobId(i), ProcessorId(*free_proc), t);
      proc_free[*free_proc] = finish[i];
      for (const JobId s : tg.successors(JobId(i))) {
        --unfinished_preds[s.value()];
      }
      --remaining;
      continue;
    }

    // Nothing startable: advance t to the next event strictly after t
    // (an arrival of an unstarted job, a job completion, or a processor
    // release).
    std::optional<Time> next;
    const auto consider = [&](const Time& cand) {
      if (cand > t && (!next.has_value() || cand < *next)) {
        next = cand;
      }
    };
    for (std::size_t i = 0; i < n; ++i) {
      if (!started[i]) {
        consider(tg.job(JobId(i)).arrival);
      } else {
        consider(finish[i]);
      }
    }
    for (const Time& f : proc_free) {
      consider(f);
    }
    if (!next.has_value()) {
      throw std::logic_error("list_schedule: stalled with no future event");
    }
    t = *next;
  }
  return schedule;
}

StaticSchedule list_schedule(const TaskGraph& tg, PriorityHeuristic heuristic,
                             std::int64_t processors) {
  return list_schedule(tg, schedule_priority(tg, heuristic), processors);
}

}  // namespace fppn
