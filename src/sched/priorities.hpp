// Schedule-priority (SP) heuristics for list scheduling (§III-B).
//
// SP is a *total order on jobs* — not to be confused with the functional
// priority FP that defines semantics. The paper points to EDF adjusted to
// use ALAP completion times, b-level ordering [Kwok & Ahmad] and the
// modified deadline-monotonic assignment [Forget et al.]; all are
// implemented here plus a plain arrival-order baseline for the ablation
// benchmark.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "taskgraph/task_graph.hpp"

namespace fppn {

enum class PriorityHeuristic : std::uint8_t {
  kAlapEdf,            ///< earliest ALAP completion D' first ("ALAP heuristic")
  kBLevel,             ///< longest remaining path (incl. own C) first
  kDeadlineMonotonic,  ///< smallest relative deadline D - A first
  kArrivalOrder,       ///< earliest arrival first (FIFO baseline)
};

[[nodiscard]] std::string to_string(PriorityHeuristic h);

/// All heuristics, for sweep benchmarks.
[[nodiscard]] const std::vector<PriorityHeuristic>& all_heuristics();

/// Jobs sorted from highest to lowest schedule priority. Ties are broken
/// by (arrival, job id) so the order is always deterministic and total.
[[nodiscard]] std::vector<JobId> schedule_priority(const TaskGraph& tg,
                                                   PriorityHeuristic heuristic);

/// b-level of every job: longest WCET sum of any path starting at the job
/// (including its own WCET). Precondition: DAG.
[[nodiscard]] std::vector<Duration> b_levels(const TaskGraph& tg);

}  // namespace fppn
