// Schedule-priority (SP) heuristics for list scheduling (§III-B).
//
// SP is a *total order on jobs* — not to be confused with the functional
// priority FP that defines semantics. The paper points to EDF adjusted to
// use ALAP completion times, b-level ordering [Kwok & Ahmad] and the
// modified deadline-monotonic assignment [Forget et al.]; all are
// implemented here plus a plain arrival-order baseline for the ablation
// benchmark.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "taskgraph/task_graph.hpp"

namespace fppn {

enum class PriorityHeuristic : std::uint8_t {
  kAlapEdf,            ///< earliest ALAP completion D' first ("ALAP heuristic")
  kBLevel,             ///< longest remaining path (incl. own C) first
  kDeadlineMonotonic,  ///< smallest relative deadline D - A first
  kArrivalOrder,       ///< earliest arrival first (FIFO baseline)
};

/// Registry name of the heuristic ("alap-edf", ...); never throws.
[[nodiscard]] std::string to_string(PriorityHeuristic h);

/// All heuristics in a fixed, documented order (kAlapEdf first), for
/// sweep benchmarks and the seed -> heuristic mapping of partitioned-wfd.
/// The returned reference is to a function-local static: valid for the
/// process lifetime, safe to read concurrently.
[[nodiscard]] const std::vector<PriorityHeuristic>& all_heuristics();

/// Jobs sorted from highest to lowest schedule priority. Ties are broken
/// by (arrival, job id) so the order is always deterministic and total.
/// Thread safety: pure function, safe to call concurrently. Throws
/// std::invalid_argument for cyclic graphs under kAlapEdf/kBLevel (both
/// need longest-path values).
[[nodiscard]] std::vector<JobId> schedule_priority(const TaskGraph& tg,
                                                   PriorityHeuristic heuristic);

/// b-level of every job: longest WCET sum of any path starting at the job
/// (including its own WCET). Deterministic; throws std::invalid_argument
/// when the graph is cyclic.
[[nodiscard]] std::vector<Duration> b_levels(const TaskGraph& tg);

}  // namespace fppn
