#include "sched/local_search.hpp"

#include <algorithm>
#include <random>

namespace fppn {
namespace {

struct Score {
  std::size_t violations = 0;
  Time makespan;

  [[nodiscard]] bool better_than(const Score& other) const {
    if (violations != other.violations) {
      return violations < other.violations;
    }
    return makespan < other.makespan;
  }
};

Score evaluate(const TaskGraph& tg, const StaticSchedule& schedule) {
  Score s;
  s.makespan = schedule.makespan(tg);
  for (const Violation& v : schedule.check_feasibility(tg).violations) {
    if (v.kind == ViolationKind::kDeadline) {
      ++s.violations;
    }
  }
  return s;
}

}  // namespace

LocalSearchResult optimize_priority(const TaskGraph& tg,
                                    const LocalSearchOptions& opts) {
  const std::size_t n = tg.job_count();
  LocalSearchResult best;

  // Seed with the best plain heuristic, then let any supplied start
  // points (the warm-start hook) compete on the same strict-improvement
  // terms: a start priority displaces the heuristic seed only when its
  // score is strictly better, so equal-scoring warm starts keep the
  // heuristic provenance (and the bit-identical cold result).
  for (const PriorityHeuristic h : all_heuristics()) {
    std::vector<JobId> order = schedule_priority(tg, h);
    StaticSchedule schedule = list_schedule(tg, order, opts.processors);
    const Score score = evaluate(tg, schedule);
    if (best.priority.empty() ||
        score.better_than(Score{best.violations, best.makespan})) {
      best.violations = score.violations;
      best.makespan = score.makespan;
      best.schedule = std::move(schedule);
      best.priority = std::move(order);
      best.start_heuristic = h;
    }
  }
  for (std::size_t p = 0; p < opts.start_priorities.size(); ++p) {
    std::vector<JobId> order = opts.start_priorities[p];
    StaticSchedule schedule = list_schedule(tg, order, opts.processors);
    const Score score = evaluate(tg, schedule);
    if (score.better_than(Score{best.violations, best.makespan})) {
      best.violations = score.violations;
      best.makespan = score.makespan;
      best.schedule = std::move(schedule);
      best.priority = std::move(order);
      best.start_priority_index = static_cast<int>(p);
    }
  }
  if (n < 2) {
    best.feasible = best.violations == 0;
    return best;
  }

  std::mt19937_64 rng(opts.seed);
  std::uniform_int_distribution<std::size_t> pick(0, n - 1);

  for (int restart = 0; restart <= opts.restarts; ++restart) {
    std::vector<JobId> current = best.priority;
    if (restart > 0) {
      // Perturb the incumbent rather than starting from random noise.
      for (std::size_t k = 0; k < n / 4 + 1; ++k) {
        std::swap(current[pick(rng)], current[pick(rng)]);
      }
    }
    Score current_score =
        evaluate(tg, list_schedule(tg, current, opts.processors));

    int stale = 0;
    for (int it = 0; it < opts.max_iterations && stale < 200; ++it) {
      ++best.iterations_used;
      std::vector<JobId> candidate = current;
      // Move: either swap two positions or pull a job earlier (both are
      // useful — pulls fix late chains, swaps fix local inversions).
      const std::size_t i = pick(rng);
      std::size_t j = pick(rng);
      if (i == j) {
        j = (j + 1) % n;
      }
      if ((rng() & 1U) == 0U) {
        std::swap(candidate[i], candidate[j]);
      } else {
        const JobId moved = candidate[std::max(i, j)];
        candidate.erase(candidate.begin() +
                        static_cast<std::ptrdiff_t>(std::max(i, j)));
        candidate.insert(candidate.begin() +
                             static_cast<std::ptrdiff_t>(std::min(i, j)),
                         moved);
      }
      StaticSchedule schedule = list_schedule(tg, candidate, opts.processors);
      const Score score = evaluate(tg, schedule);
      if (score.better_than(current_score)) {
        current = candidate;
        current_score = score;
        stale = 0;
        if (score.better_than(Score{best.violations, best.makespan})) {
          best.violations = score.violations;
          best.makespan = score.makespan;
          best.schedule = std::move(schedule);
          best.priority = current;
        }
      } else {
        ++stale;
      }
      if (best.violations == 0 && restart == opts.restarts) {
        break;  // feasible and no more restarts pending: good enough
      }
    }
  }
  best.feasible = best.violations == 0;
  return best;
}

}  // namespace fppn
