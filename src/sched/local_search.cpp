#include "sched/local_search.hpp"

#include <algorithm>
#include <optional>
#include <random>

#include "sched/evaluator.hpp"
#include "sched/visited_set.hpp"

namespace fppn {
namespace {

using sched::EvalScore;

/// Reference scorer — the semantics the kernel reproduces bit-identically:
/// full list schedule, then the counts-only feasibility pass.
EvalScore reference_score(const TaskGraph& tg, const StaticSchedule& schedule) {
  EvalScore s;
  s.makespan = schedule.makespan(tg);
  s.deadline_violations = schedule.count_violations(tg).deadline;
  return s;
}

}  // namespace

LocalSearchResult optimize_priority(const TaskGraph& tg,
                                    const LocalSearchOptions& opts) {
  const std::size_t n = tg.job_count();
  LocalSearchResult best;

  // The kernel owns all simulation scratch and is reused for every
  // candidate this search evaluates — the steady-state inner loop below
  // performs no heap allocation.
  std::optional<sched::Evaluator> kernel;
  if (opts.use_fast_evaluator) {
    kernel.emplace(tg, opts.processors);
  }
  const bool incremental = opts.use_fast_evaluator && opts.use_incremental;
  sched::VisitedSet* const visited =
      opts.use_fast_evaluator ? opts.visited_set : nullptr;
  const auto score_of = [&](const std::vector<JobId>& order) {
    if (kernel.has_value()) {
      return kernel->evaluate(order);
    }
    return reference_score(tg, list_schedule(tg, order, opts.processors));
  };
  // Exact scorer that also (re)builds the kernel's checkpoint store so
  // `order` becomes the incremental baseline. Used on every climb start
  // and every accepted move; bit-identical to score_of.
  const auto score_as_baseline = [&](const std::vector<JobId>& order) {
    return incremental ? kernel->evaluate_baseline(order) : score_of(order);
  };
  // Publish a freshly computed exact score to the shared visited-set.
  const auto publish = [&](const std::vector<JobId>& order, const EvalScore& score) {
    if (visited != nullptr) {
      visited->insert(visited->hash_order(order), score);
    }
  };
  const auto materialize = [&](const std::vector<JobId>& order) {
    return kernel.has_value() ? kernel->materialize(order)
                              : list_schedule(tg, order, opts.processors);
  };
  EvalScore best_score;
  const auto adopt = [&](const EvalScore& score) {
    best_score = score;
    best.violations = score.deadline_violations;
    best.makespan = score.makespan;
  };

  // Seed with the best plain heuristic, then let any supplied start
  // points (the warm-start hook) compete on the same strict-improvement
  // terms: a start priority displaces the heuristic seed only when its
  // score is strictly better, so equal-scoring warm starts keep the
  // heuristic provenance (and the bit-identical cold result).
  for (const PriorityHeuristic h : all_heuristics()) {
    std::vector<JobId> order = schedule_priority(tg, h);
    const EvalScore score = score_of(order);
    publish(order, score);
    if (best.priority.empty() || score.better_than(best_score)) {
      adopt(score);
      best.priority = std::move(order);
      best.start_heuristic = h;
    }
  }
  for (std::size_t p = 0; p < opts.start_priorities.size(); ++p) {
    const EvalScore score = score_of(opts.start_priorities[p]);
    publish(opts.start_priorities[p], score);
    if (score.better_than(best_score)) {
      adopt(score);
      best.priority = opts.start_priorities[p];
      best.start_priority_index = static_cast<int>(p);
    }
  }
  const auto fill_counters = [&]() {
    if (kernel.has_value()) {
      const sched::EvalStats& st = kernel->stats();
      best.full_evals = st.full_evals;
      best.incremental_evals = st.incremental_evals;
      best.spliced_evals = st.spliced_evals;
    }
  };
  if (n < 2) {
    best.schedule = materialize(best.priority);
    best.feasible = best.violations == 0;
    fill_counters();
    return best;
  }

  std::mt19937_64 rng(opts.seed);
  std::uniform_int_distribution<std::size_t> pick(0, n - 1);

  for (int restart = 0; restart <= opts.restarts; ++restart) {
    std::vector<JobId> current = best.priority;
    if (restart > 0) {
      // Perturb the incumbent rather than starting from random noise.
      for (std::size_t k = 0; k < n / 4 + 1; ++k) {
        std::swap(current[pick(rng)], current[pick(rng)]);
      }
    }
    EvalScore current_score = score_as_baseline(current);
    publish(current, current_score);

    int stale = 0;
    for (int it = 0; it < opts.max_iterations && stale < opts.stale_limit; ++it) {
      ++best.iterations_used;
      // Move: pull a job earlier (insertion) three times out of four,
      // swap two positions otherwise. Insertion is the workhorse
      // neighborhood for permutation scheduling — it fixes late chains
      // with a minimal perturbation, and its divergence window under the
      // incremental kernel is just the pulled job's frame, so these moves
      // also re-score cheapest. Swaps stay in the mix to fix local
      // inversions insertion cannot express in one step. Applied in place
      // on the reusable buffer and undone on rejection — no per-candidate
      // copy.
      const std::size_t i = pick(rng);
      std::size_t j = pick(rng);
      if (i == j) {
        j = (j + 1) % n;
      }
      const std::size_t lo = std::min(i, j);
      const std::size_t hi = std::max(i, j);
      const bool swap_move = (rng() & 3U) == 0U;
      if (swap_move) {
        std::swap(current[i], current[j]);
      } else {
        // current[hi] moves to position lo; [lo, hi) shifts right.
        std::rotate(current.begin() + static_cast<std::ptrdiff_t>(lo),
                    current.begin() + static_cast<std::ptrdiff_t>(hi),
                    current.begin() + static_cast<std::ptrdiff_t>(hi) + 1);
      }
      // Score the move: visited-set hit (skips the simulation entirely),
      // else the incremental kernel resumed from the last compatible
      // checkpoint, else a from-scratch evaluation. All three produce
      // the bit-identical score for this order.
      EvalScore score;
      bool from_visited = false;
      std::uint64_t order_hash = 0;
      if (visited != nullptr) {
        order_hash = visited->hash_order(current);
        from_visited = visited->lookup(order_hash, score);
      }
      if (from_visited) {
        ++best.visited_skips;
      } else {
        score = incremental
                    ? kernel->evaluate_move(
                          current, lo, hi,
                          swap_move ? sched::MoveKind::kSwap : sched::MoveKind::kRotate)
                    : score_of(current);
        if (visited != nullptr) {
          visited->insert(order_hash, score);
        }
      }
      bool accept = score.better_than(current_score);
      bool rebaselined = false;
      if (accept && (from_visited || incremental)) {
        // The incumbent path is always exact: a memoized score may only
        // steer rejections, so a would-be acceptance from the visited-set
        // is re-verified by an exact evaluation of the exact order (which
        // also rebuilds the checkpoint baseline for the new incumbent —
        // the incremental path needs that refresh on every acceptance).
        score = score_as_baseline(current);
        rebaselined = true;
        accept = score.better_than(current_score);
      }
      if (accept) {
        current_score = score;
        stale = 0;
        if (score.better_than(best_score)) {
          adopt(score);
          best.priority = current;
        }
      } else {
        ++stale;
        if (swap_move) {
          std::swap(current[i], current[j]);
        } else {
          std::rotate(current.begin() + static_cast<std::ptrdiff_t>(lo),
                      current.begin() + static_cast<std::ptrdiff_t>(lo) + 1,
                      current.begin() + static_cast<std::ptrdiff_t>(hi) + 1);
        }
        if (rebaselined) {
          // A hash-collision acceptance that failed re-verification moved
          // the checkpoint baseline to the rejected order; point it back
          // at the (restored) incumbent.
          (void)score_as_baseline(current);
        }
      }
      if (best.violations == 0 && restart == opts.restarts) {
        break;  // feasible and no more restarts pending: good enough
      }
    }
  }
  // The schedule is materialized once, for the winner only — score-only
  // evaluations above never build a StaticSchedule.
  best.schedule = materialize(best.priority);
  best.feasible = best.violations == 0;
  fill_counters();
  return best;
}

}  // namespace fppn
