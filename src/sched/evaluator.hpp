// sched::Evaluator — the allocation-free O((n+E) log n) schedule-evaluation
// kernel behind the SP local search (§III-B's inner loop, made fast).
//
// The naive path evaluates a candidate SP order by running list_schedule
// (O(n²) ready/next-event scans, a freshly allocated StaticSchedule) and
// scoring it through check_feasibility (violation records with formatted
// detail strings) — thousands of times per search. The Evaluator replaces
// that with an event-driven simulation over a CompiledTaskGraph flat view
// (taskgraph/compiled_graph.hpp):
//
//   - a rank-keyed min-heap of ready jobs and a min-heap of free
//     processor indices replace the O(n) highest-priority-ready scan,
//   - a (free-time, processor) min-heap plus a pending-ready heap replace
//     the O(n) next-event scan,
//   - on the int64 tick timebase every comparison is integer; when ticks
//     would overflow the kernel falls back to exact Rational arithmetic,
//   - evaluate() computes (deadline violations, makespan) during the
//     simulation — no StaticSchedule, no FeasibilityReport, no strings —
//     and materialize() rebuilds the full schedule only for incumbents,
//   - every buffer is owned by the Evaluator and reused across calls, so
//     the steady-state inner loop performs no heap allocation.
//
// Determinism contract: for any valid SP order, evaluate()/materialize()
// produce the bit-identical score and placements the reference
// list_schedule + check_feasibility pipeline produces — same decision
// instants, same rank tie-breaks, same smallest-index processor choice —
// on either timebase (regression-proved by the randomized differential
// suite in tests/evaluator_test.cpp). Search winners are therefore
// identical with the kernel on or off, cold and warm, 1-process and
// sharded.
//
// Thread safety: an Evaluator is mutable scratch — one per search worker,
// never shared concurrently. Construction is read-only on the task graph.
#pragma once

#include <cstdint>
#include <utility>
#include <vector>

#include "sched/static_schedule.hpp"
#include "taskgraph/compiled_graph.hpp"
#include "taskgraph/task_graph.hpp"

namespace fppn {
namespace sched {

/// The local-search objective of one candidate evaluation, lexicographic:
/// fewer deadline violations first, then smaller makespan.
struct EvalScore {
  std::size_t deadline_violations = 0;
  Time makespan;

  [[nodiscard]] bool better_than(const EvalScore& other) const {
    if (deadline_violations != other.deadline_violations) {
      return deadline_violations < other.deadline_violations;
    }
    return makespan < other.makespan;
  }
};

class Evaluator {
 public:
  /// Compiles `tg` and sizes all scratch. Throws std::invalid_argument
  /// when processors < 1 or the graph is cyclic (the same conditions the
  /// reference list_schedule rejects, checked once here instead of per
  /// evaluation).
  Evaluator(const TaskGraph& tg, std::int64_t processors);

  /// Scores one SP order without building a schedule. Allocation-free
  /// after the first call. Throws std::invalid_argument when `priority`
  /// is not a permutation of all jobs.
  [[nodiscard]] EvalScore evaluate(const std::vector<JobId>& priority);

  /// Runs the same simulation and materializes the full StaticSchedule —
  /// bit-identical to list_schedule(tg, priority, processors). For
  /// incumbents only; this path allocates the schedule it returns.
  [[nodiscard]] StaticSchedule materialize(const std::vector<JobId>& priority);

  /// True when the int64 tick fast path is active; false means the exact
  /// Rational fallback (results are bit-identical either way).
  [[nodiscard]] bool uses_ticks() const noexcept { return cg_.has_ticks(); }

  [[nodiscard]] const CompiledTaskGraph& compiled() const noexcept { return cg_; }
  [[nodiscard]] std::int64_t processor_count() const noexcept { return processors_; }

 private:
  void load_rank(const std::vector<JobId>& priority);

  template <class T, class W>
  std::size_t run(const std::vector<T>& arrival, const std::vector<T>& deadline,
                  const std::vector<W>& wcet, std::vector<T>& ready_at,
                  std::vector<std::pair<T, std::uint32_t>>& busy,
                  std::vector<std::pair<T, std::uint32_t>>& pending,
                  std::vector<T>& start, T& makespan, bool record);

  CompiledTaskGraph cg_;
  std::int64_t processors_ = 1;

  // Scratch, reused across evaluations.
  std::vector<std::uint32_t> rank_;       ///< rank_[job] = SP position
  std::vector<std::uint8_t> seen_;        ///< permutation validation
  std::vector<std::uint32_t> remaining_;  ///< unfinished predecessor counts
  std::vector<std::uint64_t> ready_heap_; ///< (rank << 32 | job) min-heap
  std::vector<std::uint32_t> free_procs_; ///< free processor-index min-heap
  std::vector<std::uint32_t> placed_proc_;
  // Tick timebase scratch.
  std::vector<std::int64_t> ready_tick_;
  std::vector<std::pair<std::int64_t, std::uint32_t>> busy_tick_;
  std::vector<std::pair<std::int64_t, std::uint32_t>> pending_tick_;
  std::vector<std::int64_t> start_tick_;
  // Rational fallback scratch.
  std::vector<Time> ready_time_;
  std::vector<std::pair<Time, std::uint32_t>> busy_time_;
  std::vector<std::pair<Time, std::uint32_t>> pending_time_;
  std::vector<Time> start_time_;
};

}  // namespace sched
}  // namespace fppn
