// sched::Evaluator — the allocation-free O((n+E) log n) schedule-evaluation
// kernel behind the SP local search (§III-B's inner loop, made fast).
//
// The naive path evaluates a candidate SP order by running list_schedule
// (O(n²) ready/next-event scans, a freshly allocated StaticSchedule) and
// scoring it through check_feasibility (violation records with formatted
// detail strings) — thousands of times per search. The Evaluator replaces
// that with an event-driven simulation over a CompiledTaskGraph flat view
// (taskgraph/compiled_graph.hpp):
//
//   - a rank-keyed min-heap of ready jobs and a min-heap of free
//     processor indices replace the O(n) highest-priority-ready scan,
//   - a (free-time, processor) min-heap plus a pending-ready heap replace
//     the O(n) next-event scan,
//   - on the int64 tick timebase every comparison is integer; when ticks
//     would overflow the kernel falls back to exact Rational arithmetic,
//   - evaluate() computes (deadline violations, makespan) during the
//     simulation — no StaticSchedule, no FeasibilityReport, no strings —
//     and materialize() rebuilds the full schedule only for incumbents,
//   - every buffer is owned by the Evaluator and reused across calls, so
//     the steady-state inner loop performs no heap allocation.
//
// Incremental evaluation (the local-search move loop):
//
//   evaluate_baseline() runs the full simulation and snapshots the
//   complete simulation state (time, event heaps, ready set, readiness
//   times, started set) every `checkpoint_stride()` starts — O(√n)
//   checkpoints by default, owned by the evaluator and reused without
//   reallocation. evaluate_move(order, lo, hi, kind) then scores a
//   swap/rotate perturbation of the baseline order by
//
//     - resuming from the latest checkpoint at or before the exact first
//       pop the move can influence, computed from per-start decision logs
//       recorded with the baseline: the promoted job (new rank lo) steals
//       its first baseline pop at or after its ready-entry whose chosen
//       rank is >= lo, and a swap's demoted job loses its own pop iff the
//       runner-up there outranked its new position. Every earlier
//       decision replays verbatim (a rotation's shifted window keeps its
//       relative order), so the restored state is exactly what a
//       from-scratch run would reach,
//     - once every moved job has started, comparing the live state
//       against the baseline checkpoint at the same started-count; on an
//       exact match the two simulations are confluent and the memoized
//       suffix (violation count + suffix max finish) is spliced in
//       without simulating the tail. Confluence is an absorbing state, so
//       probing only at checkpoint boundaries loses nothing. On periodic
//       workloads the machine drains at frame boundaries, which bounds
//       how far a perturbation can propagate — most moves splice within
//       a frame or two of the divergence.
//
//   Both shortcuts are exact, never heuristic: resumption replays the
//   identical decision sequence (all heap keys are unique, so pops are
//   layout-independent), and the splice is gated on a full state
//   comparison, not a hash. evaluate_move therefore returns the
//   bit-identical score a from-scratch evaluate() of the same order
//   produces — regression-proved move-by-move by the incremental
//   differential suite in tests/evaluator_test.cpp.
//
// Partition-constrained mode (the "partitioned-wfd" strategy): the
// three-argument constructor pins every job to one processor (its
// process's assigned bin). The simulation then keeps one rank-keyed ready
// heap per processor and starts, at every instant, the globally
// lowest-rank job whose own processor is free — bit-identical to the
// reference partitioned_list_schedule's O(n²) rescan. Checkpoints are a
// global-mode feature; partition mode supports evaluate()/materialize().
//
// Determinism contract: for any valid SP order, evaluate()/materialize()
// produce the bit-identical score and placements the reference
// list_schedule + check_feasibility pipeline produces — same decision
// instants, same rank tie-breaks, same smallest-index processor choice —
// on either timebase (regression-proved by the randomized differential
// suite in tests/evaluator_test.cpp). Search winners are therefore
// identical with the kernel on or off, cold and warm, 1-process and
// sharded.
//
// Thread safety: an Evaluator is mutable scratch — one per search worker,
// never shared concurrently. Construction is read-only on the task graph.
#pragma once

#include <cstdint>
#include <utility>
#include <vector>

#include "sched/static_schedule.hpp"
#include "taskgraph/compiled_graph.hpp"
#include "taskgraph/task_graph.hpp"

namespace fppn {
namespace sched {

/// The local-search objective of one candidate evaluation, lexicographic:
/// fewer deadline violations first, then smaller makespan.
struct EvalScore {
  std::size_t deadline_violations = 0;
  Time makespan;

  [[nodiscard]] bool better_than(const EvalScore& other) const {
    if (deadline_violations != other.deadline_violations) {
      return deadline_violations < other.deadline_violations;
    }
    return makespan < other.makespan;
  }
};

/// How a move perturbed the baseline order: kSwap exchanged the jobs at
/// positions lo and hi; kRotate moved the job at position hi to position
/// lo, shifting [lo, hi) one position later (std::rotate(b+lo, b+hi,
/// b+hi+1)). evaluate_move verifies the claim against the stored baseline
/// order and uses it to bound which jobs' relative priorities changed:
/// the two swapped jobs, or just the pulled job — a rotation preserves
/// the shifted window's internal and external relative order.
enum class MoveKind : std::uint8_t { kSwap, kRotate };

/// Counters for the incremental layer; informational only (never part of
/// any determinism contract).
struct EvalStats {
  std::uint64_t full_evals = 0;         ///< from-scratch runs (incl. baselines)
  std::uint64_t incremental_evals = 0;  ///< evaluate_move calls
  std::uint64_t resumed_evals = 0;      ///< ... that restarted from a checkpoint
  std::uint64_t spliced_evals = 0;      ///< ... that early-exited into the suffix
  std::uint64_t starts_simulated = 0;   ///< job starts actually replayed
};

namespace eval_detail {

/// One baseline snapshot: the complete simulation state immediately after
/// the `started`-th job start (successor propagation included). At that
/// instant every heap key is strictly greater than `t` except free
/// processors, so resuming at the top of the event loop is exact.
template <class T>
struct EvalCheckpoint {
  std::size_t started = 0;
  std::size_t src_ptr = 0;
  std::size_t violations = 0;
  T t{};
  T last_finish{};
  // Memoized suffix aggregates (filled after the baseline run completes).
  std::size_t suffix_violations = 0;
  T suffix_max_finish{};
  // Snapshots (job ids / raw heap arrays; ready jobs stored rank-free so
  // they can be re-keyed under the perturbed order).
  std::vector<std::uint8_t> started_flags;
  std::vector<T> ready_at;
  std::vector<std::uint32_t> remaining;
  std::vector<std::uint32_t> ready_jobs;
  std::vector<std::pair<T, std::uint32_t>> busy;
  std::vector<std::pair<T, std::uint32_t>> pending;
  std::vector<std::uint32_t> free_procs;
};

/// std::type_identity backport: keeps the checkpoint-store parameter of
/// Evaluator::run out of template deduction so call sites can pass
/// nullptr.
template <class T>
struct type_identity {
  using type = T;
};

/// The checkpoint store for one timebase. `ck` slots are preallocated and
/// reused across baselines — allocation-free in steady state.
template <class T>
struct BaselineStore {
  bool valid = false;
  std::size_t stride = 0;
  std::size_t count = 0;
  std::size_t total_violations = 0;
  T total_makespan{};
  std::vector<EvalCheckpoint<T>> ck;
  std::vector<T> finish_log;  ///< finish time of the k-th started job
  // Per-start decision logs, used to compute the exact first pop a move
  // can influence (the resume bound for evaluate_move).
  std::vector<std::uint32_t> chosen_rank;     ///< rank started at pop k
  std::vector<std::uint32_t> second_rank;     ///< next-best ready rank at pop k
  std::vector<std::uint32_t> entry_idx;       ///< pop count when job became ready
  std::vector<std::uint32_t> start_idx;       ///< pop index that started job
};

}  // namespace eval_detail

class Evaluator {
 public:
  /// Compiles `tg` and sizes all scratch. Throws std::invalid_argument
  /// when processors < 1 or the graph is cyclic (the same conditions the
  /// reference list_schedule rejects, checked once here instead of per
  /// evaluation).
  Evaluator(const TaskGraph& tg, std::int64_t processors);

  /// Partition-constrained evaluator: job i is pinned to
  /// `assignment[tg.job(i).process]`. Throws std::invalid_argument under
  /// the same conditions as the reference partitioned_list_schedule (a
  /// job whose process has no in-range assignment), with the same message
  /// — checked eagerly here instead of at schedule time.
  Evaluator(const TaskGraph& tg, std::int64_t processors,
            const std::vector<ProcessorId>& assignment);

  /// Scores one SP order without building a schedule. Allocation-free
  /// after the first call. Throws std::invalid_argument when `priority`
  /// is not a permutation of all jobs.
  [[nodiscard]] EvalScore evaluate(const std::vector<JobId>& priority);

  /// Runs the same simulation and materializes the full StaticSchedule —
  /// bit-identical to list_schedule(tg, priority, processors) (or, in
  /// partition mode, partitioned_list_schedule). For incumbents only;
  /// this path allocates the schedule it returns.
  [[nodiscard]] StaticSchedule materialize(const std::vector<JobId>& priority);

  /// Full evaluation that also (re)builds the checkpoint store, making
  /// `priority` the incremental baseline. Call on the incumbent order at
  /// the start of a climb and after every accepted move. Score is
  /// bit-identical to evaluate(). Global mode only (throws
  /// std::logic_error in partition mode).
  [[nodiscard]] EvalScore evaluate_baseline(const std::vector<JobId>& priority);

  /// Scores a perturbation of the current baseline order. `priority` must
  /// be exactly the claimed perturbation of the baseline (see MoveKind);
  /// this is verified and a mismatch throws std::invalid_argument.
  /// Resumes from the latest compatible checkpoint and splices the
  /// memoized suffix on confluence; the result is bit-identical to
  /// evaluate(priority). Falls back to a full run (still exact) when no
  /// baseline is set or no checkpoint is compatible. Does not modify the
  /// baseline.
  [[nodiscard]] EvalScore evaluate_move(const std::vector<JobId>& priority,
                                        std::size_t lo, std::size_t hi,
                                        MoveKind kind);

  /// Drops the incremental baseline (checkpoints are retained as
  /// capacity, not content).
  void invalidate_baseline();

  /// Checkpoint stride in job starts; 0 restores the default (~√n).
  /// Changing the stride invalidates the baseline.
  void set_checkpoint_stride(std::size_t stride);
  [[nodiscard]] std::size_t checkpoint_stride() const noexcept { return stride_; }

  [[nodiscard]] const EvalStats& stats() const noexcept { return stats_; }

  /// True when the int64 tick fast path is active; false means the exact
  /// Rational fallback (results are bit-identical either way).
  [[nodiscard]] bool uses_ticks() const noexcept { return cg_.has_ticks(); }

  /// True for the partition-constrained constructor.
  [[nodiscard]] bool partition_mode() const noexcept { return partition_mode_; }

  [[nodiscard]] const CompiledTaskGraph& compiled() const noexcept { return cg_; }
  [[nodiscard]] std::int64_t processor_count() const noexcept { return processors_; }

 private:
  void init_scratch();
  void reserve_checkpoints();
  void load_rank(const std::vector<JobId>& priority);
  // Verifies that `priority` is exactly the claimed perturbation of the
  // stored baseline order (which, the baseline being a validated
  // permutation, also proves `priority` is one) and loads rank_ in the
  // same pass.
  void load_rank_for_move(const std::vector<JobId>& priority, std::size_t lo,
                          std::size_t hi, MoveKind kind);

  template <class T>
  void finalize_baseline(eval_detail::BaselineStore<T>& base, std::size_t violations,
                         const T& makespan);

  // Timebase-keyed scratch selection for the confluence compare.
  std::vector<std::pair<std::int64_t, std::uint32_t>>& pair_scratch(std::int64_t) {
    return cmp_pairs_tick_;
  }
  std::vector<std::pair<Time, std::uint32_t>>& pair_scratch(const Time&) {
    return cmp_pairs_time_;
  }

  template <class T, class W>
  std::size_t run(const std::vector<T>& arrival, const std::vector<T>& deadline,
                  const std::vector<W>& wcet, std::vector<T>& ready_at,
                  std::vector<std::pair<T, std::uint32_t>>& busy,
                  std::vector<std::pair<T, std::uint32_t>>& pending,
                  std::vector<T>& start, T& makespan, bool record,
                  typename eval_detail::type_identity<eval_detail::BaselineStore<T>>::type* capture);

  template <class T, class W>
  std::size_t run_partitioned(const std::vector<T>& arrival,
                              const std::vector<T>& deadline,
                              const std::vector<W>& wcet, std::vector<T>& ready_at,
                              std::vector<std::pair<T, std::uint32_t>>& busy,
                              std::vector<std::pair<T, std::uint32_t>>& pending,
                              std::vector<T>& start, T& makespan, bool record);

  template <class T, class W>
  EvalScore run_move(const std::vector<T>& arrival, const std::vector<T>& deadline,
                     const std::vector<W>& wcet, std::vector<T>& ready_at,
                     std::vector<std::pair<T, std::uint32_t>>& busy,
                     std::vector<std::pair<T, std::uint32_t>>& pending,
                     const eval_detail::BaselineStore<T>& base, std::size_t lo,
                     std::size_t hi, MoveKind kind);

  template <class T>
  EvalScore finish_score(std::size_t violations, const T& makespan) const;

  CompiledTaskGraph cg_;
  std::int64_t processors_ = 1;
  bool partition_mode_ = false;
  std::size_t stride_ = 1;
  EvalStats stats_;

  // Scratch, reused across evaluations.
  std::vector<std::uint32_t> rank_;       ///< rank_[job] = SP position
  std::vector<std::uint32_t> base_order_; ///< baseline order (move verification)
  std::vector<std::uint8_t> seen_;        ///< permutation validation
  std::vector<std::uint32_t> remaining_;  ///< unfinished predecessor counts
  std::vector<std::uint8_t> started_;     ///< started flags (confluence check)
  std::vector<std::uint64_t> ready_heap_; ///< (rank << 32 | job) min-heap
  std::vector<std::uint32_t> free_procs_; ///< free processor-index min-heap
  std::vector<std::uint32_t> placed_proc_;
  std::vector<std::uint32_t> cmp_a_, cmp_b_;  ///< confluence-compare scratch
  std::vector<std::pair<std::int64_t, std::uint32_t>> cmp_pairs_tick_;
  std::vector<std::pair<Time, std::uint32_t>> cmp_pairs_time_;
  // Partition-mode scratch.
  std::vector<std::uint32_t> job_proc_;       ///< job -> pinned processor
  std::vector<std::vector<std::uint64_t>> proc_ready_;  ///< per-proc ready heaps
  std::vector<std::uint8_t> proc_free_flag_;
  // Tick timebase scratch.
  std::vector<std::int64_t> ready_tick_;
  std::vector<std::pair<std::int64_t, std::uint32_t>> busy_tick_;
  std::vector<std::pair<std::int64_t, std::uint32_t>> pending_tick_;
  std::vector<std::int64_t> start_tick_;
  eval_detail::BaselineStore<std::int64_t> base_tick_;
  // Rational fallback scratch.
  std::vector<Time> ready_time_;
  std::vector<std::pair<Time, std::uint32_t>> busy_time_;
  std::vector<std::pair<Time, std::uint32_t>> pending_time_;
  std::vector<Time> start_time_;
  eval_detail::BaselineStore<Time> base_time_;
};

}  // namespace sched
}  // namespace fppn
