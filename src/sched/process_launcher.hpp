// Process-based ShardLauncher: fork/exec one worker process per shard,
// concurrently, and wait for all of them — the launcher behind
// `fppn_tool schedule --shards N` (which spawns `fppn_tool search-worker`
// processes of itself), extracted so the wait/collect logic is testable
// without going through the tool binary.
//
// Failure reporting: the launcher waits for EVERY worker before deciding
// the outcome, retries each failed shard ONCE (a fresh fork/exec of the
// same deterministic plan slice — workers recompute the plan from the
// same inputs, so a retry can never evaluate different candidates; this
// absorbs transient failures like an OOM kill or fork pressure), and the
// error it throws names EVERY shard that failed twice (exit status or
// killing signal), not just the last one — with dozens of shards,
// "worker 3 failed" hiding "workers 5, 7 and 9 also failed" turns one
// debugging session into four. A fork failure stops and reaps the
// already-spawned workers before throwing, so no orphan races the shard
// directory cleanup.
//
// POSIX-only (fork/execvp/waitpid), like the tool it serves.
#pragma once

#include <functional>
#include <string>
#include <vector>

#include "sched/sharded_search.hpp"

namespace fppn {
namespace sched {

/// Builds the argv of one shard's worker process (argv[0] = executable,
/// resolved via PATH when not absolute). Must return a non-empty vector.
using ShardCommandBuilder = std::function<std::vector<std::string>(int shard_index)>;

/// ShardLauncher that runs `command_for_shard(s)` for every shard of the
/// plan as a separate process and waits for all of them, retrying each
/// failed shard once before giving up on it. Throws std::runtime_error
/// listing every shard whose worker did not exit 0 on either attempt
/// (";"-joined, one clause per failure), or whose wait failed, after all
/// workers have been reaped. Thread-compatible: each returned launcher is
/// used by one orchestrator at a time.
[[nodiscard]] ShardLauncher process_shard_launcher(ShardCommandBuilder command_for_shard);

}  // namespace sched
}  // namespace fppn
