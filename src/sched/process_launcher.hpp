// Process-based ShardLauncher: fork/exec one worker process per shard,
// concurrently, and wait for all of them — the launcher behind
// `fppn_tool schedule --shards N` (which spawns `fppn_tool search-worker`
// processes of itself), extracted so the wait/collect logic is testable
// without going through the tool binary.
//
// Failure reporting and failover: the launcher waits for EVERY worker
// before deciding the outcome, then re-runs each failed shard — a fresh
// fork/exec of the same deterministic plan slice (workers recompute the
// plan from the same inputs, so a retry can never evaluate different
// candidates and the merged winner stays bit-identical) — up to
// LaunchPolicy::max_attempts total attempts with bounded exponential
// backoff between them. This absorbs transient failures like an OOM
// kill, fork pressure, or an injected worker death; the error it throws
// names EVERY shard that exhausted its attempts (exit status or killing
// signal), not just the last one — with dozens of shards, "worker 3
// failed" hiding "workers 5, 7 and 9 also failed" turns one debugging
// session into four. A first-wave fork failure stops and reaps the
// already-spawned workers before throwing, so no orphan races the shard
// directory cleanup.
//
// POSIX-only (fork/execvp/waitpid), like the tool it serves. waitpid is
// EINTR-retried: a signal delivered to the orchestrator mid-wait must
// not count a healthy worker as failed.
#pragma once

#include <functional>
#include <string>
#include <vector>

#include "sched/sharded_search.hpp"

namespace fppn {
namespace sched {

/// Builds the argv of one shard's worker process (argv[0] = executable,
/// resolved via PATH when not absolute). Must return a non-empty vector.
using ShardCommandBuilder = std::function<std::vector<std::string>(int shard_index)>;

/// Failover knobs for process_shard_launcher. The defaults reproduce the
/// historical behavior: one concurrent first wave plus one sequential
/// retry per failed shard.
struct LaunchPolicy {
  /// Total attempts per shard (first wave included); the CLI's
  /// --shard-retries R maps to max_attempts = R + 1. Values < 1 mean 1.
  int max_attempts = 2;
  /// Sleep before retry attempt k (k = 2, 3, ...):
  /// min(backoff_initial_ms << (k - 2), backoff_max_ms). 0 = no backoff.
  int backoff_initial_ms = 10;
  int backoff_max_ms = 1000;
  /// Observability hook, called before each retry spawn with the failure
  /// clause of the previous attempt. Runs on the orchestrator thread.
  std::function<void(int shard, int attempt, const std::string& failure)> on_retry;
};

/// ShardLauncher that runs `command_for_shard(s)` for every shard of the
/// plan as a separate process and waits for all of them, re-running each
/// failed shard per `policy` before giving up on it. Throws
/// std::runtime_error listing every shard whose worker did not exit 0 on
/// any attempt (";"-joined, one clause per failure — the last attempt's),
/// or whose wait failed, after all workers have been reaped.
/// Thread-compatible: each returned launcher is used by one orchestrator
/// at a time.
[[nodiscard]] ShardLauncher process_shard_launcher(ShardCommandBuilder command_for_shard,
                                                   LaunchPolicy policy = {});

}  // namespace sched
}  // namespace fppn
