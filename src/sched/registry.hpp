// Name-keyed factory registry of scheduling strategies.
//
// The process-wide registry (StrategyRegistry::global()) comes pre-loaded
// with the built-in strategies: the four SP heuristics of §III-B and the
// local-search SP optimizer. New strategies plug in without touching any
// engine code:
//
//   StrategyRegistry::global().add("my-strategy", [] {
//     return std::make_unique<MyStrategy>();
//   });
//
// create() returns a fresh instance per call, so concurrent callers (the
// parallel search) never share strategy state.
//
// Thread safety: the registry itself is not internally synchronized —
// add() during concurrent create()/names() is a data race. Register
// strategies at startup (global() pre-loads the built-ins on first use,
// thread-safely via static-local initialization); afterwards the
// read-only operations (contains/names/create) are safe from any number
// of threads. Throw behavior is documented on NameRegistry
// (rt/registry.hpp): add() throws std::invalid_argument on empty or
// duplicate names, create() throws UnknownStrategyError listing every
// registered name.
#pragma once

#include "rt/registry.hpp"
#include "sched/strategy.hpp"

namespace fppn {
namespace sched {

/// Thrown by create() for a name with no registered factory. The message
/// lists every available strategy.
class UnknownStrategyError : public std::invalid_argument {
 public:
  using std::invalid_argument::invalid_argument;
};

class StrategyRegistry
    : public detail::NameRegistry<SchedulerStrategy, UnknownStrategyError> {
 public:
  StrategyRegistry() : NameRegistry("strategy") {}

  /// The process-wide registry, pre-loaded with the built-in strategies.
  /// First call initializes it thread-safely; the instance lives for the
  /// process lifetime.
  [[nodiscard]] static StrategyRegistry& global();
};

/// Registers the built-in strategies (the four SP heuristics, local
/// search, partitioned-wfd, cached-warm-start) into any registry;
/// global() calls this once.
/// Exposed for tests that want a private registry with the same contents.
/// Throws std::invalid_argument if any of the names is already taken.
void register_builtin_strategies(StrategyRegistry& registry);

}  // namespace sched
}  // namespace fppn
