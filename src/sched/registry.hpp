// Name-keyed factory registry of scheduling strategies.
//
// The process-wide registry (StrategyRegistry::global()) comes pre-loaded
// with the built-in strategies: the four SP heuristics of §III-B and the
// local-search SP optimizer. New strategies plug in without touching any
// engine code:
//
//   StrategyRegistry::global().add("my-strategy", [] {
//     return std::make_unique<MyStrategy>();
//   });
//
// create() returns a fresh instance per call, so concurrent callers (the
// parallel search) never share strategy state.
#pragma once

#include "rt/registry.hpp"
#include "sched/strategy.hpp"

namespace fppn {
namespace sched {

/// Thrown by create() for a name with no registered factory. The message
/// lists every available strategy.
class UnknownStrategyError : public std::invalid_argument {
 public:
  using std::invalid_argument::invalid_argument;
};

class StrategyRegistry
    : public detail::NameRegistry<SchedulerStrategy, UnknownStrategyError> {
 public:
  StrategyRegistry() : NameRegistry("strategy") {}

  /// The process-wide registry, pre-loaded with the built-in strategies.
  [[nodiscard]] static StrategyRegistry& global();
};

/// Registers the built-in strategies (heuristics + local search) into any
/// registry; global() calls this once. Exposed for tests that want a
/// private registry with the same contents.
void register_builtin_strategies(StrategyRegistry& registry);

}  // namespace sched
}  // namespace fppn
