// Schedulability search helpers built on the list scheduler: find a
// feasible schedule with the best heuristic, and the minimum processor
// count that admits one (the experiment loop of §V).
#pragma once

#include <optional>

#include "sched/list_scheduler.hpp"
#include "taskgraph/analysis.hpp"

namespace fppn {

struct ScheduleAttempt {
  StaticSchedule schedule;
  PriorityHeuristic heuristic = PriorityHeuristic::kAlapEdf;
  bool feasible = false;
  Time makespan;
};

/// Tries every heuristic on M processors; returns the first feasible
/// schedule (heuristics in all_heuristics() order), else the attempt with
/// the fewest deadline violations. Deterministic and safe to call
/// concurrently; throws like list_schedule (cyclic graph, processors < 1).
[[nodiscard]] ScheduleAttempt best_schedule(const TaskGraph& tg, std::int64_t processors);

struct MinProcessorsResult {
  std::int64_t processors = 0;   ///< smallest feasible M, 0 when none <= limit
  std::int64_t lower_bound = 0;  ///< ceil(Load) from Prop. 3.1
  std::optional<ScheduleAttempt> attempt;
};

/// Finds the smallest M in [max(1, ceil(Load)), limit] with a feasible
/// list schedule under any heuristic. Deterministic and safe to call
/// concurrently; throws like best_schedule.
[[nodiscard]] MinProcessorsResult min_processors(const TaskGraph& tg,
                                                 std::int64_t limit = 64);

}  // namespace fppn
