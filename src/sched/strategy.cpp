#include "sched/strategy.hpp"

#include <algorithm>
#include <optional>

#include "sched/list_scheduler.hpp"
#include "sched/local_search.hpp"
#include "sched/partitioned.hpp"
#include "sched/priorities.hpp"
#include "sched/registry.hpp"
#include "sched/warm_start.hpp"
#include "taskgraph/fingerprint.hpp"

namespace fppn {
namespace sched {

void finalize_result(const TaskGraph& tg, StrategyResult& result) {
  result.makespan = result.schedule.makespan(tg);
  // Counts-only feasibility: identical numbers to check_feasibility,
  // none of its violation records or detail strings.
  const ViolationCounts counts = result.schedule.count_violations(tg);
  result.feasible = counts.feasible();
  result.deadline_violations = counts.deadline;
}

namespace {

/// One §III-B priority heuristic behind the strategy interface: compute
/// the SP total order, list-schedule it.
class HeuristicStrategy final : public SchedulerStrategy {
 public:
  HeuristicStrategy(PriorityHeuristic heuristic, std::string description)
      : heuristic_(heuristic), description_(std::move(description)) {}

  [[nodiscard]] std::string name() const override { return to_string(heuristic_); }
  [[nodiscard]] std::string description() const override { return description_; }

  [[nodiscard]] StrategyResult schedule(const TaskGraph& tg,
                                        const StrategyOptions& opts) const override {
    StrategyResult result;
    result.strategy = name();
    result.detail = "list schedule, SP heuristic " + name();
    result.schedule = list_schedule(tg, heuristic_, opts.processors);
    finalize_result(tg, result);
    return result;
  }

 private:
  PriorityHeuristic heuristic_;
  std::string description_;
};

/// The local-search SP optimizer behind the strategy interface. Seedable:
/// restart shuffles and move picks depend on opts.seed.
class LocalSearchStrategy final : public SchedulerStrategy {
 public:
  [[nodiscard]] std::string name() const override { return "local-search"; }
  [[nodiscard]] std::string description() const override {
    return "hill-climbing SP optimization with seeded restarts";
  }
  [[nodiscard]] bool seedable() const override { return true; }

  [[nodiscard]] StrategyResult schedule(const TaskGraph& tg,
                                        const StrategyOptions& opts) const override {
    LocalSearchOptions ls;
    ls.processors = opts.processors;
    ls.seed = opts.seed;
    ls.max_iterations = opts.max_iterations;
    ls.restarts = opts.restarts;
    ls.use_fast_evaluator = opts.use_fast_evaluator;
    ls.use_incremental = opts.use_incremental;
    ls.visited_set = opts.visited_set;
    LocalSearchResult ls_result = optimize_priority(tg, ls);

    StrategyResult result;
    result.strategy = name();
    result.detail = "local search from " + to_string(ls_result.start_heuristic) +
                    ", " + std::to_string(ls_result.iterations_used) + " iterations";
    result.schedule = std::move(ls_result.schedule);
    result.full_evals = ls_result.full_evals;
    result.incremental_evals = ls_result.incremental_evals;
    result.spliced_evals = ls_result.spliced_evals;
    result.visited_skips = ls_result.visited_skips;
    finalize_result(tg, result);
    return result;
  }
};

/// Partitioned scheduling behind the strategy interface: worst-fit-
/// decreasing process-to-processor pinning (the paper's static mapping
/// mu_i, §V) followed by partition-constrained list scheduling. Seedable,
/// with a deliberate split: the seed selects only the SP heuristic used
/// *within* the fixed partition (seed mod heuristic count), never the
/// partition itself — the WFD assignment is a pure function of the graph,
/// so every seed pins each process to the same processor ("assignment
/// stability", tested in partitioned_test.cpp).
class PartitionedStrategy final : public SchedulerStrategy {
 public:
  [[nodiscard]] std::string name() const override { return "partitioned-wfd"; }
  [[nodiscard]] std::string description() const override {
    return "worst-fit-decreasing process pinning + constrained list schedule";
  }
  [[nodiscard]] bool seedable() const override { return true; }

  [[nodiscard]] StrategyResult schedule(const TaskGraph& tg,
                                        const StrategyOptions& opts) const override {
    // Processes are identified by the jobs' ProcessId values; the
    // assignment table must cover the largest one.
    std::size_t process_count = 0;
    for (const Job& j : tg.jobs()) {
      if (!j.process.is_valid()) {
        throw std::invalid_argument("partitioned-wfd: job '" + j.name +
                                    "' has no process id");
      }
      process_count = std::max(process_count, j.process.value() + 1);
    }
    const auto& heuristics = all_heuristics();
    const PriorityHeuristic h =
        heuristics[static_cast<std::size_t>(opts.seed % heuristics.size())];

    StrategyResult result;
    result.strategy = name();
    result.detail = "partitioned WFD pinning, SP heuristic " + to_string(h);
    if (opts.use_fast_evaluator) {
      // parallel_search calls this strategy once per (seed, heuristic) on
      // the same graph; the WFD assignment and the compiled partition
      // kernel depend only on (graph, processors), so one scratch per
      // worker thread serves every seed. Kernel mode holds no TaskGraph
      // reference, making the thread-local cache safe across graphs.
      struct CachedScheduler {
        std::uint64_t fp = 0;
        std::int64_t processors = 0;
        std::optional<PartitionedScheduler> scheduler;
      };
      thread_local CachedScheduler cache;
      const std::uint64_t fp = fingerprint(tg);
      if (!cache.scheduler.has_value() || cache.fp != fp ||
          cache.processors != opts.processors) {
        cache.scheduler.emplace(tg, process_count, opts.processors);
        cache.fp = fp;
        cache.processors = opts.processors;
      }
      result.schedule = cache.scheduler->schedule_order(schedule_priority(tg, h));
    } else {
      PartitionedResult p = partition_and_schedule(tg, process_count, opts.processors,
                                                   h, /*use_kernel=*/false);
      result.schedule = std::move(p.schedule);
    }
    finalize_result(tg, result);
    return result;
  }
};

}  // namespace

void register_builtin_strategies(StrategyRegistry& registry) {
  struct Builtin {
    PriorityHeuristic heuristic;
    const char* description;
  };
  const Builtin heuristics[] = {
      {PriorityHeuristic::kAlapEdf, "EDF on ALAP completion times (the paper's default)"},
      {PriorityHeuristic::kBLevel, "longest remaining WCET path first [Kwok & Ahmad]"},
      {PriorityHeuristic::kDeadlineMonotonic,
       "smallest relative deadline first [Forget et al.]"},
      {PriorityHeuristic::kArrivalOrder, "earliest arrival first (FIFO baseline)"},
  };
  for (const Builtin& b : heuristics) {
    registry.add(to_string(b.heuristic), [h = b.heuristic, d = std::string(b.description)] {
      return std::make_unique<HeuristicStrategy>(h, d);
    });
  }
  registry.add("local-search", [] { return std::make_unique<LocalSearchStrategy>(); });
  registry.add("partitioned-wfd", [] { return std::make_unique<PartitionedStrategy>(); });
  // Note: parallel_search never enumerates "cached-warm-start" as a plan
  // candidate (its result depends on cache contents, not just (tg, opts));
  // it joins searches through the warm-start overlay instead. Registered
  // so `--strategy cached-warm-start` and user code can still name it.
  registry.add("cached-warm-start",
               [] { return std::make_unique<CachedWarmStartStrategy>(); });
}

}  // namespace sched
}  // namespace fppn
