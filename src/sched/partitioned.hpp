// Partitioned scheduling: every process is pinned to one processor and
// all its jobs execute there — the deployment style of the paper's
// runtime ("multiple process automata can be mapped to the same thread
// according to static mapping mu_i", §V). Global list scheduling may
// migrate jobs of a process between processors; partitioning trades that
// freedom for per-thread locality.
//
// The partitioner is utilization-based worst-fit-decreasing over the
// per-process demand sum(C_i)/H, followed by partition-constrained list
// scheduling (the ready rule of §III-B, with the processor fixed per job).
//
// These are the low-level entry points; the engine path is the
// "partitioned-wfd" SchedulerStrategy registered in the strategy registry
// (sched/registry.hpp), which wraps partition_and_schedule and thereby
// participates in parallel_search, the schedule cache and
// `fppn_tool --strategy`.
//
// Determinism: both functions are pure functions of their arguments — the
// WFD bin choice and all scheduling ties are broken by index, never by
// iteration order or randomness. Thread safety: no shared state; safe to
// call concurrently.
#pragma once

#include <optional>
#include <vector>

#include "sched/evaluator.hpp"
#include "sched/priorities.hpp"
#include "sched/static_schedule.hpp"

namespace fppn {

struct PartitionedResult {
  /// processor of each process (indexed by ProcessId value); invalid for
  /// processes without jobs.
  std::vector<ProcessorId> assignment;
  StaticSchedule schedule;
  bool feasible = false;
};

/// Explicit assignment: schedules `tg` with each job pinned to
/// `assignment[job.process]`. Throws std::invalid_argument when a job's
/// process has no (in-range) assignment or `priority` does not cover
/// every job; std::logic_error if the simulation stalls (cyclic graph).
[[nodiscard]] StaticSchedule partitioned_list_schedule(
    const TaskGraph& tg, const std::vector<ProcessorId>& assignment,
    const std::vector<JobId>& priority, std::int64_t processors);

/// The worst-fit-decreasing processor assignment alone (the partitioning
/// half of partition_and_schedule): per-process WCET demand, bins chosen
/// lightest-first with index tie-breaks. Pure function of its arguments —
/// in particular independent of any SP heuristic or seed, which is what
/// makes the assignment cacheable across seeds. Throws
/// std::invalid_argument when processors < 1 or a job's process id is
/// >= process_count.
[[nodiscard]] std::vector<ProcessorId> wfd_assignment(const TaskGraph& tg,
                                                      std::size_t process_count,
                                                      std::int64_t processors);

/// Utilization-based worst-fit-decreasing partitioning + constrained list
/// scheduling.
/// `process_count` sizes the assignment table (processes are identified
/// by the jobs' ProcessId values, which must be < process_count).
/// Throws std::invalid_argument when processors < 1 or a job's process id
/// is >= process_count.
/// `use_kernel` selects the evaluator's partition-constrained mode
/// (per-processor ready heaps, O((n+E) log n)) over the reference
/// partitioned_list_schedule rescan (O(n²)); schedules and feasibility
/// are bit-identical either way — the flag exists for the differential
/// suite. (Edge-case nit: on a *cyclic* graph the kernel path rejects up
/// front with std::invalid_argument where the reference stalls with
/// std::logic_error mid-simulation.)
[[nodiscard]] PartitionedResult partition_and_schedule(
    const TaskGraph& tg, std::size_t process_count, std::int64_t processors,
    PriorityHeuristic heuristic = PriorityHeuristic::kAlapEdf,
    bool use_kernel = true);

/// Reusable partitioned-scheduling scratch: computes the WFD assignment
/// and compiles the partition-constrained evaluator once, then schedules
/// any number of SP orders against them. partition_and_schedule re-derives
/// both on every call — a pure setup cost when only the heuristic varies
/// (exactly what "partitioned-wfd" does across parallel_search seeds).
/// Kernel mode retains no reference to the TaskGraph after construction,
/// so an instance may outlive it (the strategy keeps one per thread,
/// keyed by graph fingerprint); reference mode (use_kernel = false) keeps
/// a pointer and must not outlive the graph.
class PartitionedScheduler {
 public:
  /// Throws like partition_and_schedule (same conditions, same messages,
  /// plus the eager no-valid-assignment check of the partition evaluator).
  PartitionedScheduler(const TaskGraph& tg, std::size_t process_count,
                       std::int64_t processors, bool use_kernel = true);

  [[nodiscard]] const std::vector<ProcessorId>& assignment() const noexcept {
    return assignment_;
  }
  [[nodiscard]] std::int64_t processor_count() const noexcept { return processors_; }

  /// Schedule one SP order under the fixed assignment — bit-identical to
  /// partitioned_list_schedule(tg, assignment(), priority, processors).
  [[nodiscard]] StaticSchedule schedule_order(const std::vector<JobId>& priority);

  /// Score one SP order without materializing (kernel mode only; throws
  /// std::logic_error in reference mode).
  [[nodiscard]] sched::EvalScore evaluate_order(const std::vector<JobId>& priority);

 private:
  std::int64_t processors_ = 1;
  const TaskGraph* tg_ = nullptr;  ///< reference mode only
  std::vector<ProcessorId> assignment_;
  std::optional<sched::Evaluator> kernel_;
};

}  // namespace fppn
