// Partitioned scheduling: every process is pinned to one processor and
// all its jobs execute there — the deployment style of the paper's
// runtime ("multiple process automata can be mapped to the same thread
// according to static mapping mu_i", §V). Global list scheduling may
// migrate jobs of a process between processors; partitioning trades that
// freedom for per-thread locality.
//
// The partitioner is utilization-based worst-fit-decreasing over the
// per-process demand sum(C_i)/H, followed by partition-constrained list
// scheduling (the ready rule of §III-B, with the processor fixed per job).
//
// These are the low-level entry points; the engine path is the
// "partitioned-wfd" SchedulerStrategy registered in the strategy registry
// (sched/registry.hpp), which wraps partition_and_schedule and thereby
// participates in parallel_search, the schedule cache and
// `fppn_tool --strategy`.
//
// Determinism: both functions are pure functions of their arguments — the
// WFD bin choice and all scheduling ties are broken by index, never by
// iteration order or randomness. Thread safety: no shared state; safe to
// call concurrently.
#pragma once

#include <optional>
#include <vector>

#include "sched/priorities.hpp"
#include "sched/static_schedule.hpp"

namespace fppn {

struct PartitionedResult {
  /// processor of each process (indexed by ProcessId value); invalid for
  /// processes without jobs.
  std::vector<ProcessorId> assignment;
  StaticSchedule schedule;
  bool feasible = false;
};

/// Explicit assignment: schedules `tg` with each job pinned to
/// `assignment[job.process]`. Throws std::invalid_argument when a job's
/// process has no (in-range) assignment or `priority` does not cover
/// every job; std::logic_error if the simulation stalls (cyclic graph).
[[nodiscard]] StaticSchedule partitioned_list_schedule(
    const TaskGraph& tg, const std::vector<ProcessorId>& assignment,
    const std::vector<JobId>& priority, std::int64_t processors);

/// Utilization-based worst-fit-decreasing partitioning + constrained list
/// scheduling.
/// `process_count` sizes the assignment table (processes are identified
/// by the jobs' ProcessId values, which must be < process_count).
/// Throws std::invalid_argument when processors < 1 or a job's process id
/// is >= process_count.
[[nodiscard]] PartitionedResult partition_and_schedule(
    const TaskGraph& tg, std::size_t process_count, std::int64_t processors,
    PriorityHeuristic heuristic = PriorityHeuristic::kAlapEdf);

}  // namespace fppn
