// Non-preemptive list scheduling on M identical processors (§III-B).
//
// "For a given SP, list scheduling consists of a simple simulation of the
// fixed-priority policy using the updated definition of ready jobs": a job
// is ready at time t when it has arrived (A_i <= t) and all its
// predecessors have completed. At every decision instant the highest-SP
// ready job is started on a free processor. The result is a fully static
// schedule (mu_i, s_i) to be checked against Def. 3.2.
#pragma once

#include <vector>

#include "sched/priorities.hpp"
#include "sched/static_schedule.hpp"
#include "taskgraph/task_graph.hpp"

namespace fppn {

/// Schedules `tg` on `processors` identical processors with the explicit
/// SP total order `priority` (highest first; must contain every job
/// exactly once). Always produces a complete schedule; feasibility (the
/// deadline constraint) must be checked afterwards.
///
/// Deterministic: a pure function of (tg, priority, processors) — ties at
/// a decision instant go to the higher-SP job, free processors are taken
/// in index order. Thread safety: no shared state; safe to call
/// concurrently. Throws std::invalid_argument when `priority` is not a
/// permutation of all jobs, `tg` is cyclic, or processors < 1.
[[nodiscard]] StaticSchedule list_schedule(const TaskGraph& tg,
                                           const std::vector<JobId>& priority,
                                           std::int64_t processors);

/// Convenience: computes the SP order from a heuristic first. Same
/// determinism/thread-safety/throw behavior as the explicit-order
/// overload.
[[nodiscard]] StaticSchedule list_schedule(const TaskGraph& tg,
                                           PriorityHeuristic heuristic,
                                           std::int64_t processors);

}  // namespace fppn
