#include "sched/warm_start.hpp"

#include <algorithm>
#include <stdexcept>
#include <tuple>

#include "sched/local_search.hpp"

namespace fppn {
namespace sched {

std::vector<JobId> priority_order_from_schedule(const TaskGraph& tg,
                                                const StaticSchedule& schedule) {
  if (schedule.job_count() != tg.job_count()) {
    throw std::invalid_argument(
        "priority_order_from_schedule: schedule covers " +
        std::to_string(schedule.job_count()) + " job(s), graph has " +
        std::to_string(tg.job_count()));
  }
  std::vector<JobId> placed;
  std::vector<JobId> unplaced;
  for (std::size_t i = 0; i < tg.job_count(); ++i) {
    const JobId id(i);
    (schedule.is_placed(id) ? placed : unplaced).push_back(id);
  }
  std::sort(placed.begin(), placed.end(), [&](const JobId& a, const JobId& b) {
    const Placement& pa = schedule.placement(a);
    const Placement& pb = schedule.placement(b);
    return std::make_tuple(pa.start, pa.processor.value(), a.value()) <
           std::make_tuple(pb.start, pb.processor.value(), b.value());
  });
  placed.insert(placed.end(), unplaced.begin(), unplaced.end());
  return placed;
}

std::vector<std::vector<JobId>> collect_warm_starts(ScheduleCache& cache,
                                                    std::uint64_t graph_fingerprint,
                                                    const TaskGraph& tg) {
  std::vector<std::vector<JobId>> starts;
  for (const StaticSchedule& s : cache.feasible_schedules(graph_fingerprint, tg)) {
    starts.push_back(priority_order_from_schedule(tg, s));
  }
  return starts;
}

StrategyResult CachedWarmStartStrategy::schedule(const TaskGraph& tg,
                                                 const StrategyOptions& opts) const {
  LocalSearchOptions ls;
  ls.processors = opts.processors;
  ls.seed = opts.seed;
  ls.max_iterations = opts.max_iterations;
  ls.restarts = opts.restarts;
  ls.use_fast_evaluator = opts.use_fast_evaluator;
  ls.start_priorities = opts.warm_starts;
  LocalSearchResult ls_result = optimize_priority(tg, ls);

  StrategyResult result;
  result.strategy = name();
  result.detail =
      "warm-started local search from " +
      (ls_result.start_priority_index >= 0
           ? "cached schedule " + std::to_string(ls_result.start_priority_index)
           : to_string(ls_result.start_heuristic)) +
      " (" + std::to_string(opts.warm_starts.size()) + " warm start(s)), " +
      std::to_string(ls_result.iterations_used) + " iterations";
  result.schedule = std::move(ls_result.schedule);
  finalize_result(tg, result);
  return result;
}

}  // namespace sched
}  // namespace fppn
