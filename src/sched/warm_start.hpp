// Warm-start reuse: cached feasible schedules fed back into the
// local-search SP optimizer as start points, so every search over a graph
// the cache has seen before resumes from the best schedule known so far
// instead of rediscovering it (the cache as a learning substrate, not
// just a memo table).
//
// Pieces:
//
//   priority_order_from_schedule   recovers the SP total order a schedule
//                                  encodes (start time, then processor,
//                                  then job index) — the bridge from a
//                                  cached StaticSchedule back into
//                                  optimize_priority's search space
//   CachedWarmStartStrategy        "cached-warm-start" in the registry:
//                                  local search seeded with the warm
//                                  starts in StrategyOptions::warm_starts
//                                  (without them it degenerates to plain
//                                  "local-search")
//   collect_warm_starts            pulls every cached feasible schedule
//                                  for a fingerprint out of a
//                                  ScheduleCache as priority orders
//
// Determinism: all three are deterministic in their inputs; what varies
// is the cache *contents*, so a warm-started result may legitimately
// differ from a cold one — always by being better, never worse (the
// search starts from the best of heuristics ∪ warm starts and only
// accepts improvements). parallel_search's overlay keeps the winner
// contract tight: a warm-start candidate replaces the cold winner only
// when strictly better on (feasibility, violations, makespan), so a warm
// rerun either matches the cold winner bit-identically or beats it —
// never a different-but-equal winner. Warm-start results are never
// cached (their key could not capture the cache state they depend on).
//
// Thread safety: everything here is stateless or reads through
// ScheduleCache's internal lock; safe to call concurrently.
#pragma once

#include <cstdint>
#include <vector>

#include "sched/schedule_cache.hpp"
#include "sched/strategy.hpp"

namespace fppn {
namespace sched {

/// The SP total order `schedule` encodes: jobs sorted by start time, ties
/// by processor then job index; unplaced jobs go last in index order (so
/// partial schedules still yield a valid permutation). Deterministic.
/// Throws std::invalid_argument when the schedule cannot index tg's jobs.
[[nodiscard]] std::vector<JobId> priority_order_from_schedule(
    const TaskGraph& tg, const StaticSchedule& schedule);

/// Every cached feasible schedule for `graph_fingerprint`
/// (ScheduleCache::feasible_schedules) as a priority order, in the
/// cache's deterministic entry order. The warm-start feed of
/// parallel_search.
[[nodiscard]] std::vector<std::vector<JobId>> collect_warm_starts(
    ScheduleCache& cache, std::uint64_t graph_fingerprint, const TaskGraph& tg);

/// "cached-warm-start": optimize_priority seeded with
/// StrategyOptions::warm_starts on top of the plain heuristics. With no
/// warm starts (e.g. `fppn_tool --strategy cached-warm-start` outside a
/// warm-start overlay) it behaves exactly like "local-search" for the
/// same options. Seedable; never worse than the best plain heuristic,
/// and never worse than any of its start points.
class CachedWarmStartStrategy final : public SchedulerStrategy {
 public:
  [[nodiscard]] std::string name() const override { return "cached-warm-start"; }
  [[nodiscard]] std::string description() const override {
    return "local search warm-started from cached feasible schedules";
  }
  [[nodiscard]] bool seedable() const override { return true; }

  [[nodiscard]] StrategyResult schedule(const TaskGraph& tg,
                                        const StrategyOptions& opts) const override;
};

}  // namespace sched
}  // namespace fppn
