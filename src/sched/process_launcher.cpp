#include "sched/process_launcher.hpp"

#include <signal.h>
#include <sys/wait.h>
#include <unistd.h>

#include <cstdio>
#include <optional>
#include <stdexcept>

namespace fppn {
namespace sched {

namespace {

/// Forks and execs one shard worker. Returns the child pid, or -1 when
/// the fork itself failed (the caller decides how to recover).
pid_t spawn_worker(const std::vector<std::string>& argv_strings) {
  std::vector<char*> argv;
  argv.reserve(argv_strings.size() + 1);
  for (const std::string& a : argv_strings) {
    argv.push_back(const_cast<char*>(a.c_str()));
  }
  argv.push_back(nullptr);
  const pid_t pid = ::fork();
  if (pid == 0) {
    ::execvp(argv[0], argv.data());
    std::perror("fppn: exec shard worker");
    std::_Exit(127);
  }
  return pid;
}

/// Reaps `pid` and returns the failure clause for shard `s`, or nullopt
/// on a clean exit 0.
std::optional<std::string> reap_worker(pid_t pid, int s) {
  int status = 0;
  if (::waitpid(pid, &status, 0) < 0) {
    return "cannot wait for shard worker " + std::to_string(s);
  }
  if (!WIFEXITED(status) || WEXITSTATUS(status) != 0) {
    return "shard worker " + std::to_string(s) + " failed (" +
           (WIFEXITED(status) ? "exit status " + std::to_string(WEXITSTATUS(status))
                              : "killed by signal " + std::to_string(WTERMSIG(status))) +
           ")";
  }
  return std::nullopt;
}

}  // namespace

ShardLauncher process_shard_launcher(ShardCommandBuilder command_for_shard) {
  return [command_for_shard](const ShardPlan& plan) {
    std::vector<pid_t> pids;
    pids.reserve(static_cast<std::size_t>(plan.shards));
    for (int s = 0; s < plan.shards; ++s) {
      const std::vector<std::string> argv_strings = command_for_shard(s);
      if (argv_strings.empty()) {
        throw std::runtime_error("process_shard_launcher: empty command for shard " +
                                 std::to_string(s));
      }
      const pid_t pid = spawn_worker(argv_strings);
      if (pid < 0) {
        // Don't leave already-spawned workers orphaned and racing the
        // shard-dir cleanup: stop and reap them before aborting.
        for (const pid_t spawned : pids) {
          ::kill(spawned, SIGTERM);
        }
        for (const pid_t spawned : pids) {
          int status = 0;
          ::waitpid(spawned, &status, 0);
        }
        throw std::runtime_error("cannot fork shard worker " + std::to_string(s));
      }
      pids.push_back(pid);
    }
    // Wait for EVERY worker and collect EVERY failure: reporting only the
    // last failed shard would hide the others and leave unreaped children
    // behind an early throw.
    std::vector<int> failed_shards;
    for (std::size_t s = 0; s < pids.size(); ++s) {
      if (reap_worker(pids[s], static_cast<int>(s)).has_value()) {
        failed_shards.push_back(static_cast<int>(s));
      }
    }
    // One retry per failed shard — a fresh fork/exec of the same
    // deterministic plan slice (the worker recomputes it from the same
    // inputs, so a retry can never evaluate different candidates). This
    // absorbs transient failures (OOM kill, fork pressure, a node blip in
    // a distributed --shard-dir run); a shard that fails twice is a real
    // error and goes into the aggregate report.
    std::vector<std::string> failures;
    for (const int s : failed_shards) {
      const pid_t pid = spawn_worker(command_for_shard(s));
      if (pid < 0) {
        failures.push_back("cannot fork shard worker " + std::to_string(s) +
                           " (retry)");
        continue;
      }
      if (auto failure = reap_worker(pid, s)) {
        failures.push_back(*failure);
      }
    }
    if (!failures.empty()) {
      std::string message = failures[0];
      for (std::size_t i = 1; i < failures.size(); ++i) {
        message += "; " + failures[i];
      }
      throw std::runtime_error(message);
    }
  };
}

}  // namespace sched
}  // namespace fppn
