#include "sched/process_launcher.hpp"

#include <signal.h>
#include <sys/wait.h>
#include <unistd.h>

#include <cerrno>
#include <cstdio>
#include <optional>
#include <stdexcept>

namespace fppn {
namespace sched {

namespace {

/// Forks and execs one shard worker. Returns the child pid, or -1 when
/// the fork itself failed (the caller decides how to recover).
pid_t spawn_worker(const std::vector<std::string>& argv_strings) {
  std::vector<char*> argv;
  argv.reserve(argv_strings.size() + 1);
  for (const std::string& a : argv_strings) {
    argv.push_back(const_cast<char*>(a.c_str()));
  }
  argv.push_back(nullptr);
  const pid_t pid = ::fork();
  if (pid == 0) {
    ::execvp(argv[0], argv.data());
    std::perror("fppn: exec shard worker");
    std::_Exit(127);
  }
  return pid;
}

/// Reaps `pid` and returns the failure clause for shard `s`, or nullopt
/// on a clean exit 0. EINTR is retried: a signal hitting the
/// orchestrator mid-wait is not a worker failure.
std::optional<std::string> reap_worker(pid_t pid, int s) {
  int status = 0;
  pid_t reaped;
  do {
    reaped = ::waitpid(pid, &status, 0);
  } while (reaped < 0 && errno == EINTR);
  if (reaped < 0) {
    return "cannot wait for shard worker " + std::to_string(s);
  }
  if (!WIFEXITED(status) || WEXITSTATUS(status) != 0) {
    return "shard worker " + std::to_string(s) + " failed (" +
           (WIFEXITED(status) ? "exit status " + std::to_string(WEXITSTATUS(status))
                              : "killed by signal " + std::to_string(WTERMSIG(status))) +
           ")";
  }
  return std::nullopt;
}

}  // namespace

/// Backoff before retry attempt k (k >= 2): bounded exponential growth
/// from the policy's initial value.
void backoff_before_attempt(const LaunchPolicy& policy, int attempt) {
  if (policy.backoff_initial_ms <= 0) {
    return;
  }
  long long ms = static_cast<long long>(policy.backoff_initial_ms);
  for (int k = 2; k < attempt && ms < policy.backoff_max_ms; ++k) {
    ms *= 2;
  }
  if (policy.backoff_max_ms > 0 && ms > policy.backoff_max_ms) {
    ms = policy.backoff_max_ms;
  }
  ::usleep(static_cast<useconds_t>(ms * 1000));
}

ShardLauncher process_shard_launcher(ShardCommandBuilder command_for_shard,
                                     LaunchPolicy policy) {
  if (policy.max_attempts < 1) {
    policy.max_attempts = 1;
  }
  return [command_for_shard, policy](const ShardPlan& plan) {
    std::vector<pid_t> pids;
    pids.reserve(static_cast<std::size_t>(plan.shards));
    for (int s = 0; s < plan.shards; ++s) {
      const std::vector<std::string> argv_strings = command_for_shard(s);
      if (argv_strings.empty()) {
        throw std::runtime_error("process_shard_launcher: empty command for shard " +
                                 std::to_string(s));
      }
      const pid_t pid = spawn_worker(argv_strings);
      if (pid < 0) {
        // Don't leave already-spawned workers orphaned and racing the
        // shard-dir cleanup: stop and reap them before aborting.
        for (const pid_t spawned : pids) {
          ::kill(spawned, SIGTERM);
        }
        for (const pid_t spawned : pids) {
          int status = 0;
          ::waitpid(spawned, &status, 0);
        }
        throw std::runtime_error("cannot fork shard worker " + std::to_string(s));
      }
      pids.push_back(pid);
    }
    // Wait for EVERY worker and collect EVERY failure: reporting only the
    // last failed shard would hide the others and leave unreaped children
    // behind an early throw.
    struct FailedShard {
      int shard = 0;
      std::string failure;
    };
    std::vector<FailedShard> failed_shards;
    for (std::size_t s = 0; s < pids.size(); ++s) {
      if (auto failure = reap_worker(pids[s], static_cast<int>(s))) {
        failed_shards.push_back(FailedShard{static_cast<int>(s), *failure});
      }
    }
    // Failover: re-run each failed shard up to policy.max_attempts total
    // attempts, with bounded exponential backoff between them — a fresh
    // fork/exec of the same deterministic plan slice (the worker
    // recomputes it from the same inputs, so a retry can never evaluate
    // different candidates and the merged winner stays bit-identical).
    // This absorbs transient failures (OOM kill, fork pressure, a node
    // blip in a distributed --shard-dir run); a shard that exhausts its
    // attempts is a real error and goes into the aggregate report.
    std::vector<std::string> failures;
    for (const FailedShard& first : failed_shards) {
      const int s = first.shard;
      std::string last_failure = first.failure;
      bool recovered = false;
      for (int attempt = 2; attempt <= policy.max_attempts && !recovered; ++attempt) {
        backoff_before_attempt(policy, attempt);
        if (policy.on_retry) {
          policy.on_retry(s, attempt, last_failure);
        }
        const pid_t pid = spawn_worker(command_for_shard(s));
        if (pid < 0) {
          last_failure = "cannot fork shard worker " + std::to_string(s) +
                         " (retry)";
          continue;
        }
        if (auto failure = reap_worker(pid, s)) {
          last_failure = *failure;
        } else {
          recovered = true;
        }
      }
      if (!recovered) {
        failures.push_back(last_failure);
      }
    }
    if (!failures.empty()) {
      std::string message = failures[0];
      for (std::size_t i = 1; i < failures.size(); ++i) {
        message += "; " + failures[i];
      }
      throw std::runtime_error(message);
    }
  };
}

}  // namespace sched
}  // namespace fppn
