#include "sched/process_launcher.hpp"

#include <signal.h>
#include <sys/wait.h>
#include <unistd.h>

#include <cstdio>
#include <stdexcept>

namespace fppn {
namespace sched {

ShardLauncher process_shard_launcher(ShardCommandBuilder command_for_shard) {
  return [command_for_shard](const ShardPlan& plan) {
    std::vector<pid_t> pids;
    pids.reserve(static_cast<std::size_t>(plan.shards));
    for (int s = 0; s < plan.shards; ++s) {
      const std::vector<std::string> argv_strings = command_for_shard(s);
      if (argv_strings.empty()) {
        throw std::runtime_error("process_shard_launcher: empty command for shard " +
                                 std::to_string(s));
      }
      std::vector<char*> argv;
      argv.reserve(argv_strings.size() + 1);
      for (const std::string& a : argv_strings) {
        argv.push_back(const_cast<char*>(a.c_str()));
      }
      argv.push_back(nullptr);
      const pid_t pid = ::fork();
      if (pid < 0) {
        // Don't leave already-spawned workers orphaned and racing the
        // shard-dir cleanup: stop and reap them before aborting.
        for (const pid_t spawned : pids) {
          ::kill(spawned, SIGTERM);
        }
        for (const pid_t spawned : pids) {
          int status = 0;
          ::waitpid(spawned, &status, 0);
        }
        throw std::runtime_error("cannot fork shard worker " + std::to_string(s));
      }
      if (pid == 0) {
        ::execvp(argv[0], argv.data());
        std::perror("fppn: exec shard worker");
        std::_Exit(127);
      }
      pids.push_back(pid);
    }
    // Wait for EVERY worker and collect EVERY failure: reporting only the
    // last failed shard would hide the others and leave unreaped children
    // behind an early throw.
    std::vector<std::string> failures;
    for (std::size_t s = 0; s < pids.size(); ++s) {
      int status = 0;
      if (::waitpid(pids[s], &status, 0) < 0) {
        failures.push_back("cannot wait for shard worker " + std::to_string(s));
        continue;
      }
      if (!WIFEXITED(status) || WEXITSTATUS(status) != 0) {
        failures.push_back(
            "shard worker " + std::to_string(s) + " failed (" +
            (WIFEXITED(status) ? "exit status " + std::to_string(WEXITSTATUS(status))
                               : "killed by signal " + std::to_string(WTERMSIG(status))) +
            ")");
      }
    }
    if (!failures.empty()) {
      std::string message = failures[0];
      for (std::size_t i = 1; i < failures.size(); ++i) {
        message += "; " + failures[i];
      }
      throw std::runtime_error(message);
    }
  };
}

}  // namespace sched
}  // namespace fppn
