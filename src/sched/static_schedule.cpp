#include "sched/static_schedule.hpp"

#include <algorithm>
#include <sstream>
#include <stdexcept>

namespace fppn {

std::string to_string(ViolationKind k) {
  switch (k) {
    case ViolationKind::kUnscheduled:
      return "unscheduled";
    case ViolationKind::kArrival:
      return "arrival";
    case ViolationKind::kDeadline:
      return "deadline";
    case ViolationKind::kPrecedence:
      return "precedence";
    case ViolationKind::kMutex:
      return "mutex";
  }
  return "?";
}

std::string Violation::detail(const TaskGraph& tg) const {
  switch (kind) {
    case ViolationKind::kUnscheduled:
      return {};
    case ViolationKind::kArrival:
      return "starts " + when.to_string() + " < A=" + tg.job(job).arrival.to_string();
    case ViolationKind::kDeadline:
      return "ends " + when.to_string() + " > D=" + tg.job(job).deadline.to_string();
    case ViolationKind::kPrecedence:
      return "pred ends " + when.to_string() + " > succ starts " + bound.to_string();
    case ViolationKind::kMutex:
      return "overlap on processor " + std::to_string(processor);
  }
  return {};
}

std::string FeasibilityReport::to_string(const TaskGraph& tg) const {
  if (feasible()) {
    return "feasible";
  }
  std::ostringstream os;
  os << violations.size() << " violation(s):";
  for (const Violation& v : violations) {
    os << "\n  [" << fppn::to_string(v.kind) << "] " << tg.job(v.job).name;
    if (v.other.has_value()) {
      os << " vs " << tg.job(*v.other).name;
    }
    const std::string d = v.detail(tg);
    if (!d.empty()) {
      os << ": " << d;
    }
  }
  return os.str();
}

StaticSchedule::StaticSchedule(std::size_t job_count, std::int64_t processors)
    : placements_(job_count), processors_(processors) {
  if (processors < 1) {
    throw std::invalid_argument("schedule needs at least one processor");
  }
}

void StaticSchedule::place(JobId job, ProcessorId proc, Time start) {
  if (!job.is_valid() || job.value() >= placements_.size()) {
    throw std::invalid_argument("schedule: job id out of range");
  }
  if (!proc.is_valid() || static_cast<std::int64_t>(proc.value()) >= processors_) {
    throw std::invalid_argument("schedule: processor id out of range");
  }
  placements_[job.value()] = Placement{proc, start};
}

bool StaticSchedule::is_placed(JobId job) const {
  return job.is_valid() && job.value() < placements_.size() &&
         placements_[job.value()].has_value();
}

const Placement& StaticSchedule::placement(JobId job) const {
  if (!is_placed(job)) {
    throw std::logic_error("schedule: job not placed");
  }
  return *placements_[job.value()];
}

std::vector<std::vector<JobId>> StaticSchedule::per_processor_order() const {
  std::vector<std::vector<JobId>> order(static_cast<std::size_t>(processors_));
  for (std::size_t i = 0; i < placements_.size(); ++i) {
    if (placements_[i].has_value()) {
      order[placements_[i]->processor.value()].push_back(JobId(i));
    }
  }
  for (auto& jobs : order) {
    std::sort(jobs.begin(), jobs.end(), [this](JobId a, JobId b) {
      const Time sa = placements_[a.value()]->start;
      const Time sb = placements_[b.value()]->start;
      if (sa != sb) {
        return sa < sb;
      }
      return a < b;
    });
  }
  return order;
}

Time StaticSchedule::makespan(const TaskGraph& tg) const {
  Time last;
  for (std::size_t i = 0; i < placements_.size(); ++i) {
    if (placements_[i].has_value()) {
      last = std::max(last, end(JobId(i), tg));
    }
  }
  return last;
}

std::vector<Duration> StaticSchedule::busy_time(const TaskGraph& tg) const {
  std::vector<Duration> busy(static_cast<std::size_t>(processors_));
  for (std::size_t i = 0; i < placements_.size(); ++i) {
    if (placements_[i].has_value()) {
      busy[placements_[i]->processor.value()] += tg.job(JobId(i)).wcet;
    }
  }
  return busy;
}

template <class OnViolation>
void StaticSchedule::walk_violations(const TaskGraph& tg, OnViolation&& on) const {
  const std::size_t n = tg.job_count();
  for (std::size_t i = 0; i < n; ++i) {
    const JobId id(i);
    if (!is_placed(id)) {
      on(Violation{ViolationKind::kUnscheduled, id, std::nullopt, {}, {}, -1});
      continue;
    }
    const Job& j = tg.job(id);
    const Time s = start(id);
    const Time e = end(id, tg);
    if (s < j.arrival) {
      Violation v{ViolationKind::kArrival, id, std::nullopt, {}, {}, -1};
      v.when = s;
      on(std::move(v));
    }
    if (e > j.deadline) {
      Violation v{ViolationKind::kDeadline, id, std::nullopt, {}, {}, -1};
      v.when = e;
      on(std::move(v));
    }
  }
  // Precedence: e_i <= s_j for every edge, in (from, insertion) order —
  // the same order Digraph::edges() documents, via the adjacency mirrors.
  for (std::size_t i = 0; i < n; ++i) {
    const JobId a(i);
    if (!is_placed(a)) {
      continue;  // already reported as unscheduled
    }
    const Time e = end(a, tg);
    for (const JobId b : tg.successors(a)) {
      if (!is_placed(b)) {
        continue;
      }
      if (e > start(b)) {
        Violation v{ViolationKind::kPrecedence, a, b, {}, {}, -1};
        v.when = e;
        v.bound = start(b);
        on(std::move(v));
      }
    }
  }
  // Mutual exclusion: adjacent pairs in one flat (processor, start, job)
  // sort — the identical pairs, in the identical order, that the
  // per_processor_order-based scan would visit, without its
  // per-processor vectors.
  std::vector<std::uint32_t> placed;
  placed.reserve(placements_.size());
  for (std::size_t i = 0; i < placements_.size(); ++i) {
    if (placements_[i].has_value()) {
      placed.push_back(static_cast<std::uint32_t>(i));
    }
  }
  std::sort(placed.begin(), placed.end(), [this](std::uint32_t a, std::uint32_t b) {
    const Placement& pa = *placements_[a];
    const Placement& pb = *placements_[b];
    if (pa.processor.value() != pb.processor.value()) {
      return pa.processor.value() < pb.processor.value();
    }
    if (pa.start != pb.start) {
      return pa.start < pb.start;
    }
    return a < b;
  });
  for (std::size_t i = 1; i < placed.size(); ++i) {
    const JobId prev(placed[i - 1]);
    const JobId cur(placed[i]);
    if (placement(prev).processor == placement(cur).processor &&
        end(prev, tg) > start(cur)) {
      Violation v{ViolationKind::kMutex, prev, cur, {}, {}, -1};
      v.processor = static_cast<std::int64_t>(placement(prev).processor.value());
      on(std::move(v));
    }
  }
}

FeasibilityReport StaticSchedule::check_feasibility(const TaskGraph& tg) const {
  FeasibilityReport report;
  walk_violations(tg, [&report](Violation&& v) {
    report.violations.push_back(std::move(v));
  });
  return report;
}

ViolationCounts StaticSchedule::count_violations(const TaskGraph& tg) const {
  ViolationCounts counts;
  walk_violations(tg, [&counts](Violation&& v) {
    switch (v.kind) {
      case ViolationKind::kUnscheduled: ++counts.unscheduled; break;
      case ViolationKind::kArrival: ++counts.arrival; break;
      case ViolationKind::kDeadline: ++counts.deadline; break;
      case ViolationKind::kPrecedence: ++counts.precedence; break;
      case ViolationKind::kMutex: ++counts.mutex; break;
    }
  });
  return counts;
}

std::string StaticSchedule::to_gantt(const TaskGraph& tg, std::size_t cols) const {
  const Time span = makespan(tg);
  if (span == Time() || cols < 10) {
    return "(empty schedule)\n";
  }
  std::ostringstream os;
  const double total = span.to_double_ms();
  const auto col_of = [&](const Time& t) {
    return static_cast<std::size_t>(t.to_double_ms() / total * static_cast<double>(cols));
  };
  const auto order = per_processor_order();
  for (std::size_t m = 0; m < order.size(); ++m) {
    std::string row(cols + 1, '.');
    for (const JobId id : order[m]) {
      const std::size_t c0 = col_of(start(id));
      const std::size_t c1 = std::max(c0 + 1, col_of(end(id, tg)));
      const std::string& name = tg.job(id).name;
      for (std::size_t c = c0; c < c1 && c < row.size(); ++c) {
        const std::size_t off = c - c0;
        row[c] = off < name.size() ? name[off] : '#';
      }
      if (c1 <= row.size() && c1 > c0) {
        row[c1 - 1] = '|';
      }
    }
    os << "M" << (m + 1) << " |" << row << "\n";
  }
  os << "    0";
  const std::string end_label = span.to_string() + " ms";
  os << std::string(cols > end_label.size() + 1 ? cols - end_label.size() + 1 : 1, ' ')
     << end_label << "\n";
  return os.str();
}

}  // namespace fppn
