#include "sched/static_schedule.hpp"

#include <algorithm>
#include <sstream>
#include <stdexcept>

namespace fppn {

std::string to_string(ViolationKind k) {
  switch (k) {
    case ViolationKind::kUnscheduled:
      return "unscheduled";
    case ViolationKind::kArrival:
      return "arrival";
    case ViolationKind::kDeadline:
      return "deadline";
    case ViolationKind::kPrecedence:
      return "precedence";
    case ViolationKind::kMutex:
      return "mutex";
  }
  return "?";
}

std::string FeasibilityReport::to_string(const TaskGraph& tg) const {
  if (feasible()) {
    return "feasible";
  }
  std::ostringstream os;
  os << violations.size() << " violation(s):";
  for (const Violation& v : violations) {
    os << "\n  [" << fppn::to_string(v.kind) << "] " << tg.job(v.job).name;
    if (v.other.has_value()) {
      os << " vs " << tg.job(*v.other).name;
    }
    if (!v.detail.empty()) {
      os << ": " << v.detail;
    }
  }
  return os.str();
}

StaticSchedule::StaticSchedule(std::size_t job_count, std::int64_t processors)
    : placements_(job_count), processors_(processors) {
  if (processors < 1) {
    throw std::invalid_argument("schedule needs at least one processor");
  }
}

void StaticSchedule::place(JobId job, ProcessorId proc, Time start) {
  if (!job.is_valid() || job.value() >= placements_.size()) {
    throw std::invalid_argument("schedule: job id out of range");
  }
  if (!proc.is_valid() || static_cast<std::int64_t>(proc.value()) >= processors_) {
    throw std::invalid_argument("schedule: processor id out of range");
  }
  placements_[job.value()] = Placement{proc, start};
}

bool StaticSchedule::is_placed(JobId job) const {
  return job.is_valid() && job.value() < placements_.size() &&
         placements_[job.value()].has_value();
}

const Placement& StaticSchedule::placement(JobId job) const {
  if (!is_placed(job)) {
    throw std::logic_error("schedule: job not placed");
  }
  return *placements_[job.value()];
}

std::vector<std::vector<JobId>> StaticSchedule::per_processor_order(
    const TaskGraph& tg) const {
  (void)tg;
  std::vector<std::vector<JobId>> order(static_cast<std::size_t>(processors_));
  for (std::size_t i = 0; i < placements_.size(); ++i) {
    if (placements_[i].has_value()) {
      order[placements_[i]->processor.value()].push_back(JobId(i));
    }
  }
  for (auto& jobs : order) {
    std::sort(jobs.begin(), jobs.end(), [this](JobId a, JobId b) {
      const Time sa = placements_[a.value()]->start;
      const Time sb = placements_[b.value()]->start;
      if (sa != sb) {
        return sa < sb;
      }
      return a < b;
    });
  }
  return order;
}

Time StaticSchedule::makespan(const TaskGraph& tg) const {
  Time last;
  for (std::size_t i = 0; i < placements_.size(); ++i) {
    if (placements_[i].has_value()) {
      last = std::max(last, end(JobId(i), tg));
    }
  }
  return last;
}

std::vector<Duration> StaticSchedule::busy_time(const TaskGraph& tg) const {
  std::vector<Duration> busy(static_cast<std::size_t>(processors_));
  for (std::size_t i = 0; i < placements_.size(); ++i) {
    if (placements_[i].has_value()) {
      busy[placements_[i]->processor.value()] += tg.job(JobId(i)).wcet;
    }
  }
  return busy;
}

FeasibilityReport StaticSchedule::check_feasibility(const TaskGraph& tg) const {
  FeasibilityReport report;
  const std::size_t n = tg.job_count();
  for (std::size_t i = 0; i < n; ++i) {
    const JobId id(i);
    if (!is_placed(id)) {
      report.violations.push_back(
          Violation{ViolationKind::kUnscheduled, id, std::nullopt, {}});
      continue;
    }
    const Job& j = tg.job(id);
    const Time s = start(id);
    const Time e = end(id, tg);
    if (s < j.arrival) {
      report.violations.push_back(Violation{ViolationKind::kArrival, id, std::nullopt,
                                            "starts " + s.to_string() + " < A=" +
                                                j.arrival.to_string()});
    }
    if (e > j.deadline) {
      report.violations.push_back(Violation{ViolationKind::kDeadline, id, std::nullopt,
                                            "ends " + e.to_string() + " > D=" +
                                                j.deadline.to_string()});
    }
  }
  // Precedence: e_i <= s_j for every edge.
  for (const auto& [u, v] : tg.precedence().edges()) {
    const JobId a(u.value());
    const JobId b(v.value());
    if (!is_placed(a) || !is_placed(b)) {
      continue;  // already reported as unscheduled
    }
    if (end(a, tg) > start(b)) {
      report.violations.push_back(
          Violation{ViolationKind::kPrecedence, a, b,
                    "pred ends " + end(a, tg).to_string() + " > succ starts " +
                        start(b).to_string()});
    }
  }
  // Mutual exclusion per processor.
  for (const auto& jobs : per_processor_order(tg)) {
    for (std::size_t i = 1; i < jobs.size(); ++i) {
      const JobId prev = jobs[i - 1];
      const JobId cur = jobs[i];
      if (end(prev, tg) > start(cur)) {
        report.violations.push_back(
            Violation{ViolationKind::kMutex, prev, cur,
                      "overlap on processor " +
                          std::to_string(placement(prev).processor.value())});
      }
    }
  }
  return report;
}

std::string StaticSchedule::to_gantt(const TaskGraph& tg, std::size_t cols) const {
  const Time span = makespan(tg);
  if (span == Time() || cols < 10) {
    return "(empty schedule)\n";
  }
  std::ostringstream os;
  const double total = span.to_double_ms();
  const auto col_of = [&](const Time& t) {
    return static_cast<std::size_t>(t.to_double_ms() / total * static_cast<double>(cols));
  };
  const auto order = per_processor_order(tg);
  for (std::size_t m = 0; m < order.size(); ++m) {
    std::string row(cols + 1, '.');
    for (const JobId id : order[m]) {
      const std::size_t c0 = col_of(start(id));
      const std::size_t c1 = std::max(c0 + 1, col_of(end(id, tg)));
      const std::string& name = tg.job(id).name;
      for (std::size_t c = c0; c < c1 && c < row.size(); ++c) {
        const std::size_t off = c - c0;
        row[c] = off < name.size() ? name[off] : '#';
      }
      if (c1 <= row.size() && c1 > c0) {
        row[c1 - 1] = '|';
      }
    }
    os << "M" << (m + 1) << " |" << row << "\n";
  }
  os << "    0";
  const std::string end_label = span.to_string() + " ms";
  os << std::string(cols > end_label.size() + 1 ? cols - end_label.size() + 1 : 1, ' ')
     << end_label << "\n";
  return os.str();
}

}  // namespace fppn
