// SchedulerStrategy — the uniform interface every scheduling policy in the
// engine implements (§III-B policies: the four SP heuristics and the
// local-search optimizer, plus anything users register).
//
// A strategy maps a task graph to a static schedule under a common options
// contract; callers discover strategies by name through the
// StrategyRegistry (sched/registry.hpp) and never name concrete heuristic
// functions. The parallel schedule search (sched/parallel_search.hpp) fans
// out over registered strategies and seeds.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "sched/static_schedule.hpp"
#include "taskgraph/task_graph.hpp"

namespace fppn {
namespace sched {

class VisitedSet;

/// Options understood by every strategy. Iteration/seed fields are ignored
/// by strategies that are not iterative/seedable.
struct StrategyOptions {
  std::int64_t processors = 2;
  std::uint64_t seed = 1;      ///< RNG seed, seedable strategies only
  int max_iterations = 2000;   ///< move budget, iterative strategies only
  int restarts = 2;            ///< restart count, iterative strategies only
  /// Extra SP start points for warm-startable strategies (today:
  /// "cached-warm-start", which forwards them to optimize_priority).
  /// Ignored by every other strategy, and deliberately NOT part of the
  /// cache key (sched/schedule_cache.hpp): results that depend on warm
  /// starts must never be cached — see parallel_search's warm-start
  /// overlay.
  std::vector<std::vector<JobId>> warm_starts;
  /// Evaluate through the sched::Evaluator kernel (iterative strategies
  /// only). Results are bit-identical with the flag on or off — it exists
  /// so tests/benches can pit the kernel against the reference pipeline —
  /// and is therefore NOT part of the cache key.
  bool use_fast_evaluator = true;
  /// Score moves through the kernel's checkpointed incremental API
  /// (iterative strategies only). Bit-identical results either way; like
  /// use_fast_evaluator it is NOT part of the cache key.
  bool use_incremental = true;
  /// Optional shared visited-set (sched/visited_set.hpp) memoizing exact
  /// scores of already-seen SP orders across strategy invocations —
  /// parallel_search attaches one per evaluation wave. Hits only skip
  /// recomputation (never change any result bit), so this too is NOT part
  /// of the cache key. The caller owns the set; nullptr disables it.
  VisitedSet* visited_set = nullptr;
};

/// Outcome of one strategy invocation, with the schedule already evaluated
/// under the lexicographic objective (deadline violations, makespan).
struct StrategyResult {
  StaticSchedule schedule;
  std::string strategy;               ///< name of the producing strategy
  std::string detail;                 ///< human-readable provenance
  std::size_t deadline_violations = 0;
  Time makespan;
  bool feasible = false;
  // Evaluation accounting (iterative strategies; zero elsewhere).
  // Informational only: never serialized by the schedule cache and never
  // part of any determinism contract — visited_skips depends on
  // cross-worker interleaving when the visited-set is shared.
  std::uint64_t full_evals = 0;         ///< from-scratch simulations
  std::uint64_t incremental_evals = 0;  ///< checkpoint-resumed move scores
  std::uint64_t spliced_evals = 0;      ///< moves spliced into a memoized suffix
  std::uint64_t visited_skips = 0;      ///< evaluations skipped via the visited-set
};

class SchedulerStrategy {
 public:
  virtual ~SchedulerStrategy() = default;

  /// Registry key; stable, lowercase, dash-separated.
  [[nodiscard]] virtual std::string name() const = 0;

  /// One-line description for --help output.
  [[nodiscard]] virtual std::string description() const = 0;

  /// True when different seeds can yield different schedules. The parallel
  /// search enumerates seeds only for seedable strategies.
  [[nodiscard]] virtual bool seedable() const { return false; }

  /// Computes a complete schedule for `tg`. Implementations must be
  /// deterministic functions of (tg, opts) — all randomness derived from
  /// opts.seed — and safe to call from multiple threads on distinct
  /// instances (the registry hands every caller a fresh instance).
  /// Implementations may throw std::invalid_argument for graphs/options
  /// they cannot schedule (e.g. cyclic graphs, processors < 1); the
  /// parallel search rethrows on the calling thread.
  [[nodiscard]] virtual StrategyResult schedule(const TaskGraph& tg,
                                                const StrategyOptions& opts) const = 0;
};

/// Fills deadline_violations / makespan / feasible of `result` from its
/// schedule — shared by all strategy implementations (and by cache
/// lookups) so every result, fresh or cached, is scored identically.
/// Deterministic and thread-safe (pure function of tg + the schedule);
/// never throws.
void finalize_result(const TaskGraph& tg, StrategyResult& result);

}  // namespace sched
}  // namespace fppn
