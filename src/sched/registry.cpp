#include "sched/registry.hpp"

namespace fppn {
namespace sched {

StrategyRegistry& StrategyRegistry::global() {
  static StrategyRegistry* registry = [] {
    auto* r = new StrategyRegistry();
    register_builtin_strategies(*r);
    return r;
  }();
  return *registry;
}

}  // namespace sched
}  // namespace fppn
