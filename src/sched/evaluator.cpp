#include "sched/evaluator.hpp"

#include <algorithm>
#include <functional>
#include <stdexcept>
#include <type_traits>

namespace fppn {
namespace sched {

namespace {

/// T + W for both timebases: int64 + int64 ticks, Time + Duration.
inline std::int64_t add_wcet(std::int64_t t, std::int64_t w) { return t + w; }
inline Time add_wcet(const Time& t, const Duration& w) { return t + w; }

/// Default checkpoint stride: floor(sqrt(n)), at least 1 — O(√n)
/// checkpoints of O(n) state each, O(n^1.5) total snapshot memory.
std::size_t default_stride(std::size_t n) {
  std::size_t s = 1;
  while ((s + 1) * (s + 1) <= n) {
    ++s;
  }
  return s;
}

/// A confluence compare that got past the cheap O(1) checks but failed on
/// deep state this many times stops probing: the move genuinely changed
/// the schedule and the remaining tail is cheaper to simulate than to
/// keep comparing. Purely a cost bound — never affects the score.
constexpr int kMaxDeepCompareFailures = 64;

}  // namespace

Evaluator::Evaluator(const TaskGraph& tg, std::int64_t processors)
    : cg_(CompiledTaskGraph::compile(tg)), processors_(processors) {
  if (processors < 1) {
    throw std::invalid_argument("evaluator: processors must be >= 1");
  }
  if (!tg.is_acyclic()) {
    throw std::invalid_argument("evaluator: task graph is cyclic");
  }
  init_scratch();
}

Evaluator::Evaluator(const TaskGraph& tg, std::int64_t processors,
                     const std::vector<ProcessorId>& assignment)
    : cg_(CompiledTaskGraph::compile(tg)),
      processors_(processors),
      partition_mode_(true) {
  if (processors < 1) {
    throw std::invalid_argument("evaluator: processors must be >= 1");
  }
  if (!tg.is_acyclic()) {
    throw std::invalid_argument("evaluator: task graph is cyclic");
  }
  const std::size_t n = cg_.job_count();
  job_proc_.resize(n);
  for (std::size_t i = 0; i < n; ++i) {
    const std::size_t p = cg_.process_ids()[i];
    if (p >= assignment.size() || !assignment[p].is_valid() ||
        static_cast<std::int64_t>(assignment[p].value()) >= processors) {
      throw std::invalid_argument("partitioned schedule: job '" + tg.job(JobId(i)).name +
                                  "' has no valid processor assignment");
    }
    job_proc_[i] = static_cast<std::uint32_t>(assignment[p].value());
  }
  init_scratch();
}

void Evaluator::init_scratch() {
  const std::size_t n = cg_.job_count();
  const std::size_t m = static_cast<std::size_t>(processors_);
  rank_.resize(n);
  base_order_.resize(n);
  seen_.resize(n);
  remaining_.resize(n);
  started_.resize(n);
  placed_proc_.resize(n);
  ready_heap_.reserve(n);
  free_procs_.reserve(m);
  cmp_a_.reserve(m);
  cmp_b_.reserve(n);
  if (partition_mode_) {
    proc_ready_.resize(m);
    proc_free_flag_.resize(m);
  }
  if (cg_.has_ticks()) {
    ready_tick_.resize(n);
    start_tick_.resize(n);
    busy_tick_.reserve(m);
    pending_tick_.reserve(n);
    cmp_pairs_tick_.reserve(n);
  } else {
    ready_time_.resize(n);
    start_time_.resize(n);
    busy_time_.reserve(m);
    pending_time_.reserve(n);
    cmp_pairs_time_.reserve(n);
  }
  stride_ = default_stride(n);
  reserve_checkpoints();
}

void Evaluator::reserve_checkpoints() {
  if (partition_mode_) {
    return;  // checkpoints are a global-mode feature
  }
  const std::size_t n = cg_.job_count();
  const std::size_t cap = n / std::max<std::size_t>(stride_, 1) + 1;
  if (cg_.has_ticks()) {
    base_tick_.ck.resize(cap);
    base_tick_.finish_log.resize(n);
    base_tick_.chosen_rank.resize(n);
    base_tick_.second_rank.resize(n);
    base_tick_.entry_idx.resize(n);
    base_tick_.start_idx.resize(n);
  } else {
    base_time_.ck.resize(cap);
    base_time_.finish_log.resize(n);
    base_time_.chosen_rank.resize(n);
    base_time_.second_rank.resize(n);
    base_time_.entry_idx.resize(n);
    base_time_.start_idx.resize(n);
  }
}

void Evaluator::set_checkpoint_stride(std::size_t stride) {
  stride_ = stride != 0 ? stride : default_stride(cg_.job_count());
  invalidate_baseline();
  reserve_checkpoints();
}

void Evaluator::invalidate_baseline() {
  base_tick_.valid = false;
  base_time_.valid = false;
}

void Evaluator::load_rank(const std::vector<JobId>& priority) {
  const std::size_t n = cg_.job_count();
  if (priority.size() != n) {
    throw std::invalid_argument("evaluator: SP order must cover every job");
  }
  std::fill(seen_.begin(), seen_.end(), std::uint8_t{0});
  for (std::size_t r = 0; r < n; ++r) {
    const std::size_t i = priority[r].value();
    if (i >= n || seen_[i] != 0) {
      throw std::invalid_argument("evaluator: SP order is not a permutation");
    }
    seen_[i] = 1;
    rank_[i] = static_cast<std::uint32_t>(r);
  }
}

void Evaluator::load_rank_for_move(const std::vector<JobId>& priority, std::size_t lo,
                                   std::size_t hi, MoveKind kind) {
  const std::size_t n = cg_.job_count();
  if (priority.size() != n) {
    throw std::invalid_argument("evaluator: SP order must cover every job");
  }
  if (n == 0) {
    return;
  }
  const auto mismatch = [] {
    throw std::invalid_argument(
        "evaluator: order is not the claimed perturbation of the baseline");
  };
  const auto copy_range = [&](std::size_t from, std::size_t to, std::size_t shift) {
    // priority[r] must equal the baseline at position r - shift.
    for (std::size_t r = from; r < to; ++r) {
      const std::size_t i = priority[r].value();
      if (i != base_order_[r - shift]) {
        mismatch();
      }
      rank_[i] = static_cast<std::uint32_t>(r);
    }
  };
  copy_range(0, lo, 0);
  copy_range(hi + 1, n, 0);
  if (priority[lo].value() != base_order_[hi]) {
    mismatch();
  }
  rank_[base_order_[hi]] = static_cast<std::uint32_t>(lo);
  if (kind == MoveKind::kSwap) {
    if (priority[hi].value() != base_order_[lo]) {
      mismatch();
    }
    rank_[base_order_[lo]] = static_cast<std::uint32_t>(hi);
    copy_range(lo + 1, hi, 0);
  } else {
    copy_range(lo + 1, hi + 1, 1);
  }
}

template <class T>
EvalScore Evaluator::finish_score(std::size_t violations, const T& makespan) const {
  EvalScore score;
  score.deadline_violations = violations;
  if constexpr (std::is_same_v<T, std::int64_t>) {
    score.makespan = cg_.time_from_ticks(makespan);
  } else {
    score.makespan = makespan;
  }
  return score;
}

/// The event-driven list-scheduling simulation. Decision rule identical to
/// the reference list_schedule: at every instant t, repeatedly start the
/// lowest-rank ready job on the smallest-index free processor; when
/// nothing can start, advance t to the next event (a processor release, a
/// pending readiness, or a source arrival). Returns the deadline-violation
/// count; `makespan` receives the latest finish (zero when n == 0).
///
/// When `capture` is non-null the run additionally snapshots the complete
/// simulation state into `capture` every `capture->stride` starts —
/// immediately after the start's successor propagation, a point where
/// every heap key is strictly in the future, so a later run can resume
/// from the snapshot at the top of this loop.
template <class T, class W>
std::size_t Evaluator::run(const std::vector<T>& arrival, const std::vector<T>& deadline,
                           const std::vector<W>& wcet, std::vector<T>& ready_at,
                           std::vector<std::pair<T, std::uint32_t>>& busy,
                           std::vector<std::pair<T, std::uint32_t>>& pending,
                           std::vector<T>& start, T& makespan, bool record,
                           typename eval_detail::type_identity<eval_detail::BaselineStore<T>>::type* capture) {
  using BusyEntry = std::pair<T, std::uint32_t>;
  const std::size_t n = cg_.job_count();
  const auto& pred_offsets = cg_.pred_offsets();
  const auto& succ_offsets = cg_.succ_offsets();
  const auto& succ_ids = cg_.succ_ids();
  const auto& sources = cg_.sources_by_arrival();

  for (std::size_t i = 0; i < n; ++i) {
    remaining_[i] = pred_offsets[i + 1] - pred_offsets[i];
    ready_at[i] = arrival[i];
  }
  ready_heap_.clear();
  free_procs_.clear();
  pending.clear();
  busy.clear();
  // Every processor becomes free at time zero, exactly like the
  // reference's proc_free initialization.
  for (std::uint32_t m = 0; m < static_cast<std::uint32_t>(processors_); ++m) {
    busy.emplace_back(T{}, m);
  }
  // Already a valid min-heap: equal keys, ascending indices.

  if (capture != nullptr) {
    std::fill(started_.begin(), started_.end(), std::uint8_t{0});
  }
  std::size_t violations = 0;
  T last_finish{};
  std::size_t started = 0;
  std::size_t src_ptr = 0;
  std::uint64_t sim_starts = 0;
  T t{};

  while (started < n) {
    // Integrate every event at or before t.
    while (!busy.empty() && !(t < busy.front().first)) {
      free_procs_.push_back(busy.front().second);
      std::push_heap(free_procs_.begin(), free_procs_.end(),
                     std::greater<std::uint32_t>());
      std::pop_heap(busy.begin(), busy.end(), std::greater<BusyEntry>());
      busy.pop_back();
    }
    while (!pending.empty() && !(t < pending.front().first)) {
      const std::uint32_t job = pending.front().second;
      if (capture != nullptr) {
        capture->entry_idx[job] = static_cast<std::uint32_t>(started);
      }
      ready_heap_.push_back((static_cast<std::uint64_t>(rank_[job]) << 32) | job);
      std::push_heap(ready_heap_.begin(), ready_heap_.end(),
                     std::greater<std::uint64_t>());
      std::pop_heap(pending.begin(), pending.end(), std::greater<BusyEntry>());
      pending.pop_back();
    }
    while (src_ptr < sources.size() && !(t < arrival[sources[src_ptr]])) {
      const std::uint32_t job = sources[src_ptr++];
      if (capture != nullptr) {
        capture->entry_idx[job] = static_cast<std::uint32_t>(started);
      }
      ready_heap_.push_back((static_cast<std::uint64_t>(rank_[job]) << 32) | job);
      std::push_heap(ready_heap_.begin(), ready_heap_.end(),
                     std::greater<std::uint64_t>());
    }

    // Start decisions at t: lowest rank pairs with the smallest free
    // processor index, repeated until one side runs dry.
    while (!ready_heap_.empty() && !free_procs_.empty()) {
      const std::uint32_t job = static_cast<std::uint32_t>(ready_heap_.front());
      std::pop_heap(ready_heap_.begin(), ready_heap_.end(),
                    std::greater<std::uint64_t>());
      ready_heap_.pop_back();
      const std::uint32_t proc = free_procs_.front();
      std::pop_heap(free_procs_.begin(), free_procs_.end(),
                    std::greater<std::uint32_t>());
      free_procs_.pop_back();

      const T finish = add_wcet(t, wcet[job]);
      if (deadline[job] < finish) {
        ++violations;
      }
      if (last_finish < finish) {
        last_finish = finish;
      }
      if (record) {
        start[job] = t;
        placed_proc_[job] = proc;
      }
      // A zero-WCET job completes at the instant it starts: its processor
      // is free again and its successors become ready *within* this
      // decision round, exactly like the reference's rescan at the same
      // t. Everything with a strictly future key goes through the heaps.
      if (!(t < finish)) {  // zero WCET: finish == t
        free_procs_.push_back(proc);
        std::push_heap(free_procs_.begin(), free_procs_.end(),
                       std::greater<std::uint32_t>());
      } else {
        busy.emplace_back(finish, proc);
        std::push_heap(busy.begin(), busy.end(), std::greater<BusyEntry>());
      }
      if (capture != nullptr) {
        // Decision log for the k-th pop: the started job's rank, the
        // next-best ready rank at that instant (heap front — nothing has
        // been pushed since the pop), and the job→pop-index inverse.
        capture->finish_log[started] = finish;
        capture->chosen_rank[started] = rank_[job];
        capture->second_rank[started] =
            ready_heap_.empty() ? ~std::uint32_t{0}
                                : static_cast<std::uint32_t>(ready_heap_.front() >> 32);
        capture->start_idx[job] = static_cast<std::uint32_t>(started);
        started_[job] = 1;
      }
      ++started;
      ++sim_starts;
      for (std::uint32_t e = succ_offsets[job]; e < succ_offsets[job + 1]; ++e) {
        const std::uint32_t s = succ_ids[e];
        if (ready_at[s] < finish) {
          ready_at[s] = finish;
        }
        if (--remaining_[s] == 0) {
          if (t < ready_at[s]) {
            pending.emplace_back(ready_at[s], s);
            std::push_heap(pending.begin(), pending.end(), std::greater<BusyEntry>());
          } else {
            if (capture != nullptr) {
              capture->entry_idx[s] = static_cast<std::uint32_t>(started);
            }
            ready_heap_.push_back((static_cast<std::uint64_t>(rank_[s]) << 32) | s);
            std::push_heap(ready_heap_.begin(), ready_heap_.end(),
                           std::greater<std::uint64_t>());
          }
        }
      }
      if (capture != nullptr && started < n && started % capture->stride == 0 &&
          capture->count < capture->ck.size()) {
        auto& ck = capture->ck[capture->count++];
        ck.started = started;
        ck.src_ptr = src_ptr;
        ck.violations = violations;
        ck.t = t;
        ck.last_finish = last_finish;
        ck.started_flags.assign(started_.begin(), started_.end());
        ck.ready_at.assign(ready_at.begin(), ready_at.end());
        ck.remaining.assign(remaining_.begin(), remaining_.end());
        ck.ready_jobs.clear();
        for (const std::uint64_t key : ready_heap_) {
          ck.ready_jobs.push_back(static_cast<std::uint32_t>(key));
        }
        std::sort(ck.ready_jobs.begin(), ck.ready_jobs.end());
        // Sorted ascending is both the canonical form for the confluence
        // compare and a valid min-heap layout for restore.
        ck.busy.assign(busy.begin(), busy.end());
        std::sort(ck.busy.begin(), ck.busy.end());
        ck.pending.assign(pending.begin(), pending.end());
        std::sort(ck.pending.begin(), ck.pending.end());
        ck.free_procs.assign(free_procs_.begin(), free_procs_.end());
        std::sort(ck.free_procs.begin(), ck.free_procs.end());
      }
    }
    if (started == n) {
      break;
    }
    // Advance to the next event strictly after t.
    bool have_next = false;
    T next{};
    const auto consider = [&](const T& cand) {
      if (!have_next || cand < next) {
        next = cand;
        have_next = true;
      }
    };
    if (!busy.empty()) {
      consider(busy.front().first);
    }
    if (!pending.empty()) {
      consider(pending.front().first);
    }
    if (src_ptr < sources.size()) {
      consider(arrival[sources[src_ptr]]);
    }
    if (!have_next) {
      throw std::logic_error("evaluator: stalled with no future event");
    }
    t = next;
  }
  stats_.starts_simulated += sim_starts;
  makespan = last_finish;
  return violations;
}

/// Partition-constrained simulation: one rank-keyed ready heap per
/// processor; at every instant start the globally lowest-rank job whose
/// own (pinned) processor is free, repeated until nothing can start.
/// Decision-identical to the reference partitioned_list_schedule rescan.
template <class T, class W>
std::size_t Evaluator::run_partitioned(const std::vector<T>& arrival,
                                       const std::vector<T>& deadline,
                                       const std::vector<W>& wcet,
                                       std::vector<T>& ready_at,
                                       std::vector<std::pair<T, std::uint32_t>>& busy,
                                       std::vector<std::pair<T, std::uint32_t>>& pending,
                                       std::vector<T>& start, T& makespan,
                                       bool record) {
  using BusyEntry = std::pair<T, std::uint32_t>;
  const std::size_t n = cg_.job_count();
  const std::size_t m = static_cast<std::size_t>(processors_);
  const auto& pred_offsets = cg_.pred_offsets();
  const auto& succ_offsets = cg_.succ_offsets();
  const auto& succ_ids = cg_.succ_ids();
  const auto& sources = cg_.sources_by_arrival();

  for (std::size_t i = 0; i < n; ++i) {
    remaining_[i] = pred_offsets[i + 1] - pred_offsets[i];
    ready_at[i] = arrival[i];
  }
  for (auto& heap : proc_ready_) {
    heap.clear();
  }
  std::fill(proc_free_flag_.begin(), proc_free_flag_.end(), std::uint8_t{1});
  pending.clear();
  busy.clear();

  const auto push_ready = [&](std::uint32_t job) {
    auto& heap = proc_ready_[job_proc_[job]];
    heap.push_back((static_cast<std::uint64_t>(rank_[job]) << 32) | job);
    std::push_heap(heap.begin(), heap.end(), std::greater<std::uint64_t>());
  };

  std::size_t violations = 0;
  T last_finish{};
  std::size_t started = 0;
  std::size_t src_ptr = 0;
  std::uint64_t sim_starts = 0;
  T t{};

  while (started < n) {
    while (!busy.empty() && !(t < busy.front().first)) {
      proc_free_flag_[busy.front().second] = 1;
      std::pop_heap(busy.begin(), busy.end(), std::greater<BusyEntry>());
      busy.pop_back();
    }
    while (!pending.empty() && !(t < pending.front().first)) {
      push_ready(pending.front().second);
      std::pop_heap(pending.begin(), pending.end(), std::greater<BusyEntry>());
      pending.pop_back();
    }
    while (src_ptr < sources.size() && !(t < arrival[sources[src_ptr]])) {
      push_ready(sources[src_ptr++]);
    }

    // Start decisions at t: globally lowest rank among jobs whose own
    // processor is free (O(m) scan over the per-processor heap tops).
    for (;;) {
      std::uint64_t best_key = ~std::uint64_t{0};
      std::size_t best_m = m;
      for (std::size_t p = 0; p < m; ++p) {
        if (proc_free_flag_[p] != 0 && !proc_ready_[p].empty() &&
            proc_ready_[p].front() < best_key) {
          best_key = proc_ready_[p].front();
          best_m = p;
        }
      }
      if (best_m == m) {
        break;
      }
      auto& heap = proc_ready_[best_m];
      const std::uint32_t job = static_cast<std::uint32_t>(heap.front());
      std::pop_heap(heap.begin(), heap.end(), std::greater<std::uint64_t>());
      heap.pop_back();

      const T finish = add_wcet(t, wcet[job]);
      if (deadline[job] < finish) {
        ++violations;
      }
      if (last_finish < finish) {
        last_finish = finish;
      }
      if (record) {
        start[job] = t;
        placed_proc_[job] = static_cast<std::uint32_t>(best_m);
      }
      // Zero-WCET jobs keep their processor free (the reference leaves
      // proc_free at t) and cascade within the same decision round.
      if (t < finish) {
        proc_free_flag_[best_m] = 0;
        busy.emplace_back(finish, static_cast<std::uint32_t>(best_m));
        std::push_heap(busy.begin(), busy.end(), std::greater<BusyEntry>());
      }
      ++started;
      ++sim_starts;
      for (std::uint32_t e = succ_offsets[job]; e < succ_offsets[job + 1]; ++e) {
        const std::uint32_t s = succ_ids[e];
        if (ready_at[s] < finish) {
          ready_at[s] = finish;
        }
        if (--remaining_[s] == 0) {
          if (t < ready_at[s]) {
            pending.emplace_back(ready_at[s], s);
            std::push_heap(pending.begin(), pending.end(), std::greater<BusyEntry>());
          } else {
            push_ready(s);
          }
        }
      }
    }
    if (started == n) {
      break;
    }
    bool have_next = false;
    T next{};
    const auto consider = [&](const T& cand) {
      if (!have_next || cand < next) {
        next = cand;
        have_next = true;
      }
    };
    if (!busy.empty()) {
      consider(busy.front().first);
    }
    if (!pending.empty()) {
      consider(pending.front().first);
    }
    if (src_ptr < sources.size()) {
      consider(arrival[sources[src_ptr]]);
    }
    if (!have_next) {
      throw std::logic_error("partitioned schedule: stalled with no future event");
    }
    t = next;
  }
  stats_.starts_simulated += sim_starts;
  makespan = last_finish;
  return violations;
}

/// Incremental evaluation of a perturbed baseline order: resume from the
/// latest checkpoint at which no moved job had entered the ready set,
/// then simulate forward, probing for confluence with the baseline at
/// every checkpoint boundary once every moved job has started. Exact by
/// construction — resumption replays the identical decision sequence,
/// and the splice is gated on a full state comparison.
template <class T, class W>
EvalScore Evaluator::run_move(const std::vector<T>& arrival, const std::vector<T>& deadline,
                              const std::vector<W>& wcet, std::vector<T>& ready_at,
                              std::vector<std::pair<T, std::uint32_t>>& busy,
                              std::vector<std::pair<T, std::uint32_t>>& pending,
                              const eval_detail::BaselineStore<T>& base, std::size_t lo,
                              std::size_t hi, MoveKind kind) {
  using BusyEntry = std::pair<T, std::uint32_t>;
  const std::size_t n = cg_.job_count();
  const auto& pred_offsets = cg_.pred_offsets();
  const auto& succ_offsets = cg_.succ_offsets();
  const auto& succ_ids = cg_.succ_ids();
  const auto& sources = cg_.sources_by_arrival();

  if (n == 0) {
    return finish_score(0, T{});
  }

  // The jobs whose relative priority the move changed: the two swapped
  // jobs, or — for a rotation — just the job pulled from hi to lo (the
  // shifted window keeps its internal and external relative order).
  const std::uint32_t key_a = base_order_[hi];  // new rank lo
  const std::uint32_t key_b = base_order_[lo];  // swap only: new rank hi
  const bool two_keys = kind == MoveKind::kSwap && hi != lo;

  // Exact first pop the move can influence. The promoted job (new rank
  // lo) steals a pop at the first baseline decision at or after its
  // ready-entry whose chosen rank is >= lo; every earlier pop picks a job
  // that still outranks it, and jobs whose ranks merely shifted with a
  // rotation keep their relative order, so those decisions replay
  // verbatim. For a swap the demoted job additionally loses its own pop
  // iff the runner-up there had rank < hi. Resume from the latest
  // checkpoint at or before that pop.
  std::size_t kstar;
  {
    std::size_t k = base.entry_idx[key_a];
    while (k < n && base.chosen_rank[k] < lo) {
      ++k;
    }
    kstar = k;
    if (two_keys) {
      const std::size_t ka = base.start_idx[key_b];
      if (ka < kstar && base.second_rank[ka] < hi) {
        kstar = ka;
      }
    }
  }
  const std::size_t resume = std::min(base.count, kstar / base.stride);

  std::size_t violations = 0;
  T last_finish{};
  std::size_t started = 0;
  std::size_t src_ptr = 0;
  std::uint64_t sim_starts = 0;
  T t{};

  if (resume > 0) {
    const auto& ck = base.ck[resume - 1];
    t = ck.t;
    started = ck.started;
    src_ptr = ck.src_ptr;
    violations = ck.violations;
    last_finish = ck.last_finish;
    std::copy(ck.started_flags.begin(), ck.started_flags.end(), started_.begin());
    std::copy(ck.ready_at.begin(), ck.ready_at.end(), ready_at.begin());
    std::copy(ck.remaining.begin(), ck.remaining.end(), remaining_.begin());
    busy.assign(ck.busy.begin(), ck.busy.end());
    pending.assign(ck.pending.begin(), ck.pending.end());
    free_procs_.assign(ck.free_procs.begin(), ck.free_procs.end());
    // Sorted-ascending snapshots are valid min-heap layouts as-is; only
    // the ready set needs re-keying under the perturbed ranks.
    ready_heap_.clear();
    for (const std::uint32_t job : ck.ready_jobs) {
      ready_heap_.push_back((static_cast<std::uint64_t>(rank_[job]) << 32) | job);
    }
    std::make_heap(ready_heap_.begin(), ready_heap_.end(),
                   std::greater<std::uint64_t>());
    ++stats_.resumed_evals;
  } else {
    for (std::size_t i = 0; i < n; ++i) {
      remaining_[i] = pred_offsets[i + 1] - pred_offsets[i];
      ready_at[i] = arrival[i];
    }
    std::fill(started_.begin(), started_.end(), std::uint8_t{0});
    ready_heap_.clear();
    free_procs_.clear();
    pending.clear();
    busy.clear();
    for (std::uint32_t m = 0; m < static_cast<std::uint32_t>(processors_); ++m) {
      busy.emplace_back(T{}, m);
    }
  }

  // Confluence bookkeeping: the candidate can only have re-joined the
  // baseline once every key job has started — from then on the unstarted
  // jobs' relative priorities match the baseline (for a rotation the
  // shifted ranks differ by one but order-isomorphically), so an exact
  // state match implies an identical tail.
  int deep_failures = 0;

  // Exact state comparison against a baseline checkpoint, cheapest checks
  // first: O(1) scalars, then the event-heap fronts (snapshots are
  // sorted, so their fronts are the minima), then the O(n) state walk. A
  // false result only skips the splice — never changes a score.
  const auto confluent = [&](const eval_detail::EvalCheckpoint<T>& ck) -> bool {
    if (t != ck.t || src_ptr != ck.src_ptr || busy.size() != ck.busy.size() ||
        pending.size() != ck.pending.size() ||
        ready_heap_.size() != ck.ready_jobs.size() ||
        free_procs_.size() != ck.free_procs.size()) {
      return false;
    }
    if (!busy.empty() && busy.front() != ck.busy.front()) {
      return false;
    }
    if (!pending.empty() && pending.front() != ck.pending.front()) {
      return false;
    }
    ++deep_failures;  // provisional; undone on success
    if (!std::equal(started_.begin(), started_.end(), ck.started_flags.begin())) {
      return false;
    }
    cmp_a_.assign(free_procs_.begin(), free_procs_.end());
    std::sort(cmp_a_.begin(), cmp_a_.end());
    if (cmp_a_ != ck.free_procs) {
      return false;
    }
    cmp_b_.clear();
    for (const std::uint64_t key : ready_heap_) {
      cmp_b_.push_back(static_cast<std::uint32_t>(key));
    }
    std::sort(cmp_b_.begin(), cmp_b_.end());
    if (cmp_b_ != ck.ready_jobs) {
      return false;
    }
    auto& pairs = pair_scratch(T{});
    pairs.assign(busy.begin(), busy.end());
    std::sort(pairs.begin(), pairs.end());
    if (pairs != ck.busy) {
      return false;
    }
    pairs.assign(pending.begin(), pending.end());
    std::sort(pairs.begin(), pairs.end());
    if (pairs != ck.pending) {
      return false;
    }
    for (std::size_t i = 0; i < n; ++i) {
      if (started_[i] == 0 && ready_at[i] != ck.ready_at[i]) {
        return false;
      }
    }
    --deep_failures;
    return true;
  };

  while (started < n) {
    while (!busy.empty() && !(t < busy.front().first)) {
      free_procs_.push_back(busy.front().second);
      std::push_heap(free_procs_.begin(), free_procs_.end(),
                     std::greater<std::uint32_t>());
      std::pop_heap(busy.begin(), busy.end(), std::greater<BusyEntry>());
      busy.pop_back();
    }
    while (!pending.empty() && !(t < pending.front().first)) {
      const std::uint32_t job = pending.front().second;
      ready_heap_.push_back((static_cast<std::uint64_t>(rank_[job]) << 32) | job);
      std::push_heap(ready_heap_.begin(), ready_heap_.end(),
                     std::greater<std::uint64_t>());
      std::pop_heap(pending.begin(), pending.end(), std::greater<BusyEntry>());
      pending.pop_back();
    }
    while (src_ptr < sources.size() && !(t < arrival[sources[src_ptr]])) {
      const std::uint32_t job = sources[src_ptr++];
      ready_heap_.push_back((static_cast<std::uint64_t>(rank_[job]) << 32) | job);
      std::push_heap(ready_heap_.begin(), ready_heap_.end(),
                     std::greater<std::uint64_t>());
    }

    while (!ready_heap_.empty() && !free_procs_.empty()) {
      const std::uint32_t job = static_cast<std::uint32_t>(ready_heap_.front());
      std::pop_heap(ready_heap_.begin(), ready_heap_.end(),
                    std::greater<std::uint64_t>());
      ready_heap_.pop_back();
      const std::uint32_t proc = free_procs_.front();
      std::pop_heap(free_procs_.begin(), free_procs_.end(),
                    std::greater<std::uint32_t>());
      free_procs_.pop_back();

      const T finish = add_wcet(t, wcet[job]);
      if (deadline[job] < finish) {
        ++violations;
      }
      if (last_finish < finish) {
        last_finish = finish;
      }
      if (!(t < finish)) {
        free_procs_.push_back(proc);
        std::push_heap(free_procs_.begin(), free_procs_.end(),
                       std::greater<std::uint32_t>());
      } else {
        busy.emplace_back(finish, proc);
        std::push_heap(busy.begin(), busy.end(), std::greater<BusyEntry>());
      }
      started_[job] = 1;
      ++started;
      ++sim_starts;
      for (std::uint32_t e = succ_offsets[job]; e < succ_offsets[job + 1]; ++e) {
        const std::uint32_t s = succ_ids[e];
        if (ready_at[s] < finish) {
          ready_at[s] = finish;
        }
        if (--remaining_[s] == 0) {
          if (t < ready_at[s]) {
            pending.emplace_back(ready_at[s], s);
            std::push_heap(pending.begin(), pending.end(), std::greater<BusyEntry>());
          } else {
            ready_heap_.push_back((static_cast<std::uint64_t>(rank_[s]) << 32) | s);
            std::push_heap(ready_heap_.begin(), ready_heap_.end(),
                           std::greater<std::uint64_t>());
          }
        }
      }
      if (started_[key_a] != 0 && (!two_keys || started_[key_b] != 0) &&
          started < n && started % base.stride == 0 &&
          deep_failures < kMaxDeepCompareFailures) {
        const std::size_t idx = started / base.stride - 1;
        if (idx < base.count && base.ck[idx].started == started &&
            confluent(base.ck[idx])) {
          // The simulations are confluent: the baseline's tail is this
          // candidate's tail. Splice the memoized suffix aggregates.
          stats_.starts_simulated += sim_starts;
          ++stats_.spliced_evals;
          T mk = last_finish;
          if (mk < base.ck[idx].suffix_max_finish) {
            mk = base.ck[idx].suffix_max_finish;
          }
          return finish_score(violations + base.ck[idx].suffix_violations, mk);
        }
      }
    }
    if (started == n) {
      break;
    }
    bool have_next = false;
    T next{};
    const auto consider = [&](const T& cand) {
      if (!have_next || cand < next) {
        next = cand;
        have_next = true;
      }
    };
    if (!busy.empty()) {
      consider(busy.front().first);
    }
    if (!pending.empty()) {
      consider(pending.front().first);
    }
    if (src_ptr < sources.size()) {
      consider(arrival[sources[src_ptr]]);
    }
    if (!have_next) {
      throw std::logic_error("evaluator: stalled with no future event");
    }
    t = next;
  }
  stats_.starts_simulated += sim_starts;
  return finish_score(violations, last_finish);
}

template <class T>
void Evaluator::finalize_baseline(eval_detail::BaselineStore<T>& base, std::size_t violations,
                                  const T& makespan) {
  const std::size_t n = cg_.job_count();
  base.total_violations = violations;
  base.total_makespan = makespan;
  // Suffix aggregates per checkpoint: violations after the checkpoint and
  // the max finish among jobs started after it (one backward pass over
  // the per-start finish log).
  std::size_t ci = base.count;
  T running{};
  for (std::size_t k = n; k-- > 0;) {
    while (ci > 0 && base.ck[ci - 1].started == k + 1) {
      --ci;
      base.ck[ci].suffix_max_finish = running;
      base.ck[ci].suffix_violations = violations - base.ck[ci].violations;
    }
    if (running < base.finish_log[k]) {
      running = base.finish_log[k];
    }
  }
  base.valid = true;
}

EvalScore Evaluator::evaluate(const std::vector<JobId>& priority) {
  load_rank(priority);
  ++stats_.full_evals;
  EvalScore score;
  if (cg_.has_ticks()) {
    std::int64_t makespan = 0;
    const std::size_t v =
        partition_mode_
            ? run_partitioned(cg_.arrival_ticks(), cg_.deadline_ticks(),
                              cg_.wcet_ticks(), ready_tick_, busy_tick_,
                              pending_tick_, start_tick_, makespan, false)
            : run(cg_.arrival_ticks(), cg_.deadline_ticks(), cg_.wcet_ticks(),
                  ready_tick_, busy_tick_, pending_tick_, start_tick_, makespan,
                  false, nullptr);
    score = finish_score(v, makespan);
  } else {
    Time makespan;
    const std::size_t v =
        partition_mode_
            ? run_partitioned(cg_.arrivals(), cg_.deadlines(), cg_.wcets(),
                              ready_time_, busy_time_, pending_time_, start_time_,
                              makespan, false)
            : run(cg_.arrivals(), cg_.deadlines(), cg_.wcets(), ready_time_,
                  busy_time_, pending_time_, start_time_, makespan, false, nullptr);
    score = finish_score(v, makespan);
  }
  return score;
}

EvalScore Evaluator::evaluate_baseline(const std::vector<JobId>& priority) {
  if (partition_mode_) {
    throw std::logic_error("evaluator: incremental baseline requires global mode");
  }
  load_rank(priority);
  for (std::size_t r = 0; r < base_order_.size(); ++r) {
    base_order_[r] = static_cast<std::uint32_t>(priority[r].value());
  }
  ++stats_.full_evals;
  EvalScore score;
  if (cg_.has_ticks()) {
    base_tick_.valid = false;
    base_tick_.stride = stride_;
    base_tick_.count = 0;
    std::int64_t makespan = 0;
    const std::size_t v =
        run(cg_.arrival_ticks(), cg_.deadline_ticks(), cg_.wcet_ticks(), ready_tick_,
            busy_tick_, pending_tick_, start_tick_, makespan, false, &base_tick_);
    finalize_baseline(base_tick_, v, makespan);
    score = finish_score(v, makespan);
  } else {
    base_time_.valid = false;
    base_time_.stride = stride_;
    base_time_.count = 0;
    Time makespan;
    const std::size_t v =
        run(cg_.arrivals(), cg_.deadlines(), cg_.wcets(), ready_time_, busy_time_,
            pending_time_, start_time_, makespan, false, &base_time_);
    finalize_baseline(base_time_, v, makespan);
    score = finish_score(v, makespan);
  }
  return score;
}

EvalScore Evaluator::evaluate_move(const std::vector<JobId>& priority, std::size_t lo,
                                   std::size_t hi, MoveKind kind) {
  if (partition_mode_) {
    throw std::logic_error("evaluator: incremental moves require global mode");
  }
  const std::size_t n = cg_.job_count();
  if (lo > hi || (n != 0 && hi >= n)) {
    throw std::invalid_argument("evaluator: move positions out of range");
  }
  const bool have_base = cg_.has_ticks() ? base_tick_.valid : base_time_.valid;
  if (!have_base) {
    // No baseline to lean on — still exact, just a plain full run.
    load_rank(priority);
    ++stats_.full_evals;
    if (cg_.has_ticks()) {
      std::int64_t makespan = 0;
      const std::size_t v =
          run(cg_.arrival_ticks(), cg_.deadline_ticks(), cg_.wcet_ticks(),
              ready_tick_, busy_tick_, pending_tick_, start_tick_, makespan, false,
              nullptr);
      return finish_score(v, makespan);
    }
    Time makespan;
    const std::size_t v =
        run(cg_.arrivals(), cg_.deadlines(), cg_.wcets(), ready_time_, busy_time_,
            pending_time_, start_time_, makespan, false, nullptr);
    return finish_score(v, makespan);
  }
  load_rank_for_move(priority, lo, hi, kind);
  ++stats_.incremental_evals;
  if (cg_.has_ticks()) {
    return run_move(cg_.arrival_ticks(), cg_.deadline_ticks(), cg_.wcet_ticks(),
                    ready_tick_, busy_tick_, pending_tick_, base_tick_, lo, hi, kind);
  }
  return run_move(cg_.arrivals(), cg_.deadlines(), cg_.wcets(), ready_time_,
                  busy_time_, pending_time_, base_time_, lo, hi, kind);
}

StaticSchedule Evaluator::materialize(const std::vector<JobId>& priority) {
  load_rank(priority);
  const std::size_t n = cg_.job_count();
  StaticSchedule schedule(n, processors_);
  if (cg_.has_ticks()) {
    std::int64_t makespan = 0;
    if (partition_mode_) {
      (void)run_partitioned(cg_.arrival_ticks(), cg_.deadline_ticks(),
                            cg_.wcet_ticks(), ready_tick_, busy_tick_, pending_tick_,
                            start_tick_, makespan, true);
    } else {
      (void)run(cg_.arrival_ticks(), cg_.deadline_ticks(), cg_.wcet_ticks(),
                ready_tick_, busy_tick_, pending_tick_, start_tick_, makespan, true,
                nullptr);
    }
    for (std::size_t i = 0; i < n; ++i) {
      schedule.place(JobId(i), ProcessorId(placed_proc_[i]),
                     cg_.time_from_ticks(start_tick_[i]));
    }
  } else {
    Time makespan;
    if (partition_mode_) {
      (void)run_partitioned(cg_.arrivals(), cg_.deadlines(), cg_.wcets(), ready_time_,
                            busy_time_, pending_time_, start_time_, makespan, true);
    } else {
      (void)run(cg_.arrivals(), cg_.deadlines(), cg_.wcets(), ready_time_, busy_time_,
                pending_time_, start_time_, makespan, true, nullptr);
    }
    for (std::size_t i = 0; i < n; ++i) {
      schedule.place(JobId(i), ProcessorId(placed_proc_[i]), start_time_[i]);
    }
  }
  return schedule;
}

}  // namespace sched
}  // namespace fppn
