#include "sched/evaluator.hpp"

#include <algorithm>
#include <functional>
#include <stdexcept>

namespace fppn {
namespace sched {

namespace {

/// T + W for both timebases: int64 + int64 ticks, Time + Duration.
inline std::int64_t add_wcet(std::int64_t t, std::int64_t w) { return t + w; }
inline Time add_wcet(const Time& t, const Duration& w) { return t + w; }

}  // namespace

Evaluator::Evaluator(const TaskGraph& tg, std::int64_t processors)
    : cg_(CompiledTaskGraph::compile(tg)), processors_(processors) {
  if (processors < 1) {
    throw std::invalid_argument("evaluator: processors must be >= 1");
  }
  if (!tg.is_acyclic()) {
    throw std::invalid_argument("evaluator: task graph is cyclic");
  }
  const std::size_t n = cg_.job_count();
  rank_.resize(n);
  seen_.resize(n);
  remaining_.resize(n);
  placed_proc_.resize(n);
  ready_heap_.reserve(n);
  free_procs_.reserve(static_cast<std::size_t>(processors));
  const std::size_t m = static_cast<std::size_t>(processors);
  if (cg_.has_ticks()) {
    ready_tick_.resize(n);
    start_tick_.resize(n);
    busy_tick_.reserve(m);
    pending_tick_.reserve(n);
  } else {
    ready_time_.resize(n);
    start_time_.resize(n);
    busy_time_.reserve(m);
    pending_time_.reserve(n);
  }
}

void Evaluator::load_rank(const std::vector<JobId>& priority) {
  const std::size_t n = cg_.job_count();
  if (priority.size() != n) {
    throw std::invalid_argument("evaluator: SP order must cover every job");
  }
  std::fill(seen_.begin(), seen_.end(), std::uint8_t{0});
  for (std::size_t r = 0; r < n; ++r) {
    const std::size_t i = priority[r].value();
    if (i >= n || seen_[i] != 0) {
      throw std::invalid_argument("evaluator: SP order is not a permutation");
    }
    seen_[i] = 1;
    rank_[i] = static_cast<std::uint32_t>(r);
  }
}

/// The event-driven list-scheduling simulation. Decision rule identical to
/// the reference list_schedule: at every instant t, repeatedly start the
/// lowest-rank ready job on the smallest-index free processor; when
/// nothing can start, advance t to the next event (a processor release, a
/// pending readiness, or a source arrival). Returns the deadline-violation
/// count; `makespan` receives the latest finish (zero when n == 0).
template <class T, class W>
std::size_t Evaluator::run(const std::vector<T>& arrival, const std::vector<T>& deadline,
                           const std::vector<W>& wcet, std::vector<T>& ready_at,
                           std::vector<std::pair<T, std::uint32_t>>& busy,
                           std::vector<std::pair<T, std::uint32_t>>& pending,
                           std::vector<T>& start, T& makespan, bool record) {
  using BusyEntry = std::pair<T, std::uint32_t>;
  const std::size_t n = cg_.job_count();
  const auto& pred_offsets = cg_.pred_offsets();
  const auto& succ_offsets = cg_.succ_offsets();
  const auto& succ_ids = cg_.succ_ids();
  const auto& sources = cg_.sources_by_arrival();

  for (std::size_t i = 0; i < n; ++i) {
    remaining_[i] = pred_offsets[i + 1] - pred_offsets[i];
    ready_at[i] = arrival[i];
  }
  ready_heap_.clear();
  free_procs_.clear();
  pending.clear();
  busy.clear();
  // Every processor becomes free at time zero, exactly like the
  // reference's proc_free initialization.
  for (std::uint32_t m = 0; m < static_cast<std::uint32_t>(processors_); ++m) {
    busy.emplace_back(T{}, m);
  }
  // Already a valid min-heap: equal keys, ascending indices.

  std::size_t violations = 0;
  T last_finish{};
  std::size_t started = 0;
  std::size_t src_ptr = 0;
  T t{};

  while (started < n) {
    // Integrate every event at or before t.
    while (!busy.empty() && !(t < busy.front().first)) {
      free_procs_.push_back(busy.front().second);
      std::push_heap(free_procs_.begin(), free_procs_.end(),
                     std::greater<std::uint32_t>());
      std::pop_heap(busy.begin(), busy.end(), std::greater<BusyEntry>());
      busy.pop_back();
    }
    while (!pending.empty() && !(t < pending.front().first)) {
      const std::uint32_t job = pending.front().second;
      ready_heap_.push_back((static_cast<std::uint64_t>(rank_[job]) << 32) | job);
      std::push_heap(ready_heap_.begin(), ready_heap_.end(),
                     std::greater<std::uint64_t>());
      std::pop_heap(pending.begin(), pending.end(), std::greater<BusyEntry>());
      pending.pop_back();
    }
    while (src_ptr < sources.size() && !(t < arrival[sources[src_ptr]])) {
      const std::uint32_t job = sources[src_ptr++];
      ready_heap_.push_back((static_cast<std::uint64_t>(rank_[job]) << 32) | job);
      std::push_heap(ready_heap_.begin(), ready_heap_.end(),
                     std::greater<std::uint64_t>());
    }

    // Start decisions at t: lowest rank pairs with the smallest free
    // processor index, repeated until one side runs dry.
    while (!ready_heap_.empty() && !free_procs_.empty()) {
      const std::uint32_t job = static_cast<std::uint32_t>(ready_heap_.front());
      std::pop_heap(ready_heap_.begin(), ready_heap_.end(),
                    std::greater<std::uint64_t>());
      ready_heap_.pop_back();
      const std::uint32_t proc = free_procs_.front();
      std::pop_heap(free_procs_.begin(), free_procs_.end(),
                    std::greater<std::uint32_t>());
      free_procs_.pop_back();

      const T finish = add_wcet(t, wcet[job]);
      if (deadline[job] < finish) {
        ++violations;
      }
      if (last_finish < finish) {
        last_finish = finish;
      }
      if (record) {
        start[job] = t;
        placed_proc_[job] = proc;
      }
      // A zero-WCET job completes at the instant it starts: its processor
      // is free again and its successors become ready *within* this
      // decision round, exactly like the reference's rescan at the same
      // t. Everything with a strictly future key goes through the heaps.
      if (!(t < finish)) {  // zero WCET: finish == t
        free_procs_.push_back(proc);
        std::push_heap(free_procs_.begin(), free_procs_.end(),
                       std::greater<std::uint32_t>());
      } else {
        busy.emplace_back(finish, proc);
        std::push_heap(busy.begin(), busy.end(), std::greater<BusyEntry>());
      }
      ++started;
      for (std::uint32_t e = succ_offsets[job]; e < succ_offsets[job + 1]; ++e) {
        const std::uint32_t s = succ_ids[e];
        if (ready_at[s] < finish) {
          ready_at[s] = finish;
        }
        if (--remaining_[s] == 0) {
          if (t < ready_at[s]) {
            pending.emplace_back(ready_at[s], s);
            std::push_heap(pending.begin(), pending.end(), std::greater<BusyEntry>());
          } else {
            ready_heap_.push_back((static_cast<std::uint64_t>(rank_[s]) << 32) | s);
            std::push_heap(ready_heap_.begin(), ready_heap_.end(),
                           std::greater<std::uint64_t>());
          }
        }
      }
    }
    if (started == n) {
      break;
    }
    // Advance to the next event strictly after t.
    bool have_next = false;
    T next{};
    const auto consider = [&](const T& cand) {
      if (!have_next || cand < next) {
        next = cand;
        have_next = true;
      }
    };
    if (!busy.empty()) {
      consider(busy.front().first);
    }
    if (!pending.empty()) {
      consider(pending.front().first);
    }
    if (src_ptr < sources.size()) {
      consider(arrival[sources[src_ptr]]);
    }
    if (!have_next) {
      throw std::logic_error("evaluator: stalled with no future event");
    }
    t = next;
  }
  makespan = last_finish;
  return violations;
}

EvalScore Evaluator::evaluate(const std::vector<JobId>& priority) {
  load_rank(priority);
  EvalScore score;
  if (cg_.has_ticks()) {
    std::int64_t makespan = 0;
    score.deadline_violations =
        run(cg_.arrival_ticks(), cg_.deadline_ticks(), cg_.wcet_ticks(), ready_tick_,
            busy_tick_, pending_tick_, start_tick_, makespan, false);
    score.makespan = cg_.time_from_ticks(makespan);
  } else {
    Time makespan;
    score.deadline_violations =
        run(cg_.arrivals(), cg_.deadlines(), cg_.wcets(), ready_time_, busy_time_,
            pending_time_, start_time_, makespan, false);
    score.makespan = makespan;
  }
  return score;
}

StaticSchedule Evaluator::materialize(const std::vector<JobId>& priority) {
  load_rank(priority);
  const std::size_t n = cg_.job_count();
  StaticSchedule schedule(n, processors_);
  if (cg_.has_ticks()) {
    std::int64_t makespan = 0;
    (void)run(cg_.arrival_ticks(), cg_.deadline_ticks(), cg_.wcet_ticks(), ready_tick_,
              busy_tick_, pending_tick_, start_tick_, makespan, true);
    for (std::size_t i = 0; i < n; ++i) {
      schedule.place(JobId(i), ProcessorId(placed_proc_[i]),
                     cg_.time_from_ticks(start_tick_[i]));
    }
  } else {
    Time makespan;
    (void)run(cg_.arrivals(), cg_.deadlines(), cg_.wcets(), ready_time_, busy_time_,
              pending_time_, start_time_, makespan, true);
    for (std::size_t i = 0; i < n; ++i) {
      schedule.place(JobId(i), ProcessorId(placed_proc_[i]), start_time_[i]);
    }
  }
  return schedule;
}

}  // namespace sched
}  // namespace fppn
