#include "sched/parallel_search.hpp"

#include <algorithm>
#include <atomic>
#include <mutex>
#include <optional>
#include <stdexcept>
#include <thread>

#include "sched/visited_set.hpp"
#include "sched/warm_start.hpp"

namespace fppn {
namespace sched {

namespace {

/// The registry name the warm-start overlay owns. Never expanded into the
/// plan: its result depends on cache contents, which the deterministic
/// candidate matrix must not.
constexpr const char* kWarmStartStrategy = "cached-warm-start";

}  // namespace

std::vector<SearchCandidate> enumerate_search_candidates(const ParallelSearchOptions& opts,
                                                         const StrategyRegistry& registry) {
  if (opts.processors < 1) {
    throw std::invalid_argument("parallel_search: processors must be >= 1");
  }
  if (opts.seeds_per_strategy < 1) {
    throw std::invalid_argument("parallel_search: seeds_per_strategy must be >= 1");
  }
  std::vector<std::string> strategy_names =
      opts.strategies.empty() ? registry.names() : opts.strategies;
  if (opts.strategies.empty()) {
    strategy_names.erase(
        std::remove(strategy_names.begin(), strategy_names.end(), kWarmStartStrategy),
        strategy_names.end());
  }
  std::vector<SearchCandidate> candidates;
  for (const std::string& name : strategy_names) {
    const auto strategy = registry.create(name);  // throws on unknown name
    const int seeds = strategy->seedable() ? opts.seeds_per_strategy : 1;
    for (int s = 0; s < seeds; ++s) {
      candidates.push_back(
          SearchCandidate{name, opts.base_seed + static_cast<std::uint64_t>(s)});
    }
  }
  if (candidates.empty()) {
    throw std::invalid_argument("parallel_search: no candidate strategies");
  }
  return candidates;
}

StrategyOptions strategy_options_for(const ParallelSearchOptions& opts,
                                     const SearchCandidate& candidate) {
  StrategyOptions sopts;
  sopts.processors = opts.processors;
  sopts.seed = candidate.seed;
  sopts.max_iterations = opts.max_iterations;
  sopts.restarts = opts.restarts;
  sopts.use_fast_evaluator = opts.use_fast_evaluator;
  sopts.use_incremental = opts.use_incremental;
  // Deliberately NOT the visited-set pointer: these options double as the
  // cache-key basis, and the set is per-evaluation-wave scratch that
  // evaluate_candidates attaches itself.
  return sopts;
}

/// Feasibility outranks everything: a user-registered strategy can return
/// a schedule whose violations are non-deadline (unplaced jobs,
/// precedence/mutex overlaps) and such a result must never beat a fully
/// feasible one on makespan. Exact rational makespan comparison keeps
/// ties honest.
bool better_search_candidate(const StrategyResult& a, std::uint64_t a_seed,
                             const StrategyResult& b, std::uint64_t b_seed) {
  if (a.feasible != b.feasible) {
    return a.feasible;
  }
  if (a.deadline_violations != b.deadline_violations) {
    return a.deadline_violations < b.deadline_violations;
  }
  if (a.makespan != b.makespan) {
    return a.makespan < b.makespan;
  }
  if (a.strategy != b.strategy) {
    return a.strategy < b.strategy;
  }
  return a_seed < b_seed;
}

CandidateEvaluation evaluate_candidates(const TaskGraph& tg,
                                        const ParallelSearchOptions& opts,
                                        const std::vector<SearchCandidate>& candidates,
                                        const StrategyRegistry& registry) {
  if (opts.processors < 1) {
    throw std::invalid_argument("parallel_search: processors must be >= 1");
  }

  // Cache probe, before any evaluation: a hit fills the candidate's result
  // slot directly; only misses go to the worker pool. Lookups re-score the
  // cached schedule against `tg`, so hits and fresh evaluations are ranked
  // by the exact same numbers — cache warmth cannot change the winner.
  std::vector<std::optional<StrategyResult>> results(candidates.size());
  std::vector<std::size_t> pending;
  std::size_t cache_hits = 0;
  const std::uint64_t fp = opts.cache != nullptr ? fingerprint(tg) : 0;
  const auto key_for = [&](std::size_t i) {
    return make_cache_key(fp, candidates[i].strategy,
                          strategy_options_for(opts, candidates[i]));
  };
  if (opts.cache != nullptr) {
    for (std::size_t i = 0; i < candidates.size(); ++i) {
      results[i] = opts.cache->lookup(key_for(i), tg);
      if (results[i].has_value()) {
        ++cache_hits;
      } else {
        pending.push_back(i);
      }
    }
  } else {
    pending.resize(candidates.size());
    for (std::size_t i = 0; i < candidates.size(); ++i) {
      pending[i] = i;
    }
  }

  int workers = opts.workers > 0
                    ? opts.workers
                    : static_cast<int>(std::max(1U, std::thread::hardware_concurrency()));
  workers = std::min<int>(workers, static_cast<int>(std::max<std::size_t>(pending.size(), 1)));

  // One visited-set shared by every worker of this wave: a local-search
  // worker that reaches an SP order any other worker already scored skips
  // the simulation. Sized for the worst case (every candidate explores its
  // full move budget); seeded from the graph fingerprint so the hash is a
  // pure function of the job orders, not of this process.
  std::optional<VisitedSet> visited;
  if (opts.use_visited_set && opts.use_fast_evaluator && !pending.empty()) {
    const std::uint64_t orders_per_candidate =
        static_cast<std::uint64_t>(std::max(opts.max_iterations, 0)) *
            (static_cast<std::uint64_t>(std::max(opts.restarts, 0)) + 1) +
        8;
    visited.emplace(fingerprint(tg), orders_per_candidate * pending.size());
  }

  // Each slot is written by exactly one worker; callers rank over the
  // index-ordered vector after the join, so the outcome cannot depend on
  // thread interleaving.
  std::atomic<std::size_t> next{0};
  std::mutex error_mu;
  std::exception_ptr first_error;

  const auto run_candidate = [&](std::size_t index) {
    const SearchCandidate& c = candidates[index];
    StrategyOptions sopts = strategy_options_for(opts, c);
    sopts.visited_set = visited.has_value() ? &*visited : nullptr;
    results[index] = registry.create(c.strategy)->schedule(tg, sopts);
    // Rank by the candidate's registry key, not the strategy's
    // self-reported name(): cache hits and sharded-merge results rebuild
    // the name from the key, and a strategy registered under a different
    // name must not rank differently fresh vs. shipped.
    results[index]->strategy = c.strategy;
  };

  const auto worker_loop = [&] {
    for (;;) {
      const std::size_t p = next.fetch_add(1, std::memory_order_relaxed);
      if (p >= pending.size()) {
        return;
      }
      try {
        run_candidate(pending[p]);
      } catch (...) {
        const std::lock_guard<std::mutex> lock(error_mu);
        if (!first_error) {
          first_error = std::current_exception();
        }
      }
    }
  };

  if (!pending.empty()) {
    if (workers <= 1) {
      worker_loop();
    } else {
      std::vector<std::thread> pool;
      pool.reserve(static_cast<std::size_t>(workers));
      for (int w = 0; w < workers; ++w) {
        pool.emplace_back(worker_loop);
      }
      for (std::thread& t : pool) {
        t.join();
      }
    }
  }
  if (first_error) {
    std::rethrow_exception(first_error);
  }

  // Persist every fresh evaluation (the eventual winner among them), so a
  // repeat of this exact search is answered entirely from the cache.
  if (opts.cache != nullptr) {
    for (const std::size_t i : pending) {
      opts.cache->store(key_for(i), *results[i]);
    }
  }

  CandidateEvaluation out;
  out.results.reserve(results.size());
  for (std::optional<StrategyResult>& r : results) {
    out.results.push_back(std::move(*r));
  }
  out.evaluated = pending.size();
  out.cache_hits = cache_hits;
  out.workers_used = workers;
  for (const std::size_t i : pending) {
    out.evals_full += out.results[i].full_evals;
    out.evals_incremental += out.results[i].incremental_evals;
    out.evals_spliced += out.results[i].spliced_evals;
    out.visited_skips += out.results[i].visited_skips;
  }
  return out;
}

/// True when `a` is strictly better than `b` on the score prefix of
/// better_search_candidate — feasibility, then deadline violations, then
/// makespan — i.e. without the name/seed tie-breaks. The warm-start
/// overlay's replacement gate: an equal-scoring warm candidate must keep
/// the plan winner (so a warm rerun matches the cold winner bit for bit),
/// which the full order's name tie-break would not guarantee.
static bool strictly_better_score(const StrategyResult& a, const StrategyResult& b) {
  if (a.feasible != b.feasible) {
    return a.feasible;
  }
  if (a.deadline_violations != b.deadline_violations) {
    return a.deadline_violations < b.deadline_violations;
  }
  return a.makespan < b.makespan;
}

void apply_cached_warm_start(const TaskGraph& tg, const ParallelSearchOptions& opts,
                             ParallelSearchResult& result) {
  if (!opts.warm_start || opts.cache == nullptr) {
    return;
  }
  const std::vector<std::vector<JobId>> starts =
      collect_warm_starts(*opts.cache, fingerprint(tg), tg);
  if (starts.empty()) {
    return;
  }
  result.warm_starts = starts.size();

  // One warm candidate per seed, evaluated serially (the plan fan-out is
  // the hot part; the overlay is a handful of local searches), ranked
  // among themselves by the regular candidate order. Never cached: the
  // cache key cannot capture the cache contents these depend on.
  std::optional<StrategyResult> best_warm;
  std::uint64_t best_warm_seed = 0;
  const CachedWarmStartStrategy warm_strategy;
  for (int s = 0; s < opts.seeds_per_strategy; ++s) {
    StrategyOptions sopts;
    sopts.processors = opts.processors;
    sopts.seed = opts.base_seed + static_cast<std::uint64_t>(s);
    sopts.max_iterations = opts.max_iterations;
    sopts.restarts = opts.restarts;
    sopts.use_fast_evaluator = opts.use_fast_evaluator;
    sopts.use_incremental = opts.use_incremental;
    // No visited-set: the overlay is serial and small, and its score
    // accounting should stay attributable to the overlay alone.
    sopts.warm_starts = starts;
    StrategyResult warm = warm_strategy.schedule(tg, sopts);
    warm.strategy = warm_strategy.name();
    ++result.warm_candidates;
    if (!best_warm.has_value() ||
        better_search_candidate(warm, sopts.seed, *best_warm, best_warm_seed)) {
      best_warm = std::move(warm);
      best_warm_seed = sopts.seed;
    }
  }

  if (!best_warm.has_value()) {
    return;  // seeds_per_strategy < 1 from a direct caller: nothing ran
  }
  if (strictly_better_score(*best_warm, result.best)) {
    result.best = std::move(*best_warm);
    result.seed = best_warm_seed;
    result.warm_start_won = true;
  }
}

ParallelSearchResult parallel_search(const TaskGraph& tg,
                                     const ParallelSearchOptions& opts,
                                     const StrategyRegistry& registry) {
  const std::vector<SearchCandidate> candidates =
      enumerate_search_candidates(opts, registry);
  CandidateEvaluation eval = evaluate_candidates(tg, opts, candidates, registry);

  std::size_t best_index = 0;
  for (std::size_t i = 1; i < eval.results.size(); ++i) {
    if (better_search_candidate(eval.results[i], candidates[i].seed,
                                eval.results[best_index], candidates[best_index].seed)) {
      best_index = i;
    }
  }

  ParallelSearchResult out;
  out.best = std::move(eval.results[best_index]);
  out.seed = candidates[best_index].seed;
  out.candidates = candidates.size();
  out.evaluated = eval.evaluated;
  out.cache_hits = eval.cache_hits;
  out.workers_used = eval.workers_used;
  out.evals_full = eval.evals_full;
  out.evals_incremental = eval.evals_incremental;
  out.evals_spliced = eval.evals_spliced;
  out.visited_skips = eval.visited_skips;
  apply_cached_warm_start(tg, opts, out);
  return out;
}

ParallelSearchResult quick_parallel_search(const TaskGraph& tg, std::int64_t processors,
                                           int max_iterations, int restarts) {
  ParallelSearchOptions opts;
  opts.processors = processors;
  opts.seeds_per_strategy = 1;
  opts.max_iterations = max_iterations;
  opts.restarts = restarts;
  return parallel_search(tg, opts);
}

}  // namespace sched
}  // namespace fppn
