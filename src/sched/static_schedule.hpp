// Static schedules (Def. 3.2) and their feasibility check.
//
// A static schedule maps every job J_i to a processor mu_i and a start
// time s_i (relative to the frame origin). It is feasible iff:
//   arrival:     s_i >= A_i
//   deadline:    e_i <= D_i           (e_i = s_i + C_i)
//   precedence:  (J_i, J_j) in E  =>  e_i <= s_j
//   mutex:       mu_i == mu_j  =>  e_i <= s_j or e_j <= s_i
//
// Determinism: StaticSchedule is a plain value type; every const query
// (feasibility, makespan, rendering) is a pure function of the placements
// and the task graph — exact rational comparisons, no iteration-order or
// platform dependence. Thread safety: const members are safe to call
// concurrently; place() requires external synchronization (the parallel
// search never shares a mutable schedule between workers).
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "rt/ids.hpp"
#include "rt/time.hpp"
#include "taskgraph/task_graph.hpp"

namespace fppn {

/// Placement of one job.
struct Placement {
  ProcessorId processor;
  Time start;
};

/// Why a schedule is infeasible.
enum class ViolationKind : std::uint8_t {
  kUnscheduled,   ///< job has no placement
  kArrival,       ///< starts before its arrival time
  kDeadline,      ///< completes after its deadline
  kPrecedence,    ///< predecessor finishes after successor starts
  kMutex,         ///< overlap on the same processor
};

[[nodiscard]] std::string to_string(ViolationKind k);

struct Violation {
  ViolationKind kind;
  JobId job;                      ///< offending job
  std::optional<JobId> other;     ///< partner for precedence/mutex
  // Facts behind the message, stored instead of an eagerly formatted
  // string (rational-to-string conversion is pure waste for callers that
  // only count violations): the offending time — the start for kArrival,
  // the end for kDeadline/kPrecedence — the crossed bound for
  // kPrecedence (the successor's start), and the processor for kMutex.
  Time when;
  Time bound;
  std::int64_t processor = -1;

  /// The human-readable explanation, built on demand ("ends 70 > D=60"
  /// style). Deterministic; never throws.
  [[nodiscard]] std::string detail(const TaskGraph& tg) const;
};

struct FeasibilityReport {
  std::vector<Violation> violations;

  [[nodiscard]] bool feasible() const noexcept { return violations.empty(); }
  [[nodiscard]] std::string to_string(const TaskGraph& tg) const;
};

/// Per-kind violation tallies — check_feasibility's counts without its
/// report (see StaticSchedule::count_violations).
struct ViolationCounts {
  std::size_t unscheduled = 0;
  std::size_t arrival = 0;
  std::size_t deadline = 0;
  std::size_t precedence = 0;
  std::size_t mutex = 0;

  [[nodiscard]] std::size_t total() const noexcept {
    return unscheduled + arrival + deadline + precedence + mutex;
  }
  [[nodiscard]] bool feasible() const noexcept { return total() == 0; }
};

class StaticSchedule {
 public:
  StaticSchedule() = default;
  /// Empty schedule for `job_count` jobs. Throws std::invalid_argument
  /// when processors < 1.
  StaticSchedule(std::size_t job_count, std::int64_t processors);

  [[nodiscard]] std::int64_t processor_count() const noexcept { return processors_; }
  [[nodiscard]] std::size_t job_count() const noexcept { return placements_.size(); }

  /// Sets (or overwrites) a job's placement. Throws std::invalid_argument
  /// when the job or processor id is out of range.
  void place(JobId job, ProcessorId proc, Time start);

  /// False for out-of-range ids as well as unplaced jobs; never throws.
  [[nodiscard]] bool is_placed(JobId job) const;
  /// Throws std::logic_error unless is_placed(job) — check it first when
  /// handling partial schedules.
  [[nodiscard]] const Placement& placement(JobId job) const;
  [[nodiscard]] Time start(JobId job) const { return placement(job).start; }
  [[nodiscard]] Time end(JobId job, const TaskGraph& tg) const {
    return placement(job).start + tg.job(job).wcet;
  }

  /// Jobs per processor, sorted by (start time, job id) — the static
  /// order the online policy (§IV) executes. Deterministic total order;
  /// never throws.
  [[nodiscard]] std::vector<std::vector<JobId>> per_processor_order() const;

  /// Latest completion time over all *placed* jobs (Time() when none).
  [[nodiscard]] Time makespan(const TaskGraph& tg) const;

  /// Busy time per processor (sum of placed WCETs).
  [[nodiscard]] std::vector<Duration> busy_time(const TaskGraph& tg) const;

  /// Full Def. 3.2 feasibility check, including a kUnscheduled violation
  /// per unplaced job. The violation list order is deterministic
  /// (per-job checks in job order, then precedence in edge order, then
  /// mutex per processor); never throws.
  [[nodiscard]] FeasibilityReport check_feasibility(const TaskGraph& tg) const;

  /// Counts-only fast mode of check_feasibility: the identical per-kind
  /// violation tallies with no report, no Violation records and no
  /// per-processor vector-of-vectors — the mutex pass sorts one flat
  /// index array instead. The choice for callers that only need scores
  /// (finalize_result, the local search's reference path). Deterministic;
  /// never throws.
  [[nodiscard]] ViolationCounts count_violations(const TaskGraph& tg) const;

  /// ASCII Gantt chart (Fig. 4 style), `cols` characters wide.
  [[nodiscard]] std::string to_gantt(const TaskGraph& tg, std::size_t cols = 100) const;

 private:
  /// Single source of truth for Def. 3.2's rules: walks every violation
  /// in the documented deterministic order (per-job checks in job order,
  /// then precedence in edge order, then mutex per processor) and hands
  /// each fully-populated Violation to `on`. check_feasibility and
  /// count_violations are thin adapters over this walk, so the two can
  /// never disagree on what counts as a violation. Defined in the .cpp
  /// (both instantiations live there).
  template <class OnViolation>
  void walk_violations(const TaskGraph& tg, OnViolation&& on) const;

  std::vector<std::optional<Placement>> placements_;
  std::int64_t processors_ = 0;
};

}  // namespace fppn
