#include "sched/sharded_search.hpp"

#include <filesystem>
#include <fstream>
#include <stdexcept>

#include "io/atomic_file.hpp"
#include "io/schedule_format.hpp"
#include "io/shard_manifest.hpp"

namespace fppn {
namespace sched {

namespace {

namespace fs = std::filesystem;

/// Shard result entries reuse the cache-entry file name, which encodes
/// the full candidate key — unique per candidate within one plan.
std::string entry_filename(const ShardPlan& plan, const ParallelSearchOptions& opts,
                           const SearchCandidate& candidate) {
  return make_cache_key(plan.graph_fingerprint, candidate.strategy,
                        strategy_options_for(opts, candidate))
      .filename();
}

}  // namespace

std::size_t ShardPlan::total_candidates() const {
  std::size_t total = 0;
  for (const std::vector<SearchCandidate>& shard : assignment) {
    total += shard.size();
  }
  return total;
}

ShardPlan make_shard_plan(const TaskGraph& tg, const ParallelSearchOptions& opts,
                          int shards, const StrategyRegistry& registry) {
  if (shards < 1) {
    throw std::invalid_argument("sharded_search: shards must be >= 1");
  }
  ShardPlan plan;
  plan.shards = shards;
  plan.graph_fingerprint = fingerprint(tg);
  plan.assignment.resize(static_cast<std::size_t>(shards));
  const std::vector<SearchCandidate> candidates =
      enumerate_search_candidates(opts, registry);
  for (std::size_t i = 0; i < candidates.size(); ++i) {
    plan.assignment[i % static_cast<std::size_t>(shards)].push_back(candidates[i]);
  }
  return plan;
}

ShardEvaluation evaluate_shard(const TaskGraph& tg, const ParallelSearchOptions& opts,
                               const ShardPlan& plan, int shard_index,
                               const std::string& shard_dir,
                               const StrategyRegistry& registry) {
  if (shard_index < 0 || shard_index >= plan.shards) {
    throw std::invalid_argument("sharded_search: shard index " +
                                std::to_string(shard_index) + " not in [0, " +
                                std::to_string(plan.shards) + ")");
  }
  io::ensure_directory(shard_dir, "sharded_search");
  const std::vector<SearchCandidate>& mine =
      plan.assignment[static_cast<std::size_t>(shard_index)];
  const CandidateEvaluation eval = evaluate_candidates(tg, opts, mine, registry);

  io::ShardManifest manifest;
  manifest.fingerprint = plan.graph_fingerprint;
  manifest.shard_index = shard_index;
  manifest.shard_count = plan.shards;
  manifest.processors = opts.processors;
  manifest.max_iterations = opts.max_iterations;
  manifest.restarts = opts.restarts;
  manifest.evaluated = eval.evaluated;
  manifest.cache_hits = eval.cache_hits;

  for (std::size_t i = 0; i < mine.size(); ++i) {
    io::ScheduleEntry entry;
    entry.fingerprint = plan.graph_fingerprint;
    entry.strategy = mine[i].strategy;
    entry.seed = mine[i].seed;
    entry.processors = opts.processors;
    entry.max_iterations = opts.max_iterations;
    entry.restarts = opts.restarts;
    entry.detail = eval.results[i].detail;
    entry.schedule = eval.results[i].schedule;
    const std::string file = entry_filename(plan, opts, mine[i]);
    io::write_file_atomic((fs::path(shard_dir) / file).string(),
                          io::write_schedule_entry(entry));
    manifest.candidates.push_back(io::ShardManifestEntry{mine[i].strategy,
                                                         mine[i].seed, file});
  }

  // The manifest is published last: its presence means "this shard is
  // complete", so the orchestrator/merge never reads a half-written shard.
  io::write_file_atomic(
      (fs::path(shard_dir) / io::shard_manifest_filename(shard_index, plan.shards))
          .string(),
      io::write_shard_manifest(manifest));

  return ShardEvaluation{eval.evaluated, eval.cache_hits};
}

ParallelSearchResult merge_shards(const TaskGraph& tg, const ParallelSearchOptions& opts,
                                  const ShardPlan& plan, const std::string& shard_dir) {
  struct Scored {
    StrategyResult result;
    std::uint64_t seed = 0;
  };
  std::vector<Scored> all;
  all.reserve(plan.total_candidates());
  std::size_t evaluated = 0;
  std::size_t cache_hits = 0;

  for (int s = 0; s < plan.shards; ++s) {
    const fs::path manifest_path =
        fs::path(shard_dir) / io::shard_manifest_filename(s, plan.shards);
    std::ifstream in(manifest_path);
    if (!in) {
      throw std::runtime_error("sharded_search: missing shard manifest '" +
                               manifest_path.string() + "'");
    }
    io::ShardManifest manifest;
    try {
      manifest = io::read_shard_manifest(in);
    } catch (const io::ParseError& e) {
      throw std::runtime_error("sharded_search: corrupt shard manifest '" +
                               manifest_path.string() + "': " + e.what());
    }

    // Validate the manifest against the plan before trusting any entry: a
    // stale or foreign shard directory must fail loudly, never quietly
    // change the candidate matrix.
    const std::vector<SearchCandidate>& expected =
        plan.assignment[static_cast<std::size_t>(s)];
    const auto reject = [&](const std::string& why) {
      throw std::runtime_error("sharded_search: shard manifest '" +
                               manifest_path.string() + "' " + why +
                               " (stale shard directory? clear it and re-run)");
    };
    if (manifest.fingerprint != plan.graph_fingerprint) {
      reject("was produced for a different task graph");
    }
    if (manifest.shard_index != s || manifest.shard_count != plan.shards) {
      reject("describes a different shard topology");
    }
    if (manifest.processors != opts.processors) {
      reject("was produced for a different processor count");
    }
    if (manifest.max_iterations != opts.max_iterations ||
        manifest.restarts != opts.restarts) {
      reject("was produced under a different search budget");
    }
    if (manifest.candidates.size() != expected.size()) {
      reject("lists " + std::to_string(manifest.candidates.size()) +
             " candidate(s), plan expects " + std::to_string(expected.size()));
    }
    for (std::size_t i = 0; i < expected.size(); ++i) {
      if (manifest.candidates[i].strategy != expected[i].strategy ||
          manifest.candidates[i].seed != expected[i].seed) {
        reject("candidate " + std::to_string(i) + " does not match the plan");
      }
    }
    evaluated += manifest.evaluated;
    cache_hits += manifest.cache_hits;

    for (std::size_t i = 0; i < manifest.candidates.size(); ++i) {
      const fs::path entry_path = fs::path(shard_dir) / manifest.candidates[i].file;
      std::ifstream entry_in(entry_path);
      if (!entry_in) {
        throw std::runtime_error("sharded_search: missing shard entry '" +
                                 entry_path.string() + "'");
      }
      io::ScheduleEntry entry;
      try {
        entry = io::read_schedule_entry(entry_in);
      } catch (const io::ParseError& e) {
        throw std::runtime_error("sharded_search: corrupt shard entry '" +
                                 entry_path.string() + "': " + e.what());
      }
      if (entry.fingerprint != plan.graph_fingerprint ||
          entry.strategy != expected[i].strategy || entry.seed != expected[i].seed ||
          entry.processors != opts.processors ||
          entry.max_iterations != opts.max_iterations ||
          entry.restarts != opts.restarts ||
          entry.schedule.job_count() != tg.job_count()) {
        throw std::runtime_error("sharded_search: shard entry '" +
                                 entry_path.string() +
                                 "' does not match the search it is merged into");
      }
      // Re-score against the query graph, exactly like a cache hit: a
      // shipped schedule ranks bit-identically to a fresh evaluation.
      Scored scored;
      scored.seed = entry.seed;
      scored.result.schedule = std::move(entry.schedule);
      scored.result.strategy = entry.strategy;
      scored.result.detail = std::move(entry.detail);
      finalize_result(tg, scored.result);
      all.push_back(std::move(scored));
    }
  }

  if (all.empty()) {
    throw std::runtime_error("sharded_search: no candidates across any shard");
  }
  std::size_t best = 0;
  for (std::size_t i = 1; i < all.size(); ++i) {
    if (better_search_candidate(all[i].result, all[i].seed, all[best].result,
                                all[best].seed)) {
      best = i;
    }
  }

  ParallelSearchResult out;
  out.best = std::move(all[best].result);
  out.seed = all[best].seed;
  out.candidates = all.size();
  out.evaluated = evaluated;
  out.cache_hits = cache_hits;
  out.workers_used = plan.shards;
  return out;
}

ParallelSearchResult sharded_search(const TaskGraph& tg,
                                    const ParallelSearchOptions& opts,
                                    const ShardedSearchOptions& sharding,
                                    const StrategyRegistry& registry) {
  if (sharding.shard_dir.empty()) {
    throw std::invalid_argument("sharded_search: shard_dir is required");
  }
  const ShardPlan plan = make_shard_plan(tg, opts, sharding.shards, registry);
  io::ensure_directory(sharding.shard_dir, "sharded_search");

  bool complete = true;
  for (int s = 0; s < plan.shards; ++s) {
    std::error_code ec;
    if (!fs::exists(fs::path(sharding.shard_dir) /
                        io::shard_manifest_filename(s, plan.shards),
                    ec)) {
      complete = false;
      break;
    }
  }
  if (!complete) {
    if (!sharding.launcher) {
      throw std::runtime_error(
          "sharded_search: shard directory '" + sharding.shard_dir +
          "' is missing shard manifests and no launcher was provided");
    }
    sharding.launcher(plan);
  }
  ParallelSearchResult result = merge_shards(tg, opts, plan, sharding.shard_dir);
  // Warm-start overlay at the orchestrator, after the plan-pure merge:
  // shard workers stay deterministic functions of the plan, and the
  // overlay's strict-improvement gate keeps the merged winner unless a
  // cached start genuinely beats it — same contract as parallel_search.
  apply_cached_warm_start(tg, opts, result);
  return result;
}

ShardLauncher inprocess_shard_launcher(const TaskGraph& tg,
                                       const ParallelSearchOptions& opts,
                                       const std::string& shard_dir,
                                       const StrategyRegistry& registry) {
  return [&tg, opts, shard_dir, &registry](const ShardPlan& plan) {
    for (int s = 0; s < plan.shards; ++s) {
      (void)evaluate_shard(tg, opts, plan, s, shard_dir, registry);
    }
  };
}

}  // namespace sched
}  // namespace fppn
