#include "sched/search.hpp"

#include "sched/evaluator.hpp"

namespace fppn {

ScheduleAttempt best_schedule(const TaskGraph& tg, std::int64_t processors) {
  // One compiled kernel scores every heuristic order; only the returned
  // attempt is materialized into a StaticSchedule. Scores, placements and
  // the first-feasible-in-order selection are bit-identical to the former
  // list_schedule + count_violations pass (the kernel's determinism
  // contract).
  sched::Evaluator kernel(tg, processors);
  std::optional<PriorityHeuristic> best_h;
  std::vector<JobId> best_order;
  sched::EvalScore best_score;
  for (const PriorityHeuristic h : all_heuristics()) {
    std::vector<JobId> order = schedule_priority(tg, h);
    const sched::EvalScore score = kernel.evaluate(order);
    if (score.deadline_violations == 0) {
      ScheduleAttempt attempt;
      attempt.heuristic = h;
      attempt.feasible = true;
      attempt.makespan = score.makespan;
      attempt.schedule = kernel.materialize(order);
      return attempt;
    }
    if (!best_h.has_value() ||
        score.deadline_violations < best_score.deadline_violations) {
      best_h = h;
      best_score = score;
      best_order = std::move(order);
    }
  }
  ScheduleAttempt attempt;
  attempt.heuristic = *best_h;
  attempt.feasible = false;
  attempt.makespan = best_score.makespan;
  attempt.schedule = kernel.materialize(best_order);
  return attempt;
}

MinProcessorsResult min_processors(const TaskGraph& tg, std::int64_t limit) {
  MinProcessorsResult result;
  const LoadResult load = task_graph_load(tg);
  result.lower_bound = std::max<std::int64_t>(1, load.min_processors());
  for (std::int64_t m = result.lower_bound; m <= limit; ++m) {
    ScheduleAttempt attempt = best_schedule(tg, m);
    if (attempt.feasible) {
      result.processors = m;
      result.attempt = std::move(attempt);
      return result;
    }
  }
  return result;
}

}  // namespace fppn
