#include "sched/search.hpp"

namespace fppn {

namespace {

std::size_t deadline_violation_count(const FeasibilityReport& report) {
  std::size_t count = 0;
  for (const Violation& v : report.violations) {
    if (v.kind == ViolationKind::kDeadline) {
      ++count;
    }
  }
  return count;
}

}  // namespace

ScheduleAttempt best_schedule(const TaskGraph& tg, std::int64_t processors) {
  std::optional<ScheduleAttempt> best;
  std::size_t best_violations = 0;
  for (const PriorityHeuristic h : all_heuristics()) {
    StaticSchedule s = list_schedule(tg, h, processors);
    const FeasibilityReport report = s.check_feasibility(tg);
    ScheduleAttempt attempt;
    attempt.heuristic = h;
    attempt.feasible = report.feasible();
    attempt.makespan = s.makespan(tg);
    attempt.schedule = std::move(s);
    if (attempt.feasible) {
      return attempt;
    }
    const std::size_t violations = deadline_violation_count(report);
    if (!best.has_value() || violations < best_violations) {
      best_violations = violations;
      best = std::move(attempt);
    }
  }
  return *best;
}

MinProcessorsResult min_processors(const TaskGraph& tg, std::int64_t limit) {
  MinProcessorsResult result;
  const LoadResult load = task_graph_load(tg);
  result.lower_bound = std::max<std::int64_t>(1, load.min_processors());
  for (std::int64_t m = result.lower_bound; m <= limit; ++m) {
    ScheduleAttempt attempt = best_schedule(tg, m);
    if (attempt.feasible) {
      result.processors = m;
      result.attempt = std::move(attempt);
      return result;
    }
  }
  return result;
}

}  // namespace fppn
