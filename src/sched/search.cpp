#include "sched/search.hpp"

namespace fppn {

ScheduleAttempt best_schedule(const TaskGraph& tg, std::int64_t processors) {
  std::optional<ScheduleAttempt> best;
  std::size_t best_violations = 0;
  for (const PriorityHeuristic h : all_heuristics()) {
    StaticSchedule s = list_schedule(tg, h, processors);
    const ViolationCounts counts = s.count_violations(tg);
    ScheduleAttempt attempt;
    attempt.heuristic = h;
    attempt.feasible = counts.feasible();
    attempt.makespan = s.makespan(tg);
    attempt.schedule = std::move(s);
    if (attempt.feasible) {
      return attempt;
    }
    const std::size_t violations = counts.deadline;
    if (!best.has_value() || violations < best_violations) {
      best_violations = violations;
      best = std::move(attempt);
    }
  }
  return *best;
}

MinProcessorsResult min_processors(const TaskGraph& tg, std::int64_t limit) {
  MinProcessorsResult result;
  const LoadResult load = task_graph_load(tg);
  result.lower_bound = std::max<std::int64_t>(1, load.min_processors());
  for (std::int64_t m = result.lower_bound; m <= limit; ++m) {
    ScheduleAttempt attempt = best_schedule(tg, m);
    if (attempt.feasible) {
      result.processors = m;
      result.attempt = std::move(attempt);
      return result;
    }
  }
  return result;
}

}  // namespace fppn
