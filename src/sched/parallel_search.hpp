// Parallel schedule search over the strategy registry.
//
// Fans a fixed candidate list — (strategy, seed) pairs: one candidate per
// non-seedable strategy, `seeds_per_strategy` per seedable one — out over a
// std::thread pool, evaluates each candidate independently, and selects
// the winner deterministically: feasibility first, then fewest deadline
// violations, then smallest makespan, then strategy name, then seed. The
// candidate list and the selection are both independent of the worker
// count, so the chosen schedule is bit-identical whether the search runs
// on 1 or 64 threads.
//
// With a ScheduleCache attached (ParallelSearchOptions::cache), candidates
// whose (fingerprint, strategy, seed, processors, budget) key is cached
// are answered from the cache instead of evaluated, and every freshly
// evaluated candidate — the winner included — is stored afterwards.
// Cached results are re-scored against the query graph, so a fully warm
// search evaluates zero candidates yet selects the bit-identical winner of
// the cold run (regression-tested in parallel_search_test.cpp).
//
// With warm_start additionally enabled, the search ends with a warm-start
// overlay (apply_cached_warm_start): cached feasible schedules for the
// same fingerprint are fed into optimize_priority as start points through
// the "cached-warm-start" strategy, and the best warm candidate replaces
// the winner only when strictly better on (feasibility, violations,
// makespan). A warm search therefore either matches the cold winner
// bit-identically or beats it — never a different-but-equal winner, and
// never worse. Warm-start results are not cached (their key could not
// capture the cache contents they depend on), and "cached-warm-start" is
// never enumerated as a plan candidate.
//
// This is the default scheduling path of fppn_tool and the benches.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "sched/registry.hpp"
#include "sched/schedule_cache.hpp"
#include "sched/strategy.hpp"

namespace fppn {
namespace sched {

struct ParallelSearchOptions {
  std::int64_t processors = 2;
  /// Worker threads; 0 = std::thread::hardware_concurrency().
  int workers = 0;
  /// Strategy names to try; empty = every strategy in the registry.
  /// Unknown names throw UnknownStrategyError before any work starts.
  std::vector<std::string> strategies;
  /// Seeds tried per *seedable* strategy: base_seed .. base_seed+n-1.
  int seeds_per_strategy = 3;
  std::uint64_t base_seed = 1;
  /// Budget forwarded to iterative strategies.
  int max_iterations = 2000;
  int restarts = 2;
  /// Optional schedule cache (not owned; must outlive the call). Null
  /// disables caching. The same cache may serve concurrent searches.
  ScheduleCache* cache = nullptr;
  /// Run the warm-start overlay after winner selection: cached feasible
  /// schedules for this graph seed extra local-search candidates
  /// ("cached-warm-start"), which replace the winner only when strictly
  /// better — see apply_cached_warm_start. Requires `cache`; ignored
  /// without one. Off by default because the overlay's outcome depends on
  /// the cache *contents* (monotonically: match or beat, never worse).
  bool warm_start = false;
  /// Forwarded to every candidate's StrategyOptions: evaluate iterative
  /// strategies through the sched::Evaluator kernel. Winners are
  /// bit-identical with the flag on or off (the kernel's determinism
  /// contract, regression-tested in evaluator_test.cpp); the reference
  /// path exists for differential tests and benches. Not part of any
  /// cache key.
  bool use_fast_evaluator = true;
  /// Forwarded to every candidate: score local-search moves through the
  /// kernel's checkpointed incremental API. Bit-identical winners either
  /// way; escape hatch for differential tests (`--no-incremental` in
  /// fppn_tool). Not part of any cache key.
  bool use_incremental = true;
  /// Share one sched::VisitedSet across the candidate workers of each
  /// evaluation wave: exact scores of already-seen SP orders are memoized
  /// so concurrent searches skip duplicate simulations. Hits only steer
  /// rejections (would-be acceptances are re-verified exactly), so
  /// winners, placements and iterations are bit-identical with the set on
  /// or off — regression-tested in evaluator_test.cpp. Ignored without
  /// use_fast_evaluator. Not part of any cache key.
  bool use_visited_set = true;
};

struct ParallelSearchResult {
  StrategyResult best;             ///< winning candidate, fully evaluated
  std::uint64_t seed = 0;          ///< seed of the winning candidate
  std::size_t candidates = 0;      ///< total plan candidates considered
  std::size_t evaluated = 0;       ///< candidates actually run (cache misses)
  std::size_t cache_hits = 0;      ///< candidates answered by the cache
  std::size_t warm_starts = 0;     ///< cached feasible schedules fed as starts
  std::size_t warm_candidates = 0; ///< warm-start candidates evaluated
  bool warm_start_won = false;     ///< overlay strictly beat the plan winner
  int workers_used = 1;
  // Aggregated evaluation accounting over every candidate run this search
  // (cache hits contribute nothing — they ran no simulation). Informational
  // only; excluded from every determinism contract.
  std::uint64_t evals_full = 0;         ///< from-scratch simulations
  std::uint64_t evals_incremental = 0;  ///< checkpoint-resumed move scores
  std::uint64_t evals_spliced = 0;      ///< moves spliced into a memoized suffix
  std::uint64_t visited_skips = 0;      ///< evaluations skipped via the visited-set
};

/// One (strategy, seed) cell of the search's candidate matrix. The pair is
/// unique within one candidate list, which is what makes the winner order
/// total (see better_search_candidate).
struct SearchCandidate {
  std::string strategy;
  std::uint64_t seed = 0;

  friend bool operator==(const SearchCandidate& a, const SearchCandidate& b) {
    return a.strategy == b.strategy && a.seed == b.seed;
  }
  friend bool operator!=(const SearchCandidate& a, const SearchCandidate& b) {
    return !(a == b);
  }
};

/// Builds the deterministic candidate list for (opts, registry): one
/// candidate per non-seedable strategy, opts.seeds_per_strategy per
/// seedable one, in the order of opts.strategies (or sorted registry
/// order when empty; "cached-warm-start" is excluded from that expansion
/// — its result depends on cache contents, so it joins searches through
/// the warm-start overlay, not the plan. Naming it in opts.strategies
/// explicitly still works and behaves like plain local search).
/// Single source of truth for the candidate matrix:
/// parallel_search evaluates exactly this list and the sharded search
/// (sched/sharded_search.hpp) partitions it. Throws std::invalid_argument
/// for bad options / an empty list and UnknownStrategyError for unknown
/// names, before any scheduling work starts.
[[nodiscard]] std::vector<SearchCandidate> enumerate_search_candidates(
    const ParallelSearchOptions& opts,
    const StrategyRegistry& registry = StrategyRegistry::global());

/// The StrategyOptions a candidate is evaluated with: processors and
/// budget from the search options, seed from the candidate. Also the
/// basis of the candidate's cache key. Deterministic; never throws.
[[nodiscard]] StrategyOptions strategy_options_for(const ParallelSearchOptions& opts,
                                                   const SearchCandidate& candidate);

/// The search's ranking: true when evaluated candidate (a, a_seed) beats
/// (b, b_seed). Feasibility first, then fewest deadline violations, then
/// smallest makespan (exact rational comparison — total and non-throwing
/// even for makespans whose cross products exceed 64 bits), then strategy
/// name, then seed. A strict total order over distinct (strategy, seed)
/// pairs, so the minimum is unique and independent of evaluation order —
/// shared by the in-process selection and the sharded merge so the two
/// can never disagree.
[[nodiscard]] bool better_search_candidate(const StrategyResult& a, std::uint64_t a_seed,
                                           const StrategyResult& b, std::uint64_t b_seed);

/// Outcome of evaluating one candidate list, results index-aligned with
/// the input.
struct CandidateEvaluation {
  std::vector<StrategyResult> results;
  std::size_t evaluated = 0;   ///< candidates actually run (cache misses)
  std::size_t cache_hits = 0;  ///< candidates answered by opts.cache
  int workers_used = 1;
  // Summed per-candidate evaluation counters (freshly run candidates only).
  std::uint64_t evals_full = 0;
  std::uint64_t evals_incremental = 0;
  std::uint64_t evals_spliced = 0;
  std::uint64_t visited_skips = 0;
};

/// Evaluates `candidates` on a worker pool (opts.workers threads, cache
/// probe/store through opts.cache) without selecting a winner — the
/// shared engine behind parallel_search and the sharded search worker.
/// An empty candidate list is allowed (a shard can be empty) and returns
/// an empty evaluation. Same determinism, thread-safety and throw
/// behavior as parallel_search.
[[nodiscard]] CandidateEvaluation evaluate_candidates(
    const TaskGraph& tg, const ParallelSearchOptions& opts,
    const std::vector<SearchCandidate>& candidates,
    const StrategyRegistry& registry = StrategyRegistry::global());

/// The warm-start overlay, shared by parallel_search and sharded_search:
/// collects every cached feasible schedule for fingerprint(tg) from
/// opts.cache, evaluates opts.seeds_per_strategy "cached-warm-start"
/// candidates with those start points (serially, never cached, ranked
/// among themselves by better_search_candidate), and replaces
/// result.best/seed only when the best warm candidate is *strictly*
/// better on the (feasibility, violations, makespan) score prefix — an
/// equal-scoring warm candidate keeps the plan winner, so a warm rerun
/// reports the bit-identical winner of the cold run unless it genuinely
/// improved on it. Fills result.warm_starts/warm_candidates/
/// warm_start_won. No-op when opts.warm_start is false, opts.cache is
/// null, or the cache holds no feasible schedule for this graph.
/// Deterministic for fixed (tg, opts, cache contents); rethrows strategy
/// exceptions.
void apply_cached_warm_start(const TaskGraph& tg, const ParallelSearchOptions& opts,
                             ParallelSearchResult& result);

/// Runs the search. Deterministic: for fixed (tg, opts, registry
/// contents), the returned winner is bit-identical regardless of worker
/// count, thread interleaving, or cache warmth (with warm_start enabled,
/// additionally a pure function of the cache contents — see
/// apply_cached_warm_start). Throws
/// std::invalid_argument when the registry/options yield no candidates,
/// processors < 1, or seeds_per_strategy < 1; UnknownStrategyError for an
/// unknown strategy name (before any work starts). Any exception thrown by
/// a strategy or by a cache store is rethrown on the calling thread.
/// Thread safety: safe to call concurrently, including with a shared
/// registry and a shared cache.
[[nodiscard]] ParallelSearchResult parallel_search(
    const TaskGraph& tg, const ParallelSearchOptions& opts = {},
    const StrategyRegistry& registry = StrategyRegistry::global());

/// Small-budget convenience sweep — one seed per strategy, a bounded
/// iteration budget, no cache — for callers (benches, examples) that just
/// need a good schedule for M processors quickly. Same determinism,
/// thread-safety and throw behavior as parallel_search.
[[nodiscard]] ParallelSearchResult quick_parallel_search(const TaskGraph& tg,
                                                         std::int64_t processors,
                                                         int max_iterations = 400,
                                                         int restarts = 1);

}  // namespace sched
}  // namespace fppn
