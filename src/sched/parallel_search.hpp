// Parallel schedule search over the strategy registry.
//
// Fans a fixed candidate list — (strategy, seed) pairs: one candidate per
// non-seedable strategy, `seeds_per_strategy` per seedable one — out over a
// std::thread pool, evaluates each candidate independently, and selects
// the winner deterministically: feasibility first, then fewest deadline
// violations, then smallest makespan, then strategy name, then seed. The
// candidate list and the selection are both independent of the worker
// count, so the chosen schedule is bit-identical whether the search runs
// on 1 or 64 threads.
//
// With a ScheduleCache attached (ParallelSearchOptions::cache), candidates
// whose (fingerprint, strategy, seed, processors, budget) key is cached
// are answered from the cache instead of evaluated, and every freshly
// evaluated candidate — the winner included — is stored afterwards.
// Cached results are re-scored against the query graph, so a fully warm
// search evaluates zero candidates yet selects the bit-identical winner of
// the cold run (regression-tested in parallel_search_test.cpp).
//
// This is the default scheduling path of fppn_tool and the benches.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "sched/registry.hpp"
#include "sched/schedule_cache.hpp"
#include "sched/strategy.hpp"

namespace fppn {
namespace sched {

struct ParallelSearchOptions {
  std::int64_t processors = 2;
  /// Worker threads; 0 = std::thread::hardware_concurrency().
  int workers = 0;
  /// Strategy names to try; empty = every strategy in the registry.
  /// Unknown names throw UnknownStrategyError before any work starts.
  std::vector<std::string> strategies;
  /// Seeds tried per *seedable* strategy: base_seed .. base_seed+n-1.
  int seeds_per_strategy = 3;
  std::uint64_t base_seed = 1;
  /// Budget forwarded to iterative strategies.
  int max_iterations = 2000;
  int restarts = 2;
  /// Optional schedule cache (not owned; must outlive the call). Null
  /// disables caching. The same cache may serve concurrent searches.
  ScheduleCache* cache = nullptr;
};

struct ParallelSearchResult {
  StrategyResult best;             ///< winning candidate, fully evaluated
  std::uint64_t seed = 0;          ///< seed of the winning candidate
  std::size_t candidates = 0;      ///< total candidates considered
  std::size_t evaluated = 0;       ///< candidates actually run (cache misses)
  std::size_t cache_hits = 0;      ///< candidates answered by the cache
  int workers_used = 1;
};

/// Runs the search. Deterministic: for fixed (tg, opts, registry
/// contents), the returned winner is bit-identical regardless of worker
/// count, thread interleaving, or cache warmth. Throws
/// std::invalid_argument when the registry/options yield no candidates,
/// processors < 1, or seeds_per_strategy < 1; UnknownStrategyError for an
/// unknown strategy name (before any work starts). Any exception thrown by
/// a strategy or by a cache store is rethrown on the calling thread.
/// Thread safety: safe to call concurrently, including with a shared
/// registry and a shared cache.
[[nodiscard]] ParallelSearchResult parallel_search(
    const TaskGraph& tg, const ParallelSearchOptions& opts = {},
    const StrategyRegistry& registry = StrategyRegistry::global());

/// Small-budget convenience sweep — one seed per strategy, a bounded
/// iteration budget, no cache — for callers (benches, examples) that just
/// need a good schedule for M processors quickly. Same determinism,
/// thread-safety and throw behavior as parallel_search.
[[nodiscard]] ParallelSearchResult quick_parallel_search(const TaskGraph& tg,
                                                         std::int64_t processors,
                                                         int max_iterations = 400,
                                                         int restarts = 1);

}  // namespace sched
}  // namespace fppn
