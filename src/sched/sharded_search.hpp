// Sharded multi-process schedule search: the parallel search's candidate
// matrix split across N worker processes (or N machines) and merged back
// with the exact in-process ranking.
//
// Pipeline:
//
//   make_shard_plan   deterministic round-robin split of the candidate
//                     list (enumerate_search_candidates) into N shards —
//                     pure function of (graph, options, shards, registry),
//                     so orchestrator and workers compute the same plan
//                     independently, with no plan file to ship
//   evaluate_shard    evaluates one shard (thread pool + optional
//                     ScheduleCache, exactly like parallel_search) and
//                     publishes its results into a shard directory: one
//                     schedule-format entry per candidate plus a
//                     "fppn-shards v1" manifest (io/shard_manifest.hpp)
//   merge_shards      reads every manifest + entry back, validates them
//                     against the plan (fingerprint, shard topology,
//                     budget, candidate identity — a stale or foreign
//                     shard directory is a hard error, never a silently
//                     different winner), re-scores each schedule against
//                     the query graph and selects the winner with
//                     better_search_candidate
//   sharded_search    orchestrates: plans, launches workers through a
//                     caller-supplied ShardLauncher (fppn_tool spawns
//                     `fppn_tool search-worker` processes; tests evaluate
//                     in-process) — or, when every manifest is already
//                     present, consumes the pre-populated directory
//                     without launching anything (multi-machine mode) —
//                     then merges
//
// Determinism contract (extends parallel_search's): the candidate list,
// the shard assignment and the ranking are all independent of the shard
// count, process scheduling and cache warmth, and cached results are
// re-scored on merge, so an N-shard run returns the bit-identical winner
// of the 1-process search, cold or warm (regression-tested in
// sharded_search_test.cpp).
//
// Thread safety: all functions are safe to call concurrently; distinct
// worker processes may share one cache directory (entry writes are
// atomic) but each shard index must be evaluated into a given shard
// directory by one worker at a time.
#pragma once

#include <functional>
#include <string>
#include <vector>

#include "sched/parallel_search.hpp"

namespace fppn {
namespace sched {

/// Deterministic assignment of the candidate matrix to shards.
struct ShardPlan {
  int shards = 1;
  std::uint64_t graph_fingerprint = 0;
  /// assignment[s] = the candidates shard s owns (round-robin over the
  /// global candidate list, so shards stay balanced; a shard may be empty
  /// when shards > candidates).
  std::vector<std::vector<SearchCandidate>> assignment;

  [[nodiscard]] std::size_t total_candidates() const;
};

/// Builds the plan for (tg, opts, shards). Pure function of its inputs —
/// a worker process recomputes the identical plan from the same .fppn
/// file and options. Throws std::invalid_argument for shards < 1 and
/// everything enumerate_search_candidates throws.
[[nodiscard]] ShardPlan make_shard_plan(
    const TaskGraph& tg, const ParallelSearchOptions& opts, int shards,
    const StrategyRegistry& registry = StrategyRegistry::global());

/// Cache accounting of one shard evaluation (mirrors the manifest's
/// "stats" line).
struct ShardEvaluation {
  std::size_t evaluated = 0;
  std::size_t cache_hits = 0;
};

/// Evaluates shard `shard_index` of the plan (evaluate_candidates: worker
/// threads per opts.workers, cache probe/store per opts.cache) and writes
/// one schedule-format entry per candidate plus the shard manifest into
/// `shard_dir` (created when missing, parent must exist — same loud-error
/// contract as ScheduleCache). All writes are atomic (temp + rename).
/// Throws std::invalid_argument for an out-of-range shard index,
/// std::runtime_error for directory/write failures, and rethrows strategy
/// exceptions like parallel_search.
ShardEvaluation evaluate_shard(const TaskGraph& tg, const ParallelSearchOptions& opts,
                               const ShardPlan& plan, int shard_index,
                               const std::string& shard_dir,
                               const StrategyRegistry& registry = StrategyRegistry::global());

/// Reads every shard's manifest and entries from `shard_dir`, validates
/// them against the plan and the query, re-scores every schedule against
/// `tg` (finalize_result — cached/shipped results rank bit-identically to
/// fresh ones) and selects the winner with better_search_candidate.
/// ParallelSearchResult::evaluated / cache_hits are summed from the shard
/// manifests; workers_used is the shard count. Throws std::runtime_error
/// for a missing/corrupt/mismatched manifest or entry — shard results are
/// search state, not a cache, so a bad shard directory is an error, never
/// a silently smaller search.
[[nodiscard]] ParallelSearchResult merge_shards(const TaskGraph& tg,
                                                const ParallelSearchOptions& opts,
                                                const ShardPlan& plan,
                                                const std::string& shard_dir);

/// Produces every shard's results for a plan, by whatever means the
/// caller owns: spawn worker processes, submit cluster jobs, or evaluate
/// in-process. Must not return until every shard manifest is published;
/// throw to abort the search.
using ShardLauncher = std::function<void(const ShardPlan& plan)>;

struct ShardedSearchOptions {
  int shards = 2;
  /// Directory the shards publish into. Required. Created when missing
  /// (parent must exist). Keep it distinct from any --cache-dir: shard
  /// results are per-run search state, the cache is long-lived.
  std::string shard_dir;
  /// How to run the workers. When null, the shard directory must already
  /// contain every manifest (pre-populated by other machines) or the
  /// search throws.
  ShardLauncher launcher;
};

/// The orchestrator: plans, ensures the shard directory exists, runs the
/// launcher (skipped when every shard manifest is already present — the
/// multi-machine consume mode), merges, and finally runs the warm-start
/// overlay (sched::apply_cached_warm_start, a no-op unless
/// opts.warm_start and opts.cache are set) — shard workers stay pure
/// functions of the plan; only the orchestrator consults the cache for
/// warm starts. Returns the bit-identical winner of
/// parallel_search(tg, opts, registry) for any shard count.
/// Throws std::invalid_argument for bad options, std::runtime_error for
/// directory problems, missing shards with no launcher, or merge
/// validation failures, plus anything the launcher throws.
[[nodiscard]] ParallelSearchResult sharded_search(
    const TaskGraph& tg, const ParallelSearchOptions& opts,
    const ShardedSearchOptions& sharding,
    const StrategyRegistry& registry = StrategyRegistry::global());

/// Launcher that evaluates every shard sequentially in this process —
/// for tests and single-machine fallbacks. Captures tg/registry by
/// reference; both must outlive the returned launcher.
[[nodiscard]] ShardLauncher inprocess_shard_launcher(
    const TaskGraph& tg, const ParallelSearchOptions& opts, const std::string& shard_dir,
    const StrategyRegistry& registry = StrategyRegistry::global());

}  // namespace sched
}  // namespace fppn
