// Schedule-priority optimization by local search (§III-B: "Different
// heuristics exist for optimizing priority order SP [8]").
//
// List scheduling maps an SP total order to a schedule; this module
// searches the order space: starting from the best heuristic order, it
// hill-climbs with job-reordering moves under the lexicographic objective
//   (deadline-violation count, makespan)
// and optional seeded random restarts. Deterministic for a given seed.
#pragma once

#include <cstdint>
#include <vector>

#include "sched/list_scheduler.hpp"

namespace fppn {

namespace sched {
class VisitedSet;
}  // namespace sched

struct LocalSearchOptions {
  std::int64_t processors = 2;
  int max_iterations = 2000;   ///< move evaluations per start point
  int restarts = 2;            ///< random restarts after the heuristic start
  std::uint64_t seed = 1;      ///< RNG seed (restart shuffles, move picks)
  /// Consecutive non-improving moves before a start point is abandoned
  /// (previously a hard-coded 200). The default keeps the historical
  /// behavior bit-identically.
  int stale_limit = 200;
  /// Evaluate candidates through the sched::Evaluator kernel
  /// (sched/evaluator.hpp) instead of the naive list_schedule +
  /// check_feasibility pipeline. Scores, placements and the returned
  /// result are bit-identical either way (the kernel's determinism
  /// contract); the flag exists so tests and benches can run the
  /// reference path side by side. Not part of any cache key.
  bool use_fast_evaluator = true;
  /// Score moves through the kernel's checkpointed incremental API
  /// (evaluate_baseline + evaluate_move) instead of a from-scratch
  /// evaluation per move. Scores and trajectories are bit-identical
  /// either way (the incremental layer is exact by construction); the
  /// flag exists for differential tests and as an escape hatch. Only
  /// meaningful when use_fast_evaluator is set. Not part of any cache
  /// key.
  bool use_incremental = true;
  /// Optional shared visited-set (sched/visited_set.hpp): memoized
  /// scores of already-seen orders skip re-evaluation. Hits may only
  /// steer rejections; a would-be acceptance is re-verified exactly, so
  /// the trajectory, winner and iterations_used are bit-identical with
  /// the set attached or not. The caller owns the set (parallel_search
  /// shares one across its workers). Ignored when use_fast_evaluator is
  /// false. Not part of any cache key.
  sched::VisitedSet* visited_set = nullptr;
  /// Extra SP start points evaluated alongside the plain heuristics when
  /// seeding the search (the warm-start hook: sched::parallel_search
  /// feeds priority orders recovered from cached feasible schedules in
  /// here). Each must be a permutation of all jobs — list_schedule throws
  /// std::invalid_argument otherwise. The search starts from the best of
  /// heuristics ∪ start_priorities and only accepts improvements, so
  /// adding start points can never make the result worse.
  std::vector<std::vector<JobId>> start_priorities;
};

struct LocalSearchResult {
  StaticSchedule schedule;
  std::vector<JobId> priority;     ///< the SP order that produced it
  std::size_t violations = 0;      ///< deadline violations of the best
  Time makespan;
  bool feasible = false;
  int iterations_used = 0;
  PriorityHeuristic start_heuristic = PriorityHeuristic::kAlapEdf;
  /// Index into LocalSearchOptions::start_priorities when one of the
  /// supplied start points beat every heuristic at seeding time; -1 when
  /// a plain heuristic won (start_heuristic names it).
  int start_priority_index = -1;
  // Evaluation accounting (informational; deliberately excluded from
  // every determinism contract — visited_skips depends on cross-worker
  // interleaving when the visited-set is shared).
  std::uint64_t full_evals = 0;         ///< from-scratch simulations
  std::uint64_t incremental_evals = 0;  ///< checkpoint-resumed move scores
  std::uint64_t spliced_evals = 0;      ///< moves that spliced the memoized suffix
  std::uint64_t visited_skips = 0;      ///< evaluations skipped via the visited-set
};

/// Optimizes SP for `tg`. Never returns a schedule worse than the best
/// plain heuristic (the search starts there and only accepts improvements).
///
/// Deterministic: a pure function of (tg, opts) — all randomness comes
/// from opts.seed, so equal inputs yield the bit-identical schedule on
/// any platform. Thread safety: no shared state; safe to call
/// concurrently. Throws std::invalid_argument when processors < 1 or the
/// graph is cyclic (via the underlying list scheduler).
[[nodiscard]] LocalSearchResult optimize_priority(const TaskGraph& tg,
                                                  const LocalSearchOptions& opts = {});

}  // namespace fppn
