#include "sched/visited_set.hpp"

#include <algorithm>

namespace fppn {
namespace sched {

namespace {

/// Slots probed before an insert gives up / a lookup reports a miss.
/// Bounds worst-case cost under clustering; a dropped insert only means
/// one more future re-evaluation.
constexpr std::size_t kProbeLimit = 64;

/// Minimum/maximum table sizes (slots). The cap bounds memory at ~20 MB;
/// beyond it the set degrades gracefully into a bounded cache.
constexpr std::size_t kMinSlots = 1024;
constexpr std::size_t kMaxSlots = std::size_t{1} << 19;

/// splitmix64 finalizer — the position/job mixer of the order hash.
std::uint64_t mix(std::uint64_t x) noexcept {
  x += 0x9E3779B97F4A7C15ull;
  x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9ull;
  x = (x ^ (x >> 27)) * 0x94D049BB133111EBull;
  return x ^ (x >> 31);
}

}  // namespace

VisitedSet::VisitedSet(std::uint64_t seed, std::size_t expected_orders)
    : seed_(seed) {
  const std::size_t target = expected_orders >= kMaxSlots / 2
                                 ? kMaxSlots
                                 : std::max(kMinSlots, expected_orders * 2);
  std::size_t want = kMinSlots;
  while (want < target) {
    want <<= 1;
  }
  slots_ = std::make_unique<Slot[]>(want);
  mask_ = want - 1;
}

std::uint64_t VisitedSet::hash_order(const std::vector<JobId>& order) const noexcept {
  // XOR of per-position mixes: each term bakes in both the position and
  // the job id, so the combined hash is order-sensitive while a swap
  // updates only two terms (not exploited yet — the full pass is already
  // a tiny fraction of one evaluation).
  std::uint64_t h = mix(seed_ ^ (0x51ED2701A9B4D7E5ull + order.size()));
  for (std::size_t r = 0; r < order.size(); ++r) {
    h ^= mix(seed_ ^ (r * 0xC2B2AE3D27D4EB4Full) ^
             ((order[r].value() + 1) * 0x165667B19E3779F9ull));
  }
  return h;
}

bool VisitedSet::lookup(std::uint64_t hash, EvalScore& out) const {
  std::size_t idx = hash & mask_;
  for (std::size_t probe = 0; probe < kProbeLimit; ++probe, idx = (idx + 1) & mask_) {
    const Slot& slot = slots_[idx];
    const std::uint32_t state = slot.state.load(std::memory_order_acquire);
    if (state == 0) {
      // Writers never pass an empty slot without claiming it, and states
      // never revert — no entry for `hash` can exist beyond this point.
      break;
    }
    if (state == 2 && slot.key.load(std::memory_order_relaxed) == hash) {
      out.deadline_violations = static_cast<std::size_t>(slot.violations);
      out.makespan = Time(Rational(slot.makespan_num, slot.makespan_den));
      hits_.fetch_add(1, std::memory_order_relaxed);
      return true;
    }
    // state 1 (claimed, payload in flight) or a different key: probe on.
  }
  misses_.fetch_add(1, std::memory_order_relaxed);
  return false;
}

void VisitedSet::insert(std::uint64_t hash, const EvalScore& score) {
  std::size_t idx = hash & mask_;
  for (std::size_t probe = 0; probe < kProbeLimit; ++probe, idx = (idx + 1) & mask_) {
    Slot& slot = slots_[idx];
    std::uint32_t state = slot.state.load(std::memory_order_acquire);
    if (state == 2 && slot.key.load(std::memory_order_relaxed) == hash) {
      return;  // already published (a racing duplicate is equally benign)
    }
    if (state == 0) {
      std::uint32_t expected = 0;
      if (slot.state.compare_exchange_strong(expected, 1, std::memory_order_acq_rel,
                                             std::memory_order_acquire)) {
        slot.key.store(hash, std::memory_order_relaxed);
        slot.violations = static_cast<std::uint64_t>(score.deadline_violations);
        slot.makespan_num = score.makespan.value().num();
        slot.makespan_den = score.makespan.value().den();
        slot.state.store(2, std::memory_order_release);
        inserts_.fetch_add(1, std::memory_order_relaxed);
        return;
      }
      // Lost the claim race; the slot now belongs to another writer.
    }
  }
  dropped_.fetch_add(1, std::memory_order_relaxed);
}

}  // namespace sched
}  // namespace fppn
