#include "sched/priorities.hpp"

#include <algorithm>
#include <stdexcept>

#include "graph/algorithms.hpp"
#include "taskgraph/analysis.hpp"

namespace fppn {

std::string to_string(PriorityHeuristic h) {
  switch (h) {
    case PriorityHeuristic::kAlapEdf:
      return "alap-edf";
    case PriorityHeuristic::kBLevel:
      return "b-level";
    case PriorityHeuristic::kDeadlineMonotonic:
      return "deadline-monotonic";
    case PriorityHeuristic::kArrivalOrder:
      return "arrival-order";
  }
  return "?";
}

const std::vector<PriorityHeuristic>& all_heuristics() {
  static const std::vector<PriorityHeuristic> kAll = {
      PriorityHeuristic::kAlapEdf, PriorityHeuristic::kBLevel,
      PriorityHeuristic::kDeadlineMonotonic, PriorityHeuristic::kArrivalOrder};
  return kAll;
}

std::vector<Duration> b_levels(const TaskGraph& tg) {
  const auto order = topological_sort(tg.precedence());
  if (!order.has_value()) {
    throw std::invalid_argument("b_levels: task graph is cyclic");
  }
  std::vector<Duration> level(tg.job_count());
  for (auto it = order->rbegin(); it != order->rend(); ++it) {
    const JobId i{it->value()};
    Duration best;
    for (const JobId j : tg.successors(i)) {
      best = std::max(best, level[j.value()]);
    }
    level[i.value()] = best + tg.job(i).wcet;
  }
  return level;
}

std::vector<JobId> schedule_priority(const TaskGraph& tg, PriorityHeuristic heuristic) {
  const std::size_t n = tg.job_count();
  std::vector<JobId> order(n);
  for (std::size_t i = 0; i < n; ++i) {
    order[i] = JobId(i);
  }
  const auto tie = [&tg](JobId a, JobId b) {
    const Job& ja = tg.job(a);
    const Job& jb = tg.job(b);
    if (ja.arrival != jb.arrival) {
      return ja.arrival < jb.arrival;
    }
    return a < b;
  };
  switch (heuristic) {
    case PriorityHeuristic::kAlapEdf: {
      const auto alap = alap_times(tg);
      std::sort(order.begin(), order.end(), [&](JobId a, JobId b) {
        if (alap[a.value()] != alap[b.value()]) {
          return alap[a.value()] < alap[b.value()];
        }
        return tie(a, b);
      });
      break;
    }
    case PriorityHeuristic::kBLevel: {
      const auto levels = b_levels(tg);
      std::sort(order.begin(), order.end(), [&](JobId a, JobId b) {
        if (levels[a.value()] != levels[b.value()]) {
          return levels[a.value()] > levels[b.value()];  // longer path first
        }
        return tie(a, b);
      });
      break;
    }
    case PriorityHeuristic::kDeadlineMonotonic: {
      std::sort(order.begin(), order.end(), [&](JobId a, JobId b) {
        const Duration da = tg.job(a).deadline - tg.job(a).arrival;
        const Duration db = tg.job(b).deadline - tg.job(b).arrival;
        if (da != db) {
          return da < db;
        }
        return tie(a, b);
      });
      break;
    }
    case PriorityHeuristic::kArrivalOrder: {
      std::sort(order.begin(), order.end(), tie);
      break;
    }
  }
  return order;
}

}  // namespace fppn
