#include "fppn/exec_state.hpp"

#include <stdexcept>

namespace fppn {

JobContext::JobContext(ExecutionState& state, ProcessId self, std::int64_t k, Time now)
    : state_(state), self_(self), k_(k), now_(now) {}

const Network& JobContext::network() const noexcept { return state_.network(); }

Value JobContext::read(ChannelId c) { return state_.do_read(self_, k_, c); }

Value JobContext::read(const std::string& channel_name) {
  const auto c = state_.network().find_channel(channel_name);
  if (!c.has_value()) {
    throw std::invalid_argument("read: unknown channel '" + channel_name + "'");
  }
  return read(*c);
}

void JobContext::write(ChannelId c, Value v) {
  state_.do_write(self_, k_, now_, c, std::move(v));
}

void JobContext::write(const std::string& channel_name, Value v) {
  const auto c = state_.network().find_channel(channel_name);
  if (!c.has_value()) {
    throw std::invalid_argument("write: unknown channel '" + channel_name + "'");
  }
  write(*c, std::move(v));
}

ExecutionState::ExecutionState(const Network& net, InputScripts inputs)
    : net_(&net), inputs_(std::move(inputs)) {
  channels_.reserve(net.channel_count());
  for (std::size_t i = 0; i < net.channel_count(); ++i) {
    channels_.emplace_back(net.channel(ChannelId{i}).kind);
  }
  behaviors_.reserve(net.process_count());
  for (std::size_t i = 0; i < net.process_count(); ++i) {
    behaviors_.push_back(net.process(ProcessId{i}).make_behavior());
  }
  job_counts_.assign(net.process_count(), 0);
  for (const auto& [c, samples] : inputs_) {
    if (net.channel(c).scope != ChannelScope::kExternalInput) {
      throw std::invalid_argument("input script bound to non-input channel '" +
                                  net.channel(c).name + "'");
    }
    (void)samples;
  }
}

std::int64_t ExecutionState::run_job(ProcessId p, Time now) {
  (void)net_->process(p);  // range check
  const std::int64_t k = ++job_counts_[p.value()];
  trace_.push(JobStartAction{p, k});
  JobContext ctx(*this, p, k, now);
  behaviors_[p.value()]->on_job(ctx);
  trace_.push(JobEndAction{p, k});
  return k;
}

void ExecutionState::advance_time(Time t) {
  if (time_started_ && t < current_time_) {
    throw std::logic_error("execution time moved backwards");
  }
  if (!time_started_ || t != current_time_) {
    trace_.push(WaitAction{t});
  }
  current_time_ = t;
  time_started_ = true;
}

std::int64_t ExecutionState::job_count(ProcessId p) const {
  (void)net_->process(p);
  return job_counts_[p.value()];
}

Value ExecutionState::do_read(ProcessId p, std::int64_t k, ChannelId c) {
  const ChannelDecl& decl = net_->channel(c);
  Value v;
  switch (decl.scope) {
    case ChannelScope::kInternal:
      if (decl.reader != p) {
        throw std::logic_error("process '" + net_->process(p).name +
                               "' is not the reader of channel '" + decl.name + "'");
      }
      v = channels_[c.value()].read();
      break;
    case ChannelScope::kExternalInput: {
      if (decl.reader != p) {
        throw std::logic_error("process '" + net_->process(p).name +
                               "' is not the reader of input '" + decl.name + "'");
      }
      // x?[k]I: sample k (1-based) of the input script.
      const auto it = inputs_.find(c);
      if (it == inputs_.end() ||
          static_cast<std::size_t>(k) > it->second.size() || k < 1) {
        v = no_data();
      } else {
        v = it->second[static_cast<std::size_t>(k - 1)];
      }
      break;
    }
    case ChannelScope::kExternalOutput:
      throw std::logic_error("reading from external output channel '" + decl.name +
                             "'");
  }
  trace_.push(ReadAction{p, k, c, v});
  return v;
}

void ExecutionState::do_write(ProcessId p, std::int64_t k, Time now, ChannelId c,
                              Value v) {
  const ChannelDecl& decl = net_->channel(c);
  switch (decl.scope) {
    case ChannelScope::kInternal:
      if (decl.writer != p) {
        throw std::logic_error("process '" + net_->process(p).name +
                               "' is not the writer of channel '" + decl.name + "'");
      }
      channels_[c.value()].write(v);
      // Buffered channels are bounded: a correct schedule's buffer-reuse
      // precedence edges keep at most `capacity` tokens in flight. Trip
      // loudly if an execution order ever violates that.
      if (decl.is_buffered() &&
          channels_[c.value()].buffered() > static_cast<std::size_t>(decl.capacity)) {
        throw std::logic_error("buffered channel '" + decl.name +
                               "' overflowed its capacity of " +
                               std::to_string(decl.capacity));
      }
      break;
    case ChannelScope::kExternalOutput:
      if (decl.writer != p) {
        throw std::logic_error("process '" + net_->process(p).name +
                               "' is not the writer of output '" + decl.name + "'");
      }
      channels_[c.value()].write(v);
      outputs_[c].push_back(OutputSample{k, now, v});
      break;
    case ChannelScope::kExternalInput:
      throw std::logic_error("writing to external input channel '" + decl.name + "'");
  }
  trace_.push(WriteAction{p, k, c, std::move(v)});
}

ExecutionHistories ExecutionState::histories() const {
  ExecutionHistories h;
  for (std::size_t i = 0; i < channels_.size(); ++i) {
    const ChannelId c{i};
    if (!channels_[i].history().empty()) {
      h.channel_writes.emplace(c, channels_[i].history());
    }
  }
  h.output_samples = outputs_;
  return h;
}

const ChannelRuntime& ExecutionState::channel_state(ChannelId c) const {
  (void)net_->channel(c);
  return channels_[c.value()];
}

}  // namespace fppn
