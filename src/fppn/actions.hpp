// Execution traces (§II-A).
//
// The paper defines execution as a trace over actions Act: waits w(tau),
// channel reads x?c, channel writes x!c, external-I/O samples x?[k]I,
// x![k]O. We record job boundaries too so traces can be projected per
// process/job. Traces are the object the zero-delay semantics produces and
// the object the determinism tests compare (after projecting away waits
// and job interleaving).
#pragma once

#include <cstdint>
#include <iosfwd>
#include <string>
#include <variant>
#include <vector>

#include "fppn/value.hpp"
#include "rt/ids.hpp"
#include "rt/time.hpp"

namespace fppn {

/// w(tau): model time advances to tau.
struct WaitAction {
  Time time;
};

/// Start of the k-th job execution run of a process.
struct JobStartAction {
  ProcessId process;
  std::int64_t k = 0;
};

/// End of the k-th job execution run of a process.
struct JobEndAction {
  ProcessId process;
  std::int64_t k = 0;
};

/// x?c or x?[k]I: a read; `value` is what the read returned.
struct ReadAction {
  ProcessId process;
  std::int64_t k = 0;       ///< job index performing the read
  ChannelId channel;
  Value value;
};

/// x!c or x![k]O: a write of `value`.
struct WriteAction {
  ProcessId process;
  std::int64_t k = 0;
  ChannelId channel;
  Value value;
};

using Action =
    std::variant<WaitAction, JobStartAction, JobEndAction, ReadAction, WriteAction>;

/// A full execution trace alpha in Act*.
class ActionTrace {
 public:
  void push(Action a) { actions_.push_back(std::move(a)); }

  [[nodiscard]] const std::vector<Action>& actions() const noexcept { return actions_; }
  [[nodiscard]] std::size_t size() const noexcept { return actions_.size(); }
  [[nodiscard]] bool empty() const noexcept { return actions_.empty(); }

  /// Only the write actions on a given channel, in order — the channel
  /// history Prop. 2.1 speaks about.
  [[nodiscard]] std::vector<WriteAction> writes_to(ChannelId c) const;

  /// Only the actions of a given process.
  [[nodiscard]] std::vector<Action> of_process(ProcessId p) const;

  void clear() { actions_.clear(); }

 private:
  std::vector<Action> actions_;
};

class Network;  // fwd

/// Renders "w(0) InputA[1]:read(in)=5 InputA[1]:write(c1)=25 ..." style
/// text; one action per line when `multiline`.
[[nodiscard]] std::string trace_to_string(const ActionTrace& trace, const Network& net,
                                          bool multiline = true);

}  // namespace fppn
