// Process automata (Def. 2.2).
//
// A process is formally a deterministic automaton
//   (l_p0, L_p, X_p, X_p0, I_p, O_p, A_p, T_p)
// whose transitions carry a guard over the internal variables and an
// action: a variable assignment, a channel read or a channel write. A job
// execution run is a nonempty sequence of steps returning to the initial
// location — the "subroutine" view.
//
// This module gives the automaton a first-class representation plus an
// interpreter (AutomatonBehavior) so processes can be specified either as
// native C++ behaviors or as explicit automata; the TA translation
// (src/ta) consumes the explicit form. Determinism of the automaton (at
// most one enabled transition per step) is enforced at run time.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <string>
#include <variant>
#include <vector>

#include "fppn/exec_state.hpp"
#include "fppn/value.hpp"

namespace fppn {

/// Variable valuation X_p -> Value.
using VarMap = std::map<std::string, Value>;

/// Guard: predicate over the variables (G_p in Def. 2.2).
using Guard = std::function<bool(const VarMap&)>;

/// x := f(X): assigns the result of `compute` to variable `target`.
struct AssignAction {
  std::string target;
  std::function<Value(const VarMap&)> compute;
};

/// x ? c: reads channel `channel` into variable `target`.
struct ReadChannelAction {
  std::string target;
  std::string channel;
};

/// x ! c: writes the current value of `source` to `channel`.
struct WriteChannelAction {
  std::string source;
  std::string channel;
};

using AutomatonAction =
    std::variant<AssignAction, ReadChannelAction, WriteChannelAction>;

/// One element of the transition relation T_p.
struct Transition {
  std::string from;
  Guard guard;                      ///< nullptr == always enabled
  std::vector<AutomatonAction> actions;
  std::string to;
};

/// The automaton structure. Locations are strings ("source line numbers"
/// in the paper's reading); `initial` is l_p0; `initial_vars` is X_p0.
class Automaton {
 public:
  Automaton(std::string initial_location, VarMap initial_vars);

  /// Declares a location (the initial location is declared implicitly).
  Automaton& location(const std::string& name);

  /// Adds a transition; endpoints are auto-declared.
  Automaton& transition(Transition t);

  /// Convenience: unguarded transition with one action.
  Automaton& step(const std::string& from, AutomatonAction action,
                  const std::string& to);

  [[nodiscard]] const std::string& initial_location() const noexcept {
    return initial_;
  }
  [[nodiscard]] const VarMap& initial_vars() const noexcept { return initial_vars_; }
  [[nodiscard]] const std::vector<Transition>& transitions() const noexcept {
    return transitions_;
  }
  [[nodiscard]] const std::vector<std::string>& locations() const noexcept {
    return locations_;
  }

  /// Transitions leaving `loc`, in declaration order.
  [[nodiscard]] std::vector<const Transition*> from(const std::string& loc) const;

 private:
  std::string initial_;
  VarMap initial_vars_;
  std::vector<std::string> locations_;
  std::vector<Transition> transitions_;
};

/// Interprets an Automaton as a ProcessBehavior: each on_job() performs one
/// job execution run — steps from the initial location until it returns
/// there (or throws after `max_steps` to catch diverging automata).
/// Throws std::logic_error when zero or more than one transition is
/// enabled (the automaton must be deterministic).
class AutomatonBehavior final : public ProcessBehavior {
 public:
  explicit AutomatonBehavior(std::shared_ptr<const Automaton> automaton,
                             std::size_t max_steps = 10'000);

  void on_job(JobContext& ctx) override;

  [[nodiscard]] const VarMap& vars() const noexcept { return vars_; }

 private:
  std::shared_ptr<const Automaton> automaton_;
  VarMap vars_;
  std::size_t max_steps_;
};

/// Behavior factory running a shared automaton definition (each execution
/// gets a fresh interpreter with X_p0).
[[nodiscard]] BehaviorFactory automaton_behavior(std::shared_ptr<const Automaton> a,
                                                 std::size_t max_steps = 10'000);

}  // namespace fppn
