#include "fppn/actions.hpp"

#include <sstream>

#include "fppn/network.hpp"

namespace fppn {

std::vector<WriteAction> ActionTrace::writes_to(ChannelId c) const {
  std::vector<WriteAction> out;
  for (const Action& a : actions_) {
    if (const auto* w = std::get_if<WriteAction>(&a); w != nullptr && w->channel == c) {
      out.push_back(*w);
    }
  }
  return out;
}

std::vector<Action> ActionTrace::of_process(ProcessId p) const {
  std::vector<Action> out;
  for (const Action& a : actions_) {
    const bool match = std::visit(
        [&](const auto& act) {
          using T = std::decay_t<decltype(act)>;
          if constexpr (std::is_same_v<T, WaitAction>) {
            return false;
          } else {
            return act.process == p;
          }
        },
        a);
    if (match) {
      out.push_back(a);
    }
  }
  return out;
}

std::string trace_to_string(const ActionTrace& trace, const Network& net,
                            bool multiline) {
  std::ostringstream os;
  const char* sep = multiline ? "\n" : " ";
  bool first = true;
  for (const Action& a : trace.actions()) {
    if (!first) {
      os << sep;
    }
    first = false;
    std::visit(
        [&](const auto& act) {
          using T = std::decay_t<decltype(act)>;
          if constexpr (std::is_same_v<T, WaitAction>) {
            os << "w(" << act.time << ")";
          } else if constexpr (std::is_same_v<T, JobStartAction>) {
            os << net.process(act.process).name << "[" << act.k << "]:start";
          } else if constexpr (std::is_same_v<T, JobEndAction>) {
            os << net.process(act.process).name << "[" << act.k << "]:end";
          } else if constexpr (std::is_same_v<T, ReadAction>) {
            os << net.process(act.process).name << "[" << act.k << "]:read("
               << net.channel(act.channel).name << ")=" << act.value;
          } else if constexpr (std::is_same_v<T, WriteAction>) {
            os << net.process(act.process).name << "[" << act.k << "]:write("
               << net.channel(act.channel).name << ")=" << act.value;
          }
        },
        a);
  }
  return os.str();
}

}  // namespace fppn
