#include "fppn/channel.hpp"

namespace fppn {

std::string to_string(ChannelKind k) {
  switch (k) {
    case ChannelKind::kFifo:
      return "fifo";
    case ChannelKind::kBlackboard:
      return "blackboard";
  }
  return "?";
}

std::string to_string(ChannelScope s) {
  switch (s) {
    case ChannelScope::kInternal:
      return "internal";
    case ChannelScope::kExternalInput:
      return "external-input";
    case ChannelScope::kExternalOutput:
      return "external-output";
  }
  return "?";
}

Value ChannelRuntime::read() {
  if (kind_ == ChannelKind::kFifo) {
    if (fifo_.empty()) {
      return no_data();
    }
    Value v = std::move(fifo_.front());
    fifo_.pop_front();
    return v;
  }
  return board_.has_value() ? *board_ : no_data();
}

void ChannelRuntime::write(Value v) {
  history_.push_back(v);
  if (kind_ == ChannelKind::kFifo) {
    fifo_.push_back(std::move(v));
  } else {
    board_ = std::move(v);
  }
}

Value ChannelRuntime::peek() const {
  if (kind_ == ChannelKind::kFifo) {
    return fifo_.empty() ? no_data() : fifo_.front();
  }
  return board_.has_value() ? *board_ : no_data();
}

std::size_t ChannelRuntime::buffered() const noexcept {
  if (kind_ == ChannelKind::kFifo) {
    return fifo_.size();
  }
  return board_.has_value() ? 1 : 0;
}

void ChannelRuntime::reset() {
  fifo_.clear();
  board_.reset();
  history_.clear();
}

}  // namespace fppn
