// Mutable execution state of an FPPN run and the JobContext handed to
// process behaviors.
//
// ExecutionState owns: one ChannelRuntime per internal channel, one fresh
// behavior instance per process, per-process job counters k, the external
// input scripts (sample arrays indexed by k, per §II-A: the k-th job run
// reads sample [k]) and the recorded trace/histories.
//
// Both semantics engines drive the same state object: the zero-delay
// interpreter (semantics.hpp) runs jobs back-to-back at invocation
// instants; the online runtimes (src/runtime) run the same jobs at real
// start times — determinism (Prop. 2.1) says the histories must agree,
// and the tests check exactly that.
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "fppn/actions.hpp"
#include "fppn/channel.hpp"
#include "fppn/histories.hpp"
#include "fppn/network.hpp"

namespace fppn {

/// External input scripts: for each external input channel, the sample
/// array; the k-th job run of the reader gets sample index k (1-based).
using InputScripts = std::map<ChannelId, std::vector<Value>>;

class ExecutionState;

/// The capability object a job run uses to interact with channels. It
/// enforces the access discipline of Def. 2.1/2.2: a process may only read
/// channels it is the declared reader of and only write channels it is the
/// declared writer of; external inputs are sampled by job index.
class JobContext {
 public:
  JobContext(ExecutionState& state, ProcessId self, std::int64_t k, Time now);

  /// The process this job belongs to.
  [[nodiscard]] ProcessId self() const noexcept { return self_; }
  /// 1-based job index (invocation count) of this run.
  [[nodiscard]] std::int64_t job_index() const noexcept { return k_; }
  /// Invocation time stamp of this job.
  [[nodiscard]] Time now() const noexcept { return now_; }
  [[nodiscard]] const Network& network() const noexcept;

  /// Non-blocking read (x?c for internal channels, x?[k]I for external
  /// inputs). Returns no_data() when nothing is available. Throws
  /// std::logic_error when this process is not the channel's reader.
  Value read(ChannelId c);
  Value read(const std::string& channel_name);

  /// Write (x!c / x![k]O). Throws std::logic_error when this process is
  /// not the channel's writer.
  void write(ChannelId c, Value v);
  void write(const std::string& channel_name, Value v);

 private:
  ExecutionState& state_;
  ProcessId self_;
  std::int64_t k_;
  Time now_;
};

class ExecutionState {
 public:
  /// Fresh state: channels empty, behaviors newly constructed, counters 0.
  explicit ExecutionState(const Network& net, InputScripts inputs = {});

  [[nodiscard]] const Network& network() const noexcept { return *net_; }

  /// Runs one job execution run of process p at model time `now`,
  /// incrementing its invocation count. Returns the job index k used.
  std::int64_t run_job(ProcessId p, Time now);

  /// Records w(t) in the trace (time must not decrease).
  void advance_time(Time t);

  /// Number of completed job runs of p so far.
  [[nodiscard]] std::int64_t job_count(ProcessId p) const;

  [[nodiscard]] const ActionTrace& trace() const noexcept { return trace_; }

  /// Snapshot of all channel histories + external output samples.
  [[nodiscard]] ExecutionHistories histories() const;

  [[nodiscard]] const ChannelRuntime& channel_state(ChannelId c) const;

 private:
  friend class JobContext;

  Value do_read(ProcessId p, std::int64_t k, ChannelId c);
  void do_write(ProcessId p, std::int64_t k, Time now, ChannelId c, Value v);

  const Network* net_;
  std::vector<ChannelRuntime> channels_;                    // internal channels only
  std::vector<std::unique_ptr<ProcessBehavior>> behaviors_; // per process
  std::vector<std::int64_t> job_counts_;                    // per process
  InputScripts inputs_;
  std::map<ChannelId, std::vector<OutputSample>> outputs_;
  ActionTrace trace_;
  Time current_time_;
  bool time_started_ = false;
};

}  // namespace fppn
