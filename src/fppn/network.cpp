#include "fppn/network.hpp"

#include <algorithm>
#include <map>
#include <set>
#include <sstream>
#include <stdexcept>

#include "graph/algorithms.hpp"

namespace fppn {

BehaviorFactory behavior(std::function<void(JobContext&)> fn) {
  return [fn = std::move(fn)]() { return std::make_unique<LambdaBehavior>(fn); };
}

BehaviorFactory no_op_behavior() {
  return behavior([](JobContext&) {});
}

const ProcessDecl& Network::process(ProcessId p) const {
  if (!p.is_valid() || p.value() >= processes_.size()) {
    throw std::invalid_argument("network: process id out of range");
  }
  return processes_[p.value()];
}

const ChannelDecl& Network::channel(ChannelId c) const {
  if (!c.is_valid() || c.value() >= channels_.size()) {
    throw std::invalid_argument("network: channel id out of range");
  }
  return channels_[c.value()];
}

std::optional<ProcessId> Network::find_process(const std::string& name) const {
  for (std::size_t i = 0; i < processes_.size(); ++i) {
    if (processes_[i].name == name) {
      return ProcessId{i};
    }
  }
  return std::nullopt;
}

std::optional<ChannelId> Network::find_channel(const std::string& name) const {
  for (std::size_t i = 0; i < channels_.size(); ++i) {
    if (channels_[i].name == name) {
      return ChannelId{i};
    }
  }
  return std::nullopt;
}

bool Network::has_priority(ProcessId p1, ProcessId p2) const {
  return fp_.has_edge(NodeId(p1.value()), NodeId(p2.value()));
}

bool Network::priority_related(ProcessId p1, ProcessId p2) const {
  return has_priority(p1, p2) || has_priority(p2, p1);
}

std::vector<ChannelId> Network::internal_channels_of(ProcessId p) const {
  std::vector<ChannelId> out;
  for (std::size_t i = 0; i < channels_.size(); ++i) {
    const ChannelDecl& c = channels_[i];
    if (c.scope == ChannelScope::kInternal && (c.writer == p || c.reader == p)) {
      out.push_back(ChannelId{i});
    }
  }
  return out;
}

std::optional<ProcessId> Network::user_of(ProcessId p) const {
  if (process(p).event.kind != EventKind::kSporadic) {
    return std::nullopt;
  }
  std::set<ProcessId> counterparts;
  for (const ChannelId c : internal_channels_of(p)) {
    const ChannelDecl& decl = channel(c);
    counterparts.insert(decl.writer == p ? decl.reader : decl.writer);
  }
  if (counterparts.size() != 1) {
    return std::nullopt;
  }
  const ProcessId u = *counterparts.begin();
  const EventSpec& uspec = process(u).event;
  if (uspec.kind != EventKind::kPeriodic) {
    return std::nullopt;
  }
  if (uspec.period > process(p).event.period) {
    return std::nullopt;  // T_u(p) <= T_p required (§III-A)
  }
  return u;
}

bool Network::in_schedulable_subclass(std::string* why) const {
  for (std::size_t i = 0; i < processes_.size(); ++i) {
    const ProcessId p{i};
    if (processes_[i].event.kind != EventKind::kSporadic) {
      continue;
    }
    if (!user_of(p).has_value()) {
      if (why != nullptr) {
        *why = "sporadic process '" + processes_[i].name +
               "' lacks a unique periodic user with T_u <= T_p";
      }
      return false;
    }
  }
  return true;
}

Duration Network::hyperperiod() const {
  std::string why;
  if (!in_schedulable_subclass(&why)) {
    throw std::logic_error("hyperperiod undefined: " + why);
  }
  Duration h;
  bool first = true;
  for (std::size_t i = 0; i < processes_.size(); ++i) {
    const ProcessId p{i};
    const EventSpec& spec = processes_[i].event;
    // In PN' a sporadic process contributes its server period = T_user.
    const Duration period = spec.kind == EventKind::kSporadic
                                ? process(*user_of(p)).event.period
                                : spec.period;
    h = first ? period : Duration::lcm(h, period);
    first = false;
  }
  if (first) {
    throw std::logic_error("hyperperiod undefined: empty network");
  }
  return h;
}

std::vector<ChannelId> Network::external_inputs() const {
  std::vector<ChannelId> out;
  for (std::size_t i = 0; i < channels_.size(); ++i) {
    if (channels_[i].scope == ChannelScope::kExternalInput) {
      out.push_back(ChannelId{i});
    }
  }
  return out;
}

std::vector<ChannelId> Network::external_outputs() const {
  std::vector<ChannelId> out;
  for (std::size_t i = 0; i < channels_.size(); ++i) {
    if (channels_[i].scope == ChannelScope::kExternalOutput) {
      out.push_back(ChannelId{i});
    }
  }
  return out;
}

std::string Network::to_dot() const {
  std::ostringstream os;
  os << "digraph fppn {\n  rankdir=LR;\n";
  for (std::size_t i = 0; i < processes_.size(); ++i) {
    const ProcessDecl& p = processes_[i];
    os << "  p" << i << " [shape=" << (p.event.kind == EventKind::kSporadic ? "octagon" : "box")
       << ", label=\"" << p.name << "\\n";
    if (p.event.burst > 1) {
      os << p.event.burst << " per ";
    }
    os << p.event.period.to_string() << "ms\"];\n";
  }
  for (const ChannelDecl& c : channels_) {
    if (c.scope != ChannelScope::kInternal) {
      continue;
    }
    os << "  p" << c.writer.value() << " -> p" << c.reader.value() << " [label=\""
       << c.name << "\"" << (c.kind == ChannelKind::kBlackboard ? ", style=bold" : "")
       << "];\n";
  }
  for (const auto& [u, v] : fp_.edges()) {
    os << "  p" << u.value() << " -> p" << v.value()
       << " [style=dashed, color=gray, constraint=false];\n";
  }
  os << "}\n";
  return os.str();
}

// ---------------------------------------------------------------- builder

ProcessId NetworkBuilder::add_process(const std::string& name, EventSpec spec,
                                      BehaviorFactory behavior_factory) {
  if (name.empty()) {
    throw std::invalid_argument("process name must not be empty");
  }
  if (net_.find_process(name).has_value()) {
    throw std::invalid_argument("duplicate process name '" + name + "'");
  }
  if (!behavior_factory) {
    throw std::invalid_argument("process '" + name + "' needs a behavior factory");
  }
  spec.validate();
  ProcessDecl decl;
  decl.name = name;
  decl.event = spec;
  decl.make_behavior = std::move(behavior_factory);
  net_.processes_.push_back(std::move(decl));
  net_.fp_.add_node();
  return ProcessId{net_.processes_.size() - 1};
}

ProcessId NetworkBuilder::periodic(const std::string& name, Duration period,
                                   Duration deadline, BehaviorFactory b) {
  return add_process(name, EventSpec{EventKind::kPeriodic, 1, period, deadline},
                     std::move(b));
}

ProcessId NetworkBuilder::multi_periodic(const std::string& name, int burst,
                                         Duration period, Duration deadline,
                                         BehaviorFactory b) {
  return add_process(name, EventSpec{EventKind::kPeriodic, burst, period, deadline},
                     std::move(b));
}

ProcessId NetworkBuilder::sporadic(const std::string& name, int burst, Duration period,
                                   Duration deadline, BehaviorFactory b) {
  return add_process(name, EventSpec{EventKind::kSporadic, burst, period, deadline},
                     std::move(b));
}

ChannelId NetworkBuilder::channel(const std::string& name, ChannelKind kind,
                                  ProcessId writer, ProcessId reader) {
  if (net_.find_channel(name).has_value()) {
    throw std::invalid_argument("duplicate channel name '" + name + "'");
  }
  (void)net_.process(writer);  // range checks
  (void)net_.process(reader);
  if (writer == reader) {
    throw std::invalid_argument("channel '" + name + "': writer == reader");
  }
  ChannelDecl decl;
  decl.name = name;
  decl.kind = kind;
  decl.scope = ChannelScope::kInternal;
  decl.writer = writer;
  decl.reader = reader;
  net_.channels_.push_back(std::move(decl));
  const ChannelId id{net_.channels_.size() - 1};
  net_.processes_[writer.value()].writes.push_back(id);
  net_.processes_[reader.value()].reads.push_back(id);
  return id;
}

ChannelId NetworkBuilder::buffered_fifo(const std::string& name, ProcessId writer,
                                        ProcessId reader, int capacity) {
  if (capacity < 2) {
    throw std::invalid_argument("buffered channel '" + name +
                                "': capacity must be >= 2 (1 is a plain fifo)");
  }
  const ChannelId id = channel(name, ChannelKind::kFifo, writer, reader);
  net_.channels_[id.value()].capacity = capacity;
  // Determinism of buffered pairs relies on the writer running first at
  // simultaneous invocations: install the FP edge here.
  fp_edges_.emplace_back(writer, reader);
  return id;
}

ChannelId NetworkBuilder::external_input(const std::string& name, ProcessId reader) {
  if (net_.find_channel(name).has_value()) {
    throw std::invalid_argument("duplicate channel name '" + name + "'");
  }
  (void)net_.process(reader);
  ChannelDecl decl;
  decl.name = name;
  decl.kind = ChannelKind::kFifo;
  decl.scope = ChannelScope::kExternalInput;
  decl.reader = reader;
  net_.channels_.push_back(std::move(decl));
  const ChannelId id{net_.channels_.size() - 1};
  net_.processes_[reader.value()].reads.push_back(id);
  return id;
}

ChannelId NetworkBuilder::external_output(const std::string& name, ProcessId writer) {
  if (net_.find_channel(name).has_value()) {
    throw std::invalid_argument("duplicate channel name '" + name + "'");
  }
  (void)net_.process(writer);
  ChannelDecl decl;
  decl.name = name;
  decl.kind = ChannelKind::kFifo;
  decl.scope = ChannelScope::kExternalOutput;
  decl.writer = writer;
  net_.channels_.push_back(std::move(decl));
  const ChannelId id{net_.channels_.size() - 1};
  net_.processes_[writer.value()].writes.push_back(id);
  return id;
}

NetworkBuilder& NetworkBuilder::priority(ProcessId higher, ProcessId lower) {
  (void)net_.process(higher);
  (void)net_.process(lower);
  if (higher == lower) {
    throw std::invalid_argument("functional priority: self-edge rejected");
  }
  fp_edges_.emplace_back(higher, lower);
  return *this;
}

NetworkBuilder& NetworkBuilder::auto_rate_monotonic_priorities() {
  // Record requested edges first; resolution happens in build(), after all
  // channels exist.
  auto_rm_ = true;
  return *this;
}

Network NetworkBuilder::build() && {
  // Install explicit FP edges.
  for (const auto& [hi, lo] : fp_edges_) {
    net_.fp_.add_edge(NodeId(hi.value()), NodeId(lo.value()));
  }
  // Rate-monotonic completion for channel-sharing pairs lacking an edge.
  if (auto_rm_) {
    for (const ChannelDecl& c : net_.channels_) {
      if (c.scope != ChannelScope::kInternal) {
        continue;
      }
      const ProcessId w = c.writer;
      const ProcessId r = c.reader;
      if (net_.priority_related(w, r)) {
        continue;
      }
      const Duration tw = net_.process(w).event.period;
      const Duration tr = net_.process(r).event.period;
      const bool writer_higher = tw < tr || (tw == tr && w < r);
      if (writer_higher) {
        net_.fp_.add_edge(NodeId(w.value()), NodeId(r.value()));
      } else {
        net_.fp_.add_edge(NodeId(r.value()), NodeId(w.value()));
      }
    }
  }
  // FP must be a DAG (Def. 2.1).
  if (!is_acyclic(net_.fp_)) {
    throw std::invalid_argument("functional priority graph is cyclic");
  }
  // FP must relate every channel-sharing pair:
  // (p1, p2) in C  =>  p1 -> p2 or p2 -> p1.
  for (const ChannelDecl& c : net_.channels_) {
    if (c.scope != ChannelScope::kInternal) {
      continue;
    }
    if (!net_.priority_related(c.writer, c.reader)) {
      throw std::invalid_argument(
          "channel '" + c.name + "' connects processes '" +
          net_.process(c.writer).name + "' and '" + net_.process(c.reader).name +
          "' with no functional priority between them");
    }
  }
  return std::move(net_);
}

}  // namespace fppn
