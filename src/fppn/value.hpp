// The channel alphabet (Sigma_c in Def. 2.1).
//
// Channels carry Values: a closed variant sufficient for the paper's two
// case studies (complex samples for the FFT, sensor records for the FMS)
// plus an explicit "no data available" element returned when reading an
// empty FIFO or an uninitialized blackboard (§II-A).
#pragma once

#include <cstdint>
#include <iosfwd>
#include <string>
#include <variant>
#include <vector>

namespace fppn {

/// A data sample on a channel. std::monostate is the non-availability
/// indicator the paper's non-blocking reads return.
using Value = std::variant<std::monostate, std::int64_t, double, std::string,
                           std::vector<double>>;

/// The "no data" element.
[[nodiscard]] inline Value no_data() { return Value{std::monostate{}}; }

[[nodiscard]] inline bool has_data(const Value& v) {
  return !std::holds_alternative<std::monostate>(v);
}

/// Human-readable rendering, e.g. "none", "42", "3.5", "\"abc\"", "[1, 2]".
[[nodiscard]] std::string value_to_string(const Value& v);

std::ostream& operator<<(std::ostream& os, const Value& v);

/// Deterministic content hash (used by determinism property tests to
/// fingerprint whole channel histories cheaply).
[[nodiscard]] std::size_t value_hash(const Value& v);

}  // namespace fppn
