#include "fppn/automaton.hpp"

#include <algorithm>
#include <stdexcept>

namespace fppn {

Automaton::Automaton(std::string initial_location, VarMap initial_vars)
    : initial_(std::move(initial_location)), initial_vars_(std::move(initial_vars)) {
  locations_.push_back(initial_);
}

Automaton& Automaton::location(const std::string& name) {
  if (std::find(locations_.begin(), locations_.end(), name) == locations_.end()) {
    locations_.push_back(name);
  }
  return *this;
}

Automaton& Automaton::transition(Transition t) {
  location(t.from);
  location(t.to);
  transitions_.push_back(std::move(t));
  return *this;
}

Automaton& Automaton::step(const std::string& from, AutomatonAction action,
                           const std::string& to) {
  Transition t;
  t.from = from;
  t.guard = nullptr;
  t.actions.push_back(std::move(action));
  t.to = to;
  return transition(std::move(t));
}

std::vector<const Transition*> Automaton::from(const std::string& loc) const {
  std::vector<const Transition*> out;
  for (const Transition& t : transitions_) {
    if (t.from == loc) {
      out.push_back(&t);
    }
  }
  return out;
}

AutomatonBehavior::AutomatonBehavior(std::shared_ptr<const Automaton> automaton,
                                     std::size_t max_steps)
    : automaton_(std::move(automaton)),
      vars_(automaton_->initial_vars()),
      max_steps_(max_steps) {}

namespace {

void apply_action(const AutomatonAction& action, VarMap& vars, JobContext& ctx) {
  std::visit(
      [&](const auto& a) {
        using T = std::decay_t<decltype(a)>;
        if constexpr (std::is_same_v<T, AssignAction>) {
          vars[a.target] = a.compute(vars);
        } else if constexpr (std::is_same_v<T, ReadChannelAction>) {
          vars[a.target] = ctx.read(a.channel);
        } else if constexpr (std::is_same_v<T, WriteChannelAction>) {
          const auto it = vars.find(a.source);
          if (it == vars.end()) {
            throw std::logic_error("automaton write from undefined variable '" +
                                   a.source + "'");
          }
          ctx.write(a.channel, it->second);
        }
      },
      action);
}

}  // namespace

void AutomatonBehavior::on_job(JobContext& ctx) {
  std::string loc = automaton_->initial_location();
  std::size_t steps = 0;
  // A job execution run is *nonempty*: take at least one step, stop upon
  // returning to the initial location.
  do {
    const Transition* chosen = nullptr;
    for (const Transition* t : automaton_->from(loc)) {
      const bool enabled = !t->guard || t->guard(vars_);
      if (enabled) {
        if (chosen != nullptr) {
          throw std::logic_error("automaton nondeterministic at location '" + loc +
                                 "'");
        }
        chosen = t;
      }
    }
    if (chosen == nullptr) {
      throw std::logic_error("automaton stuck at location '" + loc +
                             "' (no enabled transition)");
    }
    for (const AutomatonAction& a : chosen->actions) {
      apply_action(a, vars_, ctx);
    }
    loc = chosen->to;
    if (++steps > max_steps_) {
      throw std::logic_error("automaton exceeded max steps in one job run");
    }
  } while (loc != automaton_->initial_location());
}

BehaviorFactory automaton_behavior(std::shared_ptr<const Automaton> a,
                                   std::size_t max_steps) {
  return [a = std::move(a), max_steps]() {
    return std::make_unique<AutomatonBehavior>(a, max_steps);
  };
}

}  // namespace fppn
