#include "fppn/value.hpp"

#include <functional>
#include <ostream>
#include <sstream>

namespace fppn {

std::string value_to_string(const Value& v) {
  struct Visitor {
    std::string operator()(std::monostate) const { return "none"; }
    std::string operator()(std::int64_t x) const { return std::to_string(x); }
    std::string operator()(double x) const {
      std::ostringstream os;
      os << x;
      return os.str();
    }
    std::string operator()(const std::string& s) const { return "\"" + s + "\""; }
    std::string operator()(const std::vector<double>& xs) const {
      std::ostringstream os;
      os << "[";
      for (std::size_t i = 0; i < xs.size(); ++i) {
        if (i > 0) os << ", ";
        os << xs[i];
      }
      os << "]";
      return os.str();
    }
  };
  return std::visit(Visitor{}, v);
}

std::ostream& operator<<(std::ostream& os, const Value& v) {
  return os << value_to_string(v);
}

std::size_t value_hash(const Value& v) {
  constexpr std::size_t kMix = 0x9e3779b97f4a7c15ULL;
  struct Visitor {
    std::size_t operator()(std::monostate) const { return 0x5bd1e995U; }
    std::size_t operator()(std::int64_t x) const {
      return std::hash<std::int64_t>{}(x);
    }
    std::size_t operator()(double x) const { return std::hash<double>{}(x); }
    std::size_t operator()(const std::string& s) const {
      return std::hash<std::string>{}(s);
    }
    std::size_t operator()(const std::vector<double>& xs) const {
      std::size_t h = xs.size();
      for (const double x : xs) {
        h ^= std::hash<double>{}(x) + kMix + (h << 6) + (h >> 2);
      }
      return h;
    }
  };
  const std::size_t payload = std::visit(Visitor{}, v);
  return payload ^ (v.index() * kMix);
}

}  // namespace fppn
