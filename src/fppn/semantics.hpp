// Zero-delay semantics of an FPPN (§II-B).
//
// Given the invocation sequence (t_1, P_1), (t_2, P_2), ... the trace is
//     Trace(PN) = w(t_1) . alpha_1 . w(t_2) . alpha_2 ...
// where alpha_i concatenates the job execution runs of the multiset P_i in
// an order in which p1 -> p2 (functional priority) implies p1's jobs run
// before p2's. Jobs take zero time; this is the reference semantics that
// the real-time runtimes must be functionally equivalent to.
//
// For processes *not* related by FP the order is semantically irrelevant
// (they share no channel — validated at build time); we still fix a
// deterministic tie-break so traces are reproducible, and expose the
// tie-break as a parameter so property tests can verify that the observable
// histories do not depend on it.
#pragma once

#include <cstdint>
#include <functional>

#include "fppn/event.hpp"
#include "fppn/exec_state.hpp"
#include "fppn/network.hpp"

namespace fppn {

/// Tie-break between FP-unrelated processes invoked at the same instant.
enum class SimultaneityTieBreak : std::uint8_t {
  kByProcessId,         ///< smaller process id first (default, reproducible)
  kByReverseProcessId,  ///< larger first (used to *test* order-independence)
};

struct ZeroDelayResult {
  ActionTrace trace;
  ExecutionHistories histories;
  std::size_t jobs_executed = 0;
};

/// Runs the zero-delay semantics for `plan` with external `inputs`.
/// Throws std::invalid_argument if a simultaneous invocation group cannot
/// be ordered (impossible for a valid FPPN: FP is a DAG).
[[nodiscard]] ZeroDelayResult run_zero_delay(
    const Network& net, const InvocationPlan& plan, const InputScripts& inputs = {},
    SimultaneityTieBreak tie_break = SimultaneityTieBreak::kByProcessId);

/// The job execution order the zero-delay semantics uses for one
/// simultaneous group: FP-topological, bursts of the same process kept
/// adjacent in invocation order. Exposed for task-graph derivation
/// (§III-A step 2 simulates exactly this order).
[[nodiscard]] std::vector<ProcessId> order_simultaneous(
    const Network& net, const std::vector<ProcessId>& invoked_multiset,
    SimultaneityTieBreak tie_break = SimultaneityTieBreak::kByProcessId);

}  // namespace fppn
