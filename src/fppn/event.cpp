#include "fppn/event.hpp"

#include <algorithm>
#include <stdexcept>

#include "fppn/network.hpp"

namespace fppn {

std::string to_string(EventKind k) {
  switch (k) {
    case EventKind::kPeriodic:
      return "periodic";
    case EventKind::kSporadic:
      return "sporadic";
  }
  return "?";
}

void EventSpec::validate() const {
  if (burst < 1) {
    throw std::invalid_argument("event spec: burst size must be >= 1");
  }
  if (!period.is_positive()) {
    throw std::invalid_argument("event spec: period must be positive");
  }
  if (!deadline.is_positive()) {
    throw std::invalid_argument("event spec: deadline must be positive");
  }
}

bool satisfies_sporadic_constraint(const std::vector<Time>& sorted_times, int burst,
                                   const Duration& period) {
  if (burst < 1 || !period.is_positive()) {
    return false;
  }
  const std::size_t m = static_cast<std::size_t>(burst);
  for (std::size_t i = 0; i + m < sorted_times.size(); ++i) {
    // If m+1 events fit strictly inside a window of length `period` the
    // half-closed-window bound of m is violated.
    if (sorted_times[i + m] - sorted_times[i] < period) {
      return false;
    }
  }
  return true;
}

SporadicScript::SporadicScript(std::vector<Time> times, int burst,
                               const Duration& period)
    : times_(std::move(times)) {
  std::sort(times_.begin(), times_.end());
  for (const Time& t : times_) {
    if (t < Time()) {
      throw std::invalid_argument("sporadic script: negative time stamp");
    }
  }
  if (!satisfies_sporadic_constraint(times_, burst, period)) {
    throw std::invalid_argument(
        "sporadic script violates the (m, T) sporadic constraint");
  }
}

SporadicScript SporadicScript::random(int burst, const Duration& period, Time horizon,
                                      std::uint64_t seed) {
  if (burst < 1 || !period.is_positive()) {
    throw std::invalid_argument("sporadic random: bad burst/period");
  }
  std::mt19937_64 rng(seed);
  std::vector<Time> times;
  // Anchor-based generation: window anchors a_0 = 0, a_{j+1} >= a_j + T;
  // inside window j place 0..m events at distinct multiples of T/(4m).
  // Successive windows are separated by >= T so no window of length T can
  // span events of more than two anchors... we keep it simpler and safe:
  // place at most m events per anchor and advance anchors by exactly T or
  // more, then validate.
  Time anchor;
  std::uniform_int_distribution<int> count_dist(0, burst);
  std::uniform_int_distribution<std::int64_t> jitter_dist(0, 3);
  const Duration slot = period / Rational(4 * static_cast<std::int64_t>(burst));
  while (anchor < horizon) {
    const int n = count_dist(rng);
    for (int j = 0; j < n; ++j) {
      const Time t = anchor + slot * Rational(j);
      if (t < horizon) {
        times.push_back(t);
      }
    }
    anchor += period + slot * Rational(jitter_dist(rng));
  }
  return SporadicScript(std::move(times), burst, period);
}

void InvocationPlan::add(Time t, ProcessId p, int count) {
  if (t < Time()) {
    throw std::invalid_argument("invocation plan: negative time");
  }
  if (count < 1) {
    throw std::invalid_argument("invocation plan: count must be >= 1");
  }
  auto& vec = by_time_[t];
  for (int i = 0; i < count; ++i) {
    vec.push_back(p);
  }
  total_ += static_cast<std::size_t>(count);
}

std::vector<InvocationGroup> InvocationPlan::groups() const {
  std::vector<InvocationGroup> out;
  out.reserve(by_time_.size());
  for (const auto& [t, procs] : by_time_) {
    InvocationGroup g;
    g.time = t;
    g.processes = procs;
    std::sort(g.processes.begin(), g.processes.end());
    out.push_back(std::move(g));
  }
  return out;
}

InvocationPlan InvocationPlan::build(const Network& net, Time horizon,
                                     const std::map<ProcessId, SporadicScript>& scripts) {
  InvocationPlan plan;
  for (std::size_t i = 0; i < net.process_count(); ++i) {
    const ProcessId p{i};
    const EventSpec& spec = net.process(p).event;
    if (spec.kind == EventKind::kPeriodic) {
      for (Time t; t < horizon; t += spec.period) {
        plan.add(t, p, spec.burst);
      }
    } else {
      const auto it = scripts.find(p);
      if (it == scripts.end()) {
        continue;  // sporadic process that never fires
      }
      for (const Time& t : it->second.times()) {
        if (t < horizon) {
          plan.add(t, p);
        }
      }
    }
  }
  return plan;
}

}  // namespace fppn
