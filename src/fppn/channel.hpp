// Channel types and runtime channel state (CT_c in Def. 2.1, §II-A).
//
// The paper defines two default channel types with *non-blocking* access:
//  - FIFO: a queue; reading an empty FIFO yields the non-availability value,
//  - blackboard: remembers the last written value, readable many times;
//    reading an uninitialized blackboard yields non-availability.
// ChannelRuntime also records the full written-value history, which is what
// Prop. 2.1 (determinism) quantifies over and what the tests compare.
#pragma once

#include <cstddef>
#include <deque>
#include <optional>
#include <string>
#include <vector>

#include "fppn/value.hpp"

namespace fppn {

enum class ChannelKind : std::uint8_t { kFifo, kBlackboard };

[[nodiscard]] std::string to_string(ChannelKind k);

/// Where a channel sits in the network: between two processes, or at the
/// boundary (I and O in Def. 2.1, partitioned over event generators).
enum class ChannelScope : std::uint8_t { kInternal, kExternalInput, kExternalOutput };

[[nodiscard]] std::string to_string(ChannelScope s);

/// Mutable state of one internal channel during an execution.
class ChannelRuntime {
 public:
  explicit ChannelRuntime(ChannelKind kind) : kind_(kind) {}

  [[nodiscard]] ChannelKind kind() const noexcept { return kind_; }

  /// Non-blocking read. FIFO: pops and returns the head, or no_data() when
  /// empty. Blackboard: returns the last written value without consuming
  /// it, or no_data() when never written.
  [[nodiscard]] Value read();

  /// Appends (FIFO) or overwrites (blackboard) and records the history.
  void write(Value v);

  /// Peek without consuming (FIFO head or blackboard value).
  [[nodiscard]] Value peek() const;

  /// Number of values currently buffered (FIFO size; blackboard: 0 or 1).
  [[nodiscard]] std::size_t buffered() const noexcept;

  /// Every value ever written, in order — the channel's output history in
  /// the sense of Prop. 2.1.
  [[nodiscard]] const std::vector<Value>& history() const noexcept { return history_; }

  /// Clears buffered data and history (fresh execution).
  void reset();

 private:
  ChannelKind kind_;
  std::deque<Value> fifo_;
  std::optional<Value> board_;
  std::vector<Value> history_;
};

}  // namespace fppn
