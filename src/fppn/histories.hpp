// Observable histories of one execution — the object functional
// determinism (Prop. 2.1) is stated over: "the sequences of values written
// at all external and internal channels are functionally dependent on the
// time stamps of the event generators and on the data samples at the
// external inputs."
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "fppn/value.hpp"
#include "rt/ids.hpp"
#include "rt/time.hpp"

namespace fppn {

class Network;  // fwd

/// One sample written to an external output: x![k]O at model time `time`.
struct OutputSample {
  std::int64_t k = 0;  ///< job index of the writing job
  Time time;           ///< model time of the write
  Value value;

  friend bool operator==(const OutputSample& a, const OutputSample& b) {
    return a.k == b.k && a.time == b.time && a.value == b.value;
  }
  friend bool operator!=(const OutputSample& a, const OutputSample& b) {
    return !(a == b);
  }
};

/// Per-channel written-value sequences for one complete execution.
class ExecutionHistories {
 public:
  /// History (sequence of written values) of any channel, by id.
  std::map<ChannelId, std::vector<Value>> channel_writes;

  /// Timed samples for external outputs only.
  std::map<ChannelId, std::vector<OutputSample>> output_samples;

  /// Equality of *functional* content: channel write sequences and output
  /// sample values+indices, but NOT the write times (the real-time
  /// semantics legitimately shifts them; determinism is about values).
  [[nodiscard]] bool functionally_equal(const ExecutionHistories& other) const;

  /// Content fingerprint of the functional part; equal histories hash
  /// equally (used for cheap cross-run comparisons in property tests).
  [[nodiscard]] std::size_t fingerprint() const;

  /// Human-readable dump (for test failure messages).
  [[nodiscard]] std::string to_string(const Network& net) const;

  /// First difference description, or empty when functionally equal.
  [[nodiscard]] std::string diff(const ExecutionHistories& other,
                                 const Network& net) const;
};

}  // namespace fppn
