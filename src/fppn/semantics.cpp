#include "fppn/semantics.hpp"

#include <algorithm>
#include <map>
#include <stdexcept>

#include "graph/algorithms.hpp"

namespace fppn {

std::vector<ProcessId> order_simultaneous(const Network& net,
                                          const std::vector<ProcessId>& invoked_multiset,
                                          SimultaneityTieBreak tie_break) {
  // Count multiplicities, keep one node per distinct process.
  std::map<ProcessId, int> multiplicity;
  for (const ProcessId p : invoked_multiset) {
    ++multiplicity[p];
  }
  std::vector<NodeId> subset;
  subset.reserve(multiplicity.size());
  for (const auto& [p, cnt] : multiplicity) {
    (void)cnt;
    subset.push_back(NodeId(p.value()));
  }
  const auto prefer = [tie_break](NodeId a, NodeId b) {
    return tie_break == SimultaneityTieBreak::kByProcessId ? a < b : a > b;
  };
  const auto order = topological_sort_subset(net.priority_graph(), subset, prefer);
  if (!order.has_value()) {
    throw std::invalid_argument(
        "simultaneous invocation group cannot be ordered: FP cycle");
  }
  std::vector<ProcessId> result;
  result.reserve(invoked_multiset.size());
  for (const NodeId n : *order) {
    const ProcessId p{n.value()};
    for (int i = 0; i < multiplicity[p]; ++i) {
      result.push_back(p);
    }
  }
  return result;
}

ZeroDelayResult run_zero_delay(const Network& net, const InvocationPlan& plan,
                               const InputScripts& inputs,
                               SimultaneityTieBreak tie_break) {
  ExecutionState state(net, inputs);
  std::size_t jobs = 0;
  for (const InvocationGroup& group : plan.groups()) {
    state.advance_time(group.time);
    for (const ProcessId p : order_simultaneous(net, group.processes, tie_break)) {
      state.run_job(p, group.time);
      ++jobs;
    }
  }
  ZeroDelayResult result;
  result.trace = state.trace();
  result.histories = state.histories();
  result.jobs_executed = jobs;
  return result;
}

}  // namespace fppn
