// Event generators (§II-A) and invocation plans.
//
// Every process is driven by exactly one event generator, characterized by
// a burst size m_e, a period T_e and a relative deadline d_e:
//  - multi-periodic: bursts of m_e invocations at 0, T_e, 2*T_e, ...
//  - sporadic: at most m_e invocations in any half-closed interval of
//    length T_e (the minimal-separation generalization).
// An InvocationPlan is a concrete timed sequence (t_1, P_1), (t_2, P_2) ...
// of simultaneous invocation multisets — the input of the zero-delay
// semantics (§II-B) and of task-graph hyperperiod simulation (§III-A).
#pragma once

#include <cstdint>
#include <map>
#include <random>
#include <string>
#include <vector>

#include "rt/ids.hpp"
#include "rt/time.hpp"

namespace fppn {

enum class EventKind : std::uint8_t { kPeriodic, kSporadic };

[[nodiscard]] std::string to_string(EventKind k);

/// Static attributes of an event generator (m_e, T_e, d_e).
struct EventSpec {
  EventKind kind = EventKind::kPeriodic;
  int burst = 1;        ///< m_e >= 1 invocations per period/window
  Duration period;      ///< T_e > 0
  Duration deadline;    ///< d_e > 0, relative to the invocation instant

  /// Throws std::invalid_argument when any constraint above is violated.
  void validate() const;
};

/// True iff the sorted timestamp sequence satisfies the sporadic
/// constraint: at most `burst` events in any half-closed window of length
/// `period` — equivalently ts[i + burst] - ts[i] >= period for all i.
[[nodiscard]] bool satisfies_sporadic_constraint(const std::vector<Time>& sorted_times,
                                                 int burst, const Duration& period);

/// A concrete sporadic-event script: the timestamps one sporadic process
/// fires at during one execution. Construction validates the (m, T)
/// constraint and sorts the times.
class SporadicScript {
 public:
  SporadicScript() = default;
  SporadicScript(std::vector<Time> times, int burst, const Duration& period);

  [[nodiscard]] const std::vector<Time>& times() const noexcept { return times_; }
  [[nodiscard]] bool empty() const noexcept { return times_.empty(); }

  /// Draws a pseudo-random admissible script on [0, horizon): repeatedly
  /// advances a window anchor by >= period and fires 0..burst events inside
  /// it. Deterministic for a given seed.
  static SporadicScript random(int burst, const Duration& period, Time horizon,
                               std::uint64_t seed);

 private:
  std::vector<Time> times_;
};

/// One invocation: a process fires at a time stamp (bursts repeat entries).
struct Invocation {
  Time time;
  ProcessId process;

  friend bool operator==(const Invocation& a, const Invocation& b) {
    return a.time == b.time && a.process == b.process;
  }
  friend bool operator!=(const Invocation& a, const Invocation& b) {
    return !(a == b);
  }
};

/// The multiset of processes invoked at one instant t_i.
struct InvocationGroup {
  Time time;
  std::vector<ProcessId> processes;  ///< sorted by id; bursts = repeats
};

class Network;  // fwd

/// Timed sequence of simultaneous invocation groups over [0, horizon).
class InvocationPlan {
 public:
  /// Adds `count` invocations of `p` at `t` (t >= 0 required).
  void add(Time t, ProcessId p, int count = 1);

  /// Groups sorted by time; within a group processes sorted by id.
  [[nodiscard]] std::vector<InvocationGroup> groups() const;

  [[nodiscard]] std::size_t invocation_count() const noexcept { return total_; }
  [[nodiscard]] bool empty() const noexcept { return total_ == 0; }

  /// Builds the plan for `net` on [0, horizon): periodic generators fire
  /// bursts at every multiple of their period; sporadic process p fires at
  /// the times of scripts[p] (missing script = never fires). Script times
  /// >= horizon are ignored.
  static InvocationPlan build(const Network& net, Time horizon,
                              const std::map<ProcessId, SporadicScript>& scripts = {});

 private:
  std::map<Time, std::vector<ProcessId>> by_time_;
  std::size_t total_ = 0;
};

}  // namespace fppn
