// The FPPN itself (Def. 2.1) and its builder.
//
// PN = (P, C, FP, e_p, I_e, O_e, d_e, Sigma_c, CT_c):
//  - P: processes, each bound to one event generator (EventSpec) and a
//    behavior (a subroutine; Def. 2.2 automata are one way to supply it),
//  - C: internal channels, each a (writer, reader) pair with a channel type,
//  - FP: the *functional priority* DAG. It must relate every pair of
//    processes sharing a channel — that is what makes execution
//    deterministic (Prop. 2.1) — but it is a semantic device, not a
//    scheduling priority.
//  - I, O: external input/output channels partitioned over the generators.
//
// Validation on build() enforces: FP acyclic, FP covers channel-sharing
// pairs, spec sanity, name uniqueness. The *schedulable subclass* check of
// §III-A (every sporadic process has exactly one periodic user with
// T_u <= T_p) is exposed separately because plain simulation does not need
// it — only task-graph derivation does.
#pragma once

#include <functional>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "fppn/channel.hpp"
#include "fppn/event.hpp"
#include "graph/digraph.hpp"
#include "rt/ids.hpp"

namespace fppn {

class JobContext;  // fwd (exec_state.hpp)

/// One job execution run of a process: a subroutine that reads its input
/// channels, updates internal variables and writes its output channels.
/// Implementations must be deterministic functions of their internal state
/// and the values read through the context.
class ProcessBehavior {
 public:
  virtual ~ProcessBehavior() = default;
  /// Executes the k-th job run (k available from the context).
  virtual void on_job(JobContext& ctx) = 0;
};

/// Fresh behavior instance per execution, so repeated runs start from the
/// initial internal state (X_p0 in Def. 2.2).
using BehaviorFactory = std::function<std::unique_ptr<ProcessBehavior>()>;

/// Adapts a plain callable (with per-execution state captured in the
/// factory) to ProcessBehavior.
class LambdaBehavior final : public ProcessBehavior {
 public:
  explicit LambdaBehavior(std::function<void(JobContext&)> fn) : fn_(std::move(fn)) {}
  void on_job(JobContext& ctx) override { fn_(ctx); }

 private:
  std::function<void(JobContext&)> fn_;
};

/// Factory for stateless behaviors (or ones carrying their own state in the
/// closure — note such state is shared across executions; prefer a real
/// ProcessBehavior subclass for stateful processes).
[[nodiscard]] BehaviorFactory behavior(std::function<void(JobContext&)> fn);

/// A do-nothing behavior (useful for pure timing/scheduling experiments).
[[nodiscard]] BehaviorFactory no_op_behavior();

/// Static description of one process.
struct ProcessDecl {
  std::string name;
  EventSpec event;
  BehaviorFactory make_behavior;
  std::vector<ChannelId> reads;    ///< channels this process reads (I_p)
  std::vector<ChannelId> writes;   ///< channels this process writes (O_p)
};

/// Static description of one channel.
struct ChannelDecl {
  std::string name;
  ChannelKind kind = ChannelKind::kFifo;
  ChannelScope scope = ChannelScope::kInternal;
  ProcessId writer;  ///< invalid for external inputs
  ProcessId reader;  ///< invalid for external outputs
  /// FIFO buffer capacity. 1 = the paper's single-slot semantics (accesses
  /// totally serialized by the §III-A edge rule). >= 2 marks a *buffered*
  /// channel — the "buffering and pipelining" extension the paper names as
  /// future work: the writer keeps functional priority over the reader
  /// (zero-delay determinism), but the task graph replaces the
  /// serialization edges with dataflow edges w[k] -> r[k] and buffer-reuse
  /// edges r[k] -> w[k+capacity], so successive hyperperiod instances of
  /// the pair can overlap on different processors.
  int capacity = 1;

  [[nodiscard]] bool is_buffered() const noexcept { return capacity > 1; }
};

/// Immutable, validated FPPN. Construct through NetworkBuilder; the
/// default constructor yields an empty network (useful as a placeholder
/// member before assignment from a builder).
class Network {
 public:
  Network() = default;

  [[nodiscard]] std::size_t process_count() const noexcept { return processes_.size(); }
  [[nodiscard]] std::size_t channel_count() const noexcept { return channels_.size(); }

  [[nodiscard]] const ProcessDecl& process(ProcessId p) const;
  [[nodiscard]] const ChannelDecl& channel(ChannelId c) const;

  [[nodiscard]] std::optional<ProcessId> find_process(const std::string& name) const;
  [[nodiscard]] std::optional<ChannelId> find_channel(const std::string& name) const;

  /// The functional-priority DAG over process ids (node i == process i).
  [[nodiscard]] const Digraph& priority_graph() const noexcept { return fp_; }

  /// Direct FP edge p1 -> p2 (NOT the transitive closure; the task-graph
  /// edge rule of §III-A uses exactly this).
  [[nodiscard]] bool has_priority(ProcessId p1, ProcessId p2) const;

  /// p1 |><| p2: FP-related in either direction.
  [[nodiscard]] bool priority_related(ProcessId p1, ProcessId p2) const;

  /// All internal channels adjacent to p (as writer or reader).
  [[nodiscard]] std::vector<ChannelId> internal_channels_of(ProcessId p) const;

  /// The unique periodic "user" process of sporadic p (§III-A): the single
  /// counterpart p shares internal channels with. std::nullopt when p is
  /// not sporadic or the subclass restriction fails.
  [[nodiscard]] std::optional<ProcessId> user_of(ProcessId p) const;

  /// True iff every sporadic process has exactly one user, the user is
  /// periodic, and T_user <= T_sporadic. Required by task-graph derivation.
  [[nodiscard]] bool in_schedulable_subclass(std::string* why = nullptr) const;

  /// Hyperperiod H = lcm of all periods of PN' (sporadics replaced by
  /// their servers, i.e. contributing their *user's* period). Requires the
  /// schedulable subclass. (Footnote 4: lcm over rationals.)
  [[nodiscard]] Duration hyperperiod() const;

  /// External input / output channel ids in declaration order.
  [[nodiscard]] std::vector<ChannelId> external_inputs() const;
  [[nodiscard]] std::vector<ChannelId> external_outputs() const;

  /// DOT rendering of the process network graph (channels as edges,
  /// FP shown as dashed edges).
  [[nodiscard]] std::string to_dot() const;

 private:
  friend class NetworkBuilder;

  std::vector<ProcessDecl> processes_;
  std::vector<ChannelDecl> channels_;
  Digraph fp_;
};

/// Fluent construction + validation.
class NetworkBuilder {
 public:
  NetworkBuilder() = default;

  /// Periodic process with burst 1.
  ProcessId periodic(const std::string& name, Duration period, Duration deadline,
                     BehaviorFactory behavior);

  /// Multi-periodic process: bursts of `burst` invocations every period.
  ProcessId multi_periodic(const std::string& name, int burst, Duration period,
                           Duration deadline, BehaviorFactory behavior);

  /// Sporadic process: at most `burst` invocations per window of `period`.
  ProcessId sporadic(const std::string& name, int burst, Duration period,
                     Duration deadline, BehaviorFactory behavior);

  /// Internal channel writer -> reader.
  ChannelId channel(const std::string& name, ChannelKind kind, ProcessId writer,
                    ProcessId reader);
  ChannelId fifo(const std::string& name, ProcessId writer, ProcessId reader) {
    return channel(name, ChannelKind::kFifo, writer, reader);
  }
  ChannelId blackboard(const std::string& name, ProcessId writer, ProcessId reader) {
    return channel(name, ChannelKind::kBlackboard, writer, reader);
  }

  /// Buffered FIFO (capacity >= 2): the pipelining extension. The builder
  /// installs the mandatory writer -> reader functional priority itself
  /// (a conflicting explicit reader -> writer edge fails the FP DAG
  /// check). Both endpoints must be periodic with identical period and
  /// burst — the equal-rate restriction of this prototype, checked at
  /// task-graph derivation.
  ChannelId buffered_fifo(const std::string& name, ProcessId writer, ProcessId reader,
                          int capacity);

  /// External input channel read by `reader` (assigned to its generator's
  /// I_e partition). External inputs behave as sample arrays indexed by
  /// the job count k (§II-A: x?[k]I_e).
  ChannelId external_input(const std::string& name, ProcessId reader);

  /// External output channel written by `writer` (O_e partition).
  ChannelId external_output(const std::string& name, ProcessId writer);

  /// Functional priority edge: higher -> lower.
  NetworkBuilder& priority(ProcessId higher, ProcessId lower);

  /// Adds the missing FP edges between channel-sharing pairs using the
  /// rate-monotonic rule (shorter period = higher priority; ties broken by
  /// declaration order). This matches the FMS case study (§V-B). Explicit
  /// priority() edges win over the automatic rule.
  NetworkBuilder& auto_rate_monotonic_priorities();

  /// Validates and produces the immutable network. Throws
  /// std::invalid_argument with a precise message on any violation.
  [[nodiscard]] Network build() &&;

 private:
  ProcessId add_process(const std::string& name, EventSpec spec,
                        BehaviorFactory behavior);

  Network net_;
  std::vector<std::pair<ProcessId, ProcessId>> fp_edges_;
  bool auto_rm_ = false;
};

}  // namespace fppn
