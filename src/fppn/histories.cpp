#include "fppn/histories.hpp"

#include <sstream>

#include "fppn/network.hpp"

namespace fppn {

bool ExecutionHistories::functionally_equal(const ExecutionHistories& other) const {
  if (channel_writes != other.channel_writes) {
    return false;
  }
  if (output_samples.size() != other.output_samples.size()) {
    return false;
  }
  for (const auto& [c, samples] : output_samples) {
    const auto it = other.output_samples.find(c);
    if (it == other.output_samples.end() || it->second.size() != samples.size()) {
      return false;
    }
    for (std::size_t i = 0; i < samples.size(); ++i) {
      // Compare sample index and value; times may differ between the
      // zero-delay and the real-time semantics.
      if (samples[i].k != it->second[i].k || samples[i].value != it->second[i].value) {
        return false;
      }
    }
  }
  return true;
}

std::size_t ExecutionHistories::fingerprint() const {
  constexpr std::size_t kMix = 0x9e3779b97f4a7c15ULL;
  std::size_t h = 0;
  const auto mix = [&h](std::size_t x) { h ^= x + kMix + (h << 6) + (h >> 2); };
  for (const auto& [c, values] : channel_writes) {
    mix(c.value());
    mix(values.size());
    for (const Value& v : values) {
      mix(value_hash(v));
    }
  }
  for (const auto& [c, samples] : output_samples) {
    mix(c.value() * 31);
    for (const OutputSample& s : samples) {
      mix(static_cast<std::size_t>(s.k));
      mix(value_hash(s.value));
    }
  }
  return h;
}

std::string ExecutionHistories::to_string(const Network& net) const {
  std::ostringstream os;
  for (const auto& [c, values] : channel_writes) {
    os << net.channel(c).name << ":";
    for (const Value& v : values) {
      os << " " << v;
    }
    os << "\n";
  }
  for (const auto& [c, samples] : output_samples) {
    os << net.channel(c).name << " (output):";
    for (const OutputSample& s : samples) {
      os << " [" << s.k << "]@" << s.time << "=" << s.value;
    }
    os << "\n";
  }
  return os.str();
}

std::string ExecutionHistories::diff(const ExecutionHistories& other,
                                     const Network& net) const {
  std::ostringstream os;
  for (const auto& [c, values] : channel_writes) {
    const auto it = other.channel_writes.find(c);
    if (it == other.channel_writes.end()) {
      os << "channel " << net.channel(c).name << " missing in other\n";
      continue;
    }
    if (values.size() != it->second.size()) {
      os << "channel " << net.channel(c).name << ": " << values.size() << " vs "
         << it->second.size() << " writes\n";
      continue;
    }
    for (std::size_t i = 0; i < values.size(); ++i) {
      if (values[i] != it->second[i]) {
        os << "channel " << net.channel(c).name << " write #" << i << ": "
           << values[i] << " vs " << it->second[i] << "\n";
        break;
      }
    }
  }
  for (const auto& [c, samples] : output_samples) {
    const auto it = other.output_samples.find(c);
    if (it == other.output_samples.end()) {
      os << "output " << net.channel(c).name << " missing in other\n";
      continue;
    }
    const auto& os2 = it->second;
    const std::size_t n = std::min(samples.size(), os2.size());
    for (std::size_t i = 0; i < n; ++i) {
      if (samples[i].k != os2[i].k || samples[i].value != os2[i].value) {
        os << "output " << net.channel(c).name << " sample #" << i << ": ["
           << samples[i].k << "]=" << samples[i].value << " vs [" << os2[i].k
           << "]=" << os2[i].value << "\n";
        break;
      }
    }
    if (samples.size() != os2.size()) {
      os << "output " << net.channel(c).name << ": " << samples.size() << " vs "
         << os2.size() << " samples\n";
    }
  }
  return os.str();
}

}  // namespace fppn
