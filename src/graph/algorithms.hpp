// Graph algorithms used across the library:
//  - Kahn topological sort (with deterministic tie-breaking) — zero-delay
//    semantics ordering and task-graph construction,
//  - cycle detection — functional-priority DAG validation (Def. 2.1),
//  - reachability / transitive closure — redundant-edge detection,
//  - transitive reduction — task-graph derivation step 5 (§III-A),
//  - DOT export for debugging and documentation.
#pragma once

#include <functional>
#include <optional>
#include <string>
#include <vector>

#include "graph/digraph.hpp"

namespace fppn {

/// Topological order of all nodes, or std::nullopt if the graph is cyclic.
/// Among simultaneously-ready nodes, smaller NodeId first — the order is a
/// pure function of the graph, never of hash iteration order.
[[nodiscard]] std::optional<std::vector<NodeId>> topological_sort(const Digraph& g);

/// Topological order of a subset of nodes under the subgraph induced by
/// `subset` (edges with both endpoints in the subset). Tie-break: the
/// caller-provided strict weak ordering `prefer` (true when a should come
/// first), falling back to NodeId order. Returns nullopt on a cycle.
[[nodiscard]] std::optional<std::vector<NodeId>> topological_sort_subset(
    const Digraph& g, const std::vector<NodeId>& subset,
    const std::function<bool(NodeId, NodeId)>& prefer);

[[nodiscard]] bool is_acyclic(const Digraph& g);

/// Row-per-node reachability matrix: reach[u][v] == true iff a path of
/// length >= 1 exists from u to v. O(V*E/64) via bitset rows.
class Reachability {
 public:
  explicit Reachability(const Digraph& g);

  [[nodiscard]] bool reaches(NodeId from, NodeId to) const;
  [[nodiscard]] std::size_t node_count() const noexcept { return rows_.size(); }

 private:
  static constexpr std::size_t kBits = 64;
  std::vector<std::vector<std::uint64_t>> rows_;
  void set(std::size_t u, std::size_t v);
  [[nodiscard]] bool get(std::size_t u, std::size_t v) const;
};

/// Removes every edge (u, v) for which another u->v path exists.
/// Precondition: g is a DAG (throws std::invalid_argument otherwise).
/// Returns the number of removed edges. This is task-graph derivation
/// step 5 in §III-A of the paper.
std::size_t transitive_reduction(Digraph& g);

/// Longest path length (in edges) ending at each node; the task-graph
/// critical path in job counts. Precondition: DAG.
[[nodiscard]] std::vector<std::size_t> longest_path_depths(const Digraph& g);

/// Graphviz text; `label(n)` supplies the node label.
[[nodiscard]] std::string to_dot(const Digraph& g,
                                 const std::function<std::string(NodeId)>& label,
                                 const std::string& graph_name = "g");

}  // namespace fppn
