#include "graph/algorithms.hpp"

#include <algorithm>
#include <queue>
#include <sstream>
#include <stdexcept>
#include <unordered_map>

namespace fppn {

std::optional<std::vector<NodeId>> topological_sort(const Digraph& g) {
  const std::size_t n = g.node_count();
  std::vector<std::size_t> indegree(n);
  for (std::size_t i = 0; i < n; ++i) {
    indegree[i] = g.in_degree(NodeId(i));
  }
  // Min-heap on node id for deterministic output.
  std::priority_queue<std::size_t, std::vector<std::size_t>, std::greater<>> ready;
  for (std::size_t i = 0; i < n; ++i) {
    if (indegree[i] == 0) {
      ready.push(i);
    }
  }
  std::vector<NodeId> order;
  order.reserve(n);
  while (!ready.empty()) {
    const std::size_t u = ready.top();
    ready.pop();
    order.push_back(NodeId(u));
    for (const NodeId v : g.successors(NodeId(u))) {
      if (--indegree[v.value()] == 0) {
        ready.push(v.value());
      }
    }
  }
  if (order.size() != n) {
    return std::nullopt;  // cycle
  }
  return order;
}

std::optional<std::vector<NodeId>> topological_sort_subset(
    const Digraph& g, const std::vector<NodeId>& subset,
    const std::function<bool(NodeId, NodeId)>& prefer) {
  // Map subset nodes to local indices.
  std::unordered_map<NodeId, std::size_t> local;
  local.reserve(subset.size());
  for (std::size_t i = 0; i < subset.size(); ++i) {
    local.emplace(subset[i], i);
  }
  std::vector<std::size_t> indegree(subset.size(), 0);
  for (const NodeId u : subset) {
    for (const NodeId v : g.successors(u)) {
      if (const auto it = local.find(v); it != local.end()) {
        ++indegree[it->second];
      }
    }
  }
  const auto cmp = [&](NodeId a, NodeId b) {
    // std::priority_queue is a max-heap; invert to pop the preferred first.
    if (prefer(a, b) != prefer(b, a)) {
      return !prefer(a, b);
    }
    return a > b;
  };
  std::priority_queue<NodeId, std::vector<NodeId>, decltype(cmp)> ready(cmp);
  for (std::size_t i = 0; i < subset.size(); ++i) {
    if (indegree[i] == 0) {
      ready.push(subset[i]);
    }
  }
  std::vector<NodeId> order;
  order.reserve(subset.size());
  while (!ready.empty()) {
    const NodeId u = ready.top();
    ready.pop();
    order.push_back(u);
    for (const NodeId v : g.successors(u)) {
      if (const auto it = local.find(v); it != local.end()) {
        if (--indegree[it->second] == 0) {
          ready.push(v);
        }
      }
    }
  }
  if (order.size() != subset.size()) {
    return std::nullopt;
  }
  return order;
}

bool is_acyclic(const Digraph& g) { return topological_sort(g).has_value(); }

Reachability::Reachability(const Digraph& g) {
  const std::size_t n = g.node_count();
  const std::size_t words = (n + kBits - 1) / kBits;
  rows_.assign(n, std::vector<std::uint64_t>(words, 0));
  const auto order = topological_sort(g);
  if (!order) {
    throw std::invalid_argument("reachability requires a DAG");
  }
  // Process in reverse topological order: row(u) = union of successor rows
  // plus the successor bits themselves.
  for (auto it = order->rbegin(); it != order->rend(); ++it) {
    const std::size_t u = it->value();
    for (const NodeId v : g.successors(NodeId(u))) {
      set(u, v.value());
      const auto& vrow = rows_[v.value()];
      auto& urow = rows_[u];
      for (std::size_t w = 0; w < words; ++w) {
        urow[w] |= vrow[w];
      }
    }
  }
}

void Reachability::set(std::size_t u, std::size_t v) {
  rows_[u][v / kBits] |= (std::uint64_t{1} << (v % kBits));
}

bool Reachability::get(std::size_t u, std::size_t v) const {
  return (rows_[u][v / kBits] >> (v % kBits)) & 1U;
}

bool Reachability::reaches(NodeId from, NodeId to) const {
  if (!from.is_valid() || !to.is_valid() || from.value() >= rows_.size() ||
      to.value() >= rows_.size()) {
    throw std::invalid_argument("reachability: node id out of range");
  }
  return get(from.value(), to.value());
}

std::size_t transitive_reduction(Digraph& g) {
  if (!is_acyclic(g)) {
    throw std::invalid_argument("transitive reduction requires a DAG");
  }
  // Edge (u, v) is redundant iff some other successor w of u reaches v.
  // Compute reachability once on the original graph: removing redundant
  // edges never changes reachability, so the matrix stays valid.
  const Reachability reach(g);
  std::size_t removed = 0;
  for (const auto& [u, v] : g.edges()) {
    bool redundant = false;
    for (const NodeId w : g.successors(u)) {
      if (w != v && reach.reaches(w, v)) {
        redundant = true;
        break;
      }
    }
    if (redundant) {
      g.remove_edge(u, v);
      ++removed;
    }
  }
  return removed;
}

std::vector<std::size_t> longest_path_depths(const Digraph& g) {
  const auto order = topological_sort(g);
  if (!order) {
    throw std::invalid_argument("longest_path_depths requires a DAG");
  }
  std::vector<std::size_t> depth(g.node_count(), 0);
  for (const NodeId u : *order) {
    for (const NodeId v : g.successors(u)) {
      depth[v.value()] = std::max(depth[v.value()], depth[u.value()] + 1);
    }
  }
  return depth;
}

std::string to_dot(const Digraph& g, const std::function<std::string(NodeId)>& label,
                   const std::string& graph_name) {
  std::ostringstream os;
  os << "digraph " << graph_name << " {\n";
  for (std::size_t i = 0; i < g.node_count(); ++i) {
    os << "  n" << i << " [label=\"" << label(NodeId(i)) << "\"];\n";
  }
  for (const auto& [u, v] : g.edges()) {
    os << "  n" << u.value() << " -> n" << v.value() << ";\n";
  }
  os << "}\n";
  return os.str();
}

}  // namespace fppn
