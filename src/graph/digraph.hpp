// Minimal directed-graph container used by the functional-priority relation,
// the task graph and the timed-automata network.
//
// Nodes are dense indices (NodeId); edges are stored both as out- and
// in-adjacency so predecessor scans (list scheduling, ALAP) are O(indegree).
// Parallel edges are rejected; self-loops are rejected (every graph in this
// library is either a DAG or must be checked for acyclicity explicitly).
#pragma once

#include <cstddef>
#include <string>
#include <vector>

#include "rt/ids.hpp"

namespace fppn {

class Digraph {
 public:
  Digraph() = default;
  /// Graph with `node_count` nodes and no edges.
  explicit Digraph(std::size_t node_count);

  /// Appends a node; returns its id.
  NodeId add_node();

  /// Adds edge from -> to. Returns false (and does nothing) if the edge is
  /// already present. Throws std::invalid_argument on self-loops or
  /// out-of-range endpoints.
  bool add_edge(NodeId from, NodeId to);

  /// Removes an edge if present; returns whether it was present.
  bool remove_edge(NodeId from, NodeId to);

  [[nodiscard]] bool has_edge(NodeId from, NodeId to) const;

  [[nodiscard]] std::size_t node_count() const noexcept { return out_.size(); }
  [[nodiscard]] std::size_t edge_count() const noexcept { return edge_count_; }

  [[nodiscard]] const std::vector<NodeId>& successors(NodeId n) const;
  [[nodiscard]] const std::vector<NodeId>& predecessors(NodeId n) const;

  [[nodiscard]] std::size_t out_degree(NodeId n) const { return successors(n).size(); }
  [[nodiscard]] std::size_t in_degree(NodeId n) const { return predecessors(n).size(); }

  /// All edges as (from, to) pairs, in deterministic (from, insertion) order.
  [[nodiscard]] std::vector<std::pair<NodeId, NodeId>> edges() const;

 private:
  void check_node(NodeId n) const;

  std::vector<std::vector<NodeId>> out_;
  std::vector<std::vector<NodeId>> in_;
  std::size_t edge_count_ = 0;
};

}  // namespace fppn
