#include "graph/digraph.hpp"

#include <algorithm>
#include <stdexcept>

namespace fppn {

Digraph::Digraph(std::size_t node_count) : out_(node_count), in_(node_count) {}

NodeId Digraph::add_node() {
  out_.emplace_back();
  in_.emplace_back();
  return NodeId(out_.size() - 1);
}

void Digraph::check_node(NodeId n) const {
  if (!n.is_valid() || n.value() >= out_.size()) {
    throw std::invalid_argument("digraph: node id out of range");
  }
}

bool Digraph::add_edge(NodeId from, NodeId to) {
  check_node(from);
  check_node(to);
  if (from == to) {
    throw std::invalid_argument("digraph: self-loop rejected");
  }
  if (has_edge(from, to)) {
    return false;
  }
  out_[from.value()].push_back(to);
  in_[to.value()].push_back(from);
  ++edge_count_;
  return true;
}

bool Digraph::remove_edge(NodeId from, NodeId to) {
  check_node(from);
  check_node(to);
  auto& succ = out_[from.value()];
  const auto it = std::find(succ.begin(), succ.end(), to);
  if (it == succ.end()) {
    return false;
  }
  succ.erase(it);
  auto& pred = in_[to.value()];
  pred.erase(std::find(pred.begin(), pred.end(), from));
  --edge_count_;
  return true;
}

bool Digraph::has_edge(NodeId from, NodeId to) const {
  check_node(from);
  check_node(to);
  const auto& succ = out_[from.value()];
  return std::find(succ.begin(), succ.end(), to) != succ.end();
}

const std::vector<NodeId>& Digraph::successors(NodeId n) const {
  check_node(n);
  return out_[n.value()];
}

const std::vector<NodeId>& Digraph::predecessors(NodeId n) const {
  check_node(n);
  return in_[n.value()];
}

std::vector<std::pair<NodeId, NodeId>> Digraph::edges() const {
  std::vector<std::pair<NodeId, NodeId>> result;
  result.reserve(edge_count_);
  for (std::size_t u = 0; u < out_.size(); ++u) {
    for (const NodeId v : out_[u]) {
      result.emplace_back(NodeId(u), v);
    }
  }
  return result;
}

}  // namespace fppn
