// Timed execution traces of the online policy — what Fig. 6 of the paper
// visualizes: job execution spans per processor, runtime overhead spans,
// false-job skips and deadline misses, over absolute (multi-frame) time.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "rt/ids.hpp"
#include "rt/time.hpp"

namespace fppn {

enum class TraceEventKind : std::uint8_t {
  kFrameStart,     ///< frame boundary n*H
  kOverhead,       ///< runtime-environment span (job arrival management)
  kJobRun,         ///< an executed job span [time, end)
  kFalseSkip,      ///< a server job marked 'false' and skipped (instant)
  kDeadlineMiss,   ///< job completed after its absolute deadline (instant)
};

[[nodiscard]] std::string to_string(TraceEventKind k);

struct TraceEvent {
  TraceEventKind kind;
  std::int64_t frame = 0;
  ProcessorId processor;        ///< invalid for frame markers
  std::string label;            ///< job display name or marker text
  Time time;                    ///< start (or instant)
  std::optional<Time> end;      ///< end of span events
};

class TimedTrace {
 public:
  void add(TraceEvent e) { events_.push_back(std::move(e)); }

  [[nodiscard]] const std::vector<TraceEvent>& events() const noexcept {
    return events_;
  }

  [[nodiscard]] std::vector<TraceEvent> of_kind(TraceEventKind k) const;

  [[nodiscard]] std::size_t deadline_miss_count() const;
  [[nodiscard]] std::size_t executed_job_count() const;
  [[nodiscard]] std::size_t false_skip_count() const;

  /// Latest event end time.
  [[nodiscard]] Time span_end() const;

  /// One-line counts summary.
  [[nodiscard]] std::string summary() const;

 private:
  std::vector<TraceEvent> events_;
};

}  // namespace fppn
