// Runtime-environment overhead model (§V-A).
//
// On the MPPA deployment the paper measured, at the beginning of each
// frame, a runtime span managing the arrival of the frame's jobs: 41 ms
// for the first frame (initial cache misses) and 20 ms for all subsequent
// frames; per-job read/write synchronization costs were folded into the
// WCETs. This model reproduces exactly that: no job of frame n may start
// before frame_base(n) + overhead(n).
#pragma once

#include <cstdint>

#include "rt/time.hpp"

namespace fppn {

struct OverheadModel {
  Duration first_frame;   ///< arrival-management span of frame 0
  Duration other_frames;  ///< span of every later frame
  Duration per_job_sync;  ///< extra serialization per executed job (usually 0:
                          ///< the paper folds sync costs into the WCETs)

  [[nodiscard]] static OverheadModel none() { return {}; }

  /// The measured MPPA model: 41 ms / 20 ms / 0.
  [[nodiscard]] static OverheadModel mppa_measured() {
    return OverheadModel{Duration::ms(41), Duration::ms(20), Duration::zero()};
  }

  [[nodiscard]] Duration frame_overhead(std::int64_t frame) const {
    return frame == 0 ? first_frame : other_frames;
  }

  [[nodiscard]] bool is_zero() const {
    return first_frame.is_zero() && other_frames.is_zero() && per_job_sync.is_zero();
  }
};

}  // namespace fppn
