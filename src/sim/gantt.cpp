#include "sim/gantt.hpp"

#include <algorithm>
#include <sstream>
#include <vector>

namespace fppn {
namespace {

struct Window {
  double t0;
  double t1;
  std::size_t cols;

  [[nodiscard]] std::size_t col(double t) const {
    if (t <= t0) {
      return 0;
    }
    if (t >= t1) {
      return cols;
    }
    return static_cast<std::size_t>((t - t0) / (t1 - t0) * static_cast<double>(cols));
  }
};

Window make_window(const TimedTrace& trace, const GanttOptions& opts) {
  const double t0 = opts.from.to_double_ms();
  const double t1 =
      opts.to.has_value() ? opts.to->to_double_ms() : trace.span_end().to_double_ms();
  return Window{t0, std::max(t1, t0 + 1.0), opts.columns};
}

void paint(std::string& row, std::size_t c0, std::size_t c1, const std::string& name) {
  if (c1 <= c0) {
    c1 = c0 + 1;
  }
  for (std::size_t c = c0; c < c1 && c < row.size(); ++c) {
    const std::size_t off = c - c0;
    row[c] = off < name.size() ? name[off] : '#';
  }
  if (c1 - 1 < row.size()) {
    row[c1 - 1] = '|';
  }
}

}  // namespace

std::string render_gantt(const TimedTrace& trace, std::int64_t processors,
                         const GanttOptions& opts) {
  const Window w = make_window(trace, opts);
  std::vector<std::string> rows(static_cast<std::size_t>(processors),
                                std::string(w.cols + 1, '.'));
  std::string rt_row(w.cols + 1, '.');
  std::string miss_row(w.cols + 1, ' ');
  bool any_overhead = false;
  bool any_miss = false;

  for (const TraceEvent& e : trace.events()) {
    const double start = e.time.to_double_ms();
    const double end = e.end.value_or(e.time).to_double_ms();
    switch (e.kind) {
      case TraceEventKind::kJobRun:
        if (e.processor.is_valid() &&
            e.processor.value() < rows.size()) {
          paint(rows[e.processor.value()], w.col(start), w.col(end), e.label);
        }
        break;
      case TraceEventKind::kOverhead:
        paint(rt_row, w.col(start), w.col(end), "RT:" + e.label);
        any_overhead = true;
        break;
      case TraceEventKind::kFrameStart:
        for (auto& row : rows) {
          const std::size_t c = w.col(start);
          if (c < row.size() && row[c] == '.') {
            row[c] = ':';
          }
        }
        break;
      case TraceEventKind::kDeadlineMiss: {
        const std::size_t c = w.col(start);
        if (c < miss_row.size()) {
          miss_row[c] = '!';
        }
        any_miss = true;
        break;
      }
      case TraceEventKind::kFalseSkip:
        break;  // not rendered in ASCII
    }
  }

  std::ostringstream os;
  for (std::size_t m = 0; m < rows.size(); ++m) {
    os << "M" << (m + 1) << "  |" << rows[m] << "\n";
  }
  if (opts.show_overhead_row && any_overhead) {
    os << "RT  |" << rt_row << "\n";
  }
  if (opts.mark_misses && any_miss) {
    os << "miss " << miss_row << "\n";
  }
  os << "     " << w.t0;
  std::ostringstream endl_;
  endl_ << w.t1 << " ms";
  const std::string tail = endl_.str();
  std::ostringstream head;
  head << w.t0;
  const std::size_t used = head.str().size();
  os << std::string(w.cols > used + tail.size() ? w.cols - used - tail.size() + 1 : 1,
                    ' ')
     << tail << "\n";
  return os.str();
}

std::string render_gantt_svg(const TimedTrace& trace, std::int64_t processors,
                             const GanttOptions& opts) {
  const Window w = make_window(trace, opts);
  const int row_h = 28;
  const int label_w = 52;
  const int chart_w = 900;
  const int rows = static_cast<int>(processors) + (opts.show_overhead_row ? 1 : 0);
  const int height = rows * row_h + 40;
  const auto x_of = [&](double t) {
    return label_w + (t - w.t0) / (w.t1 - w.t0) * chart_w;
  };
  std::ostringstream os;
  os << "<svg xmlns='http://www.w3.org/2000/svg' width='" << (label_w + chart_w + 20)
     << "' height='" << height << "' font-family='monospace' font-size='11'>\n";
  for (int m = 0; m < rows; ++m) {
    const int y = 10 + m * row_h;
    const std::string name =
        m < processors ? "M" + std::to_string(m + 1) : "RT";
    os << "<text x='4' y='" << (y + row_h / 2 + 4) << "'>" << name << "</text>\n";
    os << "<line x1='" << label_w << "' y1='" << (y + row_h - 4) << "' x2='"
       << (label_w + chart_w) << "' y2='" << (y + row_h - 4)
       << "' stroke='#ccc'/>\n";
  }
  for (const TraceEvent& e : trace.events()) {
    const double t0 = e.time.to_double_ms();
    const double t1 = e.end.value_or(e.time).to_double_ms();
    int row = -1;
    const char* fill = "#7aa7d8";
    if (e.kind == TraceEventKind::kJobRun && e.processor.is_valid()) {
      row = static_cast<int>(e.processor.value());
    } else if (e.kind == TraceEventKind::kOverhead && opts.show_overhead_row) {
      row = static_cast<int>(processors);
      fill = "#d8a77a";
    } else if (e.kind == TraceEventKind::kDeadlineMiss) {
      os << "<text x='" << x_of(t0) << "' y='" << (height - 8)
         << "' fill='red'>!</text>\n";
      continue;
    } else {
      continue;
    }
    const int y = 10 + row * row_h;
    os << "<rect x='" << x_of(t0) << "' y='" << y << "' width='"
       << std::max(1.0, x_of(t1) - x_of(t0)) << "' height='" << (row_h - 8)
       << "' fill='" << fill << "' stroke='#345'/>\n";
    os << "<text x='" << (x_of(t0) + 2) << "' y='" << (y + row_h / 2 + 2) << "'>"
       << e.label << "</text>\n";
  }
  os << "<text x='" << label_w << "' y='" << (height - 8) << "'>" << w.t0
     << "</text>\n";
  os << "<text x='" << (label_w + chart_w - 40) << "' y='" << (height - 8) << "'>"
     << w.t1 << " ms</text>\n";
  os << "</svg>\n";
  return os.str();
}

}  // namespace fppn
