#include "sim/timed_trace.hpp"

#include <algorithm>
#include <sstream>

namespace fppn {

std::string to_string(TraceEventKind k) {
  switch (k) {
    case TraceEventKind::kFrameStart:
      return "frame-start";
    case TraceEventKind::kOverhead:
      return "overhead";
    case TraceEventKind::kJobRun:
      return "job-run";
    case TraceEventKind::kFalseSkip:
      return "false-skip";
    case TraceEventKind::kDeadlineMiss:
      return "deadline-miss";
  }
  return "?";
}

std::vector<TraceEvent> TimedTrace::of_kind(TraceEventKind k) const {
  std::vector<TraceEvent> out;
  for (const TraceEvent& e : events_) {
    if (e.kind == k) {
      out.push_back(e);
    }
  }
  return out;
}

std::size_t TimedTrace::deadline_miss_count() const {
  return of_kind(TraceEventKind::kDeadlineMiss).size();
}

std::size_t TimedTrace::executed_job_count() const {
  return of_kind(TraceEventKind::kJobRun).size();
}

std::size_t TimedTrace::false_skip_count() const {
  return of_kind(TraceEventKind::kFalseSkip).size();
}

Time TimedTrace::span_end() const {
  Time last;
  for (const TraceEvent& e : events_) {
    last = std::max(last, e.end.value_or(e.time));
  }
  return last;
}

std::string TimedTrace::summary() const {
  std::ostringstream os;
  os << executed_job_count() << " jobs executed, " << false_skip_count()
     << " false skips, " << deadline_miss_count() << " deadline miss(es), span "
     << span_end().to_string() << " ms";
  return os.str();
}

}  // namespace fppn
