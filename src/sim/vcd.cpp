#include "sim/vcd.hpp"

#include <algorithm>
#include <map>
#include <sstream>
#include <vector>

namespace fppn {
namespace {

/// VCD identifier codes: printable ASCII 33..126, multi-character.
std::string code_for(std::size_t index) {
  std::string code;
  do {
    code.push_back(static_cast<char>(33 + index % 94));
    index /= 94;
  } while (index > 0);
  return code;
}

std::int64_t ticks_of(const Time& t) {
  // 1 tick = 1 us of model time (1/1000 model ms).
  return (t.value() * Rational(1000)).floor();
}

struct Change {
  std::int64_t tick;
  std::string code;
  char value;
};

}  // namespace

std::string render_vcd(const TimedTrace& trace, std::int64_t processors) {
  std::ostringstream os;
  os << "$date fppn $end\n$version fppn-trace $end\n$timescale 1us $end\n";
  os << "$scope module fppn $end\n";

  std::vector<std::string> proc_code(static_cast<std::size_t>(processors));
  for (std::size_t m = 0; m < proc_code.size(); ++m) {
    proc_code[m] = code_for(m);
    os << "$var wire 1 " << proc_code[m] << " M" << (m + 1) << "_busy $end\n";
  }
  std::size_t next = proc_code.size();
  const std::string miss_code = code_for(next++);
  os << "$var wire 1 " << miss_code << " deadline_miss $end\n";
  const std::string overhead_code = code_for(next++);
  os << "$var wire 1 " << overhead_code << " runtime_overhead $end\n";

  // One wire per distinct job label, in order of first appearance.
  std::map<std::string, std::string> job_code;
  for (const TraceEvent& e : trace.events()) {
    if (e.kind == TraceEventKind::kJobRun && job_code.count(e.label) == 0) {
      std::string sanitized = e.label;
      for (char& c : sanitized) {
        if (c == '[') {
          c = '_';
        } else if (c == ']') {
          c = ' ';
        }
      }
      sanitized.erase(std::remove(sanitized.begin(), sanitized.end(), ' '),
                      sanitized.end());
      job_code.emplace(e.label, code_for(next++));
      os << "$var wire 1 " << job_code[e.label] << " " << sanitized << " $end\n";
    }
  }
  os << "$upscope $end\n$enddefinitions $end\n";

  std::vector<Change> changes;
  for (const TraceEvent& e : trace.events()) {
    switch (e.kind) {
      case TraceEventKind::kJobRun: {
        const std::int64_t t0 = ticks_of(e.time);
        const std::int64_t t1 = std::max(t0 + 1, ticks_of(*e.end));
        changes.push_back({t0, job_code.at(e.label), '1'});
        changes.push_back({t1, job_code.at(e.label), '0'});
        if (e.processor.is_valid() && e.processor.value() < proc_code.size()) {
          changes.push_back({t0, proc_code[e.processor.value()], '1'});
          changes.push_back({t1, proc_code[e.processor.value()], '0'});
        }
        break;
      }
      case TraceEventKind::kOverhead: {
        const std::int64_t t0 = ticks_of(e.time);
        changes.push_back({t0, overhead_code, '1'});
        changes.push_back({std::max(t0 + 1, ticks_of(e.end.value_or(e.time))),
                           overhead_code, '0'});
        break;
      }
      case TraceEventKind::kDeadlineMiss: {
        const std::int64_t t0 = ticks_of(e.time);
        changes.push_back({t0, miss_code, '1'});
        changes.push_back({t0 + 1, miss_code, '0'});
        break;
      }
      case TraceEventKind::kFrameStart:
      case TraceEventKind::kFalseSkip:
        break;
    }
  }
  std::stable_sort(changes.begin(), changes.end(),
                   [](const Change& a, const Change& b) { return a.tick < b.tick; });

  os << "$dumpvars\n";
  for (std::size_t m = 0; m < proc_code.size(); ++m) {
    os << "0" << proc_code[m] << "\n";
  }
  os << "0" << miss_code << "\n0" << overhead_code << "\n";
  for (const auto& [label, code] : job_code) {
    (void)label;
    os << "0" << code << "\n";
  }
  os << "$end\n";

  std::int64_t current = -1;
  for (const Change& c : changes) {
    if (c.tick != current) {
      os << "#" << c.tick << "\n";
      current = c.tick;
    }
    os << c.value << c.code << "\n";
  }
  return os.str();
}

}  // namespace fppn
