// Gantt-chart renderers for timed traces (Fig. 6 style): one row per
// processor plus a "RT" row for runtime-overhead spans; ASCII for the
// terminal, SVG for documentation.
#pragma once

#include <cstdint>
#include <string>

#include "sim/timed_trace.hpp"

namespace fppn {

struct GanttOptions {
  std::size_t columns = 110;        ///< chart width in characters
  Time from;                        ///< left edge (default 0)
  std::optional<Time> to;           ///< right edge (default trace end)
  bool show_overhead_row = true;    ///< render overhead spans as an extra row
  bool mark_misses = true;          ///< '!' markers under the axis
};

/// ASCII chart; `processors` fixes the number of rows (processors with no
/// events still get a row).
[[nodiscard]] std::string render_gantt(const TimedTrace& trace, std::int64_t processors,
                                       const GanttOptions& opts = {});

/// Standalone SVG document of the same chart.
[[nodiscard]] std::string render_gantt_svg(const TimedTrace& trace,
                                           std::int64_t processors,
                                           const GanttOptions& opts = {});

}  // namespace fppn
