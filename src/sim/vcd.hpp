// VCD (IEEE 1364 value-change dump) export of timed traces, so policy
// executions can be inspected in standard waveform viewers (GTKWave & co.)
// next to hardware signals — the natural trace format in an EDA flow.
//
// Signals: one 1-bit "busy" wire per processor, a 1-bit wire per distinct
// job label (high while an instance executes), plus `miss` and `overhead`
// event wires. Timescale: 1 us = 1/1000 model millisecond, preserving the
// rational times up to that quantum.
#pragma once

#include <string>

#include "sim/timed_trace.hpp"

namespace fppn {

/// Renders the trace as a VCD document.
[[nodiscard]] std::string render_vcd(const TimedTrace& trace, std::int64_t processors);

}  // namespace fppn
