// overhead.hpp is header-only; this TU anchors the library target.
#include "sim/overhead.hpp"
