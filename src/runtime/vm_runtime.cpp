#include "runtime/vm_runtime.hpp"

#include <algorithm>
#include <stdexcept>

#include "graph/algorithms.hpp"

namespace fppn {
namespace {

/// Static (frame-independent) execution plan of one job.
struct JobPlan {
  JobId id;
  std::size_t proc = 0;
  std::optional<JobId> prev_on_proc;  ///< previous job in the static order
  std::optional<JobId> prev_of_process;  ///< previous job of same process in frame
};

/// Dynamic per-frame resolution of one job.
struct JobRun {
  bool is_false = false;
  Time invocation;  ///< real invocation (sporadic) or frame_base + A_i
  Time start;       ///< execution start ('false': the skip instant)
  Time end;         ///< completion ('false': == start)
};

}  // namespace

RunResult run_static_order_vm(const Network& net, const DerivedTaskGraph& derived,
                              const StaticSchedule& schedule, const VmRunOptions& opts,
                              const InputScripts& inputs,
                              const std::map<ProcessId, SporadicScript>& sporadics) {
  const TaskGraph& tg = derived.graph;
  const std::size_t n = tg.job_count();
  if (opts.frames < 1) {
    throw std::invalid_argument("vm runtime: frames must be >= 1");
  }
  for (std::size_t i = 0; i < n; ++i) {
    if (!schedule.is_placed(JobId(i))) {
      throw std::invalid_argument("vm runtime: schedule does not place job '" +
                                  tg.job(JobId(i)).name + "'");
    }
  }
  const Duration h = derived.hyperperiod;

  // Sorted invocation scripts per sporadic process.
  std::map<ProcessId, std::vector<Time>> invocations;
  for (const auto& [p, script] : sporadics) {
    invocations.emplace(p, script.times());  // SporadicScript stores sorted
  }

  // Static plan: previous job on the same processor / of the same process.
  std::vector<JobPlan> plan(n);
  const auto order = schedule.per_processor_order();
  for (std::size_t m = 0; m < order.size(); ++m) {
    for (std::size_t pos = 0; pos < order[m].size(); ++pos) {
      JobPlan& jp = plan[order[m][pos].value()];
      jp.id = order[m][pos];
      jp.proc = m;
      if (pos > 0) {
        jp.prev_on_proc = order[m][pos - 1];
      }
    }
  }
  {
    std::map<ProcessId, JobId> last_of_process;
    // Jobs are stored in <J order, which respects per-process k order.
    for (std::size_t i = 0; i < n; ++i) {
      const ProcessId p = tg.job(JobId(i)).process;
      const auto it = last_of_process.find(p);
      if (it != last_of_process.end()) {
        plan[i].prev_of_process = it->second;
      }
      last_of_process[p] = JobId(i);
    }
  }

  // Topological order over precedence + same-processor chains, computed
  // once (identical in every frame).
  Digraph combined(n);
  for (const auto& [u, v] : tg.precedence().edges()) {
    combined.add_edge(u, v);
  }
  for (std::size_t i = 0; i < n; ++i) {
    if (plan[i].prev_on_proc.has_value()) {
      combined.add_edge(NodeId(plan[i].prev_on_proc->value()), NodeId(i));
    }
  }
  const auto topo = topological_sort(combined);
  if (!topo.has_value()) {
    throw std::invalid_argument(
        "vm runtime: schedule order conflicts with precedence (cycle)");
  }

  RunResult result;
  ExecutionState state(net, inputs);

  // Cross-frame carry-over: completion of the last job per processor and
  // per process (the static-order walk is sequential per processor; jobs
  // of one process must stay mutually exclusive and ordered even when a
  // frame overruns).
  std::vector<Time> proc_carry(order.size());
  std::vector<Time> process_carry(net.process_count());

  struct Executed {
    Time start;
    std::int64_t frame;
    JobId id;
    Time invocation;
  };
  std::vector<Executed> executed;  // bodies run later, in causal order
  executed.reserve(n * static_cast<std::size_t>(opts.frames));

  std::vector<JobRun> runs(n);
  for (std::int64_t frame = 0; frame < opts.frames; ++frame) {
    const Time frame_base = Time() + h * Rational(frame);
    const Duration oh = opts.overhead.frame_overhead(frame);
    const Time frame_release = frame_base + oh;
    result.trace.add(TraceEvent{TraceEventKind::kFrameStart, frame, ProcessorId(),
                                "frame " + std::to_string(frame), frame_base,
                                std::nullopt});
    if (!oh.is_zero()) {
      result.trace.add(TraceEvent{TraceEventKind::kOverhead, frame, ProcessorId(),
                                  "arrivals", frame_base, frame_release});
    }

    for (const NodeId node : *topo) {
      const std::size_t i = node.value();
      const JobId id(i);
      const Job& job = tg.job(id);
      JobRun& run = runs[i];
      run = JobRun{};

      // ---- Round step 1: synchronize invocation.
      if (job.is_server) {
        const ServerInfo& info = derived.servers.at(job.process);
        const int t = static_cast<int>((job.k - 1) % info.burst) + 1;
        const Time boundary = subset_boundary(info, frame, job.subset, h);
        const ServerWindow window = server_window(info, boundary);
        const auto inv_it = invocations.find(job.process);
        const std::optional<Time> tth =
            inv_it == invocations.end()
                ? std::nullopt
                : tth_invocation_in(inv_it->second, window, t);
        if (!tth.has_value()) {
          // Marked 'false' at its arrival time A_i (== boundary); the
          // round completes as soon as the processor reaches it and the
          // boundary has passed.
          run.is_false = true;
          Time ready = boundary;
          if (plan[i].prev_on_proc.has_value()) {
            ready = std::max(ready, runs[plan[i].prev_on_proc->value()].end);
          }
          if (frame > 0 && !plan[i].prev_on_proc.has_value()) {
            ready = std::max(ready, proc_carry[plan[i].proc]);
          }
          run.invocation = boundary;
          run.start = ready;
          run.end = ready;
          result.trace.add(TraceEvent{TraceEventKind::kFalseSkip, frame,
                                      ProcessorId(plan[i].proc), job.name, ready,
                                      std::nullopt});
          ++result.false_skips;
          continue;
        }
        run.invocation = *tth;  // may precede the subset boundary
      } else {
        run.invocation = frame_base + (job.arrival - Time());
      }

      // ---- Round steps 1+2: the start waits for the invocation, the
      // previous round on this processor, all predecessors, the frame
      // overhead release, and (cross-frame) earlier jobs of this process.
      Time start = std::max(run.invocation, frame_release);
      if (plan[i].prev_on_proc.has_value()) {
        start = std::max(start, runs[plan[i].prev_on_proc->value()].end);
      } else if (frame > 0) {
        start = std::max(start, proc_carry[plan[i].proc]);
      }
      for (const JobId pred : tg.predecessors(id)) {
        start = std::max(start, runs[pred.value()].end);
      }
      if (!plan[i].prev_of_process.has_value()) {
        start = std::max(start, process_carry[job.process.value()]);
      }

      // ---- Round step 3: execute.
      const Duration exec =
          (opts.actual_time ? opts.actual_time(id, frame) : job.wcet) +
          opts.overhead.per_job_sync;
      if (exec.is_negative()) {
        throw std::invalid_argument("vm runtime: negative actual execution time");
      }
      run.start = start;
      run.end = start + exec;
      executed.push_back(Executed{start, frame, id, run.invocation});
      result.trace.add(TraceEvent{TraceEventKind::kJobRun, frame,
                                  ProcessorId(plan[i].proc), job.name, run.start,
                                  run.end});
      const Time abs_deadline = frame_base + (job.deadline - Time());
      if (run.end > abs_deadline) {
        result.misses.push_back(DeadlineMiss{frame, id, run.end, abs_deadline});
        result.trace.add(TraceEvent{TraceEventKind::kDeadlineMiss, frame,
                                    ProcessorId(plan[i].proc), job.name, run.end,
                                    std::nullopt});
      }
      ++result.jobs_executed;
    }

    // Carry completions into the next frame.
    for (std::size_t m = 0; m < order.size(); ++m) {
      if (!order[m].empty()) {
        proc_carry[m] =
            std::max(proc_carry[m], runs[order[m].back().value()].end);
      }
    }
    for (std::size_t i = 0; i < n; ++i) {
      if (!runs[i].is_false) {
        process_carry[tg.job(JobId(i)).process.value()] =
            std::max(process_carry[tg.job(JobId(i)).process.value()], runs[i].end);
      }
    }
  }

  // Execute the bodies in causal order: by start time, then frame, then
  // <J order (JobId). Precedence edges guarantee FP-related jobs are
  // strictly ordered; FP-unrelated jobs share no channels, so any
  // deterministic tie-break yields the same histories.
  std::sort(executed.begin(), executed.end(), [](const Executed& a, const Executed& b) {
    if (a.start != b.start) {
      return a.start < b.start;
    }
    if (a.frame != b.frame) {
      return a.frame < b.frame;
    }
    return a.id < b.id;
  });
  for (const Executed& e : executed) {
    state.advance_time(e.start);
    state.run_job(tg.job(e.id).process, e.invocation);
  }

  result.histories = state.histories();
  result.span_end = result.trace.span_end();
  return result;
}

ZeroDelayResult zero_delay_reference(const Network& net, const Duration& hyperperiod,
                                     std::int64_t frames, const InputScripts& inputs,
                                     const std::map<ProcessId, SporadicScript>& sporadics) {
  const Time horizon = Time() + hyperperiod * Rational(frames);
  const InvocationPlan plan = InvocationPlan::build(net, horizon, sporadics);
  return run_zero_delay(net, plan, inputs);
}

}  // namespace fppn
