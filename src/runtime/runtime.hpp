// runtime::Runtime — the uniform execution-backend interface.
//
// Both deployments of the static-order policy (§IV) sit behind one
// `run(net, derived, schedule, opts)` entry point with a shared
// RunOptions/RunResult contract:
//   "vm"      — the deterministic simulated-time virtual multiprocessor,
//   "threads" — the real std::thread deployment (the paper's Linux runtime).
// Backends are discovered by name through RuntimeRegistry, mirroring the
// scheduling-strategy registry; registering a new backend is one add()
// call, no engine edits:
//
//   RuntimeRegistry::global().add("my-backend", [] {
//     return std::make_unique<MyRuntime>();
//   });
#pragma once

#include <map>
#include <memory>
#include <stdexcept>
#include <string>

#include "rt/registry.hpp"
#include "runtime/thread_runtime.hpp"
#include "runtime/vm_runtime.hpp"

namespace fppn {
namespace runtime {

/// Backend-agnostic run options — the union of what the backends honor.
/// Fields a backend does not model are ignored (overhead on "threads",
/// wall-clock scale on "vm").
struct RunOptions {
  std::int64_t frames = 1;
  OverheadModel overhead;             ///< frame overhead model ("vm" only)
  ActualTimeFn actual_time;           ///< per-job actual times; default WCET
  double micros_per_model_ms = 50.0;  ///< wall scale ("threads" only)
};

class Runtime {
 public:
  virtual ~Runtime() = default;

  /// Registry key; stable, lowercase.
  [[nodiscard]] virtual std::string name() const = 0;

  /// One-line description for --help output.
  [[nodiscard]] virtual std::string description() const = 0;

  /// Executes `opts.frames` repetitions of the schedule frame and returns
  /// the common RunResult (trace, histories, deadline misses). Throws
  /// std::invalid_argument on incomplete schedules or bad options
  /// (frames < 1, negative actual execution times).
  ///
  /// Determinism: every backend must produce output histories
  /// functionally equal to the zero-delay reference (Prop. 4.1) — "vm" is
  /// additionally bit-deterministic in its trace times, while "threads"
  /// measures wall time, so its trace/deadline numbers carry OS jitter.
  /// Thread safety: backends are stateless; one instance may serve
  /// concurrent run() calls, and make_runtime hands out fresh instances
  /// anyway.
  [[nodiscard]] virtual RunResult run(
      const Network& net, const DerivedTaskGraph& derived,
      const StaticSchedule& schedule, const RunOptions& opts = {},
      const InputScripts& inputs = {},
      const std::map<ProcessId, SporadicScript>& sporadics = {}) const = 0;
};

/// Thrown by create() for a name with no registered backend. The message
/// lists every available runtime.
class UnknownRuntimeError : public std::invalid_argument {
 public:
  using std::invalid_argument::invalid_argument;
};

class RuntimeRegistry : public detail::NameRegistry<Runtime, UnknownRuntimeError> {
 public:
  RuntimeRegistry() : NameRegistry("runtime") {}

  /// The process-wide registry, pre-loaded with "vm" and "threads".
  /// First call initializes it thread-safely. Like the strategy registry,
  /// add() is not synchronized against concurrent lookups — register
  /// backends at startup, read from anywhere afterwards.
  [[nodiscard]] static RuntimeRegistry& global();
};

/// Shorthand for RuntimeRegistry::global().create(name). Throws
/// UnknownRuntimeError (listing the registered backends) for unknown
/// names.
[[nodiscard]] std::unique_ptr<Runtime> make_runtime(const std::string& name);

}  // namespace runtime
}  // namespace fppn
