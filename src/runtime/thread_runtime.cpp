#include "runtime/thread_runtime.hpp"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <condition_variable>
#include <mutex>
#include <thread>
#include <vector>

namespace fppn {
namespace {

using SteadyClock = std::chrono::steady_clock;
using WallPoint = SteadyClock::time_point;

/// Model-time <-> wall-time conversion anchored at a run origin.
class WallClock {
 public:
  explicit WallClock(double micros_per_model_ms)
      : origin_(SteadyClock::now() + std::chrono::milliseconds(2)),
        scale_(micros_per_model_ms) {}

  [[nodiscard]] WallPoint wall_of(const Time& model) const {
    return origin_ + std::chrono::microseconds(
                         static_cast<std::int64_t>(model.to_double_ms() * scale_));
  }

  [[nodiscard]] WallPoint wall_of_span(const Duration& model) const {
    return SteadyClock::now() + std::chrono::microseconds(static_cast<std::int64_t>(
                                    model.to_double_ms() * scale_));
  }

  /// Measured wall time back to model milliseconds (rounded to 1 us of
  /// wall time resolution).
  [[nodiscard]] Time model_of(WallPoint wall) const {
    const double micros = std::chrono::duration_cast<std::chrono::microseconds>(
                              wall - origin_)
                              .count();
    const double model_ms = micros / scale_;
    // Quantize to 1/1000 model ms so Rational stays small.
    return Time(Rational(static_cast<std::int64_t>(model_ms * 1000.0), 1000));
  }

 private:
  WallPoint origin_;
  double scale_;
};

/// Online monitor of sporadic invocations: the injector posts, workers
/// wait for the t-th invocation in a window or for the window to close.
class SporadicMonitor {
 public:
  void post(ProcessId p, const Time& t) {
    {
      const std::lock_guard<std::mutex> lock(mu_);
      arrived_[p].push_back(t);  // injector posts in nondecreasing order
    }
    cv_.notify_all();
  }

  /// Blocks until the t-th invocation of p inside `window` is known
  /// (returns its time stamp) or until wall time `boundary_wall` passes
  /// (returns nullopt: the server job is 'false'). A small wall-clock
  /// grace period absorbs injector jitter for invocations stamped exactly
  /// at the boundary — the FPPN requirement of synchronous event arrival;
  /// membership itself is always decided on exact *model* time stamps.
  std::optional<Time> await_tth(ProcessId p, const ServerWindow& window, int t,
                                WallPoint boundary_wall) {
    boundary_wall += std::chrono::milliseconds(2);
    std::unique_lock<std::mutex> lock(mu_);
    for (;;) {
      const auto it = arrived_.find(p);
      if (it != arrived_.end()) {
        if (const auto found = tth_invocation_in(it->second, window, t);
            found.has_value()) {
          return found;
        }
      }
      if (cv_.wait_until(lock, boundary_wall) == std::cv_status::timeout) {
        // Window closed: final decision on what has arrived.
        const auto it2 = arrived_.find(p);
        if (it2 != arrived_.end()) {
          return tth_invocation_in(it2->second, window, t);
        }
        return std::nullopt;
      }
    }
  }

 private:
  std::mutex mu_;
  std::condition_variable cv_;
  std::map<ProcessId, std::vector<Time>> arrived_;
};

/// Per-frame completion flags with cross-thread waiting.
class CompletionBoard {
 public:
  CompletionBoard(std::size_t jobs, std::int64_t frames)
      : jobs_(jobs), done_(jobs * static_cast<std::size_t>(frames)) {
    for (auto& f : done_) {
      f.store(false, std::memory_order_relaxed);
    }
  }

  void mark(std::int64_t frame, JobId id) {
    done_[index(frame, id)].store(true, std::memory_order_release);
    {
      const std::lock_guard<std::mutex> lock(mu_);
    }
    cv_.notify_all();
  }

  void await(std::int64_t frame, JobId id) {
    auto& flag = done_[index(frame, id)];
    if (flag.load(std::memory_order_acquire)) {
      return;
    }
    std::unique_lock<std::mutex> lock(mu_);
    cv_.wait(lock, [&flag] { return flag.load(std::memory_order_acquire); });
  }

 private:
  [[nodiscard]] std::size_t index(std::int64_t frame, JobId id) const {
    return static_cast<std::size_t>(frame) * jobs_ + id.value();
  }

  std::size_t jobs_;
  std::vector<std::atomic<bool>> done_;
  std::mutex mu_;
  std::condition_variable cv_;
};

}  // namespace

RunResult run_static_order_threads(const Network& net, const DerivedTaskGraph& derived,
                                   const StaticSchedule& schedule,
                                   const ThreadRunOptions& opts,
                                   const InputScripts& inputs,
                                   const std::map<ProcessId, SporadicScript>& sporadics) {
  const TaskGraph& tg = derived.graph;
  const std::size_t n = tg.job_count();
  if (opts.frames < 1) {
    throw std::invalid_argument("thread runtime: frames must be >= 1");
  }
  for (std::size_t i = 0; i < n; ++i) {
    if (!schedule.is_placed(JobId(i))) {
      throw std::invalid_argument("thread runtime: unplaced job '" +
                                  tg.job(JobId(i)).name + "'");
    }
  }
  const Duration h = derived.hyperperiod;
  const auto order = schedule.per_processor_order();

  WallClock clock(opts.micros_per_model_ms);
  SporadicMonitor monitor;
  CompletionBoard board(n, opts.frames);

  // Previous job of the same process (for cross-frame k-order safety).
  std::vector<std::optional<JobId>> prev_of_process(n);
  {
    std::map<ProcessId, JobId> last;
    for (std::size_t i = 0; i < n; ++i) {
      const ProcessId p = tg.job(JobId(i)).process;
      if (const auto it = last.find(p); it != last.end()) {
        prev_of_process[i] = it->second;
      }
      last[p] = JobId(i);
    }
  }
  // Last job (by <J order) of each process in a frame, to gate the first
  // job of the next frame.
  std::map<ProcessId, JobId> last_job_of_process;
  for (std::size_t i = 0; i < n; ++i) {
    last_job_of_process[tg.job(JobId(i)).process] = JobId(i);
  }

  // Shared functional state, serialized by a mutex (the paper's runtime
  // serves read/write requests centrally).
  ExecutionState state(net, inputs);
  std::mutex state_mu;

  // Collected per-worker, merged afterwards.
  struct LocalEvent {
    TraceEvent event;
    std::optional<DeadlineMiss> miss;
  };
  std::vector<std::vector<LocalEvent>> local(order.size());

  // Injector thread: posts sporadic invocations at their wall times.
  std::vector<std::pair<Time, ProcessId>> injections;
  for (const auto& [p, script] : sporadics) {
    for (const Time& t : script.times()) {
      injections.emplace_back(t, p);
    }
  }
  std::sort(injections.begin(), injections.end());
  std::thread injector([&] {
    for (const auto& [t, p] : injections) {
      std::this_thread::sleep_until(clock.wall_of(t));
      monitor.post(p, t);
    }
  });

  std::vector<std::thread> workers;
  workers.reserve(order.size());
  for (std::size_t m = 0; m < order.size(); ++m) {
    workers.emplace_back([&, m] {
      auto& log = local[m];
      for (std::int64_t frame = 0; frame < opts.frames; ++frame) {
        const Time frame_base = Time() + h * Rational(frame);
        for (const JobId id : order[m]) {
          const Job& job = tg.job(id);
          // ---- Synchronize invocation.
          std::optional<Time> invocation;
          if (job.is_server) {
            const ServerInfo& info = derived.servers.at(job.process);
            const int t = static_cast<int>((job.k - 1) % info.burst) + 1;
            const Time boundary = subset_boundary(info, frame, job.subset, h);
            invocation =
                monitor.await_tth(job.process, server_window(info, boundary), t,
                                  clock.wall_of(boundary));
            if (!invocation.has_value()) {
              log.push_back(LocalEvent{
                  TraceEvent{TraceEventKind::kFalseSkip, frame, ProcessorId(m),
                             job.name, clock.model_of(SteadyClock::now()),
                             std::nullopt},
                  std::nullopt});
              board.mark(frame, id);
              continue;
            }
          } else {
            const Time inv = frame_base + (job.arrival - Time());
            std::this_thread::sleep_until(clock.wall_of(inv));
            invocation = inv;
          }
          // ---- Synchronize precedence (predecessors may run anywhere).
          for (const JobId pred : tg.predecessors(id)) {
            board.await(frame, pred);
          }
          // Cross-frame same-process order.
          if (frame > 0 && !prev_of_process[id.value()].has_value()) {
            board.await(frame - 1, last_job_of_process.at(job.process));
          }
          // ---- Execute.
          const WallPoint wall_start = SteadyClock::now();
          {
            // advance_time() is deliberately not called here: measured wall
            // times are not monotone across workers and the w(t) markers
            // are only informative; histories depend on run_job order,
            // which the precedence waits above already fix.
            const std::lock_guard<std::mutex> lock(state_mu);
            state.run_job(job.process, *invocation);
          }
          const Duration span =
              opts.actual_time ? opts.actual_time(id, frame) : job.wcet;
          std::this_thread::sleep_until(clock.wall_of_span(span));
          const WallPoint wall_end = SteadyClock::now();
          board.mark(frame, id);

          const Time t_start = clock.model_of(wall_start);
          const Time t_end = clock.model_of(wall_end);
          log.push_back(LocalEvent{TraceEvent{TraceEventKind::kJobRun, frame,
                                              ProcessorId(m), job.name, t_start,
                                              t_end},
                                   std::nullopt});
          const Time abs_deadline = frame_base + (job.deadline - Time());
          if (t_end > abs_deadline) {
            log.push_back(LocalEvent{
                TraceEvent{TraceEventKind::kDeadlineMiss, frame, ProcessorId(m),
                           job.name, t_end, std::nullopt},
                DeadlineMiss{frame, id, t_end, abs_deadline}});
          }
        }
      }
    });
  }
  for (std::thread& w : workers) {
    w.join();
  }
  injector.join();

  RunResult result;
  for (std::int64_t frame = 0; frame < opts.frames; ++frame) {
    result.trace.add(TraceEvent{TraceEventKind::kFrameStart, frame, ProcessorId(),
                                "frame " + std::to_string(frame),
                                Time() + h * Rational(frame), std::nullopt});
  }
  for (const auto& log : local) {
    for (const LocalEvent& e : log) {
      result.trace.add(e.event);
      if (e.miss.has_value()) {
        result.misses.push_back(*e.miss);
      }
      if (e.event.kind == TraceEventKind::kJobRun) {
        ++result.jobs_executed;
      } else if (e.event.kind == TraceEventKind::kFalseSkip) {
        ++result.false_skips;
      }
    }
  }
  result.histories = state.histories();
  result.span_end = result.trace.span_end();
  return result;
}

}  // namespace fppn
