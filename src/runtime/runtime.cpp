#include "runtime/runtime.hpp"

namespace fppn {
namespace runtime {

namespace {

/// The simulated-time virtual multiprocessor behind the Runtime interface.
class VmRuntime final : public Runtime {
 public:
  [[nodiscard]] std::string name() const override { return "vm"; }
  [[nodiscard]] std::string description() const override {
    return "deterministic simulated-time virtual multiprocessor";
  }

  [[nodiscard]] RunResult run(
      const Network& net, const DerivedTaskGraph& derived,
      const StaticSchedule& schedule, const RunOptions& opts,
      const InputScripts& inputs,
      const std::map<ProcessId, SporadicScript>& sporadics) const override {
    VmRunOptions vm;
    vm.frames = opts.frames;
    vm.overhead = opts.overhead;
    vm.actual_time = opts.actual_time;
    return run_static_order_vm(net, derived, schedule, vm, inputs, sporadics);
  }
};

/// The real std::thread deployment behind the Runtime interface.
class ThreadRuntime final : public Runtime {
 public:
  [[nodiscard]] std::string name() const override { return "threads"; }
  [[nodiscard]] std::string description() const override {
    return "std::thread workers on scaled wall-clock time";
  }

  [[nodiscard]] RunResult run(
      const Network& net, const DerivedTaskGraph& derived,
      const StaticSchedule& schedule, const RunOptions& opts,
      const InputScripts& inputs,
      const std::map<ProcessId, SporadicScript>& sporadics) const override {
    ThreadRunOptions th;
    th.frames = opts.frames;
    th.micros_per_model_ms = opts.micros_per_model_ms;
    th.actual_time = opts.actual_time;
    return run_static_order_threads(net, derived, schedule, th, inputs, sporadics);
  }
};

}  // namespace

RuntimeRegistry& RuntimeRegistry::global() {
  static RuntimeRegistry* registry = [] {
    auto* r = new RuntimeRegistry();
    r->add("vm", [] { return std::make_unique<VmRuntime>(); });
    r->add("threads", [] { return std::make_unique<ThreadRuntime>(); });
    return r;
  }();
  return *registry;
}

std::unique_ptr<Runtime> make_runtime(const std::string& name) {
  return RuntimeRegistry::global().create(name);
}

}  // namespace runtime
}  // namespace fppn
