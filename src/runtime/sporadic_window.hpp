// Mapping real sporadic invocations onto server-job subsets (§IV, Fig. 2).
//
// The server jobs of sporadic process p split into subsets of m_p jobs per
// user period. The subset whose jobs arrive at boundary b handles the real
// invocations that occurred in the preceding window of length T' — with
// the boundary membership decided by the functional priority between p and
// its user u(p):
//   p -> u(p):  window (a, b]  (an invocation exactly at b is handled now,
//               because p's job must precede the user job arriving at b)
//   u(p) -> p:  window [a, b)  (an invocation at b is postponed to the
//               next subset)
// where a = b - T'. The t-th job of the subset represents the t-th real
// invocation inside the window; if fewer than t occurred the job is marked
// 'false' and skipped. Windows tile the time line exactly, so every real
// invocation is handled by exactly one subset.
//
// Every function here is a pure function of its arguments (exact rational
// arithmetic, no state): deterministic, safe to call concurrently, and
// non-throwing for the argument ranges produced by the derivation —
// callers pass `sorted` ascending (both lookup helpers binary-search-free
// scan and merely return wrong answers on unsorted input, they never
// throw).
#pragma once

#include <optional>
#include <vector>

#include "rt/time.hpp"
#include "taskgraph/derivation.hpp"

namespace fppn {

/// Half-open/half-closed window (a, b] or [a, b).
struct ServerWindow {
  Time a;
  Time b;
  bool right_closed;  ///< true for (a, b], false for [a, b)

  [[nodiscard]] bool contains(const Time& t) const {
    if (right_closed) {
      return a < t && t <= b;
    }
    return a <= t && t < b;
  }
};

/// The window handled by the server subset arriving at absolute boundary
/// `b` (= frame_base + (subset-1) * T').
[[nodiscard]] ServerWindow server_window(const ServerInfo& info, Time boundary);

/// Absolute boundary of subset `subset` (1-based) of frame `frame`
/// (0-based) for a hyperperiod `h`.
[[nodiscard]] Time subset_boundary(const ServerInfo& info, std::int64_t frame,
                                   std::int64_t subset, const Duration& h);

/// The time of the t-th (1-based) real invocation inside `window`, given
/// all invocation time stamps of the process sorted ascending; nullopt
/// when fewer than t occurred — the corresponding server job is 'false'.
[[nodiscard]] std::optional<Time> tth_invocation_in(const std::vector<Time>& sorted,
                                                    const ServerWindow& window, int t);

/// Number of real invocations inside `window`.
[[nodiscard]] int count_invocations_in(const std::vector<Time>& sorted,
                                       const ServerWindow& window);

}  // namespace fppn
