// Real-time deployment of the static-order policy on std::thread workers —
// the analogue of the paper's Linux multi-thread runtime (§V).
//
// One worker thread per processor walks its static-order job list; an
// injector thread posts sporadic invocations at their scripted wall-clock
// times; channel accesses are serialized through the shared ExecutionState
// (modeling the paper's runtime-served read/write synchronization
// requests). Model time is mapped to wall time through a configurable
// scale so a 10-second hyperperiod runs in tens of milliseconds.
//
// Wall-clock jitter means measured times are approximate; tests therefore
// assert *functional* properties exactly (deterministic histories,
// identical to the zero-delay reference) and timing properties with slack.
#pragma once

#include <map>

#include "runtime/vm_runtime.hpp"

namespace fppn {

struct ThreadRunOptions {
  std::int64_t frames = 1;
  /// Wall microseconds per model millisecond (default: 1 model ms = 50 us,
  /// i.e. 20x faster than real time).
  double micros_per_model_ms = 50.0;
  /// Actual execution time per job instance (busy-wait span); default WCET.
  ActualTimeFn actual_time;
};

/// Runs the schedule on real threads. Returns the same RunResult shape as
/// the VM (trace times are measured wall times converted back to model
/// milliseconds; deadline misses are measured, so they can include OS
/// scheduling noise).
///
/// Determinism: output *histories* are deterministic — functionally equal
/// to the zero-delay reference on every run (runtime_parity_test) — but
/// trace timestamps and measured deadline misses are wall-clock-dependent
/// by nature. Thread safety: safe to call concurrently (each call owns
/// its workers and execution state), though concurrent runs compete for
/// cores and distort each other's measured times. Throws
/// std::invalid_argument when frames < 1 or the schedule leaves a job
/// unplaced.
[[nodiscard]] RunResult run_static_order_threads(
    const Network& net, const DerivedTaskGraph& derived, const StaticSchedule& schedule,
    const ThreadRunOptions& opts = {}, const InputScripts& inputs = {},
    const std::map<ProcessId, SporadicScript>& sporadics = {});

}  // namespace fppn
