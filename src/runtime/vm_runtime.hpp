// The static-order online scheduling policy (§IV) on a simulated-time
// virtual multiprocessor.
//
// The policy repeats the schedule frame with period H. Each processor
// independently walks its jobs in static start-time order; every round is:
//   1. Synchronize invocation — wait for the event invocation of the
//      current job (periodic: at frame_base + A_i; sporadic server job:
//      at the t-th real invocation in its window, possibly earlier than
//      A_i, or mark the job 'false' at A_i when it did not occur),
//   2. Synchronize precedence — wait for all task-graph predecessors,
//   3. Execute the job, unless marked 'false'.
// Start times s_i from the static schedule are used only for the ORDER;
// actual starts synchronize on invocations and predecessors, which makes
// the policy robust to execution times differing from the WCETs (the
// motivation given in §IV for not using s_i directly).
//
// The virtual platform replaces the paper's Kalray MPPA: per-job actual
// execution times are injectable (default: the WCETs), and the frame
// overhead model of §V-A (41/20 ms arrival management) gates job starts.
// Everything is exact rational time and fully deterministic.
#pragma once

#include <functional>
#include <map>
#include <vector>

#include "fppn/exec_state.hpp"
#include "fppn/semantics.hpp"
#include "runtime/sporadic_window.hpp"
#include "sched/static_schedule.hpp"
#include "sim/overhead.hpp"
#include "sim/timed_trace.hpp"
#include "taskgraph/derivation.hpp"

namespace fppn {

/// Actual execution time of a job instance; frame is 0-based. Returning a
/// duration larger than the WCET models WCET under-estimation (the
/// measurement-based scenario of §IV); must be non-negative.
using ActualTimeFn = std::function<Duration(JobId, std::int64_t frame)>;

struct DeadlineMiss {
  std::int64_t frame = 0;
  JobId job;
  Time completion;
  Time deadline;
};

struct VmRunOptions {
  std::int64_t frames = 1;
  OverheadModel overhead;        ///< default: none
  ActualTimeFn actual_time;      ///< default (null): WCET
};

struct RunResult {
  TimedTrace trace;
  ExecutionHistories histories;
  std::vector<DeadlineMiss> misses;
  std::size_t jobs_executed = 0;
  std::size_t false_skips = 0;
  Time span_end;

  [[nodiscard]] bool met_all_deadlines() const { return misses.empty(); }
};

/// Executes `frames` repetitions of the schedule frame.
///
/// `sporadics` gives the real invocation time stamps of each sporadic
/// process over the whole run (global time, not per frame). `inputs` are
/// the external-input sample arrays.
///
/// Deterministic: a pure function of its arguments — simulated time is
/// exact rational, so traces, histories and deadline misses are
/// bit-identical across runs and platforms. Thread safety: no shared
/// state; safe to call concurrently. Throws std::invalid_argument when
/// the schedule does not place every job, frames < 1, or an injected
/// actual execution time is negative.
[[nodiscard]] RunResult run_static_order_vm(
    const Network& net, const DerivedTaskGraph& derived, const StaticSchedule& schedule,
    const VmRunOptions& opts = {}, const InputScripts& inputs = {},
    const std::map<ProcessId, SporadicScript>& sporadics = {});

/// The zero-delay reference for the same run: periodic invocations over
/// [0, frames*H) plus the sporadic scripts, executed with the zero-delay
/// semantics. Prop. 4.1 + Prop. 2.1 imply the VM histories must be
/// functionally equal to this (the property tests verify it).
/// Deterministic and safe to call concurrently; exceptions from the
/// semantics layer (ill-formed networks) propagate unchanged.
[[nodiscard]] ZeroDelayResult zero_delay_reference(
    const Network& net, const Duration& hyperperiod, std::int64_t frames,
    const InputScripts& inputs = {},
    const std::map<ProcessId, SporadicScript>& sporadics = {});

}  // namespace fppn
