#include "runtime/sporadic_window.hpp"

#include <algorithm>

namespace fppn {

ServerWindow server_window(const ServerInfo& info, Time boundary) {
  return ServerWindow{boundary - info.server_period, boundary,
                      info.priority_over_user};
}

Time subset_boundary(const ServerInfo& info, std::int64_t frame, std::int64_t subset,
                     const Duration& h) {
  return Time() + h * Rational(frame) + info.server_period * Rational(subset - 1);
}

std::optional<Time> tth_invocation_in(const std::vector<Time>& sorted,
                                      const ServerWindow& window, int t) {
  if (t < 1) {
    return std::nullopt;
  }
  // First index inside the window.
  const auto first = window.right_closed
                         ? std::upper_bound(sorted.begin(), sorted.end(), window.a)
                         : std::lower_bound(sorted.begin(), sorted.end(), window.a);
  const auto idx = (first - sorted.begin()) + (t - 1);
  if (idx >= static_cast<std::ptrdiff_t>(sorted.size())) {
    return std::nullopt;
  }
  const Time& cand = sorted[static_cast<std::size_t>(idx)];
  return window.contains(cand) ? std::optional<Time>(cand) : std::nullopt;
}

int count_invocations_in(const std::vector<Time>& sorted, const ServerWindow& window) {
  const auto lo = window.right_closed
                      ? std::upper_bound(sorted.begin(), sorted.end(), window.a)
                      : std::lower_bound(sorted.begin(), sorted.end(), window.a);
  const auto hi = window.right_closed
                      ? std::upper_bound(sorted.begin(), sorted.end(), window.b)
                      : std::lower_bound(sorted.begin(), sorted.end(), window.b);
  return static_cast<int>(hi - lo);
}

}  // namespace fppn
