// Differential fuzz loop over generated scenarios (ROADMAP item 4).
//
// Per seed: generate a scenario, derive its task graph, and cross-check
// the parallel search's winning schedule three ways —
//  1. roundtrip: write_network -> parse -> re-derive must be
//     fingerprint-identical (the repro path must be lossless),
//  2. reference: the toggled search (fast evaluator + a seed-sampled
//     incremental/visited-set combination) must pick a bit-identical
//     winner to the all-toggles-off naive reference search,
//  3. ta-oracle: the timed-automata translation executed one frame must
//     reproduce the winning schedule's exact start/end times (gated on
//     structurally clean schedules that fit the oracle horizon),
// plus a policy-trace sanity check on sporadic scenarios: the static-order
// VM run under seeded jittered invocation scripts must keep per-processor
// mutual exclusion, precedence order and WCET-long spans.
//
// Any mismatch is delta-debugged down to a minimal ScenarioSpec (drop
// processes/channels/priorities, simplify rates, halve WCETs) that still
// triggers the same check, and written atomically as a commented `.fppn`
// repro that `fppn_tool fuzz --replay` re-executes.
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <vector>

#include "gen/scenario.hpp"

namespace fppn::gen {

/// Which fast paths the toggled search run enables on top of the fast
/// evaluator (the reference run disables everything).
struct FuzzToggles {
  bool incremental = true;
  bool visited_set = true;
};

struct FuzzConfig {
  /// Fixed processor count; 0 samples 1..3 per scenario from the seed.
  std::int64_t processors = 0;
  /// Search budget per scenario — small on purpose: breadth beats depth
  /// for differential coverage.
  int max_iterations = 120;
  int restarts = 1;
  /// Upper bound on candidate spec evaluations during shrinking.
  int shrink_limit = 400;
  /// Test-only fault injection: report a synthetic mismatch for any
  /// scenario whose derived graph has >= 2 jobs. Exercises the shrink +
  /// repro + replay pipeline end to end.
  bool inject_bug = false;
};

/// One detected disagreement, named by the check that tripped.
struct FuzzMismatch {
  std::string check;   ///< "derivation", "roundtrip", "reference-winner",
                       ///< "ta-oracle", "policy-trace", "injected-bug"
  std::string detail;  ///< human-readable specifics
  std::int64_t processors = 2;
  FuzzToggles toggles;
};

struct FuzzVerdict {
  std::optional<FuzzMismatch> mismatch;
  std::size_t jobs = 0;        ///< derived job count (0 when derivation failed)
  bool ta_checked = false;     ///< the TA-oracle gate admitted this scenario
  bool trace_checked = false;  ///< the policy-trace check ran
};

/// Runs every check on an already-built network. `seed` drives the
/// toggle/processor sampling and the jittered scripts; `processors` <= 0
/// samples from the seed.
[[nodiscard]] FuzzVerdict check_network(const Network& net, const WcetMap& wcets,
                                        std::uint64_t seed, const FuzzConfig& cfg,
                                        std::int64_t processors,
                                        const std::optional<FuzzToggles>& toggles);

[[nodiscard]] FuzzVerdict check_scenario(const Scenario& scenario,
                                         const FuzzConfig& cfg);

/// Greedy delta-debugging: repeatedly applies the first reduction (drop a
/// process and everything referencing it, drop a channel/priority, reset
/// bursts, simplify rates to integers, halve or unit WCETs) whose result
/// still triggers `mismatch.check`, until none applies or the shrink
/// budget is exhausted. Returns the reduced scenario; `steps_out` (when
/// non-null) receives the number of candidate evaluations spent.
[[nodiscard]] Scenario shrink_scenario(const Scenario& scenario,
                                       const FuzzMismatch& mismatch,
                                       const FuzzConfig& cfg,
                                       int* steps_out = nullptr);

/// Writes `scenario` as a replayable `.fppn` repro ("# fppn-fuzz" header
/// comments + the network text) atomically into `dir` (created when
/// missing). Returns the file path.
std::string write_repro(const Scenario& scenario, const FuzzMismatch& mismatch,
                        const std::string& dir);

struct ReplayOutcome {
  FuzzVerdict verdict;
  std::string expected_check;  ///< "check=" header value, "" when absent
  std::uint64_t seed = 0;
};

/// Parses a repro file (or any plain `.fppn` with complete WCETs) and
/// re-runs the checks with the header's seed/processors/toggles. Throws
/// std::runtime_error when the file is unreadable or WCETs are missing.
[[nodiscard]] ReplayOutcome replay_repro(const std::string& path,
                                         const FuzzConfig& cfg);

struct FuzzRunConfig {
  std::uint64_t base_seed = 1;
  std::int64_t seeds = 100;
  /// Families to draw from (round-robin by seed); empty = all.
  std::vector<Family> families;
  /// Repro output directory; empty = mismatches reported but not written.
  std::string repro_dir;
  FuzzConfig check;
};

struct FuzzStats {
  std::size_t scenarios = 0;
  std::size_t jobs = 0;          ///< total derived jobs across scenarios
  std::size_t ta_checked = 0;    ///< scenarios the TA-oracle gate admitted
  std::size_t trace_checked = 0; ///< scenarios the policy-trace check ran on
  std::map<std::string, std::size_t> per_family;
  std::vector<FuzzMismatch> mismatches;
  std::vector<std::string> repro_paths;  ///< parallel to `mismatches` when written
};

/// The fuzz loop: seeds base_seed..base_seed+seeds-1, shrink + write a
/// repro per mismatch. Deterministic for a given config.
[[nodiscard]] FuzzStats run_fuzz(const FuzzRunConfig& cfg);

}  // namespace fppn::gen
