// Seeded, platform-deterministic scenario generator (ROADMAP item 4).
//
// Produces parameterized workload families the paper's three apps never
// exercise: deep pipelines, wide fan-outs, diamonds, random DAGs,
// multi-rate graphs, sporadic networks with jittered arrivals, fractional
// period/WCET mixes that force the Rational fallback, and near-overflow
// magnitudes that force the tick-timebase fallback. Everything is a pure
// function of the seed: the same seed yields a byte-identical `.fppn`
// rendering on every platform, thread count and process invocation (the
// generator draws from gen::Rng, never from std:: distributions).
//
// Two layers:
//  - network-level scenarios (ScenarioSpec -> Network + WcetMap) feed the
//    fuzz loop in gen/fuzz.*; the spec stays mutable so the shrinker can
//    delta-debug it;
//  - graph-level families (layered_task_graph, edge_case_task_graph) feed
//    the evaluator/search differential suites directly — this is where
//    zero-WCET jobs live, which network derivation rejects by design.
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <vector>

#include "fppn/network.hpp"
#include "taskgraph/derivation.hpp"
#include "taskgraph/task_graph.hpp"

namespace fppn::gen {

enum class Family {
  kPipeline,      ///< deep chain, equal rates, optional buffered links
  kFanOut,        ///< one source, wide worker layer, one sink
  kDiamond,       ///< source -> parallel branches -> join
  kRandomDag,     ///< random forward channel structure
  kMultiRate,     ///< harmonic / near-harmonic period mixes, bursts
  kSporadic,      ///< sporadic processes + periodic user (server derivation)
  kFractional,    ///< fractional periods and WCETs (Rational stress)
  kNearOverflow,  ///< denominators that overflow the int64 tick timebase
};

[[nodiscard]] const std::vector<Family>& all_families();
[[nodiscard]] std::string to_string(Family family);
[[nodiscard]] std::optional<Family> parse_family(const std::string& text);

/// Mutable description of one generated process. `sporadic` implies the
/// (burst, period) bound semantics; otherwise burst > 1 means
/// multi-periodic.
struct ProcessSpec {
  std::string name;
  bool sporadic = false;
  int burst = 1;
  Duration period;
  Duration deadline;
  Duration wcet;
};

/// Channel writer -> reader by process index. capacity >= 2 marks a
/// buffered FIFO (both endpoints must stay periodic, equal rate).
struct ChannelSpec {
  std::string name;
  ChannelKind kind = ChannelKind::kFifo;
  int capacity = 1;
  std::size_t writer = 0;
  std::size_t reader = 0;
};

/// Explicit functional-priority edge higher -> lower (process indices).
struct PrioritySpec {
  std::size_t higher = 0;
  std::size_t lower = 0;
};

/// The mutable scenario description the shrinker operates on. Building
/// always finishes with auto_rate_monotonic_priorities(), so the spec only
/// needs explicit priorities where the rate-monotonic rule would pick the
/// wrong direction.
struct ScenarioSpec {
  std::vector<ProcessSpec> processes;
  std::vector<ChannelSpec> channels;
  std::vector<PrioritySpec> priorities;
};

struct BuiltScenario {
  Network net;
  WcetMap wcets;
};

/// Validates and builds the spec (throws std::invalid_argument /
/// std::logic_error on inconsistent specs, exactly like NetworkBuilder).
[[nodiscard]] BuiltScenario build_scenario(const ScenarioSpec& spec);

struct Scenario {
  ScenarioSpec spec;
  Network net;
  WcetMap wcets;
  Family family = Family::kPipeline;
  std::uint64_t seed = 0;
  std::string name;  ///< "pipeline-42"
};

/// Generates one scenario. Deterministic: a pure function of (family,
/// seed). Distinct seeds below 100003 are guaranteed to produce distinct
/// task-graph fingerprints (a seed-derived epsilon is folded into process
/// 0's deadline).
[[nodiscard]] Scenario make_scenario(Family family, std::uint64_t seed);

/// Family chosen round-robin from the seed.
[[nodiscard]] Scenario make_scenario(std::uint64_t seed);

/// The scenario rendered in the `.fppn` text format (io::write_network).
[[nodiscard]] std::string scenario_text(const Scenario& scenario);

/// Admissible jittered invocation scripts for every sporadic process of
/// `net` over `frames` hyperperiods: per (m, T) window, 0..m invocations
/// at a jittered anchor — some server jobs become 'false', others fire
/// early inside their window. Deterministic per seed.
[[nodiscard]] std::map<ProcessId, SporadicScript> jittered_scripts(
    const Network& net, std::uint64_t seed, std::int64_t frames,
    const Duration& hyperperiod);

/// Graph-level family for the evaluator/search differential suites: a
/// layered DAG with fractional WCETs, random arrivals and forward fan-out
/// (the shape the old ad-hoc per-test generators produced, now shared and
/// platform-deterministic).
[[nodiscard]] TaskGraph layered_task_graph(std::uint64_t seed);

/// Graph-level edge cases: zero-WCET jobs, all-identical jobs (tie
/// storms), tick-overflow denominators, trivial/antichain shapes.
[[nodiscard]] TaskGraph edge_case_task_graph(std::uint64_t seed);

}  // namespace fppn::gen
