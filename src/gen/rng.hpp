// Platform-deterministic PRNG for the scenario generator.
//
// The generator's determinism contract — same seed => byte-identical
// scenario on every platform, thread count and process invocation — cannot
// be built on std::uniform_int_distribution: the standard leaves its
// algorithm implementation-defined, so libstdc++ and libc++ draw different
// values from the same engine state. SplitMix64 with explicit modular
// reduction is fully specified here and therefore stable everywhere.
#pragma once

#include <cstdint>
#include <vector>

namespace fppn::gen {

class Rng {
 public:
  explicit Rng(std::uint64_t seed) noexcept : state_(seed) {}

  /// Next 64 pseudo-random bits (SplitMix64).
  std::uint64_t next() noexcept {
    std::uint64_t z = (state_ += 0x9e3779b97f4a7c15ULL);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
  }

  /// Integer in [lo, hi], both inclusive. Plain modular reduction: the
  /// tiny bias is irrelevant for workload generation, the cross-platform
  /// byte-identity is not.
  std::int64_t range(std::int64_t lo, std::int64_t hi) noexcept {
    const auto span = static_cast<std::uint64_t>(hi - lo) + 1;
    return lo + static_cast<std::int64_t>(next() % span);
  }

  /// True with probability num/den.
  bool chance(std::int64_t num, std::int64_t den) noexcept {
    return range(0, den - 1) < num;
  }

  template <class T>
  const T& pick(const std::vector<T>& v) noexcept {
    return v[static_cast<std::size_t>(
        range(0, static_cast<std::int64_t>(v.size()) - 1))];
  }

 private:
  std::uint64_t state_;
};

}  // namespace fppn::gen
