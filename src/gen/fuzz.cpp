#include "gen/fuzz.hpp"

#include <algorithm>
#include <fstream>
#include <sstream>
#include <stdexcept>
#include <utility>

#include "engine/engine.hpp"
#include "io/atomic_file.hpp"
#include "io/text_format.hpp"
#include "runtime/vm_runtime.hpp"
#include "ta/translate.hpp"
#include "taskgraph/fingerprint.hpp"

namespace fppn::gen {
namespace {

std::int64_t sample_processors(std::uint64_t seed) {
  return 1 + static_cast<std::int64_t>((seed >> 8) % 3);
}

FuzzToggles sample_toggles(std::uint64_t seed) {
  FuzzToggles t;
  t.incremental = ((seed >> 4) & 1) != 0;
  t.visited_set = ((seed >> 5) & 1) != 0;
  return t;
}

/// The reference run's engine config: single worker, single seed, every
/// kernel toggle off — the slow-but-simple baseline the toggled run must
/// match bit for bit.
engine::SearchConfig search_config(const FuzzConfig& cfg, std::uint64_t seed,
                                   std::int64_t processors) {
  engine::SearchConfig config;
  config.processors = processors;
  config.workers = 1;
  config.seeds_per_strategy = 1;
  config.seed = seed;
  config.max_iterations = cfg.max_iterations;
  config.restarts = cfg.restarts;
  config.warm_start = false;  // no cache attached; keep the run pure
  config.use_fast_evaluator = false;
  config.use_incremental = false;
  config.use_visited_set = false;
  return config;
}

std::string time_str(const Time& t) { return t.value().to_string(); }

/// Full winner comparison: everything the determinism contract promises.
std::optional<std::string> compare_results(const TaskGraph& tg,
                                           const sched::ParallelSearchResult& ref,
                                           const sched::ParallelSearchResult& got) {
  if (ref.best.strategy != got.best.strategy) {
    return "winning strategy differs: reference=" + ref.best.strategy +
           " toggled=" + got.best.strategy;
  }
  if (ref.seed != got.seed) {
    return "winning seed differs: reference=" + std::to_string(ref.seed) +
           " toggled=" + std::to_string(got.seed);
  }
  if (ref.best.feasible != got.best.feasible) {
    return "feasibility differs";
  }
  if (ref.best.deadline_violations != got.best.deadline_violations) {
    return "deadline violation count differs: reference=" +
           std::to_string(ref.best.deadline_violations) +
           " toggled=" + std::to_string(got.best.deadline_violations);
  }
  if (ref.best.makespan != got.best.makespan) {
    return "makespan differs: reference=" + time_str(ref.best.makespan) +
           " toggled=" + time_str(got.best.makespan);
  }
  for (std::size_t i = 0; i < tg.job_count(); ++i) {
    const JobId j(i);
    if (ref.best.schedule.is_placed(j) != got.best.schedule.is_placed(j)) {
      return "placement presence differs for " + tg.job(j).name;
    }
    if (!ref.best.schedule.is_placed(j)) {
      continue;
    }
    const Placement& a = ref.best.schedule.placement(j);
    const Placement& b = got.best.schedule.placement(j);
    if (a.processor != b.processor || a.start != b.start) {
      return "placement differs for " + tg.job(j).name + ": reference=(proc " +
             std::to_string(a.processor.value()) + ", " + time_str(a.start) +
             ") toggled=(proc " + std::to_string(b.processor.value()) + ", " +
             time_str(b.start) + ")";
    }
  }
  return std::nullopt;
}

/// TA-oracle admission: the static-order TA reproduces exactly the
/// schedules that are structurally clean (every job placed, no arrival/
/// precedence/mutex violation — list-scheduler outputs always are) and
/// whose span fits the translation's one-frame horizon. Deadline misses
/// are fine: the TA does not guard on deadlines.
bool ta_gate(const TaskGraph& tg, const sched::StrategyResult& best,
             const ViolationCounts& counts, const Duration& hyperperiod) {
  if (tg.job_count() == 0) {
    return false;
  }
  if (counts.unscheduled != 0 || counts.arrival != 0 || counts.precedence != 0 ||
      counts.mutex != 0) {
    return false;
  }
  return best.makespan <= Time(hyperperiod.value());
}

std::optional<std::string> check_ta_oracle(const TaskGraph& tg,
                                           const sched::StrategyResult& best) {
  const ta::TaJobTimes times = ta::run_schedule_oracle(tg, best.schedule);
  for (std::size_t i = 0; i < tg.job_count(); ++i) {
    const JobId j(i);
    const auto s = times.start.find(j);
    const auto e = times.end.find(j);
    if (s == times.start.end() || e == times.end.end()) {
      return "TA run never executed " + tg.job(j).name;
    }
    const Time want_start = best.schedule.start(j);
    const Time want_end = best.schedule.end(j, tg);
    if (s->second != want_start || e->second != want_end) {
      return "TA times for " + tg.job(j).name + ": schedule=[" +
             time_str(want_start) + ", " + time_str(want_end) + ") ta=[" +
             time_str(s->second) + ", " + time_str(e->second) + ")";
    }
  }
  return std::nullopt;
}

/// Sanity over the online policy's trace under jittered sporadic arrivals:
/// executed spans are WCET-long, mutually exclusive per processor, and
/// respect the task-graph precedence; non-server jobs never start before
/// their arrival. (Server jobs may: the policy starts them at the real
/// invocation, possibly earlier than the derived A_i — §IV robustness.)
std::optional<std::string> check_policy_trace(const Network& net,
                                              const DerivedTaskGraph& derived,
                                              const StaticSchedule& schedule,
                                              std::uint64_t seed) {
  const auto scripts = jittered_scripts(net, seed, 1, derived.hyperperiod);
  const RunResult run =
      run_static_order_vm(net, derived, schedule, VmRunOptions{}, {}, scripts);
  const TaskGraph& tg = derived.graph;
  struct Span {
    Time start;
    Time end;
    std::size_t processor = 0;
  };
  std::map<std::string, Span> spans;
  for (const TraceEvent& e : run.trace.of_kind(TraceEventKind::kJobRun)) {
    if (!e.end.has_value()) {
      return "job-run event without an end: " + e.label;
    }
    spans[e.label] = Span{e.time, *e.end, e.processor.value()};
  }
  std::map<std::size_t, std::vector<Span>> per_proc;
  for (std::size_t i = 0; i < tg.job_count(); ++i) {
    const JobId j(i);
    const Job& job = tg.job(j);
    const auto it = spans.find(job.name);
    if (it == spans.end()) {
      if (!job.is_server) {
        return "periodic job never executed: " + job.name;
      }
      continue;  // false server job, legitimately skipped
    }
    const Span& span = it->second;
    if (span.end - span.start != job.wcet) {
      return "span of " + job.name + " is not WCET-long: [" + time_str(span.start) +
             ", " + time_str(span.end) + ") vs C=" + job.wcet.to_string();
    }
    if (!job.is_server && span.start < job.arrival) {
      return "periodic job " + job.name + " started at " + time_str(span.start) +
             " before its arrival " + time_str(job.arrival);
    }
    for (const JobId p : tg.predecessors(j)) {
      const auto pit = spans.find(tg.job(p).name);
      if (pit != spans.end() && pit->second.end > span.start) {
        return "precedence violated: " + tg.job(p).name + " ends at " +
               time_str(pit->second.end) + " after " + job.name + " starts at " +
               time_str(span.start);
      }
    }
    per_proc[span.processor].push_back(span);
  }
  for (auto& [proc, list] : per_proc) {
    std::sort(list.begin(), list.end(),
              [](const Span& a, const Span& b) { return a.start < b.start; });
    for (std::size_t i = 0; i + 1 < list.size(); ++i) {
      if (list[i + 1].start < list[i].end) {
        return "overlapping executions on processor " + std::to_string(proc);
      }
    }
  }
  return std::nullopt;
}

ScenarioSpec drop_process(const ScenarioSpec& in, std::size_t victim) {
  ScenarioSpec out;
  for (std::size_t i = 0; i < in.processes.size(); ++i) {
    if (i != victim) {
      out.processes.push_back(in.processes[i]);
    }
  }
  const auto remap = [victim](std::size_t idx, std::size_t& mapped) {
    if (idx == victim) {
      return false;
    }
    mapped = idx > victim ? idx - 1 : idx;
    return true;
  };
  for (const ChannelSpec& c : in.channels) {
    ChannelSpec copy = c;
    if (remap(c.writer, copy.writer) && remap(c.reader, copy.reader)) {
      out.channels.push_back(copy);
    }
  }
  for (const PrioritySpec& p : in.priorities) {
    PrioritySpec copy = p;
    if (remap(p.higher, copy.higher) && remap(p.lower, copy.lower)) {
      out.priorities.push_back(copy);
    }
  }
  return out;
}

Duration simplify_duration(const Duration& d) {
  // Round up to a whole millisecond (never down: periods/deadlines must
  // stay positive and deadlines must stay achievable-ish).
  const Rational& v = d.value();
  if (v.den() == 1) {
    return d;
  }
  return Duration::ms(v.num() / v.den() + 1);
}

std::string sanitize_line(std::string text) {
  for (char& c : text) {
    if (c == '\n' || c == '\r') {
      c = ' ';
    }
  }
  return text;
}

}  // namespace

FuzzVerdict check_network(const Network& net, const WcetMap& wcets,
                          std::uint64_t seed, const FuzzConfig& cfg,
                          std::int64_t processors,
                          const std::optional<FuzzToggles>& toggles) {
  FuzzVerdict v;
  const std::int64_t procs = processors > 0 ? processors : sample_processors(seed);
  const FuzzToggles tog = toggles ? *toggles : sample_toggles(seed);
  const auto fail = [&](std::string check, std::string detail) {
    FuzzMismatch m;
    m.check = std::move(check);
    m.detail = std::move(detail);
    m.processors = procs;
    m.toggles = tog;
    v.mismatch = std::move(m);
  };

  DerivedTaskGraph derived;
  try {
    derived = derive_task_graph(net, wcets);
  } catch (const std::exception& e) {
    fail("derivation", e.what());
    return v;
  }
  v.jobs = derived.graph.job_count();

  if (cfg.inject_bug && v.jobs >= 2) {
    fail("injected-bug",
         "synthetic scoring fault fires on graphs with >= 2 jobs (got " +
             std::to_string(v.jobs) + ")");
    return v;
  }

  try {
    const std::string text = io::write_network(net, wcets);
    const io::ParsedNetwork re = io::parse_network_string(text);
    if (!re.wcets_complete) {
      fail("roundtrip", "writer output lost WCET declarations");
      return v;
    }
    const DerivedTaskGraph rederived = derive_task_graph(re.net, re.wcets);
    const std::uint64_t a = fingerprint(derived.graph);
    const std::uint64_t b = fingerprint(rederived.graph);
    if (a != b) {
      fail("roundtrip", "fingerprint changed across write->parse->derive: " +
                            fingerprint_hex(a) + " -> " + fingerprint_hex(b));
      return v;
    }
  } catch (const std::exception& e) {
    fail("roundtrip", e.what());
    return v;
  }

  sched::ParallelSearchResult reference;
  sched::ParallelSearchResult toggled;
  try {
    // Both runs go through the engine layer, like every other entry
    // point — the differential check therefore also covers the request
    // translation, not just the search kernel.
    const engine::SearchConfig ref_config = search_config(cfg, seed, procs);
    reference = engine::solve_graph(derived.graph, ref_config).search;
    engine::SearchConfig tog_config = ref_config;
    tog_config.use_fast_evaluator = true;
    tog_config.use_incremental = tog.incremental;
    tog_config.use_visited_set = tog.visited_set;
    tog_config.workers = 1 + static_cast<int>((seed >> 2) % 2);
    toggled = engine::solve_graph(derived.graph, tog_config).search;
  } catch (const std::exception& e) {
    fail("reference-winner", std::string("search threw: ") + e.what());
    return v;
  }
  if (auto diff = compare_results(derived.graph, reference, toggled)) {
    fail("reference-winner", *diff);
    return v;
  }

  const ViolationCounts counts =
      toggled.best.schedule.count_violations(derived.graph);
  if (ta_gate(derived.graph, toggled.best, counts, derived.hyperperiod)) {
    v.ta_checked = true;
    try {
      if (auto diff = check_ta_oracle(derived.graph, toggled.best)) {
        fail("ta-oracle", *diff);
        return v;
      }
    } catch (const std::exception& e) {
      fail("ta-oracle", std::string("oracle threw: ") + e.what());
      return v;
    }
  }

  if (!derived.servers.empty() && counts.unscheduled == 0) {
    v.trace_checked = true;
    try {
      if (auto diff = check_policy_trace(net, derived, toggled.best.schedule, seed)) {
        fail("policy-trace", *diff);
        return v;
      }
    } catch (const std::exception& e) {
      fail("policy-trace", std::string("vm run threw: ") + e.what());
      return v;
    }
  }
  return v;
}

FuzzVerdict check_scenario(const Scenario& scenario, const FuzzConfig& cfg) {
  return check_network(scenario.net, scenario.wcets, scenario.seed, cfg,
                       cfg.processors, std::nullopt);
}

Scenario shrink_scenario(const Scenario& scenario, const FuzzMismatch& mismatch,
                         const FuzzConfig& cfg, int* steps_out) {
  Scenario current = scenario;
  int steps = 0;
  // Re-check a candidate spec under the exact conditions of the original
  // mismatch; reductions that fail to build/derive are simply rejected.
  const auto triggers = [&](const ScenarioSpec& spec) -> bool {
    if (steps >= cfg.shrink_limit) {
      return false;
    }
    ++steps;
    try {
      BuiltScenario built = build_scenario(spec);
      const FuzzVerdict v =
          check_network(built.net, built.wcets, scenario.seed, cfg,
                        mismatch.processors, mismatch.toggles);
      if (v.mismatch.has_value() && v.mismatch->check == mismatch.check) {
        current.spec = spec;
        current.net = std::move(built.net);
        current.wcets = std::move(built.wcets);
        return true;
      }
    } catch (const std::exception&) {
      // invalid reduction — keep shrinking elsewhere
    }
    return false;
  };

  bool improved = true;
  while (improved && steps < cfg.shrink_limit) {
    improved = false;
    const ScenarioSpec snapshot = current.spec;
    // 1. Drop whole processes (and everything referencing them).
    for (std::size_t i = snapshot.processes.size(); i-- > 0 && !improved;) {
      if (snapshot.processes.size() > 1 && triggers(drop_process(snapshot, i))) {
        improved = true;
      }
    }
    if (improved) {
      continue;
    }
    // 2. Drop channels.
    for (std::size_t i = snapshot.channels.size(); i-- > 0 && !improved;) {
      ScenarioSpec candidate = snapshot;
      candidate.channels.erase(candidate.channels.begin() +
                               static_cast<std::ptrdiff_t>(i));
      if (triggers(candidate)) {
        improved = true;
      }
    }
    if (improved) {
      continue;
    }
    // 3. Drop explicit priorities.
    for (std::size_t i = snapshot.priorities.size(); i-- > 0 && !improved;) {
      ScenarioSpec candidate = snapshot;
      candidate.priorities.erase(candidate.priorities.begin() +
                                 static_cast<std::ptrdiff_t>(i));
      if (triggers(candidate)) {
        improved = true;
      }
    }
    if (improved) {
      continue;
    }
    // 4. Per-process simplifications: burst, rates, WCETs.
    for (std::size_t i = 0; i < snapshot.processes.size() && !improved; ++i) {
      const ProcessSpec& p = snapshot.processes[i];
      if (p.burst != 1) {
        ScenarioSpec candidate = snapshot;
        candidate.processes[i].burst = 1;
        if (triggers(candidate)) {
          improved = true;
          break;
        }
      }
      const Duration simple_period = simplify_duration(p.period);
      if (simple_period != p.period) {
        ScenarioSpec candidate = snapshot;
        candidate.processes[i].period = simple_period;
        candidate.processes[i].deadline = simple_period;
        if (triggers(candidate)) {
          improved = true;
          break;
        }
      }
      if (p.deadline != p.period) {
        ScenarioSpec candidate = snapshot;
        candidate.processes[i].deadline = p.period;
        if (triggers(candidate)) {
          improved = true;
          break;
        }
      }
      if (p.wcet != Duration::ms(1)) {
        ScenarioSpec candidate = snapshot;
        candidate.processes[i].wcet = Duration::ms(1);
        if (triggers(candidate)) {
          improved = true;
          break;
        }
        candidate.processes[i].wcet = p.wcet / Rational(2);
        if (triggers(candidate)) {
          improved = true;
          break;
        }
      }
    }
  }
  if (steps_out != nullptr) {
    *steps_out = steps;
  }
  return current;
}

std::string write_repro(const Scenario& scenario, const FuzzMismatch& mismatch,
                        const std::string& dir) {
  io::ensure_directory(dir, "fuzz repro directory");
  std::ostringstream out;
  out << "# fppn-fuzz v1 repro\n";
  out << "# fppn-fuzz seed=" << scenario.seed
      << " family=" << to_string(scenario.family) << "\n";
  out << "# fppn-fuzz processors=" << mismatch.processors
      << " incremental=" << (mismatch.toggles.incremental ? 1 : 0)
      << " visited=" << (mismatch.toggles.visited_set ? 1 : 0) << "\n";
  out << "# fppn-fuzz check=" << mismatch.check << "\n";
  out << "# detail: " << sanitize_line(mismatch.detail) << "\n";
  out << scenario_text(scenario);
  const std::string path =
      dir + "/repro-" + to_string(scenario.family) + "-" +
      std::to_string(scenario.seed) + ".fppn";
  io::write_file_atomic(path, out.str());
  return path;
}

ReplayOutcome replay_repro(const std::string& path, const FuzzConfig& cfg) {
  std::ifstream in(path);
  if (!in) {
    throw std::runtime_error("cannot open repro file: " + path);
  }
  std::ostringstream buffer;
  buffer << in.rdbuf();
  const std::string text = buffer.str();

  ReplayOutcome out;
  std::int64_t processors = 0;
  FuzzToggles toggles;
  bool have_toggles = false;
  std::istringstream lines(text);
  std::string line;
  while (std::getline(lines, line)) {
    const std::string prefix = "# fppn-fuzz ";
    if (line.rfind(prefix, 0) != 0) {
      continue;
    }
    std::istringstream tokens(line.substr(prefix.size()));
    std::string token;
    while (tokens >> token) {
      const auto eq = token.find('=');
      if (eq == std::string::npos) {
        continue;
      }
      const std::string key = token.substr(0, eq);
      const std::string value = token.substr(eq + 1);
      try {
        if (key == "seed") {
          out.seed = std::stoull(value);
        } else if (key == "processors") {
          processors = std::stoll(value);
        } else if (key == "incremental") {
          toggles.incremental = value != "0";
          have_toggles = true;
        } else if (key == "visited") {
          toggles.visited_set = value != "0";
          have_toggles = true;
        } else if (key == "check") {
          out.expected_check = value;
        }
      } catch (const std::exception&) {
        throw std::runtime_error("malformed fppn-fuzz header token '" + token +
                                 "' in " + path);
      }
    }
  }

  io::ParsedNetwork parsed;
  try {
    parsed = io::parse_network_string(text);
  } catch (const std::exception& e) {
    throw std::runtime_error("repro file " + path + " does not parse: " + e.what());
  }
  if (!parsed.wcets_complete) {
    throw std::runtime_error("repro file " + path +
                             " lacks wcet= on some process; cannot replay");
  }
  out.verdict = check_network(
      parsed.net, parsed.wcets, out.seed, cfg, processors,
      have_toggles ? std::optional<FuzzToggles>(toggles) : std::nullopt);
  return out;
}

FuzzStats run_fuzz(const FuzzRunConfig& cfg) {
  FuzzStats stats;
  const std::vector<Family>& families =
      cfg.families.empty() ? all_families() : cfg.families;
  for (std::int64_t i = 0; i < cfg.seeds; ++i) {
    const std::uint64_t seed = cfg.base_seed + static_cast<std::uint64_t>(i);
    const Family family = families[seed % families.size()];
    const Scenario scenario = make_scenario(family, seed);
    const FuzzVerdict verdict = check_scenario(scenario, cfg.check);
    ++stats.scenarios;
    stats.jobs += verdict.jobs;
    stats.ta_checked += verdict.ta_checked ? 1 : 0;
    stats.trace_checked += verdict.trace_checked ? 1 : 0;
    ++stats.per_family[to_string(family)];
    if (!verdict.mismatch.has_value()) {
      continue;
    }
    const Scenario shrunk =
        shrink_scenario(scenario, *verdict.mismatch, cfg.check, nullptr);
    stats.mismatches.push_back(*verdict.mismatch);
    if (!cfg.repro_dir.empty()) {
      stats.repro_paths.push_back(
          write_repro(shrunk, *verdict.mismatch, cfg.repro_dir));
    }
  }
  return stats;
}

}  // namespace fppn::gen
