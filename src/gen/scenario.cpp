#include "gen/scenario.hpp"

#include <stdexcept>
#include <utility>

#include "gen/rng.hpp"
#include "io/text_format.hpp"

namespace fppn::gen {
namespace {

// Seed-derived deadline epsilon subtracted from process 0's deadline so
// distinct seeds below 100003 provably produce distinct task-graph
// fingerprints even when every other drawn parameter collides. Subtraction
// (not addition) keeps A + d <= H, so frame truncation can never mask it;
// the value stays in (0, 1/2) ms, so any base deadline >= 1 ms stays
// positive.
Duration seed_epsilon(std::uint64_t seed) {
  return Duration(Rational(1 + static_cast<std::int64_t>(seed % 100003), 200006));
}

void apply_seed_epsilon(ScenarioSpec& spec, std::uint64_t seed) {
  spec.processes.at(0).deadline = spec.processes.at(0).deadline - seed_epsilon(seed);
}

std::string proc_name(std::size_t i) { return "P" + std::to_string(i); }

ProcessSpec periodic_spec(std::size_t i, Duration period, Duration deadline,
                          Duration wcet, int burst = 1) {
  ProcessSpec p;
  p.name = proc_name(i);
  p.burst = burst;
  p.period = std::move(period);
  p.deadline = std::move(deadline);
  p.wcet = std::move(wcet);
  return p;
}

ChannelSpec link(std::size_t idx, std::size_t writer, std::size_t reader,
                 ChannelKind kind = ChannelKind::kFifo, int capacity = 1) {
  ChannelSpec c;
  c.name = "c" + std::to_string(idx);
  c.kind = kind;
  c.capacity = capacity;
  c.writer = writer;
  c.reader = reader;
  return c;
}

// Draws a WCET targeting total work around `load_pct`% of period*processors
// spread over `jobs_sharing_load` jobs, with an optional small fractional
// part so Rational paths stay exercised.
Duration draw_wcet(Rng& rng, const Duration& period, std::int64_t jobs_sharing_load,
                   std::int64_t load_pct, bool allow_fraction) {
  const Rational budget =
      period.value() * Rational(load_pct, 100 * std::max<std::int64_t>(jobs_sharing_load, 1));
  std::int64_t hi = budget.num() / budget.den();  // floor
  if (hi < 1) {
    hi = 1;
  }
  Rational w(rng.range(1, hi));
  if (allow_fraction && rng.chance(1, 3)) {
    w = w + Rational(rng.range(1, 4), rng.range(2, 7));
  }
  return Duration(w);
}

// Explicit FP edges for every channel-sharing pair, all oriented one way
// (ascending or descending process index). A single global orientation
// keeps the FP graph trivially acyclic; mixing orientations across pairs
// can close a cycle through a third process.
void orient_all_pairs(ScenarioSpec& spec, bool ascending) {
  for (const ChannelSpec& c : spec.channels) {
    const std::size_t lo = std::min(c.writer, c.reader);
    const std::size_t hi = std::max(c.writer, c.reader);
    PrioritySpec p;
    p.higher = ascending ? lo : hi;
    p.lower = ascending ? hi : lo;
    bool dup = false;
    for (const PrioritySpec& q : spec.priorities) {
      if (q.higher == p.higher && q.lower == p.lower) {
        dup = true;
        break;
      }
    }
    if (!dup) {
      spec.priorities.push_back(p);
    }
  }
}

// Equal-rate families may flip the whole FP orientation against the
// declaration order. Buffered channels pin it ascending: the builder
// installs writer -> reader itself and a conflicting explicit edge would
// fail the DAG check.
void finish_equal_rate_priorities(ScenarioSpec& spec, Rng& rng, bool has_buffered) {
  const bool ascending = has_buffered || rng.chance(3, 4);
  if (!ascending) {
    orient_all_pairs(spec, false);
    return;
  }
  // Ascending matches the rate-monotonic tie-break (declaration order), so
  // auto_rate_monotonic_priorities() completes whatever subset we make
  // explicit; emit a random subset to exercise the explicit-edge path.
  for (const ChannelSpec& c : spec.channels) {
    if (c.capacity == 1 && rng.chance(1, 3)) {
      PrioritySpec p;
      p.higher = std::min(c.writer, c.reader);
      p.lower = std::max(c.writer, c.reader);
      spec.priorities.push_back(p);
    }
  }
}

ScenarioSpec gen_pipeline(Rng& rng, std::uint64_t seed) {
  ScenarioSpec spec;
  const std::int64_t stages = rng.range(4, 24);
  const Duration period = Duration::ms(rng.pick<std::int64_t>({20, 40, 60, 100}));
  const int burst = rng.chance(1, 4) ? 2 : 1;
  for (std::int64_t i = 0; i < stages; ++i) {
    spec.processes.push_back(periodic_spec(
        static_cast<std::size_t>(i), period, period,
        draw_wcet(rng, period, stages * burst, 120, true), burst));
  }
  bool has_buffered = false;
  for (std::int64_t i = 0; i + 1 < stages; ++i) {
    ChannelKind kind = rng.chance(1, 4) ? ChannelKind::kBlackboard : ChannelKind::kFifo;
    int capacity = 1;
    if (kind == ChannelKind::kFifo && rng.chance(1, 5)) {
      capacity = static_cast<int>(rng.range(2, 3));
      has_buffered = true;
    }
    spec.channels.push_back(link(static_cast<std::size_t>(i), static_cast<std::size_t>(i),
                                 static_cast<std::size_t>(i + 1), kind, capacity));
  }
  finish_equal_rate_priorities(spec, rng, has_buffered);
  apply_seed_epsilon(spec, seed);
  return spec;
}

ScenarioSpec gen_fan_out(Rng& rng, std::uint64_t seed) {
  ScenarioSpec spec;
  const std::int64_t width = rng.range(3, 16);
  const Duration period = Duration::ms(rng.pick<std::int64_t>({20, 40, 60}));
  const std::int64_t total = width + 2;  // source + workers + sink
  for (std::int64_t i = 0; i < total; ++i) {
    spec.processes.push_back(periodic_spec(static_cast<std::size_t>(i), period, period,
                                           draw_wcet(rng, period, total, 150, true)));
  }
  std::size_t cid = 0;
  for (std::int64_t w = 1; w <= width; ++w) {
    const ChannelKind kind =
        rng.chance(1, 4) ? ChannelKind::kBlackboard : ChannelKind::kFifo;
    spec.channels.push_back(link(cid++, 0, static_cast<std::size_t>(w), kind));
    spec.channels.push_back(link(cid++, static_cast<std::size_t>(w),
                                 static_cast<std::size_t>(total - 1), kind));
  }
  finish_equal_rate_priorities(spec, rng, false);
  apply_seed_epsilon(spec, seed);
  return spec;
}

ScenarioSpec gen_diamond(Rng& rng, std::uint64_t seed) {
  ScenarioSpec spec;
  const std::int64_t branches = rng.range(2, 4);
  const std::int64_t branch_len = rng.range(1, 2);
  const Duration period = Duration::ms(rng.pick<std::int64_t>({20, 40, 80}));
  const std::int64_t total = 2 + branches * branch_len;
  for (std::int64_t i = 0; i < total; ++i) {
    spec.processes.push_back(periodic_spec(static_cast<std::size_t>(i), period, period,
                                           draw_wcet(rng, period, total, 140, true)));
  }
  // Source is 0, join is total-1, branch b occupies [1 + b*len, 1 + (b+1)*len).
  std::size_t cid = 0;
  for (std::int64_t b = 0; b < branches; ++b) {
    std::size_t prev = 0;
    for (std::int64_t s = 0; s < branch_len; ++s) {
      const auto node = static_cast<std::size_t>(1 + b * branch_len + s);
      spec.channels.push_back(link(cid++, prev, node));
      prev = node;
    }
    spec.channels.push_back(link(cid++, prev, static_cast<std::size_t>(total - 1)));
  }
  finish_equal_rate_priorities(spec, rng, false);
  apply_seed_epsilon(spec, seed);
  return spec;
}

ScenarioSpec gen_random_dag(Rng& rng, std::uint64_t seed) {
  ScenarioSpec spec;
  const std::int64_t n = rng.range(4, 12);
  const Duration period = Duration::ms(rng.pick<std::int64_t>({20, 40, 50, 100}));
  for (std::int64_t i = 0; i < n; ++i) {
    spec.processes.push_back(periodic_spec(static_cast<std::size_t>(i), period, period,
                                           draw_wcet(rng, period, n, 130, true)));
  }
  std::size_t cid = 0;
  for (std::int64_t i = 0; i < n; ++i) {
    for (std::int64_t j = i + 1; j < n; ++j) {
      if (rng.chance(1, std::max<std::int64_t>(2, n / 2))) {
        const ChannelKind kind =
            rng.chance(1, 3) ? ChannelKind::kBlackboard : ChannelKind::kFifo;
        spec.channels.push_back(
            link(cid++, static_cast<std::size_t>(i), static_cast<std::size_t>(j), kind));
      }
    }
  }
  finish_equal_rate_priorities(spec, rng, false);
  apply_seed_epsilon(spec, seed);
  return spec;
}

ScenarioSpec gen_multi_rate(Rng& rng, std::uint64_t seed) {
  ScenarioSpec spec;
  static const std::vector<std::vector<std::int64_t>> kPools = {
      {10, 20, 40}, {6, 12, 24}, {5, 15, 30}, {10, 15, 30}};
  const std::vector<std::int64_t>& pool = kPools[seed % kPools.size()];
  const std::int64_t n = rng.range(4, 8);
  for (std::int64_t i = 0; i < n; ++i) {
    const Duration period = Duration::ms(rng.pick(pool));
    const int burst = rng.chance(1, 4) ? 2 : 1;
    spec.processes.push_back(periodic_spec(static_cast<std::size_t>(i), period, period,
                                           draw_wcet(rng, period, n, 90, true), burst));
  }
  std::size_t cid = 0;
  for (std::int64_t i = 0; i + 1 < n; ++i) {
    spec.channels.push_back(
        link(cid++, static_cast<std::size_t>(i), static_cast<std::size_t>(i + 1)));
  }
  for (std::int64_t i = 0; i < n; ++i) {
    for (std::int64_t j = i + 2; j < n; ++j) {
      if (rng.chance(1, 5)) {
        spec.channels.push_back(
            link(cid++, static_cast<std::size_t>(i), static_cast<std::size_t>(j),
                 ChannelKind::kBlackboard));
      }
    }
  }
  // Heterogeneous rates: leave FP to the rate-monotonic rule, whose
  // (period, declaration-index) order is total and therefore acyclic.
  apply_seed_epsilon(spec, seed);
  return spec;
}

ScenarioSpec gen_sporadic(Rng& rng, std::uint64_t seed) {
  ScenarioSpec spec;
  const Duration user_period = Duration::ms(rng.pick<std::int64_t>({20, 30, 40}));
  spec.processes.push_back(periodic_spec(0, user_period, user_period,
                                         draw_wcet(rng, user_period, 4, 60, true)));
  const std::int64_t sporadics = rng.range(1, 3);
  std::size_t cid = 0;
  for (std::int64_t s = 0; s < sporadics; ++s) {
    ProcessSpec p;
    const auto idx = static_cast<std::size_t>(1 + s);
    p.name = proc_name(idx);
    p.sporadic = true;
    p.burst = static_cast<int>(rng.range(1, 2));
    // T_s in {T_u, 3/2 T_u, 2 T_u} keeps T_u <= T_s (schedulable subclass).
    const std::int64_t rate = rng.range(0, 2);
    p.period = rate == 0   ? user_period
               : rate == 1 ? Duration(user_period.value() * Rational(3, 2))
                           : Duration(user_period.value() * Rational(2));
    // Either a safe deadline (> server period) or the footnote-3 zone
    // d <= T_u that forces the fractional fallback server period T_u/q.
    p.deadline = rng.chance(1, 2) ? p.period
                                  : Duration(user_period.value() * Rational(3, 4));
    p.wcet = draw_wcet(rng, user_period, 6, 40, true);
    spec.processes.push_back(p);
    // Every sporadic shares channels only with the user process (the
    // unique-user requirement of the schedulable subclass).
    if (rng.chance(1, 2)) {
      spec.channels.push_back(link(cid++, idx, 0));
    } else {
      spec.channels.push_back(link(cid++, 0, idx, ChannelKind::kBlackboard));
    }
    if (rng.chance(1, 2)) {
      // Explicit sporadic -> user priority flips the server-window rule to
      // right-closed (priority_over_user); without it the rate-monotonic
      // rule orients user -> sporadic (left-closed windows).
      PrioritySpec pr;
      pr.higher = idx;
      pr.lower = 0;
      spec.priorities.push_back(pr);
    }
  }
  // A short periodic tail hanging off the user keeps the graph from being
  // a pure star; these never touch the sporadics.
  const std::int64_t tail = rng.range(0, 2);
  std::size_t prev = 0;
  for (std::int64_t t = 0; t < tail; ++t) {
    const auto idx = static_cast<std::size_t>(1 + sporadics + t);
    const Duration period =
        rng.chance(1, 2) ? user_period : Duration(user_period.value() * Rational(2));
    spec.processes.push_back(
        periodic_spec(idx, period, period, draw_wcet(rng, period, 4, 50, true)));
    spec.channels.push_back(link(cid++, prev, idx));
    prev = idx;
  }
  apply_seed_epsilon(spec, seed);
  return spec;
}

ScenarioSpec gen_fractional(Rng& rng, std::uint64_t seed) {
  ScenarioSpec spec;
  static const std::vector<std::vector<Rational>> kPools = {
      {Rational(40, 3), Rational(20, 3), Rational(80, 3)},
      {Rational(25, 2), Rational(25, 4)},
      {Rational(9, 2), Rational(9), Rational(18)},
  };
  const std::vector<Rational>& pool = kPools[seed % kPools.size()];
  const std::int64_t n = rng.range(3, 8);
  for (std::int64_t i = 0; i < n; ++i) {
    const Duration period = Duration(rng.pick(pool));
    Duration wcet = Duration(Rational(rng.range(1, 8), rng.range(2, 7)));
    if (wcet.value() >= period.value()) {
      wcet = Duration(period.value() * Rational(1, 4));
    }
    spec.processes.push_back(
        periodic_spec(static_cast<std::size_t>(i), period, period, wcet));
  }
  std::size_t cid = 0;
  for (std::int64_t i = 0; i + 1 < n; ++i) {
    spec.channels.push_back(
        link(cid++, static_cast<std::size_t>(i), static_cast<std::size_t>(i + 1)));
  }
  for (std::int64_t i = 0; i + 2 < n; ++i) {
    if (rng.chance(1, 4)) {
      spec.channels.push_back(link(cid++, static_cast<std::size_t>(i),
                                   static_cast<std::size_t>(i + 2),
                                   ChannelKind::kBlackboard));
    }
  }
  apply_seed_epsilon(spec, seed);
  return spec;
}

ScenarioSpec gen_near_overflow(Rng& rng, std::uint64_t seed) {
  // Denominators chosen so the tick-timebase LCM overflows int64 (the
  // CompiledTaskGraph must take the Rational fallback) while every
  // expression the schedulers actually *evaluate* stays far inside int64.
  // The trick: the global LCM combines every denominator in the graph,
  // but heuristic arithmetic (ALAP latest starts, EDF slack, makespan
  // accumulation) only ever mixes ONE deadline with the WCET stream. So
  // all WCETs share a single large prime denominator and two deadlines
  // carry two further large primes — the product of the three overflows
  // the LCM, yet no reachable sum sees more than two of them (den <=
  // ~1.6e13 against values of a few ms).
  ScenarioSpec spec;
  const std::int64_t n = rng.range(3, 6);
  const Duration period = Duration::ms(10);
  for (std::int64_t i = 0; i < n; ++i) {
    Duration deadline = period;
    if (i == 1) {
      deadline = period - Duration(Rational(1, 4000057));
    } else if (i == 2) {
      deadline = period - Duration(Rational(1, 4000117));
    }
    spec.processes.push_back(periodic_spec(
        static_cast<std::size_t>(i), period, deadline,
        Duration(Rational(rng.range(1, 30), 4000037))));
  }
  std::size_t cid = 0;
  for (std::int64_t i = 0; i + 1 < n; ++i) {
    if (rng.chance(2, 3)) {
      spec.channels.push_back(
          link(cid++, static_cast<std::size_t>(i), static_cast<std::size_t>(i + 1)));
    }
  }
  finish_equal_rate_priorities(spec, rng, false);
  apply_seed_epsilon(spec, seed);
  return spec;
}

}  // namespace

const std::vector<Family>& all_families() {
  static const std::vector<Family> kAll = {
      Family::kPipeline,  Family::kFanOut,     Family::kDiamond,
      Family::kRandomDag, Family::kMultiRate,  Family::kSporadic,
      Family::kFractional, Family::kNearOverflow};
  return kAll;
}

std::string to_string(Family family) {
  switch (family) {
    case Family::kPipeline:
      return "pipeline";
    case Family::kFanOut:
      return "fanout";
    case Family::kDiamond:
      return "diamond";
    case Family::kRandomDag:
      return "randomdag";
    case Family::kMultiRate:
      return "multirate";
    case Family::kSporadic:
      return "sporadic";
    case Family::kFractional:
      return "fractional";
    case Family::kNearOverflow:
      return "nearoverflow";
  }
  return "unknown";
}

std::optional<Family> parse_family(const std::string& text) {
  for (Family f : all_families()) {
    if (to_string(f) == text) {
      return f;
    }
  }
  return std::nullopt;
}

BuiltScenario build_scenario(const ScenarioSpec& spec) {
  NetworkBuilder builder;
  std::vector<ProcessId> pids;
  pids.reserve(spec.processes.size());
  for (const ProcessSpec& p : spec.processes) {
    if (p.sporadic) {
      pids.push_back(builder.sporadic(p.name, p.burst, p.period, p.deadline,
                                      no_op_behavior()));
    } else if (p.burst > 1) {
      pids.push_back(builder.multi_periodic(p.name, p.burst, p.period, p.deadline,
                                            no_op_behavior()));
    } else {
      pids.push_back(builder.periodic(p.name, p.period, p.deadline, no_op_behavior()));
    }
  }
  for (const ChannelSpec& c : spec.channels) {
    if (c.writer >= pids.size() || c.reader >= pids.size()) {
      throw std::invalid_argument("channel endpoint out of range in scenario spec");
    }
    if (c.capacity > 1) {
      builder.buffered_fifo(c.name, pids[c.writer], pids[c.reader], c.capacity);
    } else {
      builder.channel(c.name, c.kind, pids[c.writer], pids[c.reader]);
    }
  }
  for (const PrioritySpec& p : spec.priorities) {
    if (p.higher >= pids.size() || p.lower >= pids.size()) {
      throw std::invalid_argument("priority endpoint out of range in scenario spec");
    }
    builder.priority(pids[p.higher], pids[p.lower]);
  }
  builder.auto_rate_monotonic_priorities();
  BuiltScenario out;
  out.net = std::move(builder).build();
  for (std::size_t i = 0; i < spec.processes.size(); ++i) {
    out.wcets[pids[i]] = spec.processes[i].wcet;
  }
  return out;
}

Scenario make_scenario(Family family, std::uint64_t seed) {
  // Decorrelate (family, seed) streams: the same seed must not replay the
  // same draw sequence across families.
  Rng rng(seed * 0x100000001b3ULL + static_cast<std::uint64_t>(family) + 1);
  ScenarioSpec spec;
  switch (family) {
    case Family::kPipeline:
      spec = gen_pipeline(rng, seed);
      break;
    case Family::kFanOut:
      spec = gen_fan_out(rng, seed);
      break;
    case Family::kDiamond:
      spec = gen_diamond(rng, seed);
      break;
    case Family::kRandomDag:
      spec = gen_random_dag(rng, seed);
      break;
    case Family::kMultiRate:
      spec = gen_multi_rate(rng, seed);
      break;
    case Family::kSporadic:
      spec = gen_sporadic(rng, seed);
      break;
    case Family::kFractional:
      spec = gen_fractional(rng, seed);
      break;
    case Family::kNearOverflow:
      spec = gen_near_overflow(rng, seed);
      break;
  }
  Scenario s;
  s.spec = std::move(spec);
  BuiltScenario built = build_scenario(s.spec);
  s.net = std::move(built.net);
  s.wcets = std::move(built.wcets);
  s.family = family;
  s.seed = seed;
  s.name = to_string(family) + "-" + std::to_string(seed);
  return s;
}

Scenario make_scenario(std::uint64_t seed) {
  const std::vector<Family>& fams = all_families();
  return make_scenario(fams[seed % fams.size()], seed);
}

std::string scenario_text(const Scenario& scenario) {
  return io::write_network(scenario.net, scenario.wcets);
}

std::map<ProcessId, SporadicScript> jittered_scripts(const Network& net,
                                                     std::uint64_t seed,
                                                     std::int64_t frames,
                                                     const Duration& hyperperiod) {
  std::map<ProcessId, SporadicScript> out;
  const Rational horizon = hyperperiod.value() * Rational(frames);
  for (std::size_t i = 0; i < net.process_count(); ++i) {
    const ProcessId pid(i);
    const EventSpec& ev = net.process(pid).event;
    if (ev.kind != EventKind::kSporadic) {
      continue;
    }
    Rng rng(seed ^ (0x9e3779b97f4a7c15ULL * (i + 1)));
    std::vector<Time> times;
    // Window anchors advance by >= T, so at most `burst` invocations land
    // in any window of length T — admissible by construction. The jitter
    // makes some windows empty (false server jobs) and others fire early
    // or mid-window.
    Rational anchor = ev.period.value() * Rational(rng.range(0, 7), 8);
    while (anchor < horizon) {
      const auto count = rng.range(0, ev.burst);
      for (std::int64_t c = 0; c < count; ++c) {
        times.emplace_back(anchor);
      }
      anchor = anchor + ev.period.value() * (Rational(1) + Rational(rng.range(0, 5), 8));
    }
    out.emplace(pid, SporadicScript(std::move(times), ev.burst, ev.period));
  }
  return out;
}

TaskGraph layered_task_graph(std::uint64_t seed) {
  Rng rng(seed * 0x9e3779b97f4a7c15ULL + 1);
  const std::int64_t layers = rng.range(2, 6);
  const std::int64_t width = rng.range(2, 5);
  TaskGraph tg(Duration::ms(400));
  std::vector<std::vector<JobId>> by_layer;
  std::size_t idx = 0;
  for (std::int64_t l = 0; l < layers; ++l) {
    by_layer.emplace_back();
    for (std::int64_t w = 0; w < width; ++w) {
      Job job;
      job.process = ProcessId(idx);
      job.k = 1;
      job.arrival = Time(Rational(rng.range(0, 60)));
      job.wcet = Duration(Rational(rng.range(3, 40), rng.range(1, 7)));
      job.deadline = job.arrival + Duration(Rational(rng.range(40, 160)));
      job.name = "J" + std::to_string(idx);
      by_layer.back().push_back(tg.add_job(job));
      ++idx;
    }
  }
  for (std::int64_t l = 0; l + 1 < layers; ++l) {
    for (JobId from : by_layer[static_cast<std::size_t>(l)]) {
      const std::int64_t fan = rng.range(1, 3);
      for (std::int64_t f = 0; f < fan; ++f) {
        tg.add_edge(from,
                    rng.pick(by_layer[static_cast<std::size_t>(l + 1)]));
      }
    }
  }
  return tg;
}

TaskGraph edge_case_task_graph(std::uint64_t seed) {
  Rng rng(seed * 0xbf58476d1ce4e5b9ULL + 1);
  const std::uint64_t variant = seed % 4;
  TaskGraph tg(Duration::ms(200));
  if (variant == 0) {
    // Zero-WCET jobs interleaved in a chain: instantaneous jobs must
    // still respect order, arrivals and tie-breaking.
    const std::int64_t n = rng.range(3, 8);
    JobId prev;
    for (std::int64_t i = 0; i < n; ++i) {
      Job job;
      job.process = ProcessId(static_cast<std::size_t>(i));
      job.arrival = Time(Rational(rng.range(0, 20)));
      job.wcet = rng.chance(1, 2) ? Duration::zero()
                                  : Duration(Rational(rng.range(1, 9)));
      job.deadline = job.arrival + Duration(Rational(rng.range(30, 90)));
      job.name = "Z" + std::to_string(i);
      const JobId id = tg.add_job(job);
      if (i > 0) {
        tg.add_edge(prev, id);
      }
      prev = id;
    }
  } else if (variant == 1) {
    // Identical jobs: every ordering decision is a tie.
    const std::int64_t n = rng.range(4, 10);
    for (std::int64_t i = 0; i < n; ++i) {
      Job job;
      job.process = ProcessId(static_cast<std::size_t>(i));
      job.arrival = Time::ms(10);
      job.wcet = Duration::ms(7);
      job.deadline = Time::ms(150);
      job.name = "T" + std::to_string(i);
      tg.add_job(job);
    }
  } else if (variant == 2) {
    // Large prime denominators: the int64 tick LCM overflows (product of
    // the three primes > 2^63), forcing the compiled graph's Rational
    // fallback. Same safety argument as the nearoverflow network family:
    // all WCETs share one prime, two deadlines carry the other two, so no
    // reachable sum mixes more than two primes.
    const std::int64_t n = rng.range(4, 8);
    JobId prev;
    for (std::int64_t i = 0; i < n; ++i) {
      Job job;
      job.process = ProcessId(static_cast<std::size_t>(i));
      job.arrival = Time(Rational(0));
      job.wcet = Duration(Rational(rng.range(1, 40), 4000037));
      job.deadline = Time::ms(rng.range(50, 200));
      if (i == 1) {
        job.deadline = job.deadline - Duration(Rational(1, 4000057));
      } else if (i == 2) {
        job.deadline = job.deadline - Duration(Rational(1, 4000117));
      }
      job.name = "O" + std::to_string(i);
      const JobId id = tg.add_job(job);
      if (i > 0 && rng.chance(2, 3)) {
        tg.add_edge(prev, id);
      }
      prev = id;
    }
  } else {
    // Degenerate shapes: a single job, or a wide antichain with no edges.
    if (rng.chance(1, 3)) {
      Job job;
      job.process = ProcessId(0);
      job.arrival = Time::ms(0);
      job.wcet = Duration::ms(rng.range(1, 20));
      job.deadline = Time::ms(100);
      job.name = "S0";
      tg.add_job(job);
    } else {
      const std::int64_t n = rng.range(6, 14);
      for (std::int64_t i = 0; i < n; ++i) {
        Job job;
        job.process = ProcessId(static_cast<std::size_t>(i));
        job.arrival = Time(Rational(rng.range(0, 15)));
        job.wcet = Duration(Rational(rng.range(1, 25), rng.range(1, 5)));
        job.deadline = job.arrival + Duration(Rational(rng.range(40, 120)));
        job.name = "A" + std::to_string(i);
        tg.add_job(job);
      }
    }
  }
  return tg;
}

}  // namespace fppn::gen
