// Generic name-keyed factory registry, shared by the scheduling-strategy
// and runtime-backend registries so add/lookup/error behavior cannot
// drift between them.
//
// Interface is the abstract product type; Error is the exception thrown
// for unknown names (must be constructible from std::string); `kind` is
// the human word used in error messages ("strategy", "runtime").
#pragma once

#include <functional>
#include <map>
#include <memory>
#include <sstream>
#include <stdexcept>
#include <string>
#include <vector>

namespace fppn {
namespace detail {

template <class Interface, class Error>
class NameRegistry {
 public:
  using Factory = std::function<std::unique_ptr<Interface>()>;

  explicit NameRegistry(std::string kind) : kind_(std::move(kind)) {}

  /// Registers a factory. Throws std::invalid_argument when the name is
  /// empty, not lowercase/digits/dashes, already taken, or the factory is
  /// null. The character restriction is load-bearing, not cosmetic: names
  /// become cache-entry file names, shard-manifest tokens and worker argv
  /// words, so whitespace or '/' would corrupt those downstream formats.
  void add(const std::string& name, Factory factory) {
    if (name.empty()) {
      throw std::invalid_argument(kind_ + " registry: empty name");
    }
    for (const char c : name) {
      if (!((c >= 'a' && c <= 'z') || (c >= '0' && c <= '9') || c == '-')) {
        throw std::invalid_argument(kind_ + " registry: name '" + name +
                                    "' must use only lowercase letters, digits and "
                                    "dashes (names become file names and manifest "
                                    "tokens)");
      }
    }
    if (!factory) {
      throw std::invalid_argument(kind_ + " registry: null factory for '" + name + "'");
    }
    if (!factories_.emplace(name, std::move(factory)).second) {
      throw std::invalid_argument(kind_ + " registry: duplicate name '" + name + "'");
    }
  }

  [[nodiscard]] bool contains(const std::string& name) const {
    return factories_.count(name) != 0;
  }

  /// All registered names, sorted — the authoritative list for --help.
  [[nodiscard]] std::vector<std::string> names() const {
    std::vector<std::string> out;
    out.reserve(factories_.size());
    for (const auto& [name, factory] : factories_) {
      (void)factory;
      out.push_back(name);  // std::map iteration is already sorted
    }
    return out;
  }

  /// Instantiates the named product. Throws Error (listing every
  /// registered name) when the name is not registered.
  [[nodiscard]] std::unique_ptr<Interface> create(const std::string& name) const {
    const auto it = factories_.find(name);
    if (it == factories_.end()) {
      std::ostringstream msg;
      msg << "unknown " << kind_ << " '" << name << "'; available:";
      for (const std::string& n : names()) {
        msg << ' ' << n;
      }
      throw Error(msg.str());
    }
    return it->second();
  }

 private:
  std::string kind_;
  std::map<std::string, Factory> factories_;
};

}  // namespace detail
}  // namespace fppn
