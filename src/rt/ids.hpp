// Strong index types.
//
// Processes, channels, jobs and processors are all referred to by dense
// indices into their owning containers; wrapping each in its own type
// prevents cross-indexing (e.g. using a job index to look up a process).
#pragma once

#include <cstddef>
#include <cstdint>
#include <functional>
#include <limits>

namespace fppn {

namespace detail {

/// CRTP-free strong index: Tag distinguishes unrelated index spaces.
template <class Tag>
class StrongIndex {
 public:
  constexpr StrongIndex() noexcept : value_(kInvalid) {}
  constexpr explicit StrongIndex(std::size_t value) noexcept : value_(value) {}

  [[nodiscard]] constexpr std::size_t value() const noexcept { return value_; }
  [[nodiscard]] constexpr bool is_valid() const noexcept { return value_ != kInvalid; }

  friend constexpr bool operator==(StrongIndex a, StrongIndex b) noexcept {
    return a.value_ == b.value_;
  }
  friend constexpr bool operator!=(StrongIndex a, StrongIndex b) noexcept {
    return a.value_ != b.value_;
  }
  friend constexpr bool operator<(StrongIndex a, StrongIndex b) noexcept {
    return a.value_ < b.value_;
  }
  friend constexpr bool operator<=(StrongIndex a, StrongIndex b) noexcept {
    return a.value_ <= b.value_;
  }
  friend constexpr bool operator>(StrongIndex a, StrongIndex b) noexcept {
    return a.value_ > b.value_;
  }
  friend constexpr bool operator>=(StrongIndex a, StrongIndex b) noexcept {
    return a.value_ >= b.value_;
  }

  static constexpr StrongIndex invalid() noexcept { return StrongIndex(); }

 private:
  static constexpr std::size_t kInvalid = std::numeric_limits<std::size_t>::max();
  std::size_t value_;
};

}  // namespace detail

struct ProcessTag {};
struct ChannelTag {};
struct JobTag {};
struct ProcessorTag {};
struct NodeTag {};

/// Index of a process within a Network.
using ProcessId = detail::StrongIndex<ProcessTag>;
/// Index of a channel (internal or external) within a Network.
using ChannelId = detail::StrongIndex<ChannelTag>;
/// Index of a job within a TaskGraph.
using JobId = detail::StrongIndex<JobTag>;
/// Index of a processor within a platform.
using ProcessorId = detail::StrongIndex<ProcessorTag>;
/// Index of a node within a generic Digraph.
using NodeId = detail::StrongIndex<NodeTag>;

}  // namespace fppn

namespace std {
template <class Tag>
struct hash<fppn::detail::StrongIndex<Tag>> {
  std::size_t operator()(const fppn::detail::StrongIndex<Tag>& id) const noexcept {
    return std::hash<std::size_t>{}(id.value());
  }
};
}  // namespace std
