#include "rt/time.hpp"

#include <ostream>

namespace fppn {

Time& Time::operator+=(const Duration& d) {
  value_ += d.value();
  return *this;
}

Time& Time::operator-=(const Duration& d) {
  value_ -= d.value();
  return *this;
}

Duration operator-(const Time& a, const Time& b) {
  return Duration(a.value() - b.value());
}

std::ostream& operator<<(std::ostream& os, const Time& t) {
  return os << t.to_string();
}

std::ostream& operator<<(std::ostream& os, const Duration& d) {
  return os << d.to_string();
}

}  // namespace fppn
