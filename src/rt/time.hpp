// Strong time types over exact rationals.
//
// Time is an absolute instant on the model time line (milliseconds by
// convention throughout this library, matching the paper's figures);
// Duration is a signed span. Keeping them distinct catches the classic
// "added two absolute deadlines" class of bug at compile time.
#pragma once

#include <iosfwd>
#include <string>

#include "rt/rational.hpp"

namespace fppn {

class Duration;

/// Absolute model-time instant, in milliseconds.
class Time {
 public:
  constexpr Time() noexcept = default;
  explicit Time(Rational value) : value_(std::move(value)) {}

  /// Convenience: integral milliseconds.
  static Time ms(std::int64_t v) { return Time(Rational(v)); }

  [[nodiscard]] const Rational& value() const noexcept { return value_; }
  [[nodiscard]] double to_double_ms() const noexcept { return value_.to_double(); }
  [[nodiscard]] std::string to_string() const { return value_.to_string(); }

  friend bool operator==(const Time& a, const Time& b) noexcept {
    return a.value_ == b.value_;
  }
  friend bool operator!=(const Time& a, const Time& b) noexcept { return !(a == b); }
  friend bool operator<(const Time& a, const Time& b) { return a.value_ < b.value_; }
  friend bool operator>(const Time& a, const Time& b) { return b < a; }
  friend bool operator<=(const Time& a, const Time& b) { return !(b < a); }
  friend bool operator>=(const Time& a, const Time& b) { return !(a < b); }

  Time& operator+=(const Duration& d);
  Time& operator-=(const Duration& d);
  friend Time operator+(Time t, const Duration& d) { return t += d; }
  friend Time operator-(Time t, const Duration& d) { return t -= d; }
  friend Duration operator-(const Time& a, const Time& b);

 private:
  Rational value_;
};

/// Signed span of model time, in milliseconds.
class Duration {
 public:
  constexpr Duration() noexcept = default;
  explicit Duration(Rational value) : value_(std::move(value)) {}

  static Duration ms(std::int64_t v) { return Duration(Rational(v)); }
  /// Exact fractional milliseconds num/den.
  static Duration ratio_ms(std::int64_t num, std::int64_t den) {
    return Duration(Rational(num, den));
  }
  static Duration zero() { return {}; }

  [[nodiscard]] const Rational& value() const noexcept { return value_; }
  [[nodiscard]] double to_double_ms() const noexcept { return value_.to_double(); }
  [[nodiscard]] std::string to_string() const { return value_.to_string(); }

  [[nodiscard]] bool is_zero() const noexcept { return value_.is_zero(); }
  [[nodiscard]] bool is_positive() const noexcept { return value_.is_positive(); }
  [[nodiscard]] bool is_negative() const noexcept { return value_.is_negative(); }

  friend bool operator==(const Duration& a, const Duration& b) noexcept {
    return a.value_ == b.value_;
  }
  friend bool operator!=(const Duration& a, const Duration& b) noexcept {
    return !(a == b);
  }
  friend bool operator<(const Duration& a, const Duration& b) {
    return a.value_ < b.value_;
  }
  friend bool operator>(const Duration& a, const Duration& b) { return b < a; }
  friend bool operator<=(const Duration& a, const Duration& b) { return !(b < a); }
  friend bool operator>=(const Duration& a, const Duration& b) { return !(a < b); }

  Duration operator-() const { return Duration(-value_); }
  Duration& operator+=(const Duration& d) {
    value_ += d.value_;
    return *this;
  }
  Duration& operator-=(const Duration& d) {
    value_ -= d.value_;
    return *this;
  }
  Duration& operator*=(const Rational& k) {
    value_ *= k;
    return *this;
  }
  Duration& operator/=(const Rational& k) {
    value_ /= k;
    return *this;
  }
  friend Duration operator+(Duration a, const Duration& b) { return a += b; }
  friend Duration operator-(Duration a, const Duration& b) { return a -= b; }
  friend Duration operator*(Duration d, const Rational& k) { return d *= k; }
  friend Duration operator*(const Rational& k, Duration d) { return d *= k; }
  friend Duration operator/(Duration d, const Rational& k) { return d /= k; }

  /// Exact ratio of two durations (divisor must be nonzero).
  friend Rational operator/(const Duration& a, const Duration& b) {
    return a.value_ / b.value_;
  }

  /// Hyperperiod operator: exact rational lcm (both must be positive).
  [[nodiscard]] static Duration lcm(const Duration& a, const Duration& b) {
    return Duration(Rational::lcm(a.value_, b.value_));
  }

  [[nodiscard]] static Duration min(const Duration& a, const Duration& b) {
    return a <= b ? a : b;
  }
  [[nodiscard]] static Duration max(const Duration& a, const Duration& b) {
    return a >= b ? a : b;
  }

 private:
  Rational value_;
};

std::ostream& operator<<(std::ostream& os, const Time& t);
std::ostream& operator<<(std::ostream& os, const Duration& d);

}  // namespace fppn

template <>
struct std::hash<fppn::Time> {
  std::size_t operator()(const fppn::Time& t) const noexcept {
    return std::hash<fppn::Rational>{}(t.value());
  }
};

template <>
struct std::hash<fppn::Duration> {
  std::size_t operator()(const fppn::Duration& d) const noexcept {
    return std::hash<fppn::Rational>{}(d.value());
  }
};
