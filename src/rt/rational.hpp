// Exact rational arithmetic for real-time instants and durations.
//
// The paper (Def. 3.1 and footnote 4) requires periods T_p in Q+ and a
// hyperperiod computed as the least common multiple of *rational* numbers.
// The fractional-server-period fallback (footnote 3) additionally divides
// periods by small integers, so floating point time would accumulate error
// exactly where schedule boundaries must match. All model time in this
// library is therefore an exact Rational of two 64-bit integers, always
// stored in canonical form (normalized sign, coprime numerator/denominator).
#pragma once

#include <cstdint>
#include <iosfwd>
#include <numeric>
#include <stdexcept>
#include <string>

namespace fppn {

/// Thrown on division by zero or overflow in rational arithmetic.
class RationalError : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

/// An exact rational number num/den with den > 0 and gcd(|num|, den) == 1.
class Rational {
 public:
  /// Value 0/1.
  constexpr Rational() noexcept : num_(0), den_(1) {}

  /// Integer value n/1 (implicit: integers are exact rationals).
  constexpr Rational(std::int64_t n) noexcept : num_(n), den_(1) {}  // NOLINT

  /// Value num/den, normalized. Throws RationalError if den == 0.
  Rational(std::int64_t num, std::int64_t den);

  [[nodiscard]] constexpr std::int64_t num() const noexcept { return num_; }
  [[nodiscard]] constexpr std::int64_t den() const noexcept { return den_; }

  [[nodiscard]] constexpr bool is_integer() const noexcept { return den_ == 1; }
  [[nodiscard]] constexpr bool is_zero() const noexcept { return num_ == 0; }
  [[nodiscard]] constexpr bool is_positive() const noexcept { return num_ > 0; }
  [[nodiscard]] constexpr bool is_negative() const noexcept { return num_ < 0; }

  /// Best double approximation; for reporting only, never for comparisons.
  [[nodiscard]] double to_double() const noexcept;

  /// "7/3" or "5" when the denominator is 1.
  [[nodiscard]] std::string to_string() const;

  Rational operator-() const;
  Rational& operator+=(const Rational& rhs);
  Rational& operator-=(const Rational& rhs);
  Rational& operator*=(const Rational& rhs);
  /// Throws RationalError when rhs == 0.
  Rational& operator/=(const Rational& rhs);

  friend Rational operator+(Rational lhs, const Rational& rhs) { return lhs += rhs; }
  friend Rational operator-(Rational lhs, const Rational& rhs) { return lhs -= rhs; }
  friend Rational operator*(Rational lhs, const Rational& rhs) { return lhs *= rhs; }
  friend Rational operator/(Rational lhs, const Rational& rhs) { return lhs /= rhs; }

  // Canonical form makes equality a field-wise comparison.
  friend constexpr bool operator==(const Rational& a, const Rational& b) noexcept {
    return a.num_ == b.num_ && a.den_ == b.den_;
  }
  friend constexpr bool operator!=(const Rational& a, const Rational& b) noexcept {
    return !(a == b);
  }
  /// Exact total order. Compares via 128-bit cross products, so — unlike
  /// the arithmetic operators — it never throws, even when the operands
  /// sit at the int64 overflow guard.
  friend bool operator<(const Rational& lhs, const Rational& rhs);
  friend bool operator>(const Rational& a, const Rational& b) { return b < a; }
  friend bool operator<=(const Rational& a, const Rational& b) { return !(b < a); }
  friend bool operator>=(const Rational& a, const Rational& b) { return !(a < b); }

  /// Largest integer <= value.
  [[nodiscard]] std::int64_t floor() const noexcept;
  /// Smallest integer >= value.
  [[nodiscard]] std::int64_t ceil() const noexcept;

  /// Exact quotient floor(a/b) for b > 0; used for job index -> burst window.
  [[nodiscard]] static std::int64_t floor_div(const Rational& a, const Rational& b);

  /// gcd of two non-negative rationals: gcd(a_n/a_d, b_n/b_d) =
  /// gcd(a_n, b_n) / lcm(a_d, b_d).
  [[nodiscard]] static Rational gcd(const Rational& a, const Rational& b);

  /// lcm of two positive rationals: lcm(a_n/a_d, b_n/b_d) =
  /// lcm(a_n, b_n) / gcd(a_d, b_d). This is the hyperperiod operator
  /// (footnote 4 of the paper). Throws RationalError if either is <= 0.
  [[nodiscard]] static Rational lcm(const Rational& a, const Rational& b);

  [[nodiscard]] static Rational abs(const Rational& r);
  [[nodiscard]] static Rational min(const Rational& a, const Rational& b);
  [[nodiscard]] static Rational max(const Rational& a, const Rational& b);

 private:
  void normalize();

  std::int64_t num_;
  std::int64_t den_;  // invariant: den_ > 0, gcd(|num_|, den_) == 1
};

std::ostream& operator<<(std::ostream& os, const Rational& r);

}  // namespace fppn

template <>
struct std::hash<fppn::Rational> {
  std::size_t operator()(const fppn::Rational& r) const noexcept {
    const std::size_t h1 = std::hash<std::int64_t>{}(r.num());
    const std::size_t h2 = std::hash<std::int64_t>{}(r.den());
    return h1 ^ (h2 + 0x9e3779b97f4a7c15ULL + (h1 << 6) + (h1 >> 2));
  }
};
