#include "rt/rational.hpp"

#include <cmath>
#include <ostream>

namespace fppn {
namespace {

// Overflow-checked primitives. Model time values stay small (milliseconds
// over a few hyperperiods) but hyperperiod LCMs of adversarial inputs can
// blow up; fail loudly instead of wrapping.
std::int64_t checked_mul(std::int64_t a, std::int64_t b) {
  std::int64_t out = 0;
  if (__builtin_mul_overflow(a, b, &out)) {
    throw RationalError("rational arithmetic overflow in multiplication");
  }
  return out;
}

std::int64_t checked_add(std::int64_t a, std::int64_t b) {
  std::int64_t out = 0;
  if (__builtin_add_overflow(a, b, &out)) {
    throw RationalError("rational arithmetic overflow in addition");
  }
  return out;
}

}  // namespace

Rational::Rational(std::int64_t num, std::int64_t den) : num_(num), den_(den) {
  if (den_ == 0) {
    throw RationalError("rational with zero denominator");
  }
  normalize();
}

void Rational::normalize() {
  if (den_ < 0) {
    num_ = -num_;
    den_ = -den_;
  }
  const std::int64_t g = std::gcd(num_, den_);
  if (g > 1) {
    num_ /= g;
    den_ /= g;
  }
}

double Rational::to_double() const noexcept {
  return static_cast<double>(num_) / static_cast<double>(den_);
}

std::string Rational::to_string() const {
  if (den_ == 1) {
    return std::to_string(num_);
  }
  return std::to_string(num_) + "/" + std::to_string(den_);
}

Rational Rational::operator-() const {
  Rational r = *this;
  r.num_ = -r.num_;
  return r;
}

Rational& Rational::operator+=(const Rational& rhs) {
  // Reduce before cross-multiplying to delay overflow: use den gcd.
  const std::int64_t g = std::gcd(den_, rhs.den_);
  const std::int64_t lhs_scale = rhs.den_ / g;
  const std::int64_t rhs_scale = den_ / g;
  num_ = checked_add(checked_mul(num_, lhs_scale), checked_mul(rhs.num_, rhs_scale));
  den_ = checked_mul(den_, lhs_scale);
  normalize();
  return *this;
}

Rational& Rational::operator-=(const Rational& rhs) { return *this += -rhs; }

Rational& Rational::operator*=(const Rational& rhs) {
  // Cross-reduce first so intermediate products stay small.
  const std::int64_t g1 = std::gcd(num_, rhs.den_);
  const std::int64_t g2 = std::gcd(rhs.num_, den_);
  num_ = checked_mul(num_ / g1, rhs.num_ / g2);
  den_ = checked_mul(den_ / g2, rhs.den_ / g1);
  normalize();
  return *this;
}

Rational& Rational::operator/=(const Rational& rhs) {
  if (rhs.num_ == 0) {
    throw RationalError("rational division by zero");
  }
  return *this *= Rational(rhs.den_, rhs.num_);
}

bool operator<(const Rational& lhs, const Rational& rhs) {
  // lhs.num/lhs.den < rhs.num/rhs.den with positive denominators. Cross
  // products can exceed 64 bits even for canonical values (coprime
  // denominators get no gcd relief), and ordering is used to *rank*
  // results — e.g. makespan tie-breaking in the schedule search — so it
  // must stay total instead of throwing at the int64 overflow guard.
  // 128-bit intermediates make the comparison exact for every value.
  const __int128 a = static_cast<__int128>(lhs.num_) * rhs.den_;
  const __int128 b = static_cast<__int128>(rhs.num_) * lhs.den_;
  return a < b;
}

std::int64_t Rational::floor() const noexcept {
  if (num_ >= 0 || num_ % den_ == 0) {
    return num_ / den_;
  }
  return num_ / den_ - 1;
}

std::int64_t Rational::ceil() const noexcept {
  if (num_ <= 0 || num_ % den_ == 0) {
    return num_ / den_;
  }
  return num_ / den_ + 1;
}

std::int64_t Rational::floor_div(const Rational& a, const Rational& b) {
  if (!b.is_positive()) {
    throw RationalError("floor_div requires a positive divisor");
  }
  return (a / b).floor();
}

Rational Rational::gcd(const Rational& a, const Rational& b) {
  if (a.is_negative() || b.is_negative()) {
    throw RationalError("rational gcd requires non-negative operands");
  }
  if (a.is_zero()) return b;
  if (b.is_zero()) return a;
  const std::int64_t n = std::gcd(a.num_, b.num_);
  const std::int64_t d = checked_mul(a.den_ / std::gcd(a.den_, b.den_), b.den_);
  return {n, d};
}

Rational Rational::lcm(const Rational& a, const Rational& b) {
  if (!a.is_positive() || !b.is_positive()) {
    throw RationalError("rational lcm requires positive operands");
  }
  const std::int64_t g = std::gcd(a.num_, b.num_);
  const std::int64_t n = checked_mul(a.num_ / g, b.num_);
  const std::int64_t d = std::gcd(a.den_, b.den_);
  return {n, d};
}

Rational Rational::abs(const Rational& r) { return r.is_negative() ? -r : r; }

Rational Rational::min(const Rational& a, const Rational& b) { return a <= b ? a : b; }

Rational Rational::max(const Rational& a, const Rational& b) { return a >= b ? a : b; }

std::ostream& operator<<(std::ostream& os, const Rational& r) {
  return os << r.to_string();
}

}  // namespace fppn
