// The reactive-control case study (§V-B, Fig. 7): a subsystem of an
// avionics Flight Management System computing the best computed position
// (BCP) and predicting performance (fuel usage) from sensor data and
// sporadic pilot configuration commands.
//
// Periodic processes (deadline = period):
//   SensorInput   200 ms   acquires the sensor block
//   HighFreqBCP   200 ms   high-rate position fusion -> BCP
//   LowFreqBCP   5000 ms   low-rate consolidated position
//   MagnDeclin   1600 ms   magnetic declination (see period reduction below)
//   Performance  1000 ms   fuel/performance prediction
// Sporadic configuration processes (burst per min. period, served by their
// periodic user; deadline 2x period so the server deadline correction
// d' = d - T_u stays positive):
//   AnemoConfig / GPSConfig / IRSConfig / DopplerConfig   2 per 200 ms,
//       user HighFreqBCP
//   BCPConfig    2 per 200 ms,  user HighFreqBCP
//   MagnDeclinConfig  5 per 1600 ms,  user MagnDeclin
//   PerformanceConfig 5 per 1000 ms,  user Performance
//
// As in the paper, sporadic processes have *lower* functional priority
// than their periodic users and the periodic FP is rate-monotonic.
//
// Period reduction (§V-B): the original MagnDeclin period of 1600 ms gives
// a 40 s hyperperiod; the paper reduced it to 400 ms — executing the main
// body once per four invocations — for a 10 s hyperperiod. Both variants
// can be built here. With the reduced variant the derived task graph has
// exactly 812 jobs (the paper's number).
#pragma once

#include "fppn/exec_state.hpp"
#include "fppn/network.hpp"
#include "taskgraph/derivation.hpp"

namespace fppn::apps {

struct FmsApp {
  Network net;
  ProcessId sensor_input, high_freq_bcp, low_freq_bcp, magn_declin, performance;
  ProcessId anemo_config, gps_config, irs_config, doppler_config, bcp_config,
      magn_declin_config, performance_config;
  ChannelId sensors_in;  ///< external input: sensor block per 200 ms frame
  ChannelId bcp_out, bcp_low_out, fuel_out;  ///< external outputs
  bool reduced_period = true;

  [[nodiscard]] std::vector<ProcessId> sporadics() const {
    return {anemo_config,      gps_config, irs_config,         doppler_config,
            bcp_config,        magn_declin_config, performance_config};
  }

  /// WCETs profiled-like values tuned so the task-graph load lands near
  /// the paper's ~0.23.
  [[nodiscard]] WcetMap default_wcets() const;

  /// Sensor input script: one 4-value block per SensorInput job.
  [[nodiscard]] InputScripts make_inputs(std::size_t frames_of_200ms,
                                         std::uint64_t seed = 42) const;

  /// Admissible random sporadic scripts for all seven config processes.
  [[nodiscard]] std::map<ProcessId, SporadicScript> random_commands(
      Time horizon, std::uint64_t seed = 7) const;
};

/// `reduced_period` true: MagnDeclin at 400 ms with the body executed once
/// per four invocations (hyperperiod 10 s); false: the original 1600 ms
/// (hyperperiod 40 s).
[[nodiscard]] FmsApp build_fms(bool reduced_period = true);

}  // namespace fppn::apps
