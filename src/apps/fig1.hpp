// The running example of the paper (Fig. 1): an imaginary signal
// processing application with a 200 ms input sample period, reconfigurable
// filter coefficients and a feedback loop.
//
// Processes (periods; all deadlines equal the periods):
//   InputA   200 ms   splits the input samples to both filter paths
//   FilterA  100 ms   IIR-style filter with a feedback gain from NormA
//   FilterB  200 ms   gain filter with sporadically reconfigured coefficient
//   NormA    200 ms   normalizer, feeds OutputA and the feedback gain
//   OutputA  200 ms   external output 1
//   OutputB  100 ms   external output 2, mixes FilterB and FilterA paths
//   CoefB    sporadic, at most 2 per 700 ms, deadline 700 ms — configures
//            FilterB's coefficient (its "user" process, T_u = 200 <= 700)
//
// Functional priorities: InputA -> {FilterA, FilterB, NormA},
// FilterA -> {NormA, OutputB}, NormA -> OutputA, FilterB -> OutputB,
// CoefB -> FilterB (the sporadic has priority over its user here, giving
// the right-closed (a, b] server windows of Fig. 2).
//
// With uniform 25 ms WCETs the derived task graph is exactly Fig. 3 of the
// paper: hyperperiod 200 ms, 10 jobs with the published (A, D, C) tuples,
// CoefB served by two server jobs deadline-corrected to 700-200 = 500 and
// truncated to 200, and the redundant InputA[1] -> NormA[1] edge removed
// by transitive reduction.
#pragma once

#include "fppn/exec_state.hpp"
#include "fppn/network.hpp"
#include "taskgraph/derivation.hpp"

namespace fppn::apps {

struct Fig1App {
  Network net;
  ProcessId input_a, filter_a, filter_b, norm_a, output_a, output_b, coef_b;
  ChannelId in_a;        ///< external input: samples for InputA
  ChannelId coef_in;     ///< external input: coefficient commands for CoefB
  ChannelId out1, out2;  ///< external outputs

  /// Uniform 25 ms WCETs (the Fig. 3 assumption).
  [[nodiscard]] WcetMap fig3_wcets() const;

  /// Input scripts: `samples` for InA (one per InputA job), `coefs` for
  /// CoefIn (one per CoefB invocation).
  [[nodiscard]] InputScripts make_inputs(const std::vector<double>& samples,
                                         const std::vector<double>& coefs) const;
};

[[nodiscard]] Fig1App build_fig1();

}  // namespace fppn::apps
