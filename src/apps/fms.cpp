#include "apps/fms.hpp"

#include <cmath>

namespace fppn::apps {
namespace {

double as_double(const Value& v, double fallback) {
  if (const auto* d = std::get_if<double>(&v)) {
    return *d;
  }
  if (const auto* i = std::get_if<std::int64_t>(&v)) {
    return static_cast<double>(*i);
  }
  return fallback;
}

std::vector<double> as_block(const Value& v, std::size_t size) {
  std::vector<double> out(size, 0.0);
  if (const auto* vec = std::get_if<std::vector<double>>(&v)) {
    for (std::size_t i = 0; i < size && i < vec->size(); ++i) {
      out[i] = (*vec)[i];
    }
  }
  return out;
}

/// SensorInput: publish the k-th sensor block (anemo, gps, irs, doppler)
/// to both BCP computations.
class SensorInputBehavior final : public ProcessBehavior {
 public:
  void on_job(JobContext& ctx) override {
    const Value in = ctx.read("Sensors");
    const std::vector<double> block = as_block(in, 4);
    ctx.write("SensorData", block);
    ctx.write("SensorDataLF", block);
  }
};

/// A config process: latch the k-th commanded value onto its blackboard.
class ConfigBehavior final : public ProcessBehavior {
 public:
  ConfigBehavior(std::string input, std::string board)
      : input_(std::move(input)), board_(std::move(board)) {}

  void on_job(JobContext& ctx) override {
    const Value cmd = ctx.read(input_);
    if (has_data(cmd)) {
      ctx.write(board_, as_double(cmd, 1.0));
    }
  }

 private:
  std::string input_;
  std::string board_;
};

/// HighFreqBCP: weighted fusion of the four sensor readings with the
/// per-sensor confidence weights commanded by the config processes, the
/// global BCP gain, and the declination correction.
class HighFreqBcpBehavior final : public ProcessBehavior {
 public:
  void on_job(JobContext& ctx) override {
    const std::vector<double> s = as_block(ctx.read("SensorData"), 4);
    const double w_anemo = as_double(ctx.read("AnemoData"), 1.0);
    const double w_gps = as_double(ctx.read("GPSData"), 1.0);
    const double w_irs = as_double(ctx.read("IRSData"), 1.0);
    const double w_doppler = as_double(ctx.read("DopplerData"), 1.0);
    const double gain = as_double(ctx.read("BCPConfigData"), 1.0);
    const double declination = as_double(ctx.read("Declination"), 0.0);
    const double wsum = w_anemo + w_gps + w_irs + w_doppler;
    const double fused =
        wsum > 0.0
            ? (w_anemo * s[0] + w_gps * s[1] + w_irs * s[2] + w_doppler * s[3]) / wsum
            : 0.0;
    // First-order smoothing: the "best computed position".
    bcp_ = 0.75 * bcp_ + 0.25 * gain * (fused + declination);
    ctx.write("BCPData", bcp_);
    ctx.write("BCPForPerf", bcp_);
    ctx.write("BCPForDeclin", bcp_);
    ctx.write("BCP", bcp_);
  }

 private:
  double bcp_ = 0.0;
};

/// LowFreqBCP: slow consolidation of the high-rate BCP with raw sensors.
class LowFreqBcpBehavior final : public ProcessBehavior {
 public:
  void on_job(JobContext& ctx) override {
    const std::vector<double> s = as_block(ctx.read("SensorDataLF"), 4);
    const double bcp = as_double(ctx.read("BCPData"), 0.0);
    consolidated_ = 0.5 * consolidated_ + 0.5 * (0.8 * bcp + 0.05 * (s[1] + s[2]));
    ctx.write("BCPLow", consolidated_);
  }

 private:
  double consolidated_ = 0.0;
};

/// MagnDeclin with the paper's period-reduction trick: at the reduced
/// 400 ms period the main body runs once per `stride` invocations (4),
/// keeping the original 1600 ms computation rate.
class MagnDeclinBehavior final : public ProcessBehavior {
 public:
  explicit MagnDeclinBehavior(int stride) : stride_(stride) {}

  void on_job(JobContext& ctx) override {
    if ((ctx.job_index() - 1) % stride_ != 0) {
      return;  // light invocation: body skipped
    }
    const double bcp = as_double(ctx.read("BCPForDeclin"), 0.0);
    const double table = as_double(ctx.read("MagnDeclinConfigData"), 1.0);
    // Toy IGRF-like declination as a smooth function of position.
    const double declination = 0.1 * table * std::sin(bcp / 60.0);
    ctx.write("Declination", declination);
  }

 private:
  int stride_;
};

/// Performance: fuel-usage prediction from the BCP trajectory.
class PerformanceBehavior final : public ProcessBehavior {
 public:
  void on_job(JobContext& ctx) override {
    const double bcp = as_double(ctx.read("BCPForPerf"), 0.0);
    const double model = as_double(ctx.read("PerformanceConfigData"), 1.0);
    const double ground_speed = std::abs(bcp - last_bcp_);
    last_bcp_ = bcp;
    fuel_ += model * (0.5 + 0.01 * ground_speed);
    ctx.write("FuelPrediction", fuel_);
  }

 private:
  double last_bcp_ = 0.0;
  double fuel_ = 0.0;
};

template <class B, class... Args>
BehaviorFactory make(Args... args) {
  return [=] { return std::make_unique<B>(args...); };
}

}  // namespace

FmsApp build_fms(bool reduced_period) {
  FmsApp app;
  app.reduced_period = reduced_period;
  NetworkBuilder b;
  const auto ms = [](std::int64_t v) { return Duration::ms(v); };

  const Duration magn_period = reduced_period ? ms(400) : ms(1600);
  const int magn_stride = reduced_period ? 4 : 1;

  // Periodic processes (declaration order also breaks rate-monotonic ties:
  // SensorInput over HighFreqBCP at equal 200 ms periods).
  app.sensor_input =
      b.periodic("SensorInput", ms(200), ms(200), make<SensorInputBehavior>());
  app.high_freq_bcp =
      b.periodic("HighFreqBCP", ms(200), ms(200), make<HighFreqBcpBehavior>());
  app.low_freq_bcp =
      b.periodic("LowFreqBCP", ms(5000), ms(5000), make<LowFreqBcpBehavior>());
  app.magn_declin = b.periodic("MagnDeclin", magn_period, magn_period,
                               make<MagnDeclinBehavior>(magn_stride));
  app.performance =
      b.periodic("Performance", ms(1000), ms(1000), make<PerformanceBehavior>());

  // Sporadic configuration processes; deadline 2x the minimal period keeps
  // the server deadline correction d - T_u positive.
  app.anemo_config = b.sporadic("AnemoConfig", 2, ms(200), ms(400),
                                make<ConfigBehavior>("AnemoCmd", "AnemoData"));
  app.gps_config = b.sporadic("GPSConfig", 2, ms(200), ms(400),
                              make<ConfigBehavior>("GPSCmd", "GPSData"));
  app.irs_config = b.sporadic("IRSConfig", 2, ms(200), ms(400),
                              make<ConfigBehavior>("IRSCmd", "IRSData"));
  app.doppler_config = b.sporadic("DopplerConfig", 2, ms(200), ms(400),
                                  make<ConfigBehavior>("DopplerCmd", "DopplerData"));
  app.bcp_config = b.sporadic("BCPConfig", 2, ms(200), ms(400),
                              make<ConfigBehavior>("BCPCmd", "BCPConfigData"));
  app.magn_declin_config =
      b.sporadic("MagnDeclinConfig", 5, ms(1600), ms(3200),
                 make<ConfigBehavior>("MagnDeclinCmd", "MagnDeclinConfigData"));
  app.performance_config =
      b.sporadic("PerformanceConfig", 5, ms(1000), ms(2000),
                 make<ConfigBehavior>("PerformanceCmd", "PerformanceConfigData"));

  // Channels (Fig. 7).
  b.blackboard("SensorData", app.sensor_input, app.high_freq_bcp);
  b.blackboard("SensorDataLF", app.sensor_input, app.low_freq_bcp);
  b.blackboard("AnemoData", app.anemo_config, app.high_freq_bcp);
  b.blackboard("GPSData", app.gps_config, app.high_freq_bcp);
  b.blackboard("IRSData", app.irs_config, app.high_freq_bcp);
  b.blackboard("DopplerData", app.doppler_config, app.high_freq_bcp);
  b.blackboard("BCPConfigData", app.bcp_config, app.high_freq_bcp);
  b.blackboard("BCPData", app.high_freq_bcp, app.low_freq_bcp);
  b.blackboard("BCPForPerf", app.high_freq_bcp, app.performance);
  b.blackboard("BCPForDeclin", app.high_freq_bcp, app.magn_declin);
  b.blackboard("Declination", app.magn_declin, app.high_freq_bcp);
  b.blackboard("MagnDeclinConfigData", app.magn_declin_config, app.magn_declin);
  b.blackboard("PerformanceConfigData", app.performance_config, app.performance);

  // External I/O. Each sporadic reads its command stream by sample index.
  app.sensors_in = b.external_input("Sensors", app.sensor_input);
  b.external_input("AnemoCmd", app.anemo_config);
  b.external_input("GPSCmd", app.gps_config);
  b.external_input("IRSCmd", app.irs_config);
  b.external_input("DopplerCmd", app.doppler_config);
  b.external_input("BCPCmd", app.bcp_config);
  b.external_input("MagnDeclinCmd", app.magn_declin_config);
  b.external_input("PerformanceCmd", app.performance_config);
  app.bcp_out = b.external_output("BCP", app.high_freq_bcp);
  app.bcp_low_out = b.external_output("BCPLow", app.low_freq_bcp);
  app.fuel_out = b.external_output("FuelPrediction", app.performance);

  // Functional priorities: sporadics *below* their periodic users (§V-B),
  // periodic relation rate-monotonic (the auto rule below adds the RM
  // edges for every channel-sharing pair).
  b.priority(app.high_freq_bcp, app.anemo_config);
  b.priority(app.high_freq_bcp, app.gps_config);
  b.priority(app.high_freq_bcp, app.irs_config);
  b.priority(app.high_freq_bcp, app.doppler_config);
  b.priority(app.high_freq_bcp, app.bcp_config);
  b.priority(app.magn_declin, app.magn_declin_config);
  b.priority(app.performance, app.performance_config);
  b.auto_rate_monotonic_priorities();

  app.net = std::move(b).build();
  return app;
}

WcetMap FmsApp::default_wcets() const {
  WcetMap map;
  const auto set = [&map](ProcessId p, std::int64_t ms) {
    map.emplace(p, Duration::ms(ms));
  };
  set(sensor_input, 5);
  set(high_freq_bcp, 10);
  set(low_freq_bcp, 15);
  set(magn_declin, 6);
  set(performance, 8);
  set(anemo_config, 1);
  set(gps_config, 1);
  set(irs_config, 1);
  set(doppler_config, 1);
  set(bcp_config, 1);
  set(magn_declin_config, 1);
  set(performance_config, 1);
  return map;
}

InputScripts FmsApp::make_inputs(std::size_t frames_of_200ms, std::uint64_t seed) const {
  InputScripts scripts;
  std::vector<Value> blocks;
  blocks.reserve(frames_of_200ms);
  std::uint64_t state = seed * 6364136223846793005ULL + 1442695040888963407ULL;
  const auto next = [&state] {
    state = state * 6364136223846793005ULL + 1442695040888963407ULL;
    return static_cast<double>((state >> 33) % 2000) / 10.0 - 100.0;
  };
  for (std::size_t f = 0; f < frames_of_200ms; ++f) {
    blocks.emplace_back(std::vector<double>{next(), next(), next(), next()});
  }
  scripts.emplace(sensors_in, std::move(blocks));
  // Command streams: slowly drifting positive weights/gains.
  const auto cmd_channel = [this](const std::string& name) {
    return *net.find_channel(name);
  };
  const std::vector<std::string> cmds = {"AnemoCmd", "GPSCmd",         "IRSCmd",
                                         "DopplerCmd", "BCPCmd",       "MagnDeclinCmd",
                                         "PerformanceCmd"};
  for (const std::string& c : cmds) {
    std::vector<Value> vals;
    for (std::size_t k = 0; k < frames_of_200ms * 2 + 16; ++k) {
      vals.emplace_back(0.5 + 0.1 * static_cast<double>(k % 10));
    }
    scripts.emplace(cmd_channel(c), std::move(vals));
  }
  return scripts;
}

std::map<ProcessId, SporadicScript> FmsApp::random_commands(Time horizon,
                                                            std::uint64_t seed) const {
  std::map<ProcessId, SporadicScript> out;
  std::uint64_t salt = seed;
  for (const ProcessId p : sporadics()) {
    const EventSpec& spec = net.process(p).event;
    out.emplace(p, SporadicScript::random(spec.burst, spec.period, horizon, ++salt));
  }
  return out;
}

}  // namespace fppn::apps
