#include "apps/fft.hpp"

#include <cmath>
#include <stdexcept>
#include <string>

namespace fppn::apps {
namespace {


bool is_power_of_two(int n) { return n >= 2 && (n & (n - 1)) == 0; }

int log2_int(int n) {
  int s = 0;
  while ((1 << s) < n) {
    ++s;
  }
  return s;
}

int bit_reverse(int value, int bits) {
  int out = 0;
  for (int b = 0; b < bits; ++b) {
    out = (out << 1) | ((value >> b) & 1);
  }
  return out;
}

std::string line_name(int stage_boundary, int line) {
  return "L" + std::to_string(stage_boundary) + "_" + std::to_string(line);
}

std::complex<double> as_complex(const Value& v) {
  if (const auto* vec = std::get_if<std::vector<double>>(&v);
      vec != nullptr && vec->size() == 2) {
    return {(*vec)[0], (*vec)[1]};
  }
  return {0.0, 0.0};
}

Value to_value(const std::complex<double>& z) {
  return std::vector<double>{z.real(), z.imag()};
}

/// Generator: bit-reverse the k-th input block onto the stage-0 lines.
class GeneratorBehavior final : public ProcessBehavior {
 public:
  GeneratorBehavior(int points, int stages) : points_(points), stages_(stages) {}

  void on_job(JobContext& ctx) override {
    const Value in = ctx.read("FFTIn");
    std::vector<double> block(static_cast<std::size_t>(points_), 0.0);
    if (const auto* vec = std::get_if<std::vector<double>>(&in)) {
      for (std::size_t i = 0; i < block.size() && i < vec->size(); ++i) {
        block[i] = (*vec)[i];
      }
    }
    for (int line = 0; line < points_; ++line) {
      const int src = bit_reverse(line, stages_);
      ctx.write(line_name(0, line),
                to_value({block[static_cast<std::size_t>(src)], 0.0}));
    }
  }

 private:
  int points_;
  int stages_;
};

/// FFT2_<s>_<i>: one radix-2 decimation-in-time butterfly.
class ButterflyBehavior final : public ProcessBehavior {
 public:
  ButterflyBehavior(int stage, int line_a, int line_b, std::complex<double> twiddle)
      : stage_(stage), line_a_(line_a), line_b_(line_b), twiddle_(twiddle) {}

  void on_job(JobContext& ctx) override {
    const std::complex<double> a = as_complex(ctx.read(line_name(stage_, line_a_)));
    const std::complex<double> b = as_complex(ctx.read(line_name(stage_, line_b_)));
    const std::complex<double> t = twiddle_ * b;
    ctx.write(line_name(stage_ + 1, line_a_), to_value(a + t));
    ctx.write(line_name(stage_ + 1, line_b_), to_value(a - t));
  }

 private:
  int stage_;
  int line_a_;
  int line_b_;
  std::complex<double> twiddle_;
};

/// Consumer: gather the naturally-ordered spectrum, emit interleaved re/im.
class ConsumerBehavior final : public ProcessBehavior {
 public:
  ConsumerBehavior(int points, int stages) : points_(points), stages_(stages) {}

  void on_job(JobContext& ctx) override {
    std::vector<double> out;
    out.reserve(static_cast<std::size_t>(points_) * 2);
    for (int line = 0; line < points_; ++line) {
      const std::complex<double> z = as_complex(ctx.read(line_name(stages_, line)));
      out.push_back(z.real());
      out.push_back(z.imag());
    }
    ctx.write("FFTOut", out);
  }

 private:
  int points_;
  int stages_;
};

}  // namespace

FftApp build_fft(int points, Duration period, Duration deadline) {
  if (!is_power_of_two(points)) {
    throw std::invalid_argument("fft: points must be a power of two >= 2");
  }
  FftApp app;
  app.points = points;
  app.stages = log2_int(points);

  NetworkBuilder b;
  app.generator = b.periodic("generator", period, deadline,
                             [points, stages = app.stages] {
                               return std::make_unique<GeneratorBehavior>(points,
                                                                          stages);
                             });

  // Butterfly processes FFT2_<stage>_<i>.
  app.butterflies.assign(static_cast<std::size_t>(app.stages), {});
  for (int s = 0; s < app.stages; ++s) {
    for (int i = 0; i < points / 2; ++i) {
      const int span = 1 << s;
      const int block = i / span;
      const int j = i % span;
      const int line_a = block * (span * 2) + j;
      const int line_b = line_a + span;
      const double angle =
          -2.0 * kPi * static_cast<double>(j) /
          static_cast<double>(span * 2);
      const std::complex<double> twiddle(std::cos(angle), std::sin(angle));
      const std::string name = "FFT2_" + std::to_string(s) + "_" + std::to_string(i);
      app.butterflies[static_cast<std::size_t>(s)].push_back(
          b.periodic(name, period, deadline, [s, line_a, line_b, twiddle] {
            return std::make_unique<ButterflyBehavior>(s, line_a, line_b, twiddle);
          }));
    }
  }

  app.consumer = b.periodic("consumer", period, deadline,
                            [points, stages = app.stages] {
                              return std::make_unique<ConsumerBehavior>(points,
                                                                        stages);
                            });

  // Line channels: owner of line `l` at stage `s` is the butterfly whose
  // pair contains l (clear bit s).
  const auto owner = [&app](int s, int line) {
    const int span = 1 << s;
    const int a = line & ~span;
    const int block = a / (span * 2);
    const int j = a % span;
    return app.butterflies[static_cast<std::size_t>(s)]
                          [static_cast<std::size_t>(block * span + j)];
  };
  for (int line = 0; line < points; ++line) {
    b.fifo(line_name(0, line), app.generator, owner(0, line));
  }
  for (int s = 1; s < app.stages; ++s) {
    for (int line = 0; line < points; ++line) {
      b.fifo(line_name(s, line), owner(s - 1, line), owner(s, line));
    }
  }
  for (int line = 0; line < points; ++line) {
    b.fifo(line_name(app.stages, line), owner(app.stages - 1, line), app.consumer);
  }

  app.input = b.external_input("FFTIn", app.generator);
  app.output = b.external_output("FFTOut", app.consumer);

  // Functional priority along the data flow of every FIFO (the paper:
  // the FP relation coincides with the flow direction).
  b.auto_rate_monotonic_priorities();  // same periods: declaration order
  app.net = std::move(b).build();
  return app;
}

WcetMap FftApp::uniform_wcets(Duration wcet) const {
  WcetMap map;
  for (std::size_t i = 0; i < net.process_count(); ++i) {
    map.emplace(ProcessId{i}, wcet);
  }
  return map;
}

InputScripts FftApp::make_inputs(const std::vector<std::vector<double>>& frames) const {
  InputScripts scripts;
  std::vector<Value> samples;
  samples.reserve(frames.size());
  for (const auto& f : frames) {
    samples.emplace_back(f);
  }
  scripts.emplace(input, std::move(samples));
  return scripts;
}

std::vector<std::complex<double>> reference_dft(const std::vector<double>& block) {
  const std::size_t n = block.size();
  std::vector<std::complex<double>> out(n);
  for (std::size_t k = 0; k < n; ++k) {
    std::complex<double> acc(0.0, 0.0);
    for (std::size_t t = 0; t < n; ++t) {
      const double angle = -2.0 * kPi * static_cast<double>(k * t) /
                           static_cast<double>(n);
      acc += block[t] * std::complex<double>(std::cos(angle), std::sin(angle));
    }
    out[k] = acc;
  }
  return out;
}

}  // namespace fppn::apps
