// The streaming case study (§V-A, Fig. 5): a pipelined radix-2 FFT as an
// FPPN. The paper's network has a generator, three stages of four FFT2
// butterfly processes and a consumer — 14 processes, i.e. an 8-point
// decimation-in-time FFT (log2(8) = 3 stages, 8/2 = 4 butterflies each).
// This module builds the network for any power-of-two size; the default
// size 8 reproduces Fig. 5 exactly.
//
// All processes share one period and deadline (200 ms in the paper); every
// FIFO's data-flow direction coincides with the functional priority, so
// the derived task graph maps one-to-one onto the process-network graph
// (as the paper observes).
//
// Data: each "line" channel carries one complex sample per frame as a
// vector<double>{re, im}. The generator bit-reverses the input block; the
// consumer emits the naturally-ordered spectrum.
#pragma once

#include <complex>
#include <vector>

#include "fppn/exec_state.hpp"
#include "fppn/network.hpp"
#include "taskgraph/derivation.hpp"

namespace fppn::apps {

/// Exact-enough pi for twiddle factors and reference DFTs (C++17 has no
/// std::numbers).
constexpr double kPi = 3.14159265358979323846264338327950288;

struct FftApp {
  Network net;
  int points = 8;      ///< N (power of two)
  int stages = 3;      ///< log2(N)
  ProcessId generator;
  ProcessId consumer;
  /// butterflies[s][i] = FFT2_<s>_<i>, i in [0, N/2).
  std::vector<std::vector<ProcessId>> butterflies;
  ChannelId input;     ///< external input: one vector<double> of N reals per frame
  ChannelId output;    ///< external output: interleaved re/im spectrum per frame

  [[nodiscard]] std::size_t process_count() const {
    return 2 + static_cast<std::size_t>(stages) * static_cast<std::size_t>(points) / 2;
  }

  /// Uniform WCETs for every process (the paper: "roughly 14 ms"; use
  /// 40/3 ms to land on the published load of 0.93 for N = 8).
  [[nodiscard]] WcetMap uniform_wcets(Duration wcet) const;

  /// One vector<double> input sample (size N) per frame.
  [[nodiscard]] InputScripts make_inputs(
      const std::vector<std::vector<double>>& frames) const;
};

/// Builds the FFT network. `points` must be a power of two >= 2.
[[nodiscard]] FftApp build_fft(int points = 8, Duration period = Duration::ms(200),
                               Duration deadline = Duration::ms(200));

/// Reference DFT of a real block (for output verification).
[[nodiscard]] std::vector<std::complex<double>> reference_dft(
    const std::vector<double>& block);

}  // namespace fppn::apps
