#include "apps/fig1.hpp"

#include <cmath>

namespace fppn::apps {
namespace {

double as_double(const Value& v, double fallback) {
  if (const auto* d = std::get_if<double>(&v)) {
    return *d;
  }
  if (const auto* i = std::get_if<std::int64_t>(&v)) {
    return static_cast<double>(*i);
  }
  return fallback;
}

/// InputA: forward the k-th external sample to both filter paths.
class InputABehavior final : public ProcessBehavior {
 public:
  void on_job(JobContext& ctx) override {
    const Value x = ctx.read("InA");
    const double sample = as_double(x, 0.0);
    ctx.write("inA_fA", sample);
    ctx.write("inA_fB", sample);
  }
};

/// FilterA: leaky integrator over the (every other invocation) input,
/// scaled by the feedback gain computed by NormA.
class FilterABehavior final : public ProcessBehavior {
 public:
  void on_job(JobContext& ctx) override {
    const Value x = ctx.read("inA_fA");
    if (has_data(x)) {
      acc_ = 0.5 * acc_ + as_double(x, 0.0);
    } else {
      acc_ = 0.5 * acc_;  // decay between input samples
    }
    const double gain = as_double(ctx.read("fbA"), 1.0);
    const double out = acc_ * gain;
    ctx.write("fA_nA", out);
    ctx.write("mixA", out);
  }

 private:
  double acc_ = 0.0;
};

/// NormA: soft normalizer; also produces FilterA's feedback gain.
class NormABehavior final : public ProcessBehavior {
 public:
  void on_job(JobContext& ctx) override {
    const double v = as_double(ctx.read("fA_nA"), 0.0);
    const double norm = v / (1.0 + std::abs(v));
    ctx.write("nA_outA", norm);
    ctx.write("fbA", 1.0 / (1.0 + std::abs(v)));
  }
};

class OutputABehavior final : public ProcessBehavior {
 public:
  void on_job(JobContext& ctx) override {
    const Value v = ctx.read("nA_outA");
    ctx.write("Out1", has_data(v) ? v : Value{0.0});
  }
};

/// CoefB: store the sporadically commanded coefficient on the blackboard.
class CoefBBehavior final : public ProcessBehavior {
 public:
  void on_job(JobContext& ctx) override {
    const Value c = ctx.read("CoefIn");
    if (has_data(c)) {
      ctx.write("coefB", as_double(c, 1.0));
    }
  }
};

/// FilterB: gain filter with the last commanded coefficient.
class FilterBBehavior final : public ProcessBehavior {
 public:
  void on_job(JobContext& ctx) override {
    const double x = as_double(ctx.read("inA_fB"), 0.0);
    const double c = as_double(ctx.read("coefB"), 1.0);
    ctx.write("fB_outB", c * x);
  }
};

/// OutputB: mix the FilterB output (when present) with the FilterA path.
class OutputBBehavior final : public ProcessBehavior {
 public:
  void on_job(JobContext& ctx) override {
    const Value y = ctx.read("fB_outB");
    const Value m = ctx.read("mixA");
    const double out = as_double(y, 0.0) + 0.25 * as_double(m, 0.0);
    ctx.write("Out2", out);
  }
};

template <class B>
BehaviorFactory make() {
  return [] { return std::make_unique<B>(); };
}

}  // namespace

Fig1App build_fig1() {
  Fig1App app;
  NetworkBuilder b;
  const auto ms = [](std::int64_t v) { return Duration::ms(v); };

  app.input_a = b.periodic("InputA", ms(200), ms(200), make<InputABehavior>());
  app.filter_a = b.periodic("FilterA", ms(100), ms(100), make<FilterABehavior>());
  app.filter_b = b.periodic("FilterB", ms(200), ms(200), make<FilterBBehavior>());
  app.norm_a = b.periodic("NormA", ms(200), ms(200), make<NormABehavior>());
  app.output_a = b.periodic("OutputA", ms(200), ms(200), make<OutputABehavior>());
  app.output_b = b.periodic("OutputB", ms(100), ms(100), make<OutputBBehavior>());
  app.coef_b = b.sporadic("CoefB", 2, ms(700), ms(700), make<CoefBBehavior>());

  b.fifo("inA_fA", app.input_a, app.filter_a);
  b.fifo("inA_fB", app.input_a, app.filter_b);
  b.blackboard("fA_nA", app.filter_a, app.norm_a);
  b.blackboard("mixA", app.filter_a, app.output_b);
  b.blackboard("fbA", app.norm_a, app.filter_a);  // the feedback loop
  b.fifo("nA_outA", app.norm_a, app.output_a);
  b.blackboard("coefB", app.coef_b, app.filter_b);
  b.fifo("fB_outB", app.filter_b, app.output_b);

  app.in_a = b.external_input("InA", app.input_a);
  app.coef_in = b.external_input("CoefIn", app.coef_b);
  app.out1 = b.external_output("Out1", app.output_a);
  app.out2 = b.external_output("Out2", app.output_b);

  // Functional priorities as drawn in Fig. 1 (writer over reader, except
  // the feedback channel, which is covered by FilterA -> NormA).
  b.priority(app.input_a, app.filter_a);
  b.priority(app.input_a, app.filter_b);
  b.priority(app.input_a, app.norm_a);
  b.priority(app.filter_a, app.norm_a);
  b.priority(app.filter_a, app.output_b);
  b.priority(app.norm_a, app.output_a);
  b.priority(app.filter_b, app.output_b);
  b.priority(app.coef_b, app.filter_b);

  app.net = std::move(b).build();
  return app;
}

WcetMap Fig1App::fig3_wcets() const {
  WcetMap map;
  for (std::size_t i = 0; i < net.process_count(); ++i) {
    map.emplace(ProcessId{i}, Duration::ms(25));
  }
  return map;
}

InputScripts Fig1App::make_inputs(const std::vector<double>& samples,
                                  const std::vector<double>& coefs) const {
  InputScripts scripts;
  std::vector<Value> s(samples.begin(), samples.end());
  std::vector<Value> c(coefs.begin(), coefs.end());
  scripts.emplace(in_a, std::move(s));
  scripts.emplace(coef_in, std::move(c));
  return scripts;
}

}  // namespace fppn::apps
