// Compiling a static schedule into a timed-automata network (§V: "the
// tools are based on automatic translation of the FPPN network and the
// schedule to a network of timed automata").
//
// For each processor the translation emits one scheduler automaton that
// walks the processor's static job order. Each job J contributes:
//   Wait_J --(g >= A_J  and  done_P = 1 for every predecessor P)-->
//   Exec_J [x <= C_J] --(x >= C_J; done_J := 1)--> next Wait
// where g is a never-reset clock (absolute frame time) and x is reset on
// execution start. The run of the resulting closed network reproduces
// the static-order policy for one schedule frame with WCET execution
// times: job start/end times equal the VM runtime's frame-0 times with a
// zero overhead model. Tests use this as an independent timing oracle.
//
// Scope: one frame, all jobs present (server jobs treated as invoked —
// i.e. the worst-case demand the schedule was sized for). Sporadic
// absence can be modeled by pre-setting the variable skip_<job> to 1,
// which lets the scheduler bypass the job instantly.
#pragma once

#include <map>
#include <string>
#include <vector>

#include "sched/static_schedule.hpp"
#include "ta/ta.hpp"
#include "taskgraph/task_graph.hpp"

namespace fppn::ta {

struct TranslationResult {
  TaNetwork network;
  /// Labels used for job start/end events: "start <name>" / "end <name>".
  std::map<std::string, JobId> start_labels;
  std::map<std::string, JobId> end_labels;
};

/// Compiles one frame of `schedule` over `tg` into a TA network.
/// `skipped` jobs (false-marked servers) complete instantly at their
/// arrival boundary without executing.
[[nodiscard]] TranslationResult translate_schedule(
    const TaskGraph& tg, const StaticSchedule& schedule,
    const std::vector<JobId>& skipped = {});

/// Runs the translated network over one hyperperiod and returns each
/// executed job's (start, end) as observed in the TA run.
struct TaJobTimes {
  std::map<JobId, Time> start;
  std::map<JobId, Time> end;
};

[[nodiscard]] TaJobTimes run_schedule_oracle(const TaskGraph& tg,
                                             const StaticSchedule& schedule,
                                             const std::vector<JobId>& skipped = {});

}  // namespace fppn::ta
