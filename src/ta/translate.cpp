#include "ta/translate.hpp"

#include <algorithm>
#include <stdexcept>

namespace fppn::ta {

TranslationResult translate_schedule(const TaskGraph& tg,
                                     const StaticSchedule& schedule,
                                     const std::vector<JobId>& skipped) {
  TranslationResult out;
  for (std::size_t i = 0; i < tg.job_count(); ++i) {
    if (!schedule.is_placed(JobId(i))) {
      throw std::invalid_argument("ta translation: unplaced job '" +
                                  tg.job(JobId(i)).name + "'");
    }
    out.network.set_var("done_" + std::to_string(i), 0);
    out.network.set_var("skip_" + std::to_string(i), 0);
  }
  for (const JobId s : skipped) {
    out.network.set_var("skip_" + std::to_string(s.value()), 1);
  }

  const auto order = schedule.per_processor_order();
  for (std::size_t m = 0; m < order.size(); ++m) {
    TimedAutomaton a("sched_M" + std::to_string(m + 1));
    a.add_clock("g");  // absolute frame time, never reset
    a.add_clock("x");  // per-execution clock
    // Locations: Wait_0, Exec_0, Wait_1, Exec_1, ..., Done.
    std::vector<std::size_t> wait_loc;
    std::vector<std::size_t> exec_loc;
    for (const JobId id : order[m]) {
      const Job& job = tg.job(id);
      wait_loc.push_back(a.add_location(TaLocation{"Wait_" + job.name, {}, false}));
      exec_loc.push_back(a.add_location(
          TaLocation{"Exec_" + job.name,
                     {ClockBound{"x", job.wcet.value()}},
                     false}));
    }
    const std::size_t done_loc = a.add_location(TaLocation{"Done", {}, false});

    for (std::size_t pos = 0; pos < order[m].size(); ++pos) {
      const JobId id = order[m][pos];
      const Job& job = tg.job(id);
      const std::size_t next_wait =
          pos + 1 < order[m].size() ? wait_loc[pos + 1] : done_loc;
      const std::string done_var = "done_" + std::to_string(id.value());
      const std::string skip_var = "skip_" + std::to_string(id.value());

      // Data guard: all predecessors done (skipped predecessors count as
      // done once their boundary passed; we conservatively require the
      // skip flag which is pre-set, plus the arrival bound below).
      std::vector<std::string> pred_vars;
      for (const JobId p : tg.predecessors(id)) {
        pred_vars.push_back("done_" + std::to_string(p.value()));
      }
      const auto preds_done = [pred_vars](const VarEnv& env) {
        for (const std::string& v : pred_vars) {
          if (env.at(v) == 0) {
            return false;
          }
        }
        return true;
      };

      // Wait -> Exec: invocation (g >= A) + precedence + not skipped.
      TaTransition start;
      start.from = wait_loc[pos];
      start.to = exec_loc[pos];
      start.lower_bounds = {ClockBound{"g", (job.arrival - Time()).value()}};
      start.guard = [preds_done, skip_var](const VarEnv& env) {
        return env.at(skip_var) == 0 && preds_done(env);
      };
      start.resets = {"x"};
      start.label = "start " + job.name;
      a.add_transition(start);
      out.start_labels.emplace(start.label, id);

      // Exec -> next: completion after exactly C (invariant + lower bound).
      TaTransition end;
      end.from = exec_loc[pos];
      end.to = next_wait;
      end.lower_bounds = {ClockBound{"x", job.wcet.value()}};
      end.update = [done_var](VarEnv& env) { env[done_var] = 1; };
      end.label = "end " + job.name;
      a.add_transition(end);
      out.end_labels.emplace(end.label, id);

      // Wait -> next: skipped job completes instantly once its arrival
      // boundary has passed (the false-mark instant of the policy).
      TaTransition skip;
      skip.from = wait_loc[pos];
      skip.to = next_wait;
      skip.lower_bounds = {ClockBound{"g", (job.arrival - Time()).value()}};
      skip.guard = [skip_var](const VarEnv& env) { return env.at(skip_var) == 1; };
      skip.update = [done_var](VarEnv& env) { env[done_var] = 1; };
      skip.label = "skip " + tg.job(id).name;
      a.add_transition(skip);
    }
    out.network.add(std::move(a));
  }
  return out;
}

TaJobTimes run_schedule_oracle(const TaskGraph& tg, const StaticSchedule& schedule,
                               const std::vector<JobId>& skipped) {
  TranslationResult tr = translate_schedule(tg, schedule, skipped);
  Duration h = tg.hyperperiod();
  if (h.is_zero()) {
    // Synthetic graph without a frame period: any horizon covering every
    // deadline plus all work suffices (the network quiesces on its own).
    Time latest;
    for (const Job& j : tg.jobs()) {
      latest = std::max(latest, j.deadline);
    }
    h = (latest - Time()) + tg.total_work();
  }
  const TaRunResult run = tr.network.run(Time() + h + h);
  TaJobTimes times;
  for (const TaEvent& e : run.events) {
    if (const auto it = tr.start_labels.find(e.label); it != tr.start_labels.end()) {
      times.start[it->second] = e.time;
    } else if (const auto it2 = tr.end_labels.find(e.label);
               it2 != tr.end_labels.end()) {
      times.end[it2->second] = e.time;
    }
  }
  return times;
}

}  // namespace fppn::ta
