#include "ta/ta.hpp"

#include <algorithm>
#include <stdexcept>

namespace fppn::ta {

std::size_t TimedAutomaton::add_location(TaLocation loc) {
  locations_.push_back(std::move(loc));
  return locations_.size() - 1;
}

void TimedAutomaton::add_clock(const std::string& clock) {
  if (std::find(clocks_.begin(), clocks_.end(), clock) == clocks_.end()) {
    clocks_.push_back(clock);
  }
}

void TimedAutomaton::add_transition(TaTransition t) {
  if (t.from >= locations_.size() || t.to >= locations_.size()) {
    throw std::invalid_argument("ta: transition endpoint out of range");
  }
  for (const ClockBound& b : t.lower_bounds) {
    add_clock(b.clock);
  }
  for (const std::string& c : t.resets) {
    add_clock(c);
  }
  transitions_.push_back(std::move(t));
}

std::size_t TaNetwork::add(TimedAutomaton automaton) {
  if (automaton.locations().empty()) {
    throw std::invalid_argument("ta: automaton without locations");
  }
  for (const TaLocation& loc : automaton.locations()) {
    for (const ClockBound& b : loc.invariants) {
      automaton.add_clock(b.clock);
    }
  }
  automata_.push_back(std::move(automaton));
  return automata_.size() - 1;
}

TaRunResult TaNetwork::run(Time horizon) {
  const std::size_t n = automata_.size();
  std::vector<std::size_t> loc(n, 0);
  // last reset time per (automaton, clock); clock value = now - reset.
  std::vector<std::map<std::string, Time>> reset(n);
  for (std::size_t a = 0; a < n; ++a) {
    for (const std::string& c : automata_[a].clocks()) {
      reset[a][c] = Time();
    }
  }
  TaRunResult result;
  Time now;

  const auto clock_value_ok = [&](std::size_t a, const TaTransition& t) {
    for (const ClockBound& b : t.lower_bounds) {
      if (now - reset[a].at(b.clock) < Duration(b.bound)) {
        return false;
      }
    }
    return true;
  };
  const auto data_ok = [&](const TaTransition& t) {
    return !t.guard || t.guard(vars_);
  };

  for (;;) {
    // Fire the first enabled transition, if any.
    bool fired = false;
    for (std::size_t a = 0; a < n && !fired; ++a) {
      for (const TaTransition& t : automata_[a].transitions()) {
        if (t.from != loc[a] || !data_ok(t) || !clock_value_ok(a, t)) {
          continue;
        }
        if (t.update) {
          t.update(vars_);
        }
        for (const std::string& c : t.resets) {
          reset[a][c] = now;
        }
        loc[a] = t.to;
        if (!t.label.empty()) {
          result.events.push_back(TaEvent{now, automata_[a].name(), t.label});
        }
        fired = true;
        break;
      }
    }
    if (fired) {
      continue;
    }

    // Let time elapse: earliest instant some transition's clock bounds are
    // met (data guards are time-independent, so only transitions whose
    // data guard holds *now* can become enabled by waiting).
    std::optional<Time> next;
    for (std::size_t a = 0; a < n; ++a) {
      for (const TaTransition& t : automata_[a].transitions()) {
        if (t.from != loc[a] || !data_ok(t)) {
          continue;
        }
        Time enable = now;
        for (const ClockBound& b : t.lower_bounds) {
          enable = std::max(enable, reset[a].at(b.clock) + Duration(b.bound));
        }
        if (enable > now && (!next.has_value() || enable < *next)) {
          next = enable;
        }
      }
    }
    // Invariant deadline: time may not pass it.
    std::optional<Time> deadline;
    for (std::size_t a = 0; a < n; ++a) {
      const TaLocation& l = automata_[a].locations()[loc[a]];
      if (l.urgent) {
        deadline = now;
      }
      for (const ClockBound& b : l.invariants) {
        const Time d = reset[a].at(b.clock) + Duration(b.bound);
        if (!deadline.has_value() || d < *deadline) {
          deadline = d;
        }
      }
    }
    if (!next.has_value()) {
      if (deadline.has_value()) {
        // A finite invariant (or urgency) bounds time here, but no
        // transition can ever become enabled: the system cannot let time
        // pass the deadline nor move — a time-lock.
        throw std::logic_error("ta: time-lock at t=" + deadline->to_string() +
                               " (invariant expires with nothing enabled)");
      }
      result.quiescent = true;
      result.end_time = now;
      return result;
    }
    if (deadline.has_value() && *deadline < *next) {
      throw std::logic_error("ta: time-lock at t=" + deadline->to_string() +
                             " (invariant expires with nothing enabled)");
    }
    if (*next > horizon) {
      result.end_time = horizon;
      return result;
    }
    now = *next;
  }
}

}  // namespace fppn::ta
