// A small timed-automata framework with shared integer variables.
//
// The paper's toolchain compiles the FPPN network and its schedule into a
// network of timed automata executed by a runtime engine (§V). This module
// plays the same role here: translate.hpp compiles a static schedule into
// a TA network, and the engine below executes it as an independent oracle
// for the online policy's timing (tests cross-check it against the VM
// runtime).
//
// Model: each automaton has named clocks (all advancing at rate 1),
// locations with optional clock invariants (clock <= bound) and urgency,
// and transitions with clock lower bounds (clock >= bound), data guards
// over the shared variables, variable updates and clock resets.
//
// Execution semantics (closed system, deterministic): while some
// transition is enabled at the current time, fire the lexicographically
// smallest (automaton, transition) one; otherwise let time elapse to the
// earliest instant at which any transition becomes enabled, never past a
// location invariant (a violated invariant with nothing enabled is a
// time-lock and throws). This "earliest event first" scheduler is exactly
// the semantics the schedule translation needs.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <optional>
#include <string>
#include <vector>

#include "rt/rational.hpp"
#include "rt/time.hpp"

namespace fppn::ta {

using VarEnv = std::map<std::string, std::int64_t>;
using DataGuard = std::function<bool(const VarEnv&)>;
using Update = std::function<void(VarEnv&)>;

/// clock >= bound (transition guard) or clock <= bound (invariant).
struct ClockBound {
  std::string clock;
  Rational bound;
};

struct TaTransition {
  std::size_t from = 0;
  std::size_t to = 0;
  std::vector<ClockBound> lower_bounds;  ///< all must satisfy clock >= bound
  DataGuard guard;                       ///< null == true
  std::vector<std::string> resets;       ///< clocks reset to 0 on firing
  Update update;                         ///< null == no-op
  std::string label;                     ///< recorded in the run trace
};

struct TaLocation {
  std::string name;
  std::vector<ClockBound> invariants;  ///< all must satisfy clock <= bound
  bool urgent = false;                 ///< no time may elapse here
};

class TimedAutomaton {
 public:
  explicit TimedAutomaton(std::string name) : name_(std::move(name)) {}

  std::size_t add_location(TaLocation loc);
  /// Declares a clock (initially 0 at time 0).
  void add_clock(const std::string& clock);
  void add_transition(TaTransition t);

  [[nodiscard]] const std::string& name() const noexcept { return name_; }
  [[nodiscard]] const std::vector<TaLocation>& locations() const noexcept {
    return locations_;
  }
  [[nodiscard]] const std::vector<TaTransition>& transitions() const noexcept {
    return transitions_;
  }
  [[nodiscard]] const std::vector<std::string>& clocks() const noexcept {
    return clocks_;
  }

 private:
  std::string name_;
  std::vector<TaLocation> locations_;
  std::vector<TaTransition> transitions_;
  std::vector<std::string> clocks_;
};

/// One fired transition in a network run.
struct TaEvent {
  Time time;
  std::string automaton;
  std::string label;
};

struct TaRunResult {
  std::vector<TaEvent> events;
  Time end_time;
  bool quiescent = false;  ///< stopped because nothing can ever fire again
};

class TaNetwork {
 public:
  /// Adds an automaton (initial location = index 0). Returns its index.
  std::size_t add(TimedAutomaton automaton);

  void set_var(const std::string& name, std::int64_t value) { vars_[name] = value; }

  [[nodiscard]] const VarEnv& vars() const noexcept { return vars_; }
  [[nodiscard]] std::size_t size() const noexcept { return automata_.size(); }

  /// Executes until `horizon` (exclusive for time elapse, inclusive for
  /// firings at exactly `horizon`) or quiescence. Throws std::logic_error
  /// on time-locks (an invariant expires with nothing enabled).
  [[nodiscard]] TaRunResult run(Time horizon);

 private:
  std::vector<TimedAutomaton> automata_;
  VarEnv vars_;
};

}  // namespace fppn::ta
