// The engine solve layer's request/report contract: one canonical way to
// describe a scheduling problem (SolveRequest), one consolidated knob set
// (SearchConfig) and one structured outcome (SolveReport).
//
// Before this layer existed, every entry point — the tool's subcommands,
// the benches, the fuzz loop and the shard worker — hand-rolled the same
// parse -> derive -> compile -> cache-attach -> search pipeline and
// threaded four overlapping options structs (LocalSearchOptions,
// StrategyOptions, ParallelSearchOptions, ShardedSearchOptions) by hand.
// SearchConfig is now the single user-facing source of that plumbing: it
// subsumes every toggle the lower-level structs expose (strategy
// restriction, seeds, workers, shards, cache directory/bounds,
// warm-start, fast-evaluator/incremental/visited-set) and derives the
// lower-level options in exactly one place (search_options()), so the
// determinism contract — same request, bit-identical winner, regardless
// of workers, shards or cache warmth — is enforced once, for every
// caller (engine/engine.hpp holds the Engine that executes requests).
#pragma once

#include <cstdint>
#include <functional>
#include <optional>
#include <string>
#include <vector>

#include "io/text_format.hpp"
#include "sched/parallel_search.hpp"
#include "sched/sharded_search.hpp"
#include "taskgraph/derivation.hpp"

namespace fppn {
namespace engine {

/// Every knob a solve may depend on, consolidated. Field groups map onto
/// the lower layers as follows: processors/workers/strategies/seed and
/// the budget resolve into sched::ParallelSearchOptions (and from there
/// into StrategyOptions/LocalSearchOptions per candidate); the cache
/// group selects the ScheduleCache the Engine attaches; the shard group
/// selects the sharded orchestrator (ShardedSearchOptions); the kernel
/// toggles ride through unchanged. search_options() is the only
/// translation site.
struct SearchConfig {
  std::int64_t processors = 2;
  /// Parallel-search worker threads; 0 = hardware concurrency.
  int workers = 0;
  /// Strategy names to try; empty = every registered strategy.
  std::vector<std::string> strategies;
  std::uint64_t seed = 1;

  /// Budget preset: false = the quick preset (1 seed per strategy, 400
  /// iterations, 1 restart), true = the optimizing preset (3 seeds, 2000
  /// iterations, 2 restarts) — the presets fppn_tool has always used.
  bool optimize = false;
  /// Explicit budget overrides; unset fields come from the preset.
  std::optional<int> seeds_per_strategy;
  std::optional<int> max_iterations;
  std::optional<int> restarts;

  // --- cache attachment -------------------------------------------------
  /// On-disk schedule cache directory; unset = no disk cache.
  std::optional<std::string> cache_dir;
  /// Master off-switch (--no-cache): no cache is attached even with a
  /// directory configured.
  bool no_cache = false;
  /// Attach the Engine's shared in-memory cache when no disk directory is
  /// given — the L1 of a long-lived engine (fppn_serve): repeat requests
  /// for a known fingerprint are answered without evaluating a candidate.
  bool memory_cache = false;
  /// Entry-count bound on the disk directory; 0 = unbounded.
  std::size_t cache_max_entries = 0;
  /// Byte-size bound on the disk directory's entry files; 0 = unbounded.
  std::uint64_t cache_max_bytes = 0;
  /// Run the warm-start overlay after winner selection (ignored without a
  /// cache). Defaults on, like fppn_tool: the overlay only ever matches
  /// or strictly improves the winner.
  bool warm_start = true;

  // --- sharding ---------------------------------------------------------
  /// > 0: split the candidate matrix across this many shards
  /// (sched::sharded_search) instead of searching in-process.
  int shards = 0;
  /// Directory the shards publish into; unset = a private temp directory
  /// created and removed by the Engine. A pre-populated directory (every
  /// manifest present) is merged without launching anything.
  std::optional<std::string> shard_dir;

  // --- kernel toggles (all outside every cache key) ---------------------
  bool use_fast_evaluator = true;
  bool use_incremental = true;
  bool use_visited_set = true;

  /// The resolved low-level options — the single place SearchConfig is
  /// translated for the search layers. Cache/shard fields are handled by
  /// the Engine, not here. Deterministic; never throws.
  [[nodiscard]] sched::ParallelSearchOptions search_options() const;
};

/// One scheduling problem. Exactly one input source must be set; network
/// inputs are parsed and derived by the Engine, a pre-derived graph skips
/// both stages (benches, the fuzz loop).
struct SolveRequest {
  /// Path of a `.fppn` network file to load.
  std::optional<std::string> network_path;
  /// `.fppn` network text to parse in place (the fppn_serve wire format).
  std::optional<std::string> network_text;
  /// Pre-derived task graph (not owned; must outlive the call).
  const TaskGraph* graph = nullptr;

  // Derivation knobs — network inputs only.
  int unfold = 1;
  /// Uniform WCET override; unset networks must declare complete WCETs.
  std::optional<Duration> uniform_wcet;

  SearchConfig config;

  /// Builds the launcher for a sharded solve (the tool spawns
  /// `fppn_tool search-worker` processes of itself). Null with shards > 0
  /// falls back to evaluating every shard in-process — same winner, by
  /// the sharded determinism contract.
  std::function<sched::ShardLauncher(const std::string& shard_dir)> make_shard_launcher;
};

/// Structured outcome of one solve — everything the printf-scattered
/// stats in the old tool reported, as data.
struct SolveReport {
  /// Winner schedule, feasibility, candidate/cache/evaluation counters.
  sched::ParallelSearchResult search;

  std::uint64_t fingerprint = 0;   ///< canonical task-graph fingerprint
  std::size_t jobs = 0;            ///< derived job count
  std::int64_t processors = 0;     ///< processor count solved for
  bool sharded = false;            ///< went through sched::sharded_search

  /// Cache accounting *of this solve* (stat deltas, not cumulative engine
  /// counters) when a cache was attached.
  bool cache_attached = false;
  std::string cache_directory;     ///< "" for the in-memory L1
  sched::CacheStats cache;

  /// Per-stage wall-clock timings (ms). Parse/derive are zero for
  /// pre-derived graph inputs; total_ms covers the whole solve() call
  /// (the engine half of a serving request's latency — the daemon adds
  /// queue wait on top).
  double parse_ms = 0.0;
  double derive_ms = 0.0;
  double search_ms = 0.0;
  double total_ms = 0.0;

  /// The parsed network / derived graph, when the Engine produced them —
  /// so callers (simulate, feasibility reports, gantt) never re-run the
  /// pipeline stages the solve already ran.
  std::optional<io::ParsedNetwork> network;
  std::optional<DerivedTaskGraph> derived;

  [[nodiscard]] bool feasible() const { return search.best.feasible; }
};

/// Loads and parses a network file. Throws std::runtime_error
/// ("cannot open '<path>'") for an unreadable file and io::ParseError /
/// std::invalid_argument for malformed content — same messages the tool
/// has always printed.
[[nodiscard]] io::ParsedNetwork load_network(const std::string& path);

/// Resolves the WCET map of a parsed network: the uniform override when
/// given, the declared per-process WCETs otherwise. Throws
/// std::runtime_error when neither covers every process.
[[nodiscard]] WcetMap resolve_wcets(const io::ParsedNetwork& parsed,
                                    const std::optional<Duration>& uniform_wcet);

/// Parse + derive for a network-input request (no search). Shared by
/// Engine::solve and callers that only need the graph (taskgraph,
/// roundtrip, fuzz replay).
[[nodiscard]] DerivedTaskGraph derive_network(const io::ParsedNetwork& parsed,
                                              const SolveRequest& request);

}  // namespace engine
}  // namespace fppn
