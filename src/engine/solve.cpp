#include "engine/solve.hpp"

#include <fstream>
#include <stdexcept>

namespace fppn {
namespace engine {

sched::ParallelSearchOptions SearchConfig::search_options() const {
  sched::ParallelSearchOptions opts;
  opts.processors = processors;
  opts.workers = workers;
  opts.strategies = strategies;
  opts.base_seed = seed;
  // The two presets fppn_tool has always used: a plain call keeps
  // iterative strategies on a small budget so it stays quick; --optimize
  // buys the full fan-out. Explicit overrides beat the preset.
  if (optimize) {
    opts.seeds_per_strategy = 3;
    opts.max_iterations = 2000;
    opts.restarts = 2;
  } else {
    opts.seeds_per_strategy = 1;
    opts.max_iterations = 400;
    opts.restarts = 1;
  }
  if (seeds_per_strategy.has_value()) {
    opts.seeds_per_strategy = *seeds_per_strategy;
  }
  if (max_iterations.has_value()) {
    opts.max_iterations = *max_iterations;
  }
  if (restarts.has_value()) {
    opts.restarts = *restarts;
  }
  opts.warm_start = warm_start;
  opts.use_fast_evaluator = use_fast_evaluator;
  opts.use_incremental = use_incremental;
  opts.use_visited_set = use_visited_set;
  return opts;
}

io::ParsedNetwork load_network(const std::string& path) {
  std::ifstream in(path);
  if (!in) {
    throw std::runtime_error("cannot open '" + path + "'");
  }
  return io::parse_network(in);
}

WcetMap resolve_wcets(const io::ParsedNetwork& parsed,
                      const std::optional<Duration>& uniform_wcet) {
  if (uniform_wcet.has_value()) {
    WcetMap map;
    for (std::size_t i = 0; i < parsed.net.process_count(); ++i) {
      map.emplace(ProcessId{i}, *uniform_wcet);
    }
    return map;
  }
  if (!parsed.wcets_complete) {
    throw std::runtime_error(
        "network lacks wcet= on some processes; pass --wcet C");
  }
  return parsed.wcets;
}

DerivedTaskGraph derive_network(const io::ParsedNetwork& parsed,
                                const SolveRequest& request) {
  DerivationOptions opts;
  opts.unfolding = request.unfold;
  return derive_task_graph(parsed.net, resolve_wcets(parsed, request.uniform_wcet),
                           opts);
}

}  // namespace engine
}  // namespace fppn
