#include "engine/engine.hpp"

#include <chrono>
#include <filesystem>
#include <sstream>
#include <stdexcept>
#include <vector>

#include "io/atomic_file.hpp"
#include "sched/parallel_search.hpp"
#include "taskgraph/fingerprint.hpp"

namespace fppn {
namespace engine {

namespace fs = std::filesystem;

namespace {

using Clock = std::chrono::steady_clock;

double ms_since(Clock::time_point begin) {
  return std::chrono::duration<double, std::milli>(Clock::now() - begin).count();
}

sched::CacheStats stats_delta(const sched::CacheStats& before,
                              const sched::CacheStats& after) {
  sched::CacheStats d;
  d.hits = after.hits - before.hits;
  d.misses = after.misses - before.misses;
  d.stores = after.stores - before.stores;
  d.disk_rejects = after.disk_rejects - before.disk_rejects;
  d.evictions = after.evictions - before.evictions;
  return d;
}

/// The inputs of a request, resolved to one task graph (plus the parse /
/// derive artifacts and their timings when the engine produced them).
struct ResolvedInput {
  const TaskGraph* graph = nullptr;
  std::optional<io::ParsedNetwork> network;
  std::optional<DerivedTaskGraph> derived;
  double parse_ms = 0.0;
  double derive_ms = 0.0;
};

ResolvedInput resolve_input(const SolveRequest& request) {
  ResolvedInput in;
  if (request.graph != nullptr) {
    if (request.network_path.has_value() || request.network_text.has_value()) {
      throw std::invalid_argument("SolveRequest: give exactly one input source");
    }
    in.graph = request.graph;
    return in;
  }
  const Clock::time_point parse_begin = Clock::now();
  if (request.network_path.has_value()) {
    if (request.network_text.has_value()) {
      throw std::invalid_argument("SolveRequest: give exactly one input source");
    }
    in.network = load_network(*request.network_path);
  } else if (request.network_text.has_value()) {
    in.network = io::parse_network_string(*request.network_text);
  } else {
    throw std::invalid_argument("SolveRequest: no input source set");
  }
  in.parse_ms = ms_since(parse_begin);
  const Clock::time_point derive_begin = Clock::now();
  in.derived = derive_network(*in.network, request);
  in.derive_ms = ms_since(derive_begin);
  in.graph = &in.derived->graph;
  return in;
}

/// Runs the sharded orchestrator, owning the temp shard directory when the
/// request did not pin one — every error path unwinds through the same
/// cleanup chain.
sched::ParallelSearchResult run_sharded(const TaskGraph& tg,
                                        sched::ParallelSearchOptions& opts,
                                        const SolveRequest& request) {
  const SearchConfig& config = request.config;
  const bool private_dir = !config.shard_dir.has_value();
  const std::string shard_dir =
      private_dir ? io::make_temp_directory("fppn-shards-") : *config.shard_dir;
  sched::ShardedSearchOptions sharding;
  sharding.shards = config.shards;
  sharding.shard_dir = shard_dir;
  sharding.launcher = request.make_shard_launcher
                          ? request.make_shard_launcher(shard_dir)
                          : sched::inprocess_shard_launcher(tg, opts, shard_dir);
  try {
    const sched::ParallelSearchResult result = sched::sharded_search(tg, opts, sharding);
    if (private_dir) {
      std::error_code ec;
      fs::remove_all(shard_dir, ec);
    }
    return result;
  } catch (...) {
    if (private_dir) {
      std::error_code ec;
      fs::remove_all(shard_dir, ec);
    }
    throw;
  }
}

}  // namespace

sched::ScheduleCache* Engine::cache_for(const SearchConfig& config) {
  if (config.no_cache) {
    return nullptr;
  }
  if (!config.cache_dir.has_value()) {
    return config.memory_cache ? &memory_cache_ : nullptr;
  }
  std::ostringstream key;
  key << *config.cache_dir << '|' << config.cache_max_entries << '|'
      << config.cache_max_bytes;
  const std::lock_guard<std::mutex> lock(mu_);
  auto it = disk_caches_.find(key.str());
  if (it == disk_caches_.end()) {
    // Throws on a bad path: loud, not a silent miss.
    it = disk_caches_
             .emplace(key.str(), std::make_unique<sched::ScheduleCache>(
                                     *config.cache_dir, config.cache_max_entries,
                                     config.cache_max_bytes))
             .first;
  }
  return it->second.get();
}

sched::CacheGcStats Engine::gc_disk_caches() {
  std::vector<sched::ScheduleCache*> caches;
  {
    const std::lock_guard<std::mutex> lock(mu_);
    caches.reserve(disk_caches_.size());
    for (const auto& [key, cache] : disk_caches_) {
      caches.push_back(cache.get());
    }
  }
  sched::CacheGcStats total;
  for (sched::ScheduleCache* cache : caches) {
    const sched::CacheGcStats pass = cache->gc();
    total.kept += pass.kept;
    total.evicted += pass.evicted;
    total.index_rebuilt = total.index_rebuilt || pass.index_rebuilt;
  }
  return total;
}

SolveReport Engine::solve(const SolveRequest& request) {
  const Clock::time_point solve_begin = Clock::now();
  ResolvedInput input = resolve_input(request);
  const TaskGraph& tg = *input.graph;

  sched::ParallelSearchOptions opts = request.config.search_options();
  sched::ScheduleCache* cache = cache_for(request.config);
  opts.cache = cache;
  const sched::CacheStats cache_before =
      cache != nullptr ? cache->stats() : sched::CacheStats{};

  SolveReport report;
  const Clock::time_point search_begin = Clock::now();
  if (request.config.shards > 0) {
    report.search = run_sharded(tg, opts, request);
    report.sharded = true;
  } else {
    report.search = sched::parallel_search(tg, opts);
  }
  report.search_ms = ms_since(search_begin);

  report.fingerprint = fingerprint(tg);
  report.jobs = tg.job_count();
  report.processors = request.config.processors;
  if (cache != nullptr) {
    report.cache_attached = true;
    report.cache_directory = cache->directory();
    report.cache = stats_delta(cache_before, cache->stats());
  }
  report.parse_ms = input.parse_ms;
  report.derive_ms = input.derive_ms;
  report.network = std::move(input.network);
  report.derived = std::move(input.derived);
  report.total_ms = ms_since(solve_begin);
  return report;
}

void Engine::solve_shard(const SolveRequest& request, int shard_index) {
  if (!request.config.shard_dir.has_value()) {
    throw std::invalid_argument("solve_shard: request.config.shard_dir is required");
  }
  const ResolvedInput input = resolve_input(request);
  const TaskGraph& tg = *input.graph;
  sched::ParallelSearchOptions opts = request.config.search_options();
  opts.cache = cache_for(request.config);
  const sched::ShardPlan plan = sched::make_shard_plan(tg, opts, request.config.shards);
  (void)sched::evaluate_shard(tg, opts, plan, shard_index, *request.config.shard_dir);
}

SolveReport solve_once(const SolveRequest& request) {
  Engine engine;
  return engine.solve(request);
}

SolveReport solve_graph(const TaskGraph& tg, const SearchConfig& config) {
  SolveRequest request;
  request.graph = &tg;
  request.config = config;
  return solve_once(request);
}

}  // namespace engine
}  // namespace fppn
