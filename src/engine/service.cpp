#include "engine/service.hpp"

#include <algorithm>
#include <cstdio>
#include <cstring>

#include "io/schedule_format.hpp"

namespace fppn {
namespace engine {

namespace {

using Clock = std::chrono::steady_clock;

double ms_since(Clock::time_point begin) {
  return std::chrono::duration<double, std::milli>(Clock::now() - begin).count();
}

/// `text` with surrounding ASCII whitespace stripped (verb matching).
std::string trimmed(const std::string& text) {
  const char* ws = " \t\r\n";
  const std::size_t first = text.find_first_not_of(ws);
  if (first == std::string::npos) {
    return {};
  }
  const std::size_t last = text.find_last_not_of(ws);
  return text.substr(first, last - first + 1);
}

/// Nearest-rank percentile of an unsorted sample copy.
double percentile(std::vector<double> samples, double p) {
  if (samples.empty()) {
    return 0.0;
  }
  std::sort(samples.begin(), samples.end());
  const std::size_t rank = static_cast<std::size_t>(
      p / 100.0 * static_cast<double>(samples.size() - 1) + 0.5);
  return samples[std::min(rank, samples.size() - 1)];
}

}  // namespace

SolveService::SolveService(Engine& engine, ServiceOptions options)
    : engine_(engine), options_(std::move(options)), started_(Clock::now()) {
  latency_ring_.reserve(256);
}

std::string SolveService::handle(const std::string& request,
                                 const RequestLoad& load) {
  if (trimmed(request) == "stats") {
    return render_stats();
  }
  const double queue_wait_ms = load.queue_wait_ms;

  // Graceful degradation: an optimize-preset service under sustained
  // queue pressure (queue at least half full when this request was
  // popped) answers with the quick preset instead — a worse schedule now
  // beats a shed request or a deadline miss later. Opt-in and counted.
  const bool degrade = options_.degrade_under_load && options_.optimize &&
                       load.queue_capacity > 0 &&
                       2 * load.queue_depth >= load.queue_capacity;

  const Clock::time_point handle_begin = Clock::now();
  std::string response;
  bool ok = false;
  SolveReport report;
  std::string error_detail;
  try {
    SolveRequest solve_request;
    solve_request.network_text = request;
    solve_request.config.processors = options_.processors;
    solve_request.config.seed = options_.seed;
    solve_request.config.workers = options_.search_workers;
    solve_request.config.optimize = options_.optimize && !degrade;
    if (options_.cache_dir.has_value()) {
      solve_request.config.cache_dir = options_.cache_dir;
      solve_request.config.cache_max_entries = options_.cache_max_entries;
      solve_request.config.cache_max_bytes = options_.cache_max_bytes;
    } else {
      solve_request.config.memory_cache = true;  // the shared L1 across requests
    }
    report = engine_.solve(solve_request);

    char status[256];
    std::snprintf(status, sizeof(status),
                  "fppn-serve ok fingerprint %016llx candidates %zu evaluated %zu "
                  "cached %zu winner %s seed %llu feasible %d\n",
                  static_cast<unsigned long long>(report.fingerprint),
                  report.search.candidates, report.search.evaluated,
                  report.search.cache_hits, report.search.best.strategy.c_str(),
                  static_cast<unsigned long long>(report.search.seed),
                  report.feasible() ? 1 : 0);

    io::ScheduleEntry entry;
    entry.fingerprint = report.fingerprint;
    entry.strategy = report.search.best.strategy;
    entry.seed = report.search.seed;
    entry.processors = report.processors;
    const sched::ParallelSearchOptions opts =
        solve_request.config.search_options();
    entry.max_iterations = opts.max_iterations;
    entry.restarts = opts.restarts;
    entry.detail = report.search.best.detail;
    entry.schedule = report.search.best.schedule;
    response = std::string(status) + io::write_schedule_entry(entry);
    ok = true;
  } catch (const io::ParseError& e) {
    error_detail = std::string("parse error: ") + e.what();
    response = "fppn-serve error: " + error_detail + "\n";
  } catch (const std::exception& e) {
    error_detail = e.what();
    response = std::string("fppn-serve error: ") + error_detail + "\n";
  }

  const double total_ms = queue_wait_ms + ms_since(handle_begin);
  record(ok, degrade, total_ms, report.cache);

  if (options_.verbose) {
    std::uint64_t number = 0;
    {
      const std::lock_guard<std::mutex> lock(mu_);
      number = request_counter_;
    }
    if (ok) {
      // " degraded" is the degraded-response marker documented in
      // docs/FILE_FORMATS.md — absent on full-budget responses, so the
      // historical line stays byte-identical.
      std::fprintf(stderr,
                   "fppn_serve: #%llu ok fp=%016llx winner=%s evaluated=%zu "
                   "cached=%zu queue-wait=%.2fms parse=%.2fms derive=%.2fms "
                   "search=%.2fms total=%.2fms%s\n",
                   static_cast<unsigned long long>(number),
                   static_cast<unsigned long long>(report.fingerprint),
                   report.search.best.strategy.c_str(), report.search.evaluated,
                   report.search.cache_hits, queue_wait_ms, report.parse_ms,
                   report.derive_ms, report.search_ms, total_ms,
                   degrade ? " degraded" : "");
    } else {
      std::fprintf(stderr,
                   "fppn_serve: #%llu error %s queue-wait=%.2fms total=%.2fms\n",
                   static_cast<unsigned long long>(number), error_detail.c_str(),
                   queue_wait_ms, total_ms);
    }
  }
  return response;
}

void SolveService::record(bool ok, bool degraded, double total_ms,
                          const sched::CacheStats& cache_delta) {
  const std::lock_guard<std::mutex> lock(mu_);
  ++request_counter_;
  ++counters_.requests;
  if (ok) {
    ++counters_.ok;
  } else {
    ++counters_.errors;
  }
  if (degraded) {
    ++counters_.degraded;
  }
  counters_.cache_hits += cache_delta.hits;
  counters_.cache_misses += cache_delta.misses;
  if (latency_ring_.size() < kLatencyWindow) {
    latency_ring_.push_back(total_ms);
  } else {
    latency_ring_[latency_next_ % kLatencyWindow] = total_ms;
  }
  ++latency_next_;
}

std::string SolveService::overloaded_line() {
  {
    const std::lock_guard<std::mutex> lock(mu_);
    ++counters_.overloaded;
  }
  if (options_.verbose) {
    std::fprintf(stderr, "fppn_serve: rejected request: queue full\n");
  }
  return "fppn-serve error: overloaded\n";
}

std::string SolveService::oversized_line(std::size_t bytes_seen) {
  {
    const std::lock_guard<std::mutex> lock(mu_);
    ++counters_.oversized;
  }
  if (options_.verbose) {
    std::fprintf(stderr, "fppn_serve: rejected request: %zu byte(s) read\n",
                 bytes_seen);
  }
  char line[128];
  std::snprintf(line, sizeof(line),
                "fppn-serve error: request too large: exceeds --max-request-bytes "
                "%zu\n",
                options_.max_request_bytes);
  return line;
}

std::string SolveService::read_error_line(int error) {
  {
    const std::lock_guard<std::mutex> lock(mu_);
    ++counters_.read_errors;
  }
  if (options_.verbose) {
    std::fprintf(stderr, "fppn_serve: request read failed: %s\n",
                 std::strerror(error));
  }
  return std::string("fppn-serve error: request read failed: ") +
         std::strerror(error) + "\n";
}

std::string SolveService::deadline_exceeded_line() {
  {
    const std::lock_guard<std::mutex> lock(mu_);
    ++counters_.shed;
  }
  if (options_.verbose) {
    std::fprintf(stderr, "fppn_serve: shed request: queue deadline exceeded\n");
  }
  return "fppn-serve error: deadline exceeded\n";
}

void SolveService::note_timeout(ServeTimeout kind) {
  const char* name = "idle";
  {
    const std::lock_guard<std::mutex> lock(mu_);
    switch (kind) {
      case ServeTimeout::kIdle:
        ++counters_.idle_timeouts;
        break;
      case ServeTimeout::kRequest:
        ++counters_.request_timeouts;
        name = "request";
        break;
      case ServeTimeout::kWrite:
        ++counters_.write_timeouts;
        name = "write";
        break;
    }
  }
  if (options_.verbose) {
    std::fprintf(stderr, "fppn_serve: closed connection: %s deadline exceeded\n",
                 name);
  }
}

ServiceStats SolveService::stats() const {
  std::vector<double> samples;
  ServiceStats snapshot;
  {
    const std::lock_guard<std::mutex> lock(mu_);
    snapshot = counters_;
    samples = latency_ring_;
  }
  snapshot.p50_ms = percentile(samples, 50.0);
  snapshot.p99_ms = percentile(std::move(samples), 99.0);
  snapshot.uptime_ms = ms_since(started_);
  return snapshot;
}

std::string SolveService::render_stats() {
  const ServiceStats s = stats();
  const double lookups =
      static_cast<double>(s.cache_hits) + static_cast<double>(s.cache_misses);
  const double hit_rate =
      lookups > 0.0 ? static_cast<double>(s.cache_hits) / lookups : 0.0;
  // The robustness counters sit between the transport rejects and the
  // cache block; the line stays one append-only token stream, so the
  // golden prefix checks (through "oversized N ") keep holding.
  char line[768];
  std::snprintf(line, sizeof(line),
                "fppn-serve stats requests %llu ok %llu errors %llu overloaded "
                "%llu read-errors %llu oversized %llu shed %llu degraded %llu "
                "idle-timeouts %llu request-timeouts %llu write-timeouts %llu "
                "cache-hits %llu cache-misses %llu hit-rate %.3f p50-ms %.3f "
                "p99-ms %.3f uptime-ms %.1f\n",
                static_cast<unsigned long long>(s.requests),
                static_cast<unsigned long long>(s.ok),
                static_cast<unsigned long long>(s.errors),
                static_cast<unsigned long long>(s.overloaded),
                static_cast<unsigned long long>(s.read_errors),
                static_cast<unsigned long long>(s.oversized),
                static_cast<unsigned long long>(s.shed),
                static_cast<unsigned long long>(s.degraded),
                static_cast<unsigned long long>(s.idle_timeouts),
                static_cast<unsigned long long>(s.request_timeouts),
                static_cast<unsigned long long>(s.write_timeouts),
                static_cast<unsigned long long>(s.cache_hits),
                static_cast<unsigned long long>(s.cache_misses), hit_rate,
                s.p50_ms, s.p99_ms, s.uptime_ms);
  return line;
}

}  // namespace engine
}  // namespace fppn
