// engine::SolveService — the protocol-and-observability layer between
// the net serving stack and engine::Engine: it renders the byte-stable
// "fppn-serve ..." wire responses (the grammar PR 8's golden tests pin),
// answers the `stats` verb, and aggregates per-request accounting —
// counts, cache hit totals and an end-to-end latency distribution
// (queue wait + solve + render) — so the daemon can report p50/p99 since
// start without ever touching search internals.
//
// Responsibilities split:
//   net::Server     owns sockets, framing, backpressure *mechanics*;
//   SolveService    owns every byte of the response grammar (including
//                   the overload/oversize/read-error lines the server's
//                   protocol hooks request) and all request accounting;
//   engine::Engine  owns solving.
//
// Counting model (documented in docs/FILE_FORMATS.md): `requests` are
// solve attempts the service answered (ok + errors). Transport rejects —
// overloaded, oversized, read-error — are counted separately and do not
// enter the latency distribution; `stats` requests are not counted at
// all. Latency percentiles are computed over a ring of the most recent
// kLatencyWindow samples.
//
// Thread safety: every member is safe to call concurrently (the solver
// pool runs handle() on N threads while the reactor thread calls the
// note_*/line hooks).
#pragma once

#include <chrono>
#include <cstddef>
#include <cstdint>
#include <mutex>
#include <optional>
#include <string>
#include <vector>

#include "engine/engine.hpp"

namespace fppn {
namespace engine {

/// The serving knobs every request shares (one service = one daemon).
struct ServiceOptions {
  std::int64_t processors = 2;
  std::uint64_t seed = 1;
  /// Per-solve search worker threads (0 = hardware concurrency).
  int search_workers = 0;
  bool optimize = false;
  /// Per-request summary lines on stderr.
  bool verbose = false;
  /// Disk cache instead of the in-memory L1 when set (the background gc
  /// thread then enforces the bounds while serving).
  std::optional<std::string> cache_dir;
  std::size_t cache_max_entries = 0;
  std::uint64_t cache_max_bytes = 0;
  /// Echoed in the oversize error line; 0 = unlimited.
  std::size_t max_request_bytes = 0;
  /// Graceful degradation: with --optimize on and the work queue at
  /// least half full at pop time, solve this request with the quick
  /// preset instead (counted in `degraded`, marked in --verbose lines) —
  /// trading per-request quality for staying under the queue deadline
  /// instead of shedding. Off by default: degradation must be opted into.
  bool degrade_under_load = false;
};

/// The load signals net::Server measured for one request (mirror of
/// net::RequestInfo, redeclared so the engine layer keeps zero net
/// dependencies — the daemon's wiring lambda copies the fields).
struct RequestLoad {
  double queue_wait_ms = 0.0;
  std::size_t queue_depth = 0;
  std::size_t queue_capacity = 0;
};

/// Which reactor deadline expired (mirror of net::Reactor::TimeoutKind).
enum class ServeTimeout {
  kIdle,
  kRequest,
  kWrite,
};

/// Snapshot of the aggregate counters (see the counting model above).
struct ServiceStats {
  std::uint64_t requests = 0;     ///< solve attempts answered (ok + errors)
  std::uint64_t ok = 0;
  std::uint64_t errors = 0;       ///< solve attempts answered with an error line
  std::uint64_t overloaded = 0;   ///< rejected: work queue full
  std::uint64_t read_errors = 0;  ///< rejected: torn request (hard read failure)
  std::uint64_t oversized = 0;    ///< rejected: --max-request-bytes exceeded
  std::uint64_t shed = 0;         ///< rejected: queue wait passed --queue-deadline-ms
  std::uint64_t degraded = 0;     ///< answered, but with the degraded quick preset
  std::uint64_t idle_timeouts = 0;     ///< closed: silent after accept
  std::uint64_t request_timeouts = 0;  ///< closed: request never completed
  std::uint64_t write_timeouts = 0;    ///< closed: response write stalled
  std::uint64_t cache_hits = 0;   ///< summed over per-solve cache deltas
  std::uint64_t cache_misses = 0;
  double p50_ms = 0.0;            ///< end-to-end latency percentiles
  double p99_ms = 0.0;            ///< (queue wait + solve + render)
  double uptime_ms = 0.0;
};

class SolveService {
 public:
  /// Latency percentile window: the most recent samples considered.
  static constexpr std::size_t kLatencyWindow = 8192;

  SolveService(Engine& engine, ServiceOptions options);

  /// Handles one request: the `stats` verb (request text "stats",
  /// surrounding whitespace ignored) or a `.fppn` network to solve.
  /// Returns the full response text; never throws (solve errors become
  /// "fppn-serve error:" responses, exactly the PR 8 grammar). The load
  /// signals drive the degrade-under-load decision and the latency
  /// accounting.
  [[nodiscard]] std::string handle(const std::string& request,
                                   const RequestLoad& load);

  /// Convenience overload for callers with only a queue wait to report.
  [[nodiscard]] std::string handle(const std::string& request, double queue_wait_ms) {
    RequestLoad load;
    load.queue_wait_ms = queue_wait_ms;
    return handle(request, load);
  }

  // --- transport-reject response lines (net::ServerProtocol hooks) ----
  // Each renders the response *and* counts the event.
  [[nodiscard]] std::string overloaded_line();
  [[nodiscard]] std::string oversized_line(std::size_t bytes_seen);
  [[nodiscard]] std::string read_error_line(int error);
  /// Queue-deadline shed response (net::ServerProtocol::deadline_exceeded).
  [[nodiscard]] std::string deadline_exceeded_line();

  /// Counts a reactor-deadline close (net::ServerProtocol::timed_out).
  /// Notification only: the peer is gone, so there is no response line.
  void note_timeout(ServeTimeout kind);

  /// The `stats` verb response (also what handle() returns for it).
  [[nodiscard]] std::string render_stats();

  [[nodiscard]] ServiceStats stats() const;

 private:
  void record(bool ok, bool degraded, double total_ms,
              const sched::CacheStats& cache_delta);

  Engine& engine_;
  const ServiceOptions options_;
  const std::chrono::steady_clock::time_point started_;

  mutable std::mutex mu_;
  ServiceStats counters_;
  std::vector<double> latency_ring_;   ///< capped at kLatencyWindow
  std::size_t latency_next_ = 0;       ///< ring write cursor
  std::uint64_t request_counter_ = 0;  ///< verbose line numbering
};

}  // namespace engine
}  // namespace fppn
