// engine::Engine — the one SolveRequest -> SolveReport pipeline every
// entry point (fppn_tool subcommands, fppn_serve, benches, the fuzz loop,
// the shard worker) goes through.
//
// solve() runs parse -> derive -> cache-attach -> search (in-process or
// sharded) -> warm-start overlay and reports structured stats instead of
// printing them. The pipeline is deterministic end to end: for a fixed
// request (and fixed cache contents when warm-start applies), the winning
// schedule is bit-identical regardless of worker threads, shard count,
// cache warmth or which entry point issued the request — the contract the
// lower layers (sched/parallel_search.hpp, sched/sharded_search.hpp)
// document, enforced here in the single place requests are translated.
//
// An Engine is long-lived: it owns the shared in-memory ScheduleCache
// (the L1 of fppn_serve — SearchConfig::memory_cache) and one
// ScheduleCache instance per configured disk directory, reused across
// solves so repeat requests hit warm in-memory state. One-shot callers
// (the tool) simply construct, solve once and discard.
//
// Thread safety: solve()/solve_shard() are safe to call concurrently on
// one Engine — cache instances are internally synchronized and per-solve
// state is local. This is what lets fppn_serve run one Engine under a
// worker pool.
#pragma once

#include <map>
#include <memory>
#include <mutex>
#include <string>

#include "engine/solve.hpp"
#include "sched/schedule_cache.hpp"
#include "sched/sharded_search.hpp"

namespace fppn {
namespace engine {

class Engine {
 public:
  Engine() = default;
  Engine(const Engine&) = delete;
  Engine& operator=(const Engine&) = delete;

  /// Runs the full pipeline for `request` and returns the structured
  /// report. Throws std::runtime_error for unreadable files / missing
  /// WCETs / bad cache or shard directories, io::ParseError for malformed
  /// network text, std::invalid_argument for bad options, and rethrows
  /// strategy exceptions — callers map these to their own exit codes.
  [[nodiscard]] SolveReport solve(const SolveRequest& request);

  /// The worker side of a sharded solve: recomputes the deterministic
  /// shard plan from the same request the orchestrator used and publishes
  /// shard `shard_index`'s results into the request's shard_dir (which is
  /// required here). The candidate matrix, the plan and the evaluation go
  /// through exactly the same translation as solve(), so orchestrator and
  /// workers can never disagree.
  void solve_shard(const SolveRequest& request, int shard_index);

  /// The shared in-memory L1 attached by SearchConfig::memory_cache.
  /// Exposed so a daemon can report cumulative cache stats.
  [[nodiscard]] sched::ScheduleCache& memory_cache() { return memory_cache_; }

  /// Runs ScheduleCache::gc() on every disk-backed cache this Engine has
  /// opened (the daemon's background gc thread: re-enforce the
  /// entry/byte bounds while serving). Caches are created lazily by
  /// solves, so this is a no-op until a cache-configured request ran.
  /// Returns the pass totals; safe to call concurrently with solve().
  sched::CacheGcStats gc_disk_caches();

 private:
  /// The cache instance `config` asks for (shared per directory+bounds,
  /// created on first use), or nullptr when caching is off. Throws
  /// std::runtime_error for an unusable cache directory.
  sched::ScheduleCache* cache_for(const SearchConfig& config);

  std::mutex mu_;
  /// Disk-backed caches keyed by "dir|max_entries|max_bytes" — one shared
  /// instance per configuration, so concurrent solves share the memory
  /// tier and the eviction bookkeeping.
  std::map<std::string, std::unique_ptr<sched::ScheduleCache>> disk_caches_;
  sched::ScheduleCache memory_cache_;
};

/// One-shot convenience: construct a private Engine, solve, discard.
/// Callers that want cross-request cache reuse hold an Engine instead.
[[nodiscard]] SolveReport solve_once(const SolveRequest& request);

/// Convenience for pre-derived graphs (benches, differential runs): wraps
/// `tg` in a request with `config` and solves it one-shot.
[[nodiscard]] SolveReport solve_graph(const TaskGraph& tg, const SearchConfig& config);

}  // namespace engine
}  // namespace fppn
