#include "testing/fault_injector.hpp"

#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstdio>

namespace fppn {
namespace testing {

namespace {

/// SplitMix64's finalizer — the same mixer gen::Rng uses, so the chaos
/// seeds live in the same well-studied stream family.
std::uint64_t mix(std::uint64_t z) noexcept {
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

constexpr std::uint64_t kGamma = 0x9e3779b97f4a7c15ULL;

/// Decorrelates the per-site streams: without a salt, site A's call n and
/// site B's call n would inject in lockstep.
std::uint64_t salt(FaultSite site) noexcept {
  return mix(0x5eedfa417ULL + static_cast<std::uint64_t>(site) * kGamma);
}

/// Capped length for an injected short read/write: at least 1 byte so
/// the caller still makes progress, at most the real length.
std::size_t short_len(std::size_t len, std::uint64_t roll) noexcept {
  const std::size_t cap = std::min<std::size_t>(len, 1024);
  return 1 + static_cast<std::size_t>(roll % cap);
}

}  // namespace

FaultConfig FaultConfig::uniform(std::uint64_t seed, std::uint16_t rate_per_1024) {
  FaultConfig config;
  config.seed = seed;
  config.rate_per_1024.fill(rate_per_1024);
  return config;
}

FaultInjector& FaultInjector::instance() {
  static FaultInjector injector;
  return injector;
}

void FaultInjector::arm(const FaultConfig& config) {
  config_ = config;
  for (std::size_t i = 0; i < kFaultSiteCount; ++i) {
    calls_[i].store(0, std::memory_order_relaxed);
    injected_[i].store(0, std::memory_order_relaxed);
  }
  armed_.store(true, std::memory_order_release);
}

void FaultInjector::disarm() { armed_.store(false, std::memory_order_release); }

FaultDecision FaultInjector::decide(FaultSite site) noexcept {
  FaultDecision decision;
  if (!armed()) {
    return decision;
  }
  const auto s = static_cast<std::size_t>(site);
  const std::uint64_t n = calls_[s].fetch_add(1, std::memory_order_relaxed);
  const std::uint64_t bits = mix(config_.seed ^ (salt(site) + (n + 1) * kGamma));
  decision.fire = (bits & 1023u) < config_.rate_per_1024[s];
  decision.roll = bits >> 10;
  if (decision.fire) {
    injected_[s].fetch_add(1, std::memory_order_relaxed);
  }
  return decision;
}

std::uint64_t FaultInjector::calls(FaultSite site) const noexcept {
  return calls_[static_cast<std::size_t>(site)].load(std::memory_order_relaxed);
}

std::uint64_t FaultInjector::injected(FaultSite site) const noexcept {
  return injected_[static_cast<std::size_t>(site)].load(std::memory_order_relaxed);
}

std::uint64_t FaultInjector::injected_total() const noexcept {
  std::uint64_t total = 0;
  for (std::size_t i = 0; i < kFaultSiteCount; ++i) {
    total += injected_[i].load(std::memory_order_relaxed);
  }
  return total;
}

namespace fault {

int accept(int fd) {
  FaultInjector& fi = FaultInjector::instance();
  if (fi.armed() && fi.decide(FaultSite::kAccept).fire) {
    errno = EINTR;
    return -1;
  }
  return ::accept(fd, nullptr, nullptr);
}

ssize_t read(int fd, void* buf, std::size_t len) {
  FaultInjector& fi = FaultInjector::instance();
  if (fi.armed() && len > 0) {
    const FaultDecision d = fi.decide(FaultSite::kRead);
    if (d.fire) {
      switch (d.roll % 4) {
        case 0:
          errno = EINTR;
          return -1;
        case 1:
          errno = EAGAIN;
          return -1;
        case 2:
          errno = ECONNRESET;
          return -1;
        default:
          return ::read(fd, buf, short_len(len, d.roll / 4));
      }
    }
  }
  return ::read(fd, buf, len);
}

ssize_t write(int fd, const void* buf, std::size_t len) {
  FaultInjector& fi = FaultInjector::instance();
  if (fi.armed() && len > 0) {
    const FaultDecision d = fi.decide(FaultSite::kWrite);
    if (d.fire) {
      switch (d.roll % 4) {
        case 0:
          errno = EINTR;
          return -1;
        case 1:
          errno = EAGAIN;
          return -1;
        case 2:
          errno = ECONNRESET;
          return -1;
        default:
          return ::write(fd, buf, short_len(len, d.roll / 4));
      }
    }
  }
  return ::write(fd, buf, len);
}

int poll(struct pollfd* fds, nfds_t nfds, int timeout_ms) {
  FaultInjector& fi = FaultInjector::instance();
  if (fi.armed() && fi.decide(FaultSite::kPoll).fire) {
    errno = EINTR;
    return -1;
  }
  return ::poll(fds, nfds, timeout_ms);
}

ssize_t file_write(int fd, const void* buf, std::size_t len) {
  FaultInjector& fi = FaultInjector::instance();
  if (fi.armed() && len > 0) {
    const FaultDecision d = fi.decide(FaultSite::kFileWrite);
    if (d.fire) {
      switch (d.roll % 3) {
        case 0:
          errno = EINTR;
          return -1;
        case 1:
          errno = EIO;
          return -1;
        default:
          return ::write(fd, buf, short_len(len, d.roll / 3));
      }
    }
  }
  return ::write(fd, buf, len);
}

int fsync(int fd) {
  FaultInjector& fi = FaultInjector::instance();
  if (fi.armed() && fi.decide(FaultSite::kFsync).fire) {
    errno = EIO;
    return -1;
  }
  return ::fsync(fd);
}

int rename(const char* from, const char* to) {
  FaultInjector& fi = FaultInjector::instance();
  if (fi.armed() && fi.decide(FaultSite::kRename).fire) {
    errno = EIO;
    return -1;
  }
  return ::rename(from, to);
}

int unlink(const char* path) {
  FaultInjector& fi = FaultInjector::instance();
  if (fi.armed() && fi.decide(FaultSite::kUnlink).fire) {
    errno = EIO;
    return -1;
  }
  return ::unlink(path);
}

}  // namespace fault

}  // namespace testing
}  // namespace fppn
