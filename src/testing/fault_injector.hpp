// testing::FaultInjector — a deterministic, seeded, compiled-in fault
// layer for the serving and persistence syscall paths. Off by default:
// every wrapper below is a direct syscall until arm() flips one relaxed
// atomic, so the production fast path costs a single load.
//
// Determinism contract (the same one src/gen's scenario generator makes):
// the decision for the n-th interception at a site is the *pure function*
//
//   mix(seed ^ salt(site) + (n+1) * GAMMA)        (SplitMix64's finalizer)
//
// of (seed, site, n) alone — per-site call counters are the only shared
// state, so two chaos runs with the same seed inject the same fault at
// the same per-site call index regardless of how threads interleave
// *across* sites. That is what makes a chaos failure replayable: re-arm
// with the printed seed and the same traffic, and the same read is torn,
// the same rename fails.
//
// What each site can inject (picked by the decision's roll bits):
//   kAccept    EINTR
//   kRead      EINTR, EAGAIN, ECONNRESET, short read (capped length)
//   kWrite     EINTR, EAGAIN, ECONNRESET, short write (capped length)
//   kPoll      EINTR
//   kFileWrite EINTR, EIO, short write
//   kFsync     EIO
//   kRename    EIO (the rename is not performed)
//   kUnlink    EIO (the unlink is not performed)
//
// arm()/disarm() must not race traffic through the wrappers with a
// *config* change — the chaos suites arm, drive traffic, join, disarm.
// The wrappers themselves are thread-safe.
#pragma once

#include <poll.h>
#include <sys/types.h>

#include <array>
#include <atomic>
#include <cstddef>
#include <cstdint>

namespace fppn {
namespace testing {

/// Interception points, one per wrapped syscall family.
enum class FaultSite : int {
  kAccept = 0,
  kRead,
  kWrite,
  kPoll,
  kFileWrite,
  kFsync,
  kRename,
  kUnlink,
};
constexpr std::size_t kFaultSiteCount = 8;

/// Per-site fault probability in 1/1024 units (0 = never, 1024 = always).
struct FaultConfig {
  std::uint64_t seed = 0;
  std::array<std::uint16_t, kFaultSiteCount> rate_per_1024{};

  /// Same rate at every site — the daemon's --fault-rate shorthand.
  static FaultConfig uniform(std::uint64_t seed, std::uint16_t rate_per_1024);
};

/// One interception decision: whether to inject, plus the extra random
/// bits that pick the fault flavor (and the short-I/O length).
struct FaultDecision {
  bool fire = false;
  std::uint64_t roll = 0;
};

class FaultInjector {
 public:
  /// The process-wide injector every wrapper consults.
  static FaultInjector& instance();

  /// Arms with `config`, resetting every per-site counter. Must not race
  /// in-flight wrapper calls with a different config.
  void arm(const FaultConfig& config);

  /// Back to passthrough (counters keep their final values for asserts).
  void disarm();

  [[nodiscard]] bool armed() const noexcept {
    return armed_.load(std::memory_order_relaxed);
  }

  /// The pure-function decision for this site's next call (bumps the
  /// site's call counter). Passthrough (fire = false) when disarmed.
  FaultDecision decide(FaultSite site) noexcept;

  /// Interceptions at `site` since arm().
  [[nodiscard]] std::uint64_t calls(FaultSite site) const noexcept;

  /// Faults injected at `site` since arm().
  [[nodiscard]] std::uint64_t injected(FaultSite site) const noexcept;

  /// Faults injected across all sites since arm().
  [[nodiscard]] std::uint64_t injected_total() const noexcept;

  [[nodiscard]] std::uint64_t seed() const noexcept { return config_.seed; }

 private:
  FaultInjector() = default;

  std::atomic<bool> armed_{false};
  FaultConfig config_;
  std::array<std::atomic<std::uint64_t>, kFaultSiteCount> calls_{};
  std::array<std::atomic<std::uint64_t>, kFaultSiteCount> injected_{};
};

// Syscall wrappers, used by src/net and src/io at their fault sites.
// Identical semantics to the raw syscall when the injector is disarmed.
namespace fault {

int accept(int fd);
ssize_t read(int fd, void* buf, std::size_t len);
ssize_t write(int fd, const void* buf, std::size_t len);
int poll(struct pollfd* fds, nfds_t nfds, int timeout_ms);
ssize_t file_write(int fd, const void* buf, std::size_t len);
int fsync(int fd);
int rename(const char* from, const char* to);
int unlink(const char* path);

}  // namespace fault

}  // namespace testing
}  // namespace fppn
