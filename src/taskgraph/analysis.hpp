// Task-graph timing analysis (§III-B): ASAP start times, ALAP completion
// times, the precedence-aware load metric and the necessary schedulability
// condition of Prop. 3.1.
//
//   A'_i = max(A_i, max_{j in Pred(i)} A'_j + C_j)
//   D'_i = min(D_i, min_{j in Succ(i)} D'_j - C_j)
//
//   Load(TG) = max_{0 <= t1 < t2} (sum of C_i over jobs fully inside
//              [t1, t2], i.e. t1 <= A'_i and D'_i <= t2) / (t2 - t1)
//
// Prop. 3.1: TG schedulable on M processors only if every job fits its
// [A'_i, D'_i] window (A'_i + C_i <= D'_i) and ceil(Load(TG)) <= M.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "taskgraph/task_graph.hpp"

namespace fppn {

/// ASAP start time A'_i for every job (indexed by JobId). Throws on cycles.
[[nodiscard]] std::vector<Time> asap_times(const TaskGraph& tg);

/// ALAP completion time D'_i for every job. Throws on cycles.
[[nodiscard]] std::vector<Time> alap_times(const TaskGraph& tg);

/// The load metric, plus the witness window achieving it.
struct LoadResult {
  Rational load;       ///< max window density (0 for an empty graph)
  Time window_start;   ///< t1 of the maximizing window
  Time window_end;     ///< t2 of the maximizing window
  Duration window_work;///< sum of C_i inside the window

  [[nodiscard]] double load_value() const { return load.to_double(); }
  /// ceil(Load) — minimum processor count implied by Prop. 3.1.
  [[nodiscard]] std::int64_t min_processors() const { return load.ceil(); }
};

/// Computes Load(TG). O(n^2 log n) over the distinct A'/D' candidates.
[[nodiscard]] LoadResult task_graph_load(const TaskGraph& tg);

/// Same but with caller-supplied ASAP/ALAP vectors (avoids recomputation).
[[nodiscard]] LoadResult task_graph_load(const TaskGraph& tg,
                                         const std::vector<Time>& asap,
                                         const std::vector<Time>& alap);

/// Prop. 3.1 verdict.
struct NecessaryCondition {
  bool window_fit = true;     ///< all A'_i + C_i <= D'_i
  std::optional<JobId> first_unfit_job;
  LoadResult load;
  std::int64_t processors_checked = 0;
  bool load_fits = true;      ///< ceil(load) <= M

  [[nodiscard]] bool holds() const { return window_fit && load_fits; }
  [[nodiscard]] std::string to_string(const TaskGraph& tg) const;
};

/// Evaluates the necessary schedulability condition for M processors.
[[nodiscard]] NecessaryCondition check_necessary_condition(const TaskGraph& tg,
                                                           std::int64_t processors);

/// Critical-path length: the longest chain of WCETs through the graph
/// honoring arrivals; a lower bound on the makespan on any processor count.
[[nodiscard]] Duration critical_path_length(const TaskGraph& tg);

}  // namespace fppn
