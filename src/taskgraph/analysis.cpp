#include "taskgraph/analysis.hpp"

#include <algorithm>
#include <set>
#include <sstream>
#include <stdexcept>

#include "graph/algorithms.hpp"

namespace fppn {

std::vector<Time> asap_times(const TaskGraph& tg) {
  const auto order = topological_sort(tg.precedence());
  if (!order.has_value()) {
    throw std::invalid_argument("asap_times: task graph is cyclic");
  }
  std::vector<Time> asap(tg.job_count());
  for (const NodeId n : *order) {
    const JobId i{n.value()};
    Time t = tg.job(i).arrival;
    for (const JobId j : tg.predecessors(i)) {
      t = std::max(t, asap[j.value()] + tg.job(j).wcet);
    }
    asap[i.value()] = t;
  }
  return asap;
}

std::vector<Time> alap_times(const TaskGraph& tg) {
  const auto order = topological_sort(tg.precedence());
  if (!order.has_value()) {
    throw std::invalid_argument("alap_times: task graph is cyclic");
  }
  std::vector<Time> alap(tg.job_count());
  for (auto it = order->rbegin(); it != order->rend(); ++it) {
    const JobId i{it->value()};
    Time t = tg.job(i).deadline;
    for (const JobId j : tg.successors(i)) {
      t = std::min(t, alap[j.value()] - tg.job(j).wcet);
    }
    alap[i.value()] = t;
  }
  return alap;
}

LoadResult task_graph_load(const TaskGraph& tg) {
  return task_graph_load(tg, asap_times(tg), alap_times(tg));
}

LoadResult task_graph_load(const TaskGraph& tg, const std::vector<Time>& asap,
                           const std::vector<Time>& alap) {
  LoadResult result;
  result.load = Rational(0);
  const std::size_t n = tg.job_count();
  if (n == 0) {
    return result;
  }
  // Candidate t1: distinct A' values; candidate t2: distinct D' values.
  // For each t1, sort eligible jobs by D' and sweep t2 upward accumulating
  // work; density sum/(t2-t1) is evaluated at each distinct t2.
  std::set<Time> starts(asap.begin(), asap.end());
  struct ByAlap {
    Time alap;
    Duration wcet;
  };
  for (const Time& t1 : starts) {
    std::vector<ByAlap> eligible;
    eligible.reserve(n);
    for (std::size_t i = 0; i < n; ++i) {
      if (asap[i] >= t1) {
        eligible.push_back(ByAlap{alap[i], tg.job(JobId{i}).wcet});
      }
    }
    std::sort(eligible.begin(), eligible.end(),
              [](const ByAlap& a, const ByAlap& b) { return a.alap < b.alap; });
    Duration work;
    for (std::size_t i = 0; i < eligible.size(); ++i) {
      work += eligible[i].wcet;
      // Only evaluate at the last job sharing this D' (the full window).
      if (i + 1 < eligible.size() && eligible[i + 1].alap == eligible[i].alap) {
        continue;
      }
      const Time t2 = eligible[i].alap;
      if (t2 <= t1) {
        continue;
      }
      const Rational density = work.value() / (t2 - t1).value();
      if (density > result.load) {
        result.load = density;
        result.window_start = t1;
        result.window_end = t2;
        result.window_work = work;
      }
    }
  }
  return result;
}

NecessaryCondition check_necessary_condition(const TaskGraph& tg,
                                             std::int64_t processors) {
  NecessaryCondition nc;
  nc.processors_checked = processors;
  const auto asap = asap_times(tg);
  const auto alap = alap_times(tg);
  for (std::size_t i = 0; i < tg.job_count(); ++i) {
    if (asap[i] + tg.job(JobId{i}).wcet > alap[i]) {
      nc.window_fit = false;
      nc.first_unfit_job = JobId{i};
      break;
    }
  }
  nc.load = task_graph_load(tg, asap, alap);
  nc.load_fits = nc.load.min_processors() <= processors;
  return nc;
}

std::string NecessaryCondition::to_string(const TaskGraph& tg) const {
  std::ostringstream os;
  os << "necessary condition on M=" << processors_checked << ": "
     << (holds() ? "HOLDS" : "VIOLATED");
  if (!window_fit && first_unfit_job.has_value()) {
    os << "; job " << tg.job(*first_unfit_job).name << " cannot fit its ASAP/ALAP window";
  }
  os << "; load=" << load.load.to_string() << " (~" << load.load_value() << ")"
     << " over window [" << load.window_start << ", " << load.window_end << ")"
     << " => needs >= " << load.min_processors() << " processor(s)";
  return os.str();
}

Duration critical_path_length(const TaskGraph& tg) {
  const auto asap = asap_times(tg);
  Duration longest;
  for (std::size_t i = 0; i < tg.job_count(); ++i) {
    const Time finish = asap[i] + tg.job(JobId{i}).wcet;
    longest = std::max(longest, finish - Time());
  }
  return longest;
}

}  // namespace fppn
