// The task graph TG(J, E) of Def. 3.1: a DAG of jobs with arrival times,
// absolute deadlines, WCETs and precedence edges.
//
// Jobs are stored in the total order <J produced by the hyperperiod
// simulation (derivation.hpp), so JobId order == <J order for derived
// graphs. Synthetic graphs (tests, heuristic benchmarks) can be assembled
// directly through add_job/add_edge.
#pragma once

#include <cstdint>
#include <functional>
#include <optional>
#include <string>
#include <vector>

#include "graph/digraph.hpp"
#include "rt/ids.hpp"
#include "rt/time.hpp"

namespace fppn {

/// One job J_i = (p_i, k_i, A_i, D_i, C_i) (Def. 3.1). `is_server` marks
/// jobs that stand for sporadic invocations via the periodic-server
/// construction (§III-A); `subset` is the 1-based index of the server
/// subset (jobs arriving at the same user-period boundary), 0 otherwise.
struct Job {
  ProcessId process;        ///< process in the *original* network
  std::int64_t k = 1;       ///< invocation count within the frame (1-based)
  Time arrival;             ///< A_i
  Time deadline;            ///< D_i (absolute, possibly truncated to H)
  Duration wcet;            ///< C_i
  bool is_server = false;
  std::int64_t subset = 0;
  std::string name;         ///< "CoefB[1]" style display name
};

class TaskGraph {
 public:
  TaskGraph() = default;
  explicit TaskGraph(Duration hyperperiod) : hyperperiod_(hyperperiod) {}

  JobId add_job(Job job);

  /// Adds a precedence edge; parallel edges are ignored. Throws on
  /// self-loops or out-of-range ids.
  bool add_edge(JobId from, JobId to);
  bool remove_edge(JobId from, JobId to);
  [[nodiscard]] bool has_edge(JobId from, JobId to) const;

  [[nodiscard]] std::size_t job_count() const noexcept { return jobs_.size(); }
  [[nodiscard]] std::size_t edge_count() const noexcept { return prec_.edge_count(); }

  [[nodiscard]] const Job& job(JobId id) const;
  [[nodiscard]] Job& job(JobId id);
  [[nodiscard]] const std::vector<Job>& jobs() const noexcept { return jobs_; }

  /// Pred(i) and Succ(i) of §III-B. Returned by reference into adjacency
  /// mirrors kept in sync with the precedence digraph — no per-call
  /// allocation (the schedule-evaluation hot path iterates these for every
  /// candidate). The reference is invalidated by any mutation of the graph.
  [[nodiscard]] const std::vector<JobId>& predecessors(JobId id) const;
  [[nodiscard]] const std::vector<JobId>& successors(JobId id) const;

  [[nodiscard]] const Digraph& precedence() const noexcept { return prec_; }

  /// Frame period H; zero when not set (synthetic graphs).
  [[nodiscard]] const Duration& hyperperiod() const noexcept { return hyperperiod_; }
  void set_hyperperiod(Duration h) { hyperperiod_ = h; }

  [[nodiscard]] bool is_acyclic() const;

  /// Removes redundant precedence edges (derivation step 5). Returns the
  /// number removed. Requires acyclicity.
  std::size_t transitive_reduce();

  /// Find a job by display name, e.g. "FilterA[2]".
  [[nodiscard]] std::optional<JobId> find(const std::string& name) const;

  /// Jobs of one process, in k order.
  [[nodiscard]] std::vector<JobId> jobs_of(ProcessId p) const;

  /// Total WCET of all jobs.
  [[nodiscard]] Duration total_work() const;

  /// DOT rendering with "(A, D, C)" labels, Fig. 3 style.
  [[nodiscard]] std::string to_dot() const;

  /// Compact text table: one row per job with arrival/deadline/WCET and
  /// successor lists — the textual equivalent of Fig. 3.
  [[nodiscard]] std::string to_table() const;

 private:
  void check_job(JobId id) const;
  void rebuild_adjacency();

  std::vector<Job> jobs_;
  Digraph prec_;
  // JobId-typed mirrors of prec_'s adjacency, same deterministic order
  // (insertion order per endpoint), so predecessors()/successors() can
  // return references instead of allocating copies.
  std::vector<std::vector<JobId>> preds_;
  std::vector<std::vector<JobId>> succs_;
  Duration hyperperiod_;
};

}  // namespace fppn
