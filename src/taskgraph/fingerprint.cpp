#include "taskgraph/fingerprint.hpp"

#include <stdexcept>

namespace fppn {

namespace {

constexpr std::uint64_t kFnvOffset = 14695981039346656037ULL;
constexpr std::uint64_t kFnvPrime = 1099511628211ULL;

/// Incremental FNV-1a over explicit field encodings. Every field is fed
/// byte-wise, so the digest has no padding/endianness ambiguity.
class Fnv64 {
 public:
  Fnv64& u64(std::uint64_t v) {
    for (int b = 0; b < 8; ++b) {
      byte(static_cast<unsigned char>(v >> (8 * b)));
    }
    return *this;
  }
  Fnv64& i64(std::int64_t v) { return u64(static_cast<std::uint64_t>(v)); }
  Fnv64& rational(const Rational& r) { return i64(r.num()).i64(r.den()); }
  Fnv64& str(const std::string& s) {
    u64(s.size());  // length prefix: "ab" + "c" never collides with "a" + "bc"
    for (const char c : s) {
      byte(static_cast<unsigned char>(c));
    }
    return *this;
  }
  [[nodiscard]] std::uint64_t value() const noexcept { return hash_; }

 private:
  void byte(unsigned char b) {
    hash_ ^= b;
    hash_ *= kFnvPrime;
  }
  std::uint64_t hash_ = kFnvOffset;
};

/// Finalizing scramble (splitmix64) applied to per-item digests before the
/// commutative sum, so near-identical items don't cancel structurally.
std::uint64_t scramble(std::uint64_t x) {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

}  // namespace

std::uint64_t fingerprint(const TaskGraph& tg) {
  // Jobs: digest every observable field, index included; combine with a
  // wrapping sum so the combination is commutative (construction-order
  // independent) while each addend is position-sensitive.
  std::uint64_t job_sum = 0;
  for (std::size_t i = 0; i < tg.job_count(); ++i) {
    const Job& j = tg.job(JobId(i));
    Fnv64 h;
    h.u64(i)
        .u64(j.process.is_valid() ? j.process.value() : ~0ULL)
        .i64(j.k)
        .rational(j.arrival.value())
        .rational(j.deadline.value())
        .rational(j.wcet.value())
        .u64(j.is_server ? 1 : 0)
        .i64(j.subset)
        .str(j.name);
    job_sum += scramble(h.value());
  }

  // Edges: (from, to) pairs, combined commutatively for the same reason.
  std::uint64_t edge_sum = 0;
  for (const auto& [from, to] : tg.precedence().edges()) {
    edge_sum += scramble(Fnv64().u64(from.value()).u64(to.value()).value());
  }

  Fnv64 h;
  h.u64(tg.job_count())
      .u64(tg.edge_count())
      .rational(tg.hyperperiod().value())
      .u64(job_sum)
      .u64(edge_sum);
  return h.value();
}

std::string fingerprint_hex(std::uint64_t fp) {
  static const char* digits = "0123456789abcdef";
  std::string out(16, '0');
  for (int i = 15; i >= 0; --i) {
    out[static_cast<std::size_t>(i)] = digits[fp & 0xF];
    fp >>= 4;
  }
  return out;
}

std::uint64_t parse_fingerprint_hex(const std::string& text) {
  if (text.size() != 16) {
    throw std::invalid_argument("fingerprint: expected 16 hex digits, got '" + text +
                                "'");
  }
  std::uint64_t fp = 0;
  for (const char c : text) {
    fp <<= 4;
    if (c >= '0' && c <= '9') {
      fp |= static_cast<std::uint64_t>(c - '0');
    } else if (c >= 'a' && c <= 'f') {
      fp |= static_cast<std::uint64_t>(c - 'a' + 10);
    } else {
      throw std::invalid_argument("fingerprint: invalid hex digit in '" + text + "'");
    }
  }
  return fp;
}

}  // namespace fppn
