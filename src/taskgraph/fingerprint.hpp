// Canonical 64-bit content fingerprint of a task graph — the identity key
// of the schedule cache (sched/schedule_cache.hpp).
//
// The fingerprint covers everything a scheduling strategy can observe:
// every job's position, process, invocation index, arrival, deadline,
// WCET, server flags and display name; every precedence edge; the
// hyperperiod; and the job/edge counts. Two graphs that schedule
// identically under every strategy hash equal; changing any observable
// field changes the hash (collision-tested in fingerprint_test.cpp).
//
// The hash is order-independent in the *construction* sense: per-job and
// per-edge digests are combined commutatively, so the same graph built by
// adding edges in a different order fingerprints identically. Job indices
// (JobId values) ARE part of each job digest — permuting jobs produces a
// different graph (schedules address jobs by index) and a different
// fingerprint.
//
// Deterministic: a pure function of the graph contents; stable across
// runs, processes and platforms (no pointer or locale dependence).
// Thread safety: safe to call concurrently on the same graph (read-only).
#pragma once

#include <cstdint>
#include <string>

#include "taskgraph/task_graph.hpp"

namespace fppn {

/// FNV-1a-style 64-bit digest of `tg`; see the header comment for the
/// exact coverage. Never throws.
[[nodiscard]] std::uint64_t fingerprint(const TaskGraph& tg);

/// Fixed-width lowercase hex rendering ("00ff03...", 16 chars) — the
/// spelling used in cache file names and cache entry headers.
[[nodiscard]] std::string fingerprint_hex(std::uint64_t fp);

/// Inverse of fingerprint_hex. Throws std::invalid_argument unless `text`
/// is exactly 16 lowercase hex digits.
[[nodiscard]] std::uint64_t parse_fingerprint_hex(const std::string& text);

}  // namespace fppn
