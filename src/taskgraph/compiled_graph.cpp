#include "taskgraph/compiled_graph.hpp"

#include <algorithm>
#include <limits>
#include <numeric>
#include <optional>

namespace fppn {

namespace {

constexpr std::int64_t kMax = std::numeric_limits<std::int64_t>::max();

/// lcm(l, den) with overflow detection; returns false when it no longer
/// fits in int64.
bool lcm_into(std::int64_t& l, std::int64_t den) {
  const std::int64_t g = std::gcd(l, den);
  const std::int64_t reduced = l / g;
  if (reduced > kMax / den) {
    return false;
  }
  l = reduced * den;
  return true;
}

/// value.num() * (l / value.den()), or nullopt on overflow. Exact: den
/// divides l by construction.
std::optional<std::int64_t> to_ticks(const Rational& value, std::int64_t l) {
  const std::int64_t scale = l / value.den();
  const __int128 wide = static_cast<__int128>(value.num()) * scale;
  if (wide > kMax || wide < -static_cast<__int128>(kMax) - 1) {
    return std::nullopt;
  }
  return static_cast<std::int64_t>(wide);
}

}  // namespace

CompiledTaskGraph CompiledTaskGraph::compile(const TaskGraph& tg) {
  CompiledTaskGraph out;
  const std::size_t n = tg.job_count();
  out.n_ = n;

  out.arrival_.reserve(n);
  out.deadline_.reserve(n);
  out.wcet_.reserve(n);
  out.process_id_.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    const Job& j = tg.job(JobId(i));
    out.arrival_.push_back(j.arrival);
    out.deadline_.push_back(j.deadline);
    out.wcet_.push_back(j.wcet);
    out.process_id_.push_back(j.process.value());
  }

  // CSR adjacency, in the task graph's deterministic per-job edge order.
  out.pred_offsets_.assign(n + 1, 0);
  out.succ_offsets_.assign(n + 1, 0);
  for (std::size_t i = 0; i < n; ++i) {
    out.pred_offsets_[i + 1] =
        out.pred_offsets_[i] +
        static_cast<std::uint32_t>(tg.predecessors(JobId(i)).size());
    out.succ_offsets_[i + 1] =
        out.succ_offsets_[i] +
        static_cast<std::uint32_t>(tg.successors(JobId(i)).size());
  }
  out.pred_ids_.reserve(out.pred_offsets_[n]);
  out.succ_ids_.reserve(out.succ_offsets_[n]);
  for (std::size_t i = 0; i < n; ++i) {
    for (const JobId p : tg.predecessors(JobId(i))) {
      out.pred_ids_.push_back(static_cast<std::uint32_t>(p.value()));
    }
    for (const JobId s : tg.successors(JobId(i))) {
      out.succ_ids_.push_back(static_cast<std::uint32_t>(s.value()));
    }
  }

  for (std::size_t i = 0; i < n; ++i) {
    if (out.pred_offsets_[i + 1] == out.pred_offsets_[i]) {
      out.sources_by_arrival_.push_back(static_cast<std::uint32_t>(i));
    }
  }
  std::sort(out.sources_by_arrival_.begin(), out.sources_by_arrival_.end(),
            [&](std::uint32_t a, std::uint32_t b) {
              if (out.arrival_[a] != out.arrival_[b]) {
                return out.arrival_[a] < out.arrival_[b];
              }
              return a < b;
            });

  // Tick timebase: common denominator of every rational in the graph,
  // with checked arithmetic throughout. Any overflow — in the lcm, in a
  // scaled value, or in the worst-case simulated makespan
  // (max arrival + total WCET) — disables ticks and leaves the exact
  // Rational arrays as the evaluator's timebase.
  std::int64_t l = 1;
  bool ok = true;
  for (std::size_t i = 0; i < n && ok; ++i) {
    ok = lcm_into(l, out.arrival_[i].value().den()) &&
         lcm_into(l, out.deadline_[i].value().den()) &&
         lcm_into(l, out.wcet_[i].value().den());
  }
  if (ok) {
    out.arrival_tick_.reserve(n);
    out.deadline_tick_.reserve(n);
    out.wcet_tick_.reserve(n);
    __int128 total_wcet = 0;
    __int128 max_arrival = 0;
    for (std::size_t i = 0; i < n && ok; ++i) {
      const auto a = to_ticks(out.arrival_[i].value(), l);
      const auto d = to_ticks(out.deadline_[i].value(), l);
      const auto c = to_ticks(out.wcet_[i].value(), l);
      if (!a || !d || !c) {
        ok = false;
        break;
      }
      out.arrival_tick_.push_back(*a);
      out.deadline_tick_.push_back(*d);
      out.wcet_tick_.push_back(*c);
      total_wcet += *c;
      max_arrival = std::max<__int128>(max_arrival, *a);
    }
    ok = ok && max_arrival + total_wcet <= kMax;
  }
  if (ok) {
    out.has_ticks_ = true;
    out.ticks_per_ms_ = l;
  } else {
    out.arrival_tick_.clear();
    out.deadline_tick_.clear();
    out.wcet_tick_.clear();
  }
  return out;
}

Time CompiledTaskGraph::time_from_ticks(std::int64_t ticks) const {
  return Time(Rational(ticks, ticks_per_ms_));
}

std::optional<std::int64_t> CompiledTaskGraph::ticks_from_time(const Time& t) const {
  const Rational& r = t.value();
  if (ticks_per_ms_ % r.den() != 0) {
    return std::nullopt;
  }
  return to_ticks(r, ticks_per_ms_);
}

}  // namespace fppn
