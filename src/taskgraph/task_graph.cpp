#include "taskgraph/task_graph.hpp"

#include <algorithm>
#include <sstream>
#include <stdexcept>

#include "graph/algorithms.hpp"

namespace fppn {

JobId TaskGraph::add_job(Job job) {
  if (job.wcet.is_negative()) {
    throw std::invalid_argument("job '" + job.name + "': negative WCET");
  }
  if (job.deadline < job.arrival) {
    throw std::invalid_argument("job '" + job.name + "': deadline before arrival");
  }
  jobs_.push_back(std::move(job));
  prec_.add_node();
  preds_.emplace_back();
  succs_.emplace_back();
  return JobId(jobs_.size() - 1);
}

bool TaskGraph::add_edge(JobId from, JobId to) {
  if (!prec_.add_edge(NodeId(from.value()), NodeId(to.value()))) {
    return false;
  }
  succs_[from.value()].push_back(to);
  preds_[to.value()].push_back(from);
  return true;
}

bool TaskGraph::remove_edge(JobId from, JobId to) {
  if (!prec_.remove_edge(NodeId(from.value()), NodeId(to.value()))) {
    return false;
  }
  auto& out = succs_[from.value()];
  out.erase(std::find(out.begin(), out.end(), to));
  auto& in = preds_[to.value()];
  in.erase(std::find(in.begin(), in.end(), from));
  return true;
}

bool TaskGraph::has_edge(JobId from, JobId to) const {
  return prec_.has_edge(NodeId(from.value()), NodeId(to.value()));
}

const Job& TaskGraph::job(JobId id) const {
  if (!id.is_valid() || id.value() >= jobs_.size()) {
    throw std::invalid_argument("task graph: job id out of range");
  }
  return jobs_[id.value()];
}

Job& TaskGraph::job(JobId id) {
  if (!id.is_valid() || id.value() >= jobs_.size()) {
    throw std::invalid_argument("task graph: job id out of range");
  }
  return jobs_[id.value()];
}

void TaskGraph::check_job(JobId id) const {
  if (!id.is_valid() || id.value() >= jobs_.size()) {
    throw std::invalid_argument("task graph: job id out of range");
  }
}

const std::vector<JobId>& TaskGraph::predecessors(JobId id) const {
  check_job(id);
  return preds_[id.value()];
}

const std::vector<JobId>& TaskGraph::successors(JobId id) const {
  check_job(id);
  return succs_[id.value()];
}

void TaskGraph::rebuild_adjacency() {
  for (std::size_t i = 0; i < jobs_.size(); ++i) {
    preds_[i].clear();
    succs_[i].clear();
    for (const NodeId n : prec_.predecessors(NodeId(i))) {
      preds_[i].emplace_back(n.value());
    }
    for (const NodeId n : prec_.successors(NodeId(i))) {
      succs_[i].emplace_back(n.value());
    }
  }
}

bool TaskGraph::is_acyclic() const { return fppn::is_acyclic(prec_); }

std::size_t TaskGraph::transitive_reduce() {
  const std::size_t removed = transitive_reduction(prec_);
  if (removed > 0) {
    rebuild_adjacency();
  }
  return removed;
}

std::optional<JobId> TaskGraph::find(const std::string& name) const {
  for (std::size_t i = 0; i < jobs_.size(); ++i) {
    if (jobs_[i].name == name) {
      return JobId(i);
    }
  }
  return std::nullopt;
}

std::vector<JobId> TaskGraph::jobs_of(ProcessId p) const {
  std::vector<JobId> out;
  for (std::size_t i = 0; i < jobs_.size(); ++i) {
    if (jobs_[i].process == p) {
      out.emplace_back(i);
    }
  }
  return out;
}

Duration TaskGraph::total_work() const {
  Duration total;
  for (const Job& j : jobs_) {
    total += j.wcet;
  }
  return total;
}

std::string TaskGraph::to_dot() const {
  const auto label = [this](NodeId n) {
    const Job& j = jobs_[n.value()];
    return j.name + "\\n(" + j.arrival.to_string() + "," + j.deadline.to_string() +
           "," + j.wcet.to_string() + ")";
  };
  return fppn::to_dot(prec_, label, "taskgraph");
}

std::string TaskGraph::to_table() const {
  std::ostringstream os;
  os << "job                A      D      C    successors\n";
  for (std::size_t i = 0; i < jobs_.size(); ++i) {
    const Job& j = jobs_[i];
    os << j.name;
    for (std::size_t pad = j.name.size(); pad < 18; ++pad) {
      os << ' ';
    }
    std::string a = j.arrival.to_string();
    std::string d = j.deadline.to_string();
    std::string c = j.wcet.to_string();
    os << a << std::string(a.size() < 7 ? 7 - a.size() : 1, ' ') << d
       << std::string(d.size() < 7 ? 7 - d.size() : 1, ' ') << c
       << std::string(c.size() < 5 ? 5 - c.size() : 1, ' ');
    bool first = true;
    for (const JobId s : successors(JobId(i))) {
      os << (first ? "" : ", ") << jobs_[s.value()].name;
      first = false;
    }
    os << "\n";
  }
  return os.str();
}

}  // namespace fppn
