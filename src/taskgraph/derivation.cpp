#include "taskgraph/derivation.hpp"

#include <algorithm>
#include <optional>
#include <stdexcept>

#include "fppn/semantics.hpp"
#include "graph/algorithms.hpp"

namespace fppn {
namespace {

/// Per-process data of the imaginary network PN' (derivation step 1):
/// every process periodic, sporadics replaced by their servers.
struct PrimeProcess {
  int burst = 1;
  Duration period;              // T in PN'
  Duration relative_deadline;   // d (corrected for servers)
  bool is_server = false;
};

/// Footnote 3: the server period T' = T_u/q for the smallest integer q
/// with d_p > T_u/q; q == 1 (T' = T_u) in the common case d_p > T_u.
Duration server_period_for(const Duration& user_period, const Duration& deadline) {
  if (deadline > user_period) {
    return user_period;
  }
  // Smallest q with T_u/q < d_p  <=>  q > T_u/d_p.
  const std::int64_t q = Rational::floor_div(user_period.value(), deadline.value()) + 1;
  return user_period / Rational(q);
}

}  // namespace

DerivedTaskGraph derive_task_graph(const Network& net, const WcetMap& wcet,
                                   const DerivationOptions& opts) {
  std::string why;
  if (!net.in_schedulable_subclass(&why)) {
    throw std::invalid_argument("task graph derivation: " + why);
  }
  const std::size_t n = net.process_count();
  if (n == 0) {
    throw std::invalid_argument("task graph derivation: network has no processes");
  }
  for (std::size_t i = 0; i < n; ++i) {
    const ProcessId p{i};
    const auto it = wcet.find(p);
    if (it == wcet.end()) {
      throw std::invalid_argument("task graph derivation: missing WCET for process '" +
                                  net.process(p).name + "'");
    }
    if (!it->second.is_positive()) {
      throw std::invalid_argument("task graph derivation: WCET of '" +
                                  net.process(p).name + "' must be positive");
    }
  }

  DerivedTaskGraph out;

  // Buffered-channel extension: collect the process pairs connected
  // *exclusively* by buffered FIFOs — those pairs are exempt from the
  // serialization edge rule and get dataflow/buffer-reuse edges instead.
  // Pairs mixing buffered and single-slot channels stay fully serialized
  // (the single-slot channel requires it anyway).
  using Pair = std::pair<std::size_t, std::size_t>;  // (min, max) process ids
  std::map<Pair, bool> pair_has_single_slot;
  std::vector<ChannelId> buffered_channels;
  for (std::size_t c = 0; c < net.channel_count(); ++c) {
    const ChannelDecl& decl = net.channel(ChannelId{c});
    if (decl.scope != ChannelScope::kInternal) {
      continue;
    }
    const Pair key = std::minmax(decl.writer.value(), decl.reader.value());
    if (decl.is_buffered()) {
      buffered_channels.push_back(ChannelId{c});
      pair_has_single_slot.try_emplace(key, false);
    } else {
      pair_has_single_slot[key] = true;
    }
  }
  const auto buffered_only = [&](ProcessId a, ProcessId b) {
    const auto it = pair_has_single_slot.find(std::minmax(a.value(), b.value()));
    return it != pair_has_single_slot.end() && !it->second;
  };
  for (const ChannelId c : buffered_channels) {
    const ChannelDecl& decl = net.channel(c);
    const EventSpec& w = net.process(decl.writer).event;
    const EventSpec& r = net.process(decl.reader).event;
    if (w.kind != EventKind::kPeriodic || r.kind != EventKind::kPeriodic ||
        w.period != r.period || w.burst != r.burst) {
      throw std::invalid_argument(
          "task graph derivation: buffered channel '" + decl.name +
          "' requires periodic endpoints with equal period and burst");
    }
  }

  // ---- Step 1: PN' and FP'.
  std::vector<PrimeProcess> prime(n);
  Digraph fp_prime(n);
  for (const auto& [u, v] : net.priority_graph().edges()) {
    fp_prime.add_edge(u, v);
  }
  for (std::size_t i = 0; i < n; ++i) {
    const ProcessId p{i};
    const EventSpec& spec = net.process(p).event;
    PrimeProcess& pp = prime[i];
    pp.burst = spec.burst;
    if (spec.kind == EventKind::kPeriodic) {
      pp.period = spec.period;
      pp.relative_deadline = spec.deadline;
      continue;
    }
    const std::optional<ProcessId> user = net.user_of(p);
    if (!user) {
      throw std::invalid_argument("task graph derivation: sporadic process '" +
                                  net.process(p).name + "' has no user");
    }
    const ProcessId u = *user;
    ServerInfo info;
    info.sporadic = p;
    info.user = u;
    info.burst = spec.burst;
    info.server_period = server_period_for(net.process(u).event.period, spec.deadline);
    info.corrected_deadline = spec.deadline - info.server_period;
    info.priority_over_user = net.has_priority(p, u);
    pp.is_server = true;
    pp.period = info.server_period;
    pp.relative_deadline = info.corrected_deadline;
    // Replace any p <-> u FP edge by the server rule p' -> u (the server
    // jobs must precede the user job arriving at the same boundary).
    fp_prime.remove_edge(NodeId(p.value()), NodeId(u.value()));
    fp_prime.remove_edge(NodeId(u.value()), NodeId(p.value()));
    fp_prime.add_edge(NodeId(p.value()), NodeId(u.value()));
    out.servers.emplace(p, info);
  }
  if (!is_acyclic(fp_prime)) {
    throw std::invalid_argument(
        "task graph derivation: FP' became cyclic after server substitution");
  }

  // Hyperperiod of PN' (footnote 4: rational lcm), including fractional
  // server periods.
  if (opts.unfolding < 1) {
    throw std::invalid_argument("task graph derivation: unfolding must be >= 1");
  }
  Duration h = prime[0].period;
  for (std::size_t i = 1; i < n; ++i) {
    h = Duration::lcm(h, prime[i].period);
  }
  // Pipelined extension: the schedule frame spans U hyperperiods.
  h = h * Rational(opts.unfolding);
  out.hyperperiod = h;

  // ---- Step 2: simulate the PN' invocation order over [0, H).
  // All PN' processes are periodic: bursts at 0, T', 2T', ...
  std::map<Time, std::vector<ProcessId>> groups;
  for (std::size_t i = 0; i < n; ++i) {
    const ProcessId p{i};
    for (Time t; t < Time() + h; t += prime[i].period) {
      auto& g = groups[t];
      for (int b = 0; b < prime[i].burst; ++b) {
        g.push_back(p);
      }
    }
  }

  TaskGraph tg(h);
  std::vector<std::int64_t> k_count(n, 0);
  std::vector<JobId> last_job_of(n);  // latest job of each process so far
  // For the FP'-pair edge rule we need, per job, the latest preceding job
  // of every FP'-partner; last_job_of provides exactly that because jobs
  // are appended in <J order.
  const Digraph& fpp = fp_prime;

  // Ordering inside a simultaneous group is the zero-delay order: FP'
  // topological, deterministic tie-break by process id (order among
  // FP'-unrelated processes is semantically irrelevant).
  for (const auto& [t, multiset] : groups) {
    // Count multiplicities and topologically order distinct processes.
    std::map<ProcessId, int> mult;
    for (const ProcessId p : multiset) {
      ++mult[p];
    }
    std::vector<NodeId> subset;
    subset.reserve(mult.size());
    for (const auto& [p, c] : mult) {
      (void)c;
      subset.push_back(NodeId(p.value()));
    }
    const auto order = topological_sort_subset(
        fpp, subset, [](NodeId a, NodeId b) { return a < b; });
    if (!order.has_value()) {
      throw std::logic_error("task graph derivation: FP' cycle inside group");
    }
    for (const NodeId node : *order) {
      const ProcessId p{node.value()};
      const PrimeProcess& pp = prime[p.value()];
      for (int b = 0; b < mult[p]; ++b) {
        const std::int64_t k = ++k_count[p.value()];
        // ---- Step 4: job parameters.
        const std::int64_t window = (k - 1) / pp.burst;
        const Time arrival = Time() + pp.period * Rational(window);
        Time deadline = arrival + pp.relative_deadline;
        // ---- Truncation to the hyperperiod (non-pipelined frames).
        if (opts.truncate_deadlines) {
          deadline = std::min(deadline, Time() + h);
        }
        Job job;
        job.process = p;
        job.k = k;
        job.arrival = arrival;
        job.deadline = deadline;
        job.wcet = wcet.at(p);
        job.is_server = pp.is_server;
        job.subset = pp.is_server ? window + 1 : 0;
        job.name = net.process(p).name + "[" + std::to_string(k) + "]";
        const JobId id = tg.add_job(job);

        // ---- Step 3: precedence edges (generating subset whose
        // transitive closure equals the full <J x (|><| or same-process)
        // relation; the reduction below then yields the paper's graph).
        if (last_job_of[p.value()].is_valid()) {
          tg.add_edge(last_job_of[p.value()], id);  // same-process chain
        }
        const NodeId pn(p.value());
        const auto link_partner = [&](NodeId q) {
          // Buffered-only pairs are NOT serialized: their ordering comes
          // from the dataflow/buffer-reuse edges added below.
          if (buffered_only(p, ProcessId{q.value()})) {
            return;
          }
          const JobId prev = last_job_of[q.value()];
          if (prev.is_valid()) {
            tg.add_edge(prev, id);
          }
        };
        for (const NodeId q : fpp.successors(pn)) {
          link_partner(q);
        }
        for (const NodeId q : fpp.predecessors(pn)) {
          link_partner(q);
        }
        last_job_of[p.value()] = id;
      }
    }
  }

  // Buffered-channel dataflow and buffer-reuse edges: for capacity B,
  //   w[k] -> r[k]        (the k-th token must exist before it is read)
  //   r[k] -> w[k+B]      (slot reuse: the writer may lap the reader by
  //                        at most B tokens)
  // Equal rates guarantee equal job counts; frames do not overlap in the
  // non-pipelined policy, so per-frame edges suffice (use unfolding to
  // pipeline across hyperperiods).
  for (const ChannelId c : buffered_channels) {
    const ChannelDecl& decl = net.channel(c);
    if (!buffered_only(decl.writer, decl.reader)) {
      continue;  // a single-slot channel already fully serializes the pair
    }
    const auto w_jobs = tg.jobs_of(decl.writer);
    const auto r_jobs = tg.jobs_of(decl.reader);
    if (w_jobs.size() != r_jobs.size()) {
      throw std::logic_error("buffered channel endpoints derived unequal job counts");
    }
    const std::size_t cap = static_cast<std::size_t>(decl.capacity);
    for (std::size_t k = 0; k < w_jobs.size(); ++k) {
      tg.add_edge(w_jobs[k], r_jobs[k]);
      if (k + cap < w_jobs.size()) {
        tg.add_edge(r_jobs[k], w_jobs[k + cap]);
      }
    }
  }
  if (!tg.is_acyclic()) {
    throw std::logic_error("task graph derivation: buffer edges created a cycle");
  }

  out.edges_before_reduction = tg.edge_count();
  // ---- Step 5: transitive reduction.
  if (opts.transitive_reduce) {
    out.edges_removed = tg.transitive_reduce();
  }
  out.graph = std::move(tg);
  return out;
}

DerivedTaskGraph derive_task_graph(const Network& net, Duration wcet,
                                   const DerivationOptions& opts) {
  WcetMap map;
  for (std::size_t i = 0; i < net.process_count(); ++i) {
    map.emplace(ProcessId{i}, wcet);
  }
  return derive_task_graph(net, map, opts);
}

}  // namespace fppn
