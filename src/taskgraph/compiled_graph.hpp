// CompiledTaskGraph — a flat, cache-friendly view of a TaskGraph for the
// schedule-evaluation hot path (sched/evaluator.hpp).
//
// Two pieces:
//
//   CSR adjacency   predecessor/successor ids packed into two flat arrays
//                   with offset tables, so the inner scheduling loop walks
//                   edges with zero pointer chasing and zero allocation.
//
//   tick timebase   all arrivals/deadlines/WCETs are exact rationals with
//                   a common denominator L = lcm of every denominator in
//                   the graph. When L and every scaled value — including
//                   the largest time the simulation can ever reach,
//                   max arrival + total WCET — fit in int64, the view
//                   carries integer "ticks" (value * L) and the evaluator
//                   runs on plain int64 comparisons. Otherwise has_ticks
//                   is false and the evaluator falls back to exact
//                   Rational arithmetic. Either way results are exact and
//                   bit-identical: ticks are a lossless rescaling, never a
//                   rounding.
//
// Determinism: compile() is a pure function of the task graph; the view is
// immutable afterwards and safe to share between threads.
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "rt/time.hpp"
#include "taskgraph/task_graph.hpp"

namespace fppn {

class CompiledTaskGraph {
 public:
  /// Builds the flat view. Accepts any graph (including cyclic ones — the
  /// evaluator performs its own acyclicity check); never throws beyond
  /// allocation failure.
  static CompiledTaskGraph compile(const TaskGraph& tg);

  [[nodiscard]] std::size_t job_count() const noexcept { return n_; }
  [[nodiscard]] std::size_t edge_count() const noexcept { return pred_ids_.size(); }

  /// True when the int64 tick timebase is usable (no overflow anywhere,
  /// including the worst-case simulated makespan).
  [[nodiscard]] bool has_ticks() const noexcept { return has_ticks_; }
  /// Ticks per millisecond (the common denominator L); 1 when the graph
  /// uses integral milliseconds only. Meaningful only when has_ticks().
  [[nodiscard]] std::int64_t ticks_per_ms() const noexcept { return ticks_per_ms_; }

  // Tick arrays (size n; valid only when has_ticks()).
  [[nodiscard]] const std::vector<std::int64_t>& arrival_ticks() const noexcept {
    return arrival_tick_;
  }
  [[nodiscard]] const std::vector<std::int64_t>& deadline_ticks() const noexcept {
    return deadline_tick_;
  }
  [[nodiscard]] const std::vector<std::int64_t>& wcet_ticks() const noexcept {
    return wcet_tick_;
  }

  // Exact rational arrays (size n; always valid — the fallback timebase).
  [[nodiscard]] const std::vector<Time>& arrivals() const noexcept { return arrival_; }
  [[nodiscard]] const std::vector<Time>& deadlines() const noexcept { return deadline_; }
  [[nodiscard]] const std::vector<Duration>& wcets() const noexcept { return wcet_; }

  // CSR adjacency. predecessors of job i are pred_ids()[pred_offsets()[i]
  // .. pred_offsets()[i+1]); same shape for successors.
  [[nodiscard]] const std::vector<std::uint32_t>& pred_offsets() const noexcept {
    return pred_offsets_;
  }
  [[nodiscard]] const std::vector<std::uint32_t>& pred_ids() const noexcept {
    return pred_ids_;
  }
  [[nodiscard]] const std::vector<std::uint32_t>& succ_offsets() const noexcept {
    return succ_offsets_;
  }
  [[nodiscard]] const std::vector<std::uint32_t>& succ_ids() const noexcept {
    return succ_ids_;
  }

  /// Jobs with no predecessors, sorted by (arrival, job id) — the arrival
  /// event stream of the evaluator (every other job becomes ready through
  /// a predecessor completion).
  [[nodiscard]] const std::vector<std::uint32_t>& sources_by_arrival() const noexcept {
    return sources_by_arrival_;
  }

  /// process_ids()[i] = ProcessId value of job i (SIZE_MAX when the job
  /// carries no process id). Feeds the evaluator's partition-constrained
  /// mode, which pins each job to its process's processor.
  [[nodiscard]] const std::vector<std::size_t>& process_ids() const noexcept {
    return process_id_;
  }

  /// Converts a tick count back to the exact Time it encodes. Meaningful
  /// only when has_ticks(); the result is bit-identical to the rational
  /// arithmetic the reference scheduler performs.
  [[nodiscard]] Time time_from_ticks(std::int64_t ticks) const;

  /// Inverse of time_from_ticks: the exact tick count of `t`, or nullopt
  /// when `t` is not representable on this tick timebase (denominator not
  /// a divisor of ticks_per_ms, or int64 overflow). Lossless, never a
  /// rounding — the evaluator uses it to translate score cutoffs computed
  /// on the Time side into tick comparisons.
  [[nodiscard]] std::optional<std::int64_t> ticks_from_time(const Time& t) const;

 private:
  std::size_t n_ = 0;
  bool has_ticks_ = false;
  std::int64_t ticks_per_ms_ = 1;
  std::vector<std::int64_t> arrival_tick_, deadline_tick_, wcet_tick_;
  std::vector<Time> arrival_, deadline_;
  std::vector<Duration> wcet_;
  std::vector<std::uint32_t> pred_offsets_, pred_ids_, succ_offsets_, succ_ids_;
  std::vector<std::uint32_t> sources_by_arrival_;
  std::vector<std::size_t> process_id_;
};

}  // namespace fppn
