// FPPN -> task graph derivation (§III-A).
//
// For the schedulable subclass (every sporadic process p has a unique
// periodic user u(p) with T_u(p) <= T_p) the derivation is:
//  1. Build the imaginary PN' where each sporadic p becomes an m-periodic
//     "server" process p' with burst m_p' = m_p, period T_p' = T_u(p) and
//     priority edge p' -> u(p). (Footnote 3 fallback: when d_p <= T_u(p)
//     the server period is T_u/q for the smallest q making the corrected
//     deadline positive.) All other FP edges of p transfer to p'.
//  2. Simulate the job invocation order of PN' over one hyperperiod
//     [0, H) — the zero-delay order — yielding the job sequence J and the
//     total order <J.
//  3. Add edge (Ja, Jb) iff Ja <J Jb and (pa |><| pb or pa == pb), where
//     |><| is direct FP'-relatedness. (Implemented via a generating subset
//     with the same transitive closure; see the .cpp.)
//  4. Job parameters: periodic p: A = T_p*floor((k-1)/m_p), D = A + d_p;
//     server p': A = T_p'*floor((k-1)/m_p'), D = A + d_p - T_p'.
//  5. Truncate D to H (non-pipelined frames) and transitively reduce.
#pragma once

#include <map>
#include <string>

#include "fppn/network.hpp"
#include "taskgraph/task_graph.hpp"

namespace fppn {

/// Per-process WCET assignment (C_i for every job of the process).
using WcetMap = std::map<ProcessId, Duration>;

struct DerivationOptions {
  bool transitive_reduce = true;
  /// When false, deadlines are left untruncated (used by tests to check
  /// the correction d_p' = d_p - T_u(p) in isolation).
  bool truncate_deadlines = true;
  /// Unfolding factor U >= 1 (pipelined-scheduling extension; the paper's
  /// footnote 5 restricts itself to U = 1). The frame becomes U
  /// hyperperiods long: jobs of U consecutive hyperperiods are scheduled
  /// together and deadlines are truncated to U*H instead of H, so a
  /// process with d_p > T_p can legally overlap the next hyperperiod —
  /// the non-pipelined truncation would artificially tighten it.
  int unfolding = 1;
};

/// How a sporadic process was turned into a periodic server.
struct ServerInfo {
  ProcessId sporadic;          ///< p
  ProcessId user;              ///< u(p)
  int burst = 1;               ///< m_p' = m_p
  Duration server_period;      ///< T_p' (T_u(p) or the footnote-3 fraction)
  Duration corrected_deadline; ///< d_p - T_p' (> 0 by construction)
  /// True when p -> u(p) in the *original* FP: the runtime then maps real
  /// invocations from the right-closed window (a, b]; otherwise [a, b)
  /// (Fig. 2 boundary rule).
  bool priority_over_user = false;
};

struct DerivedTaskGraph {
  TaskGraph graph;
  std::map<ProcessId, ServerInfo> servers;  ///< keyed by the sporadic process
  Duration hyperperiod;
  std::size_t edges_before_reduction = 0;
  std::size_t edges_removed = 0;
};

/// Derives the task graph. Throws std::invalid_argument when the network
/// is outside the schedulable subclass, a WCET is missing/non-positive, or
/// (footnote 3) no admissible server period exists.
[[nodiscard]] DerivedTaskGraph derive_task_graph(const Network& net,
                                                 const WcetMap& wcet,
                                                 const DerivationOptions& opts = {});

/// Uniform-WCET convenience: every process gets the same C.
[[nodiscard]] DerivedTaskGraph derive_task_graph(const Network& net, Duration wcet,
                                                 const DerivationOptions& opts = {});

}  // namespace fppn
