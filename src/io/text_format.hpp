// A textual description format for FPPNs — the front end of the command
// line tool (tools/fppn_tool.cpp), standing in for the CERTAINTY
// programming language the paper's toolchain compiles (§V).
//
// Line-oriented; '#' starts a comment. Durations are rational
// milliseconds ("200", "40/3"). Statements:
//
//   process <name> periodic  period=<T> deadline=<d> [burst=<m>] [wcet=<C>]
//   process <name> sporadic  burst=<m> period=<T> deadline=<d> [wcet=<C>]
//   channel <fifo|blackboard> <name> <writer> -> <reader>
//   input  <name> -> <process>
//   output <name> <- <process>
//   priority <higher> > <lower>
//   priority auto-rm            # rate-monotonic completion (builder rule)
//
// All processes get no-op behaviors: the text format feeds the *timing*
// toolchain (task-graph derivation, scheduling, policy simulation);
// functional behavior stays in C++.
#pragma once

#include <iosfwd>
#include <stdexcept>
#include <string>

#include "fppn/network.hpp"
#include "taskgraph/derivation.hpp"

namespace fppn::io {

/// Parse failure with a 1-based line number.
class ParseError : public std::runtime_error {
 public:
  ParseError(std::size_t line, const std::string& message)
      : std::runtime_error("line " + std::to_string(line) + ": " + message),
        line_(line) {}

  [[nodiscard]] std::size_t line() const noexcept { return line_; }

 private:
  std::size_t line_;
};

struct ParsedNetwork {
  Network net;
  WcetMap wcets;            ///< only processes that declared wcet=
  bool wcets_complete = false;  ///< every process declared one
};

/// Parses a network description. Throws ParseError on syntax errors and
/// std::invalid_argument for semantic violations (via NetworkBuilder).
[[nodiscard]] ParsedNetwork parse_network(std::istream& in);
[[nodiscard]] ParsedNetwork parse_network_string(const std::string& text);

/// Renders a network (and optional WCETs) back to the text format;
/// parse(write(n)) reproduces the same structure.
[[nodiscard]] std::string write_network(const Network& net, const WcetMap& wcets = {});

/// Parses "200" or "40/3" as a duration in ms. Throws std::invalid_argument.
[[nodiscard]] Duration parse_duration(const std::string& text);

}  // namespace fppn::io
