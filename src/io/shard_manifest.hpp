// Versioned text serialization of shard manifests — the per-shard index
// file behind sched::sharded_search (see docs/FILE_FORMATS.md for the
// grammar and an annotated example).
//
// One manifest describes one shard of a sharded schedule search: which
// slice of the candidate matrix the shard owned, where each candidate's
// result entry lives (one io/schedule_format.hpp file per candidate, in
// the same directory), and the shard's cache accounting. The merge step
// validates every manifest against the deterministic shard plan before
// trusting any entry, so a stale or foreign shard directory fails loudly
// instead of changing the winner. Line-oriented; starts with the
// magic/version line "fppn-shards v1" and ends with "end"; trailing
// non-blank content after "end" is a ParseError (truncation/concatenation
// guard, same contract as schedule entries).
//
// Deterministic: write_shard_manifest is a pure function of the manifest;
// read(write(m)) reproduces every field bit-identically.
// Thread safety: all functions are stateless and safe to call
// concurrently; callers synchronize access to shared streams themselves.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

#include "io/text_format.hpp"

namespace fppn::io {

/// Current manifest-format version, written as "fppn-shards v<N>".
/// Readers reject every other version.
constexpr int kShardManifestVersion = 1;

/// One candidate owned by the shard: its identity plus the name of the
/// schedule-entry file (relative to the shard directory) holding its
/// result.
struct ShardManifestEntry {
  std::string strategy;  ///< producing strategy's registry name
  std::uint64_t seed = 0;
  std::string file;      ///< entry file name within the shard directory
};

/// One shard's worth of search provenance and results.
struct ShardManifest {
  std::uint64_t fingerprint = 0;  ///< taskgraph fingerprint (16 hex digits)
  int shard_index = 0;            ///< this shard's index, 0-based
  int shard_count = 1;            ///< total shards in the plan
  std::int64_t processors = 0;    ///< processor count searched for
  int max_iterations = 0;         ///< iteration budget of the search
  int restarts = 0;               ///< restart budget of the search
  std::size_t evaluated = 0;      ///< candidates actually run in this shard
  std::size_t cache_hits = 0;     ///< candidates answered by the cache
  std::vector<ShardManifestEntry> candidates;
};

/// Conventional manifest file name within a shard directory, e.g.
/// "shard-0-of-2.manifest". Throws std::invalid_argument when the index
/// is not in [0, count).
[[nodiscard]] std::string shard_manifest_filename(int shard_index, int shard_count);

/// Renders a manifest in format version kShardManifestVersion. Never throws.
[[nodiscard]] std::string write_shard_manifest(const ShardManifest& manifest);

/// Parses one manifest. Throws ParseError (with a 1-based line number) on
/// a wrong magic/version line, malformed or missing fields, a candidate
/// count that does not match the candidate lines, a missing "end" trailer,
/// or trailing non-blank content after "end".
[[nodiscard]] ShardManifest read_shard_manifest(std::istream& in);
[[nodiscard]] ShardManifest read_shard_manifest_string(const std::string& text);

}  // namespace fppn::io
