// Atomic whole-file publication, shared by every on-disk format writer
// (schedule-cache entries, shard result entries, shard manifests).
#pragma once

#include <string>

namespace fppn::io {

/// Writes `content` to `path` through a unique temp file (pid +
/// process-wide counter suffix), fsyncs it, then publishes with an
/// atomic rename, so concurrent readers — and other processes sharing
/// the directory, even over a network filesystem — never observe a torn
/// file; racing writers each publish a complete file and the last rename
/// wins. The write loop retries EINTR and continues short writes; every
/// step is a fault-injection site (testing::FaultInjector). Throws
/// std::runtime_error with the failing path on any I/O failure; the temp
/// file is removed on failure. Thread-safe.
void write_file_atomic(const std::string& path, const std::string& content);

/// Ensures `directory` exists as a directory: creates the leaf when
/// missing, refuses a missing parent (a typo'd path must fail loudly, not
/// scatter files somewhere unexpected), and tolerates losing a creation
/// race to a concurrent process. Throws std::runtime_error — messages
/// prefixed with `context` ("schedule cache", "sharded_search") — when
/// the path exists as a non-directory, the parent is missing, or
/// creation genuinely fails. The shared loud-error contract of
/// ScheduleCache and the sharded search.
void ensure_directory(const std::string& directory, const std::string& context);

/// Creates a fresh private directory under the system temp dir, named
/// "<prefix>XXXXXX" (mkdtemp), and returns its path. Throws
/// std::runtime_error on failure — callers' cleanup/catch paths see one
/// exception contract instead of a process exit. Thread-safe.
[[nodiscard]] std::string make_temp_directory(const std::string& prefix);

}  // namespace fppn::io
