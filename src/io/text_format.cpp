#include "io/text_format.hpp"

#include <charconv>
#include <map>
#include <sstream>
#include <vector>

namespace fppn::io {
namespace {

std::vector<std::string> tokenize(const std::string& line) {
  std::vector<std::string> tokens;
  std::istringstream is(line);
  std::string tok;
  while (is >> tok) {
    if (tok[0] == '#') {
      break;  // comment until end of line
    }
    tokens.push_back(tok);
  }
  return tokens;
}

std::int64_t parse_int(const std::string& text) {
  std::int64_t value = 0;
  const auto [ptr, ec] =
      std::from_chars(text.data(), text.data() + text.size(), value);
  if (ec != std::errc{} || ptr != text.data() + text.size()) {
    throw std::invalid_argument("not an integer: '" + text + "'");
  }
  return value;
}

/// "key=value" pairs after the positional part of a process statement.
std::map<std::string, std::string> parse_kv(const std::vector<std::string>& tokens,
                                            std::size_t from, std::size_t line) {
  std::map<std::string, std::string> kv;
  for (std::size_t i = from; i < tokens.size(); ++i) {
    const auto eq = tokens[i].find('=');
    if (eq == std::string::npos || eq == 0 || eq + 1 == tokens[i].size()) {
      throw ParseError(line, "expected key=value, got '" + tokens[i] + "'");
    }
    kv.emplace(tokens[i].substr(0, eq), tokens[i].substr(eq + 1));
  }
  return kv;
}

}  // namespace

Duration parse_duration(const std::string& text) {
  const auto slash = text.find('/');
  if (slash == std::string::npos) {
    return Duration(Rational(parse_int(text)));
  }
  return Duration(
      Rational(parse_int(text.substr(0, slash)), parse_int(text.substr(slash + 1))));
}

ParsedNetwork parse_network(std::istream& in) {
  NetworkBuilder builder;
  std::map<std::string, ProcessId> by_name;
  std::map<ProcessId, Duration> wcets;
  bool auto_rm = false;

  const auto lookup = [&](const std::string& name, std::size_t line) {
    const auto it = by_name.find(name);
    if (it == by_name.end()) {
      throw ParseError(line, "unknown process '" + name + "'");
    }
    return it->second;
  };

  std::string line;
  std::size_t lineno = 0;
  while (std::getline(in, line)) {
    ++lineno;
    const auto tokens = tokenize(line);
    if (tokens.empty()) {
      continue;
    }
    const std::string& stmt = tokens[0];
    try {
      if (stmt == "process") {
        if (tokens.size() < 3) {
          throw ParseError(lineno, "process needs a name and a kind");
        }
        const std::string& name = tokens[1];
        const std::string& kind = tokens[2];
        const auto kv = parse_kv(tokens, 3, lineno);
        const auto need = [&](const char* key) -> const std::string& {
          const auto it = kv.find(key);
          if (it == kv.end()) {
            throw ParseError(lineno, std::string("process '") + name +
                                         "' missing " + key + "=");
          }
          return it->second;
        };
        const Duration period = parse_duration(need("period"));
        const Duration deadline = parse_duration(need("deadline"));
        const int burst = kv.count("burst") != 0
                              ? static_cast<int>(parse_int(kv.at("burst")))
                              : 1;
        ProcessId p;
        if (kind == "periodic") {
          p = builder.multi_periodic(name, burst, period, deadline,
                                     no_op_behavior());
        } else if (kind == "sporadic") {
          if (kv.count("burst") == 0) {
            throw ParseError(lineno, "sporadic process needs burst=");
          }
          p = builder.sporadic(name, burst, period, deadline, no_op_behavior());
        } else {
          throw ParseError(lineno, "unknown process kind '" + kind + "'");
        }
        by_name.emplace(name, p);
        if (kv.count("wcet") != 0) {
          wcets.emplace(p, parse_duration(kv.at("wcet")));
        }
      } else if (stmt == "channel") {
        if ((tokens.size() != 6 && tokens.size() != 7) || tokens[4] != "->") {
          throw ParseError(lineno,
                           "expected: channel <fifo|blackboard> <name> <writer> "
                           "-> <reader> [capacity=N]");
        }
        std::optional<int> capacity;
        if (tokens.size() == 7) {
          const auto kv = parse_kv(tokens, 6, lineno);
          if (kv.size() != 1 || kv.count("capacity") == 0) {
            throw ParseError(lineno, "only capacity=N is allowed after the reader");
          }
          capacity = static_cast<int>(parse_int(kv.at("capacity")));
        }
        const ChannelKind kind = [&] {
          if (tokens[1] == "fifo") {
            return ChannelKind::kFifo;
          }
          if (tokens[1] == "blackboard") {
            return ChannelKind::kBlackboard;
          }
          throw ParseError(lineno, "unknown channel kind '" + tokens[1] + "'");
        }();
        if (capacity.has_value() && *capacity > 1) {
          if (kind != ChannelKind::kFifo) {
            throw ParseError(lineno, "only fifo channels can be buffered");
          }
          builder.buffered_fifo(tokens[2], lookup(tokens[3], lineno),
                                lookup(tokens[5], lineno), *capacity);
        } else {
          builder.channel(tokens[2], kind, lookup(tokens[3], lineno),
                          lookup(tokens[5], lineno));
        }
      } else if (stmt == "input") {
        if (tokens.size() != 4 || tokens[2] != "->") {
          throw ParseError(lineno, "expected: input <name> -> <process>");
        }
        builder.external_input(tokens[1], lookup(tokens[3], lineno));
      } else if (stmt == "output") {
        if (tokens.size() != 4 || tokens[2] != "<-") {
          throw ParseError(lineno, "expected: output <name> <- <process>");
        }
        builder.external_output(tokens[1], lookup(tokens[3], lineno));
      } else if (stmt == "priority") {
        if (tokens.size() == 2 && tokens[1] == "auto-rm") {
          auto_rm = true;
        } else if (tokens.size() == 4 && tokens[2] == ">") {
          builder.priority(lookup(tokens[1], lineno), lookup(tokens[3], lineno));
        } else {
          throw ParseError(lineno,
                           "expected: priority <hi> > <lo>  or  priority auto-rm");
        }
      } else {
        throw ParseError(lineno, "unknown statement '" + stmt + "'");
      }
    } catch (const std::invalid_argument& e) {
      throw ParseError(lineno, e.what());
    }
  }

  if (auto_rm) {
    builder.auto_rate_monotonic_priorities();
  }
  ParsedNetwork out;
  out.net = std::move(builder).build();
  out.wcets = std::move(wcets);
  out.wcets_complete = out.wcets.size() == out.net.process_count();
  return out;
}

ParsedNetwork parse_network_string(const std::string& text) {
  std::istringstream is(text);
  return parse_network(is);
}

std::string write_network(const Network& net, const WcetMap& wcets) {
  std::ostringstream os;
  os << "# fppn network (" << net.process_count() << " processes, "
     << net.channel_count() << " channels)\n";
  for (std::size_t i = 0; i < net.process_count(); ++i) {
    const ProcessDecl& p = net.process(ProcessId{i});
    os << "process " << p.name << " "
       << (p.event.kind == EventKind::kSporadic ? "sporadic" : "periodic");
    if (p.event.burst != 1 || p.event.kind == EventKind::kSporadic) {
      os << " burst=" << p.event.burst;
    }
    os << " period=" << p.event.period.to_string()
       << " deadline=" << p.event.deadline.to_string();
    if (const auto it = wcets.find(ProcessId{i}); it != wcets.end()) {
      os << " wcet=" << it->second.to_string();
    }
    os << "\n";
  }
  for (std::size_t i = 0; i < net.channel_count(); ++i) {
    const ChannelDecl& c = net.channel(ChannelId{i});
    switch (c.scope) {
      case ChannelScope::kInternal:
        os << "channel " << to_string(c.kind) << " " << c.name << " "
           << net.process(c.writer).name << " -> " << net.process(c.reader).name;
        if (c.is_buffered()) {
          os << " capacity=" << c.capacity;
        }
        os << "\n";
        break;
      case ChannelScope::kExternalInput:
        os << "input " << c.name << " -> " << net.process(c.reader).name << "\n";
        break;
      case ChannelScope::kExternalOutput:
        os << "output " << c.name << " <- " << net.process(c.writer).name << "\n";
        break;
    }
  }
  for (const auto& [u, v] : net.priority_graph().edges()) {
    os << "priority " << net.process(ProcessId{u.value()}).name << " > "
       << net.process(ProcessId{v.value()}).name << "\n";
  }
  return os.str();
}

}  // namespace fppn::io
