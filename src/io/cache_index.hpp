// Versioned text serialization of the schedule-cache directory index —
// the recency ledger behind sched::ScheduleCache's bounded (LRU-style)
// eviction (see docs/FILE_FORMATS.md for the grammar and an annotated
// example).
//
// The index maps every cache-entry file in a directory to a logical
// sequence number: higher sequence = used more recently. Sequence numbers
// come from a monotone per-index counter (never wall-clock time), so the
// eviction order is reproducible and immune to clock skew between
// processes sharing a directory. Line-oriented; starts with the
// magic/version line "fppn-cache-index v1" and ends with "end"; trailing
// non-blank content after "end" is a ParseError (truncation/concatenation
// guard, same contract as schedule entries).
//
// The index is advisory, never authoritative: the entry files are the
// cache's ground truth, and a missing, corrupt or stale index is rebuilt
// from them (ordered by file modification time) — a damaged index must
// never be a hard error, and never lose cached schedules.
//
// Deterministic: write_cache_index is a pure function of the index;
// read(write(x)) reproduces every field bit-identically.
// Thread safety: all functions are stateless and safe to call
// concurrently; callers synchronize access to shared streams themselves.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

#include "io/text_format.hpp"

namespace fppn::io {

/// Current index-format version, written as "fppn-cache-index v<N>".
/// Readers reject every other version (the cache rebuilds a rejected
/// index from the entry files).
constexpr int kCacheIndexVersion = 1;

/// Conventional index file name within a cache directory. Deliberately
/// not "*.sched", so index rebuilds scanning for entry files skip it.
constexpr const char* kCacheIndexFilename = "cache-index";

/// One entry file and the logical time it was last stored or read.
struct CacheIndexEntry {
  std::uint64_t sequence = 0;  ///< higher = more recently used
  std::string file;            ///< entry file name within the cache directory
};

/// The recency ledger of one cache directory.
struct CacheIndex {
  std::uint64_t next_sequence = 1;  ///< the sequence the next touch() hands out
  std::vector<CacheIndexEntry> entries;

  /// Marks `file` as the most recently used entry: assigns it
  /// next_sequence and advances the counter. Adds the record when absent.
  void touch(const std::string& file);

  /// Removes the record for `file`, if any. Returns true when removed.
  bool erase(const std::string& file);

  /// Entries sorted oldest-first by (sequence, file name) — the eviction
  /// order. The file-name tie-break keeps the order total even when racing
  /// writers handed out duplicate sequences.
  [[nodiscard]] std::vector<CacheIndexEntry> oldest_first() const;
};

/// Renders an index in format version kCacheIndexVersion. Never throws.
[[nodiscard]] std::string write_cache_index(const CacheIndex& index);

/// Parses one index and consumes the stream to its end. Throws ParseError
/// (with a 1-based line number) on a wrong magic/version line, malformed
/// or missing fields, an entry count that does not match the entry lines,
/// a duplicate file name, a missing "end" trailer, or trailing non-blank
/// content after "end".
[[nodiscard]] CacheIndex read_cache_index(std::istream& in);
[[nodiscard]] CacheIndex read_cache_index_string(const std::string& text);

}  // namespace fppn::io
