#include "io/schedule_format.hpp"

#include <sstream>

#include "io/line_parser.hpp"
#include "taskgraph/fingerprint.hpp"

namespace fppn::io {

std::string write_schedule_entry(const ScheduleEntry& entry) {
  std::ostringstream out;
  out << "fppn-schedule v" << kScheduleFormatVersion << '\n';
  out << "fingerprint " << fingerprint_hex(entry.fingerprint) << '\n';
  out << "strategy " << entry.strategy << '\n';
  out << "seed " << entry.seed << '\n';
  out << "processors " << entry.processors << '\n';
  out << "budget " << entry.max_iterations << ' ' << entry.restarts << '\n';
  out << "detail " << entry.detail << '\n';
  out << "jobs " << entry.schedule.job_count() << '\n';
  for (std::size_t i = 0; i < entry.schedule.job_count(); ++i) {
    const JobId id(i);
    if (!entry.schedule.is_placed(id)) {
      continue;  // partial schedules: unplaced jobs simply have no line
    }
    const Placement& p = entry.schedule.placement(id);
    out << "place " << i << ' ' << p.processor.value() << ' '
        << p.start.value().to_string() << '\n';
  }
  out << "end\n";
  return out.str();
}

ScheduleEntry read_schedule_entry(std::istream& in) {
  detail::LineParser parser(in);
  constexpr const char* kEof = "unexpected end of schedule entry (no 'end' trailer?)";

  // Magic/version first: anything else means "not a (current) cache entry".
  {
    const auto toks = parser.next_tokens(kEof);
    if (toks.size() != 2 || toks[0] != "fppn-schedule" ||
        toks[1] != "v" + std::to_string(kScheduleFormatVersion)) {
      throw ParseError(parser.lineno(), "expected header 'fppn-schedule v" +
                                            std::to_string(kScheduleFormatVersion) +
                                            "'");
    }
  }

  ScheduleEntry entry;
  {
    const auto toks = parser.next_tokens(kEof);
    parser.expect_tokens(toks, 2, "fingerprint");
    if (toks[0] != "fingerprint") {
      throw ParseError(parser.lineno(), "expected 'fingerprint'");
    }
    try {
      entry.fingerprint = parse_fingerprint_hex(toks[1]);
    } catch (const std::invalid_argument& e) {
      throw ParseError(parser.lineno(), e.what());
    }
  }
  {
    const auto toks = parser.next_tokens(kEof);
    parser.expect_tokens(toks, 2, "strategy");
    if (toks[0] != "strategy") {
      throw ParseError(parser.lineno(), "expected 'strategy'");
    }
    entry.strategy = toks[1];
  }
  {
    const auto toks = parser.next_tokens(kEof);
    parser.expect_tokens(toks, 2, "seed");
    if (toks[0] != "seed") {
      throw ParseError(parser.lineno(), "expected 'seed'");
    }
    entry.seed = parser.parse_u64(toks[1]);
  }
  std::int64_t processors = 0;
  {
    const auto toks = parser.next_tokens(kEof);
    parser.expect_tokens(toks, 2, "processors");
    if (toks[0] != "processors") {
      throw ParseError(parser.lineno(), "expected 'processors'");
    }
    processors = parser.parse_i64(toks[1]);
    if (processors < 1) {
      throw ParseError(parser.lineno(), "processors must be >= 1");
    }
    entry.processors = processors;
  }
  {
    const auto toks = parser.next_tokens(kEof);
    parser.expect_tokens(toks, 3, "budget");
    if (toks[0] != "budget") {
      throw ParseError(parser.lineno(), "expected 'budget'");
    }
    entry.max_iterations = static_cast<int>(parser.parse_i64(toks[1]));
    entry.restarts = static_cast<int>(parser.parse_i64(toks[2]));
  }
  {
    // `detail` is free text: everything after the first space, verbatim.
    const std::string& line = parser.next_line(kEof);
    const std::string prefix = "detail";
    if (line.compare(0, prefix.size(), prefix) != 0) {
      throw ParseError(parser.lineno(), "expected 'detail'");
    }
    entry.detail =
        line.size() > prefix.size() + 1 ? line.substr(prefix.size() + 1) : "";
  }
  std::size_t jobs = 0;
  {
    const auto toks = parser.next_tokens(kEof);
    parser.expect_tokens(toks, 2, "jobs");
    if (toks[0] != "jobs") {
      throw ParseError(parser.lineno(), "expected 'jobs'");
    }
    const std::int64_t n = parser.parse_i64(toks[1]);
    if (n < 0) {
      throw ParseError(parser.lineno(), "negative job count");
    }
    jobs = static_cast<std::size_t>(n);
  }

  entry.schedule = StaticSchedule(jobs, processors);
  for (;;) {
    const auto toks = parser.next_tokens(kEof);
    if (toks.size() == 1 && toks[0] == "end") {
      parser.reject_trailing_content();
      return entry;
    }
    parser.expect_tokens(toks, 4, "place");
    if (toks[0] != "place") {
      throw ParseError(parser.lineno(), "expected 'place' or 'end'");
    }
    const std::int64_t job = parser.parse_i64(toks[1]);
    const std::int64_t proc = parser.parse_i64(toks[2]);
    if (job < 0 || static_cast<std::size_t>(job) >= jobs) {
      throw ParseError(parser.lineno(), "job index out of range");
    }
    if (proc < 0 || proc >= processors) {
      throw ParseError(parser.lineno(), "processor index out of range");
    }
    Time start;
    try {
      start = Time() + parse_duration(toks[3]);
    } catch (const std::invalid_argument& e) {
      throw ParseError(parser.lineno(), std::string("bad start time: ") + e.what());
    }
    entry.schedule.place(JobId(static_cast<std::size_t>(job)),
                         ProcessorId(static_cast<std::size_t>(proc)), start);
  }
}

ScheduleEntry read_schedule_entry_string(const std::string& text) {
  std::istringstream in(text);
  return read_schedule_entry(in);
}

}  // namespace fppn::io
