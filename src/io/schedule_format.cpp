#include "io/schedule_format.hpp"

#include <sstream>

#include "taskgraph/fingerprint.hpp"

namespace fppn::io {

namespace {

/// Splits a line into whitespace-separated tokens.
std::vector<std::string> tokenize(const std::string& line) {
  std::vector<std::string> out;
  std::istringstream in(line);
  std::string tok;
  while (in >> tok) {
    out.push_back(tok);
  }
  return out;
}

}  // namespace

std::string write_schedule_entry(const ScheduleEntry& entry) {
  std::ostringstream out;
  out << "fppn-schedule v" << kScheduleFormatVersion << '\n';
  out << "fingerprint " << fingerprint_hex(entry.fingerprint) << '\n';
  out << "strategy " << entry.strategy << '\n';
  out << "seed " << entry.seed << '\n';
  out << "processors " << entry.processors << '\n';
  out << "budget " << entry.max_iterations << ' ' << entry.restarts << '\n';
  out << "detail " << entry.detail << '\n';
  out << "jobs " << entry.schedule.job_count() << '\n';
  for (std::size_t i = 0; i < entry.schedule.job_count(); ++i) {
    const JobId id(i);
    if (!entry.schedule.is_placed(id)) {
      continue;  // partial schedules: unplaced jobs simply have no line
    }
    const Placement& p = entry.schedule.placement(id);
    out << "place " << i << ' ' << p.processor.value() << ' '
        << p.start.value().to_string() << '\n';
  }
  out << "end\n";
  return out.str();
}

ScheduleEntry read_schedule_entry(std::istream& in) {
  std::size_t lineno = 0;
  std::string line;
  const auto next_line = [&]() -> std::string {
    if (!std::getline(in, line)) {
      throw ParseError(lineno, "unexpected end of schedule entry (no 'end' trailer?)");
    }
    ++lineno;
    return line;
  };
  const auto expect_tokens = [&](const std::vector<std::string>& toks, std::size_t n,
                                 const char* what) {
    if (toks.size() != n) {
      throw ParseError(lineno, std::string("malformed ") + what + " line");
    }
  };

  // Magic/version first: anything else means "not a (current) cache entry".
  {
    const auto toks = tokenize(next_line());
    if (toks.size() != 2 || toks[0] != "fppn-schedule" ||
        toks[1] != "v" + std::to_string(kScheduleFormatVersion)) {
      throw ParseError(lineno, "expected header 'fppn-schedule v" +
                                   std::to_string(kScheduleFormatVersion) + "'");
    }
  }

  ScheduleEntry entry;
  const auto parse_i64 = [&](const std::string& s) -> std::int64_t {
    try {
      return std::stoll(s);
    } catch (const std::exception&) {
      throw ParseError(lineno, "expected an integer, got '" + s + "'");
    }
  };

  {
    const auto toks = tokenize(next_line());
    expect_tokens(toks, 2, "fingerprint");
    if (toks[0] != "fingerprint") {
      throw ParseError(lineno, "expected 'fingerprint'");
    }
    try {
      entry.fingerprint = parse_fingerprint_hex(toks[1]);
    } catch (const std::invalid_argument& e) {
      throw ParseError(lineno, e.what());
    }
  }
  {
    const auto toks = tokenize(next_line());
    expect_tokens(toks, 2, "strategy");
    if (toks[0] != "strategy") {
      throw ParseError(lineno, "expected 'strategy'");
    }
    entry.strategy = toks[1];
  }
  {
    const auto toks = tokenize(next_line());
    expect_tokens(toks, 2, "seed");
    if (toks[0] != "seed") {
      throw ParseError(lineno, "expected 'seed'");
    }
    entry.seed = static_cast<std::uint64_t>(parse_i64(toks[1]));
  }
  std::int64_t processors = 0;
  {
    const auto toks = tokenize(next_line());
    expect_tokens(toks, 2, "processors");
    if (toks[0] != "processors") {
      throw ParseError(lineno, "expected 'processors'");
    }
    processors = parse_i64(toks[1]);
    if (processors < 1) {
      throw ParseError(lineno, "processors must be >= 1");
    }
    entry.processors = processors;
  }
  {
    const auto toks = tokenize(next_line());
    expect_tokens(toks, 3, "budget");
    if (toks[0] != "budget") {
      throw ParseError(lineno, "expected 'budget'");
    }
    entry.max_iterations = static_cast<int>(parse_i64(toks[1]));
    entry.restarts = static_cast<int>(parse_i64(toks[2]));
  }
  {
    // `detail` is free text: everything after the first space, verbatim.
    next_line();
    const std::string prefix = "detail";
    if (line.compare(0, prefix.size(), prefix) != 0) {
      throw ParseError(lineno, "expected 'detail'");
    }
    entry.detail =
        line.size() > prefix.size() + 1 ? line.substr(prefix.size() + 1) : "";
  }
  std::size_t jobs = 0;
  {
    const auto toks = tokenize(next_line());
    expect_tokens(toks, 2, "jobs");
    if (toks[0] != "jobs") {
      throw ParseError(lineno, "expected 'jobs'");
    }
    const std::int64_t n = parse_i64(toks[1]);
    if (n < 0) {
      throw ParseError(lineno, "negative job count");
    }
    jobs = static_cast<std::size_t>(n);
  }

  entry.schedule = StaticSchedule(jobs, processors);
  for (;;) {
    const auto toks = tokenize(next_line());
    if (toks.size() == 1 && toks[0] == "end") {
      return entry;
    }
    expect_tokens(toks, 4, "place");
    if (toks[0] != "place") {
      throw ParseError(lineno, "expected 'place' or 'end'");
    }
    const std::int64_t job = parse_i64(toks[1]);
    const std::int64_t proc = parse_i64(toks[2]);
    if (job < 0 || static_cast<std::size_t>(job) >= jobs) {
      throw ParseError(lineno, "job index out of range");
    }
    if (proc < 0 || proc >= processors) {
      throw ParseError(lineno, "processor index out of range");
    }
    Time start;
    try {
      start = Time() + parse_duration(toks[3]);
    } catch (const std::invalid_argument& e) {
      throw ParseError(lineno, std::string("bad start time: ") + e.what());
    }
    entry.schedule.place(JobId(static_cast<std::size_t>(job)),
                         ProcessorId(static_cast<std::size_t>(proc)), start);
  }
}

ScheduleEntry read_schedule_entry_string(const std::string& text) {
  std::istringstream in(text);
  return read_schedule_entry(in);
}

}  // namespace fppn::io
