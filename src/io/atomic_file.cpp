#include "io/atomic_file.hpp"

#include <fcntl.h>
#include <unistd.h>

#include <atomic>
#include <cerrno>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <stdexcept>
#include <vector>

#include "testing/fault_injector.hpp"

namespace fppn::io {

namespace fs = std::filesystem;

namespace {

/// Full-buffer write with EINTR retry and short-write continuation —
/// POSIX write() may take fewer bytes than offered (signal, quota,
/// near-full disk) without that being an error. Returns false on a hard
/// failure (errno preserved). A transient EINTR is retried forever: the
/// caller owns no deadline here, and the write is local-file I/O.
bool write_all_bytes(int fd, const char* data, std::size_t len) {
  std::size_t off = 0;
  while (off < len) {
    const ssize_t n = testing::fault::file_write(fd, data + off, len - off);
    if (n < 0) {
      if (errno == EINTR) {
        continue;
      }
      return false;
    }
    off += static_cast<std::size_t>(n);
  }
  return true;
}

}  // namespace

void write_file_atomic(const std::string& path, const std::string& content) {
  static std::atomic<unsigned long> write_counter{0};
  const fs::path final_path(path);
  const fs::path tmp_path = final_path.string() + ".tmp." +
                            std::to_string(static_cast<long>(::getpid())) + "." +
                            std::to_string(write_counter.fetch_add(1));
  const int fd = ::open(tmp_path.c_str(), O_WRONLY | O_CREAT | O_TRUNC, 0644);
  if (fd < 0) {
    throw std::runtime_error("cannot write '" + tmp_path.string() + "'");
  }
  const auto discard_tmp = [&tmp_path] {
    std::error_code ec;
    fs::remove(tmp_path, ec);
  };
  if (!write_all_bytes(fd, content.data(), content.size())) {
    ::close(fd);
    discard_tmp();
    throw std::runtime_error("short write to '" + tmp_path.string() +
                             "' (disk full?)");
  }
  // Flush to stable storage before publishing: a rename that survives a
  // crash while its contents did not would be a *torn-by-power* file,
  // exactly what the temp-file dance exists to rule out.
  if (testing::fault::fsync(fd) != 0) {
    ::close(fd);
    discard_tmp();
    throw std::runtime_error("cannot sync '" + tmp_path.string() + "': " +
                             std::strerror(errno));
  }
  if (::close(fd) != 0) {
    discard_tmp();
    throw std::runtime_error("cannot sync '" + tmp_path.string() + "': " +
                             std::strerror(errno));
  }
  if (testing::fault::rename(tmp_path.c_str(), final_path.c_str()) != 0) {
    const int err = errno;
    discard_tmp();
    throw std::runtime_error("cannot rename into '" + final_path.string() +
                             "': " + std::strerror(err));
  }
}

void ensure_directory(const std::string& directory, const std::string& context) {
  std::error_code ec;
  const fs::path dir(directory);
  if (fs::exists(dir, ec)) {
    if (!fs::is_directory(dir, ec)) {
      throw std::runtime_error(context + ": '" + directory +
                               "' exists but is not a directory");
    }
    return;
  }
  if (!dir.parent_path().empty() && !fs::exists(dir.parent_path(), ec)) {
    throw std::runtime_error(context + ": parent of '" + directory +
                             "' does not exist");
  }
  std::error_code create_ec;
  if (!fs::create_directory(dir, create_ec) || create_ec) {
    // A racing process may have created it between the exists() probe and
    // here — losing that race is success, not an error.
    std::error_code probe_ec;
    if (!fs::is_directory(dir, probe_ec)) {
      throw std::runtime_error(context + ": cannot create directory '" + directory +
                               "': " + create_ec.message());
    }
  }
}

std::string make_temp_directory(const std::string& prefix) {
  std::error_code ec;
  const fs::path base = fs::temp_directory_path(ec);
  if (ec) {
    throw std::runtime_error("cannot resolve the system temp directory: " +
                             ec.message());
  }
  std::string templ = (base / (prefix + "XXXXXX")).string();
  std::vector<char> buf(templ.begin(), templ.end());
  buf.push_back('\0');
  if (::mkdtemp(buf.data()) == nullptr) {
    throw std::runtime_error("cannot create temporary directory '" + templ + "'");
  }
  return std::string(buf.data());
}

}  // namespace fppn::io
