#include "io/atomic_file.hpp"

#include <unistd.h>

#include <atomic>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <stdexcept>
#include <vector>

namespace fppn::io {

namespace fs = std::filesystem;

void write_file_atomic(const std::string& path, const std::string& content) {
  static std::atomic<unsigned long> write_counter{0};
  const fs::path final_path(path);
  const fs::path tmp_path = final_path.string() + ".tmp." +
                            std::to_string(static_cast<long>(::getpid())) + "." +
                            std::to_string(write_counter.fetch_add(1));
  {
    std::ofstream out(tmp_path);
    if (!out) {
      throw std::runtime_error("cannot write '" + tmp_path.string() + "'");
    }
    out << content;
    out.flush();
    if (!out.good()) {
      std::error_code ec;
      fs::remove(tmp_path, ec);
      throw std::runtime_error("short write to '" + tmp_path.string() +
                               "' (disk full?)");
    }
  }
  std::error_code ec;
  fs::rename(tmp_path, final_path, ec);
  if (ec) {
    fs::remove(tmp_path, ec);
    throw std::runtime_error("cannot rename into '" + final_path.string() +
                             "': " + ec.message());
  }
}

void ensure_directory(const std::string& directory, const std::string& context) {
  std::error_code ec;
  const fs::path dir(directory);
  if (fs::exists(dir, ec)) {
    if (!fs::is_directory(dir, ec)) {
      throw std::runtime_error(context + ": '" + directory +
                               "' exists but is not a directory");
    }
    return;
  }
  if (!dir.parent_path().empty() && !fs::exists(dir.parent_path(), ec)) {
    throw std::runtime_error(context + ": parent of '" + directory +
                             "' does not exist");
  }
  std::error_code create_ec;
  if (!fs::create_directory(dir, create_ec) || create_ec) {
    // A racing process may have created it between the exists() probe and
    // here — losing that race is success, not an error.
    std::error_code probe_ec;
    if (!fs::is_directory(dir, probe_ec)) {
      throw std::runtime_error(context + ": cannot create directory '" + directory +
                               "': " + create_ec.message());
    }
  }
}

std::string make_temp_directory(const std::string& prefix) {
  std::error_code ec;
  const fs::path base = fs::temp_directory_path(ec);
  if (ec) {
    throw std::runtime_error("cannot resolve the system temp directory: " +
                             ec.message());
  }
  std::string templ = (base / (prefix + "XXXXXX")).string();
  std::vector<char> buf(templ.begin(), templ.end());
  buf.push_back('\0');
  if (::mkdtemp(buf.data()) == nullptr) {
    throw std::runtime_error("cannot create temporary directory '" + templ + "'");
  }
  return std::string(buf.data());
}

}  // namespace fppn::io
