// Versioned text serialization of schedule-cache entries — the on-disk
// format behind sched::ScheduleCache (see docs/FILE_FORMATS.md for the
// grammar and an annotated example).
//
// One entry is one StaticSchedule plus the provenance needed to verify the
// entry still matches the query that produced it: graph fingerprint,
// strategy name, seed, processor count, search budget and the strategy's
// human-readable detail line. Line-oriented; starts with the magic/version
// line "fppn-schedule v1" and ends with "end". Rationals use the same
// "25" / "40/3" spelling as the .fppn network format, so placements
// round-trip exactly (canonical numerator/denominator).
//
// Deterministic: write_schedule_entry is a pure function of the entry;
// read(write(e)) reproduces every field bit-identically.
// Thread safety: both functions are stateless and safe to call
// concurrently; callers synchronize access to shared streams themselves.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <string>

#include "io/text_format.hpp"
#include "sched/static_schedule.hpp"

namespace fppn::io {

/// Current entry-format version, written as "fppn-schedule v<N>". Readers
/// reject every other version (the cache treats that as a miss and
/// rewrites the entry).
constexpr int kScheduleFormatVersion = 1;

/// One cache entry: a schedule plus its provenance.
struct ScheduleEntry {
  std::uint64_t fingerprint = 0;   ///< taskgraph fingerprint (16 hex digits)
  std::string strategy;            ///< producing strategy's registry name
  std::uint64_t seed = 0;          ///< seed the strategy ran with
  std::int64_t processors = 0;     ///< processor count scheduled for
  int max_iterations = 0;          ///< iteration budget of the search
  int restarts = 0;                ///< restart budget of the search
  std::string detail;              ///< StrategyResult::detail, verbatim
  StaticSchedule schedule;
};

/// Renders an entry in format version kScheduleFormatVersion. Never throws.
[[nodiscard]] std::string write_schedule_entry(const ScheduleEntry& entry);

/// Parses one entry and consumes the stream to its end. Throws ParseError
/// (with a 1-based line number) on a wrong magic/version line, malformed
/// or missing fields, out-of-range placements, a missing "end" trailer
/// (truncation guard), or any non-blank content after "end" — a
/// truncated-then-concatenated file must not half-parse.
[[nodiscard]] ScheduleEntry read_schedule_entry(std::istream& in);
[[nodiscard]] ScheduleEntry read_schedule_entry_string(const std::string& text);

}  // namespace fppn::io
