#include "io/cache_index.hpp"

#include <algorithm>
#include <set>
#include <sstream>

#include "io/line_parser.hpp"

namespace fppn::io {

void CacheIndex::touch(const std::string& file) {
  const auto it = std::find_if(entries.begin(), entries.end(),
                               [&](const CacheIndexEntry& e) { return e.file == file; });
  if (it != entries.end()) {
    it->sequence = next_sequence;
  } else {
    entries.push_back(CacheIndexEntry{next_sequence, file});
  }
  ++next_sequence;
}

bool CacheIndex::erase(const std::string& file) {
  const auto it = std::find_if(entries.begin(), entries.end(),
                               [&](const CacheIndexEntry& e) { return e.file == file; });
  if (it == entries.end()) {
    return false;
  }
  entries.erase(it);
  return true;
}

std::vector<CacheIndexEntry> CacheIndex::oldest_first() const {
  std::vector<CacheIndexEntry> out = entries;
  std::sort(out.begin(), out.end(),
            [](const CacheIndexEntry& a, const CacheIndexEntry& b) {
              if (a.sequence != b.sequence) {
                return a.sequence < b.sequence;
              }
              return a.file < b.file;
            });
  return out;
}

std::string write_cache_index(const CacheIndex& index) {
  std::ostringstream out;
  out << "fppn-cache-index v" << kCacheIndexVersion << '\n';
  out << "sequence " << index.next_sequence << '\n';
  out << "entries " << index.entries.size() << '\n';
  for (const CacheIndexEntry& e : index.entries) {
    out << "entry " << e.sequence << ' ' << e.file << '\n';
  }
  out << "end\n";
  return out.str();
}

CacheIndex read_cache_index(std::istream& in) {
  detail::LineParser parser(in);
  constexpr const char* kEof = "unexpected end of cache index (no 'end' trailer?)";

  {
    const auto toks = parser.next_tokens(kEof);
    if (toks.size() != 2 || toks[0] != "fppn-cache-index" ||
        toks[1] != "v" + std::to_string(kCacheIndexVersion)) {
      throw ParseError(parser.lineno(), "expected header 'fppn-cache-index v" +
                                            std::to_string(kCacheIndexVersion) + "'");
    }
  }

  CacheIndex index;
  {
    const auto toks = parser.next_tokens(kEof);
    parser.expect_tokens(toks, 2, "sequence");
    if (toks[0] != "sequence") {
      throw ParseError(parser.lineno(), "expected 'sequence'");
    }
    index.next_sequence = parser.parse_u64(toks[1]);
  }
  std::size_t count = 0;
  {
    const auto toks = parser.next_tokens(kEof);
    parser.expect_tokens(toks, 2, "entries");
    if (toks[0] != "entries") {
      throw ParseError(parser.lineno(), "expected 'entries'");
    }
    const std::int64_t n = parser.parse_i64(toks[1]);
    if (n < 0) {
      throw ParseError(parser.lineno(), "negative entry count");
    }
    count = static_cast<std::size_t>(n);
  }

  std::set<std::string> seen;
  index.entries.reserve(count);
  for (std::size_t i = 0; i < count; ++i) {
    const auto toks = parser.next_tokens(kEof);
    parser.expect_tokens(toks, 3, "entry");
    if (toks[0] != "entry") {
      throw ParseError(parser.lineno(), "expected 'entry'");
    }
    CacheIndexEntry e;
    e.sequence = parser.parse_u64(toks[1]);
    e.file = toks[2];
    if (!seen.insert(e.file).second) {
      throw ParseError(parser.lineno(), "duplicate index entry '" + e.file + "'");
    }
    index.entries.push_back(std::move(e));
  }

  {
    const auto toks = parser.next_tokens(kEof);
    if (toks.size() != 1 || toks[0] != "end") {
      throw ParseError(parser.lineno(), "expected 'end'");
    }
  }
  parser.reject_trailing_content();
  return index;
}

CacheIndex read_cache_index_string(const std::string& text) {
  std::istringstream in(text);
  return read_cache_index(in);
}

}  // namespace fppn::io
