#include "io/shard_manifest.hpp"

#include <sstream>
#include <stdexcept>

#include "io/line_parser.hpp"
#include "taskgraph/fingerprint.hpp"

namespace fppn::io {

std::string shard_manifest_filename(int shard_index, int shard_count) {
  if (shard_index < 0 || shard_index >= shard_count) {
    throw std::invalid_argument("shard_manifest_filename: index " +
                                std::to_string(shard_index) + " not in [0, " +
                                std::to_string(shard_count) + ")");
  }
  return "shard-" + std::to_string(shard_index) + "-of-" +
         std::to_string(shard_count) + ".manifest";
}

std::string write_shard_manifest(const ShardManifest& manifest) {
  std::ostringstream out;
  out << "fppn-shards v" << kShardManifestVersion << '\n';
  out << "fingerprint " << fingerprint_hex(manifest.fingerprint) << '\n';
  out << "shard " << manifest.shard_index << ' ' << manifest.shard_count << '\n';
  out << "processors " << manifest.processors << '\n';
  out << "budget " << manifest.max_iterations << ' ' << manifest.restarts << '\n';
  out << "stats " << manifest.evaluated << ' ' << manifest.cache_hits << '\n';
  out << "candidates " << manifest.candidates.size() << '\n';
  for (const ShardManifestEntry& c : manifest.candidates) {
    out << "candidate " << c.strategy << ' ' << c.seed << ' ' << c.file << '\n';
  }
  out << "end\n";
  return out.str();
}

ShardManifest read_shard_manifest(std::istream& in) {
  detail::LineParser parser(in);
  constexpr const char* kEof = "unexpected end of shard manifest (no 'end' trailer?)";

  // Magic/version first: anything else means "not a (current) manifest".
  {
    const auto toks = parser.next_tokens(kEof);
    if (toks.size() != 2 || toks[0] != "fppn-shards" ||
        toks[1] != "v" + std::to_string(kShardManifestVersion)) {
      throw ParseError(parser.lineno(), "expected header 'fppn-shards v" +
                                            std::to_string(kShardManifestVersion) +
                                            "'");
    }
  }

  ShardManifest manifest;
  {
    const auto toks = parser.next_tokens(kEof);
    parser.expect_tokens(toks, 2, "fingerprint");
    if (toks[0] != "fingerprint") {
      throw ParseError(parser.lineno(), "expected 'fingerprint'");
    }
    try {
      manifest.fingerprint = parse_fingerprint_hex(toks[1]);
    } catch (const std::invalid_argument& e) {
      throw ParseError(parser.lineno(), e.what());
    }
  }
  {
    const auto toks = parser.next_tokens(kEof);
    parser.expect_tokens(toks, 3, "shard");
    if (toks[0] != "shard") {
      throw ParseError(parser.lineno(), "expected 'shard'");
    }
    manifest.shard_index = static_cast<int>(parser.parse_i64(toks[1]));
    manifest.shard_count = static_cast<int>(parser.parse_i64(toks[2]));
    if (manifest.shard_count < 1 || manifest.shard_index < 0 ||
        manifest.shard_index >= manifest.shard_count) {
      throw ParseError(parser.lineno(), "shard index out of range");
    }
  }
  {
    const auto toks = parser.next_tokens(kEof);
    parser.expect_tokens(toks, 2, "processors");
    if (toks[0] != "processors") {
      throw ParseError(parser.lineno(), "expected 'processors'");
    }
    manifest.processors = parser.parse_i64(toks[1]);
    if (manifest.processors < 1) {
      throw ParseError(parser.lineno(), "processors must be >= 1");
    }
  }
  {
    const auto toks = parser.next_tokens(kEof);
    parser.expect_tokens(toks, 3, "budget");
    if (toks[0] != "budget") {
      throw ParseError(parser.lineno(), "expected 'budget'");
    }
    manifest.max_iterations = static_cast<int>(parser.parse_i64(toks[1]));
    manifest.restarts = static_cast<int>(parser.parse_i64(toks[2]));
  }
  {
    const auto toks = parser.next_tokens(kEof);
    parser.expect_tokens(toks, 3, "stats");
    if (toks[0] != "stats") {
      throw ParseError(parser.lineno(), "expected 'stats'");
    }
    const std::int64_t evaluated = parser.parse_i64(toks[1]);
    const std::int64_t cache_hits = parser.parse_i64(toks[2]);
    if (evaluated < 0 || cache_hits < 0) {
      throw ParseError(parser.lineno(), "negative stats counter");
    }
    manifest.evaluated = static_cast<std::size_t>(evaluated);
    manifest.cache_hits = static_cast<std::size_t>(cache_hits);
  }
  std::size_t count = 0;
  {
    const auto toks = parser.next_tokens(kEof);
    parser.expect_tokens(toks, 2, "candidates");
    if (toks[0] != "candidates") {
      throw ParseError(parser.lineno(), "expected 'candidates'");
    }
    const std::int64_t n = parser.parse_i64(toks[1]);
    if (n < 0) {
      throw ParseError(parser.lineno(), "negative candidate count");
    }
    count = static_cast<std::size_t>(n);
  }

  for (std::size_t i = 0; i < count; ++i) {
    const auto toks = parser.next_tokens(kEof);
    parser.expect_tokens(toks, 4, "candidate");
    if (toks[0] != "candidate") {
      throw ParseError(parser.lineno(), "expected 'candidate'");
    }
    ShardManifestEntry c;
    c.strategy = toks[1];
    c.seed = parser.parse_u64(toks[2]);
    c.file = toks[3];
    manifest.candidates.push_back(std::move(c));
  }

  {
    const auto toks = parser.next_tokens(kEof);
    if (toks.size() != 1 || toks[0] != "end") {
      throw ParseError(parser.lineno(), "expected 'end' after " +
                                            std::to_string(count) +
                                            " candidate line(s)");
    }
  }
  parser.reject_trailing_content();
  return manifest;
}

ShardManifest read_shard_manifest_string(const std::string& text) {
  std::istringstream in(text);
  return read_shard_manifest(in);
}

}  // namespace fppn::io
