// Shared scaffolding for the line-oriented text formats (schedule
// entries, shard manifests): 1-based line counting for ParseError
// positions, whitespace tokenization, checked integer parses, and the
// trailing-garbage guard after an "end" trailer. Header-only; one
// instance parses one stream.
#pragma once

#include <cstdint>
#include <istream>
#include <sstream>
#include <string>
#include <vector>

#include "io/text_format.hpp"

namespace fppn::io::detail {

class LineParser {
 public:
  explicit LineParser(std::istream& in) : in_(in) {}

  /// Splits a line into whitespace-separated tokens.
  [[nodiscard]] static std::vector<std::string> tokenize(const std::string& line) {
    std::vector<std::string> out;
    std::istringstream in(line);
    std::string tok;
    while (in >> tok) {
      out.push_back(tok);
    }
    return out;
  }

  /// Reads the next line; throws ParseError(`eof_message`) at EOF.
  const std::string& next_line(const char* eof_message) {
    if (!std::getline(in_, line_)) {
      throw ParseError(lineno_, eof_message);
    }
    ++lineno_;
    return line_;
  }

  /// next_line + tokenize in one step.
  [[nodiscard]] std::vector<std::string> next_tokens(const char* eof_message) {
    return tokenize(next_line(eof_message));
  }

  void expect_tokens(const std::vector<std::string>& toks, std::size_t n,
                     const char* what) const {
    if (toks.size() != n) {
      throw ParseError(lineno_, std::string("malformed ") + what + " line");
    }
  }

  /// Whole-token signed integer, exactly the documented grammar
  /// `-?[0-9]+` — no writer emits a leading '+' (or anything else stoll
  /// tolerates, like "0x"-prefixed digits), so readers must not accept
  /// one; mirrors parse_u64's sign check. Throws ParseError otherwise.
  [[nodiscard]] std::int64_t parse_i64(const std::string& s) const {
    try {
      if (!s.empty() && s[0] == '+') {
        throw std::invalid_argument(s);
      }
      std::size_t used = 0;
      const std::int64_t v = std::stoll(s, &used);
      if (used != s.size()) {
        throw std::invalid_argument(s);
      }
      return v;
    } catch (const std::exception&) {
      throw ParseError(lineno_, "expected an integer, got '" + s + "'");
    }
  }

  /// Whole-token unsigned integer, full uint64 range (seeds are uint64:
  /// a reader must accept everything the writer emits); throws
  /// ParseError otherwise.
  [[nodiscard]] std::uint64_t parse_u64(const std::string& s) const {
    try {
      if (!s.empty() && (s[0] == '-' || s[0] == '+')) {
        throw std::invalid_argument(s);
      }
      std::size_t used = 0;
      const std::uint64_t v = std::stoull(s, &used);
      if (used != s.size()) {
        throw std::invalid_argument(s);
      }
      return v;
    } catch (const std::exception&) {
      throw ParseError(lineno_, "expected an unsigned integer, got '" + s + "'");
    }
  }

  /// Consumes the rest of the stream; any non-blank line is a ParseError
  /// — a truncated-then-concatenated file must not half-parse.
  void reject_trailing_content() {
    while (std::getline(in_, line_)) {
      ++lineno_;
      if (!tokenize(line_).empty()) {
        throw ParseError(lineno_, "trailing content after 'end'");
      }
    }
  }

  /// Most recently read raw line (for free-text fields).
  [[nodiscard]] const std::string& line() const noexcept { return line_; }
  [[nodiscard]] std::size_t lineno() const noexcept { return lineno_; }

 private:
  std::istream& in_;
  std::size_t lineno_ = 0;
  std::string line_;
};

}  // namespace fppn::io::detail
