// net::Listener — the one socket-transport abstraction of the serving
// stack: a listening endpoint over a Unix-domain path *or* a TCP
// host:port, behind one RAII type, so the reactor, the daemon wiring and
// the tests never branch on the address family.
//
// Endpoints parse from the daemon's flag syntax ("--socket PATH" /
// "--listen HOST:PORT"); TCP port 0 binds an ephemeral port and
// endpoint() reports the bound one, which is what lets tests and CI run
// without reserving ports. Listening sockets are always non-blocking
// (several pollers may race for one connection; a lost race is EAGAIN,
// never a stall), and a Unix listener owns its socket file: the stale
// path is cleared before bind and unlinked again on close, the daemon
// contract since PR 8.
//
// Thread safety: a Listener is plain state — confine it to one thread
// (the reactor). connect_endpoint() is a free function usable from any
// thread (client mode, tests, benches).
#pragma once

#include <cstdint>
#include <string>

namespace fppn {
namespace net {

/// A serve endpoint: a Unix-domain socket path or a TCP host:port.
struct Endpoint {
  enum class Kind { kUnix, kTcp };

  Kind kind = Kind::kUnix;
  std::string path;         ///< Unix socket path (kUnix)
  std::string host;         ///< numeric IPv4 or resolvable name (kTcp)
  std::uint16_t port = 0;   ///< kTcp; 0 = bind an ephemeral port

  [[nodiscard]] static Endpoint unix_socket(std::string socket_path);
  [[nodiscard]] static Endpoint tcp(std::string host, std::uint16_t port);

  /// Parses the "--listen HOST:PORT" syntax ("127.0.0.1:7777",
  /// "localhost:0"). Throws std::invalid_argument with the offending
  /// text for a missing host, missing ':', or a port outside 0..65535.
  [[nodiscard]] static Endpoint parse_tcp(const std::string& text);

  /// "unix:'<path>'" or "tcp <host>:<port>" — log/error rendering.
  [[nodiscard]] std::string describe() const;
};

/// RAII non-blocking listening socket over either endpoint kind.
class Listener {
 public:
  /// Binds and listens. Unix: clears a stale socket file first (the
  /// daemon owns its path) and rejects over-long paths. TCP: resolves
  /// `host` (numeric service), sets SO_REUSEADDR, and reports the bound
  /// port through endpoint() when 0 was requested. Throws
  /// std::runtime_error naming the endpoint and the OS error.
  [[nodiscard]] static Listener listen(const Endpoint& endpoint, int backlog = 64);

  Listener(Listener&& other) noexcept;
  Listener& operator=(Listener&& other) noexcept;
  Listener(const Listener&) = delete;
  Listener& operator=(const Listener&) = delete;
  ~Listener();

  [[nodiscard]] int fd() const noexcept { return fd_; }

  /// The listening endpoint; for TCP the port is the actually-bound one.
  [[nodiscard]] const Endpoint& endpoint() const noexcept { return endpoint_; }

  /// Accepts one pending connection and makes it non-blocking. Returns
  /// the connection fd, or -1 when none is ready (EAGAIN/EINTR/
  /// ECONNABORTED — transient, poll again) or the listener is unusable.
  [[nodiscard]] int accept_connection() const;

  /// Closes the socket; a Unix listener unlinks its path. Idempotent.
  void close();

 private:
  Listener(int fd, Endpoint endpoint) : fd_(fd), endpoint_(std::move(endpoint)) {}

  int fd_ = -1;
  Endpoint endpoint_;
};

/// Blocking client connect to `endpoint`. Returns the connected fd, or
/// -1 with errno describing the failure — callers render their own
/// message (the daemon's client mode has a pinned format).
[[nodiscard]] int connect_endpoint(const Endpoint& endpoint);

}  // namespace net
}  // namespace fppn
