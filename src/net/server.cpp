#include "net/server.hpp"

#include <cstring>
#include <utility>

namespace fppn {
namespace net {

namespace {

using Clock = std::chrono::steady_clock;

double ms_since(Clock::time_point begin) {
  return std::chrono::duration<double, std::milli>(Clock::now() - begin).count();
}

}  // namespace

Server::Server(ServerOptions options, ServerProtocol protocol, Handler handler)
    : options_(options),
      protocol_(std::move(protocol)),
      handler_(std::move(handler)),
      queue_(options.queue_capacity),
      reactor_(
          Reactor::Events{
              /*on_request=*/
              [this](std::uint64_t conn, std::string request) {
                Job job;
                job.conn = conn;
                job.request = std::move(request);
                job.enqueued = Clock::now();
                if (!queue_.try_push(std::move(job))) {
                  reactor_.submit_response(
                      conn, protocol_.overloaded ? protocol_.overloaded()
                                                 : std::string("error: overloaded\n"));
                }
              },
              /*on_oversized=*/
              [this](std::uint64_t conn, std::size_t bytes) {
                reactor_.submit_response(
                    conn, protocol_.oversized ? protocol_.oversized(bytes)
                                              : std::string("error: request too large\n"));
              },
              /*on_read_error=*/
              [this](std::uint64_t conn, int error) {
                reactor_.submit_response(
                    conn, protocol_.read_error
                              ? protocol_.read_error(error)
                              : std::string("error: request read failed: ") +
                                    std::strerror(error) + "\n");
              },
              /*on_drain=*/
              [this] { queue_.close(); },
          },
          Reactor::Options{options.max_request_bytes}) {
  if (options_.stop_fd >= 0) {
    reactor_.watch_stop_fd(options_.stop_fd);
  }
}

void Server::add_listener(Listener listener) {
  reactor_.add_listener(std::move(listener));
}

void Server::solver_loop() {
  while (auto job = queue_.pop()) {
    const double queue_wait_ms = ms_since(job->enqueued);
    std::string response = handler_ ? handler_(std::move(job->request), queue_wait_ms)
                                    : std::string();
    reactor_.submit_response(job->conn, std::move(response));
  }
}

void Server::run() {
  std::vector<std::thread> solvers;
  const int threads = options_.solver_threads < 1 ? 1 : options_.solver_threads;
  solvers.reserve(static_cast<std::size_t>(threads));
  for (int i = 0; i < threads; ++i) {
    solvers.emplace_back(&Server::solver_loop, this);
  }
  // The reactor returns only once drained: every dispatched request has
  // been answered and written (solver completions keep waking it).
  reactor_.run();
  queue_.close();  // belt and braces; the drain already closed it
  for (std::thread& t : solvers) {
    t.join();
  }
}

}  // namespace net
}  // namespace fppn
