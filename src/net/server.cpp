#include "net/server.hpp"

#include <cstring>
#include <utility>

namespace fppn {
namespace net {

namespace {

using Clock = std::chrono::steady_clock;

double ms_since(Clock::time_point begin) {
  return std::chrono::duration<double, std::milli>(Clock::now() - begin).count();
}

}  // namespace

Server::Server(ServerOptions options, ServerProtocol protocol, Handler handler)
    : options_(options),
      protocol_(std::move(protocol)),
      handler_(std::move(handler)),
      queue_(options.queue_capacity),
      reactor_(
          Reactor::Events{
              /*on_request=*/
              [this](std::uint64_t conn, std::string request) {
                Job job;
                job.conn = conn;
                job.request = std::move(request);
                job.enqueued = Clock::now();
                if (!queue_.try_push(std::move(job))) {
                  reactor_.submit_response(
                      conn, protocol_.overloaded ? protocol_.overloaded()
                                                 : std::string("error: overloaded\n"));
                }
              },
              /*on_oversized=*/
              [this](std::uint64_t conn, std::size_t bytes) {
                reactor_.submit_response(
                    conn, protocol_.oversized ? protocol_.oversized(bytes)
                                              : std::string("error: request too large\n"));
              },
              /*on_read_error=*/
              [this](std::uint64_t conn, int error) {
                reactor_.submit_response(
                    conn, protocol_.read_error
                              ? protocol_.read_error(error)
                              : std::string("error: request read failed: ") +
                                    std::strerror(error) + "\n");
              },
              /*on_timeout=*/
              [this](std::uint64_t, Reactor::TimeoutKind kind) {
                if (protocol_.timed_out) {
                  protocol_.timed_out(kind);
                }
              },
              /*on_drain=*/
              [this] { queue_.close(); },
          },
          Reactor::Options{options.max_request_bytes, options.idle_timeout_ms,
                           options.request_timeout_ms, options.write_timeout_ms}) {
  if (options_.stop_fd >= 0) {
    reactor_.watch_stop_fd(options_.stop_fd);
  }
}

void Server::add_listener(Listener listener) {
  reactor_.add_listener(std::move(listener));
}

void Server::solver_loop() {
  while (auto job = queue_.pop()) {
    RequestInfo info;
    info.queue_wait_ms = ms_since(job->enqueued);
    info.queue_depth = queue_.size();
    info.queue_capacity = options_.queue_capacity;
    if (options_.queue_deadline_ms > 0 &&
        info.queue_wait_ms > static_cast<double>(options_.queue_deadline_ms)) {
      // Stale-work shedding: the deadline passed while queued, so answer
      // without burning a solver slot on it.
      reactor_.submit_response(
          job->conn, protocol_.deadline_exceeded
                         ? protocol_.deadline_exceeded()
                         : std::string("error: deadline exceeded\n"));
      continue;
    }
    std::string response =
        handler_ ? handler_(std::move(job->request), info) : std::string();
    reactor_.submit_response(job->conn, std::move(response));
  }
}

void Server::run() {
  std::vector<std::thread> solvers;
  const int threads = options_.solver_threads < 1 ? 1 : options_.solver_threads;
  solvers.reserve(static_cast<std::size_t>(threads));
  for (int i = 0; i < threads; ++i) {
    solvers.emplace_back(&Server::solver_loop, this);
  }
  // The reactor returns only once drained: every dispatched request has
  // been answered and written (solver completions keep waking it).
  reactor_.run();
  queue_.close();  // belt and braces; the drain already closed it
  for (std::thread& t : solvers) {
    t.join();
  }
}

}  // namespace net
}  // namespace fppn
