// net::Reactor — the single-threaded event loop of the serving stack: a
// poll(2) loop driving every listener and every connection as a
// non-blocking state machine, so thousands of idle or slow connections
// cost one pollfd each instead of one thread each (PR 8's
// thread-per-connection daemon inverted).
//
// Connection lifecycle (one request per connection, EOF-framed):
//
//   accept -> kReading   read chunks until the peer half-closes (EOF).
//               |        A hard read() error or an over-limit request
//               |        raises on_read_error / on_oversized instead of
//               |        ever dispatching truncated bytes.
//               v
//          kAwaiting     the full request was handed to on_request();
//               |        the connection waits (unpolled) for
//               |        submit_response() from any thread.
//               v
//           kWriting     non-blocking writes until the response is out,
//               |        then close. Oversized connections keep reading
//               v        and discarding in parallel so a mid-send client
//            closed      is never deadlocked against its own error.
//
// The callbacks run on the reactor thread and may call submit_response()
// synchronously (responses are queued and applied at the loop top).
// submit_response() and request_stop() are the only thread-safe entry
// points — everything else is reactor-thread state.
//
// Deadlines: three optional per-connection timers (Options, all in ms,
// 0 = off) arm a lazy min-heap whose earliest entry drives the poll
// timeout — with no deadline armed the loop still blocks forever, so
// the timerless configuration behaves exactly as before:
//
//   idle     accept -> first request byte   (a connected-but-silent peer)
//   request  first byte -> complete request (a slow-loris trickler)
//   write    no write progress while flushing (a never-draining reader)
//
// An expired connection is counted (Counters::*_timeouts), reported via
// on_timeout, and closed — mid-read there is nothing to answer, and a
// stalled reader would never take an answer anyway. Requests already
// dispatched (kAwaiting) carry no reactor deadline: queue-level shedding
// in net::Server owns that window. The write deadline is progress-based —
// every successful write re-arms it — so a huge response to a slow-but-
// draining reader survives while a stalled one is cut.
//
// Shutdown: request_stop() (or a readable stop fd, the daemon's
// self-pipe) begins the drain — listeners close first, connections still
// reading are dropped, and the loop runs on until every dispatched
// request has had its response written. run() returning therefore means
// "drained", not merely "stopped".
#pragma once

#include <chrono>
#include <cstddef>
#include <cstdint>
#include <functional>
#include <map>
#include <mutex>
#include <string>
#include <utility>
#include <vector>

#include "net/listener.hpp"

namespace fppn {
namespace net {

class Reactor {
 public:
  /// Which per-connection deadline expired (see the file comment).
  enum class TimeoutKind {
    kIdle,     ///< accepted, no request byte within idle_timeout_ms
    kRequest,  ///< request started, not complete within request_timeout_ms
    kWrite,    ///< no write progress within write_timeout_ms
  };

  /// Event hooks, all invoked on the reactor thread. on_request hands
  /// over the complete request text; the other two report a connection
  /// whose request can never complete — the receiver decides the error
  /// response (submit_response) or lets the connection die silently.
  struct Events {
    std::function<void(std::uint64_t conn, std::string request)> on_request;
    std::function<void(std::uint64_t conn, std::size_t bytes)> on_oversized;
    std::function<void(std::uint64_t conn, int error)> on_read_error;
    /// A deadline expired; the connection is closed right after this
    /// returns (notification only — there is no peer left to answer).
    std::function<void(std::uint64_t conn, TimeoutKind kind)> on_timeout;
    /// The drain began: listeners are gone, no new requests will arrive.
    std::function<void()> on_drain;
  };

  struct Options {
    /// Requests larger than this raise on_oversized; 0 = unlimited.
    std::size_t max_request_bytes = 0;
    int idle_timeout_ms = 0;     ///< accept -> first byte; 0 = off
    int request_timeout_ms = 0;  ///< first byte -> full request; 0 = off
    int write_timeout_ms = 0;    ///< stalled response write; 0 = off
  };

  /// Monotonic counters, written only by the reactor thread; read them
  /// after run() returns (or from the callbacks).
  struct Counters {
    std::uint64_t accepted = 0;      ///< connections accepted
    std::uint64_t requests = 0;      ///< complete requests dispatched
    std::uint64_t oversized = 0;     ///< requests rejected by the size cap
    std::uint64_t read_errors = 0;   ///< hard read() failures
    std::uint64_t write_errors = 0;  ///< responses the peer never took
    std::uint64_t aborted = 0;       ///< reading connections dropped by drain
    std::uint64_t idle_timeouts = 0;     ///< closed: silent after accept
    std::uint64_t request_timeouts = 0;  ///< closed: request never completed
    std::uint64_t write_timeouts = 0;    ///< closed: response write stalled
  };

  Reactor(Events events, Options options)
      : events_(std::move(events)), options_(options) {}
  Reactor(const Reactor&) = delete;
  Reactor& operator=(const Reactor&) = delete;

  /// Adds a listening socket (before run()). The reactor owns it and
  /// closes it (unlinking a Unix path) when the drain begins.
  void add_listener(Listener listener);

  /// Watches `fd` (not owned); readable => begin the drain. The fd is
  /// never read, matching the daemon's never-drained self-pipe.
  void watch_stop_fd(int fd) { stop_fd_ = fd; }

  /// Queues the response for `conn` and wakes the loop. Thread-safe;
  /// a response for an already-closed connection is dropped silently.
  void submit_response(std::uint64_t conn, std::string text);

  /// Begins the drain from any thread (idempotent).
  void request_stop();

  /// The event loop: blocks until drained (see file comment).
  void run();

  [[nodiscard]] const Counters& counters() const noexcept { return counters_; }

 private:
  using Clock = std::chrono::steady_clock;

  enum class ConnState {
    kReading,   ///< accumulating request bytes
    kAwaiting,  ///< request dispatched; response not yet submitted
    kWriting,   ///< response flushing
  };

  struct Connection {
    int fd = -1;
    ConnState state = ConnState::kReading;
    std::string request;
    std::string response;
    std::size_t write_offset = 0;
    /// Keep reading and discarding (oversized request): the peer may be
    /// blocked mid-send, and draining its bytes is what unblocks it.
    bool discard_input = false;
    bool saw_eof = false;
    bool saw_request_byte = false;  ///< idle -> request deadline transition
    /// Armed deadline (valid when deadline_seq != 0). deadline_seq pairs
    /// the connection with its live heap entry — re-arming bumps it, so
    /// stale heap entries are recognized and skipped (lazy deletion).
    Clock::time_point deadline{};
    TimeoutKind deadline_kind = TimeoutKind::kIdle;
    std::uint64_t deadline_seq = 0;
  };

  /// Lazy min-heap entry: (when, conn, seq). An entry whose connection is
  /// gone or whose seq no longer matches is skipped on pop.
  struct DeadlineEntry {
    Clock::time_point when;
    std::uint64_t conn = 0;
    std::uint64_t seq = 0;
  };

  void open_wakeup_pipe();
  void wake();
  void apply_pending_responses();
  void begin_drain();
  void accept_ready(const Listener& listener);
  void handle_readable(std::uint64_t id, Connection& conn);
  void handle_writable(std::uint64_t id, Connection& conn);
  void close_connection(std::uint64_t id);

  /// Arms (timeout_ms > 0) or clears (timeout_ms <= 0) `conn`'s deadline.
  void set_deadline(std::uint64_t id, Connection& conn, TimeoutKind kind,
                    int timeout_ms);
  /// Drops stale heap tops; returns the poll timeout in ms (-1 = none).
  int next_deadline_timeout_ms();
  /// Counts, reports and closes every connection whose deadline passed.
  void expire_deadlines();

  Events events_;
  Options options_;
  std::vector<Listener> listeners_;
  int stop_fd_ = -1;
  int wakeup_read_ = -1;
  int wakeup_write_ = -1;

  std::map<std::uint64_t, Connection> connections_;
  std::uint64_t next_id_ = 1;
  bool draining_ = false;
  Counters counters_;
  std::vector<DeadlineEntry> deadlines_;  ///< std::*_heap min-heap by `when`
  std::uint64_t next_deadline_seq_ = 1;

  std::mutex mu_;
  std::vector<std::pair<std::uint64_t, std::string>> pending_responses_;
  bool stop_requested_ = false;

  /// Connections closed mid-iteration (write error during dispatch);
  /// erased at the loop top so iterators stay valid.
  std::vector<std::uint64_t> dead_;
};

}  // namespace net
}  // namespace fppn
