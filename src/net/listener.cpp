#include "net/listener.hpp"

#include <arpa/inet.h>
#include <fcntl.h>
#include <netdb.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <stdexcept>
#include <utility>

#include "testing/fault_injector.hpp"

namespace fppn {
namespace net {

namespace {

void set_nonblocking(int fd) {
  const int flags = ::fcntl(fd, F_GETFL, 0);
  if (flags >= 0) {
    (void)::fcntl(fd, F_SETFL, flags | O_NONBLOCK);
  }
}

sockaddr_un unix_address(const std::string& path) {
  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  if (path.size() >= sizeof(addr.sun_path)) {
    throw std::runtime_error("socket path too long: '" + path + "'");
  }
  std::memcpy(addr.sun_path, path.c_str(), path.size() + 1);
  return addr;
}

/// getaddrinfo wrapper (numeric service, IPv4-first): one resolved
/// address or a thrown std::runtime_error naming the failure.
struct ResolvedAddress {
  sockaddr_storage storage{};
  socklen_t length = 0;
  int family = AF_INET;
};

ResolvedAddress resolve_tcp(const std::string& host, std::uint16_t port, bool passive) {
  addrinfo hints{};
  hints.ai_family = AF_UNSPEC;
  hints.ai_socktype = SOCK_STREAM;
  hints.ai_flags = AI_NUMERICSERV | (passive ? AI_PASSIVE : 0);
  addrinfo* list = nullptr;
  const std::string service = std::to_string(port);
  const int rc = ::getaddrinfo(host.empty() ? nullptr : host.c_str(), service.c_str(),
                               &hints, &list);
  if (rc != 0) {
    throw std::runtime_error("cannot resolve '" + host + "': " + ::gai_strerror(rc));
  }
  // Prefer IPv4: the daemon's flag syntax is HOST:PORT, which cannot
  // express bracketed IPv6 literals anyway.
  const addrinfo* chosen = list;
  for (const addrinfo* ai = list; ai != nullptr; ai = ai->ai_next) {
    if (ai->ai_family == AF_INET) {
      chosen = ai;
      break;
    }
  }
  ResolvedAddress out;
  out.length = static_cast<socklen_t>(chosen->ai_addrlen);
  out.family = chosen->ai_family;
  std::memcpy(&out.storage, chosen->ai_addr, chosen->ai_addrlen);
  ::freeaddrinfo(list);
  return out;
}

std::uint16_t bound_port(int fd) {
  sockaddr_storage addr{};
  socklen_t len = sizeof(addr);
  if (::getsockname(fd, reinterpret_cast<sockaddr*>(&addr), &len) != 0) {
    return 0;
  }
  if (addr.ss_family == AF_INET) {
    return ntohs(reinterpret_cast<const sockaddr_in&>(addr).sin_port);
  }
  if (addr.ss_family == AF_INET6) {
    return ntohs(reinterpret_cast<const sockaddr_in6&>(addr).sin6_port);
  }
  return 0;
}

}  // namespace

Endpoint Endpoint::unix_socket(std::string socket_path) {
  Endpoint ep;
  ep.kind = Kind::kUnix;
  ep.path = std::move(socket_path);
  return ep;
}

Endpoint Endpoint::tcp(std::string host, std::uint16_t port) {
  Endpoint ep;
  ep.kind = Kind::kTcp;
  ep.host = std::move(host);
  ep.port = port;
  return ep;
}

Endpoint Endpoint::parse_tcp(const std::string& text) {
  const std::size_t colon = text.rfind(':');
  if (colon == std::string::npos || colon == 0) {
    throw std::invalid_argument("expected HOST:PORT, got '" + text + "'");
  }
  const std::string host = text.substr(0, colon);
  const std::string port_text = text.substr(colon + 1);
  if (port_text.empty() ||
      port_text.find_first_not_of("0123456789") != std::string::npos) {
    throw std::invalid_argument("expected a numeric port in '" + text + "'");
  }
  errno = 0;
  char* end = nullptr;
  const long port = std::strtol(port_text.c_str(), &end, 10);
  if (errno == ERANGE || port < 0 || port > 65535) {
    throw std::invalid_argument("port out of range 0..65535 in '" + text + "'");
  }
  return tcp(host, static_cast<std::uint16_t>(port));
}

std::string Endpoint::describe() const {
  if (kind == Kind::kUnix) {
    return "unix:'" + path + "'";
  }
  return "tcp " + host + ":" + std::to_string(port);
}

Listener Listener::listen(const Endpoint& endpoint, int backlog) {
  Endpoint bound = endpoint;
  int fd = -1;
  if (endpoint.kind == Endpoint::Kind::kUnix) {
    fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
    if (fd < 0) {
      throw std::runtime_error(std::string("socket: ") + std::strerror(errno));
    }
    // A stale socket file from a previous run would make bind fail; the
    // daemon owns its path, so clear it first.
    ::unlink(endpoint.path.c_str());
    sockaddr_un addr;
    try {
      addr = unix_address(endpoint.path);
    } catch (...) {
      ::close(fd);
      throw;
    }
    if (::bind(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) < 0 ||
        ::listen(fd, backlog) < 0) {
      const int err = errno;
      ::close(fd);
      throw std::runtime_error("cannot listen on " + endpoint.describe() + ": " +
                               std::strerror(err));
    }
  } else {
    ResolvedAddress addr;
    try {
      addr = resolve_tcp(endpoint.host, endpoint.port, /*passive=*/true);
    } catch (const std::exception& e) {
      throw std::runtime_error("cannot listen on " + endpoint.describe() + ": " +
                               e.what());
    }
    fd = ::socket(addr.family, SOCK_STREAM, 0);
    if (fd < 0) {
      throw std::runtime_error(std::string("socket: ") + std::strerror(errno));
    }
    const int one = 1;
    (void)::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
    if (::bind(fd, reinterpret_cast<sockaddr*>(&addr.storage), addr.length) < 0 ||
        ::listen(fd, backlog) < 0) {
      const int err = errno;
      ::close(fd);
      throw std::runtime_error("cannot listen on " + endpoint.describe() + ": " +
                               std::strerror(err));
    }
    bound.port = bound_port(fd);
  }
  set_nonblocking(fd);
  return Listener(fd, std::move(bound));
}

Listener::Listener(Listener&& other) noexcept
    : fd_(other.fd_), endpoint_(std::move(other.endpoint_)) {
  other.fd_ = -1;
}

Listener& Listener::operator=(Listener&& other) noexcept {
  if (this != &other) {
    close();
    fd_ = other.fd_;
    endpoint_ = std::move(other.endpoint_);
    other.fd_ = -1;
  }
  return *this;
}

Listener::~Listener() { close(); }

int Listener::accept_connection() const {
  if (fd_ < 0) {
    return -1;
  }
  // Transient failures (EINTR, EAGAIN, ECONNABORTED) all return -1: the
  // listener stays in the poll set and level-triggered readiness retries
  // the accept on the next loop — no explicit retry loop needed.
  const int conn = testing::fault::accept(fd_);
  if (conn < 0) {
    return -1;
  }
  set_nonblocking(conn);
  return conn;
}

void Listener::close() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
    if (endpoint_.kind == Endpoint::Kind::kUnix) {
      ::unlink(endpoint_.path.c_str());
    }
  }
}

int connect_endpoint(const Endpoint& endpoint) {
  if (endpoint.kind == Endpoint::Kind::kUnix) {
    const int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
    if (fd < 0) {
      return -1;
    }
    sockaddr_un addr;
    try {
      addr = unix_address(endpoint.path);
    } catch (...) {
      ::close(fd);
      errno = ENAMETOOLONG;
      return -1;
    }
    if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) < 0) {
      const int err = errno;
      ::close(fd);
      errno = err;
      return -1;
    }
    return fd;
  }
  ResolvedAddress addr;
  try {
    addr = resolve_tcp(endpoint.host, endpoint.port, /*passive=*/false);
  } catch (...) {
    errno = EHOSTUNREACH;
    return -1;
  }
  const int fd = ::socket(addr.family, SOCK_STREAM, 0);
  if (fd < 0) {
    return -1;
  }
  if (::connect(fd, reinterpret_cast<sockaddr*>(&addr.storage), addr.length) < 0) {
    const int err = errno;
    ::close(fd);
    errno = err;
    return -1;
  }
  return fd;
}

}  // namespace net
}  // namespace fppn
