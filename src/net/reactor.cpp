#include "net/reactor.hpp"

#include <poll.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <fcntl.h>
#include <limits>

#include "testing/fault_injector.hpp"

namespace fppn {
namespace net {

namespace {

constexpr std::size_t kReadChunk = 64 * 1024;

void make_nonblocking(int fd) {
  const int flags = ::fcntl(fd, F_GETFL, 0);
  if (flags >= 0) {
    (void)::fcntl(fd, F_SETFL, flags | O_NONBLOCK);
  }
}

}  // namespace

void Reactor::add_listener(Listener listener) {
  listeners_.push_back(std::move(listener));
}

void Reactor::open_wakeup_pipe() {
  int fds[2] = {-1, -1};
  if (::pipe(fds) == 0) {
    make_nonblocking(fds[0]);
    make_nonblocking(fds[1]);
    wakeup_read_ = fds[0];
    wakeup_write_ = fds[1];
  }
}

void Reactor::wake() {
  if (wakeup_write_ >= 0) {
    const char byte = 1;
    (void)!::write(wakeup_write_, &byte, 1);  // EAGAIN = a wake is pending
  }
}

void Reactor::submit_response(std::uint64_t conn, std::string text) {
  {
    const std::lock_guard<std::mutex> lock(mu_);
    pending_responses_.emplace_back(conn, std::move(text));
  }
  wake();
}

void Reactor::request_stop() {
  {
    const std::lock_guard<std::mutex> lock(mu_);
    stop_requested_ = true;
  }
  wake();
}

void Reactor::apply_pending_responses() {
  std::vector<std::pair<std::uint64_t, std::string>> ready;
  {
    const std::lock_guard<std::mutex> lock(mu_);
    ready.swap(pending_responses_);
  }
  for (auto& [id, text] : ready) {
    const auto it = connections_.find(id);
    if (it == connections_.end() || it->second.state != ConnState::kAwaiting) {
      continue;  // connection died first (or a stray duplicate): drop
    }
    it->second.response = std::move(text);
    it->second.write_offset = 0;
    it->second.state = ConnState::kWriting;
    set_deadline(id, it->second, TimeoutKind::kWrite, options_.write_timeout_ms);
  }
}

void Reactor::set_deadline(std::uint64_t id, Connection& conn, TimeoutKind kind,
                           int timeout_ms) {
  if (timeout_ms <= 0) {
    conn.deadline_seq = 0;  // any live heap entry is now stale
    return;
  }
  conn.deadline = Clock::now() + std::chrono::milliseconds(timeout_ms);
  conn.deadline_kind = kind;
  conn.deadline_seq = next_deadline_seq_++;
  deadlines_.push_back(DeadlineEntry{conn.deadline, id, conn.deadline_seq});
  std::push_heap(deadlines_.begin(), deadlines_.end(),
                 [](const DeadlineEntry& a, const DeadlineEntry& b) {
                   return a.when > b.when;
                 });
}

int Reactor::next_deadline_timeout_ms() {
  const auto later = [](const DeadlineEntry& a, const DeadlineEntry& b) {
    return a.when > b.when;
  };
  while (!deadlines_.empty()) {
    const DeadlineEntry& top = deadlines_.front();
    const auto it = connections_.find(top.conn);
    if (it == connections_.end() || it->second.deadline_seq != top.seq) {
      // Stale (re-armed or closed): lazy deletion.
      std::pop_heap(deadlines_.begin(), deadlines_.end(), later);
      deadlines_.pop_back();
      continue;
    }
    const auto delta =
        std::chrono::ceil<std::chrono::milliseconds>(top.when - Clock::now())
            .count();
    if (delta <= 0) {
      return 0;
    }
    return static_cast<int>(std::min<long long>(
        delta, static_cast<long long>(std::numeric_limits<int>::max())));
  }
  return -1;  // no deadline armed: block like the timerless reactor
}

void Reactor::expire_deadlines() {
  const auto later = [](const DeadlineEntry& a, const DeadlineEntry& b) {
    return a.when > b.when;
  };
  const Clock::time_point now = Clock::now();
  while (!deadlines_.empty()) {
    const DeadlineEntry top = deadlines_.front();
    const auto it = connections_.find(top.conn);
    const bool live =
        it != connections_.end() && it->second.deadline_seq == top.seq;
    if (live && top.when > now) {
      return;  // earliest live deadline is in the future
    }
    std::pop_heap(deadlines_.begin(), deadlines_.end(), later);
    deadlines_.pop_back();
    if (!live) {
      continue;
    }
    const TimeoutKind kind = it->second.deadline_kind;
    switch (kind) {
      case TimeoutKind::kIdle:
        ++counters_.idle_timeouts;
        break;
      case TimeoutKind::kRequest:
        ++counters_.request_timeouts;
        break;
      case TimeoutKind::kWrite:
        ++counters_.write_timeouts;
        break;
    }
    if (events_.on_timeout) {
      events_.on_timeout(top.conn, kind);
    }
    close_connection(top.conn);
  }
}

void Reactor::begin_drain() {
  if (draining_) {
    return;
  }
  draining_ = true;
  listeners_.clear();  // closes (and unlinks) every listening socket
  std::vector<std::uint64_t> reading;
  for (const auto& [id, conn] : connections_) {
    if (conn.state == ConnState::kReading) {
      reading.push_back(id);
    }
  }
  for (const std::uint64_t id : reading) {
    ++counters_.aborted;
    close_connection(id);
  }
  if (events_.on_drain) {
    events_.on_drain();
  }
}

void Reactor::accept_ready(const Listener& listener) {
  for (;;) {
    const int fd = listener.accept_connection();
    if (fd < 0) {
      return;
    }
    ++counters_.accepted;
    Connection conn;
    conn.fd = fd;
    const std::uint64_t id = next_id_++;
    auto [it, inserted] = connections_.emplace(id, std::move(conn));
    set_deadline(id, it->second, TimeoutKind::kIdle, options_.idle_timeout_ms);
  }
}

void Reactor::close_connection(std::uint64_t id) {
  const auto it = connections_.find(id);
  if (it == connections_.end()) {
    return;
  }
  ::close(it->second.fd);
  connections_.erase(it);
}

void Reactor::handle_readable(std::uint64_t id, Connection& conn) {
  char buf[kReadChunk];
  for (;;) {
    const ssize_t n = testing::fault::read(conn.fd, buf, sizeof(buf));
    if (n > 0) {
      if (conn.discard_input) {
        continue;  // oversized request: drain the peer, keep nothing
      }
      if (!conn.saw_request_byte) {
        // The request began: the idle window is over, the request window
        // starts (it is NOT extended per byte — a trickler cannot stay
        // alive by dripping one byte per interval).
        conn.saw_request_byte = true;
        set_deadline(id, conn, TimeoutKind::kRequest, options_.request_timeout_ms);
      }
      conn.request.append(buf, static_cast<std::size_t>(n));
      if (options_.max_request_bytes != 0 &&
          conn.request.size() > options_.max_request_bytes) {
        ++counters_.oversized;
        const std::size_t seen = conn.request.size();
        conn.request.clear();
        conn.request.shrink_to_fit();
        conn.discard_input = true;
        conn.state = ConnState::kAwaiting;
        set_deadline(id, conn, TimeoutKind::kIdle, 0);  // solver window: no timer
        if (events_.on_oversized) {
          events_.on_oversized(id, seen);
        } else {
          close_connection(id);
        }
        return;
      }
      continue;
    }
    if (n == 0) {  // orderly EOF: the request (or the discard) is over
      conn.saw_eof = true;
      if (conn.state == ConnState::kReading) {
        ++counters_.requests;
        conn.state = ConnState::kAwaiting;
        // Dispatched: the queue-deadline shed in net::Server owns the
        // waiting window, not a reactor timer.
        set_deadline(id, conn, TimeoutKind::kIdle, 0);
        std::string request = std::move(conn.request);
        conn.request.clear();
        if (events_.on_request) {
          events_.on_request(id, std::move(request));
        } else {
          close_connection(id);
        }
      } else if (conn.state == ConnState::kWriting &&
                 conn.write_offset == conn.response.size()) {
        close_connection(id);  // discard finished after the response did
      }
      return;
    }
    if (errno == EINTR) {
      continue;
    }
    if (errno == EAGAIN || errno == EWOULDBLOCK) {
      return;
    }
    // Hard read error (ECONNRESET and friends): the request is torn.
    // Never dispatch the truncated bytes — surface the error instead.
    if (conn.state == ConnState::kReading) {
      ++counters_.read_errors;
      const int err = errno;
      conn.request.clear();
      conn.state = ConnState::kAwaiting;
      set_deadline(id, conn, TimeoutKind::kIdle, 0);
      if (events_.on_read_error) {
        events_.on_read_error(id, err);
      } else {
        close_connection(id);
      }
    } else {
      conn.saw_eof = true;  // discard side died; stop polling for input
      if (conn.state == ConnState::kWriting &&
          conn.write_offset == conn.response.size()) {
        close_connection(id);
      }
    }
    return;
  }
}

void Reactor::handle_writable(std::uint64_t id, Connection& conn) {
  while (conn.write_offset < conn.response.size()) {
    const ssize_t n =
        testing::fault::write(conn.fd, conn.response.data() + conn.write_offset,
                              conn.response.size() - conn.write_offset);
    if (n >= 0) {
      conn.write_offset += static_cast<std::size_t>(n);
      if (n > 0) {
        // Progress-based write deadline: each successful write re-arms
        // it, so a slow-but-draining reader of a huge response survives
        // while a stalled one is cut within write_timeout_ms.
        set_deadline(id, conn, TimeoutKind::kWrite, options_.write_timeout_ms);
      }
      continue;
    }
    if (errno == EINTR) {
      continue;
    }
    if (errno == EAGAIN || errno == EWOULDBLOCK) {
      return;  // kernel buffer full: wait for the next POLLOUT
    }
    ++counters_.write_errors;  // peer gone; nothing useful to do
    close_connection(id);
    return;
  }
  // Response fully out. Close unless an oversized peer is still mid-send
  // — then keep draining its bytes so it can reach its own EOF.
  if (!conn.discard_input || conn.saw_eof) {
    close_connection(id);
  }
}

void Reactor::run() {
  open_wakeup_pipe();
  std::vector<pollfd> fds;
  // Parallel tags: what each pollfd row is. listener rows index
  // listeners_; connection rows carry the connection id.
  enum class Tag { kWakeup, kStop, kListener, kConn };
  struct Row {
    Tag tag;
    std::size_t index = 0;
    std::uint64_t conn = 0;
  };
  std::vector<Row> rows;

  for (;;) {
    apply_pending_responses();
    {
      bool stop = false;
      {
        const std::lock_guard<std::mutex> lock(mu_);
        stop = stop_requested_;
      }
      if (stop) {
        begin_drain();
      }
    }
    // Responses submitted for freshly-drained connections may already be
    // applicable; re-apply before deciding to exit.
    apply_pending_responses();
    if (draining_ && connections_.empty()) {
      break;
    }

    fds.clear();
    rows.clear();
    if (wakeup_read_ >= 0) {
      fds.push_back({wakeup_read_, POLLIN, 0});
      rows.push_back({Tag::kWakeup, 0, 0});
    }
    if (stop_fd_ >= 0 && !draining_) {
      fds.push_back({stop_fd_, POLLIN, 0});
      rows.push_back({Tag::kStop, 0, 0});
    }
    if (!draining_) {
      for (std::size_t i = 0; i < listeners_.size(); ++i) {
        fds.push_back({listeners_[i].fd(), POLLIN, 0});
        rows.push_back({Tag::kListener, i, 0});
      }
    }
    for (const auto& [id, conn] : connections_) {
      short events = 0;
      const bool discarding = conn.discard_input && !conn.saw_eof;
      switch (conn.state) {
        case ConnState::kReading:
          events = POLLIN;
          break;
        case ConnState::kAwaiting:
          events = discarding ? POLLIN : 0;
          break;
        case ConnState::kWriting:
          events = (conn.write_offset < conn.response.size() ? POLLOUT : 0) |
                   (discarding ? POLLIN : 0);
          break;
      }
      if (events == 0) {
        continue;  // waiting on submit_response; the wakeup pipe covers it
      }
      fds.push_back({conn.fd, events, 0});
      rows.push_back({Tag::kConn, 0, id});
    }

    // The earliest live deadline caps the poll timeout; with none armed
    // this is -1 and the loop blocks exactly as the timerless reactor
    // always has.
    const int timeout_ms = next_deadline_timeout_ms();
    if (testing::fault::poll(fds.data(), static_cast<nfds_t>(fds.size()),
                             timeout_ms) < 0) {
      if (errno == EINTR) {
        continue;
      }
      break;  // poll itself unusable: abandon ship, close everything below
    }

    for (std::size_t i = 0; i < fds.size(); ++i) {
      if (fds[i].revents == 0) {
        continue;
      }
      switch (rows[i].tag) {
        case Tag::kWakeup: {
          char buf[64];
          while (::read(wakeup_read_, buf, sizeof(buf)) > 0) {
          }
          break;
        }
        case Tag::kStop: {
          const std::lock_guard<std::mutex> lock(mu_);
          stop_requested_ = true;  // applied at the next loop top
          break;
        }
        case Tag::kListener:
          if (rows[i].index < listeners_.size()) {
            accept_ready(listeners_[rows[i].index]);
          }
          break;
        case Tag::kConn: {
          const auto it = connections_.find(rows[i].conn);
          if (it == connections_.end()) {
            break;  // closed earlier in this dispatch round
          }
          if ((fds[i].revents & (POLLIN | POLLHUP | POLLERR)) != 0) {
            handle_readable(rows[i].conn, it->second);
          }
          const auto again = connections_.find(rows[i].conn);
          if (again != connections_.end() &&
              again->second.state == ConnState::kWriting &&
              (fds[i].revents & (POLLOUT | POLLHUP | POLLERR)) != 0) {
            handle_writable(rows[i].conn, again->second);
          }
          break;
        }
      }
    }
    // After I/O progressed (and possibly re-armed deadlines): cut every
    // connection whose window elapsed.
    expire_deadlines();
  }

  for (auto& [id, conn] : connections_) {
    ::close(conn.fd);
  }
  connections_.clear();
  if (wakeup_read_ >= 0) {
    ::close(wakeup_read_);
    ::close(wakeup_write_);
    wakeup_read_ = wakeup_write_ = -1;
  }
}

}  // namespace net
}  // namespace fppn
