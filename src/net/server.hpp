// net::Server — the serving stack assembled: one Reactor thread owning
// every connection, a bounded WorkQueue, and a pool of solver threads
// that run the request handler — so connection I/O and solving never
// share a thread, and admission is explicit:
//
//   reactor (1 thread)          solver pool (N threads)
//   ----------------------      -------------------------------
//   accept / read request  -->  WorkQueue::try_push
//     queue full: respond         |  pop, measure queue wait
//     "overloaded" now            v
//   write responses        <--  handler(request, queue_wait_ms)
//
// The handler runs concurrently on every solver thread and returns the
// complete response text; the protocol hooks supply the response lines
// for the three transport-level rejections (queue full, oversized
// request, torn read), so the net layer never hardcodes a wire format —
// the engine service owns the "fppn-serve ..." grammar.
//
// run() blocks on the calling thread until stop() is called or the stop
// fd becomes readable, then drains: listeners close, queued requests
// finish, every response is written, the pool joins. One Server = one
// run().
#pragma once

#include <chrono>
#include <cstddef>
#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "net/listener.hpp"
#include "net/reactor.hpp"
#include "net/work_queue.hpp"

namespace fppn {
namespace net {

struct ServerOptions {
  int solver_threads = 2;
  std::size_t queue_capacity = 64;
  /// Requests larger than this are rejected (protocol.oversized);
  /// 0 = unlimited.
  std::size_t max_request_bytes = 0;
  /// Readable => drain (the daemon's signal self-pipe). Not owned;
  /// -1 = stop() only.
  int stop_fd = -1;
  // Per-connection reactor deadlines, forwarded to Reactor::Options
  // (all in ms, 0 = off; see net/reactor.hpp for the exact windows).
  int idle_timeout_ms = 0;
  int request_timeout_ms = 0;
  int write_timeout_ms = 0;
  /// A popped request whose queue wait already exceeds this is answered
  /// with protocol.deadline_exceeded instead of the handler — stale-work
  /// shedding: the client has likely given up, so solving would burn a
  /// solver slot on an answer nobody reads. 0 = off.
  int queue_deadline_ms = 0;
};

/// The response lines for transport-level rejections. All hooks are
/// invoked on the reactor thread except deadline_exceeded (solver
/// thread); null hooks fall back to a terse "error: ..." line (tests of
/// the bare net layer). timed_out is a notification, not a response —
/// the expired connection is already being closed.
struct ServerProtocol {
  std::function<std::string()> overloaded;
  std::function<std::string(std::size_t bytes_seen)> oversized;
  std::function<std::string(int error)> read_error;
  std::function<std::string()> deadline_exceeded;
  std::function<void(Reactor::TimeoutKind kind)> timed_out;
};

/// What the server knows about a request when it hands it to the
/// handler — the load signals behind stale-work shedding and graceful
/// degradation decisions.
struct RequestInfo {
  double queue_wait_ms = 0.0;     ///< enqueue -> pop
  std::size_t queue_depth = 0;    ///< requests still queued at pop time
  std::size_t queue_capacity = 0; ///< the bounded queue's capacity
};

class Server {
 public:
  /// `handler(request, info)` returns the full response text; it runs
  /// concurrently on every solver thread.
  using Handler =
      std::function<std::string(std::string request, const RequestInfo& info)>;

  Server(ServerOptions options, ServerProtocol protocol, Handler handler);

  /// Adds a listening socket (before run()).
  void add_listener(Listener listener);

  /// Serves until stopped, then drains; see the file comment.
  void run();

  /// Begins the drain from any thread (idempotent).
  void stop() { reactor_.request_stop(); }

  /// Pending (queued, not yet popped) requests — observability for
  /// benches and tests driving the backpressure path.
  [[nodiscard]] std::size_t queue_size() const { return queue_.size(); }

  [[nodiscard]] const Reactor::Counters& reactor_counters() const noexcept {
    return reactor_.counters();
  }

 private:
  struct Job {
    std::uint64_t conn = 0;
    std::string request;
    std::chrono::steady_clock::time_point enqueued;
  };

  void solver_loop();

  ServerOptions options_;
  ServerProtocol protocol_;
  Handler handler_;
  WorkQueue<Job> queue_;
  Reactor reactor_;
};

}  // namespace net
}  // namespace fppn
