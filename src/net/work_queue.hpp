// net::WorkQueue — the bounded handoff between connection I/O and the
// solver pool, and the backpressure point of the serving stack: when the
// queue is full, try_push() refuses immediately, and the reactor answers
// the connection with an explicit overload error instead of queueing
// requests without bound. The capacity is the daemon's only admission
// knob — memory use per pending request is the request text itself, so
// bounding the queue bounds the daemon.
//
// Semantics: FIFO, capacity fixed at construction (>= 1). close() stops
// admissions but lets consumers drain the backlog — pop() returns every
// queued item before reporting nullopt, which is what makes the drain
// path finish in-flight requests instead of dropping them.
//
// Thread safety: all members are safe to call concurrently (one mutex,
// one condition variable; producers never block — that is the point).
#pragma once

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <mutex>
#include <optional>
#include <utility>

namespace fppn {
namespace net {

template <typename T>
class WorkQueue {
 public:
  explicit WorkQueue(std::size_t capacity) : capacity_(capacity < 1 ? 1 : capacity) {}

  /// Admits `item` unless the queue is full or closed. Never blocks;
  /// false means the caller must reject the work (backpressure).
  [[nodiscard]] bool try_push(T item) {
    {
      const std::lock_guard<std::mutex> lock(mu_);
      if (closed_ || items_.size() >= capacity_) {
        return false;
      }
      items_.push_back(std::move(item));
    }
    ready_.notify_one();
    return true;
  }

  /// Blocks until an item is available or the queue is closed *and*
  /// drained; nullopt is the consumer's exit signal.
  [[nodiscard]] std::optional<T> pop() {
    std::unique_lock<std::mutex> lock(mu_);
    ready_.wait(lock, [this] { return closed_ || !items_.empty(); });
    if (items_.empty()) {
      return std::nullopt;
    }
    T item = std::move(items_.front());
    items_.pop_front();
    return item;
  }

  /// Stops admissions; queued items remain poppable. Idempotent.
  void close() {
    {
      const std::lock_guard<std::mutex> lock(mu_);
      closed_ = true;
    }
    ready_.notify_all();
  }

  [[nodiscard]] std::size_t size() const {
    const std::lock_guard<std::mutex> lock(mu_);
    return items_.size();
  }

  [[nodiscard]] std::size_t capacity() const noexcept { return capacity_; }

 private:
  const std::size_t capacity_;
  mutable std::mutex mu_;
  std::condition_variable ready_;
  std::deque<T> items_;
  bool closed_ = false;
};

}  // namespace net
}  // namespace fppn
