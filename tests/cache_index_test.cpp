// Cache-index format: bit-identical round-trip, recency (touch/erase/
// eviction order) semantics, and the strict parse contract — wrong
// version, malformed fields, stricter signed-integer grammar, truncation
// and trailing garbage are all ParseErrors (which the cache answers by
// rebuilding the index, never by failing hard).
#include "io/cache_index.hpp"

#include <gtest/gtest.h>

namespace fppn {
namespace {

io::CacheIndex sample_index() {
  io::CacheIndex index;
  index.touch("aa-alap-edf-m2-seed1-it400-r1.sched");
  index.touch("bb-local-search-m2-seed1-it400-r1.sched");
  index.touch("aa-alap-edf-m2-seed1-it400-r1.sched");  // re-touch: now newest
  return index;
}

TEST(CacheIndex, TouchAssignsMonotoneSequences) {
  const io::CacheIndex index = sample_index();
  ASSERT_EQ(index.entries.size(), 2u);
  EXPECT_EQ(index.next_sequence, 4u);
  // The re-touched entry moved to the newest sequence without duplicating.
  const auto oldest = index.oldest_first();
  EXPECT_EQ(oldest[0].file, "bb-local-search-m2-seed1-it400-r1.sched");
  EXPECT_EQ(oldest[1].file, "aa-alap-edf-m2-seed1-it400-r1.sched");
  EXPECT_LT(oldest[0].sequence, oldest[1].sequence);
}

TEST(CacheIndex, EraseRemovesRecords) {
  io::CacheIndex index = sample_index();
  EXPECT_TRUE(index.erase("bb-local-search-m2-seed1-it400-r1.sched"));
  EXPECT_FALSE(index.erase("bb-local-search-m2-seed1-it400-r1.sched"));
  EXPECT_EQ(index.entries.size(), 1u);
}

TEST(CacheIndex, OldestFirstBreaksSequenceTiesByName) {
  // Racing writers can hand out duplicate sequences (a lost index update);
  // the eviction order must stay total regardless.
  io::CacheIndex index;
  index.entries.push_back(io::CacheIndexEntry{7, "zz.sched"});
  index.entries.push_back(io::CacheIndexEntry{7, "aa.sched"});
  const auto oldest = index.oldest_first();
  EXPECT_EQ(oldest[0].file, "aa.sched");
  EXPECT_EQ(oldest[1].file, "zz.sched");
}

TEST(CacheIndex, RoundTripsBitIdentically) {
  const io::CacheIndex index = sample_index();
  const std::string text = io::write_cache_index(index);
  const io::CacheIndex back = io::read_cache_index_string(text);
  EXPECT_EQ(back.next_sequence, index.next_sequence);
  ASSERT_EQ(back.entries.size(), index.entries.size());
  for (std::size_t i = 0; i < index.entries.size(); ++i) {
    EXPECT_EQ(back.entries[i].sequence, index.entries[i].sequence);
    EXPECT_EQ(back.entries[i].file, index.entries[i].file);
  }
  // Writing the parsed index reproduces the text exactly.
  EXPECT_EQ(io::write_cache_index(back), text);
}

TEST(CacheIndex, EmptyIndexRoundTrips) {
  const io::CacheIndex back = io::read_cache_index_string(io::write_cache_index({}));
  EXPECT_EQ(back.next_sequence, 1u);
  EXPECT_TRUE(back.entries.empty());
}

TEST(CacheIndex, RejectsVersionCorruptionAndTrailingGarbage) {
  const std::string text = io::write_cache_index(sample_index());
  {
    std::string wrong = text;
    wrong.replace(wrong.find("v1"), 2, "v9");
    EXPECT_THROW((void)io::read_cache_index_string(wrong), io::ParseError);
  }
  {
    // Truncation: drop the "end" trailer and the last entry line.
    const std::string truncated = text.substr(0, text.rfind("entry"));
    EXPECT_THROW((void)io::read_cache_index_string(truncated), io::ParseError);
  }
  {
    // Count/line mismatch: claims 3 entries, lists 2.
    std::string overcount = text;
    overcount.replace(overcount.find("entries 2"), 9, "entries 3");
    EXPECT_THROW((void)io::read_cache_index_string(overcount), io::ParseError);
  }
  EXPECT_THROW((void)io::read_cache_index_string(text + "junk\n"), io::ParseError);
  EXPECT_NO_THROW((void)io::read_cache_index_string(text + "\n \n"));
  EXPECT_THROW((void)io::read_cache_index_string("not an index\n"), io::ParseError);
}

TEST(CacheIndex, RejectsDuplicateFiles) {
  std::string text = "fppn-cache-index v1\nsequence 3\nentries 2\n";
  text += "entry 1 same.sched\nentry 2 same.sched\nend\n";
  EXPECT_THROW((void)io::read_cache_index_string(text), io::ParseError);
}

TEST(CacheIndex, RejectsSignedIntegerExtensions) {
  // The documented grammar is -?[0-9]+ for signed fields and [0-9]+ for
  // unsigned ones: a leading '+' (tolerated by stoll/stoull) is a parse
  // error everywhere.
  EXPECT_THROW((void)io::read_cache_index_string(
                   "fppn-cache-index v1\nsequence +3\nentries 0\nend\n"),
               io::ParseError);
  EXPECT_THROW((void)io::read_cache_index_string(
                   "fppn-cache-index v1\nsequence 3\nentries +0\nend\n"),
               io::ParseError);
  EXPECT_THROW((void)io::read_cache_index_string(
                   "fppn-cache-index v1\nsequence 3\nentries 1\n"
                   "entry +1 a.sched\nend\n"),
               io::ParseError);
}

}  // namespace
}  // namespace fppn
