// The evaluation kernel's determinism contract: for any valid SP order,
// sched::Evaluator produces the bit-identical score and placements of the
// reference list_schedule + feasibility pipeline — across random graphs
// (fractional WCETs, staggered arrivals, varied processor counts), on the
// int64 tick timebase and on the Rational overflow fallback, and all the
// way up the search stack (optimize_priority, parallel_search,
// sharded_search: fast vs. reference winners are identical, cold and
// warm, 1-process and sharded).
#include "sched/evaluator.hpp"

#include <gtest/gtest.h>

#include <unistd.h>

#include <filesystem>
#include <random>

#include "gen/scenario.hpp"
#include "sched/list_scheduler.hpp"
#include "sched/local_search.hpp"
#include "sched/parallel_search.hpp"
#include "sched/partitioned.hpp"
#include "sched/schedule_cache.hpp"
#include "sched/sharded_search.hpp"
#include "sched/visited_set.hpp"
#include "taskgraph/fingerprint.hpp"
#include "taskgraph/task_graph.hpp"

namespace fppn {
namespace {

namespace fs = std::filesystem;

class TempDir {
 public:
  explicit TempDir(const std::string& tag) {
    path_ = (fs::temp_directory_path() /
             ("fppn_evaluator_test_" + tag + "_" + std::to_string(::getpid())))
                .string();
    fs::remove_all(path_);
    fs::create_directories(path_);
  }
  ~TempDir() {
    std::error_code ec;
    fs::remove_all(path_, ec);
  }
  [[nodiscard]] const std::string& path() const { return path_; }

 private:
  std::string path_;
};

Job make_job(const std::string& name, Time arrival, Time deadline, Duration wcet,
             std::size_t process) {
  Job j;
  j.process = ProcessId{process};
  j.arrival = arrival;
  j.deadline = deadline;
  j.wcet = wcet;
  j.name = name;
  return j;
}

/// Random layered DAG with staggered arrivals and fractional WCETs —
/// the shared gen:: family (platform-deterministic, denominators 1..7,
/// ties at decision instants, idle gaps, infeasible frames). The same
/// generator feeds the fuzz loop, so differential coverage here and
/// there stays aligned.
TaskGraph random_task_graph(std::uint64_t seed) {
  return gen::layered_task_graph(seed);
}

std::vector<JobId> random_permutation(std::size_t n, std::mt19937_64& rng) {
  std::vector<JobId> order;
  order.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    order.push_back(JobId(i));
  }
  std::shuffle(order.begin(), order.end(), rng);
  return order;
}

void expect_identical_placements(const StaticSchedule& a, const StaticSchedule& b,
                                 const std::string& context) {
  ASSERT_EQ(a.job_count(), b.job_count()) << context;
  for (std::size_t i = 0; i < a.job_count(); ++i) {
    const JobId id(i);
    ASSERT_EQ(a.is_placed(id), b.is_placed(id)) << context << " job " << i;
    if (!a.is_placed(id)) {
      continue;
    }
    EXPECT_EQ(a.placement(id).processor.value(), b.placement(id).processor.value())
        << context << " job " << i;
    EXPECT_EQ(a.placement(id).start, b.placement(id).start) << context << " job " << i;
  }
}

/// Scores `order` through the reference pipeline the kernel replaces.
sched::EvalScore reference_score(const TaskGraph& tg, const std::vector<JobId>& order,
                                 std::int64_t processors) {
  const StaticSchedule s = list_schedule(tg, order, processors);
  sched::EvalScore score;
  score.makespan = s.makespan(tg);
  score.deadline_violations = s.count_violations(tg).deadline;
  return score;
}

void expect_kernel_matches_reference(const TaskGraph& tg, std::int64_t processors,
                                     const std::vector<JobId>& order,
                                     sched::Evaluator& kernel,
                                     const std::string& context) {
  const sched::EvalScore fast = kernel.evaluate(order);
  const sched::EvalScore ref = reference_score(tg, order, processors);
  EXPECT_EQ(fast.deadline_violations, ref.deadline_violations) << context;
  EXPECT_EQ(fast.makespan, ref.makespan) << context;
  expect_identical_placements(kernel.materialize(order),
                              list_schedule(tg, order, processors), context);
}

// ---------------------------------------------------------------------------
// Randomized differential suite: 220 graphs x processors x orders, all
// bit-identical to the reference.
TEST(EvaluatorDifferential, RandomGraphsScoreAndPlacementsBitIdentical) {
  std::size_t tick_graphs = 0;
  for (std::uint64_t g = 0; g < 220; ++g) {
    const TaskGraph tg = random_task_graph(g);
    const std::int64_t processors = 1 + static_cast<std::int64_t>(g % 4);
    sched::Evaluator kernel(tg, processors);
    tick_graphs += kernel.uses_ticks() ? 1 : 0;
    std::mt19937_64 rng(g * 7919 + 1);
    const std::string context =
        "graph " + std::to_string(g) + " M=" + std::to_string(processors);
    // One heuristic order (rotating through all four) + two random ones.
    const PriorityHeuristic h = all_heuristics()[g % all_heuristics().size()];
    expect_kernel_matches_reference(tg, processors, schedule_priority(tg, h), kernel,
                                    context + " heuristic");
    for (int k = 0; k < 2; ++k) {
      expect_kernel_matches_reference(tg, processors,
                                      random_permutation(tg.job_count(), rng), kernel,
                                      context + " random " + std::to_string(k));
    }
  }
  // Fractional-but-small denominators must stay on the fast tick path.
  EXPECT_EQ(tick_graphs, 220u);
}

TEST(EvaluatorDifferential, ZeroWcetJobsMatchReference) {
  // Zero-WCET jobs release their processor and their successors at the
  // same instant they start — the trickiest event ordering in the kernel.
  TaskGraph tg(Duration::ms(100));
  const JobId a = tg.add_job(make_job("a", Time::ms(0), Time::ms(100), Duration::ms(0), 0));
  const JobId b = tg.add_job(make_job("b", Time::ms(0), Time::ms(100), Duration::ms(7), 1));
  const JobId c = tg.add_job(make_job("c", Time::ms(0), Time::ms(100), Duration::ms(0), 2));
  const JobId d = tg.add_job(make_job("d", Time::ms(3), Time::ms(9), Duration::ms(5), 3));
  tg.add_edge(a, c);
  tg.add_edge(c, d);
  sched::Evaluator kernel(tg, 2);
  std::mt19937_64 rng(11);
  for (int k = 0; k < 20; ++k) {
    expect_kernel_matches_reference(tg, 2, random_permutation(tg.job_count(), rng),
                                    kernel, "zero-wcet " + std::to_string(k));
  }
  (void)b;
}

TEST(EvaluatorDifferential, EdgeCaseFamiliesMatchReference) {
  // The generator's adversarial shapes: zero-WCET chains, all-identical
  // tie storms, tick-overflow denominators (Rational fallback) and
  // trivial/antichain graphs — 40 graphs covering all four variants.
  for (std::uint64_t g = 0; g < 40; ++g) {
    const TaskGraph tg = gen::edge_case_task_graph(g);
    if (tg.job_count() == 0) {
      continue;
    }
    const std::int64_t processors = 1 + static_cast<std::int64_t>(g % 3);
    sched::Evaluator kernel(tg, processors);
    std::mt19937_64 rng(g * 613 + 7);
    const std::string context =
        "edge graph " + std::to_string(g) + " M=" + std::to_string(processors);
    expect_kernel_matches_reference(
        tg, processors, schedule_priority(tg, PriorityHeuristic::kAlapEdf), kernel,
        context + " heuristic");
    for (int k = 0; k < 2; ++k) {
      expect_kernel_matches_reference(tg, processors,
                                      random_permutation(tg.job_count(), rng), kernel,
                                      context + " random " + std::to_string(k));
    }
  }
}

// ---------------------------------------------------------------------------
// Tick-overflow cases: the kernel must fall back to exact Rational
// arithmetic and still match the reference bit for bit.
TEST(Evaluator, LcmOverflowFallsBackToRationals) {
  // Denominators are three large primes: their lcm overflows int64, so no
  // common tick size exists.
  TaskGraph tg(Duration::ms(1000));
  tg.add_job(make_job("p1", Time::ms(0), Time::ms(1000),
                      Duration(Rational(7, 1000000007)), 0));
  tg.add_job(make_job("p2", Time::ms(0), Time::ms(1000),
                      Duration(Rational(11, 998244353)), 1));
  tg.add_job(make_job("p3", Time::ms(0), Time::ms(1000),
                      Duration(Rational(13, 999999937)), 2));
  sched::Evaluator kernel(tg, 2);
  EXPECT_FALSE(kernel.uses_ticks());
  std::mt19937_64 rng(3);
  for (int k = 0; k < 10; ++k) {
    expect_kernel_matches_reference(tg, 2, random_permutation(tg.job_count(), rng),
                                    kernel, "lcm overflow " + std::to_string(k));
  }
}

TEST(Evaluator, WorstCaseMakespanOverflowFallsBackToRationals) {
  // Every individual value fits in int64 ticks, but max arrival + total
  // WCET does not — the kernel must refuse ticks rather than overflow
  // mid-simulation.
  const std::int64_t huge = std::numeric_limits<std::int64_t>::max() / 2;
  TaskGraph tg;
  tg.add_job(make_job("late", Time(Rational(huge)), Time(Rational(huge) + Rational(2)),
                      Duration(Rational(2)), 0));
  tg.add_job(make_job("long", Time::ms(0), Time(Rational(huge)),
                      Duration(Rational(huge)), 1));
  sched::Evaluator kernel(tg, 1);
  EXPECT_FALSE(kernel.uses_ticks());
  std::vector<JobId> order{JobId(0), JobId(1)};
  expect_kernel_matches_reference(tg, 1, order, kernel, "makespan overflow");
  std::vector<JobId> reversed{JobId(1), JobId(0)};
  expect_kernel_matches_reference(tg, 1, reversed, kernel, "makespan overflow rev");
}

TEST(Evaluator, FractionalDenominatorsStayExactOnTicks) {
  // 1/3 + 1/6 style boundaries: ticks must reproduce the exact rational
  // comparison, not a rounded one. lcm(3, 6, 4) = 12 ticks/ms.
  TaskGraph tg(Duration::ms(10));
  const JobId a =
      tg.add_job(make_job("a", Time::ms(0), Time(Rational(1, 2)),
                          Duration(Rational(1, 3)), 0));
  const JobId b =
      tg.add_job(make_job("b", Time::ms(0), Time(Rational(1, 2)),
                          Duration(Rational(1, 6)), 1));
  const JobId c =
      tg.add_job(make_job("c", Time(Rational(1, 4)), Time(Rational(3, 4)),
                          Duration(Rational(1, 4)), 2));
  tg.add_edge(a, c);
  sched::Evaluator kernel(tg, 1);
  EXPECT_TRUE(kernel.uses_ticks());
  const std::vector<JobId> order{a, b, c};
  const sched::EvalScore score = kernel.evaluate(order);
  // a: [0, 1/3), b: [1/3, 1/2), c: starts max(1/3, 1/4) on the only
  // processor after b -> [1/2, 3/4]: exactly on its deadline, no miss.
  EXPECT_EQ(score.deadline_violations, 0u);
  EXPECT_EQ(score.makespan, Time(Rational(3, 4)));
  expect_kernel_matches_reference(tg, 1, order, kernel, "fractional ticks");
}

// ---------------------------------------------------------------------------
// Contract edges.
TEST(Evaluator, RejectsBadInputsLikeTheReference) {
  TaskGraph tg(Duration::ms(100));
  const JobId a = tg.add_job(make_job("a", Time::ms(0), Time::ms(50), Duration::ms(5), 0));
  const JobId b = tg.add_job(make_job("b", Time::ms(0), Time::ms(50), Duration::ms(5), 1));
  EXPECT_THROW(sched::Evaluator(tg, 0), std::invalid_argument);
  sched::Evaluator kernel(tg, 1);
  EXPECT_THROW((void)kernel.evaluate({a}), std::invalid_argument);
  EXPECT_THROW((void)kernel.evaluate({a, a}), std::invalid_argument);
  EXPECT_THROW((void)kernel.evaluate({}), std::invalid_argument);

  TaskGraph cyclic(Duration::ms(100));
  const JobId u =
      cyclic.add_job(make_job("u", Time::ms(0), Time::ms(50), Duration::ms(5), 0));
  const JobId v =
      cyclic.add_job(make_job("v", Time::ms(0), Time::ms(50), Duration::ms(5), 1));
  cyclic.add_edge(u, v);
  cyclic.add_edge(v, u);
  EXPECT_THROW(sched::Evaluator(cyclic, 2), std::invalid_argument);
  (void)b;
}

TEST(Evaluator, TrivialGraphs) {
  TaskGraph empty;
  sched::Evaluator kernel(empty, 3);
  const sched::EvalScore score = kernel.evaluate({});
  EXPECT_EQ(score.deadline_violations, 0u);
  EXPECT_EQ(score.makespan, Time());
  const StaticSchedule s = kernel.materialize({});
  EXPECT_EQ(s.job_count(), 0u);
  EXPECT_EQ(s.processor_count(), 3);

  TaskGraph one(Duration::ms(50));
  const JobId solo =
      one.add_job(make_job("solo", Time::ms(5), Time::ms(50), Duration::ms(10), 0));
  sched::Evaluator kernel1(one, 2);
  const sched::EvalScore s1 = kernel1.evaluate({solo});
  EXPECT_EQ(s1.deadline_violations, 0u);
  EXPECT_EQ(s1.makespan, Time::ms(15));
  expect_identical_placements(kernel1.materialize({solo}), list_schedule(one, {solo}, 2),
                              "single job");
}

TEST(Evaluator, ScratchReuseAcrossManyEvaluationsStaysExact) {
  // The same Evaluator instance is hammered with alternating orders; any
  // stale scratch state would show up as a diverging score.
  const TaskGraph tg = random_task_graph(42);
  sched::Evaluator kernel(tg, 2);
  std::mt19937_64 rng(42);
  std::vector<std::vector<JobId>> orders;
  for (int k = 0; k < 8; ++k) {
    orders.push_back(random_permutation(tg.job_count(), rng));
  }
  std::vector<sched::EvalScore> first;
  for (const auto& order : orders) {
    first.push_back(kernel.evaluate(order));
  }
  for (int round = 0; round < 3; ++round) {
    for (std::size_t k = 0; k < orders.size(); ++k) {
      const sched::EvalScore again = kernel.evaluate(orders[k]);
      EXPECT_EQ(again.deadline_violations, first[k].deadline_violations);
      EXPECT_EQ(again.makespan, first[k].makespan);
    }
  }
}

// ---------------------------------------------------------------------------
// The search stack: fast vs. reference winners are bit-identical at every
// level the kernel feeds.
TEST(EvaluatorSearch, OptimizePriorityFastVsReferenceBitIdentical) {
  for (std::uint64_t g = 0; g < 12; ++g) {
    const TaskGraph tg = random_task_graph(g * 31 + 5);
    for (const std::uint64_t seed : {1ULL, 9ULL}) {
      LocalSearchOptions opts;
      opts.processors = 1 + static_cast<std::int64_t>(g % 3);
      opts.max_iterations = 150;
      opts.restarts = 1;
      opts.seed = seed;
      opts.use_fast_evaluator = true;
      const LocalSearchResult fast = optimize_priority(tg, opts);
      opts.use_fast_evaluator = false;
      const LocalSearchResult ref = optimize_priority(tg, opts);
      const std::string context = "graph " + std::to_string(g) + " seed " +
                                  std::to_string(seed);
      EXPECT_EQ(fast.priority, ref.priority) << context;
      EXPECT_EQ(fast.violations, ref.violations) << context;
      EXPECT_EQ(fast.makespan, ref.makespan) << context;
      EXPECT_EQ(fast.feasible, ref.feasible) << context;
      EXPECT_EQ(fast.iterations_used, ref.iterations_used) << context;
      EXPECT_EQ(fast.start_heuristic, ref.start_heuristic) << context;
      expect_identical_placements(fast.schedule, ref.schedule, context);
    }
  }
}

TEST(EvaluatorSearch, WarmStartPointsBehaveIdenticallyFastVsReference) {
  const TaskGraph tg = random_task_graph(77);
  LocalSearchOptions opts;
  opts.processors = 2;
  opts.max_iterations = 120;
  opts.restarts = 1;
  const LocalSearchResult cold = optimize_priority(tg, opts);
  opts.start_priorities = {cold.priority};
  opts.use_fast_evaluator = true;
  const LocalSearchResult fast = optimize_priority(tg, opts);
  opts.use_fast_evaluator = false;
  const LocalSearchResult ref = optimize_priority(tg, opts);
  EXPECT_EQ(fast.priority, ref.priority);
  EXPECT_EQ(fast.makespan, ref.makespan);
  EXPECT_EQ(fast.violations, ref.violations);
  EXPECT_EQ(fast.start_priority_index, ref.start_priority_index);
  expect_identical_placements(fast.schedule, ref.schedule, "warm starts");
}

sched::ParallelSearchOptions search_options(std::int64_t processors) {
  sched::ParallelSearchOptions opts;
  opts.processors = processors;
  opts.workers = 2;
  opts.seeds_per_strategy = 2;
  opts.max_iterations = 120;
  opts.restarts = 1;
  return opts;
}

void expect_identical_winner(const sched::ParallelSearchResult& a,
                             const sched::ParallelSearchResult& b,
                             const std::string& context) {
  EXPECT_EQ(a.best.strategy, b.best.strategy) << context;
  EXPECT_EQ(a.seed, b.seed) << context;
  EXPECT_EQ(a.best.makespan, b.best.makespan) << context;
  EXPECT_EQ(a.best.feasible, b.best.feasible) << context;
  EXPECT_EQ(a.best.deadline_violations, b.best.deadline_violations) << context;
  expect_identical_placements(a.best.schedule, b.best.schedule, context);
}

TEST(EvaluatorSearch, ParallelSearchWinnerIdenticalFastVsReference) {
  const TaskGraph tg = random_task_graph(101);
  sched::ParallelSearchOptions opts = search_options(2);
  opts.use_fast_evaluator = true;
  const sched::ParallelSearchResult fast = sched::parallel_search(tg, opts);
  opts.use_fast_evaluator = false;
  const sched::ParallelSearchResult ref = sched::parallel_search(tg, opts);
  expect_identical_winner(fast, ref, "parallel fast-vs-reference");
}

TEST(EvaluatorSearch, WarmSearchWithKernelMatchesColdReferenceWinnerOrBeatsIt) {
  // Cold with the reference pipeline, then warm (cache + overlay) with
  // the kernel: the extended determinism contract — cache warmth and the
  // evaluator choice together still yield the match-or-beat outcome, and
  // for this instance the warm winner must match outright.
  const TaskGraph tg = random_task_graph(55);
  TempDir dir("warm_kernel");
  sched::ScheduleCache cache(dir.path());
  sched::ParallelSearchOptions opts = search_options(2);
  opts.cache = &cache;
  opts.warm_start = true;
  opts.use_fast_evaluator = false;
  const sched::ParallelSearchResult cold = sched::parallel_search(tg, opts);
  opts.use_fast_evaluator = true;
  const sched::ParallelSearchResult warm = sched::parallel_search(tg, opts);
  EXPECT_EQ(warm.evaluated, 0u) << "second run must be answered by the cache";
  if (!warm.warm_start_won) {
    expect_identical_winner(warm, cold, "warm kernel vs cold reference");
  } else {
    EXPECT_TRUE(warm.best.feasible || warm.best.deadline_violations <=
                                          cold.best.deadline_violations);
  }
}

// ---------------------------------------------------------------------------
// Incremental differential suite: every move score from the checkpointed
// API must be bit-identical to a from-scratch evaluation — accepted and
// rejected moves alike, across 200 random graphs and M = 1..4.

/// Applies a local-search move in place (the exact move shapes
/// optimize_priority generates).
void apply_move(std::vector<JobId>& order, std::size_t i, std::size_t j,
                bool swap_move) {
  const std::size_t lo = std::min(i, j);
  const std::size_t hi = std::max(i, j);
  if (swap_move) {
    std::swap(order[i], order[j]);
  } else {
    std::rotate(order.begin() + static_cast<std::ptrdiff_t>(lo),
                order.begin() + static_cast<std::ptrdiff_t>(hi),
                order.begin() + static_cast<std::ptrdiff_t>(hi) + 1);
  }
}

TEST(EvaluatorIncremental, MoveScoresBitIdenticalAcross200Graphs) {
  std::uint64_t resumed = 0;
  std::uint64_t spliced = 0;
  for (std::uint64_t g = 0; g < 200; ++g) {
    const TaskGraph tg = random_task_graph(g + 1000);
    const std::int64_t processors = 1 + static_cast<std::int64_t>(g % 4);
    const std::size_t n = tg.job_count();
    sched::Evaluator inc(tg, processors);
    sched::Evaluator scratch(tg, processors);  // independent from-scratch check
    std::mt19937_64 rng(g * 6007 + 17);
    std::vector<JobId> current =
        schedule_priority(tg, all_heuristics()[g % all_heuristics().size()]);
    sched::EvalScore cur = inc.evaluate_baseline(current);
    {
      const sched::EvalScore full = scratch.evaluate(current);
      ASSERT_EQ(cur.deadline_violations, full.deadline_violations) << "graph " << g;
      ASSERT_EQ(cur.makespan, full.makespan) << "graph " << g;
    }
    std::uniform_int_distribution<std::size_t> pick(0, n - 1);
    for (int mv = 0; mv < 12; ++mv) {
      const std::size_t i = pick(rng);
      std::size_t j = pick(rng);
      if (i == j) {
        j = (j + 1) % n;
      }
      const std::size_t lo = std::min(i, j);
      const std::size_t hi = std::max(i, j);
      const bool swap_move = (rng() & 1U) == 0U;
      std::vector<JobId> moved = current;
      apply_move(moved, i, j, swap_move);
      const sched::EvalScore fast = inc.evaluate_move(
          moved, lo, hi, swap_move ? sched::MoveKind::kSwap : sched::MoveKind::kRotate);
      const sched::EvalScore full = scratch.evaluate(moved);
      const std::string ctx = "graph " + std::to_string(g) + " M=" +
                              std::to_string(processors) + " move " +
                              std::to_string(mv);
      ASSERT_EQ(fast.deadline_violations, full.deadline_violations) << ctx;
      ASSERT_EQ(fast.makespan, full.makespan) << ctx;
      if (fast.better_than(cur)) {  // accepted: rebuild the baseline, like the search
        current = std::move(moved);
        cur = inc.evaluate_baseline(current);
      }
    }
    EXPECT_EQ(inc.stats().incremental_evals, 12u) << "graph " << g;
    resumed += inc.stats().resumed_evals;
    spliced += inc.stats().spliced_evals;
  }
  // The shortcuts must actually fire across the suite, or this proves
  // nothing about the incremental paths.
  EXPECT_GT(resumed, 0u);
  EXPECT_GT(spliced, 0u);
}

TEST(EvaluatorIncremental, CheckpointStrideExtremesBitIdentical) {
  // Stride 1 (a checkpoint after every start), the √n default and stride n
  // (checkpoint only at start 0) must all return the same scores and walk
  // the same accept/reject trajectory.
  for (std::uint64_t g = 0; g < 24; ++g) {
    const TaskGraph tg = random_task_graph(g + 3000);
    const std::int64_t processors = 1 + static_cast<std::int64_t>(g % 4);
    const std::size_t n = tg.job_count();
    sched::Evaluator k1(tg, processors);
    sched::Evaluator kd(tg, processors);
    sched::Evaluator kn(tg, processors);
    k1.set_checkpoint_stride(1);
    kn.set_checkpoint_stride(n);
    std::vector<JobId> current = schedule_priority(tg, PriorityHeuristic::kAlapEdf);
    sched::EvalScore cur = k1.evaluate_baseline(current);
    ASSERT_EQ(cur.makespan, kd.evaluate_baseline(current).makespan);
    ASSERT_EQ(cur.makespan, kn.evaluate_baseline(current).makespan);
    std::mt19937_64 rng(g + 5);
    std::uniform_int_distribution<std::size_t> pick(0, n - 1);
    for (int mv = 0; mv < 10; ++mv) {
      const std::size_t i = pick(rng);
      std::size_t j = pick(rng);
      if (i == j) {
        j = (j + 1) % n;
      }
      const std::size_t lo = std::min(i, j);
      const std::size_t hi = std::max(i, j);
      const bool swap_move = (rng() & 1U) == 0U;
      const sched::MoveKind kind =
          swap_move ? sched::MoveKind::kSwap : sched::MoveKind::kRotate;
      std::vector<JobId> moved = current;
      apply_move(moved, i, j, swap_move);
      const sched::EvalScore s1 = k1.evaluate_move(moved, lo, hi, kind);
      const sched::EvalScore sd = kd.evaluate_move(moved, lo, hi, kind);
      const sched::EvalScore sn = kn.evaluate_move(moved, lo, hi, kind);
      const std::string ctx = "graph " + std::to_string(g) + " move " +
                              std::to_string(mv);
      ASSERT_EQ(s1.deadline_violations, sd.deadline_violations) << ctx;
      ASSERT_EQ(s1.makespan, sd.makespan) << ctx;
      ASSERT_EQ(s1.deadline_violations, sn.deadline_violations) << ctx;
      ASSERT_EQ(s1.makespan, sn.makespan) << ctx;
      if (s1.better_than(cur)) {
        current = std::move(moved);
        cur = k1.evaluate_baseline(current);
        (void)kd.evaluate_baseline(current);
        (void)kn.evaluate_baseline(current);
      }
    }
  }
}

TEST(EvaluatorIncremental, MoveWithoutBaselineFallsBackToFullRun) {
  const TaskGraph tg = random_task_graph(61);
  sched::Evaluator kernel(tg, 2);
  std::mt19937_64 rng(61);
  const std::vector<JobId> order = random_permutation(tg.job_count(), rng);
  const sched::EvalScore moved =
      kernel.evaluate_move(order, 0, 1, sched::MoveKind::kSwap);
  const sched::EvalScore full = kernel.evaluate(order);
  EXPECT_EQ(moved.deadline_violations, full.deadline_violations);
  EXPECT_EQ(moved.makespan, full.makespan);

  // Invalidation drops the baseline the same way.
  (void)kernel.evaluate_baseline(order);
  kernel.invalidate_baseline();
  const sched::EvalScore after =
      kernel.evaluate_move(order, 0, 1, sched::MoveKind::kSwap);
  EXPECT_EQ(after.makespan, full.makespan);
}

TEST(EvaluatorIncremental, ContractEdges) {
  const TaskGraph tg = random_task_graph(62);
  sched::Evaluator kernel(tg, 2);
  const std::vector<JobId> order =
      schedule_priority(tg, PriorityHeuristic::kAlapEdf);
  (void)kernel.evaluate_baseline(order);
  // Out-of-range move positions are rejected up front.
  EXPECT_THROW((void)kernel.evaluate_move(order, 2, 1, sched::MoveKind::kSwap),
               std::invalid_argument);
  EXPECT_THROW((void)kernel.evaluate_move(order, 0, tg.job_count(),
                                          sched::MoveKind::kRotate),
               std::invalid_argument);
  // The incremental API is a global-mode feature.
  std::size_t process_count = 0;
  for (const Job& j : tg.jobs()) {
    process_count = std::max(process_count, j.process.value() + 1);
  }
  sched::Evaluator part(tg, 2, wfd_assignment(tg, process_count, 2));
  EXPECT_TRUE(part.partition_mode());
  EXPECT_THROW((void)part.evaluate_baseline(order), std::logic_error);
  EXPECT_THROW((void)part.evaluate_move(order, 0, 1, sched::MoveKind::kSwap),
               std::logic_error);
}

// ---------------------------------------------------------------------------
// Partition-constrained kernel vs the naive partitioned pipeline.
TEST(EvaluatorPartition, KernelMatchesNaivePartitionedPipeline) {
  for (std::uint64_t g = 0; g < 40; ++g) {
    const TaskGraph tg = random_task_graph(g + 5000);
    const std::int64_t processors = 1 + static_cast<std::int64_t>(g % 4);
    std::size_t process_count = 0;
    for (const Job& j : tg.jobs()) {
      process_count = std::max(process_count, j.process.value() + 1);
    }
    const std::vector<ProcessorId> assignment =
        wfd_assignment(tg, process_count, processors);
    sched::Evaluator kernel(tg, processors, assignment);
    std::mt19937_64 rng(g * 271 + 3);
    const std::string context =
        "graph " + std::to_string(g) + " M=" + std::to_string(processors);
    for (int k = 0; k < 3; ++k) {
      const std::vector<JobId> order = random_permutation(tg.job_count(), rng);
      const StaticSchedule ref =
          partitioned_list_schedule(tg, assignment, order, processors);
      const sched::EvalScore fast = kernel.evaluate(order);
      EXPECT_EQ(fast.deadline_violations, ref.count_violations(tg).deadline)
          << context << " order " << k;
      EXPECT_EQ(fast.makespan, ref.makespan(tg)) << context << " order " << k;
      expect_identical_placements(kernel.materialize(order), ref,
                                  context + " order " + std::to_string(k));
    }
  }
}

// ---------------------------------------------------------------------------
// Visited-set determinism: memoized scores may change what gets computed,
// never what gets chosen.
TEST(EvaluatorSearch, VisitedSetAndIncrementalTogglesPreserveTrajectory) {
  for (const std::uint64_t g : {3ULL, 14ULL, 27ULL}) {
    const TaskGraph tg = random_task_graph(g);
    LocalSearchOptions opts;
    opts.processors = 2;
    opts.max_iterations = 150;
    opts.restarts = 1;
    opts.use_fast_evaluator = false;
    const LocalSearchResult ref = optimize_priority(tg, opts);

    opts.use_fast_evaluator = true;
    opts.use_incremental = true;
    sched::VisitedSet set(fingerprint(tg), 4096);
    opts.visited_set = &set;
    const std::string context = "graph " + std::to_string(g);
    const auto expect_matches_ref = [&](const LocalSearchResult& got,
                                        const std::string& what) {
      EXPECT_EQ(got.priority, ref.priority) << context << " " << what;
      EXPECT_EQ(got.violations, ref.violations) << context << " " << what;
      EXPECT_EQ(got.makespan, ref.makespan) << context << " " << what;
      EXPECT_EQ(got.iterations_used, ref.iterations_used) << context << " " << what;
      EXPECT_EQ(got.start_heuristic, ref.start_heuristic) << context << " " << what;
      expect_identical_placements(got.schedule, ref.schedule, context + " " + what);
    };
    expect_matches_ref(optimize_priority(tg, opts), "cold set");
    // Second run against the now-warm set: hits actually fire, the
    // trajectory still matches the no-set reference bit for bit.
    const LocalSearchResult rerun = optimize_priority(tg, opts);
    expect_matches_ref(rerun, "warm set");
    EXPECT_GT(rerun.visited_skips, 0u) << context;
    EXPECT_GT(set.hits(), 0u) << context;
  }
}

TEST(EvaluatorSearch, ParallelSearchVisitedSetToggleIdenticalWinner) {
  const TaskGraph tg = random_task_graph(303);
  sched::ParallelSearchOptions opts = search_options(2);
  opts.use_visited_set = true;
  opts.use_incremental = true;
  const sched::ParallelSearchResult on = sched::parallel_search(tg, opts);
  opts.use_visited_set = false;
  opts.use_incremental = false;
  const sched::ParallelSearchResult off = sched::parallel_search(tg, opts);
  expect_identical_winner(on, off, "visited-set toggle");
  EXPECT_GT(on.evals_incremental, 0u);
  EXPECT_EQ(off.evals_incremental, 0u);
  EXPECT_GT(off.evals_full, 0u);
}

TEST(EvaluatorSearch, ShardedSearchWithKernelMatchesReferenceInProcess) {
  const TaskGraph tg = random_task_graph(202);
  sched::ParallelSearchOptions opts = search_options(2);
  opts.use_fast_evaluator = false;
  const sched::ParallelSearchResult ref = sched::parallel_search(tg, opts);

  opts.use_fast_evaluator = true;
  TempDir dir("sharded_kernel");
  sched::ShardedSearchOptions sharding;
  sharding.shards = 3;
  sharding.shard_dir = dir.path();
  sharding.launcher = sched::inprocess_shard_launcher(tg, opts, dir.path());
  const sched::ParallelSearchResult sharded = sched::sharded_search(tg, opts, sharding);
  expect_identical_winner(sharded, ref, "sharded kernel vs in-process reference");
}

}  // namespace
}  // namespace fppn
