// Unit tests for the src/net layer in isolation: Endpoint parsing,
// Listener binding over both address families (ephemeral TCP ports
// included), WorkQueue's backpressure/drain semantics, and the Reactor's
// connection state machine — echo roundtrips, slow readers against large
// responses, the oversize cap, the hard-read-error path (a torn TCP
// request must surface as an error, never as a truncated dispatch), and
// drain aborting half-read connections.
#include <gtest/gtest.h>

#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <atomic>
#include <cerrno>
#include <csignal>
#include <cstring>
#include <filesystem>
#include <string>
#include <thread>
#include <vector>

#include "net/listener.hpp"
#include "net/reactor.hpp"
#include "net/work_queue.hpp"

namespace {

namespace fs = std::filesystem;
using fppn::net::Endpoint;
using fppn::net::Listener;
using fppn::net::Reactor;
using fppn::net::WorkQueue;

/// Fresh per-test scratch directory under the system temp dir.
class TempDir {
 public:
  explicit TempDir(const std::string& tag) {
    path_ = (fs::temp_directory_path() /
             ("fppn_net_test_" + tag + "_" + std::to_string(::getpid())))
                .string();
    fs::remove_all(path_);
    fs::create_directories(path_);
  }
  ~TempDir() {
    std::error_code ec;
    fs::remove_all(path_, ec);
  }
  [[nodiscard]] const std::string& path() const { return path_; }

 private:
  std::string path_;
};

std::string read_to_eof(int fd) {
  std::string data;
  char buf[4096];
  for (;;) {
    const ssize_t n = ::read(fd, buf, sizeof(buf));
    if (n > 0) {
      data.append(buf, static_cast<std::size_t>(n));
      continue;
    }
    if (n < 0 && errno == EINTR) {
      continue;
    }
    break;
  }
  return data;
}

void write_all(int fd, const std::string& data) {
  std::size_t off = 0;
  while (off < data.size()) {
    const ssize_t n = ::write(fd, data.data() + off, data.size() - off);
    if (n < 0) {
      if (errno == EINTR) {
        continue;
      }
      return;
    }
    off += static_cast<std::size_t>(n);
  }
}

/// One blocking request/response roundtrip against `endpoint`.
std::string roundtrip(const Endpoint& endpoint, const std::string& request) {
  const int fd = fppn::net::connect_endpoint(endpoint);
  if (fd < 0) {
    return "<connect failed: " + std::string(std::strerror(errno)) + ">";
  }
  write_all(fd, request);
  ::shutdown(fd, SHUT_WR);
  const std::string response = read_to_eof(fd);
  ::close(fd);
  return response;
}

// ----------------------------------------------------------- Endpoint --

TEST(Endpoint, ParsesHostPort) {
  const Endpoint a = Endpoint::parse_tcp("127.0.0.1:7777");
  EXPECT_EQ(a.kind, Endpoint::Kind::kTcp);
  EXPECT_EQ(a.host, "127.0.0.1");
  EXPECT_EQ(a.port, 7777);
  EXPECT_EQ(a.describe(), "tcp 127.0.0.1:7777");

  const Endpoint b = Endpoint::parse_tcp("localhost:0");
  EXPECT_EQ(b.host, "localhost");
  EXPECT_EQ(b.port, 0);

  const Endpoint u = Endpoint::unix_socket("/tmp/x.sock");
  EXPECT_EQ(u.kind, Endpoint::Kind::kUnix);
  EXPECT_EQ(u.describe(), "unix:'/tmp/x.sock'");
}

TEST(Endpoint, RejectsMalformedHostPort) {
  EXPECT_THROW((void)Endpoint::parse_tcp("nohost"), std::invalid_argument);
  EXPECT_THROW((void)Endpoint::parse_tcp(":123"), std::invalid_argument);
  EXPECT_THROW((void)Endpoint::parse_tcp("host:"), std::invalid_argument);
  EXPECT_THROW((void)Endpoint::parse_tcp("host:banana"), std::invalid_argument);
  EXPECT_THROW((void)Endpoint::parse_tcp("host:70000"), std::invalid_argument);
  EXPECT_THROW((void)Endpoint::parse_tcp("host:-1"), std::invalid_argument);
}

// ----------------------------------------------------------- Listener --

TEST(ListenerTest, UnixListenerOwnsItsSocketFile) {
  const TempDir dir("unix");
  const std::string path = dir.path() + "/l.sock";
  {
    Listener l = Listener::listen(Endpoint::unix_socket(path));
    EXPECT_TRUE(fs::exists(path));
    EXPECT_GE(l.fd(), 0);
    // A second bind over the same (stale) path must succeed: the daemon
    // owns its path and clears it first.
    l.close();
    EXPECT_FALSE(fs::exists(path));
  }
  Listener again = Listener::listen(Endpoint::unix_socket(path));
  EXPECT_TRUE(fs::exists(path));
}

TEST(ListenerTest, TcpEphemeralPortIsReported) {
  Listener l = Listener::listen(Endpoint::tcp("127.0.0.1", 0));
  EXPECT_NE(l.endpoint().port, 0);  // the actually-bound port
  const int fd = fppn::net::connect_endpoint(l.endpoint());
  ASSERT_GE(fd, 0) << std::strerror(errno);
  ::close(fd);
}

TEST(ListenerTest, ConnectToAbsentEndpointFails) {
  const TempDir dir("absent");
  EXPECT_LT(fppn::net::connect_endpoint(
                Endpoint::unix_socket(dir.path() + "/nothing.sock")),
            0);
}

// ---------------------------------------------------------- WorkQueue --

TEST(WorkQueueTest, RefusesWhenFullAndPreservesFifo) {
  WorkQueue<int> q(2);
  EXPECT_EQ(q.capacity(), 2u);
  EXPECT_TRUE(q.try_push(1));
  EXPECT_TRUE(q.try_push(2));
  EXPECT_FALSE(q.try_push(3));  // full: backpressure, never blocking
  EXPECT_EQ(q.size(), 2u);
  EXPECT_EQ(q.pop().value(), 1);
  EXPECT_TRUE(q.try_push(3));
  EXPECT_EQ(q.pop().value(), 2);
  EXPECT_EQ(q.pop().value(), 3);
}

TEST(WorkQueueTest, CloseStopsAdmissionsButDrainsBacklog) {
  WorkQueue<int> q(4);
  EXPECT_TRUE(q.try_push(10));
  EXPECT_TRUE(q.try_push(11));
  q.close();
  EXPECT_FALSE(q.try_push(12));
  EXPECT_EQ(q.pop().value(), 10);  // the backlog survives close()
  EXPECT_EQ(q.pop().value(), 11);
  EXPECT_FALSE(q.pop().has_value());  // drained: the consumer exit signal
}

TEST(WorkQueueTest, PopBlocksUntilAPushArrives) {
  WorkQueue<int> q(1);
  std::atomic<int> got{0};
  std::thread consumer([&] { got = q.pop().value(); });
  EXPECT_TRUE(q.try_push(42));
  consumer.join();
  EXPECT_EQ(got.load(), 42);
}

// ------------------------------------------------------------ Reactor --

/// An echo reactor on its own thread: on_request answers "echo:<text>"
/// synchronously; rejects get fixed lines the tests assert on.
class EchoReactor {
 public:
  explicit EchoReactor(std::size_t max_request_bytes = 0) {
    Reactor::Events events;
    events.on_request = [this](std::uint64_t conn, std::string request) {
      reactor_->submit_response(conn, "echo:" + request);
    };
    events.on_oversized = [this](std::uint64_t conn, std::size_t) {
      reactor_->submit_response(conn, "too-big\n");
    };
    events.on_read_error = [this](std::uint64_t conn, int error) {
      last_read_error_ = error;
      reactor_->submit_response(conn, "read-error\n");
    };
    reactor_ = std::make_unique<Reactor>(events, Reactor::Options{max_request_bytes});
  }

  void add(Listener listener) { reactor_->add_listener(std::move(listener)); }
  void start() {
    thread_ = std::thread([this] { reactor_->run(); });
  }
  void stop_and_join() {
    reactor_->request_stop();
    thread_.join();
  }
  [[nodiscard]] Reactor& reactor() { return *reactor_; }
  [[nodiscard]] int last_read_error() const { return last_read_error_.load(); }

 private:
  std::unique_ptr<Reactor> reactor_;
  std::thread thread_;
  std::atomic<int> last_read_error_{0};
};

TEST(ReactorTest, EchoesARequest) {
  const TempDir dir("echo");
  const std::string path = dir.path() + "/r.sock";
  EchoReactor echo;
  echo.add(Listener::listen(Endpoint::unix_socket(path)));
  echo.start();
  EXPECT_EQ(roundtrip(Endpoint::unix_socket(path), "hello"), "echo:hello");
  echo.stop_and_join();
  EXPECT_EQ(echo.reactor().counters().accepted, 1u);
  EXPECT_EQ(echo.reactor().counters().requests, 1u);
}

TEST(ReactorTest, LargeResponseReachesASlowReader) {
  // The response dwarfs any socket buffer, so the reactor must take
  // EAGAIN on write and finish over many POLLOUT rounds while the client
  // drains slowly — the partial-write path.
  const TempDir dir("slow");
  const std::string path = dir.path() + "/r.sock";
  EchoReactor echo;
  echo.add(Listener::listen(Endpoint::unix_socket(path)));
  echo.start();

  const std::string request(4 * 1024 * 1024, 'x');
  const int fd = fppn::net::connect_endpoint(Endpoint::unix_socket(path));
  ASSERT_GE(fd, 0);
  write_all(fd, request);
  ::shutdown(fd, SHUT_WR);
  std::string response;
  char buf[4096];
  for (;;) {
    const ssize_t n = ::read(fd, buf, sizeof(buf));
    if (n > 0) {
      response.append(buf, static_cast<std::size_t>(n));
      if (response.size() % (64 * 1024) < sizeof(buf)) {
        ::usleep(500);  // stay slower than the reactor can write
      }
      continue;
    }
    if (n < 0 && errno == EINTR) {
      continue;
    }
    break;
  }
  ::close(fd);
  EXPECT_EQ(response.size(), request.size() + 5);
  EXPECT_EQ(response.compare(0, 5, "echo:"), 0);
  EXPECT_EQ(response.substr(5), request);
  echo.stop_and_join();
}

TEST(ReactorTest, OversizedRequestIsRejectedNotDispatched) {
  const TempDir dir("oversize");
  const std::string path = dir.path() + "/r.sock";
  EchoReactor echo(/*max_request_bytes=*/16);
  echo.add(Listener::listen(Endpoint::unix_socket(path)));
  echo.start();
  const std::string big(100, 'y');
  EXPECT_EQ(roundtrip(Endpoint::unix_socket(path), big), "too-big\n");
  // A request inside the cap still echoes — the connection-level reject
  // did not poison the reactor.
  EXPECT_EQ(roundtrip(Endpoint::unix_socket(path), "ok"), "echo:ok");
  echo.stop_and_join();
  EXPECT_EQ(echo.reactor().counters().oversized, 1u);
  EXPECT_EQ(echo.reactor().counters().requests, 1u);
}

TEST(ReactorTest, TornTcpRequestRaisesReadErrorNotATruncatedDispatch) {
  // Regression for the PR 8 daemon bug: read_to_eof() treated a hard
  // read() error like EOF and solved the truncated request. A client
  // that aborts mid-send (RST via SO_LINGER{1,0}) must surface as
  // on_read_error — on_request must never see the partial bytes.
  std::signal(SIGPIPE, SIG_IGN);
  EchoReactor echo;
  Listener listener = Listener::listen(Endpoint::tcp("127.0.0.1", 0));
  const Endpoint endpoint = listener.endpoint();
  echo.add(std::move(listener));
  echo.start();

  const int fd = fppn::net::connect_endpoint(endpoint);
  ASSERT_GE(fd, 0);
  write_all(fd, "partial request");
  struct linger hard_close;
  hard_close.l_onoff = 1;
  hard_close.l_linger = 0;
  ASSERT_EQ(::setsockopt(fd, SOL_SOCKET, SO_LINGER, &hard_close,
                         sizeof(hard_close)),
            0);
  ::close(fd);  // RST instead of FIN: the server read() fails hard

  // The reactor notices asynchronously; poll its counters briefly.
  for (int i = 0; i < 100; ++i) {
    if (echo.reactor().counters().read_errors > 0) {
      break;
    }
    ::usleep(10 * 1000);
  }
  echo.stop_and_join();
  EXPECT_EQ(echo.reactor().counters().read_errors, 1u);
  EXPECT_EQ(echo.reactor().counters().requests, 0u);  // never dispatched
  EXPECT_EQ(echo.last_read_error(), ECONNRESET);
}

TEST(ReactorTest, ServesConcurrentClients) {
  const TempDir dir("many");
  const std::string path = dir.path() + "/r.sock";
  EchoReactor echo;
  echo.add(Listener::listen(Endpoint::unix_socket(path)));
  echo.start();

  constexpr int kClients = 16;
  std::vector<std::string> responses(kClients);
  std::vector<std::thread> clients;
  clients.reserve(kClients);
  for (int i = 0; i < kClients; ++i) {
    clients.emplace_back([&, i] {
      responses[static_cast<std::size_t>(i)] =
          roundtrip(Endpoint::unix_socket(path), "client-" + std::to_string(i));
    });
  }
  for (std::thread& t : clients) {
    t.join();
  }
  for (int i = 0; i < kClients; ++i) {
    EXPECT_EQ(responses[static_cast<std::size_t>(i)],
              "echo:client-" + std::to_string(i));
  }
  echo.stop_and_join();
  EXPECT_EQ(echo.reactor().counters().requests,
            static_cast<std::uint64_t>(kClients));
}

TEST(ReactorTest, DrainAbortsHalfReadConnections) {
  const TempDir dir("drain");
  const std::string path = dir.path() + "/r.sock";
  EchoReactor echo;
  echo.add(Listener::listen(Endpoint::unix_socket(path)));
  echo.start();

  // Connect and send bytes without EOF: the connection is mid-read when
  // the drain begins, so the reactor drops it (no response).
  const int fd = fppn::net::connect_endpoint(Endpoint::unix_socket(path));
  ASSERT_GE(fd, 0);
  write_all(fd, "never finished");
  for (int i = 0; i < 100 && echo.reactor().counters().accepted == 0; ++i) {
    ::usleep(10 * 1000);
  }
  echo.stop_and_join();
  EXPECT_EQ(read_to_eof(fd), "");  // dropped, not answered
  ::close(fd);
  EXPECT_EQ(echo.reactor().counters().aborted, 1u);
  EXPECT_FALSE(fs::exists(path));  // the drain unlinked the socket file
}

}  // namespace
