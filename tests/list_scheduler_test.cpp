// Non-preemptive list scheduling (§III-B), including the Fig. 4 scenario:
// a feasible 2-processor schedule for the Fig. 3 task graph.
#include "sched/list_scheduler.hpp"

#include <gtest/gtest.h>

#include "apps/fig1.hpp"
#include "sched/search.hpp"
#include "taskgraph/derivation.hpp"

namespace fppn {
namespace {

Job make_job(const std::string& name, std::int64_t a, std::int64_t d, std::int64_t c) {
  Job j;
  j.process = ProcessId{0};
  j.arrival = Time::ms(a);
  j.deadline = Time::ms(d);
  j.wcet = Duration::ms(c);
  j.name = name;
  return j;
}

TEST(ListScheduler, SingleProcessorSerializes) {
  TaskGraph tg;
  tg.add_job(make_job("A", 0, 100, 10));
  tg.add_job(make_job("B", 0, 100, 10));
  const auto s = list_schedule(tg, PriorityHeuristic::kAlapEdf, 1);
  EXPECT_TRUE(s.check_feasibility(tg).feasible());
  EXPECT_EQ(s.makespan(tg), Time::ms(20));
}

TEST(ListScheduler, TwoProcessorsParallelize) {
  TaskGraph tg;
  tg.add_job(make_job("A", 0, 100, 10));
  tg.add_job(make_job("B", 0, 100, 10));
  const auto s = list_schedule(tg, PriorityHeuristic::kAlapEdf, 2);
  EXPECT_EQ(s.makespan(tg), Time::ms(10));
  EXPECT_NE(s.placement(JobId(0)).processor, s.placement(JobId(1)).processor);
}

TEST(ListScheduler, RespectsArrivalTimes) {
  TaskGraph tg;
  tg.add_job(make_job("late", 50, 200, 10));
  const auto s = list_schedule(tg, PriorityHeuristic::kArrivalOrder, 1);
  EXPECT_EQ(s.start(JobId(0)), Time::ms(50));
}

TEST(ListScheduler, RespectsPrecedence) {
  TaskGraph tg;
  const JobId a = tg.add_job(make_job("A", 0, 200, 30));
  const JobId b = tg.add_job(make_job("B", 0, 200, 10));
  tg.add_edge(a, b);
  const auto s = list_schedule(tg, PriorityHeuristic::kAlapEdf, 2);
  EXPECT_GE(s.start(b), s.end(a, tg));
  EXPECT_TRUE(s.check_feasibility(tg).feasible());
}

TEST(ListScheduler, PriorityDecidesWhoGoesFirst) {
  TaskGraph tg;
  const JobId a = tg.add_job(make_job("A", 0, 1000, 10));
  const JobId b = tg.add_job(make_job("B", 0, 1000, 10));
  // Explicit SP order: B before A.
  const auto s = list_schedule(tg, std::vector<JobId>{b, a}, 1);
  EXPECT_EQ(s.start(b), Time::ms(0));
  EXPECT_EQ(s.start(a), Time::ms(10));
}

TEST(ListScheduler, NonPreemptiveGapFilling) {
  // A arrives at 0 (long), B arrives at 5: on one processor B must wait
  // for A's completion (no preemption).
  TaskGraph tg;
  tg.add_job(make_job("A", 0, 200, 50));
  tg.add_job(make_job("B", 5, 200, 10));
  const auto s = list_schedule(tg, PriorityHeuristic::kArrivalOrder, 1);
  EXPECT_EQ(s.start(JobId(1)), Time::ms(50));
}

TEST(ListScheduler, IdleUntilArrival) {
  // Processor idles from 10 to 100 waiting for the only remaining job.
  TaskGraph tg;
  tg.add_job(make_job("A", 0, 200, 10));
  tg.add_job(make_job("B", 100, 200, 10));
  const auto s = list_schedule(tg, PriorityHeuristic::kArrivalOrder, 1);
  EXPECT_EQ(s.start(JobId(1)), Time::ms(100));
}

TEST(ListScheduler, BadPriorityVectorRejected) {
  TaskGraph tg;
  tg.add_job(make_job("A", 0, 100, 10));
  tg.add_job(make_job("B", 0, 100, 10));
  EXPECT_THROW(list_schedule(tg, std::vector<JobId>{JobId(0)}, 1),
               std::invalid_argument);
  EXPECT_THROW(list_schedule(tg, std::vector<JobId>{JobId(0), JobId(0)}, 1),
               std::invalid_argument);
}

TEST(ListScheduler, EmptyGraph) {
  TaskGraph tg;
  const auto s = list_schedule(tg, std::vector<JobId>{}, 1);
  EXPECT_EQ(s.makespan(tg), Time::ms(0));
}

// ------------------------------------------------------------ Fig. 4

TEST(Fig4, TwoProcessorScheduleIsFeasible) {
  // The paper's Fig. 4: the Fig. 3 task graph fits two processors within
  // the 200 ms frame.
  const auto app = apps::build_fig1();
  const auto derived = derive_task_graph(app.net, app.fig3_wcets());
  const auto s = list_schedule(derived.graph, PriorityHeuristic::kAlapEdf, 2);
  const auto report = s.check_feasibility(derived.graph);
  EXPECT_TRUE(report.feasible()) << report.to_string(derived.graph);
  EXPECT_LE(s.makespan(derived.graph), Time::ms(200));
}

TEST(Fig4, OneProcessorIsInfeasible) {
  // 250 ms of work in a 200 ms frame (load 5/3): one processor cannot
  // meet the deadlines, matching Prop. 3.1's bound of 2.
  const auto app = apps::build_fig1();
  const auto derived = derive_task_graph(app.net, app.fig3_wcets());
  bool any_feasible = false;
  for (const PriorityHeuristic h : all_heuristics()) {
    const auto s = list_schedule(derived.graph, h, 1);
    any_feasible |= s.check_feasibility(derived.graph).feasible();
  }
  EXPECT_FALSE(any_feasible);
}

TEST(Fig4, GanttChartShowsBothProcessors) {
  const auto app = apps::build_fig1();
  const auto derived = derive_task_graph(app.net, app.fig3_wcets());
  const auto s = list_schedule(derived.graph, PriorityHeuristic::kAlapEdf, 2);
  const std::string gantt = s.to_gantt(derived.graph, 100);
  EXPECT_NE(gantt.find("M1"), std::string::npos);
  EXPECT_NE(gantt.find("M2"), std::string::npos);
}

TEST(Search, BestScheduleFindsFeasibleHeuristic) {
  const auto app = apps::build_fig1();
  const auto derived = derive_task_graph(app.net, app.fig3_wcets());
  const ScheduleAttempt attempt = best_schedule(derived.graph, 2);
  EXPECT_TRUE(attempt.feasible);
  EXPECT_LE(attempt.makespan, Time::ms(200));
}

TEST(Search, MinProcessorsMatchesLoadBound) {
  const auto app = apps::build_fig1();
  const auto derived = derive_task_graph(app.net, app.fig3_wcets());
  const MinProcessorsResult result = min_processors(derived.graph);
  EXPECT_EQ(result.lower_bound, 2);  // ceil(5/3)
  EXPECT_EQ(result.processors, 2);
  ASSERT_TRUE(result.attempt.has_value());
  EXPECT_TRUE(result.attempt->feasible);
}

}  // namespace
}  // namespace fppn
