// Action traces (§II-A Act sequences) and the overhead model helpers.
#include "fppn/actions.hpp"

#include <gtest/gtest.h>

#include <algorithm>

#include "fppn/network.hpp"
#include "sim/overhead.hpp"

namespace fppn {
namespace {

struct Fixture {
  Network net;
  ProcessId p, q;
  ChannelId c;
};

Fixture make() {
  Fixture f;
  NetworkBuilder b;
  f.p = b.periodic("P", Duration::ms(100), Duration::ms(100), no_op_behavior());
  f.q = b.periodic("Q", Duration::ms(100), Duration::ms(100), no_op_behavior());
  f.c = b.fifo("c", f.p, f.q);
  b.priority(f.p, f.q);
  f.net = std::move(b).build();
  return f;
}

ActionTrace sample(const Fixture& f) {
  ActionTrace t;
  t.push(WaitAction{Time::ms(0)});
  t.push(JobStartAction{f.p, 1});
  t.push(WriteAction{f.p, 1, f.c, Value{1.0}});
  t.push(JobEndAction{f.p, 1});
  t.push(JobStartAction{f.q, 1});
  t.push(ReadAction{f.q, 1, f.c, Value{1.0}});
  t.push(JobEndAction{f.q, 1});
  t.push(WaitAction{Time::ms(100)});
  t.push(JobStartAction{f.p, 2});
  t.push(WriteAction{f.p, 2, f.c, Value{2.0}});
  t.push(JobEndAction{f.p, 2});
  return t;
}

TEST(ActionTrace, WritesToFiltersByChannel) {
  const Fixture f = make();
  const ActionTrace t = sample(f);
  const auto writes = t.writes_to(f.c);
  ASSERT_EQ(writes.size(), 2u);
  EXPECT_EQ(writes[0].value, Value{1.0});
  EXPECT_EQ(writes[1].k, 2);
  EXPECT_TRUE(t.writes_to(ChannelId{99}).empty());
}

TEST(ActionTrace, OfProcessExcludesWaitsAndOthers) {
  const Fixture f = make();
  const ActionTrace t = sample(f);
  const auto p_actions = t.of_process(f.p);
  EXPECT_EQ(p_actions.size(), 6u);  // 2x (start, write, end)
  const auto q_actions = t.of_process(f.q);
  EXPECT_EQ(q_actions.size(), 3u);
  for (const Action& a : p_actions) {
    EXPECT_FALSE(std::holds_alternative<WaitAction>(a));
  }
}

TEST(ActionTrace, RenderedFormMatchesPaperNotation) {
  const Fixture f = make();
  const std::string s = trace_to_string(sample(f), f.net, /*multiline=*/false);
  EXPECT_NE(s.find("w(0)"), std::string::npos);
  EXPECT_NE(s.find("P[1]:write(c)=1"), std::string::npos);
  EXPECT_NE(s.find("Q[1]:read(c)=1"), std::string::npos);
  EXPECT_NE(s.find("w(100)"), std::string::npos);
  // Multiline variant: one action per line.
  const std::string ml = trace_to_string(sample(f), f.net, /*multiline=*/true);
  EXPECT_EQ(static_cast<std::size_t>(std::count(ml.begin(), ml.end(), '\n')),
            sample(f).size() - 1);
}

TEST(ActionTrace, ClearEmptiesEverything) {
  const Fixture f = make();
  ActionTrace t = sample(f);
  EXPECT_FALSE(t.empty());
  t.clear();
  EXPECT_TRUE(t.empty());
  EXPECT_EQ(t.size(), 0u);
}

TEST(OverheadModel, MppaMeasuredValues) {
  const OverheadModel m = OverheadModel::mppa_measured();
  EXPECT_EQ(m.frame_overhead(0), Duration::ms(41));
  EXPECT_EQ(m.frame_overhead(1), Duration::ms(20));
  EXPECT_EQ(m.frame_overhead(100), Duration::ms(20));
  EXPECT_FALSE(m.is_zero());
}

TEST(OverheadModel, NoneIsZero) {
  const OverheadModel m = OverheadModel::none();
  EXPECT_TRUE(m.is_zero());
  EXPECT_EQ(m.frame_overhead(0), Duration::zero());
}

}  // namespace
}  // namespace fppn
