#include "fppn/exec_state.hpp"

#include <gtest/gtest.h>

namespace fppn {
namespace {

struct Fixture {
  Network net;
  ProcessId writer, reader;
  ChannelId chan, in, out;

  static Fixture make(ChannelKind kind = ChannelKind::kFifo) {
    Fixture f;
    NetworkBuilder b;
    f.writer = b.periodic("W", Duration::ms(100), Duration::ms(100),
                          behavior([](JobContext& ctx) {
                            const Value v = ctx.read("in");
                            ctx.write("chan", has_data(v) ? v : Value{std::int64_t{-1}});
                          }));
    f.reader = b.periodic("R", Duration::ms(100), Duration::ms(100),
                          behavior([](JobContext& ctx) {
                            ctx.write("out", ctx.read("chan"));
                          }));
    f.chan = b.channel("chan", kind, f.writer, f.reader);
    f.in = b.external_input("in", f.writer);
    f.out = b.external_output("out", f.reader);
    b.priority(f.writer, f.reader);
    f.net = std::move(b).build();
    return f;
  }
};

TEST(ExecutionState, JobCountsIncrement) {
  const Fixture f = Fixture::make();
  ExecutionState s(f.net);
  EXPECT_EQ(s.job_count(f.writer), 0);
  EXPECT_EQ(s.run_job(f.writer, Time::ms(0)), 1);
  EXPECT_EQ(s.run_job(f.writer, Time::ms(100)), 2);
  EXPECT_EQ(s.job_count(f.writer), 2);
  EXPECT_EQ(s.job_count(f.reader), 0);
}

TEST(ExecutionState, ExternalInputSampledByJobIndex) {
  const Fixture f = Fixture::make();
  InputScripts in;
  in.emplace(f.in, std::vector<Value>{Value{std::int64_t{10}}, Value{std::int64_t{20}}});
  ExecutionState s(f.net, in);
  s.run_job(f.writer, Time::ms(0));    // k=1 reads sample 10
  s.run_job(f.writer, Time::ms(100));  // k=2 reads sample 20
  s.run_job(f.writer, Time::ms(200));  // k=3: script exhausted -> no data
  const auto h = s.histories();
  const auto& writes = h.channel_writes.at(f.chan);
  ASSERT_EQ(writes.size(), 3u);
  EXPECT_EQ(writes[0], Value{std::int64_t{10}});
  EXPECT_EQ(writes[1], Value{std::int64_t{20}});
  EXPECT_EQ(writes[2], Value{std::int64_t{-1}});  // no_data fallback
}

TEST(ExecutionState, OutputSamplesCarryIndexAndTime) {
  const Fixture f = Fixture::make();
  ExecutionState s(f.net);
  s.run_job(f.writer, Time::ms(0));
  s.run_job(f.reader, Time::ms(5));
  const auto h = s.histories();
  const auto& samples = h.output_samples.at(f.out);
  ASSERT_EQ(samples.size(), 1u);
  EXPECT_EQ(samples[0].k, 1);
  EXPECT_EQ(samples[0].time, Time::ms(5));
}

TEST(ExecutionState, AccessControlEnforced) {
  const Fixture f = Fixture::make();
  // A behavior that tries to read a channel it does not own.
  NetworkBuilder b;
  const ProcessId w = b.periodic("W", Duration::ms(100), Duration::ms(100),
                                 behavior([](JobContext& ctx) {
                                   (void)ctx.read("c");  // W is the *writer*
                                 }));
  const ProcessId r =
      b.periodic("R", Duration::ms(100), Duration::ms(100), no_op_behavior());
  b.fifo("c", w, r);
  b.priority(w, r);
  const Network net = std::move(b).build();
  ExecutionState s(net);
  EXPECT_THROW(s.run_job(w, Time::ms(0)), std::logic_error);
}

TEST(ExecutionState, WriteToInputAndReadFromOutputRejected) {
  NetworkBuilder b;
  const ProcessId p = b.periodic("P", Duration::ms(100), Duration::ms(100),
                                 behavior([](JobContext& ctx) {
                                   ctx.write("in", Value{1.0});
                                 }));
  b.external_input("in", p);
  const Network net = std::move(b).build();
  ExecutionState s(net);
  EXPECT_THROW(s.run_job(p, Time::ms(0)), std::logic_error);
}

TEST(ExecutionState, UnknownChannelNameRejected) {
  NetworkBuilder b;
  const ProcessId p = b.periodic("P", Duration::ms(100), Duration::ms(100),
                                 behavior([](JobContext& ctx) {
                                   (void)ctx.read("ghost");
                                 }));
  const Network net = std::move(b).build();
  ExecutionState s(net);
  EXPECT_THROW(s.run_job(p, Time::ms(0)), std::invalid_argument);
}

TEST(ExecutionState, InputScriptOnNonInputChannelRejected) {
  const Fixture f = Fixture::make();
  InputScripts bad;
  bad.emplace(f.chan, std::vector<Value>{Value{1.0}});
  EXPECT_THROW(ExecutionState(f.net, bad), std::invalid_argument);
}

TEST(ExecutionState, TimeMonotonicityEnforced) {
  const Fixture f = Fixture::make();
  ExecutionState s(f.net);
  s.advance_time(Time::ms(100));
  EXPECT_THROW(s.advance_time(Time::ms(50)), std::logic_error);
  EXPECT_NO_THROW(s.advance_time(Time::ms(100)));  // equal is fine
}

TEST(ExecutionState, TraceRecordsActions) {
  const Fixture f = Fixture::make();
  InputScripts in;
  in.emplace(f.in, std::vector<Value>{Value{std::int64_t{7}}});
  ExecutionState s(f.net, in);
  s.advance_time(Time::ms(0));
  s.run_job(f.writer, Time::ms(0));
  const auto& actions = s.trace().actions();
  // w(0), JobStart, Read, Write, JobEnd.
  ASSERT_EQ(actions.size(), 5u);
  EXPECT_TRUE(std::holds_alternative<WaitAction>(actions[0]));
  EXPECT_TRUE(std::holds_alternative<JobStartAction>(actions[1]));
  EXPECT_TRUE(std::holds_alternative<ReadAction>(actions[2]));
  EXPECT_TRUE(std::holds_alternative<WriteAction>(actions[3]));
  EXPECT_TRUE(std::holds_alternative<JobEndAction>(actions[4]));
  const std::string rendered = trace_to_string(s.trace(), f.net, false);
  EXPECT_NE(rendered.find("W[1]:read(in)=7"), std::string::npos);
}

TEST(ExecutionState, BehaviorStateIsFreshPerExecution) {
  // Two ExecutionStates over the same network must not share behavior
  // instances (X_p0 initialization per run).
  NetworkBuilder b;
  class Counter final : public ProcessBehavior {
   public:
    void on_job(JobContext& ctx) override {
      ctx.write("out", Value{++count_});
    }

   private:
    std::int64_t count_ = 0;
  };
  const ProcessId p = b.periodic("P", Duration::ms(100), Duration::ms(100),
                                 [] { return std::make_unique<Counter>(); });
  const ChannelId out = b.external_output("out", p);
  const Network net = std::move(b).build();
  ExecutionState s1(net);
  s1.run_job(p, Time::ms(0));
  s1.run_job(p, Time::ms(100));
  ExecutionState s2(net);
  s2.run_job(p, Time::ms(0));
  EXPECT_EQ(s1.histories().output_samples.at(out).back().value, Value{std::int64_t{2}});
  EXPECT_EQ(s2.histories().output_samples.at(out).back().value, Value{std::int64_t{1}});
}

}  // namespace
}  // namespace fppn
