// Sharded schedule search: deterministic shard plans, bit-identical
// winners vs. the in-process search (cold and warm, shared cache),
// manifest round-trip, the pre-populated consume mode, and the
// loud-failure contract for stale/corrupt shard directories.
#include "sched/sharded_search.hpp"

#include <gtest/gtest.h>

#include <unistd.h>

#include <filesystem>
#include <fstream>
#include <limits>
#include <random>
#include <set>

#include "io/shard_manifest.hpp"

namespace fppn {
namespace {

namespace fs = std::filesystem;

/// Fresh per-test scratch directory under the system temp dir.
class TempDir {
 public:
  explicit TempDir(const std::string& tag) {
    path_ = (fs::temp_directory_path() /
             ("fppn_shard_test_" + tag + "_" + std::to_string(::getpid())))
                .string();
    fs::remove_all(path_);
    fs::create_directories(path_);
  }
  ~TempDir() {
    std::error_code ec;
    fs::remove_all(path_, ec);
  }
  [[nodiscard]] const std::string& path() const { return path_; }

 private:
  std::string path_;
};

/// Random layered DAG (same construction as the parallel-search tests).
TaskGraph random_task_graph(int layers, int width, std::int64_t frame,
                            std::uint64_t seed) {
  std::mt19937_64 rng(seed);
  std::uniform_int_distribution<std::int64_t> wcet(5, 30);
  std::uniform_int_distribution<int> fan(1, 3);
  TaskGraph tg(Duration::ms(frame));
  std::vector<std::vector<JobId>> grid(static_cast<std::size_t>(layers));
  for (int l = 0; l < layers; ++l) {
    for (int w = 0; w < width; ++w) {
      Job j;
      j.process = ProcessId{static_cast<std::size_t>(l * width + w)};
      j.arrival = Time::ms(0);
      j.deadline = Time::ms(frame);
      j.wcet = Duration::ms(wcet(rng));
      j.name = "J" + std::to_string(l) + "_" + std::to_string(w);
      grid[static_cast<std::size_t>(l)].push_back(tg.add_job(j));
    }
  }
  std::uniform_int_distribution<int> pick(0, width - 1);
  for (int l = 0; l + 1 < layers; ++l) {
    for (int w = 0; w < width; ++w) {
      const int out = fan(rng);
      for (int e = 0; e < out; ++e) {
        tg.add_edge(grid[static_cast<std::size_t>(l)][static_cast<std::size_t>(w)],
                    grid[static_cast<std::size_t>(l + 1)]
                        [static_cast<std::size_t>(pick(rng))]);
      }
    }
  }
  return tg;
}

sched::ParallelSearchOptions base_options(std::int64_t processors) {
  sched::ParallelSearchOptions opts;
  opts.processors = processors;
  opts.seeds_per_strategy = 3;
  opts.max_iterations = 300;
  opts.restarts = 1;
  return opts;
}

void expect_identical_schedules(const StaticSchedule& a, const StaticSchedule& b,
                                std::size_t jobs) {
  ASSERT_EQ(a.job_count(), jobs);
  ASSERT_EQ(b.job_count(), jobs);
  for (std::size_t i = 0; i < jobs; ++i) {
    const JobId id{i};
    ASSERT_EQ(a.is_placed(id), b.is_placed(id)) << "job " << i;
    if (!a.is_placed(id)) {
      continue;
    }
    EXPECT_EQ(a.placement(id).processor, b.placement(id).processor) << "job " << i;
    EXPECT_EQ(a.placement(id).start, b.placement(id).start) << "job " << i;
  }
}

void expect_same_winner(const sched::ParallelSearchResult& a,
                        const sched::ParallelSearchResult& b, std::size_t jobs) {
  EXPECT_EQ(a.best.strategy, b.best.strategy);
  EXPECT_EQ(a.seed, b.seed);
  EXPECT_EQ(a.best.detail, b.best.detail);
  EXPECT_EQ(a.best.makespan, b.best.makespan);
  EXPECT_EQ(a.best.deadline_violations, b.best.deadline_violations);
  EXPECT_EQ(a.best.feasible, b.best.feasible);
  expect_identical_schedules(a.best.schedule, b.best.schedule, jobs);
}

TEST(ShardPlan, PartitionsTheCandidateMatrixDeterministically) {
  const TaskGraph tg = random_task_graph(4, 4, 160, 5);
  const sched::ParallelSearchOptions opts = base_options(3);
  const std::vector<sched::SearchCandidate> candidates =
      sched::enumerate_search_candidates(opts);

  for (const int shards : {1, 2, 3, 7}) {
    const sched::ShardPlan plan = sched::make_shard_plan(tg, opts, shards);
    EXPECT_EQ(plan.shards, shards);
    EXPECT_EQ(plan.graph_fingerprint, fingerprint(tg));
    EXPECT_EQ(plan.total_candidates(), candidates.size());
    // Round-robin: candidate i lands on shard i % shards, preserving the
    // global order within each shard.
    std::size_t index = 0;
    std::set<std::pair<std::string, std::uint64_t>> seen;
    for (const sched::SearchCandidate& c : candidates) {
      const auto& shard = plan.assignment[index % static_cast<std::size_t>(shards)];
      const std::size_t pos = index / static_cast<std::size_t>(shards);
      ASSERT_LT(pos, shard.size());
      EXPECT_EQ(shard[pos], c);
      seen.emplace(c.strategy, c.seed);
      ++index;
    }
    EXPECT_EQ(seen.size(), candidates.size()) << "candidates are unique";
    // Plans are reproducible: a worker process recomputes the same plan.
    const sched::ShardPlan again = sched::make_shard_plan(tg, opts, shards);
    ASSERT_EQ(again.assignment.size(), plan.assignment.size());
    for (std::size_t s = 0; s < plan.assignment.size(); ++s) {
      EXPECT_EQ(again.assignment[s], plan.assignment[s]);
    }
  }
}

TEST(ShardPlan, RejectsBadShardCounts) {
  const TaskGraph tg = random_task_graph(2, 2, 100, 1);
  EXPECT_THROW((void)sched::make_shard_plan(tg, base_options(2), 0),
               std::invalid_argument);
  EXPECT_THROW((void)sched::make_shard_plan(tg, base_options(2), -3),
               std::invalid_argument);
}

TEST(ShardManifest, RoundTripsBitIdentically) {
  io::ShardManifest manifest;
  manifest.fingerprint = 0x1234abcd5678ef09ULL;
  manifest.shard_index = 1;
  manifest.shard_count = 4;
  manifest.processors = 3;
  manifest.max_iterations = 300;
  manifest.restarts = 2;
  manifest.evaluated = 2;
  manifest.cache_hits = 1;
  manifest.candidates.push_back(io::ShardManifestEntry{"alap-edf", 1, "a.sched"});
  manifest.candidates.push_back(io::ShardManifestEntry{"local-search", 7, "b.sched"});
  // Seeds are full-range uint64: values >= 2^63 must survive the
  // round-trip (readers must accept everything the writer emits).
  manifest.candidates.push_back(io::ShardManifestEntry{
      "local-search", std::numeric_limits<std::uint64_t>::max(), "c.sched"});

  const std::string text = io::write_shard_manifest(manifest);
  const io::ShardManifest back = io::read_shard_manifest_string(text);
  EXPECT_EQ(back.fingerprint, manifest.fingerprint);
  EXPECT_EQ(back.shard_index, manifest.shard_index);
  EXPECT_EQ(back.shard_count, manifest.shard_count);
  EXPECT_EQ(back.processors, manifest.processors);
  EXPECT_EQ(back.max_iterations, manifest.max_iterations);
  EXPECT_EQ(back.restarts, manifest.restarts);
  EXPECT_EQ(back.evaluated, manifest.evaluated);
  EXPECT_EQ(back.cache_hits, manifest.cache_hits);
  ASSERT_EQ(back.candidates.size(), manifest.candidates.size());
  for (std::size_t i = 0; i < manifest.candidates.size(); ++i) {
    EXPECT_EQ(back.candidates[i].strategy, manifest.candidates[i].strategy);
    EXPECT_EQ(back.candidates[i].seed, manifest.candidates[i].seed);
    EXPECT_EQ(back.candidates[i].file, manifest.candidates[i].file);
  }
  // Round-trip of the writer output is stable.
  EXPECT_EQ(io::write_shard_manifest(back), text);
}

TEST(ShardManifest, RejectsVersionCorruptionAndTrailingGarbage) {
  io::ShardManifest manifest;
  manifest.shard_index = 0;
  manifest.shard_count = 1;
  manifest.processors = 2;
  manifest.candidates.push_back(io::ShardManifestEntry{"alap-edf", 1, "a.sched"});
  const std::string text = io::write_shard_manifest(manifest);

  {
    std::string wrong = text;
    wrong.replace(wrong.find("v1"), 2, "v9");
    EXPECT_THROW((void)io::read_shard_manifest_string(wrong), io::ParseError);
  }
  {
    // Truncation: drop the "end" trailer.
    const std::string truncated = text.substr(0, text.rfind("end"));
    EXPECT_THROW((void)io::read_shard_manifest_string(truncated), io::ParseError);
  }
  {
    // Candidate count promises more lines than present.
    std::string overcount = text;
    overcount.replace(overcount.find("candidates 1"), 12, "candidates 3");
    EXPECT_THROW((void)io::read_shard_manifest_string(overcount), io::ParseError);
  }
  EXPECT_THROW((void)io::read_shard_manifest_string(text + "junk\n"), io::ParseError);
  EXPECT_NO_THROW((void)io::read_shard_manifest_string(text + "\n \n"));
  EXPECT_THROW((void)io::read_shard_manifest_string("not a manifest\n"),
               io::ParseError);
}

TEST(ShardedSearch, MatchesInProcessWinnerBitIdentically) {
  // Acceptance criterion: an N-shard run picks the bit-identical winner
  // of the single-process search.
  for (const std::uint64_t graph_seed : {0ULL, 7ULL}) {
    const TaskGraph tg = random_task_graph(5, 5, 160, graph_seed);
    const sched::ParallelSearchOptions opts = base_options(3);
    const sched::ParallelSearchResult single = sched::parallel_search(tg, opts);

    for (const int shards : {1, 2, 4}) {
      const TempDir dir("match" + std::to_string(shards));
      sched::ShardedSearchOptions sharding;
      sharding.shards = shards;
      sharding.shard_dir = dir.path();
      sharding.launcher = sched::inprocess_shard_launcher(tg, opts, dir.path());
      const sched::ParallelSearchResult sharded =
          sched::sharded_search(tg, opts, sharding);
      EXPECT_EQ(sharded.candidates, single.candidates) << "shards " << shards;
      EXPECT_EQ(sharded.workers_used, shards);
      expect_same_winner(sharded, single, tg.job_count());
    }
  }
}

TEST(ShardedSearch, ColdAndWarmSharedCachePickTheSameWinner) {
  // Shard workers share one ScheduleCache: the warm rerun answers every
  // candidate from the cache yet merges the bit-identical winner.
  const TaskGraph tg = random_task_graph(5, 5, 160, 3);
  const TempDir cache_dir("cache");
  sched::ScheduleCache cache(cache_dir.path());
  sched::ParallelSearchOptions opts = base_options(3);
  opts.cache = &cache;

  const TempDir cold_dir("cold");
  sched::ShardedSearchOptions cold_sharding;
  cold_sharding.shards = 2;
  cold_sharding.shard_dir = cold_dir.path();
  cold_sharding.launcher = sched::inprocess_shard_launcher(tg, opts, cold_dir.path());
  const sched::ParallelSearchResult cold =
      sched::sharded_search(tg, opts, cold_sharding);
  EXPECT_EQ(cold.evaluated, cold.candidates);
  EXPECT_EQ(cold.cache_hits, 0u);

  // A different cache *instance* over the same directory, as a separate
  // worker process would see it.
  sched::ScheduleCache warm_cache(cache_dir.path());
  opts.cache = &warm_cache;
  const TempDir warm_dir("warm");
  sched::ShardedSearchOptions warm_sharding;
  warm_sharding.shards = 2;
  warm_sharding.shard_dir = warm_dir.path();
  warm_sharding.launcher = sched::inprocess_shard_launcher(tg, opts, warm_dir.path());
  const sched::ParallelSearchResult warm =
      sched::sharded_search(tg, opts, warm_sharding);
  EXPECT_EQ(warm.evaluated, 0u);
  EXPECT_EQ(warm.cache_hits, warm.candidates);
  expect_same_winner(warm, cold, tg.job_count());

  // And the sharded results agree with the uncached in-process search.
  sched::ParallelSearchOptions plain = base_options(3);
  const sched::ParallelSearchResult single = sched::parallel_search(tg, plain);
  expect_same_winner(warm, single, tg.job_count());
}

TEST(ShardManifest, RejectsLeadingPlusInIntegerFields) {
  // The documented grammar is -?[0-9]+ / [0-9]+: a leading '+' (tolerated
  // by raw stoll) is a parse error in every manifest field.
  io::ShardManifest manifest;
  manifest.fingerprint = 7;
  manifest.shard_index = 0;
  manifest.shard_count = 2;
  manifest.processors = 3;
  manifest.candidates.push_back(io::ShardManifestEntry{"alap-edf", 1, "a.sched"});
  const std::string text = io::write_shard_manifest(manifest);
  const auto with = [&](const std::string& from, const std::string& to) {
    std::string mutated = text;
    mutated.replace(mutated.find(from), from.size(), to);
    return mutated;
  };
  EXPECT_THROW((void)io::read_shard_manifest_string(with("shard 0 2", "shard +0 2")),
               io::ParseError);
  EXPECT_THROW(
      (void)io::read_shard_manifest_string(with("processors 3", "processors +3")),
      io::ParseError);
  EXPECT_THROW((void)io::read_shard_manifest_string(with("budget 0 0", "budget +0 0")),
               io::ParseError);
  EXPECT_THROW((void)io::read_shard_manifest_string(with("stats 0 0", "stats +0 0")),
               io::ParseError);
  EXPECT_THROW(
      (void)io::read_shard_manifest_string(with("candidates 1", "candidates +1")),
      io::ParseError);
}

TEST(ShardedSearch, WarmStartOverlayMatchesParallelSearch) {
  // The overlay runs at the orchestrator after the plan-pure merge, so a
  // sharded warm-start search must end on the bit-identical result of the
  // in-process warm-start search over the same cache contents.
  const TaskGraph tg = random_task_graph(4, 4, 160, 9);
  const TempDir cache_dir("warm_cache");
  const TempDir shard_dir("warm_shards");

  sched::ParallelSearchOptions opts = base_options(3);
  opts.warm_start = true;
  sched::ScheduleCache inproc_cache(cache_dir.path());
  opts.cache = &inproc_cache;
  const auto inproc = sched::parallel_search(tg, opts);

  sched::ScheduleCache shard_cache(cache_dir.path());
  opts.cache = &shard_cache;
  sched::ShardedSearchOptions sharding;
  sharding.shards = 2;
  sharding.shard_dir = shard_dir.path();
  sharding.launcher = sched::inprocess_shard_launcher(tg, opts, shard_dir.path());
  const auto sharded = sched::sharded_search(tg, opts, sharding);

  EXPECT_EQ(sharded.warm_starts, inproc.warm_starts);
  EXPECT_EQ(sharded.warm_candidates, inproc.warm_candidates);
  EXPECT_EQ(sharded.warm_start_won, inproc.warm_start_won);
  expect_same_winner(sharded, inproc, tg.job_count());
}

TEST(ShardedSearch, ConsumesPrepopulatedShardDirectory) {
  // Multi-machine mode: every manifest is already on disk (produced by
  // "other machines"), so no launcher is needed — and none runs.
  const TaskGraph tg = random_task_graph(5, 5, 160, 11);
  const sched::ParallelSearchOptions opts = base_options(3);
  const TempDir dir("consume");
  const sched::ShardPlan plan = sched::make_shard_plan(tg, opts, 3);
  for (int s = 0; s < plan.shards; ++s) {
    (void)sched::evaluate_shard(tg, opts, plan, s, dir.path());
  }

  sched::ShardedSearchOptions sharding;
  sharding.shards = 3;
  sharding.shard_dir = dir.path();
  sharding.launcher = [](const sched::ShardPlan&) {
    FAIL() << "launcher must not run when every manifest is present";
  };
  const sched::ParallelSearchResult merged = sched::sharded_search(tg, opts, sharding);
  const sched::ParallelSearchResult single = sched::parallel_search(tg, opts);
  expect_same_winner(merged, single, tg.job_count());
}

TEST(ShardedSearch, MissingShardWithoutLauncherFailsLoudly) {
  const TaskGraph tg = random_task_graph(4, 4, 160, 2);
  const sched::ParallelSearchOptions opts = base_options(2);
  const TempDir dir("missing");
  const sched::ShardPlan plan = sched::make_shard_plan(tg, opts, 2);
  (void)sched::evaluate_shard(tg, opts, plan, 0, dir.path());  // shard 1 never runs

  sched::ShardedSearchOptions sharding;
  sharding.shards = 2;
  sharding.shard_dir = dir.path();
  EXPECT_THROW((void)sched::sharded_search(tg, opts, sharding), std::runtime_error);
}

TEST(ShardedSearch, StaleShardDirectoryIsAnErrorNotADifferentWinner) {
  // A shard directory populated for one graph/budget must not be merged
  // into a different search.
  const TaskGraph tg = random_task_graph(4, 4, 160, 6);
  const sched::ParallelSearchOptions opts = base_options(2);
  const TempDir dir("stale");
  const sched::ShardPlan plan = sched::make_shard_plan(tg, opts, 2);
  for (int s = 0; s < plan.shards; ++s) {
    (void)sched::evaluate_shard(tg, opts, plan, s, dir.path());
  }

  {
    // Different graph, same topology.
    const TaskGraph other = random_task_graph(4, 4, 160, 9);
    const sched::ShardPlan other_plan = sched::make_shard_plan(other, opts, 2);
    EXPECT_THROW((void)sched::merge_shards(other, opts, other_plan, dir.path()),
                 std::runtime_error);
  }
  {
    // Same graph, different budget.
    sched::ParallelSearchOptions bigger = opts;
    bigger.max_iterations *= 2;
    const sched::ShardPlan bigger_plan = sched::make_shard_plan(tg, bigger, 2);
    EXPECT_THROW((void)sched::merge_shards(tg, bigger, bigger_plan, dir.path()),
                 std::runtime_error);
  }
}

TEST(ShardedSearch, CorruptManifestOrEntryFailsLoudly) {
  const TaskGraph tg = random_task_graph(4, 4, 160, 8);
  const sched::ParallelSearchOptions opts = base_options(2);
  const sched::ShardPlan plan = sched::make_shard_plan(tg, opts, 2);

  {
    const TempDir dir("badmanifest");
    for (int s = 0; s < plan.shards; ++s) {
      (void)sched::evaluate_shard(tg, opts, plan, s, dir.path());
    }
    std::ofstream(fs::path(dir.path()) / io::shard_manifest_filename(1, 2))
        << "garbage\n";
    EXPECT_THROW((void)sched::merge_shards(tg, opts, plan, dir.path()),
                 std::runtime_error);
  }
  {
    const TempDir dir("badentry");
    for (int s = 0; s < plan.shards; ++s) {
      (void)sched::evaluate_shard(tg, opts, plan, s, dir.path());
    }
    // Corrupt the first entry listed by shard 0's manifest.
    std::ifstream in(fs::path(dir.path()) / io::shard_manifest_filename(0, 2));
    const io::ShardManifest manifest = io::read_shard_manifest(in);
    ASSERT_FALSE(manifest.candidates.empty());
    std::ofstream(fs::path(dir.path()) / manifest.candidates[0].file) << "junk\n";
    EXPECT_THROW((void)sched::merge_shards(tg, opts, plan, dir.path()),
                 std::runtime_error);
  }
}

TEST(ShardedSearch, EmptyShardsAreLegal) {
  // More shards than candidates: trailing shards own nothing, publish an
  // empty manifest, and the merge still finds the winner.
  const TaskGraph tg = random_task_graph(3, 3, 160, 4);
  sched::ParallelSearchOptions opts = base_options(2);
  opts.strategies = {"alap-edf", "b-level"};  // exactly 2 candidates
  const TempDir dir("empty");
  sched::ShardedSearchOptions sharding;
  sharding.shards = 5;
  sharding.shard_dir = dir.path();
  sharding.launcher = sched::inprocess_shard_launcher(tg, opts, dir.path());
  const sched::ParallelSearchResult sharded = sched::sharded_search(tg, opts, sharding);
  EXPECT_EQ(sharded.candidates, 2u);
  const sched::ParallelSearchResult single = sched::parallel_search(tg, opts);
  expect_same_winner(sharded, single, tg.job_count());
}

TEST(ShardedSearch, RejectsBadDirectories) {
  const TaskGraph tg = random_task_graph(2, 2, 100, 1);
  const sched::ParallelSearchOptions opts = base_options(2);
  sched::ShardedSearchOptions sharding;
  sharding.shards = 2;
  sharding.shard_dir = "";
  EXPECT_THROW((void)sched::sharded_search(tg, opts, sharding), std::invalid_argument);
  sharding.shard_dir = "/nonexistent-parent-xyz/shards";
  EXPECT_THROW((void)sched::sharded_search(tg, opts, sharding), std::runtime_error);
}

}  // namespace
}  // namespace fppn
