#include "graph/algorithms.hpp"

#include <gtest/gtest.h>

namespace fppn {
namespace {

Digraph diamond() {
  Digraph g(4);
  g.add_edge(NodeId(0), NodeId(1));
  g.add_edge(NodeId(0), NodeId(2));
  g.add_edge(NodeId(1), NodeId(3));
  g.add_edge(NodeId(2), NodeId(3));
  return g;
}

TEST(TopologicalSort, DiamondDeterministic) {
  const auto order = topological_sort(diamond());
  ASSERT_TRUE(order.has_value());
  const std::vector<NodeId> expected = {NodeId(0), NodeId(1), NodeId(2), NodeId(3)};
  EXPECT_EQ(*order, expected);  // smaller id first among ready nodes
}

TEST(TopologicalSort, DetectsCycle) {
  Digraph g(2);
  g.add_edge(NodeId(0), NodeId(1));
  g.add_edge(NodeId(1), NodeId(0));
  EXPECT_FALSE(topological_sort(g).has_value());
  EXPECT_FALSE(is_acyclic(g));
}

TEST(TopologicalSort, EmptyGraph) {
  const Digraph g;
  const auto order = topological_sort(g);
  ASSERT_TRUE(order.has_value());
  EXPECT_TRUE(order->empty());
}

TEST(TopologicalSortSubset, RespectsInducedEdges) {
  Digraph g(4);
  g.add_edge(NodeId(0), NodeId(1));
  g.add_edge(NodeId(1), NodeId(2));
  // Subset {2, 1}: edge 1 -> 2 is induced, so 1 must come first.
  const auto order = topological_sort_subset(
      g, {NodeId(2), NodeId(1)}, [](NodeId a, NodeId b) { return a < b; });
  ASSERT_TRUE(order.has_value());
  EXPECT_EQ((*order)[0], NodeId(1));
  EXPECT_EQ((*order)[1], NodeId(2));
}

TEST(TopologicalSortSubset, TieBreakIsCallerControlled) {
  Digraph g(3);  // no edges: pure tie-break
  const std::vector<NodeId> subset = {NodeId(0), NodeId(1), NodeId(2)};
  const auto fwd =
      topological_sort_subset(g, subset, [](NodeId a, NodeId b) { return a < b; });
  const auto rev =
      topological_sort_subset(g, subset, [](NodeId a, NodeId b) { return a > b; });
  ASSERT_TRUE(fwd.has_value());
  ASSERT_TRUE(rev.has_value());
  EXPECT_EQ((*fwd)[0], NodeId(0));
  EXPECT_EQ((*rev)[0], NodeId(2));
}

TEST(Reachability, Diamond) {
  const Reachability r(diamond());
  EXPECT_TRUE(r.reaches(NodeId(0), NodeId(3)));
  EXPECT_TRUE(r.reaches(NodeId(0), NodeId(1)));
  EXPECT_FALSE(r.reaches(NodeId(3), NodeId(0)));
  EXPECT_FALSE(r.reaches(NodeId(1), NodeId(2)));
  EXPECT_FALSE(r.reaches(NodeId(0), NodeId(0)));  // length >= 1 paths only
}

TEST(Reachability, CycleThrows) {
  Digraph g(2);
  g.add_edge(NodeId(0), NodeId(1));
  g.add_edge(NodeId(1), NodeId(0));
  EXPECT_THROW(Reachability{g}, std::invalid_argument);
}

TEST(TransitiveReduction, RemovesShortcut) {
  Digraph g(3);
  g.add_edge(NodeId(0), NodeId(1));
  g.add_edge(NodeId(1), NodeId(2));
  g.add_edge(NodeId(0), NodeId(2));  // redundant
  EXPECT_EQ(transitive_reduction(g), 1u);
  EXPECT_FALSE(g.has_edge(NodeId(0), NodeId(2)));
  EXPECT_TRUE(g.has_edge(NodeId(0), NodeId(1)));
  EXPECT_TRUE(g.has_edge(NodeId(1), NodeId(2)));
}

TEST(TransitiveReduction, DiamondKeepsAllEdges) {
  Digraph g = diamond();
  EXPECT_EQ(transitive_reduction(g), 0u);
  EXPECT_EQ(g.edge_count(), 4u);
}

TEST(TransitiveReduction, LongChainWithManyShortcuts) {
  const std::size_t n = 30;
  Digraph g(n);
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = i + 1; j < n; ++j) {
      g.add_edge(NodeId(i), NodeId(j));  // complete DAG
    }
  }
  transitive_reduction(g);
  EXPECT_EQ(g.edge_count(), n - 1);  // only the chain survives
  for (std::size_t i = 0; i + 1 < n; ++i) {
    EXPECT_TRUE(g.has_edge(NodeId(i), NodeId(i + 1)));
  }
}

TEST(TransitiveReduction, PreservesReachability) {
  Digraph g(6);
  g.add_edge(NodeId(0), NodeId(1));
  g.add_edge(NodeId(0), NodeId(2));
  g.add_edge(NodeId(1), NodeId(3));
  g.add_edge(NodeId(2), NodeId(3));
  g.add_edge(NodeId(0), NodeId(3));  // redundant
  g.add_edge(NodeId(3), NodeId(4));
  g.add_edge(NodeId(1), NodeId(4));  // redundant
  g.add_edge(NodeId(4), NodeId(5));
  const Reachability before(g);
  transitive_reduction(g);
  const Reachability after(g);
  for (std::size_t u = 0; u < 6; ++u) {
    for (std::size_t v = 0; v < 6; ++v) {
      EXPECT_EQ(before.reaches(NodeId(u), NodeId(v)),
                after.reaches(NodeId(u), NodeId(v)))
          << u << " -> " << v;
    }
  }
}

TEST(LongestPathDepths, Chain) {
  Digraph g(4);
  g.add_edge(NodeId(0), NodeId(1));
  g.add_edge(NodeId(1), NodeId(2));
  g.add_edge(NodeId(0), NodeId(3));
  const auto depth = longest_path_depths(g);
  EXPECT_EQ(depth[0], 0u);
  EXPECT_EQ(depth[2], 2u);
  EXPECT_EQ(depth[3], 1u);
}

TEST(ToDot, ContainsNodesAndEdges) {
  const Digraph g = diamond();
  const std::string dot =
      to_dot(g, [](NodeId n) { return "n" + std::to_string(n.value()); }, "test");
  EXPECT_NE(dot.find("digraph test"), std::string::npos);
  EXPECT_NE(dot.find("n0 -> n1"), std::string::npos);
  EXPECT_NE(dot.find("label=\"n3\""), std::string::npos);
}

}  // namespace
}  // namespace fppn
