// Strategy and runtime registries: round-trip resolution of every
// registered name, error behavior on unknown/duplicate names, and
// registration of user-defined strategies/backends.
#include <gtest/gtest.h>

#include "runtime/runtime.hpp"
#include "sched/registry.hpp"

namespace fppn {
namespace {

TEST(StrategyRegistry, GlobalContainsBuiltins) {
  const auto names = sched::StrategyRegistry::global().names();
  ASSERT_GE(names.size(), 6u);
  for (const char* expected : {"alap-edf", "b-level", "deadline-monotonic",
                               "arrival-order", "local-search", "partitioned-wfd"}) {
    EXPECT_TRUE(sched::StrategyRegistry::global().contains(expected)) << expected;
  }
}

TEST(StrategyRegistry, EveryNameResolvesAndRoundTrips) {
  auto& registry = sched::StrategyRegistry::global();
  for (const std::string& name : registry.names()) {
    const auto strategy = registry.create(name);
    ASSERT_NE(strategy, nullptr) << name;
    // Round-trip: the instance reports the key it was registered under.
    EXPECT_EQ(strategy->name(), name);
    EXPECT_FALSE(strategy->description().empty()) << name;
  }
}

TEST(StrategyRegistry, NamesAreSorted) {
  const auto names = sched::StrategyRegistry::global().names();
  for (std::size_t i = 1; i < names.size(); ++i) {
    EXPECT_LT(names[i - 1], names[i]);
  }
}

TEST(StrategyRegistry, UnknownNameThrowsWithAvailableList) {
  try {
    (void)sched::StrategyRegistry::global().create("no-such-strategy");
    FAIL() << "expected UnknownStrategyError";
  } catch (const sched::UnknownStrategyError& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("no-such-strategy"), std::string::npos);
    EXPECT_NE(what.find("alap-edf"), std::string::npos);
  }
}

TEST(StrategyRegistry, RejectsBadRegistrations) {
  sched::StrategyRegistry registry;
  sched::register_builtin_strategies(registry);
  EXPECT_THROW(registry.add("", [] {
    return sched::StrategyRegistry::global().create("alap-edf");
  }),
               std::invalid_argument);
  EXPECT_THROW(registry.add("alap-edf",
                            [] {
                              return sched::StrategyRegistry::global().create("alap-edf");
                            }),
               std::invalid_argument);
  EXPECT_THROW(registry.add("null-factory", nullptr), std::invalid_argument);
  // Names become cache-entry file names, shard-manifest tokens and worker
  // argv words, so the lowercase/digits/dashes contract is enforced.
  const auto factory = [] {
    return sched::StrategyRegistry::global().create("alap-edf");
  };
  EXPECT_THROW(registry.add("has space", factory), std::invalid_argument);
  EXPECT_THROW(registry.add("has/slash", factory), std::invalid_argument);
  EXPECT_THROW(registry.add("UpperCase", factory), std::invalid_argument);
  EXPECT_NO_THROW(registry.add("ok-name-2", factory));
}

TEST(StrategyRegistry, UserStrategyPlugsIn) {
  // Registering a new strategy is one add() call; the engine then finds it
  // by name with no other code changes.
  sched::StrategyRegistry registry;
  sched::register_builtin_strategies(registry);
  registry.add("alias-of-alap", [] {
    return sched::StrategyRegistry::global().create("alap-edf");
  });
  EXPECT_TRUE(registry.contains("alias-of-alap"));
  EXPECT_EQ(registry.create("alias-of-alap")->name(), "alap-edf");
}

TEST(RuntimeRegistry, GlobalContainsBothBackends) {
  const auto names = runtime::RuntimeRegistry::global().names();
  ASSERT_EQ(names.size(), 2u);
  EXPECT_EQ(names[0], "threads");
  EXPECT_EQ(names[1], "vm");
}

TEST(RuntimeRegistry, EveryNameResolvesAndRoundTrips) {
  auto& registry = runtime::RuntimeRegistry::global();
  for (const std::string& name : registry.names()) {
    const auto backend = registry.create(name);
    ASSERT_NE(backend, nullptr) << name;
    EXPECT_EQ(backend->name(), name);
    EXPECT_FALSE(backend->description().empty()) << name;
  }
}

TEST(RuntimeRegistry, UnknownNameThrowsWithAvailableList) {
  try {
    (void)runtime::make_runtime("gpu");
    FAIL() << "expected UnknownRuntimeError";
  } catch (const runtime::UnknownRuntimeError& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("gpu"), std::string::npos);
    EXPECT_NE(what.find("vm"), std::string::npos);
    EXPECT_NE(what.find("threads"), std::string::npos);
  }
}

}  // namespace
}  // namespace fppn
